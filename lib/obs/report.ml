(** Versioned profile report: deterministic counters only (report.mli). *)

let schema = "wlan-mcast/profile/1"

type t = {
  label : string;
  seed : int;
  scenarios : int;
  targets : string list;
  counters : (string * int) list;
}

let make ~label ~seed ~scenarios ~targets =
  { label; seed; scenarios; targets; counters = Counters.snapshot () }

(* Minimal JSON string escaping; duplicated from Harness.Bench_json
   because obs sits below every other layer. *)
let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json t =
  let buf = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "{\n";
  add "  \"schema\": \"%s\",\n" (escape schema);
  add "  \"label\": \"%s\",\n" (escape t.label);
  add "  \"seed\": %d,\n" t.seed;
  add "  \"scenarios\": %d,\n" t.scenarios;
  add "  \"targets\": [%s],\n"
    (String.concat ", "
       (List.map (fun s -> Printf.sprintf "\"%s\"" (escape s)) t.targets));
  add "  \"counters\": {\n";
  let n = List.length t.counters in
  List.iteri
    (fun i (name, v) ->
      add "    \"%s\": %d%s\n" (escape name) v
        (if i = n - 1 then "" else ","))
    t.counters;
  add "  }\n";
  add "}\n";
  Buffer.contents buf

let pp_text ppf t =
  Fmt.pf ppf "profile %s (seed %d, scenarios %d)@." t.label t.seed
    t.scenarios;
  Fmt.pf ppf "targets: %s@." (String.concat " " t.targets);
  let w =
    List.fold_left
      (fun acc (name, _) -> Int.max acc (String.length name))
      0 t.counters
  in
  List.iter
    (fun (name, v) -> Fmt.pf ppf "  %-*s %12d@." w name v)
    t.counters
