(** Deterministic counter plane. See counters.mli for the contract:
    counters hold commutative aggregates of algorithmic events only, so
    snapshots are byte-identical at any [--jobs]. *)

type t = { name : string; cell : int Atomic.t }

let enabled_flag = Atomic.make false

let enabled () = Atomic.get enabled_flag

let set_enabled b = Atomic.set enabled_flag b

(* The registry is touched on counter creation, reset and snapshot —
   all cold paths — so a plain mutex is fine. The hot paths (incr/add)
   never take it. *)
let registry : (string, t) Hashtbl.t = Hashtbl.create 64

let registry_mu = Mutex.create ()

let make name =
  Mutex.lock registry_mu;
  let c =
    match Hashtbl.find_opt registry name with
    | Some c -> c
    | None ->
        let c = { name; cell = Atomic.make 0 } in
        Hashtbl.add registry name c;
        c
  in
  Mutex.unlock registry_mu;
  c

let name c = c.name

let incr c =
  if Atomic.get enabled_flag then ignore (Atomic.fetch_and_add c.cell 1)

let add c n =
  if Atomic.get enabled_flag && n <> 0 then
    ignore (Atomic.fetch_and_add c.cell n)

let rec record_max c n =
  if Atomic.get enabled_flag then begin
    let cur = Atomic.get c.cell in
    if n > cur && not (Atomic.compare_and_set c.cell cur n) then
      record_max c n
  end

let value c = Atomic.get c.cell

let reset () =
  Mutex.lock registry_mu;
  Hashtbl.iter (fun _ c -> Atomic.set c.cell 0) registry;
  Mutex.unlock registry_mu

let snapshot () =
  Mutex.lock registry_mu;
  let xs =
    Hashtbl.fold (fun _ c acc -> (c.name, Atomic.get c.cell) :: acc) registry
      []
  in
  Mutex.unlock registry_mu;
  List.sort (fun (a, _) (b, _) -> String.compare a b) xs
