(** Wall-clock span plane (DESIGN.md §4.9).

    Spans measure {e time}, which is inherently nondeterministic, so
    this plane is strictly separated from {!Counters}: nothing recorded
    here ever reaches a deterministic output (profile counter JSON,
    traces, metrics). Spans are a diagnostic side channel printed to a
    human or written to an explicitly separate file.

    The plane has no clock of its own — a library must not choose one —
    and is a no-op until a binary installs a monotonic clock with
    {!set_clock} (e.g. bechamel's [Monotonic_clock]). Spans are only
    recorded on the main domain: worker-domain timings are
    scheduling-dependent and would demand synchronisation on the hot
    path, so [with_span] on a worker just runs its thunk. *)

type clock = unit -> float
(** Monotonic seconds. Only differences are used. *)

val set_clock : clock option -> unit
(** Install ([Some]) or remove ([None], the default) the timing sink.
    Install it before the work you want spans for; libraries must never
    call this. *)

val active : unit -> bool
(** Whether a clock is installed. *)

val with_span : string -> (unit -> 'a) -> 'a
(** [with_span name f] runs [f], and — when a clock is installed and we
    are on the main domain — accounts its wall time to the tree node
    [name] under the innermost open span. Same-named siblings
    aggregate: [count] increments and the elapsed time adds up.
    Exceptions propagate; the span still closes. *)

type node = {
  name : string;
  count : int;  (** completed activations *)
  total_s : float;  (** wall seconds, summed over activations *)
  minor_words : float;
      (** main-domain words allocated in the minor heap during the
          span's activations ([Gc.quick_stat] deltas) — allocation
          pressure per driver, same nondeterminism caveats as time *)
  promoted_words : float;  (** words promoted to the major heap *)
  children : node list;  (** first-opened first *)
}

val tree : unit -> node list
(** The aggregated span forest accumulated since the last {!reset},
    roots first-opened first. Open (unfinished) spans are not
    included. *)

val reset : unit -> unit

val pp_tree : Format.formatter -> node list -> unit
(** Indented text rendering: one line per node —
    [name  count  total-ms  minor-Mw  promoted-Mw] — children indented
    two spaces. *)
