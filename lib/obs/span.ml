(** Wall-clock span plane. Main-domain only, clock injected by the
    binary, never feeds deterministic outputs — see span.mli. *)

type clock = unit -> float

(* Only read/written on the main domain (set_clock from the binary's
   startup, with_span guarded by Domain.is_main_domain). *)
let the_clock : clock option ref = ref None

let set_clock c = the_clock := c

let active () = Option.is_some !the_clock

(* Mutable accumulation tree; frozen into the public node type by
   [tree]. Children are kept newest-first and reversed on freeze. *)
type mnode = {
  m_name : string;
  mutable m_count : int;
  mutable m_total_s : float;
  mutable m_minor_w : float;
  mutable m_promoted_w : float;
  mutable m_children : mnode list;
}

let fresh name =
  {
    m_name = name;
    m_count = 0;
    m_total_s = 0.;
    m_minor_w = 0.;
    m_promoted_w = 0.;
    m_children = [];
  }

let root = fresh "<root>"

(* Stack of open spans with their start marks (time, minor words,
   promoted words); innermost first. *)
let stack : (mnode * float * float * float) list ref = ref []

let reset () =
  root.m_count <- 0;
  root.m_total_s <- 0.;
  root.m_minor_w <- 0.;
  root.m_promoted_w <- 0.;
  root.m_children <- [];
  stack := []

let child_named parent name =
  match List.find_opt (fun n -> String.equal n.m_name name) parent.m_children
  with
  | Some n -> n
  | None ->
      let n = fresh name in
      parent.m_children <- n :: parent.m_children;
      n

let enter now name =
  let parent = match !stack with [] -> root | (n, _, _, _) :: _ -> n in
  let node = child_named parent name in
  let g = Gc.quick_stat () in
  stack := (node, now (), g.Gc.minor_words, g.Gc.promoted_words) :: !stack

let leave now =
  match !stack with
  | [] -> ()
  | (node, t0, mw0, pw0) :: rest ->
      node.m_count <- node.m_count + 1;
      node.m_total_s <- node.m_total_s +. (now () -. t0);
      let g = Gc.quick_stat () in
      node.m_minor_w <- node.m_minor_w +. (g.Gc.minor_words -. mw0);
      node.m_promoted_w <- node.m_promoted_w +. (g.Gc.promoted_words -. pw0);
      stack := rest

let with_span name f =
  if not (Domain.is_main_domain ()) then f ()
  else
    match !the_clock with
    | None -> f ()
    | Some now ->
        enter now name;
        Fun.protect ~finally:(fun () -> leave now) f

type node = {
  name : string;
  count : int;
  total_s : float;
  minor_words : float;
  promoted_words : float;
  children : node list;
}

let rec freeze m =
  {
    name = m.m_name;
    count = m.m_count;
    total_s = m.m_total_s;
    minor_words = m.m_minor_w;
    promoted_words = m.m_promoted_w;
    (* m_children is newest-first; rev_map restores open order *)
    children = List.rev_map freeze m.m_children;
  }

let tree () = (freeze root).children

let pp_tree ppf nodes =
  let rec width indent n =
    List.fold_left
      (fun acc c -> Int.max acc (width (indent + 2) c))
      (indent + String.length n.name)
      n.children
  in
  let w =
    List.fold_left (fun acc n -> Int.max acc (width 0 n)) 0 nodes
  in
  let rec pp indent n =
    Fmt.pf ppf "%s%-*s %8d %12.3f ms %10.2f Mw minor %8.2f Mw promoted@."
      (String.make indent ' ')
      (w - indent) n.name n.count (n.total_s *. 1e3)
      (n.minor_words /. 1e6) (n.promoted_words /. 1e6);
    List.iter (pp (indent + 2)) n.children
  in
  List.iter (pp 0) nodes
