(** Deterministic counter plane (DESIGN.md §4.9).

    A counter counts {e algorithmic events} — candidate evaluations,
    heap pops, decision rounds — never wall-clock time. Counters are
    [int Atomic.t] cells behind a process-wide enable gate; every
    mutation is a commutative aggregate (sum or max), so totals depend
    only on {e what} work was submitted, not on which domain ran it or
    in what order. That is the determinism contract: with the same
    inputs, a snapshot is byte-identical at any [--jobs].

    Instrumentation sites must therefore never record
    scheduling-dependent quantities (per-domain tallies, queue depths
    observed from workers); only event totals and high-water marks of
    deterministically-evolving state.

    When the gate is off (the default) every operation is a single
    atomic load and a branch, so instrumented hot paths stay within
    noise of their uninstrumented timings. *)

type t
(** A named counter. Creation is idempotent: [make name] returns the
    same cell for the same name, so modules can create their counters
    at initialisation without coordinating. *)

val make : string -> t
(** [make name] registers (or finds) the counter [name]. Names are
    dot-scoped by subsystem, e.g. ["mcg.candidate_evals"]. *)

val name : t -> string

val enabled : unit -> bool
(** Current state of the process-wide gate (off at startup). *)

val set_enabled : bool -> unit
(** Flip the gate. Flip it {e before} submitting work; flipping it
    while worker domains are mid-task makes totals depend on timing. *)

val incr : t -> unit
(** Add 1 when the gate is on; no-op otherwise. *)

val add : t -> int -> unit
(** Add [n] when the gate is on; no-op otherwise. *)

val record_max : t -> int -> unit
(** Raise the counter to [n] if [n] is larger (high-water mark), when
    the gate is on. Only meaningful for values that evolve
    deterministically (e.g. the dirty-set size at round boundaries). *)

val value : t -> int

val reset : unit -> unit
(** Zero every registered counter (the registry itself is kept). *)

val snapshot : unit -> (string * int) list
(** All registered counters with their current values, sorted by name —
    the deterministic payload of a profile report. *)
