(** Versioned profile report (schema {!schema}).

    The JSON payload carries only deterministic fields — label, seed,
    scenario count, target list, counter snapshot — so two runs of the
    same workload produce byte-identical files at any [--jobs]. Wall
    times live exclusively in the {!Span} tree, rendered separately by
    {!pp_text}. *)

val schema : string
(** ["wlan-mcast/profile/1"]. *)

type t = {
  label : string;
  seed : int;
  scenarios : int;  (** per-point scenario draws of the experiment config *)
  targets : string list;  (** profiled targets, in run order *)
  counters : (string * int) list;  (** sorted by name *)
}

val make : label:string -> seed:int -> scenarios:int -> targets:string list -> t
(** Capture {!Counters.snapshot} into a report. *)

val json : t -> string
(** Deterministic JSON rendering, trailing newline included. *)

val pp_text : Format.formatter -> t -> unit
(** Human-readable counter table (name-sorted, like the JSON). *)
