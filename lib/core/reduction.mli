(** Reductions from the association-control problems to covering problems
    (Theorems 1, 3 and 5): for each AP [a], session [s] and candidate
    transmission rate [t], the users of [s] reachable from [a] at link
    rate at least [t] form a subset with cost [rate(s) / t], grouped by
    AP. Only rates that actually occur among an AP's receivers are
    generated (anything else is dominated). *)

open Wlan_model

(** What a covering set means in WLAN terms. *)
type tx = { ap : int; session : int; tx_rate : float }

val pp_tx : Format.formatter -> tx -> unit

(** Build the covering instance. With [filter_over_budget] (used by MNU),
    subsets costing more than the AP budget are dropped — they can never
    appear in a feasible solution, and the MCG analysis assumes every set
    fits its group's budget. *)
val cover_instance :
  ?filter_over_budget:bool -> Problem.t -> tx Optkit.Cover_instance.t

(** The ground set the cover should target: users within range of at
    least one AP. *)
val coverable_users : Problem.t -> Optkit.Bitset.t

(** Translate covering selections (set index, newly covered users) back
    into a user→AP association. *)
val association_of_selections :
  Problem.t ->
  tx Optkit.Cover_instance.t ->
  (int * Optkit.Bitset.t) list ->
  Association.t
