(** Geometric sharding: decompose an instance into interaction
    components (AP groups no load or decision ever crosses), solve each
    independently — optionally on [Harness.Pool] domains via [fanout] —
    and merge deterministically. Whenever the runs converge, the merged
    association is byte-identical to the unsharded sequential solve, at
    any job count. See DESIGN.md §4.10.

    Emits deterministic counters: [shard.plans], [shard.components],
    [shard.halo_reconciles] (one per shard merged back). *)

open Wlan_model

type shard = {
  id : int;  (** dense shard index, ascending by smallest AP index *)
  aps : int array;  (** global AP indices, ascending *)
  users : int array;  (** global user indices, ascending *)
}

type plan = {
  shards : shard list;  (** ascending [id]; every shard has >= 1 user *)
  idle_aps : int array;  (** APs no present user can hear, ascending *)
  uncovered : int array;  (** users with an empty candidate list, ascending *)
}

(** Interaction components from the instance's candidate lists: two APs
    share a shard iff connected through a chain of users hearing both.
    Exact on both representations; O(links · α). *)
val plan : Problem.t -> plan

(** Interaction components from pure geometry: APs within
    [interaction_radius] of each other are coupled, discovered through a
    {!Wlan_model.Sparse.Grid} whose 3×3 probe block is the halo zone —
    cross-cell pairs at exactly the radius or on cell edges are never
    missed. Pass 2 × the rate table's range: any user hearing two APs
    places them within that distance (triangle inequality), so this is
    a superset of {!plan}'s coupling and equally exact for solving.
    @raise Invalid_argument if some user's candidates span two shards
    (the radius was smaller than twice the effective range). *)
val plan_geometric :
  ap_pos:Point.t array -> interaction_radius:float -> Problem.t -> plan

(** The sub-instance a shard solves: shard APs/users reindexed densely
    (order-preserving), the full session table, sliced per-AP budgets.
    Always sparse — the dense matrix is never allocated. *)
val extract : Problem.t -> shard -> Problem.t

type result = {
  assoc : Association.t;  (** merged global association *)
  rounds : int;  (** max shard rounds (shards run concurrently) *)
  moves : int;  (** total moves across shards *)
  converged : bool;  (** every shard converged *)
  n_shards : int;
}

(** [solve ~objective p] plans (unless [plan] is given), solves every
    shard with [Distributed.run ~scheduler:Sequential ?max_rounds], and
    merges in ascending shard order. [fanout] runs the per-shard thunks
    (default: in place; inject [Harness.Pool.run pool] for domain
    parallelism — results are consumed in submission order, so the
    output is identical at any job count). Uncovered users stay
    unserved. *)
val solve :
  ?plan:plan ->
  ?fanout:
    ((unit -> Distributed.outcome) list -> Distributed.outcome list) ->
  ?max_rounds:int ->
  objective:Distributed.objective ->
  Problem.t ->
  result

(** {1 Shard-aware centralized reductions}

    The covering reductions decompose over interaction components: a
    covering set only contains users of its AP's shard, so gains, spent
    budgets and replays never cross shards. The globally-coupled pieces
    — the H1/H2 repair's keep decision, and SCG's per-round variant of
    it — are re-made on weights summed across shards, reproducing the
    unsharded choice. Both drivers run the [`Lazy] engine (its
    lower-index total tie order makes per-shard selection sequences
    exactly the unsharded run's projection; [`Classic]'s layout-resolved
    ties are not sharding-safe), so the merged association is
    byte-identical to the unsharded [`Lazy] solve. *)

(** Sharded Centralized MNU (Fig. 3 per shard, global H1/H2 decision).
    [fanout] spreads the per-shard solve thunks over domains (each
    yields the shard's two candidate half-associations and their
    weights); submission-order consumption keeps the result identical
    at any job count. *)
val solve_mnu :
  ?plan:plan ->
  ?engine:[ `Classic | `Lazy | `Eager ] ->
  ?fanout:
    ((unit -> float * float * Association.t * Association.t) list ->
    (float * float * Association.t * Association.t) list) ->
  Problem.t ->
  Solution.t

(** Sharded Centralized BLA (Fig. 6): the global [B*] grid's probes run
    every shard's SCG rounds in lockstep through {!Optkit.Mcg.session}s,
    then feasible probes are ranked exactly as [Bla.run] (summed-cover
    bound, then realized max load). [fanout] evaluates the per-probe
    thunks (each yields feasibility, the probe's max summed group cost,
    and its merged association). [None] when no [B* <= 1] is
    feasible. *)
val solve_bla :
  ?plan:plan ->
  ?n_guesses:int ->
  ?fanout:
    ((unit -> bool * float * Association.t) list ->
    (bool * float * Association.t) list) ->
  Problem.t ->
  Solution.t option

val pp_plan : Format.formatter -> plan -> unit
