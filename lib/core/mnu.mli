(** Centralized MNU — Maximize the Number of Users (§4.1): Maximum
    Coverage with Group Budgets via Theorem 1; budgeted greedy with the
    H1/H2 split, an 8-approximation (Theorem 2). The returned association
    always respects every AP's budget. *)

val name : string

(** [engine] selects the {!Optkit.Mcg.greedy} candidate generator
    ([`Classic] default; [`Lazy] is the fast large-instance engine). *)
val run :
  ?engine:[ `Classic | `Lazy | `Eager ] ->
  Wlan_model.Problem.t ->
  Solution.t

(** Revenue-weighted MNU: maximize total user {e value} (the §3.2
    pay-per-view model with heterogeneous prices). Returns the solution
    and the realized revenue. All-1 weights coincide with {!run}.
    @raise Invalid_argument on negative weights or wrong arity. *)
val run_weighted :
  weights:float array -> Wlan_model.Problem.t -> Solution.t * float

(** Extension (not in the paper's algorithm): after the cover, admit
    remaining users that can decode an already-scheduled transmission for
    free. Never increases any AP's load. *)
val run_with_free_riders : Wlan_model.Problem.t -> Solution.t
