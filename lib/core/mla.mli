(** Centralized MLA — Minimize the total Load of APs (§6.1): weighted Set
    Cover via Theorem 5. *)

val name : string

(** The greedy [CostSC] algorithm: a [(ln n + 1)]-approximation
    (Theorem 6). Serves every coverable user. *)
val run : Wlan_model.Problem.t -> Solution.t

(** The layering alternative the paper mentions: an f-approximation where
    [f] is the most (AP, session, rate) subsets any one user appears in. *)
val run_layered : Wlan_model.Problem.t -> Solution.t

(** LP-relaxation rounding, also an f-approximation; dense LP, so use on
    small/medium instances. [None] only if the LP solver fails. *)
val run_lp_rounding : Wlan_model.Problem.t -> Solution.t option

(** Explicit interference modeling (the paper's §8 future work): subset
    costs are inflated by [1 + lambda * d(a)] where [d(a)] is AP [a]'s
    co-channel conflict degree under [channels], steering the cover away
    from interference-dense APs. [lambda = 0] recovers {!run}; the
    returned metrics are plain Definition-1 loads.
    @raise Invalid_argument on negative [lambda]. *)
val run_interference_aware :
  channels:Wlan_model.Channels.assignment ->
  ?lambda:float ->
  Wlan_model.Problem.t ->
  Solution.t
