(** Distributed association control (§4.2, §5.2, §6.2).

    Each user periodically queries its neighbor APs for the sessions they
    transmit and the rates, computes what each AP's load would become if it
    joined (and what its current AP's load would become if it left), and
    re-associates according to the objective:

    - {b MNU / MLA rule} ([Min_total_load]): join the feasible neighbor AP
      that minimizes the {e total} load of the neighborhood — every user
      tries to consume as little of the shared airtime as possible.
    - {b BLA rule} ([Min_load_vector]): join the feasible neighbor AP that
      minimizes the neighborhood's load vector sorted in non-increasing
      order, compared lexicographically (footnote 5).

    Ties are broken by signal strength, then by lower AP index. A served
    user only moves when the move {e strictly} improves its objective; an
    unserved user joins the best feasible AP outright.

    Three decision schedulers:
    - [Sequential]: users decide one at a time — always converges on a
      static network (Lemmas 1 and 2: every move strictly decreases a global
      potential drawn from a finite set of values).
    - [Simultaneous]: all users decide on the same snapshot, then all apply.
      May oscillate forever (the paper's Fig. 4 two-user swap); we detect
      revisited states and report [oscillated = true].
    - [Locked]: the paper's §8 future-work fix, implemented here. A user
      must lock every AP in its neighborhood before deciding; users whose
      neighborhood overlaps an already-locked AP sit the round out. Granted
      users decide on live state, so each applied move strictly improves the
      potential and convergence is restored even with concurrency. *)

open Wlan_model

let src = Logs.Src.create "mcast.distributed" ~doc:"Distributed association"

module Log = (val Logs.src_log src : Logs.LOG)

type objective = Min_total_load | Min_load_vector
type scheduler = Sequential | Simultaneous | Locked

type outcome = {
  assoc : Association.t;
  rounds : int;  (** decision rounds executed *)
  moves : int;  (** total (re)associations applied *)
  converged : bool;  (** a full round made no move *)
  oscillated : bool;  (** a previously seen state recurred (Simultaneous) *)
}


let vec_lt a b = Loads.compare_load_vectors_eps a b < 0
let vec_approx_equal a b =
  Array.length a = Array.length b && Loads.compare_load_vectors_eps a b = 0

(* The local decision rule, abstracted over how hypothetical and current
   loads are obtained. [if_joins]/[if_leaves] answer "what would AP [ap]'s
   load be if [user] joined / left"; [load] is the current load of an
   unaffected AP. Both the eager array-scanning queries and the
   incremental {!Loads.Tracker} queries compute bit-identical floats, so
   the decision is the same under either backend. *)
let decide_with p ~neighbors ~current ~if_joins ~if_leaves ~load ~objective u =
  match neighbors with
  | [] -> None
  | _ ->
      let old_ap = current in
      (* Hypothetical load of neighbor [b] if [u] moves to [new_ap]. *)
      let hypothetical new_ap b =
        if b = new_ap then if_joins ~user:u ~ap:b
        else if b = old_ap then if_leaves ~user:u ~ap:b
        else load b
      in
      (* Objective value of the neighborhood after a hypothetical move.
         Total-load objective: scalar sum boxed in a 1-element array so
         both objectives compare via lexicographic vector order; the fold
         adds the hypotheticals in neighbor order, exactly as the mapped
         list it replaces did. *)
      let eval new_ap =
        match objective with
        | Min_total_load ->
            [|
              List.fold_left
                (fun acc b -> acc +. hypothetical new_ap b)
                0. neighbors;
            |]
        | Min_load_vector ->
            Loads.sorted_load_vector
              (Array.of_list (List.map (hypothetical new_ap) neighbors))
      in
      let feasible a =
        a = current
        || if_joins ~user:u ~ap:a <= Problem.ap_budget p a +. 1e-12
      in
      let candidates = List.filter feasible neighbors in
      let scored = List.map (fun a -> (a, eval a)) candidates in
      (match scored with
      | [] -> None
      | _ ->
          (* best score; ties by stronger signal, then lower index *)
          let best =
            List.fold_left
              (fun (ba, bv) (a, v) ->
                if vec_lt v bv then (a, v)
                else if
                  vec_approx_equal v bv
                  && Problem.(p.signal.(a).(u) > p.signal.(ba).(u) +. 1e-12)
                then (a, v)
                else (ba, bv))
              (List.hd scored) (List.tl scored)
          in
          let best_ap, best_v = best in
          if current = Association.none then
            (* unserved: any feasible AP grants service *)
            Some best_ap
          else if best_ap <> current then begin
            (* served: move only on strict improvement over staying *)
            let stay_v = eval current in
            if vec_lt best_v stay_v then Some best_ap else None
          end
          else None)

(** The local decision of user [u]: [Some ap] when [u] should (re)associate
    with [ap], [None] to stay put. [loads] must be the current AP loads. *)
let decide p assoc ~loads ~objective u =
  decide_with p ~neighbors:(Problem.neighbor_aps p u) ~current:assoc.(u)
    ~if_joins:(fun ~user ~ap -> Loads.load_if_joins p assoc ~user ~ap)
    ~if_leaves:(fun ~user ~ap -> Loads.load_if_leaves p assoc ~user ~ap)
    ~load:(fun b -> loads.(b))
    ~objective u

(* Tracker-backed decision: O(neighbors · (n_sessions + log members))
   instead of O(neighbors · n_users); [neighbors] is the caller's cached
   [Problem.neighbor_aps p u]. *)
let decide_tracked p assoc tr ~neighbors ~objective u =
  decide_with p ~neighbors ~current:assoc.(u)
    ~if_joins:(fun ~user ~ap -> Loads.Tracker.load_if_joins tr ~user ~ap)
    ~if_leaves:(fun ~user ~ap -> Loads.Tracker.load_if_leaves tr ~user ~ap)
    ~load:(Loads.Tracker.ap_load tr)
    ~objective u

let run ?init ?(max_rounds = 200) ~scheduler ~objective p =
  let n_aps, n_users = Problem.dims p in
  let assoc =
    match init with
    | Some a -> Association.copy a
    | None -> Association.empty ~n_users
  in
  let tr = Loads.Tracker.create p assoc in
  (* the neighbor sets are static: compute each user's once per run *)
  let neighbors = Array.init n_users (Problem.neighbor_aps p) in
  (* Decision memoisation. A user's decision is a pure function of its own
     association and the tracker state of its neighbor APs (loads and tx
     rows), and that state only changes when some user moves into or out
     of the AP. We version every AP, bump the versions of the APs a move
     touches, and remember the neighborhood version sum at which a user
     last decided to stay: versions only grow, so an equal sum means no
     neighbor AP changed and the cached "stay" is still the decision the
     full evaluation would return. Skipped stays have no side effects in
     any scheduler, so the move sequence — and every float — is identical
     to the unmemoised loop. *)
  let version = Array.make n_aps 0 in
  let stay_stamp = Array.make n_users (-1) in
  let stamp u =
    List.fold_left (fun acc a -> acc + version.(a)) 0 neighbors.(u)
  in
  let apply ~user ~ap =
    let old_ap = assoc.(user) in
    if old_ap <> Association.none then
      version.(old_ap) <- version.(old_ap) + 1;
    version.(ap) <- version.(ap) + 1;
    Loads.Tracker.move tr ~user ~ap
  in
  (* [Some d] when the decision must be (re)computed — [d] is it, and a
     stay is recorded under [s]; [None] for a memoised stay. *)
  let decide_memo u =
    let s = stamp u in
    if stay_stamp.(u) = s then None
    else begin
      let d = decide_tracked p assoc tr ~neighbors:neighbors.(u) ~objective u in
      if d = None then stay_stamp.(u) <- s;
      Some d
    end
  in
  let moves = ref 0 in
  let rounds = ref 0 in
  let converged = ref false in
  let oscillated = ref false in
  (match scheduler with
  | Sequential ->
      while (not !converged) && !rounds < max_rounds do
        incr rounds;
        let moved = ref false in
        for u = 0 to n_users - 1 do
          match decide_memo u with
          | None | Some None -> ()
          | Some (Some ap) ->
              apply ~user:u ~ap;
              incr moves;
              moved := true
        done;
        if not !moved then converged := true
      done
  | Simultaneous ->
      let seen = Hashtbl.create 64 in
      Hashtbl.replace seen (Array.to_list assoc) ();
      while (not !converged) && (not !oscillated) && !rounds < max_rounds do
        incr rounds;
        (* all decisions read the same snapshot: take them before any is
           applied (the version stamps are untouched until then, so the
           memo is consistent with the snapshot) *)
        let decisions =
          List.init n_users (fun u -> (u, decide_memo u))
          |> List.filter_map (fun (u, d) ->
                 match d with Some (Some ap) -> Some (u, ap) | _ -> None)
        in
        if decisions = [] then converged := true
        else begin
          (* applying them through the tracker one by one ends in the same
             state (and the same cached-load floats) as a full recompute *)
          List.iter (fun (u, ap) -> apply ~user:u ~ap) decisions;
          moves := !moves + List.length decisions;
          let key = Array.to_list assoc in
          if Hashtbl.mem seen key then oscillated := true
          else Hashtbl.replace seen key ()
        end
      done
  | Locked ->
      (* Locks held by users that committed a move stay held until the end
         of the round (their neighborhoods must not be re-read by peers);
         users that decide to stay release immediately — which is also why
         a memoised stay (no locks ever taken) is indistinguishable from
         the full lock-decide-release cycle it replaces. The scan origin
         rotates every round so no user starves behind a habitual locker. *)
      while (not !converged) && !rounds < max_rounds do
        let locked = Array.make n_aps false in
        let moved = ref false in
        let offset = if n_users = 0 then 0 else !rounds mod n_users in
        incr rounds;
        for i = 0 to n_users - 1 do
          let u = (i + offset) mod n_users in
          let ns = neighbors.(u) in
          if ns <> [] && stay_stamp.(u) <> stamp u
             && List.for_all (fun a -> not locked.(a)) ns
          then begin
            (* acquire locks, decide on live state *)
            List.iter (fun a -> locked.(a) <- true) ns;
            match decide_memo u with
            | None | Some None ->
                List.iter (fun a -> locked.(a) <- false) ns
            | Some (Some ap) ->
                apply ~user:u ~ap;
                incr moves;
                moved := true
          end
        done;
        if not !moved then converged := true
      done);
  Log.debug (fun m ->
      m "finished: rounds %d, moves %d, converged %b, oscillated %b" !rounds
        !moves !converged !oscillated);
  { assoc; rounds = !rounds; moves = !moves; converged = !converged;
    oscillated = !oscillated }

(** {1 The paper's three distributed algorithms} *)

let mnu ?init ?max_rounds ?(scheduler = Sequential) p =
  let o = run ?init ?max_rounds ~scheduler ~objective:Min_total_load p in
  (Solution.make ~algorithm:"MNU-distributed" p o.assoc, o)

(** Distributed MLA is the same local rule as distributed MNU (§6.2). *)
let mla ?init ?max_rounds ?(scheduler = Sequential) p =
  let o = run ?init ?max_rounds ~scheduler ~objective:Min_total_load p in
  (Solution.make ~algorithm:"MLA-distributed" p o.assoc, o)

let bla ?init ?max_rounds ?(scheduler = Sequential) p =
  let o = run ?init ?max_rounds ~scheduler ~objective:Min_load_vector p in
  (Solution.make ~algorithm:"BLA-distributed" p o.assoc, o)
