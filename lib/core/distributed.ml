(** Distributed association control (§4.2, §5.2, §6.2).

    Each user periodically queries its neighbor APs for the sessions they
    transmit and the rates, computes what each AP's load would become if it
    joined (and what its current AP's load would become if it left), and
    re-associates according to the objective:

    - {b MNU / MLA rule} ([Min_total_load]): join the feasible neighbor AP
      that minimizes the {e total} load of the neighborhood — every user
      tries to consume as little of the shared airtime as possible.
    - {b BLA rule} ([Min_load_vector]): join the feasible neighbor AP that
      minimizes the neighborhood's load vector sorted in non-increasing
      order, compared lexicographically (footnote 5).

    Ties are broken by signal strength, then by lower AP index. A served
    user only moves when the move {e strictly} improves its objective; an
    unserved user joins the best feasible AP outright.

    Three decision schedulers:
    - [Sequential]: users decide one at a time — always converges on a
      static network (Lemmas 1 and 2: every move strictly decreases a global
      potential drawn from a finite set of values).
    - [Simultaneous]: all users decide on the same snapshot, then all apply.
      May oscillate forever (the paper's Fig. 4 two-user swap); we detect
      revisited states and report [oscillated = true].
    - [Locked]: the paper's §8 future-work fix, implemented here. A user
      must lock every AP in its neighborhood before deciding; users whose
      neighborhood overlaps an already-locked AP sit the round out. Granted
      users decide on live state, so each applied move strictly improves the
      potential and convergence is restored even with concurrency. *)

open Wlan_model

let src = Logs.Src.create "mcast.distributed" ~doc:"Distributed association"

module Log = (val Logs.src_log src : Logs.LOG)

type objective = Min_total_load | Min_load_vector
type scheduler = Sequential | Simultaneous | Locked

(* Deterministic event counters (DESIGN.md §4.9). Every scheduler scans
   users in a fixed order and draws no randomness, so these totals are a
   pure function of the run's inputs. *)
let c_runs = Wlan_obs.Counters.make "distributed.runs"
let c_rounds = Wlan_obs.Counters.make "distributed.rounds"
let c_moves = Wlan_obs.Counters.make "distributed.moves"
let c_decisions = Wlan_obs.Counters.make "distributed.decisions"
let c_stay_memo_hits = Wlan_obs.Counters.make "distributed.stay_memo_hits"

type outcome = {
  assoc : Association.t;
  rounds : int;  (** decision rounds executed *)
  moves : int;  (** total (re)associations applied *)
  converged : bool;  (** a full round made no move *)
  oscillated : bool;  (** a previously seen state recurred (Simultaneous) *)
}


let vec_lt a b = Loads.compare_load_vectors_eps a b < 0
let vec_approx_equal a b =
  Array.length a = Array.length b && Loads.compare_load_vectors_eps a b = 0

(* The local decision rule, abstracted over how hypothetical and current
   loads are obtained. [if_joins]/[if_leaves] answer "what would AP [ap]'s
   load be if [user] joined / left"; [load] is the current load of an
   unaffected AP. Both the eager array-scanning queries and the
   incremental {!Loads.Tracker} queries compute bit-identical floats, so
   the decision is the same under either backend. *)
let decide_with p ~neighbors ~current ~if_joins ~if_leaves ~load ~objective u =
  Wlan_obs.Counters.incr c_decisions;
  match neighbors with
  | [] -> None
  | _ ->
      let old_ap = current in
      (* Hypothetical load of neighbor [b] if [u] moves to [new_ap]. *)
      let hypothetical new_ap b =
        if b = new_ap then if_joins ~user:u ~ap:b
        else if b = old_ap then if_leaves ~user:u ~ap:b
        else load b
      in
      (* Objective value of the neighborhood after a hypothetical move.
         Total-load objective: scalar sum boxed in a 1-element array so
         both objectives compare via lexicographic vector order; the fold
         adds the hypotheticals in neighbor order, exactly as the mapped
         list it replaces did. *)
      let eval new_ap =
        match objective with
        | Min_total_load ->
            [|
              List.fold_left
                (fun acc b -> acc +. hypothetical new_ap b)
                0. neighbors;
            |]
        | Min_load_vector ->
            Loads.sorted_load_vector
              (Array.of_list (List.map (hypothetical new_ap) neighbors))
      in
      let feasible a =
        a = current
        || if_joins ~user:u ~ap:a <= Problem.ap_budget p a +. 1e-12
      in
      let candidates = List.filter feasible neighbors in
      let scored = List.map (fun a -> (a, eval a)) candidates in
      (match scored with
      | [] -> None
      | _ ->
          (* best score; ties by stronger signal, then lower index *)
          let best =
            List.fold_left
              (fun (ba, bv) (a, v) ->
                if vec_lt v bv then (a, v)
                else if
                  vec_approx_equal v bv
                  && Problem.signal p ~ap:a ~user:u
                     > Problem.signal p ~ap:ba ~user:u +. 1e-12
                then (a, v)
                else (ba, bv))
              (List.hd scored) (List.tl scored)
          in
          let best_ap, best_v = best in
          if current = Association.none then
            (* unserved: any feasible AP grants service *)
            Some best_ap
          else if best_ap <> current then begin
            (* served: move only on strict improvement over staying *)
            let stay_v = eval current in
            if vec_lt best_v stay_v then Some best_ap else None
          end
          else None)

(** The local decision of user [u]: [Some ap] when [u] should (re)associate
    with [ap], [None] to stay put. [loads] must be the current AP loads. *)
let decide p assoc ~loads ~objective u =
  decide_with p ~neighbors:(Problem.neighbor_aps p u) ~current:assoc.(u)
    ~if_joins:(fun ~user ~ap -> Loads.load_if_joins p assoc ~user ~ap)
    ~if_leaves:(fun ~user ~ap -> Loads.load_if_leaves p assoc ~user ~ap)
    ~load:(fun b -> loads.(b))
    ~objective u

(* Tracker-backed decision: O(neighbors · (n_sessions + log members))
   instead of O(neighbors · n_users); [neighbors] is the caller's cached
   [Problem.neighbor_aps p u]. *)
let decide_tracked p assoc tr ~neighbors ~objective u =
  decide_with p ~neighbors ~current:assoc.(u)
    ~if_joins:(fun ~user ~ap -> Loads.Tracker.load_if_joins tr ~user ~ap)
    ~if_leaves:(fun ~user ~ap -> Loads.Tracker.load_if_leaves tr ~user ~ap)
    ~load:(Loads.Tracker.ap_load tr)
    ~objective u

(** {2 Flat decision kernel (DESIGN.md §4.12)}

    The boxed rule above allocates per decision: a filtered candidate
    list, a scored assoc list, and — under [Min_load_vector] — a fresh
    sorted array per candidate. The flat kernel computes the {e same}
    decision into preallocated scratch planes:

    - the hypothetical queries are cached once per decision — one
      [load_if_joins] per neighbor, one [load_if_leaves] for the serving
      AP — instead of re-asked per candidate evaluation. The queries are
      pure, so the cached floats are bit-identical to the boxed rule's
      repeated calls;
    - candidate vectors are built in two reused buffers (best / trial,
      swapped on improvement) and compared over their logical prefix;
    - the fold visits feasible neighbors in the same ascending order and
      applies the same eps comparisons and signal tie-break, so the
      chosen AP — and hence every downstream float — is identical.

    Scratch lives in an {!Optkit.Arena}: one allocation per run (or per
    [Online] network), reused across every decision and settle. *)

type scratch = {
  arena : Optkit.Arena.t;
  mutable cap : int;  (* all planes hold at least [cap] entries *)
  mutable nbr : int array;  (* live neighborhood (Online fills this) *)
  mutable join_l : float array;  (* load_if_joins per neighbor *)
  mutable vec_a : float array;  (* candidate vector buffers, swapped *)
  mutable vec_b : float array;
  mutable vec_stay : float array;
}

let scratch_ensure s n =
  if n > s.cap then begin
    s.nbr <- Optkit.Arena.ints s.arena "dist.nbr" n;
    s.join_l <- Optkit.Arena.floats s.arena "dist.join" n;
    s.vec_a <- Optkit.Arena.floats s.arena "dist.vec_a" n;
    s.vec_b <- Optkit.Arena.floats s.arena "dist.vec_b" n;
    s.vec_stay <- Optkit.Arena.floats s.arena "dist.vec_stay" n;
    s.cap <- Array.length s.join_l
  end

let make_scratch () =
  let s =
    {
      arena = Optkit.Arena.create ();
      cap = 0;
      nbr = [||];
      join_l = [||];
      vec_a = [||];
      vec_b = [||];
      vec_stay = [||];
    }
  in
  scratch_ensure s 1;
  s

(* In-place non-increasing insertion sort of [a.(0..n-1)] — the flat
   counterpart of [Loads.sorted_load_vector]. Loads are never nan, so any
   correct descending sort yields the identical value sequence. *)
let sort_desc (a : float array) n =
  for i = 1 to n - 1 do
    let x = a.(i) in
    let j = ref (i - 1) in
    while !j >= 0 && a.(!j) < x do
      a.(!j + 1) <- a.(!j);
      decr j
    done;
    a.(!j + 1) <- x
  done

(* The local rule of [decide_with], on scratch planes against the tracker.
   [nbr.(0..d-1)] is the (live, ascending) neighborhood; the caller has
   [scratch_ensure]d capacity [d]. [rates]/[sigs], when given, carry the
   neighbors' precomputed link rates and signals (static topologies only:
   they must equal the live [Problem] queries). Decision-for-decision
   equivalence with the boxed rule is pinned by the qcheck battery in
   [test_flat.ml]. *)
let decide_flat p tr scr ~nbr ~d ?rates ?sigs ~current ~objective u =
  Wlan_obs.Counters.incr c_decisions;
  if d = 0 then None
  else begin
    scratch_ensure scr d;
    let old_ap = current in
    let join_l = scr.join_l in
    Loads.Tracker.load_if_joins_into tr ~user:u ?rates ~nbr ~d ~into:join_l ();
    let base_l = Loads.Tracker.loads tr in
    let leave_v =
      if old_ap = Association.none then 0.
      else Loads.Tracker.load_if_leaves tr ~user:u ~ap:old_ap
    in
    let signal_at k a =
      match sigs with
      | Some sg -> sg.(k)
      | None -> Problem.signal p ~ap:a ~user:u
    in
    (* [hypothetical] of the boxed rule, reading the caches (the live
       loads array stands in for the per-neighbor [load b] reads: no move
       happens mid-decision). The [b = new_ap] test comes first, so
       evaluating a stay at the serving AP reads the join cache exactly
       as the boxed rule calls [if_joins] there. *)
    let hyp k new_ap =
      let b = nbr.(k) in
      if b = new_ap then join_l.(k)
      else if b = old_ap then leave_v
      else base_l.(b)
    in
    (* objective vector of a hypothetical move, into [dst]; returns the
       logical length ([Min_total_load] boxes its scalar sum at index 0,
       folded in neighbor order like the boxed rule's [fold_left]) *)
    let eval_into new_ap (dst : float array) =
      match objective with
      | Min_total_load ->
          let acc = ref 0. in
          for k = 0 to d - 1 do
            acc := !acc +. hyp k new_ap
          done;
          dst.(0) <- !acc;
          1
      | Min_load_vector ->
          for k = 0 to d - 1 do
            dst.(k) <- hyp k new_ap
          done;
          sort_desc dst d;
          d
    in
    (* fold over feasible neighbors in ascending order: first feasible
       seeds the best, later ones replace it on a strictly better vector
       or an eps-equal vector with strictly stronger signal — the boxed
       [List.fold_left] over [scored], without building it *)
    let bv = ref scr.vec_a and tv = ref scr.vec_b in
    let have_best = ref false in
    let best_ap = ref 0 in
    let best_k = ref 0 in
    for k = 0 to d - 1 do
      let a = nbr.(k) in
      if a = current || join_l.(k) <= Problem.ap_budget p a +. 1e-12 then
        if not !have_best then begin
          ignore (eval_into a !bv : int);
          best_ap := a;
          best_k := k;
          have_best := true
        end
        else begin
          let len = eval_into a !tv in
          let c = Loads.compare_load_prefixes_eps ~len !tv !bv in
          if
            c < 0
            || c = 0 && signal_at k a > signal_at !best_k !best_ap +. 1e-12
          then begin
            let swap = !bv in
            bv := !tv;
            tv := swap;
            best_ap := a;
            best_k := k
          end
        end
    done;
    if not !have_best then None
    else if current = Association.none then Some !best_ap
    else if !best_ap <> current then begin
      let len = eval_into current scr.vec_stay in
      if Loads.compare_load_prefixes_eps ~len !bv scr.vec_stay < 0 then
        Some !best_ap
      else None
    end
    else None
  end

let run ?init ?(max_rounds = 200) ?(kernel = `Flat) ~scheduler ~objective p =
  Wlan_obs.Counters.incr c_runs;
  let n_aps, n_users = Problem.dims p in
  let assoc =
    match init with
    | Some a -> Association.copy a
    | None -> Association.empty ~n_users
  in
  let tr = Loads.Tracker.create p assoc in
  (* the neighbor sets are static: compute each user's once per run *)
  let neighbors = Array.init n_users (Problem.neighbor_aps p) in
  (* flat kernel state: per-user neighborhood planes — AP, link rate and
     signal side by side, filled by one candidate sweep (the topology is
     static for the whole run, so the cached rates and signals are
     exactly what the live queries return) — plus scratch sized to the
     maximum degree *)
  let flat =
    match kernel with
    | `Boxed -> None
    | `Flat ->
        let nbr = Array.make n_users [||] in
        let nrate = Array.make n_users [||] in
        let nsig = Array.make n_users [||] in
        let max_d = ref 1 in
        for u = 0 to n_users - 1 do
          let deg = List.length neighbors.(u) in
          let a_ = Array.make deg 0 in
          let r_ = Array.make deg 0. in
          let s_ = Array.make deg 0. in
          let i = ref 0 in
          Problem.iter_candidates p u (fun a r sg ->
              a_.(!i) <- a;
              r_.(!i) <- r;
              s_.(!i) <- sg;
              incr i);
          nbr.(u) <- a_;
          nrate.(u) <- r_;
          nsig.(u) <- s_;
          max_d := Int.max !max_d deg
        done;
        let scr = make_scratch () in
        scratch_ensure scr !max_d;
        Some (nbr, nrate, nsig, scr)
  in
  (* Decision memoisation. A user's decision is a pure function of its own
     association and the tracker state of its neighbor APs (loads and tx
     rows), and that state only changes when some user moves into or out
     of the AP. We version every AP, bump the versions of the APs a move
     touches, and remember the neighborhood version sum at which a user
     last decided to stay: versions only grow, so an equal sum means no
     neighbor AP changed and the cached "stay" is still the decision the
     full evaluation would return. Skipped stays have no side effects in
     any scheduler, so the move sequence — and every float — is identical
     to the unmemoised loop. *)
  let version = Array.make n_aps 0 in
  let stay_stamp = Array.make n_users (-1) in
  let stamp u =
    List.fold_left (fun acc a -> acc + version.(a)) 0 neighbors.(u)
  in
  let apply ~user ~ap =
    let old_ap = assoc.(user) in
    if old_ap <> Association.none then
      version.(old_ap) <- version.(old_ap) + 1;
    version.(ap) <- version.(ap) + 1;
    Loads.Tracker.move tr ~user ~ap
  in
  (* [Some d] when the decision must be (re)computed — [d] is it, and a
     stay is recorded under [s]; [None] for a memoised stay. *)
  let decide_memo u =
    let s = stamp u in
    if stay_stamp.(u) = s then begin
      Wlan_obs.Counters.incr c_stay_memo_hits;
      None
    end
    else begin
      let d =
        match flat with
        | Some (nbr, nrate, nsig, scr) ->
            decide_flat p tr scr ~nbr:nbr.(u) ~d:(Array.length nbr.(u))
              ~rates:nrate.(u) ~sigs:nsig.(u) ~current:assoc.(u) ~objective u
        | None ->
            decide_tracked p assoc tr ~neighbors:neighbors.(u) ~objective u
      in
      if d = None then stay_stamp.(u) <- s;
      Some d
    end
  in
  let moves = ref 0 in
  let rounds = ref 0 in
  let converged = ref false in
  let oscillated = ref false in
  (match scheduler with
  | Sequential ->
      while (not !converged) && !rounds < max_rounds do
        incr rounds;
        let moved = ref false in
        for u = 0 to n_users - 1 do
          match decide_memo u with
          | None | Some None -> ()
          | Some (Some ap) ->
              apply ~user:u ~ap;
              incr moves;
              moved := true
        done;
        if not !moved then converged := true
      done
  | Simultaneous ->
      let seen = Hashtbl.create 64 in
      Hashtbl.replace seen (Array.to_list assoc) ();
      while (not !converged) && (not !oscillated) && !rounds < max_rounds do
        incr rounds;
        (* all decisions read the same snapshot: take them before any is
           applied (the version stamps are untouched until then, so the
           memo is consistent with the snapshot) *)
        let decisions =
          List.init n_users (fun u -> (u, decide_memo u))
          |> List.filter_map (fun (u, d) ->
                 match d with Some (Some ap) -> Some (u, ap) | _ -> None)
        in
        if decisions = [] then converged := true
        else begin
          (* applying them through the tracker one by one ends in the same
             state (and the same cached-load floats) as a full recompute *)
          List.iter (fun (u, ap) -> apply ~user:u ~ap) decisions;
          moves := !moves + List.length decisions;
          let key = Array.to_list assoc in
          if Hashtbl.mem seen key then oscillated := true
          else Hashtbl.replace seen key ()
        end
      done
  | Locked ->
      (* Locks held by users that committed a move stay held until the end
         of the round (their neighborhoods must not be re-read by peers);
         users that decide to stay release immediately — which is also why
         a memoised stay (no locks ever taken) is indistinguishable from
         the full lock-decide-release cycle it replaces. The scan origin
         rotates every round so no user starves behind a habitual locker. *)
      while (not !converged) && !rounds < max_rounds do
        let locked = Array.make n_aps false in
        let moved = ref false in
        let offset = if n_users = 0 then 0 else !rounds mod n_users in
        incr rounds;
        for i = 0 to n_users - 1 do
          let u = (i + offset) mod n_users in
          let ns = neighbors.(u) in
          if ns <> [] && stay_stamp.(u) <> stamp u
             && List.for_all (fun a -> not locked.(a)) ns
          then begin
            (* acquire locks, decide on live state *)
            List.iter (fun a -> locked.(a) <- true) ns;
            match decide_memo u with
            | None | Some None ->
                List.iter (fun a -> locked.(a) <- false) ns
            | Some (Some ap) ->
                apply ~user:u ~ap;
                incr moves;
                moved := true
          end
        done;
        if not !moved then converged := true
      done);
  Wlan_obs.Counters.add c_rounds !rounds;
  Wlan_obs.Counters.add c_moves !moves;
  Log.debug (fun m ->
      m "finished: rounds %d, moves %d, converged %b, oscillated %b" !rounds
        !moves !converged !oscillated);
  { assoc; rounds = !rounds; moves = !moves; converged = !converged;
    oscillated = !oscillated }

(** {1 Online re-association under churn}

    [Online] keeps a running network alive across membership and topology
    deltas. Where {!run} solves one frozen instance to quiescence, an
    [Online.t] absorbs events — users arriving and departing, APs failing
    and recovering, link rates drifting — and re-converges {e
    incrementally}: each delta marks only the users whose decision inputs
    it touched (a dirty set maintained through a per-AP watcher index),
    and {!settle} re-runs the local rule for exactly those users, letting
    dirtiness propagate move by move. No from-scratch solve ever happens.

    {b Equivalence.} The dirty set is the same staleness relation the
    version-stamp memo in {!run} tracks: a user is dirty iff some AP in
    its base neighborhood changed since the user last decided. Skipped
    users would decide "stay" with no side effect, so a [settle] from an
    all-dirty start executes the {e identical} move sequence — and, via
    the {!Loads.Tracker} bit-exactness contract, the identical floats —
    as [run ~scheduler:Sequential] on the effective static instance (dead
    AP rows and absent user columns zeroed, see {!effective_problem}).
    At quiescence the association is therefore a Nash point of the local
    rule on the final static topology. The differential and oracle suites
    in [test_churn.ml] pin both facts.

    Determinism: every operation iterates users and APs in ascending
    index order and draws no randomness, so a churn run is a pure
    function of (problem, script, objective, mode). *)

module Online = struct
  (* Deterministic event counters: the online layer iterates users and
     APs in ascending index order, so dirty-set sizes at round starts
     evolve deterministically and are safe to aggregate. *)
  let c_settles = Wlan_obs.Counters.make "online.settles"
  let c_settle_rounds = Wlan_obs.Counters.make "online.settle_rounds"
  let c_settle_moves = Wlan_obs.Counters.make "online.settle_moves"
  let c_deltas = Wlan_obs.Counters.make "online.deltas"
  let c_dirty_scanned = Wlan_obs.Counters.make "online.dirty_scanned"
  let c_dirty_peak = Wlan_obs.Counters.make "online.dirty_peak"

  type t = {
    p : Problem.t;
        (* working copy: the rate rows are owned and mutated on drift *)
    objective : objective;
    assoc : Association.t;
    tr : Loads.Tracker.t;
    present : bool array;  (* user currently in the network? *)
    alive : bool array;  (* AP currently up? *)
    neighbors : int list array;
        (* base neighborhoods (rate > 0), ascending, alive-agnostic *)
    watchers : int list array;
        (* AP -> users with that AP in their base neighborhood, ascending *)
    dirty : bool array;
    mutable n_dirty : int;
    kernel : [ `Flat | `Boxed ];
    scr : scratch;
        (* flat-kernel scratch, reused across every settle; grown when
           [set_rate] raises a neighborhood's degree *)
  }

  let mark t u =
    if t.present.(u) && not t.dirty.(u) then begin
      t.dirty.(u) <- true;
      t.n_dirty <- t.n_dirty + 1
    end

  let clear t u =
    if t.dirty.(u) then begin
      t.dirty.(u) <- false;
      t.n_dirty <- t.n_dirty - 1
    end

  let mark_watchers t a = List.iter (mark t) t.watchers.(a)

  let create ?init ?present ?(kernel = `Flat) ~objective p =
    let n_aps, n_users = Problem.dims p in
    let p = Problem.copy_for_mutation p in
    let present =
      match present with
      | Some pr ->
          if Array.length pr <> n_users then
            invalid_arg "Online.create: present has wrong length";
          Array.copy pr
      | None -> Array.make n_users true
    in
    let assoc =
      match init with
      | Some a -> Association.copy a
      | None -> Association.empty ~n_users
    in
    (* an absent user is never served *)
    Array.iteri
      (fun u pr -> if not pr then assoc.(u) <- Association.none)
      present;
    let tr = Loads.Tracker.create p assoc in
    let neighbors = Array.init n_users (Problem.neighbor_aps p) in
    let watchers = Array.make n_aps [] in
    for u = n_users - 1 downto 0 do
      List.iter (fun a -> watchers.(a) <- u :: watchers.(a)) neighbors.(u)
    done;
    let t =
      {
        p;
        objective;
        assoc;
        tr;
        present;
        alive = Array.make n_aps true;
        neighbors;
        watchers;
        dirty = Array.make n_users false;
        n_dirty = 0;
        kernel;
        scr = make_scratch ();
      }
    in
    Array.iter
      (fun ns -> scratch_ensure t.scr (List.length ns))
      t.neighbors;
    for u = 0 to n_users - 1 do
      mark t u
    done;
    t

  (** The live association — a view, not a copy. *)
  let assoc t = t.assoc

  (** The live per-AP loads (tracker view, read-only). *)
  let loads t = Loads.Tracker.loads t.tr

  let total_load t = Loads.Tracker.total_load t.tr
  let max_load t = Loads.Tracker.max_load t.tr
  let is_present t u = t.present.(u)
  let ap_alive t a = t.alive.(a)
  let dirty_count t = t.n_dirty

  (** The live link rate — reads the working copy that {!set_rate}
      mutates, not the instance [create] was given. *)
  let link_rate t ~ap ~user = Problem.link_rate t.p ~ap ~user

  (* A dead AP answers no queries: it simply drops out of everyone's
     neighborhood. Filtering the ascending base list preserves order, so
     the decision rule sees exactly [Problem.neighbor_aps p_eff u]. *)
  let live_neighbors t u = List.filter (fun a -> t.alive.(a)) t.neighbors.(u)

  let decide_online t u =
    match t.kernel with
    | `Boxed ->
        decide_with t.p ~neighbors:(live_neighbors t u) ~current:t.assoc.(u)
          ~if_joins:(fun ~user ~ap ->
            Loads.Tracker.load_if_joins t.tr ~user ~ap)
          ~if_leaves:(fun ~user ~ap ->
            Loads.Tracker.load_if_leaves t.tr ~user ~ap)
          ~load:(Loads.Tracker.ap_load t.tr)
          ~objective:t.objective u
    | `Flat ->
        (* fill the live neighborhood plane: the alive filter over the
           ascending base list, order preserved like [live_neighbors] *)
        let nbr = t.scr.nbr in
        let d = ref 0 in
        List.iter
          (fun a ->
            if t.alive.(a) then begin
              nbr.(!d) <- a;
              incr d
            end)
          t.neighbors.(u);
        decide_flat t.p t.tr t.scr ~nbr ~d:!d ~current:t.assoc.(u)
          ~objective:t.objective u

  let apply_move t ~user ~ap =
    let old_ap = t.assoc.(user) in
    if old_ap <> Association.none then mark_watchers t old_ap;
    mark_watchers t ap (* includes [user]: it re-checks next round *);
    Loads.Tracker.move t.tr ~user ~ap

  (** {2 Membership and topology deltas}

      Each returns what actually happened so the caller can trace it;
      no-op deltas (arriving twice, failing a dead AP) change nothing. *)

  let arrive t ~user =
    Wlan_obs.Counters.incr c_deltas;
    if t.present.(user) then false
    else begin
      t.present.(user) <- true;
      mark t user;
      true
    end

  let depart t ~user =
    Wlan_obs.Counters.incr c_deltas;
    if not t.present.(user) then `Absent
    else begin
      t.present.(user) <- false;
      clear t user;
      let ap = t.assoc.(user) in
      if ap = Association.none then `Unserved
      else begin
        Loads.Tracker.unserve t.tr ~user;
        mark_watchers t ap;
        `Served ap
      end
    end

  let fail_ap t ~ap =
    Wlan_obs.Counters.incr c_deltas;
    if not t.alive.(ap) then `Dead
    else begin
      t.alive.(ap) <- false;
      let detached = ref [] in
      for u = Array.length t.assoc - 1 downto 0 do
        if t.assoc.(u) = ap then begin
          Loads.Tracker.unserve t.tr ~user:u;
          detached := u :: !detached
        end
      done;
      mark_watchers t ap (* the detached members are watchers too *);
      `Failed !detached
    end

  let recover_ap t ~ap =
    Wlan_obs.Counters.incr c_deltas;
    if t.alive.(ap) then false
    else begin
      t.alive.(ap) <- true;
      mark_watchers t ap;
      true
    end

  (** [set_rate t ~user ~ap rate] installs a new link rate (negative is
      clamped to [0.] = out of range). If [user] was being served over
      that link it is detached first and — when the link survives —
      reattached at the new rate, so the tracker multisets never hold a
      stale value; a link pushed to [0.] forcibly unserves the user
      ([`Detached], a session interruption). *)
  let set_rate t ~user ~ap rate =
    (* [rate < 0.] is false for nan, so clamping alone would let a nan
       rate through to the load division — reject it explicitly *)
    if Float.is_nan rate then
      invalid_arg "Online.set_rate: rate must not be nan";
    Wlan_obs.Counters.incr c_deltas;
    let rate = if rate < 0. then 0. else rate in
    let old = Problem.link_rate t.p ~ap ~user in
    if Float.equal old rate then `Unchanged
    else begin
      let attached = t.assoc.(user) = ap in
      if attached then Loads.Tracker.unserve t.tr ~user;
      (* on a sparse instance this raises when the pair was never in
         range — the slot structure cannot grow a link (churn drift only
         ever touches links that exist, so replays never hit this) *)
      Problem.set_link_rate t.p ~ap ~user rate;
      (if (old > 0.) <> (rate > 0.) then
         if rate > 0. then begin
           t.neighbors.(user) <- List.sort Int.compare (ap :: t.neighbors.(user));
           t.watchers.(ap) <- List.sort Int.compare (user :: t.watchers.(ap));
           (* the flat kernel fills [scr.nbr] before deciding: keep the
              scratch planes at least as large as any neighborhood *)
           scratch_ensure t.scr (List.length t.neighbors.(user))
         end
         else begin
           t.neighbors.(user) <- List.filter (fun a -> a <> ap) t.neighbors.(user);
           t.watchers.(ap) <- List.filter (fun u -> u <> user) t.watchers.(ap)
         end);
      if attached then
        if rate > 0. then begin
          Loads.Tracker.move t.tr ~user ~ap;
          mark_watchers t ap;
          `Changed
        end
        else begin
          mark_watchers t ap;
          mark t user (* no longer a watcher of [ap] *);
          `Detached
        end
      else begin
        (* no load changed — only this user's own options did *)
        mark t user;
        `Changed
      end
    end

  (** {2 Re-convergence} *)

  type settle_stats = {
    rounds : int;  (** scan rounds that evaluated at least one user *)
    moves : int;  (** (re)associations applied *)
    reassociated : int;  (** distinct users whose serving AP changed *)
    changed : (int * int * int) list;
        (** the settle's net association deltas, ascending user:
            [(user, old_ap, new_ap)] with [Association.none] = unserved;
            [reassociated = List.length changed] *)
    converged : bool;
    oscillated : bool;  (** a seen state recurred ([`Simultaneous] only) *)
  }

  (** [settle t] drains the dirty set: each round re-runs the local rule
      for the users marked dirty at the round's start (ascending index),
      letting moves mark further users, until no user is dirty.
      [`Sequential] applies each move immediately and always converges on
      a static network; [`Simultaneous] decides the whole round on one
      snapshot and can oscillate (Fig. 4) — revisited states are detected
      and reported. Already-quiescent states return in O(1) with
      [rounds = 0]. *)
  let settle ?(max_rounds = 200) ?(mode = `Sequential) t =
    Wlan_obs.Counters.incr c_settles;
    let n_users = Array.length t.assoc in
    let before = Association.copy t.assoc in
    let rounds = ref 0 and moves = ref 0 in
    let converged = ref false and oscillated = ref false in
    (match mode with
    | `Sequential ->
        while (not !converged) && !rounds < max_rounds do
          if t.n_dirty = 0 then converged := true
          else begin
            incr rounds;
            Wlan_obs.Counters.add c_dirty_scanned t.n_dirty;
            Wlan_obs.Counters.record_max c_dirty_peak t.n_dirty;
            for u = 0 to n_users - 1 do
              if t.dirty.(u) then begin
                clear t u;
                match decide_online t u with
                | None -> ()
                | Some ap ->
                    apply_move t ~user:u ~ap;
                    incr moves
              end
            done
          end
        done
    | `Simultaneous ->
        let seen = Hashtbl.create 64 in
        Hashtbl.replace seen (Array.to_list t.assoc) ();
        while
          (not !converged) && (not !oscillated) && !rounds < max_rounds
        do
          if t.n_dirty = 0 then converged := true
          else begin
            incr rounds;
            Wlan_obs.Counters.add c_dirty_scanned t.n_dirty;
            Wlan_obs.Counters.record_max c_dirty_peak t.n_dirty;
            (* decide the whole round on one snapshot, then apply *)
            let decisions = ref [] in
            for u = n_users - 1 downto 0 do
              if t.dirty.(u) then begin
                clear t u;
                match decide_online t u with
                | None -> ()
                | Some ap -> decisions := (u, ap) :: !decisions
              end
            done;
            match !decisions with
            | [] -> ()
            | ds ->
                List.iter (fun (u, ap) -> apply_move t ~user:u ~ap) ds;
                moves := !moves + List.length ds;
                let key = Array.to_list t.assoc in
                if Hashtbl.mem seen key then oscillated := true
                else Hashtbl.replace seen key ()
          end
        done);
    Wlan_obs.Counters.add c_settle_rounds !rounds;
    Wlan_obs.Counters.add c_settle_moves !moves;
    let changed = ref [] in
    for u = n_users - 1 downto 0 do
      if t.assoc.(u) <> before.(u) then
        changed := (u, before.(u), t.assoc.(u)) :: !changed
    done;
    {
      rounds = !rounds;
      moves = !moves;
      reassociated = List.length !changed;
      changed = !changed;
      converged = !converged;
      oscillated = !oscillated;
    }

  (** The static instance the network currently embodies: the working
      link structure with dead-AP and absent-user links zeroed. A fresh
      {!run} on it is the "what a from-scratch solve would have done"
      baseline the disruption metrics compare against, and the
      quiescence oracle's ground truth. *)
  let effective_problem t =
    Problem.masked t.p ~ap_alive:t.alive ~user_present:t.present
end

(** {1 The paper's three distributed algorithms} *)

let mnu ?init ?max_rounds ?(scheduler = Sequential) p =
  let o = run ?init ?max_rounds ~scheduler ~objective:Min_total_load p in
  (Solution.make ~algorithm:"MNU-distributed" p o.assoc, o)

(** Distributed MLA is the same local rule as distributed MNU (§6.2). *)
let mla ?init ?max_rounds ?(scheduler = Sequential) p =
  let o = run ?init ?max_rounds ~scheduler ~objective:Min_total_load p in
  (Solution.make ~algorithm:"MLA-distributed" p o.assoc, o)

let bla ?init ?max_rounds ?(scheduler = Sequential) p =
  let o = run ?init ?max_rounds ~scheduler ~objective:Min_load_vector p in
  (Solution.make ~algorithm:"BLA-distributed" p o.assoc, o)
