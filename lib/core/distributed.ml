(** Distributed association control (§4.2, §5.2, §6.2).

    Each user periodically queries its neighbor APs for the sessions they
    transmit and the rates, computes what each AP's load would become if it
    joined (and what its current AP's load would become if it left), and
    re-associates according to the objective:

    - {b MNU / MLA rule} ([Min_total_load]): join the feasible neighbor AP
      that minimizes the {e total} load of the neighborhood — every user
      tries to consume as little of the shared airtime as possible.
    - {b BLA rule} ([Min_load_vector]): join the feasible neighbor AP that
      minimizes the neighborhood's load vector sorted in non-increasing
      order, compared lexicographically (footnote 5).

    Ties are broken by signal strength, then by lower AP index. A served
    user only moves when the move {e strictly} improves its objective; an
    unserved user joins the best feasible AP outright.

    Three decision schedulers:
    - [Sequential]: users decide one at a time — always converges on a
      static network (Lemmas 1 and 2: every move strictly decreases a global
      potential drawn from a finite set of values).
    - [Simultaneous]: all users decide on the same snapshot, then all apply.
      May oscillate forever (the paper's Fig. 4 two-user swap); we detect
      revisited states and report [oscillated = true].
    - [Locked]: the paper's §8 future-work fix, implemented here. A user
      must lock every AP in its neighborhood before deciding; users whose
      neighborhood overlaps an already-locked AP sit the round out. Granted
      users decide on live state, so each applied move strictly improves the
      potential and convergence is restored even with concurrency. *)

open Wlan_model

let src = Logs.Src.create "mcast.distributed" ~doc:"Distributed association"

module Log = (val Logs.src_log src : Logs.LOG)

type objective = Min_total_load | Min_load_vector
type scheduler = Sequential | Simultaneous | Locked

type outcome = {
  assoc : Association.t;
  rounds : int;  (** decision rounds executed *)
  moves : int;  (** total (re)associations applied *)
  converged : bool;  (** a full round made no move *)
  oscillated : bool;  (** a previously seen state recurred (Simultaneous) *)
}


(* Hypothetical load of neighbor AP [b] if [user] moves from [old_ap] to
   [new_ap]; [loads] caches current loads of unaffected APs. *)
let hypothetical_load p assoc ~loads ~user ~old_ap ~new_ap b =
  if b = new_ap then Loads.load_if_joins p assoc ~user ~ap:b
  else if b = old_ap then Loads.load_if_leaves p assoc ~user ~ap:b
  else loads.(b)

(* Objective value of user [u]'s neighborhood after a hypothetical move.
   Total-load objective: scalar sum boxed in a 1-element array so both
   objectives compare via lexicographic vector order. *)
let eval p assoc ~loads ~objective ~user ~neighbors ~old_ap ~new_ap =
  let neighborhood =
    List.map
      (fun b -> hypothetical_load p assoc ~loads ~user ~old_ap ~new_ap b)
      neighbors
  in
  match objective with
  | Min_total_load -> [| List.fold_left ( +. ) 0. neighborhood |]
  | Min_load_vector -> Loads.sorted_load_vector (Array.of_list neighborhood)

let vec_lt a b = Loads.compare_load_vectors_eps a b < 0
let vec_approx_equal a b =
  Array.length a = Array.length b && Loads.compare_load_vectors_eps a b = 0

(** The local decision of user [u]: [Some ap] when [u] should (re)associate
    with [ap], [None] to stay put. [loads] must be the current AP loads. *)
let decide p assoc ~loads ~objective u =
  let neighbors = Problem.neighbor_aps p u in
  match neighbors with
  | [] -> None
  | _ ->
      let current = assoc.(u) in
      let old_ap = current in
      let feasible a =
        a = current
        || Loads.load_if_joins p assoc ~user:u ~ap:a
           <= Problem.ap_budget p a +. 1e-12
      in
      let candidates = List.filter feasible neighbors in
      let scored =
        List.map
          (fun a ->
            ( a,
              eval p assoc ~loads ~objective ~user:u ~neighbors ~old_ap
                ~new_ap:a ))
          candidates
      in
      (match scored with
      | [] -> None
      | _ ->
          (* best score; ties by stronger signal, then lower index *)
          let best =
            List.fold_left
              (fun (ba, bv) (a, v) ->
                if vec_lt v bv then (a, v)
                else if
                  vec_approx_equal v bv
                  && Problem.(p.signal.(a).(u) > p.signal.(ba).(u) +. 1e-12)
                then (a, v)
                else (ba, bv))
              (List.hd scored) (List.tl scored)
          in
          let best_ap, best_v = best in
          if current = Association.none then
            (* unserved: any feasible AP grants service *)
            Some best_ap
          else if best_ap <> current then begin
            (* served: move only on strict improvement over staying *)
            let stay_v =
              eval p assoc ~loads ~objective ~user:u ~neighbors ~old_ap
                ~new_ap:current
            in
            if vec_lt best_v stay_v then Some best_ap else None
          end
          else None)

let apply p assoc loads ~user ~ap =
  let old_ap = assoc.(user) in
  assoc.(user) <- ap;
  loads.(ap) <- Loads.ap_load p assoc ~ap;
  if old_ap <> Association.none && old_ap <> ap then
    loads.(old_ap) <- Loads.ap_load p assoc ~ap:old_ap

let run ?init ?(max_rounds = 200) ~scheduler ~objective p =
  let _, n_users = Problem.dims p in
  let assoc =
    match init with
    | Some a -> Association.copy a
    | None -> Association.empty ~n_users
  in
  let loads = Loads.ap_loads p assoc in
  let moves = ref 0 in
  let rounds = ref 0 in
  let converged = ref false in
  let oscillated = ref false in
  (match scheduler with
  | Sequential ->
      while (not !converged) && !rounds < max_rounds do
        incr rounds;
        let moved = ref false in
        for u = 0 to n_users - 1 do
          match decide p assoc ~loads ~objective u with
          | None -> ()
          | Some ap ->
              apply p assoc loads ~user:u ~ap;
              incr moves;
              moved := true
        done;
        if not !moved then converged := true
      done
  | Simultaneous ->
      let seen = Hashtbl.create 64 in
      Hashtbl.replace seen (Array.to_list assoc) ();
      while (not !converged) && (not !oscillated) && !rounds < max_rounds do
        incr rounds;
        let decisions =
          List.init n_users (fun u ->
              (u, decide p assoc ~loads ~objective u))
          |> List.filter_map (fun (u, d) ->
                 match d with Some ap -> Some (u, ap) | None -> None)
        in
        if decisions = [] then converged := true
        else begin
          List.iter (fun (u, ap) -> assoc.(u) <- ap) decisions;
          moves := !moves + List.length decisions;
          Array.iteri (fun a _ -> loads.(a) <- Loads.ap_load p assoc ~ap:a) loads;
          let key = Array.to_list assoc in
          if Hashtbl.mem seen key then oscillated := true
          else Hashtbl.replace seen key ()
        end
      done
  | Locked ->
      (* Locks held by users that committed a move stay held until the end
         of the round (their neighborhoods must not be re-read by peers);
         users that decide to stay release immediately. The scan origin
         rotates every round so no user starves behind a habitual locker. *)
      while (not !converged) && !rounds < max_rounds do
        let locked = Array.make (fst (Problem.dims p)) false in
        let moved = ref false in
        let offset = if n_users = 0 then 0 else !rounds mod n_users in
        incr rounds;
        for i = 0 to n_users - 1 do
          let u = (i + offset) mod n_users in
          let neighbors = Problem.neighbor_aps p u in
          if neighbors <> [] && List.for_all (fun a -> not locked.(a)) neighbors
          then begin
            (* acquire locks, decide on live state *)
            List.iter (fun a -> locked.(a) <- true) neighbors;
            match decide p assoc ~loads ~objective u with
            | None -> List.iter (fun a -> locked.(a) <- false) neighbors
            | Some ap ->
                apply p assoc loads ~user:u ~ap;
                incr moves;
                moved := true
          end
        done;
        if not !moved then converged := true
      done);
  Log.debug (fun m ->
      m "finished: rounds %d, moves %d, converged %b, oscillated %b" !rounds
        !moves !converged !oscillated);
  { assoc; rounds = !rounds; moves = !moves; converged = !converged;
    oscillated = !oscillated }

(** {1 The paper's three distributed algorithms} *)

let mnu ?init ?max_rounds ?(scheduler = Sequential) p =
  let o = run ?init ?max_rounds ~scheduler ~objective:Min_total_load p in
  (Solution.make ~algorithm:"MNU-distributed" p o.assoc, o)

(** Distributed MLA is the same local rule as distributed MNU (§6.2). *)
let mla ?init ?max_rounds ?(scheduler = Sequential) p =
  let o = run ?init ?max_rounds ~scheduler ~objective:Min_total_load p in
  (Solution.make ~algorithm:"MLA-distributed" p o.assoc, o)

let bla ?init ?max_rounds ?(scheduler = Sequential) p =
  let o = run ?init ?max_rounds ~scheduler ~objective:Min_load_vector p in
  (Solution.make ~algorithm:"BLA-distributed" p o.assoc, o)
