(** Geometric sharding of association-control instances (DESIGN.md §4.10).

    The paper's local decision rule only ever couples a user to the APs
    in its radio range, and two APs only ever interact when some user
    hears both — which, ranges being hard (~200 m for 802.11a), requires
    the APs to sit within {e twice the radio range} of each other. A
    city-scale deployment therefore decomposes into {e interaction
    components}: groups of APs connected through shared users, with no
    load or decision flowing between groups. Each component can be
    solved on its own [Harness.Pool] domain and the partial associations
    merged back — and because the sequential distributed dynamics never
    cross a component boundary, the merged association is {e byte
    identical} to the unsharded solve, at any job count (pinned by the
    golden digests in [test/test_sparse.ml]).

    Two planners produce the decomposition:
    - {!plan} unions APs through the instance's actual candidate lists —
      exact, representation-agnostic, needs no geometry;
    - {!plan_geometric} unions APs lying within the interaction radius
      (2 × range) of each other, found through a {!Wlan_model.Sparse.Grid}
      whose probes reach one cell — the {e halo zone} — beyond every cell
      boundary, so cross-shard AP pairs are never missed. Pure geometry,
      O(APs) grid work; a superset of {!plan}'s coupling, hence equally
      exact.

    Equivalence holds whenever the unsharded run converges: a capped
    [max_rounds] is shared globally by an unsharded run but granted
    per-shard here, so truncated runs may legitimately differ. *)

open Wlan_model

(* Deterministic event counters (DESIGN.md §4.9): planning and merging
   iterate APs, users and shards in ascending order, so these totals are
   pure functions of the instance (merge order is submission order even
   on a pool, see Harness.Pool). *)
let c_plans = Wlan_obs.Counters.make "shard.plans"
let c_components = Wlan_obs.Counters.make "shard.components"
let c_halo_reconciles = Wlan_obs.Counters.make "shard.halo_reconciles"

type shard = {
  id : int;  (** dense shard index, ascending by smallest AP index *)
  aps : int array;  (** global AP indices, ascending *)
  users : int array;  (** global user indices, ascending *)
}

type plan = {
  shards : shard list;  (** ascending [id]; every shard has >= 1 user *)
  idle_aps : int array;  (** APs no present user can hear, ascending *)
  uncovered : int array;  (** users with an empty candidate list, ascending *)
}

(* Union-find over AP indices, path compression, smaller root wins —
   the representative of a component is its smallest AP index, which
   makes shard numbering input-order independent. *)
let rec find parent a =
  if parent.(a) = a then a
  else begin
    let r = find parent parent.(a) in
    parent.(a) <- r;
    r
  end

let union parent a b =
  let ra = find parent a and rb = find parent b in
  if ra < rb then parent.(rb) <- ra else if rb < ra then parent.(ra) <- rb

(* Group APs and users by component root. [root_of_user u] must give the
   component of ALL of [u]'s candidates (the planners guarantee it). *)
let plan_of_roots p parent =
  let n_aps, n_users = Problem.dims p in
  let user_root = Array.make n_users (-1) in
  for u = 0 to n_users - 1 do
    Problem.iter_candidates p u (fun a _ _ ->
        let r = find parent a in
        if user_root.(u) = -1 then user_root.(u) <- r
        else if user_root.(u) <> r then
          (* only reachable through a mis-parameterized geometric plan:
             the interaction radius failed to couple two APs one user
             hears — solving such a plan would not be equivalent *)
          Fmt.kstr invalid_arg
            "Shard.plan: user %d hears APs of two different shards \
             (interaction radius too small?)"
            u)
  done;
  (* shard ids in ascending order of component root = smallest AP; only
     components some user hears become shards *)
  let id_of_root = Hashtbl.create 16 in
  let n_shards = ref 0 in
  let live = Array.make n_aps false in
  Array.iter (fun r -> if r >= 0 then live.(r) <- true) user_root;
  for a = 0 to n_aps - 1 do
    let r = find parent a in
    if live.(r) && not (Hashtbl.mem id_of_root r) then begin
      Hashtbl.add id_of_root r !n_shards;
      incr n_shards
    end
  done;
  let ap_acc = Array.make !n_shards []
  and user_acc = Array.make !n_shards []
  and idle = ref []
  and uncov = ref [] in
  for a = n_aps - 1 downto 0 do
    let r = find parent a in
    if live.(r) then
      let id = Hashtbl.find id_of_root r in
      ap_acc.(id) <- a :: ap_acc.(id)
    else idle := a :: !idle
  done;
  for u = n_users - 1 downto 0 do
    if user_root.(u) = -1 then uncov := u :: !uncov
    else
      let id = Hashtbl.find id_of_root user_root.(u) in
      user_acc.(id) <- u :: user_acc.(id)
  done;
  let shards =
    List.init !n_shards (fun id ->
        {
          id;
          aps = Array.of_list ap_acc.(id);
          users = Array.of_list user_acc.(id);
        })
  in
  Wlan_obs.Counters.incr c_plans;
  Wlan_obs.Counters.add c_components !n_shards;
  {
    shards;
    idle_aps = Array.of_list !idle;
    uncovered = Array.of_list !uncov;
  }

(** Interaction components from the instance's candidate lists: two APs
    share a shard iff connected through a chain of users hearing both
    ends of each link. Exact on both representations. *)
let plan p =
  let n_aps, n_users = Problem.dims p in
  let parent = Array.init n_aps Fun.id in
  for u = 0 to n_users - 1 do
    let first = ref (-1) in
    Problem.iter_candidates p u (fun a _ _ ->
        if !first = -1 then first := a else union parent !first a)
  done;
  plan_of_roots p parent

(** Interaction components from pure geometry: APs within
    [interaction_radius] (use 2 × the rate table's range) are coupled.
    The bucket grid's 3×3 probe block is the halo: every cross-cell pair
    within the radius is examined, none missed — including pairs at
    exactly the radius or straddling a cell edge. A superset of {!plan}'s
    coupling (any user hearing APs [a] and [b] places them within
    2 × range of each other by the triangle inequality), hence equally
    exact for solving.
    @raise Invalid_argument if some user's candidates end up in two
    shards — the radius was smaller than twice the effective range. *)
let plan_geometric ~ap_pos ~interaction_radius p =
  let n_aps, _ = Problem.dims p in
  if Array.length ap_pos <> n_aps then
    invalid_arg "Shard.plan_geometric: ap_pos arity mismatch";
  let parent = Array.init n_aps Fun.id in
  if n_aps > 0 && interaction_radius > 0. then begin
    let grid = Sparse.Grid.build ~cell:interaction_radius ap_pos in
    for a = 0 to n_aps - 1 do
      List.iter
        (fun b ->
          if
            b > a
            && Point.dist ap_pos.(a) ap_pos.(b) <= interaction_radius
          then union parent a b)
        (Sparse.Grid.probe grid ap_pos.(a))
    done
  end;
  plan_of_roots p parent

(** The sub-instance a shard solves: the shard's APs and users reindexed
    densely (order-preserving, so every iteration the solvers perform
    happens in the same relative order as in the full instance), the
    {e full} session table (so per-session load sums use identical float
    expressions), and the shard's slice of any per-AP budgets. Always
    sparse — built from candidate lists, the dense matrix is never
    allocated. *)
let extract p sh =
  let n_aps, _ = Problem.dims p in
  let ap_local = Array.make n_aps (-1) in
  Array.iteri (fun la a -> ap_local.(a) <- la) sh.aps;
  let links =
    Array.map
      (fun u ->
        let acc = ref [] in
        Problem.iter_candidates p u (fun a r sg ->
            acc := (ap_local.(a), r, sg) :: !acc);
        List.rev !acc)
      sh.users
  in
  let sparse = Sparse.make ~n_aps:(Array.length sh.aps) ~links in
  let user_session = Array.map (Problem.user_session p) sh.users in
  let ap_budgets =
    Option.map
      (fun b -> Array.map (fun a -> b.(a)) sh.aps)
      p.Problem.ap_budgets
  in
  Problem.make_sparse ?ap_budgets
    ~session_rates:(Array.copy p.Problem.session_rates)
    ~user_session ~sparse ~budget:(Problem.budget p) ()

type result = {
  assoc : Association.t;  (** merged global association *)
  rounds : int;  (** max shard rounds (shards run concurrently) *)
  moves : int;  (** total moves across shards *)
  converged : bool;  (** every shard converged *)
  n_shards : int;
}

(** [solve ~objective p] plans (unless given one), solves every shard
    independently with [Distributed.run ~scheduler:Sequential], and
    merges the partial associations in ascending shard order. [fanout]
    runs the per-shard thunks — inject [Harness.Pool.run pool] to spread
    shards over domains; the default runs them in place. Results are
    consumed in submission order either way, so the merged association
    is identical at any job count, and — whenever the runs converge —
    identical to the unsharded sequential solve. Uncovered users stay
    unserved, exactly as they would unsharded. *)
let solve ?plan:pl ?(fanout = List.map (fun f -> f ())) ?max_rounds ~objective
    p =
  let pl = match pl with Some x -> x | None -> plan p in
  let _, n_users = Problem.dims p in
  let outcomes =
    fanout
      (List.map
         (fun sh () ->
           Distributed.run ?max_rounds ~scheduler:Distributed.Sequential
             ~objective (extract p sh))
         pl.shards)
  in
  let assoc = Association.empty ~n_users in
  let rounds = ref 0 and moves = ref 0 and converged = ref true in
  List.iter2
    (fun sh (o : Distributed.outcome) ->
      Wlan_obs.Counters.incr c_halo_reconciles;
      Array.iteri
        (fun lu la ->
          if la <> Association.none then
            assoc.(sh.users.(lu)) <- sh.aps.(la))
        o.Distributed.assoc;
      rounds := Int.max !rounds o.Distributed.rounds;
      moves := !moves + o.Distributed.moves;
      converged := !converged && o.Distributed.converged)
    pl.shards outcomes;
  {
    assoc;
    rounds = !rounds;
    moves = !moves;
    converged = !converged;
    n_shards = List.length pl.shards;
  }

(** {1 Shard-aware centralized reductions}

    The covering reductions decompose over interaction components too:
    a covering set (AP, session, rate) only contains users of its AP's
    shard, so gains, per-group spent budgets and replays never cross
    shards. Two things are global and must be re-made globally:

    - the H1/H2 repair keeps whichever half covers more {e overall} —
      per-shard [Mcg.resplit] weights are summed and the same half kept
      everywhere;
    - SCG's per-round keep decision likewise, so the [B*] probes run all
      shards in lockstep, round by round.

    Both drivers run the [`Lazy] engine (sharded [`Classic] is not
    well-defined: its layout-resolved ties depend on global pop/re-push
    interleavings that sharding removes; [`Lazy]'s lower-index total
    order makes per-shard selection sequences exactly the unsharded
    run's projection). Merged associations are byte-identical to the
    unsharded [`Lazy] solves — pinned by the differential suites in
    [test/test_flat.ml]. *)

let mnu_sharded_name = "MNU-centralized-sharded"
let bla_sharded_name = "BLA-centralized-sharded"

(** [solve_mnu p] — sharded Centralized MNU: per-shard budgeted greedy
    ([engine] defaults to [`Lazy]; [`Classic] would resolve score ties
    layout-dependently and is not equivalence-safe here), H1/H2 halves
    recomputed per shard and the keep decision made on the summed
    weights. [fanout] runs the per-shard solves (inject
    [Harness.Pool.run pool]; results are consumed in submission order,
    so the merged association is identical at any job count). *)
let solve_mnu ?plan:pl ?(engine = `Lazy) ?(fanout = List.map (fun f -> f ()))
    p =
  let pl = match pl with Some x -> x | None -> plan p in
  let _, n_users = Problem.dims p in
  let parts =
    fanout
      (List.map
         (fun sh () ->
           let sub = extract p sh in
           let inst = Reduction.cover_instance ~filter_over_budget:true sub in
           let universe = Reduction.coverable_users sub in
           let budgets =
             Array.init
               (Optkit.Cover_instance.n_groups inst)
               (Problem.ap_budget sub)
           in
           let r = Optkit.Mcg.greedy ~engine inst ~budgets ~universe () in
           let sp =
             Optkit.Mcg.resplit inst ~budgets ~universe
               ~raw_order:r.Optkit.Mcg.raw_order
           in
           let local_of sels =
             Reduction.association_of_selections sub inst
               (List.map
                  (fun (s : Optkit.Mcg.selection) -> (s.set, s.newly))
                  sels)
           in
           (sp.Optkit.Mcg.w1, sp.Optkit.Mcg.w2, local_of sp.Optkit.Mcg.h1,
            local_of sp.Optkit.Mcg.h2))
         pl.shards)
  in
  let w1 = List.fold_left (fun acc (w, _, _, _) -> acc +. w) 0. parts in
  let w2 = List.fold_left (fun acc (_, w, _, _) -> acc +. w) 0. parts in
  let keep_h1 = w1 >= w2 in
  let assoc = Association.empty ~n_users in
  List.iter2
    (fun sh (_, _, a1, a2) ->
      Wlan_obs.Counters.incr c_halo_reconciles;
      let local = if keep_h1 then a1 else a2 in
      Array.iteri
        (fun lu la ->
          if la <> Association.none then assoc.(sh.users.(lu)) <- sh.aps.(la))
        local)
    pl.shards parts;
  Solution.make ~algorithm:mnu_sharded_name p assoc

(** [solve_bla p] — sharded Centralized BLA. The [B*] grid is the global
    one ({!Optkit.Scg.grid_lo} decomposes as a max over shards); each
    probe runs every shard's SCG rounds in lockstep through per-shard
    {!Optkit.Mcg.session}s, making the per-round H1/H2 decision on the
    summed weights, and is feasible when every shard's remaining set
    empties within the global round cap. Feasible probes are ranked
    exactly as [Bla.run]: smallest summed-cover bound first, then the
    smallest {e realized} max AP load wins. [fanout] evaluates the
    per-probe thunks (submission order, as everywhere). [None] when no
    [B* <= 1] is feasible. *)
let solve_bla ?plan:pl ?(n_guesses = 12) ?(fanout = List.map (fun f -> f ()))
    p =
  let pl = match pl with Some x -> x | None -> plan p in
  let _, n_users = Problem.dims p in
  let subs =
    Array.of_list
      (List.map
         (fun sh ->
           let sub = extract p sh in
           let inst = Reduction.cover_instance sub in
           let universe = Reduction.coverable_users sub in
           (sh, sub, inst, universe))
         pl.shards)
  in
  let ns = Array.length subs in
  let lo =
    Array.fold_left
      (fun acc (_, _, inst, u) ->
        Float.max acc (Optkit.Scg.grid_lo ~universe:u inst))
      1e-6 subs
  in
  let grid = Optkit.Scg.grid_points ~n_guesses lo in
  let n_total =
    Array.fold_left
      (fun acc (_, _, _, u) -> acc + Optkit.Bitset.cardinal u)
      0 subs
  in
  let k = Optkit.Scg.max_rounds_for n_total in
  (* one lockstep probe at a fixed B*: per-shard sessions persist score
     bounds across rounds; the arena is probe-local, so probes are safe
     to fan out across domains *)
  let probe bstar =
    let arena = Optkit.Arena.create () in
    let budgets =
      Array.map
        (fun (_, _, inst, _) ->
          Array.make (Optkit.Cover_instance.n_groups inst) bstar)
        subs
    in
    let sessions =
      Array.mapi
        (fun i (_, _, inst, _) ->
          Optkit.Mcg.session ~arena inst ~budgets:budgets.(i))
        subs
    in
    let remaining =
      Array.map (fun (_, _, _, u) -> Optkit.Bitset.copy u) subs
    in
    let sels = Array.make ns [] (* selection lists per shard, reversed *) in
    let group_cost =
      Array.map
        (fun (_, _, inst, _) ->
          Array.make (Optkit.Cover_instance.n_groups inst) 0.)
        subs
    in
    let all_covered () =
      Array.for_all Optkit.Bitset.is_empty remaining
    in
    (try
       for _ = 1 to k do
         if all_covered () then raise Exit;
         let splits =
           Array.mapi
             (fun i (_, _, inst, _) ->
               if Optkit.Bitset.is_empty remaining.(i) then None
               else
                 let r =
                   Optkit.Mcg.session_round sessions.(i)
                     ~remaining:remaining.(i)
                 in
                 Some
                   (Optkit.Mcg.resplit inst ~budgets:budgets.(i)
                      ~universe:remaining.(i)
                      ~raw_order:r.Optkit.Mcg.raw_order))
             subs
         in
         let w1 = ref 0. and w2 = ref 0. in
         Array.iter
           (function
             | None -> ()
             | Some (sp : Optkit.Mcg.split) ->
                 w1 := !w1 +. sp.w1;
                 w2 := !w2 +. sp.w2)
           splits;
         let keep_h1 = !w1 >= !w2 in
         let progress = ref 0 in
         Array.iter
           (function
             | None -> ()
             | Some (sp : Optkit.Mcg.split) ->
                 progress :=
                   !progress
                   + Optkit.Bitset.cardinal
                       (if keep_h1 then sp.cov1 else sp.cov2))
           splits;
         if !progress = 0 then raise Exit (* no progress: infeasible *);
         Array.iteri
           (fun i sp ->
             match sp with
             | None -> ()
             | Some (sp : Optkit.Mcg.split) ->
                 let half = if keep_h1 then sp.h1 else sp.h2 in
                 let cov = if keep_h1 then sp.cov1 else sp.cov2 in
                 let _, _, inst, _ = subs.(i) in
                 List.iter
                   (fun (s : Optkit.Mcg.selection) ->
                     let g = Optkit.Cover_instance.group inst s.set in
                     group_cost.(i).(g) <-
                       group_cost.(i).(g)
                       +. Optkit.Cover_instance.cost inst s.set;
                     sels.(i) <- s :: sels.(i))
                   half;
                 Optkit.Bitset.diff_inplace remaining.(i) cov)
           splits
       done
     with Exit -> ());
    let max_gc =
      Array.fold_left
        (fun acc gc -> Array.fold_left Float.max acc gc)
        0. group_cost
    in
    let feasible = all_covered () in
    let assoc = Association.empty ~n_users in
    if feasible then
      Array.iteri
        (fun i shard_sels ->
          let sh, sub, inst, _ = subs.(i) in
          let local =
            Reduction.association_of_selections sub inst
              (List.map
                 (fun (s : Optkit.Mcg.selection) -> (s.set, s.newly))
                 (List.rev shard_sels))
          in
          Array.iteri
            (fun lu la ->
              if la <> Association.none then
                assoc.(sh.users.(lu)) <- sh.aps.(la))
            local)
        sels;
    (feasible, max_gc, assoc)
  in
  let results = fanout (List.map (fun bstar () -> probe bstar) grid) in
  let feasible =
    List.filter_map
      (fun (ok, max_gc, assoc) -> if ok then Some (max_gc, assoc) else None)
      results
  in
  match feasible with
  | [] -> None
  | _ ->
      Array.iter
        (fun _ -> Wlan_obs.Counters.incr c_halo_reconciles)
        subs;
      (* rank exactly as the unsharded driver: ascending summed-cover
         bound (stable on ties), then the smallest realized max load
         with a strict 1e-12 improvement *)
      let sorted =
        List.stable_sort (fun (a, _) (b, _) -> Float.compare a b) feasible
      in
      let sols =
        List.map
          (fun (_, assoc) -> Solution.make ~algorithm:bla_sharded_name p assoc)
          sorted
      in
      Some
        (List.fold_left
           (fun (best : Solution.t) (s : Solution.t) ->
             if s.max_load < best.max_load -. 1e-12 then s else best)
           (List.hd sols) (List.tl sols))

let pp_plan ppf pl =
  Fmt.pf ppf "@[<v>%d shards (%d idle APs, %d uncovered users)@,%a@]"
    (List.length pl.shards)
    (Array.length pl.idle_aps)
    (Array.length pl.uncovered)
    Fmt.(
      list ~sep:cut (fun ppf sh ->
          pf ppf "shard %d: %d APs, %d users" sh.id (Array.length sh.aps)
            (Array.length sh.users)))
    pl.shards
