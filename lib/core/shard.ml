(** Geometric sharding of association-control instances (DESIGN.md §4.10).

    The paper's local decision rule only ever couples a user to the APs
    in its radio range, and two APs only ever interact when some user
    hears both — which, ranges being hard (~200 m for 802.11a), requires
    the APs to sit within {e twice the radio range} of each other. A
    city-scale deployment therefore decomposes into {e interaction
    components}: groups of APs connected through shared users, with no
    load or decision flowing between groups. Each component can be
    solved on its own [Harness.Pool] domain and the partial associations
    merged back — and because the sequential distributed dynamics never
    cross a component boundary, the merged association is {e byte
    identical} to the unsharded solve, at any job count (pinned by the
    golden digests in [test/test_sparse.ml]).

    Two planners produce the decomposition:
    - {!plan} unions APs through the instance's actual candidate lists —
      exact, representation-agnostic, needs no geometry;
    - {!plan_geometric} unions APs lying within the interaction radius
      (2 × range) of each other, found through a {!Wlan_model.Sparse.Grid}
      whose probes reach one cell — the {e halo zone} — beyond every cell
      boundary, so cross-shard AP pairs are never missed. Pure geometry,
      O(APs) grid work; a superset of {!plan}'s coupling, hence equally
      exact.

    Equivalence holds whenever the unsharded run converges: a capped
    [max_rounds] is shared globally by an unsharded run but granted
    per-shard here, so truncated runs may legitimately differ. *)

open Wlan_model

(* Deterministic event counters (DESIGN.md §4.9): planning and merging
   iterate APs, users and shards in ascending order, so these totals are
   pure functions of the instance (merge order is submission order even
   on a pool, see Harness.Pool). *)
let c_plans = Wlan_obs.Counters.make "shard.plans"
let c_components = Wlan_obs.Counters.make "shard.components"
let c_halo_reconciles = Wlan_obs.Counters.make "shard.halo_reconciles"

type shard = {
  id : int;  (** dense shard index, ascending by smallest AP index *)
  aps : int array;  (** global AP indices, ascending *)
  users : int array;  (** global user indices, ascending *)
}

type plan = {
  shards : shard list;  (** ascending [id]; every shard has >= 1 user *)
  idle_aps : int array;  (** APs no present user can hear, ascending *)
  uncovered : int array;  (** users with an empty candidate list, ascending *)
}

(* Union-find over AP indices, path compression, smaller root wins —
   the representative of a component is its smallest AP index, which
   makes shard numbering input-order independent. *)
let rec find parent a =
  if parent.(a) = a then a
  else begin
    let r = find parent parent.(a) in
    parent.(a) <- r;
    r
  end

let union parent a b =
  let ra = find parent a and rb = find parent b in
  if ra < rb then parent.(rb) <- ra else if rb < ra then parent.(ra) <- rb

(* Group APs and users by component root. [root_of_user u] must give the
   component of ALL of [u]'s candidates (the planners guarantee it). *)
let plan_of_roots p parent =
  let n_aps, n_users = Problem.dims p in
  let user_root = Array.make n_users (-1) in
  for u = 0 to n_users - 1 do
    Problem.iter_candidates p u (fun a _ _ ->
        let r = find parent a in
        if user_root.(u) = -1 then user_root.(u) <- r
        else if user_root.(u) <> r then
          (* only reachable through a mis-parameterized geometric plan:
             the interaction radius failed to couple two APs one user
             hears — solving such a plan would not be equivalent *)
          Fmt.kstr invalid_arg
            "Shard.plan: user %d hears APs of two different shards \
             (interaction radius too small?)"
            u)
  done;
  (* shard ids in ascending order of component root = smallest AP; only
     components some user hears become shards *)
  let id_of_root = Hashtbl.create 16 in
  let n_shards = ref 0 in
  let live = Array.make n_aps false in
  Array.iter (fun r -> if r >= 0 then live.(r) <- true) user_root;
  for a = 0 to n_aps - 1 do
    let r = find parent a in
    if live.(r) && not (Hashtbl.mem id_of_root r) then begin
      Hashtbl.add id_of_root r !n_shards;
      incr n_shards
    end
  done;
  let ap_acc = Array.make !n_shards []
  and user_acc = Array.make !n_shards []
  and idle = ref []
  and uncov = ref [] in
  for a = n_aps - 1 downto 0 do
    let r = find parent a in
    if live.(r) then
      let id = Hashtbl.find id_of_root r in
      ap_acc.(id) <- a :: ap_acc.(id)
    else idle := a :: !idle
  done;
  for u = n_users - 1 downto 0 do
    if user_root.(u) = -1 then uncov := u :: !uncov
    else
      let id = Hashtbl.find id_of_root user_root.(u) in
      user_acc.(id) <- u :: user_acc.(id)
  done;
  let shards =
    List.init !n_shards (fun id ->
        {
          id;
          aps = Array.of_list ap_acc.(id);
          users = Array.of_list user_acc.(id);
        })
  in
  Wlan_obs.Counters.incr c_plans;
  Wlan_obs.Counters.add c_components !n_shards;
  {
    shards;
    idle_aps = Array.of_list !idle;
    uncovered = Array.of_list !uncov;
  }

(** Interaction components from the instance's candidate lists: two APs
    share a shard iff connected through a chain of users hearing both
    ends of each link. Exact on both representations. *)
let plan p =
  let n_aps, n_users = Problem.dims p in
  let parent = Array.init n_aps Fun.id in
  for u = 0 to n_users - 1 do
    let first = ref (-1) in
    Problem.iter_candidates p u (fun a _ _ ->
        if !first = -1 then first := a else union parent !first a)
  done;
  plan_of_roots p parent

(** Interaction components from pure geometry: APs within
    [interaction_radius] (use 2 × the rate table's range) are coupled.
    The bucket grid's 3×3 probe block is the halo: every cross-cell pair
    within the radius is examined, none missed — including pairs at
    exactly the radius or straddling a cell edge. A superset of {!plan}'s
    coupling (any user hearing APs [a] and [b] places them within
    2 × range of each other by the triangle inequality), hence equally
    exact for solving.
    @raise Invalid_argument if some user's candidates end up in two
    shards — the radius was smaller than twice the effective range. *)
let plan_geometric ~ap_pos ~interaction_radius p =
  let n_aps, _ = Problem.dims p in
  if Array.length ap_pos <> n_aps then
    invalid_arg "Shard.plan_geometric: ap_pos arity mismatch";
  let parent = Array.init n_aps Fun.id in
  if n_aps > 0 && interaction_radius > 0. then begin
    let grid = Sparse.Grid.build ~cell:interaction_radius ap_pos in
    for a = 0 to n_aps - 1 do
      List.iter
        (fun b ->
          if
            b > a
            && Point.dist ap_pos.(a) ap_pos.(b) <= interaction_radius
          then union parent a b)
        (Sparse.Grid.probe grid ap_pos.(a))
    done
  end;
  plan_of_roots p parent

(** The sub-instance a shard solves: the shard's APs and users reindexed
    densely (order-preserving, so every iteration the solvers perform
    happens in the same relative order as in the full instance), the
    {e full} session table (so per-session load sums use identical float
    expressions), and the shard's slice of any per-AP budgets. Always
    sparse — built from candidate lists, the dense matrix is never
    allocated. *)
let extract p sh =
  let n_aps, _ = Problem.dims p in
  let ap_local = Array.make n_aps (-1) in
  Array.iteri (fun la a -> ap_local.(a) <- la) sh.aps;
  let links =
    Array.map
      (fun u ->
        let acc = ref [] in
        Problem.iter_candidates p u (fun a r sg ->
            acc := (ap_local.(a), r, sg) :: !acc);
        List.rev !acc)
      sh.users
  in
  let sparse = Sparse.make ~n_aps:(Array.length sh.aps) ~links in
  let user_session = Array.map (Problem.user_session p) sh.users in
  let ap_budgets =
    Option.map
      (fun b -> Array.map (fun a -> b.(a)) sh.aps)
      p.Problem.ap_budgets
  in
  Problem.make_sparse ?ap_budgets
    ~session_rates:(Array.copy p.Problem.session_rates)
    ~user_session ~sparse ~budget:(Problem.budget p) ()

type result = {
  assoc : Association.t;  (** merged global association *)
  rounds : int;  (** max shard rounds (shards run concurrently) *)
  moves : int;  (** total moves across shards *)
  converged : bool;  (** every shard converged *)
  n_shards : int;
}

(** [solve ~objective p] plans (unless given one), solves every shard
    independently with [Distributed.run ~scheduler:Sequential], and
    merges the partial associations in ascending shard order. [fanout]
    runs the per-shard thunks — inject [Harness.Pool.run pool] to spread
    shards over domains; the default runs them in place. Results are
    consumed in submission order either way, so the merged association
    is identical at any job count, and — whenever the runs converge —
    identical to the unsharded sequential solve. Uncovered users stay
    unserved, exactly as they would unsharded. *)
let solve ?plan:pl ?(fanout = List.map (fun f -> f ())) ?max_rounds ~objective
    p =
  let pl = match pl with Some x -> x | None -> plan p in
  let _, n_users = Problem.dims p in
  let outcomes =
    fanout
      (List.map
         (fun sh () ->
           Distributed.run ?max_rounds ~scheduler:Distributed.Sequential
             ~objective (extract p sh))
         pl.shards)
  in
  let assoc = Association.empty ~n_users in
  let rounds = ref 0 and moves = ref 0 and converged = ref true in
  List.iter2
    (fun sh (o : Distributed.outcome) ->
      Wlan_obs.Counters.incr c_halo_reconciles;
      Array.iteri
        (fun lu la ->
          if la <> Association.none then
            assoc.(sh.users.(lu)) <- sh.aps.(la))
        o.Distributed.assoc;
      rounds := Int.max !rounds o.Distributed.rounds;
      moves := !moves + o.Distributed.moves;
      converged := !converged && o.Distributed.converged)
    pl.shards outcomes;
  {
    assoc;
    rounds = !rounds;
    moves = !moves;
    converged = !converged;
    n_shards = List.length pl.shards;
  }

let pp_plan ppf pl =
  Fmt.pf ppf "@[<v>%d shards (%d idle APs, %d uncovered users)@,%a@]"
    (List.length pl.shards)
    (Array.length pl.idle_aps)
    (Array.length pl.uncovered)
    Fmt.(
      list ~sep:cut (fun ppf sh ->
          pf ppf "shard %d: %d APs, %d users" sh.id (Array.length sh.aps)
            (Array.length sh.users)))
    pl.shards
