(** Centralized MLA — Minimize the total Load of APs (§6.1).

    Reduces the instance to weighted Set Cover (Theorem 5) and runs the
    greedy [CostSC] algorithm, a [(ln n + 1)]-approximation (Theorem 6).
    Covers every coverable user; the per-AP budget is not a constraint of
    the MLA formulation (the objective itself drives loads down). *)


let name = "MLA-centralized"

let c_runs = Wlan_obs.Counters.make "mla.runs"

let solution_of ~algorithm p inst (r : Optkit.Set_cover.result) =
  let assoc =
    Reduction.association_of_selections p inst
      (List.map
         (fun (s : Optkit.Set_cover.selection) -> (s.set, s.newly))
         r.Optkit.Set_cover.chosen)
  in
  Solution.make ~algorithm p assoc

let run p =
  Wlan_obs.Counters.incr c_runs;
  let inst = Reduction.cover_instance p in
  let universe = Reduction.coverable_users p in
  solution_of ~algorithm:name p inst (Optkit.Set_cover.greedy ~universe inst)

(** The layering alternative the paper mentions (§6.1): an f-approximation
    where [f] is the largest number of (AP, session, rate) subsets any one
    user appears in — a constant when users hear a bounded number of APs. *)
let run_layered p =
  Wlan_obs.Counters.incr c_runs;
  let inst = Reduction.cover_instance p in
  let universe = Reduction.coverable_users p in
  solution_of ~algorithm:"MLA-layered" p inst
    (Optkit.Set_cover.layered ~universe inst)

(** LP-relaxation rounding, also an f-approximation; solves a dense LP, so
    use on small / medium instances only. [None] if the LP solver fails
    (never happens on coverable instances). *)
let run_lp_rounding p =
  Wlan_obs.Counters.incr c_runs;
  let inst = Reduction.cover_instance p in
  let universe = Reduction.coverable_users p in
  Option.map
    (solution_of ~algorithm:"MLA-lp-rounding" p inst)
    (Optkit.Set_cover.lp_rounding ~universe inst)

(** Explicit interference modeling — the paper's §8 future work.

    Airtime spent at an AP with many co-channel conflict neighbors hurts
    more than the same airtime at an isolated AP: every conflicting cell
    loses that medium time too. This variant reweights each reduction
    subset's cost by the transmitting AP's {e co-channel conflict degree}
    [d(a)] under the given channel assignment:

    {v cost'(a, s, t) = (rate(s) / t) * (1 + lambda * d(a)) v}

    and runs the same greedy cover. [lambda = 0] recovers plain MLA;
    larger [lambda] trades raw airtime for fewer interference-weighted
    seconds. The returned solution's metrics are still the {e plain}
    Definition-1 loads, so callers can quantify the trade directly. *)
let run_interference_aware ~(channels : Wlan_model.Channels.assignment)
    ?(lambda = 1.0) p =
  if lambda < 0. then invalid_arg "Mla.run_interference_aware: lambda < 0";
  let n_aps, _ = Wlan_model.Problem.dims p in
  (* co-channel conflict degree per AP *)
  let degree = Array.make n_aps 0 in
  List.iter
    (fun (i, j) ->
      if channels.Wlan_model.Channels.channels.(i)
         = channels.Wlan_model.Channels.channels.(j)
      then begin
        degree.(i) <- degree.(i) + 1;
        degree.(j) <- degree.(j) + 1
      end)
    channels.Wlan_model.Channels.conflict_edges;
  let inst = Reduction.cover_instance p in
  (* rebuild the instance with interference-weighted costs *)
  let m = Optkit.Cover_instance.n_sets inst in
  let sets = Array.init m (Optkit.Cover_instance.set inst) in
  let payload = Array.init m (Optkit.Cover_instance.payload inst) in
  let group_of = Array.init m (Optkit.Cover_instance.group inst) in
  let costs =
    Array.init m (fun j ->
        let a = group_of.(j) in
        Optkit.Cover_instance.cost inst j
        *. (1. +. (lambda *. float_of_int degree.(a))))
  in
  let weighted =
    Optkit.Cover_instance.make
      ~n_elements:(Optkit.Cover_instance.n_elements inst)
      ~sets ~costs ~group_of ~n_groups:n_aps ~payload ()
  in
  let universe = Reduction.coverable_users p in
  let g = Optkit.Set_cover.greedy ~universe weighted in
  let assoc =
    Reduction.association_of_selections p weighted
      (List.map
         (fun (s : Optkit.Set_cover.selection) -> (s.set, s.newly))
         g.Optkit.Set_cover.chosen)
  in
  Solution.make ~algorithm:"MLA-interference-aware" p assoc
