(** Exact (optimal) solvers for the three problems on small instances —
    the paper's Fig. 12 baselines, via set-cover branch and bound (MLA)
    and 0/1 ILPs (MNU, BLA) on {!Optkit.Ilp}. All exponential in the worst
    case; node-limited searches report [proved_optimal = false]. A
    brute-force association enumerator is provided for cross-checks on
    tiny instances. *)

open Wlan_model

type 'a verdict = { value : 'a; solution : Solution.t; proved_optimal : bool }

(** Exact MLA (specialized weighted-set-cover branch and bound); [None]
    only for genuinely uncoverable formulations (never with the default
    coverable universe). *)
val mla : ?node_limit:int -> Problem.t -> float verdict option

(** Exact MNU via ILP. With [initial_bound] (a known satisfied-user
    count), [None] means nothing strictly better exists — keep the greedy
    solution. *)
val mnu :
  ?node_limit:int -> ?initial_bound:float -> Problem.t -> int verdict option

(** Exact BLA via ILP (binary transmission variables + continuous
    makespan). Same [initial_bound] convention as {!mnu}. *)
val bla :
  ?node_limit:int -> ?initial_bound:float -> Problem.t -> float verdict option

(** {1 Brute force} — enumerate complete assignments; tiny instances
    only. [Max_served] enforces the budget; the minimization objectives
    serve every coverable user. *)

type brute_objective = Max_served | Min_max_load | Min_total_load

val brute_force :
  objective:brute_objective -> Problem.t -> Solution.t option
