(** Centralized BLA — Balance the Load among APs (§5.1): Set Cover with
    Group Budgets via Theorem 3; iterated MCG over a grid of guessed
    bounds B*, a [(log_{8/7} n + 1)]-approximation (Theorem 4).

    [mode] selects the MCG inner loop: [`Soft] is the paper's
    overshoot-and-split greedy (carries the guarantee), [`Hard] never
    overshoots a group's budget (no guarantee, empirically tighter — what
    the figure harness labels "BLA-centralized"). Among feasible B*
    guesses the run with the smallest {e realized} maximum AP load wins. *)

val name : string

(** [None] when no [B* <= 1] covers every coverable user.

    [engine], [strategy] and [fanout] pass through to
    {!Optkit.Scg.solve_grid}: [fanout] (e.g. [Harness.Pool.run pool])
    parallelizes the [B*] grid with a bit-identical result; [`Bisect]
    prunes the grid to O(log) evaluations, ranking realized loads over
    only those runs. The defaults reproduce the recorded experiment
    outputs bit-for-bit. *)
val run :
  ?mode:[ `Soft | `Hard ] ->
  ?engine:[ `Classic | `Lazy | `Eager ] ->
  ?strategy:[ `Exhaustive | `Bisect ] ->
  ?fanout:
    ((unit -> Optkit.Scg.result) list -> Optkit.Scg.result list) ->
  ?n_guesses:int ->
  Wlan_model.Problem.t ->
  Solution.t option

(** @raise Failure when {!run} returns [None]. *)
val run_exn :
  ?mode:[ `Soft | `Hard ] ->
  ?engine:[ `Classic | `Lazy | `Eager ] ->
  ?strategy:[ `Exhaustive | `Bisect ] ->
  ?fanout:
    ((unit -> Optkit.Scg.result) list -> Optkit.Scg.result list) ->
  ?n_guesses:int ->
  Wlan_model.Problem.t ->
  Solution.t
