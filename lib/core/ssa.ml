(** Signal-Strength-based Association (SSA) — the 802.11 default and the
    paper's baseline: every user associates with the AP offering the
    strongest signal among its neighbors.

    Admission control follows the paper's MNU walk-through (§4.1 example):
    users arrive in index order, and a user is turned away when admitting it
    would push its strongest AP past the multicast load budget — it does
    {e not} fall back to a weaker AP, because 802.11 association considers
    signal strength only. *)

open Wlan_model

let name = "SSA"

let run p =
  let _, n_users = Problem.dims p in
  let assoc = Association.empty ~n_users in
  for u = 0 to n_users - 1 do
    match Problem.strongest_ap p u with
    | None -> ()
    | Some a ->
        let load = Loads.load_if_joins p assoc ~user:u ~ap:a in
        if load <= Problem.ap_budget p a +. 1e-12 then
          Association.serve assoc ~user:u ~ap:a
  done;
  Solution.make ~algorithm:name p assoc
