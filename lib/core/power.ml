(** Adaptive per-AP transmit power control — the paper's §8 future work
    ("approximation algorithms based on a generalized network model that
    allows nodes to choose from a finite set of discrete power levels").

    Lowering an AP's power scales all of its Table-1 rate regions down, so
    its links get slower — but its multicast airtime stops bleeding into as
    many co-channel neighbor cells. The optimizer trades those off
    explicitly: coordinate descent over per-AP discrete levels, minimizing

    {v J(levels) = total_mla_load + mu * total_co_channel_interference v}

    subject to never losing a user that was coverable at full power. Each
    candidate level is evaluated by rebuilding the rate matrix at the
    mixed powers and re-running centralized MLA — power control and
    association control are optimized jointly, which is exactly the
    flexibility the paper says single-power models leave on the table. *)

open Wlan_model

type plan = {
  levels : int array;  (** AP index -> index into [factors] *)
  factors : float array;  (** available power scalings, [factors.(0) = 1.] *)
  problem : Problem.t;  (** the instance at the chosen powers *)
  solution : Solution.t;  (** centralized MLA at the chosen powers *)
  objective : float;  (** J at the chosen powers *)
  full_power_objective : float;  (** J with every AP at [factors.(0)] *)
}

let default_factors = [| 1.0; 0.8; 0.6; 0.4 |]

(** Compile [sc] with per-AP power scalings: AP [a]'s rate regions are
    those of the scenario's table with thresholds scaled by
    [factors.(levels.(a))]. Signal stays [-distance]. *)
let problem_with_powers (sc : Scenario.t) ~factors ~levels =
  let n_aps = Scenario.n_aps sc and n_users = Scenario.n_users sc in
  if Array.length levels <> n_aps then
    invalid_arg "Power.problem_with_powers: levels arity";
  let tables =
    Array.map
      (fun f -> Rate_table.scale_thresholds f sc.Scenario.rate_table)
      factors
  in
  let dists = Scenario.distances sc in
  let rates =
    Array.init n_aps (fun a ->
        let table = tables.(levels.(a)) in
        Array.init n_users (fun u ->
            match Rate_table.rate_at_distance table dists.(a).(u) with
            | Some r -> r
            | None -> 0.))
  in
  let signal = Array.map (Array.map (fun d -> -.d)) dists in
  Problem.make ~signal
    ~session_rates:(Array.map Session.rate_mbps sc.Scenario.sessions)
    ~user_session:(Array.copy sc.Scenario.user_session)
    ~rates ~budget:sc.Scenario.budget ()

let evaluate ~channels ~mu p =
  let sol = Mla.run p in
  let interference =
    Channels.total_interference channels ~loads:sol.Solution.ap_loads
  in
  (sol, sol.Solution.total_load +. (mu *. interference))

(** [optimize ~channels sc] runs coordinate descent from full power.
    [mu] weighs interference against raw airtime (0 disables power
    reduction entirely — lower power can only slow links). Passes repeat
    until no AP improves [J] or [max_passes] is hit. *)
let optimize ?(factors = default_factors) ?(mu = 0.1) ?(max_passes = 4)
    ~(channels : Channels.assignment) (sc : Scenario.t) =
  if Array.length factors = 0 || (factors.(0) <> 1.0) [@lint.allow float_eq]
  then invalid_arg "Power.optimize: factors must start at 1.0";
  let n_aps = Scenario.n_aps sc in
  let levels = Array.make n_aps 0 in
  let base_problem = problem_with_powers sc ~factors ~levels in
  let must_cover = Problem.coverable_users base_problem in
  let base_sol, base_j = evaluate ~channels ~mu base_problem in
  let best_j = ref base_j in
  let best_sol = ref base_sol in
  let best_problem = ref base_problem in
  let improved = ref true in
  let passes = ref 0 in
  while !improved && !passes < max_passes do
    improved := false;
    incr passes;
    for a = 0 to n_aps - 1 do
      (* try stepping this AP one level down *)
      if levels.(a) + 1 < Array.length factors then begin
        levels.(a) <- levels.(a) + 1;
        let p = problem_with_powers sc ~factors ~levels in
        let still_covered =
          List.for_all
            (fun u -> Problem.neighbor_aps p u <> [])
            must_cover
        in
        if still_covered then begin
          let sol, j = evaluate ~channels ~mu p in
          if j < !best_j -. 1e-9 then begin
            best_j := j;
            best_sol := sol;
            best_problem := p;
            improved := true
          end
          else levels.(a) <- levels.(a) - 1
        end
        else levels.(a) <- levels.(a) - 1
      end
    done
  done;
  {
    levels;
    factors;
    problem = !best_problem;
    solution = !best_sol;
    objective = !best_j;
    full_power_objective = base_j;
  }

(** How many APs ended below full power. *)
let reduced_count plan =
  Array.fold_left (fun n l -> if l > 0 then n + 1 else n) 0 plan.levels
