(** Exact (optimal) solvers for MLA, BLA and MNU on small instances — the
    Fig. 12 baselines. The paper computed these with ILPs "based on the ILP
    of set cover"; we do the same on top of {!Optkit.Ilp} (MNU, BLA) and the
    specialized exact set-cover branch and bound (MLA). All three take
    exponential time in the worst case and are meant for small networks
    (the paper limits its optimality evaluation to 30 APs / 50 users).

    A brute-force enumerator over complete associations is also provided
    for cross-checking on tiny instances in the test suite. *)

open Wlan_model
module Lp = Optkit.Lp
module Ilp = Optkit.Ilp

type 'a verdict = { value : 'a; solution : Solution.t; proved_optimal : bool }

(** {1 Exact MLA — weighted set cover, specialized branch and bound} *)

let mla ?node_limit p =
  let inst = Reduction.cover_instance p in
  let universe = Reduction.coverable_users p in
  match Optkit.Set_cover.exact ?node_limit ~universe inst with
  | None -> None
  | Some r ->
      (* attribute each covered user to the first chosen set covering it *)
      let x' = Optkit.Bitset.copy universe in
      let sels =
        List.map
          (fun j ->
            let newly = Optkit.Bitset.inter (Optkit.Cover_instance.set inst j) x' in
            Optkit.Bitset.diff_inplace x' newly;
            (j, newly))
          r.sets
      in
      let assoc = Reduction.association_of_selections p inst sels in
      let solution = Solution.make ~algorithm:"MLA-optimal" p assoc in
      Some
        { value = solution.total_load; solution;
          proved_optimal = r.proved_optimal }

(** {1 Exact MNU — ILP}

    Variables: one binary [y_j] per reduction subset (AP transmits session
    at rate), one continuous [x_u <= 1] per coverable user. Maximize
    [sum x_u] subject to [x_u <= sum of covering y_j] and, per AP,
    [sum c_j y_j <= budget]. At binary [y] the optimal [x] is 0/1, so only
    [y] is branched. *)

let mnu ?node_limit ?initial_bound p =
  let inst = Reduction.cover_instance ~filter_over_budget:true p in
  let universe = Reduction.coverable_users p in
  let users = Optkit.Bitset.to_list universe in
  let n_y = Optkit.Cover_instance.n_sets inst in
  let n_u = List.length users in
  let n_vars = n_y + n_u in
  let user_slot = Hashtbl.create 64 in
  List.iteri (fun i u -> Hashtbl.replace user_slot u (n_y + i)) users;
  let constraints = ref [] in
  (* coverage: x_u - sum_{j covers u} y_j <= 0 *)
  List.iter
    (fun u ->
      let c = Array.make n_vars 0. in
      c.(Hashtbl.find user_slot u) <- 1.;
      for j = 0 to n_y - 1 do
        if Optkit.Bitset.mem (Optkit.Cover_instance.set inst j) u then
          c.(j) <- -1.
      done;
      constraints := Lp.{ coeffs = c; cmp = Le; rhs = 0. } :: !constraints)
    users;
  (* x_u <= 1 *)
  List.iter
    (fun u ->
      let c = Array.make n_vars 0. in
      c.(Hashtbl.find user_slot u) <- 1.;
      constraints := Lp.{ coeffs = c; cmp = Le; rhs = 1. } :: !constraints)
    users;
  (* per-AP budget *)
  for a = 0 to Optkit.Cover_instance.n_groups inst - 1 do
    let c = Array.make n_vars 0. in
    let any = ref false in
    for j = 0 to n_y - 1 do
      if Optkit.Cover_instance.group inst j = a then begin
        c.(j) <- Optkit.Cover_instance.cost inst j;
        any := true
      end
    done;
    if !any then
      constraints :=
        Lp.{ coeffs = c; cmp = Le; rhs = Problem.ap_budget p a } :: !constraints
  done;
  let objective = Array.make n_vars 0. in
  List.iter (fun u -> objective.(Hashtbl.find user_slot u) <- 1.) users;
  let binary = Array.init n_vars (fun j -> j < n_y) in
  let base =
    Lp.
      {
        n_vars;
        maximize = true;
        objective;
        constraints = Array.of_list !constraints;
      }
  in
  match
    Ilp.solve ?node_limit ?initial_bound ~integral_objective:true
      { base; binary }
  with
  | None -> None
  | Some sol ->
      (* chosen transmissions, in cost-effectiveness order for attribution *)
      let chosen =
        List.init n_y Fun.id
        |> List.filter (fun j -> sol.x.(j) > 0.5)
      in
      let x' = Optkit.Bitset.copy universe in
      let sels =
        List.map
          (fun j ->
            let newly =
              Optkit.Bitset.inter (Optkit.Cover_instance.set inst j) x'
            in
            Optkit.Bitset.diff_inplace x' newly;
            (j, newly))
          chosen
      in
      let assoc = Reduction.association_of_selections p inst sels in
      let solution = Solution.make ~algorithm:"MNU-optimal" p assoc in
      Some
        {
          value = solution.satisfied;
          solution;
          proved_optimal = sol.proved_optimal;
        }

(** {1 Exact BLA — ILP}

    Variables: binary [y_j] per subset plus continuous makespan [z] (the
    last variable). Minimize [z] subject to coverage [sum y_j >= 1] per
    user and [sum c_j y_j - z <= 0] per AP. *)

let bla ?node_limit ?initial_bound p =
  let inst = Reduction.cover_instance p in
  let universe = Reduction.coverable_users p in
  let users = Optkit.Bitset.to_list universe in
  let n_y = Optkit.Cover_instance.n_sets inst in
  let n_vars = n_y + 1 in
  let z = n_y in
  let constraints = ref [] in
  List.iter
    (fun u ->
      let c = Array.make n_vars 0. in
      for j = 0 to n_y - 1 do
        if Optkit.Bitset.mem (Optkit.Cover_instance.set inst j) u then
          c.(j) <- 1.
      done;
      constraints := Lp.{ coeffs = c; cmp = Ge; rhs = 1. } :: !constraints)
    users;
  for a = 0 to Optkit.Cover_instance.n_groups inst - 1 do
    let c = Array.make n_vars 0. in
    let any = ref false in
    for j = 0 to n_y - 1 do
      if Optkit.Cover_instance.group inst j = a then begin
        c.(j) <- Optkit.Cover_instance.cost inst j;
        any := true
      end
    done;
    if !any then begin
      c.(z) <- -1.;
      constraints := Lp.{ coeffs = c; cmp = Le; rhs = 0. } :: !constraints
    end
  done;
  let objective = Array.make n_vars 0. in
  objective.(z) <- 1.;
  let binary = Array.init n_vars (fun j -> j < n_y) in
  let base =
    Lp.
      {
        n_vars;
        maximize = false;
        objective;
        constraints = Array.of_list !constraints;
      }
  in
  match Ilp.solve ?node_limit ?initial_bound { base; binary } with
  | None -> None
  | Some sol ->
      let chosen =
        List.init n_y Fun.id |> List.filter (fun j -> sol.x.(j) > 0.5)
      in
      let x' = Optkit.Bitset.copy universe in
      let sels =
        List.map
          (fun j ->
            let newly =
              Optkit.Bitset.inter (Optkit.Cover_instance.set inst j) x'
            in
            Optkit.Bitset.diff_inplace x' newly;
            (j, newly))
          chosen
      in
      let assoc = Reduction.association_of_selections p inst sels in
      let solution = Solution.make ~algorithm:"BLA-optimal" p assoc in
      Some
        {
          value = solution.max_load;
          solution;
          proved_optimal = sol.proved_optimal;
        }

(** {1 Brute force} — enumerate every complete assignment of users to
    neighbor APs (or unserved, where allowed). Exponential; for tiny test
    instances only. *)

type brute_objective = Max_served | Min_max_load | Min_total_load

let brute_force ~objective p =
  let _, n_users = Problem.dims p in
  let choices =
    Array.init n_users (fun u ->
        let ns = Problem.neighbor_aps p u in
        match objective with
        | Max_served -> Association.none :: ns
        | Min_max_load | Min_total_load ->
            (* all coverable users must be served *)
            if ns = [] then [ Association.none ] else ns)
  in
  let assoc = Association.empty ~n_users in
  let best = ref None in
  let score sol =
    match objective with
    | Max_served -> (float_of_int (-sol.Solution.satisfied), sol.total_load)
    | Min_max_load -> (sol.Solution.max_load, sol.total_load)
    | Min_total_load -> (sol.Solution.total_load, sol.max_load)
  in
  let consider () =
    let ok =
      match objective with
      | Max_served -> Loads.respects_budget p assoc
      | Min_max_load | Min_total_load -> true
    in
    if ok then begin
      let sol = Solution.make ~algorithm:"brute-force" p assoc in
      match !best with
      | None -> best := Some (score sol, sol)
      | Some (bs, _) -> if score sol < bs then best := Some (score sol, sol)
    end
  in
  let rec go u =
    if u = n_users then consider ()
    else
      List.iter
        (fun a ->
          assoc.(u) <- a;
          go (u + 1))
        choices.(u)
  in
  go 0;
  Option.map snd !best
