(** Reductions from the association-control problems to covering problems
    (Theorems 1, 3 and 5 of the paper).

    For each AP [a], session [s] and candidate transmission rate [t], the
    users of [s] reachable from [a] at link rate at least [t] form a subset
    with cost [rate(s) / t] (the airtime [a] spends transmitting [s] at
    [t]). The ground set is the users (MNU: all coverable users; BLA/MLA:
    the users that must be served), the groups are the APs, and:

    - MNU ≡ Maximum Coverage with Group Budgets (budget = AP airtime limit),
    - BLA ≡ Set Cover with Group Budgets,
    - MLA ≡ weighted Set Cover (groups ignored).

    Only the link rates that actually occur among an AP's receivers of a
    session are generated as candidate transmission rates: any other rate is
    dominated (same subset, higher or equal cost). *)

open Wlan_model

(** What a covering set means in WLAN terms: AP [ap] transmits session
    [session] at rate [tx_rate]. *)
type tx = { ap : int; session : int; tx_rate : float }

let pp_tx ppf { ap; session; tx_rate } =
  Fmt.pf ppf "a%d:s%d@%g" ap session tx_rate

(** [cover_instance p] builds the covering instance. When
    [filter_over_budget] (used by MNU), subsets costing more than the AP
    budget are dropped — they can never appear in a feasible solution, and
    the MCG analysis assumes every set fits its group's budget. *)
let cover_instance ?(filter_over_budget = false) p =
  let n_aps, n_users = Problem.dims p in
  let n_sessions = Problem.n_sessions p in
  let sets = ref [] and costs = ref [] and groups = ref [] and pay = ref [] in
  let n_sets = ref 0 in
  for a = 0 to n_aps - 1 do
    (* one member-list pass groups the AP's receivers by session; on a
       sparse instance this costs O(members), never O(n_users). Members
       arrive in ascending user order; prepending makes the per-session
       lists descending, which the bitset fill below doesn't care about. *)
    let by_session = Array.make n_sessions [] in
    Problem.iter_members p a (fun u r ->
        let s = Problem.user_session p u in
        by_session.(s) <- (u, r) :: by_session.(s));
    for s = 0 to n_sessions - 1 do
      let members = by_session.(s) in
      (* distinct link rates of session-s users reachable from a; the
         ascending FS.iter below reproduces the dense generation order *)
      let module FS = Set.Make (Float) in
      let rates =
        List.fold_left (fun acc (_, r) -> FS.add r acc) FS.empty members
      in
      FS.iter
        (fun t ->
          let cost = Problem.session_rate p s /. t in
          if (not filter_over_budget) || cost <= Problem.ap_budget p a +. 1e-12
          then begin
            let set = Optkit.Bitset.create n_users in
            List.iter
              (fun (u, r) -> if r >= t then Optkit.Bitset.add set u)
              members;
            sets := set :: !sets;
            costs := cost :: !costs;
            groups := a :: !groups;
            pay := { ap = a; session = s; tx_rate = t } :: !pay;
            incr n_sets
          end)
        rates
    done
  done;
  let sets = Array.of_list (List.rev !sets) in
  let costs = Array.of_list (List.rev !costs) in
  let group_of = Array.of_list (List.rev !groups) in
  let payload = Array.of_list (List.rev !pay) in
  Optkit.Cover_instance.make ~n_elements:n_users ~sets ~costs ~group_of
    ~n_groups:n_aps ~payload ()

(** Users that the covering ground set should contain: everyone within range
    of at least one AP (users out of all ranges can never be served). *)
let coverable_users p =
  let _, n_users = Problem.dims p in
  let u = Optkit.Bitset.create n_users in
  List.iter (Optkit.Bitset.add u) (Problem.coverable_users p);
  u

(** Translate covering selections (set index + newly covered users) back
    into a user→AP association: each user goes to the AP of the transmission
    that first covered it. *)
let association_of_selections p inst selections =
  let _, n_users = Problem.dims p in
  let assoc = Association.empty ~n_users in
  List.iter
    (fun (set, newly) ->
      let { ap; _ } = Optkit.Cover_instance.payload inst set in
      Optkit.Bitset.iter (fun u -> Association.serve assoc ~user:u ~ap) newly)
    selections;
  assoc
