(** Dual association (§3.1 / WiMesh'05): independent unicast and multicast
    APs per user. The unicast side stays on the strongest-signal AP; the
    multicast side is association-controlled. Delivering unicast demand
    [d] Mbps over a link at rate [r] costs [d / r] airtime on top of the
    multicast load of Definition 1. *)

open Wlan_model

type t = {
  unicast : Association.t;
  multicast : Association.t;
}

(** Airtime each AP spends on its unicast users' demands.
    @raise Invalid_argument when [demands] has the wrong arity. *)
val unicast_loads :
  Problem.t -> demands:float array -> Association.t -> float array

type combined = {
  per_ap : float array;  (** unicast + multicast airtime per AP *)
  total : float;
  max : float;
  overloaded : int;  (** APs whose combined airtime exceeds 1 *)
}

val combined : Problem.t -> demands:float array -> t -> combined

(** Every user on its strongest-signal AP (no admission control). *)
val unicast_ssa : Problem.t -> Association.t

(** One shared SSA AP for both roles — the baseline. *)
val single_association : Problem.t -> t

(** SSA unicast + association-controlled multicast (default [`Mla]). *)
val plan : ?objective:[ `Mla | `Bla | `Mnu ] -> Problem.t -> t

val uniform_demands : Problem.t -> mbps:float -> float array

type comparison = {
  single : combined;
  dual : combined;
  total_saving_pct : float;
  max_saving_pct : float;
}

(** Head-to-head single vs dual association at the given demands. *)
val compare_single_vs_dual :
  ?objective:[ `Mla | `Bla | `Mnu ] ->
  Problem.t ->
  demands:float array ->
  comparison
