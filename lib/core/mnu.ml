(** Centralized MNU — Maximize the Number of Users (§4.1).

    Reduces the instance to Maximum Coverage with Group Budgets (Theorem 1):
    one group per AP with the AP's multicast airtime budget, no overall
    budget. Runs the budgeted greedy with the H1/H2 split — an
    8-approximation (Theorem 2). The returned association always respects
    every AP's budget. *)

open Wlan_model

let name = "MNU-centralized"

(** [engine] selects the {!Optkit.Mcg.greedy} candidate generator; the
    default reproduces the recorded experiment outputs bit-for-bit. *)
let run ?engine p =
  let inst = Reduction.cover_instance ~filter_over_budget:true p in
  let universe = Reduction.coverable_users p in
  let budgets =
    Array.init (Optkit.Cover_instance.n_groups inst) (Problem.ap_budget p)
  in
  let r = Optkit.Mcg.greedy ?engine inst ~budgets ~universe () in
  let assoc =
    Reduction.association_of_selections p inst
      (List.map (fun (s : Optkit.Mcg.selection) -> (s.set, s.newly)) r.kept)
  in
  Solution.make ~algorithm:name p assoc

(** Revenue-weighted MNU: maximize the total {e value} of satisfied users
    rather than their count — the paper's pay-per-view revenue model
    (§3.2) with heterogeneous per-user prices. [weights.(u)] is user [u]'s
    value (non-negative). Returns the solution plus the realized revenue.
    With all-1 weights this is exactly {!run}. *)
let run_weighted ~weights p =
  let inst = Reduction.cover_instance ~filter_over_budget:true p in
  let universe = Reduction.coverable_users p in
  let budgets =
    Array.init (Optkit.Cover_instance.n_groups inst) (Problem.ap_budget p)
  in
  let r = Optkit.Mcg.greedy ~element_weights:weights inst ~budgets ~universe () in
  let assoc =
    Reduction.association_of_selections p inst
      (List.map (fun (s : Optkit.Mcg.selection) -> (s.set, s.newly)) r.kept)
  in
  let sol = Solution.make ~algorithm:"MNU-weighted" p assoc in
  let revenue =
    Array.to_list (Array.mapi (fun u a -> (u, a)) sol.Solution.assoc)
    |> List.fold_left
         (fun acc (u, a) ->
           if a <> Wlan_model.Association.none then acc +. weights.(u) else acc)
         0.
  in
  (sol, revenue)

(** Extension (not in the paper's algorithm, off in the figure harness):
    after the greedy cover, admit remaining users that can listen to an
    already-scheduled transmission for free — a user in range of an AP
    already transmitting its session at a rate it can decode costs no extra
    airtime. *)
let run_with_free_riders p =
  let sol = run p in
  let assoc = Association.copy sol.assoc in
  let _, n_users = Problem.dims p in
  let tx = Loads.tx_rates p assoc in
  for u = 0 to n_users - 1 do
    if not (Association.is_served assoc u) then begin
      let s = Problem.user_session p u in
      let joined = ref false in
      Array.iteri
        (fun a tx_row ->
          if (not !joined) && tx_row.(s) > 0.
             && Problem.link_rate p ~ap:a ~user:u >= tx_row.(s)
          then begin
            Association.serve assoc ~user:u ~ap:a;
            joined := true
          end)
        tx
    end
  done;
  Solution.make ~algorithm:"MNU-centralized+freeride" p assoc
