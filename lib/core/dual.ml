(** Dual association: independent unicast and multicast APs per user.

    §3.1 of the paper adopts the multi-association framework of Lee,
    Chandrasekaran & Sinha (WiMesh'05) for users that are simultaneously
    unicast and multicast clients: the user keeps its strongest-signal AP
    for unicast (latency and per-user QoS live there) while the multicast
    stream is taken from whichever AP the association-control algorithm
    picked, exploiting overlapping coverage.

    This module models the combined airtime economy. Every user has a
    unicast demand in Mbps; delivering demand [d] over a link running at
    rate [r] costs [d / r] of the AP's airtime, on top of the multicast
    load of Definition 1. Comparing the combined per-AP airtime of

    - {e single association}: one SSA-chosen AP carries both roles, vs.
    - {e dual association}: SSA for unicast + MLA/BLA for multicast,

    quantifies how much unicast capacity association control returns to
    the network — the paper's core motivation. *)

open Wlan_model

type t = {
  unicast : Association.t;
  multicast : Association.t;
}

(** Airtime each AP spends serving its unicast users' demands:
    [sum over its users of demand / link_rate]. Unserved users (no AP in
    range) cost nothing. *)
let unicast_loads p ~(demands : float array) (assoc : Association.t) =
  let n_aps, n_users = Problem.dims p in
  if Array.length demands <> n_users then
    invalid_arg "Dual.unicast_loads: demands arity";
  let loads = Array.make n_aps 0. in
  Array.iteri
    (fun u a ->
      if a <> Association.none then begin
        let r = Problem.link_rate p ~ap:a ~user:u in
        if r > 0. then loads.(a) <- loads.(a) +. (demands.(u) /. r)
      end)
    assoc;
  loads

type combined = {
  per_ap : float array;  (** unicast + multicast airtime per AP *)
  total : float;
  max : float;
  overloaded : int;  (** APs whose combined airtime exceeds 1 *)
}

(** Combined airtime of a dual association. *)
let combined p ~demands t =
  let uni = unicast_loads p ~demands t.unicast in
  let multi = Loads.ap_loads p t.multicast in
  let per_ap = Array.map2 ( +. ) uni multi in
  {
    per_ap;
    total = Array.fold_left ( +. ) 0. per_ap;
    max = Array.fold_left Float.max 0. per_ap;
    overloaded =
      Array.fold_left (fun n l -> if l > 1. +. 1e-9 then n + 1 else n) 0 per_ap;
  }

(** Unicast side: every user on its strongest-signal AP (no admission
    control — unicast capacity planning is out of scope here). *)
let unicast_ssa p =
  let _, n_users = Problem.dims p in
  let assoc = Association.empty ~n_users in
  for u = 0 to n_users - 1 do
    match Problem.strongest_ap p u with
    | Some a -> Association.serve assoc ~user:u ~ap:a
    | None -> ()
  done;
  assoc

(** Single association: the SSA AP carries both unicast and multicast. *)
let single_association p =
  let uni = unicast_ssa p in
  { unicast = uni; multicast = Association.copy uni }

(** Dual association: SSA unicast + association-controlled multicast. *)
let plan ?(objective = `Mla) p =
  let multicast =
    match objective with
    | `Mla -> (Mla.run p).Solution.assoc
    | `Bla -> (Bla.run_exn ~mode:`Hard p).Solution.assoc
    | `Mnu -> (Mnu.run p).Solution.assoc
  in
  { unicast = unicast_ssa p; multicast }

(** Uniform unicast demand for quick studies. *)
let uniform_demands p ~mbps =
  Array.make (snd (Problem.dims p)) mbps

type comparison = {
  single : combined;
  dual : combined;
  total_saving_pct : float;
  max_saving_pct : float;
}

(** Head-to-head single vs dual association at the given demands. *)
let compare_single_vs_dual ?(objective = `Mla) p ~demands =
  let single = combined p ~demands (single_association p) in
  let dual = combined p ~demands (plan ~objective p) in
  let pct a b =
    if (a = 0.) [@lint.allow float_eq] then 0. else (a -. b) /. a *. 100.
  in
  {
    single;
    dual;
    total_saving_pct = pct single.total dual.total;
    max_saving_pct = pct single.max dual.max;
  }
