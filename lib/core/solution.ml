(** Uniform output of every association algorithm: the association plus the
    evaluation metrics the paper reports (satisfied users, per-AP loads,
    total load, maximum load). *)

open Wlan_model

type t = {
  algorithm : string;
  assoc : Association.t;
  satisfied : int;  (** users served *)
  ap_loads : float array;
  total_load : float;  (** MLA objective *)
  max_load : float;  (** BLA objective *)
}

(** Evaluate an association against a problem. *)
let make ~algorithm p assoc =
  let ap_loads = Loads.ap_loads p assoc in
  {
    algorithm;
    assoc;
    satisfied = Association.served_count assoc;
    ap_loads;
    total_load = Array.fold_left ( +. ) 0. ap_loads;
    max_load = Array.fold_left Float.max 0. ap_loads;
  }

(** Sanity of a solution w.r.t. its problem: every served user in range of
    its AP. *)
let in_range_ok p t = Association.in_range_ok p t.assoc

(** Budget feasibility: every AP load within the per-AP multicast budget. *)
let respects_budget ?eps p t = Loads.respects_budget ?eps p t.assoc

let unsatisfied p t =
  let _, n_users = Problem.dims p in
  n_users - t.satisfied

let pp ppf t =
  Fmt.pf ppf
    "@[<v>%s: %d users served, total load %.4f, max load %.4f@]" t.algorithm
    t.satisfied t.total_load t.max_load
