(** Centralized BLA — Balance the Load among APs (§5.1).

    Reduces the instance to Set Cover with Group Budgets (Theorem 3) and
    runs the iterated-MCG algorithm of Fig. 6: guess the optimal bound
    [B*], give every AP that budget, and repeat Centralized MNU
    [log_{8/7} n + 1] times until every user is covered — a
    [(log_{8/7} n + 1)]-approximation of the minimum maximum AP load
    (Theorem 4). The [B*] guesses form a grid between the maximum single-set
    cost and 1 (the paper: "try several values of B* between c_max and 1");
    among the feasible runs we keep the one whose {e realized} association
    has the smallest maximum AP load (merging transmissions at one AP can
    only improve on the covering cost). *)


let name = "BLA-centralized"

let c_runs = Wlan_obs.Counters.make "bla.runs"

let src = Logs.Src.create "mcast.bla" ~doc:"Centralized BLA"

module Log = (val Logs.src_log src : Logs.LOG)

let solution_of_scg p inst (r : Optkit.Scg.result) =
  let assoc =
    Reduction.association_of_selections p inst
      (List.map
         (fun (s : Optkit.Mcg.selection) -> (s.set, s.newly))
         (Optkit.Scg.selections r))
  in
  Solution.make ~algorithm:name p assoc

(** [run ?n_guesses p] — [n_guesses] is the size of the [B*] grid
    (default 12). Returns [None] when some coverable user cannot be covered
    within any [B* <= 1] (never happens with budgets at the paper's 0.9 and
    coverable users, since serving one user costs at most
    [session_rate / basic_rate]).

    [engine], [strategy] and [fanout] pass through to
    {!Optkit.Scg.solve_grid}: [fanout] parallelizes the grid with an
    identical result; [`Bisect] prunes it to O(log) guesses but then
    ranks realized loads over only the evaluated runs. Defaults preserve
    the recorded experiment outputs bit-for-bit. *)
let run ?(mode = `Soft) ?engine ?strategy ?fanout ?(n_guesses = 12) p =
  Wlan_obs.Counters.incr c_runs;
  let inst = Reduction.cover_instance p in
  let universe = Reduction.coverable_users p in
  let grid = Optkit.Scg.default_grid ~n_guesses ~universe inst in
  (* grid probes reuse one arena's scratch planes — but only when they
     run on the default sequential fanout; an injected fanout may be a
     pool, and arenas must never cross domains *)
  let arena =
    match fanout with
    | None -> Some (Optkit.Arena.create ())
    | Some _ -> None
  in
  let feasible =
    Optkit.Scg.solve_grid ~mode ?engine ?arena ?strategy ?fanout inst ~universe
      ~grid ()
  in
  match feasible with
  | [] -> None
  | runs ->
      Log.debug (fun m ->
          m "%d feasible B* guesses out of %d" (List.length runs)
            (List.length grid));
      let sols = List.map (solution_of_scg p inst) runs in
      let best =
        List.fold_left
          (fun (best : Solution.t) (s : Solution.t) ->
            if s.max_load < best.max_load -. 1e-12 then s else best)
          (List.hd sols) (List.tl sols)
      in
      Log.debug (fun m -> m "best realized max load %.4f" best.max_load);
      Some best

(** [run_exn] for instances known feasible (raises otherwise). *)
let run_exn ?mode ?engine ?strategy ?fanout ?n_guesses p =
  match run ?mode ?engine ?strategy ?fanout ?n_guesses p with
  | Some s -> s
  | None -> failwith "Bla.run: no feasible B* found"
