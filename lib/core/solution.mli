(** Uniform output of every association algorithm: the association plus
    the metrics the paper reports. *)

open Wlan_model

type t = {
  algorithm : string;
  assoc : Association.t;
  satisfied : int;  (** users served *)
  ap_loads : float array;
  total_load : float;  (** MLA objective *)
  max_load : float;  (** BLA objective *)
}

(** Evaluate an association against a problem. *)
val make : algorithm:string -> Problem.t -> Association.t -> t

(** Every served user in range of its AP. *)
val in_range_ok : Problem.t -> t -> bool

(** Every AP load within the per-AP multicast budget. *)
val respects_budget : ?eps:float -> Problem.t -> t -> bool

val unsatisfied : Problem.t -> t -> int
val pp : Format.formatter -> t -> unit
