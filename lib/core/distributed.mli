(** Distributed association control (§4.2, §5.2, §6.2): users query their
    neighbor APs and re-associate greedily.

    - [Min_total_load] (MNU and MLA): join the feasible neighbor that
      minimizes the neighborhood's total load.
    - [Min_load_vector] (BLA): minimize the neighborhood's non-increasing
      load vector, compared lexicographically (footnote 5).

    Schedulers: [Sequential] decisions always converge (Lemmas 1–2);
    [Simultaneous] decisions can oscillate (Fig. 4) — revisited states are
    detected and reported; [Locked] implements the paper's §8 future-work
    fix (lock the neighborhood APs before deciding), restoring convergence
    under concurrency. *)

open Wlan_model

type objective = Min_total_load | Min_load_vector
type scheduler = Sequential | Simultaneous | Locked

type outcome = {
  assoc : Association.t;
  rounds : int;  (** decision rounds executed *)
  moves : int;  (** (re)associations applied *)
  converged : bool;  (** a full round made no move *)
  oscillated : bool;  (** a previously seen state recurred (Simultaneous) *)
}

(** The local rule of one user: [Some ap] to (re)associate, [None] to
    stay. [loads] must be the current per-AP loads. Ties break toward
    stronger signal; served users move only on strict improvement
    (epsilon-tolerant comparison); unserved users join the best feasible
    AP outright. *)
val decide :
  Problem.t ->
  Association.t ->
  loads:float array ->
  objective:objective ->
  int ->
  int option

(** Run rounds of local decisions from [init] (default: all unserved)
    until a fixpoint, oscillation, or [max_rounds] (default 200).

    [kernel] selects how each decision is computed: [`Flat] (the
    default) evaluates candidates in preallocated arena scratch planes
    with per-decision hypothetical-load caching; [`Boxed] is the
    original list-and-array rule, kept as the differential reference.
    Both compute bit-identical decisions (and floats) — pinned by the
    qcheck battery in [test_flat.ml]. *)
val run :
  ?init:Association.t ->
  ?max_rounds:int ->
  ?kernel:[ `Flat | `Boxed ] ->
  scheduler:scheduler ->
  objective:objective ->
  Problem.t ->
  outcome

(** {1 Online re-association under churn}

    A running network that absorbs membership and topology deltas and
    re-converges incrementally: each delta marks only the users whose
    decision inputs it touched (via a per-AP watcher index), and
    {!Online.settle} re-runs the local rule for exactly those users. A
    settle from an all-dirty start executes the identical move sequence
    (and identical floats) as {!run} [~scheduler:Sequential] on
    {!Online.effective_problem}; at quiescence the association is a Nash
    point of the rule on the final static topology. All operations are
    deterministic (ascending index order, no randomness). *)
module Online : sig
  type t

  (** [create ~objective p] copies [p]'s rate matrix (drift mutates the
      copy, never the caller's instance) and starts with every AP alive
      and — unless [present] says otherwise — every user present and
      dirty. [init] seeds the association (absent users are forced
      unserved). Raises [Invalid_argument] if [init] serves a user over
      a zero-rate link. [kernel] as in {!run}: [`Flat] (default) decides
      in reused arena scratch, [`Boxed] is the reference rule — both
      bit-identical. *)
  val create :
    ?init:Association.t ->
    ?present:bool array ->
    ?kernel:[ `Flat | `Boxed ] ->
    objective:objective ->
    Problem.t ->
    t

  (** The live association — a view, not a copy. *)
  val assoc : t -> Association.t

  (** The live per-AP loads (tracker view, read-only). *)
  val loads : t -> float array

  val total_load : t -> float
  val max_load : t -> float
  val is_present : t -> int -> bool
  val ap_alive : t -> int -> bool

  (** Users currently marked for re-decision. *)
  val dirty_count : t -> int

  (** The live link rate — reads the working copy that {!set_rate}
      mutates, not the instance [create] was given. *)
  val link_rate : t -> ap:int -> user:int -> float

  (** {2 Deltas} — each returns what actually happened (no-op deltas
      change nothing). *)

  (** [arrive t ~user]: an absent user enters (unserved, dirty); [false]
      if already present. *)
  val arrive : t -> user:int -> bool

  (** [depart t ~user]: a present user leaves; its AP's watchers are
      marked. *)
  val depart : t -> user:int -> [ `Absent | `Served of int | `Unserved ]

  (** [fail_ap t ~ap]: the AP goes dark; members are detached (returned
      ascending) and its watchers marked. *)
  val fail_ap : t -> ap:int -> [ `Dead | `Failed of int list ]

  (** [recover_ap t ~ap]: the AP comes back empty; [false] if alive. *)
  val recover_ap : t -> ap:int -> bool

  (** [set_rate t ~user ~ap rate] installs a new link rate (negative
      clamps to [0.] = out of range), keeping the tracker multisets and
      the watcher index consistent. [`Detached] means the user was being
      served over the link and the new rate is [0.] — a forced session
      interruption. *)
  val set_rate :
    t -> user:int -> ap:int -> float -> [ `Changed | `Detached | `Unchanged ]

  (** {2 Re-convergence} *)

  type settle_stats = {
    rounds : int;  (** scan rounds that evaluated at least one user *)
    moves : int;  (** (re)associations applied *)
    reassociated : int;  (** distinct users whose serving AP changed *)
    changed : (int * int * int) list;
        (** the settle's net association deltas, ascending user:
            [(user, old_ap, new_ap)] with [Association.none] = unserved —
            what a serving layer broadcasts to clients.
            [reassociated = List.length changed] *)
    converged : bool;
    oscillated : bool;  (** a seen state recurred ([`Simultaneous] only) *)
  }

  (** Drain the dirty set (default [`Sequential], [max_rounds] 200).
      [`Sequential] applies moves immediately and always converges on a
      static network; [`Simultaneous] decides each round on one snapshot
      and may oscillate (Fig. 4) — detected and reported. Quiescent
      states return in O(1) with [rounds = 0]. *)
  val settle :
    ?max_rounds:int ->
    ?mode:[ `Sequential | `Simultaneous ] ->
    t ->
    settle_stats

  (** The static instance the network currently embodies (dead-AP rows
      and absent-user columns zeroed): ground truth for the quiescence
      oracle and the fresh-optimum disruption baselines. *)
  val effective_problem : t -> Problem.t
end

(** {1 The paper's three distributed algorithms} (default scheduler:
    [Sequential]). MLA shares MNU's rule (§6.2). *)

val mnu :
  ?init:Association.t ->
  ?max_rounds:int ->
  ?scheduler:scheduler ->
  Problem.t ->
  Solution.t * outcome

val mla :
  ?init:Association.t ->
  ?max_rounds:int ->
  ?scheduler:scheduler ->
  Problem.t ->
  Solution.t * outcome

val bla :
  ?init:Association.t ->
  ?max_rounds:int ->
  ?scheduler:scheduler ->
  Problem.t ->
  Solution.t * outcome
