(** Distributed association control (§4.2, §5.2, §6.2): users query their
    neighbor APs and re-associate greedily.

    - [Min_total_load] (MNU and MLA): join the feasible neighbor that
      minimizes the neighborhood's total load.
    - [Min_load_vector] (BLA): minimize the neighborhood's non-increasing
      load vector, compared lexicographically (footnote 5).

    Schedulers: [Sequential] decisions always converge (Lemmas 1–2);
    [Simultaneous] decisions can oscillate (Fig. 4) — revisited states are
    detected and reported; [Locked] implements the paper's §8 future-work
    fix (lock the neighborhood APs before deciding), restoring convergence
    under concurrency. *)

open Wlan_model

type objective = Min_total_load | Min_load_vector
type scheduler = Sequential | Simultaneous | Locked

type outcome = {
  assoc : Association.t;
  rounds : int;  (** decision rounds executed *)
  moves : int;  (** (re)associations applied *)
  converged : bool;  (** a full round made no move *)
  oscillated : bool;  (** a previously seen state recurred (Simultaneous) *)
}

(** The local rule of one user: [Some ap] to (re)associate, [None] to
    stay. [loads] must be the current per-AP loads. Ties break toward
    stronger signal; served users move only on strict improvement
    (epsilon-tolerant comparison); unserved users join the best feasible
    AP outright. *)
val decide :
  Problem.t ->
  Association.t ->
  loads:float array ->
  objective:objective ->
  int ->
  int option

(** Run rounds of local decisions from [init] (default: all unserved)
    until a fixpoint, oscillation, or [max_rounds] (default 200). *)
val run :
  ?init:Association.t ->
  ?max_rounds:int ->
  scheduler:scheduler ->
  objective:objective ->
  Problem.t ->
  outcome

(** {1 The paper's three distributed algorithms} (default scheduler:
    [Sequential]). MLA shares MNU's rule (§6.2). *)

val mnu :
  ?init:Association.t ->
  ?max_rounds:int ->
  ?scheduler:scheduler ->
  Problem.t ->
  Solution.t * outcome

val mla :
  ?init:Association.t ->
  ?max_rounds:int ->
  ?scheduler:scheduler ->
  Problem.t ->
  Solution.t * outcome

val bla :
  ?init:Association.t ->
  ?max_rounds:int ->
  ?scheduler:scheduler ->
  Problem.t ->
  Solution.t * outcome
