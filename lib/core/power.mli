(** Adaptive per-AP transmit power control (§8 future work): coordinate
    descent over discrete power levels, minimizing MLA total load plus
    [mu ×] co-channel interference, jointly with association control and
    never losing a user coverable at full power. *)

open Wlan_model

type plan = {
  levels : int array;  (** AP index -> index into [factors] *)
  factors : float array;
  problem : Problem.t;
  solution : Solution.t;  (** centralized MLA at the chosen powers *)
  objective : float;
  full_power_objective : float;
}

val default_factors : float array

(** Compile a scenario with per-AP power scalings.
    @raise Invalid_argument on arity mismatch. *)
val problem_with_powers :
  Scenario.t -> factors:float array -> levels:int array -> Problem.t

(** @raise Invalid_argument unless [factors.(0) = 1.0]. *)
val optimize :
  ?factors:float array ->
  ?mu:float ->
  ?max_passes:int ->
  channels:Channels.assignment ->
  Scenario.t ->
  plan

(** APs that ended below full power. *)
val reduced_count : plan -> int
