(** Signal-Strength-based Association (SSA) — the 802.11 default and the
    paper's baseline: every user joins the AP with the strongest signal.
    Users are admitted in index order; a user whose strongest AP cannot
    take it within the multicast budget stays unserved (no fallback to a
    weaker AP — 802.11 association considers signal strength only). *)

val name : string
val run : Wlan_model.Problem.t -> Solution.t
