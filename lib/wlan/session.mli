(** Multicast sessions (streams): a TV channel, radio channel or
    information feed with a fixed data rate. Every user subscribes to
    exactly one session (paper §3.1). *)

type t = { id : int; rate_mbps : float }

(** @raise Invalid_argument on non-positive rate or negative id. *)
val make : id:int -> rate_mbps:float -> t

val id : t -> int
val rate_mbps : t -> float
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

(** [uniform ~n ~rate_mbps]: [n] sessions all streaming at the same rate —
    the configuration the paper's evaluation uses. *)
val uniform : n:int -> rate_mbps:float -> t array
