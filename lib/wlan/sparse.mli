(** Range-limited sparse link structure: per-user candidate-AP lists and
    per-AP member lists in CSR form, sharing one mutable rate plane, plus
    the spatial bucket grid that builds them from geometry without ever
    allocating the dense (AP × user) matrix. See DESIGN.md §4.10.

    The slot structure is immutable after {!make}: churn may drive a
    slot's rate to [0.] ("link lost", skipped by every reader) and back,
    but a pair that was out of range at build time can never gain a link.

    Emits deterministic counters (when [Wlan_obs.Counters] collection is
    on): [sparse.builds], [sparse.candidate_list_len] (total slots
    built), [sparse.grid_cells_probed] (non-empty cells examined). *)

type t

val n_aps : t -> int
val n_users : t -> int

(** Total number of slots (in-range pairs at build time, lost or not). *)
val n_links : t -> int

(** [make ~n_aps ~links] builds both CSR planes from per-user candidate
    lists: [links.(u)] lists user [u]'s [(ap, rate, signal)] triples in
    strictly ascending AP order. Rates must be finite and non-negative.
    @raise Invalid_argument on unsorted/duplicate/out-of-range entries. *)
val make : n_aps:int -> links:(int * float * float) list array -> t

(** Build from dense matrices: one slot per positive-rate pair. *)
val of_dense : rates:float array array -> signal:float array array -> t

(** Structural validation; returns its argument.
    @raise Invalid_argument on malformed structure. *)
val validate : t -> t

(** Candidate slot index of [(ap, user)] if the pair was ever in range
    (binary search over the user's candidate list). *)
val find_slot : t -> ap:int -> user:int -> int option

(** Link rate, [0.] when the pair was never in range or the link is lost. *)
val link_rate : t -> ap:int -> user:int -> float

(** Signal metric; [neg_infinity] when the pair was never in range. *)
val signal : t -> ap:int -> user:int -> float

(** [iter_candidates t u f] calls [f ap rate signal] for every in-range
    candidate AP of user [u] (rate [> 0.]), in ascending AP order. *)
val iter_candidates : t -> int -> (int -> float -> float -> unit) -> unit

(** [iter_members t a f] calls [f user rate] for every in-range member
    user of AP [a] (rate [> 0.]), in ascending user order. *)
val iter_members : t -> int -> (int -> float -> unit) -> unit

(** In-range candidate APs of a user, ascending index order. *)
val candidate_aps : t -> int -> int list

(** Number of slots of a user (in-range or lost). *)
val degree : t -> int -> int

(** [set_rate t ~ap ~user r] overwrites the slot's rate in place ([0.] =
    lost, positive = re-armed). Setting an absent link to [0.] is a
    no-op.
    @raise Invalid_argument when the pair was never in range and
    [r > 0.] — the slot structure cannot grow. *)
val set_rate : t -> ap:int -> user:int -> float -> unit

(** A copy whose rate plane is private; all immutable planes are shared.
    Take one before mutating (churn replay does). *)
val copy_values : t -> t

(** A copy with the rates of dead APs' and absent users' slots forced to
    [0.] — the sparse counterpart of zeroing matrix rows and columns. *)
val masked : t -> ap_alive:bool array -> user_present:bool array -> t

(** A copy with every in-range rate mapped through the function (lost
    links stay lost). *)
val map_rates : t -> (float -> float) -> t

val pp : Format.formatter -> t -> unit

(** Spatial bucket grid over point sets (typically AP positions). Square
    cells of side [cell]; probing gathers the 3×3 cell block around a
    point, a guaranteed superset of the points within [cell] of it — no
    false negatives at the exact reach boundary or on cell edges. The
    caller applies the exact distance/rate predicate downstream, so
    candidate construction is bit-identical to the dense scan. *)
module Grid : sig
  type grid

  (** [build ~cell pts] buckets every point index by its cell.
      Bucket contents are index-ascending regardless of input order.
      @raise Invalid_argument if [cell <= 0]. *)
  val build : cell:float -> Point.t array -> grid

  (** All point indices in the 3×3 cell block around the probe point, in
      ascending index order (deterministic: explicit key lookups, no
      hash-order iteration). *)
  val probe : grid -> Point.t -> int list
end
