(** The paper's worked examples and NP-hardness constructions, as problem
    instances. These drive the unit tests: every step-by-step example in the
    paper (§3.2, §4, §5, §6, Fig. 4) is replayed against them. *)

(** {1 Figure 1}

    Two APs, five users. Link rates (Mbps):
    - a1 -> u1:3, u2:6, u3:4, u4:4, u5:4
    - a2 -> u3:5, u4:5, u5:3 (u1, u2 out of range)

    Users u1, u3 request session s1; users u2, u4, u5 request s2. Both APs
    have multicast budget 1. User indices 0..4 = u1..u5; AP 0 = a1, 1 = a2;
    session 0 = s1, 1 = s2. *)

let fig1_rates =
  [| [| 3.; 6.; 4.; 4.; 4. |]; [| 0.; 0.; 5.; 5.; 3. |] |]

let fig1_user_session = [| 0; 1; 0; 1; 1 |]

(** Figure 1 with both session rates set to [rate_mbps] — 3 Mbps for the MNU
    walk-through, 1 Mbps for the BLA and MLA walk-throughs. *)
let fig1 ~session_rate_mbps =
  Problem.make
    ~session_rates:[| session_rate_mbps; session_rate_mbps |]
    ~user_session:(Array.copy fig1_user_session)
    ~rates:(Array.map Array.copy fig1_rates)
    ~budget:1. ()

(** {1 Figure 4} — the non-convergence example for simultaneous local
    decisions. Four users, one session at 1 Mbps:
    - a1 -> u1:5, u2:4, u3:4
    - a2 -> u2:4, u3:4, u4:5

    Initially u1, u2 are associated with a1 and u3, u4 with a2. When u2 and
    u3 re-decide simultaneously they swap forever. (The paper's §4.2 prose
    has a u5/u4 typo; the figure shows four users, which is what we model.) *)

let fig4 =
  Problem.make ~session_rates:[| 1. |] ~user_session:[| 0; 0; 0; 0 |]
    ~rates:[| [| 5.; 4.; 4.; 0. |]; [| 0.; 4.; 4.; 5. |] |]
    ~budget:1. ()

(** The initial association of Figure 4: u1,u2 -> a1; u3,u4 -> a2. *)
let fig4_initial : Association.t = [| 0; 0; 1; 1 |]

(** {1 NP-hardness constructions} (Appendix A–C). Each turns an instance of
    the source problem into the equivalent association-control instance; the
    tests use them to cross-check our solvers against the combinatorial
    solvers in [Optkit]. *)

(** Appendix A: Subset Sum -> MNU. One AP with multicast budget [target];
    number [g_i] becomes session [i] with load [g_i] (unit link rates, one
    session per number, [g_i] users requesting it). Every value is scaled by
    [scale] so loads stay below 1, mirroring the proof's normalization. *)
let of_subset_sum ~numbers ~target =
  let scale = float_of_int (List.fold_left ( + ) 1 numbers + target) in
  let k = List.length numbers in
  let session_rates =
    Array.of_list (List.map (fun g -> float_of_int g /. scale) numbers)
  in
  let user_session =
    List.concat (List.mapi (fun i g -> List.init g (fun _ -> i)) numbers)
    |> Array.of_list
  in
  let n_users = Array.length user_session in
  let rates = [| Array.make n_users 1. |] in
  ignore k;
  Problem.make ~session_rates ~user_session ~rates
    ~budget:(float_of_int target /. scale)
    ()

(** Appendix B: Minimum Makespan Scheduling -> BLA. [m] identical machines
    become [m] APs with a single unit transmission rate to everyone; job [i]
    with processing time [p_i] becomes session [i] (one user) with stream
    rate [p_i] scaled below 1. *)
let of_makespan ~jobs ~machines =
  let scale = List.fold_left ( +. ) 1. jobs in
  let session_rates = Array.of_list (List.map (fun p -> p /. scale) jobs) in
  let n_users = Array.length session_rates in
  let user_session = Array.init n_users (fun i -> i) in
  let rates = Array.init machines (fun _ -> Array.make n_users 1.) in
  Problem.make ~session_rates ~user_session ~rates ~budget:1. ()

(** Appendix C: cardinality Set Cover -> MLA. Subset [S_j] becomes AP [j]
    that reaches exactly the users in [S_j]; all users request one session
    with load [c] over unit-rate links. [subsets] are lists of user indices
    in [0, n_users). *)
let of_set_cover ~n_users ~subsets ~cost =
  let rates =
    Array.of_list
      (List.map
         (fun s ->
           let row = Array.make n_users 0. in
           List.iter (fun u -> row.(u) <- 1.) s;
           row)
         subsets)
  in
  Problem.make ~session_rates:[| cost |]
    ~user_session:(Array.make n_users 0)
    ~rates ~budget:1. ()
