(** Multicast load accounting (Definition 1 of the paper): an AP serving a
    session transmits at the lowest max link rate among its receivers of
    that session, costing [session_rate / tx_rate] of its airtime; an AP's
    load is the sum over its sessions, the network's total load the sum
    over APs. *)

(** [tx_rates p assoc].(a).(s) is the rate AP [a] must use for session
    [s] (the min link rate among its associated receivers of [s]), or [0.]
    when unserved. *)
val tx_rates : Problem.t -> Association.t -> float array array

(** Load implied by one AP's per-session transmission-rate row. *)
val load_of_tx : Problem.t -> float array -> float

(** Multicast load of every AP. *)
val ap_loads : Problem.t -> Association.t -> float array

(** Load of one AP (prefer {!ap_loads} for all of them). *)
val ap_load : Problem.t -> Association.t -> ap:int -> float

(** The MLA objective: sum of all AP loads. *)
val total_load : Problem.t -> Association.t -> float

(** The BLA objective: maximum AP load. *)
val max_load : Problem.t -> Association.t -> float

(** Non-increasing copy of a load array — the distributed BLA comparison
    order (footnote 5). *)
val sorted_load_vector : float array -> float array

(** Exact lexicographic comparison of non-increasing load vectors. *)
val compare_load_vectors : float array -> float array -> int

(** Like {!compare_load_vectors} but entries within [eps] (default 1e-9)
    compare equal — decision rules must use this so float summation-order
    noise can never flip a strict-improvement test. *)
val compare_load_vectors_eps : ?eps:float -> float array -> float array -> int

(** Every AP within the per-AP multicast budget (tolerance [eps]). *)
val respects_budget : ?eps:float -> Problem.t -> Association.t -> bool

(** Hypothetical loads for the distributed rules; neither mutates the
    association. *)

val load_if_joins : Problem.t -> Association.t -> user:int -> ap:int -> float
val load_if_leaves : Problem.t -> Association.t -> user:int -> ap:int -> float

val pp_loads : Format.formatter -> float array -> unit
