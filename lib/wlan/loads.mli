(** Multicast load accounting (Definition 1 of the paper): an AP serving a
    session transmits at the lowest max link rate among its receivers of
    that session, costing [session_rate / tx_rate] of its airtime; an AP's
    load is the sum over its sessions, the network's total load the sum
    over APs. *)

(** [tx_rates p assoc].(a).(s) is the rate AP [a] must use for session
    [s] (the min link rate among its associated receivers of [s]), or [0.]
    when unserved. *)
val tx_rates : Problem.t -> Association.t -> float array array

(** Load implied by one AP's per-session transmission-rate row. *)
val load_of_tx : Problem.t -> float array -> float

(** Multicast load of every AP. *)
val ap_loads : Problem.t -> Association.t -> float array

(** Load of one AP (prefer {!ap_loads} for all of them). *)
val ap_load : Problem.t -> Association.t -> ap:int -> float

(** The MLA objective: sum of all AP loads. *)
val total_load : Problem.t -> Association.t -> float

(** The BLA objective: maximum AP load. *)
val max_load : Problem.t -> Association.t -> float

(** Non-increasing copy of a load array — the distributed BLA comparison
    order (footnote 5). *)
val sorted_load_vector : float array -> float array

(** Exact lexicographic comparison of non-increasing load vectors. *)
val compare_load_vectors : float array -> float array -> int

(** Like {!compare_load_vectors} but a sub-[eps] difference (default
    [eps = 1e-9]) at the first differing entry makes the vectors compare
    equal — decision rules must use this so float summation-order noise
    can never flip a strict-improvement test. Exactly equal entries are
    skipped, so the induced strict order (common exact prefix, then a
    gap > [eps]) is transitive. *)
val compare_load_vectors_eps : ?eps:float -> float array -> float array -> int

(** {!compare_load_vectors_eps} over the length-[len] prefixes of two
    scratch buffers (both at least [len] long) — what the flat decision
    kernel uses for vectors kept in reused arena buffers, where capacity
    exceeds the logical neighborhood size. *)
val compare_load_prefixes_eps :
  ?eps:float -> len:int -> float array -> float array -> int

(** Every AP within the per-AP multicast budget (tolerance [eps]). *)
val respects_budget : ?eps:float -> Problem.t -> Association.t -> bool

(** Hypothetical loads for the distributed rules; neither mutates the
    association. *)

val load_if_joins : Problem.t -> Association.t -> user:int -> ap:int -> float
val load_if_leaves : Problem.t -> Association.t -> user:int -> ap:int -> float

val pp_loads : Format.formatter -> float array -> unit

(** Incremental load tracking: a mirror of an association that keeps
    per-(AP, session) link-rate multisets so joins and leaves cost
    O(log members + n_sessions) instead of a full user scan, with O(1)
    [ap_load]/[max_load] reads. Every returned value is bit-identical to
    what the eager functions above compute for the same association:
    cached min rates are exact (min is order-insensitive) and cached
    loads are always recomputed by the same index-order sums as
    {!load_of_tx} / {!total_load}. *)
module Tracker : sig
  type t

  (** [create p assoc] replays the current association. [assoc] is
      {e shared}: the tracker updates it on {!move}, and all further
      mutation must go through the tracker. Raises [Invalid_argument] if
      some user is associated to an AP with non-positive link rate. *)
  val create : Problem.t -> Association.t -> t

  (** [move t ~user ~ap] re-associates [user] to [ap] (which may be
      [Association.none]), updating the shared association array and the
      affected APs' cached loads. *)
  val move : t -> user:int -> ap:int -> unit

  (** [unserve t ~user] is [move t ~user ~ap:Association.none]. *)
  val unserve : t -> user:int -> unit

  (** O(1) cached load of one AP. *)
  val ap_load : t -> int -> float

  (** The live per-AP load array — a view, not a copy; treat as
      read-only. *)
  val loads : t -> float array

  (** Exact network load (index-order re-fold, cached until the next
      move). *)
  val total_load : t -> float

  (** O(1) maximum AP load. *)
  val max_load : t -> float

  (** Hypothetical loads, as {!Loads.load_if_joins} /
      {!Loads.load_if_leaves} but in O(log members + n_sessions). *)

  val load_if_joins : t -> user:int -> ap:int -> float
  val load_if_leaves : t -> user:int -> ap:int -> float

  (** Batched {!load_if_joins} over a neighborhood plane, for the flat
      decision kernel: [load_if_joins_into t ~user ~nbr ~d ~into ()]
      writes the hypothetical load of [nbr.(k)] into [into.(k)] for
      [k < d] — each the identical float of the per-query call, with the
      per-batch lookups hoisted. [rates] may carry precomputed link
      rates for [nbr] (must equal {!Problem.link_rate}; only safe on
      static topologies). *)
  val load_if_joins_into :
    t ->
    user:int ->
    ?rates:float array ->
    nbr:int array ->
    d:int ->
    into:float array ->
    unit ->
    unit
end
