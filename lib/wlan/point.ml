(** Planar geometry for node placement.

    All coordinates are in meters. The paper places APs and users uniformly
    at random over a rectangular deployment area (1.2 km² in the large-scale
    experiments, 600 m side in the small optimality experiments). *)

type t = { x : float; y : float }

let v x y = { x; y }

let origin = v 0. 0.

let dist2 a b =
  let dx = a.x -. b.x and dy = a.y -. b.y in
  (dx *. dx) +. (dy *. dy)

(** Euclidean distance in meters. *)
let dist a b = sqrt (dist2 a b)

(** [within r a b] is true when [a] and [b] are at most [r] meters apart. *)
let within r a b = dist2 a b <= r *. r

let equal a b = Float.equal a.x b.x && Float.equal a.y b.y

let pp ppf { x; y } = Fmt.pf ppf "(%.1f, %.1f)" x y

(** Uniform random point in the [w] × [h] rectangle anchored at the origin. *)
let random ~rng ~w ~h =
  v (Random.State.float rng w) (Random.State.float rng h)
