(** 802.11a transmission-rate adaptation, Table 1 of the paper.

    The standard picks the link data rate based on signal quality; the paper
    (following Manshaei & Turletti's 802.11a measurements) reduces this to a
    deterministic rate-vs-distance threshold table:

    {v
    Rate (Mbps)            6    12   18   24   36   48   54
    Distance threshold (m) 200  145  105  85   60   40   35
    v}

    A link of length [d] runs at the highest rate whose threshold is at least
    [d]; beyond 200 m the nodes cannot communicate. *)

type entry = { rate_mbps : float; threshold_m : float }

(** A rate table is a list of entries sorted by strictly decreasing rate
    (hence strictly increasing distance threshold). The last (lowest) rate is
    the basic rate used for 802.11 broadcast in basic-rate mode. *)
type t = { entries : entry list }

let invariant { entries } =
  let rec ok = function
    | a :: (b :: _ as rest) ->
        a.rate_mbps > b.rate_mbps && a.threshold_m < b.threshold_m && ok rest
    | [ e ] -> e.rate_mbps > 0. && e.threshold_m > 0.
    | [] -> false
  in
  ok entries

let make entries =
  let t = { entries } in
  if not (invariant t) then
    invalid_arg "Rate_table.make: rates must be strictly decreasing";
  t

(** The paper's Table 1 (IEEE 802.11a). *)
let ieee80211a =
  make
    [
      { rate_mbps = 54.; threshold_m = 35. };
      { rate_mbps = 48.; threshold_m = 40. };
      { rate_mbps = 36.; threshold_m = 60. };
      { rate_mbps = 24.; threshold_m = 85. };
      { rate_mbps = 18.; threshold_m = 105. };
      { rate_mbps = 12.; threshold_m = 145. };
      { rate_mbps = 6.; threshold_m = 200. };
    ]

(** IEEE 802.11b: 1–11 Mbps. The paper contrasts 802.11b/g (3
    non-overlapping channels) with 802.11a (12 channels); DSSS at 2.4 GHz
    reaches farther at its low rates. Thresholds follow the same
    measurement methodology as Table 1. *)
let ieee80211b =
  make
    [
      { rate_mbps = 11.; threshold_m = 160. };
      { rate_mbps = 5.5; threshold_m = 250. };
      { rate_mbps = 2.; threshold_m = 350. };
      { rate_mbps = 1.; threshold_m = 450. };
    ]

let default = ieee80211a

let entries t = t.entries

(** All supported rates, highest first. *)
let rates t = List.map (fun e -> e.rate_mbps) t.entries

(** Radio propagation range: the largest distance threshold. *)
let range t =
  List.fold_left (fun acc e -> Float.max acc e.threshold_m) 0. t.entries

(** The basic (lowest, most robust) rate; 802.11 transmits broadcast frames
    at this rate unless multi-rate multicast is available. *)
let basic_rate t =
  List.fold_left (fun acc e -> Float.min acc e.rate_mbps) infinity t.entries

(** [rate_at_distance t d] is the maximum link rate at distance [d] meters,
    or [None] when [d] exceeds the radio range. *)
let rate_at_distance t d =
  let rec go = function
    | [] -> None
    | e :: rest -> if d <= e.threshold_m then Some e.rate_mbps else go rest
  in
  go t.entries

(** Restrict a table to its basic rate only — models stock 802.11 broadcast,
    which always transmits multicast at the basic rate (paper §3.1). *)
let basic_only t =
  let range = range t and basic = basic_rate t in
  make [ { rate_mbps = basic; threshold_m = range } ]

(** [scale_thresholds f t] scales every distance threshold by [f] — used by
    the adaptive-power-control extension (paper §8), where a lower transmit
    power shrinks every rate region proportionally. *)
let scale_thresholds f t =
  if f <= 0. then invalid_arg "Rate_table.scale_thresholds: factor must be > 0";
  make
    (List.map (fun e -> { e with threshold_m = e.threshold_m *. f }) t.entries)

let pp_entry ppf e =
  Fmt.pf ppf "%g Mbps @ <= %g m" e.rate_mbps e.threshold_m

let pp ppf t = Fmt.(list ~sep:comma pp_entry) ppf t.entries
