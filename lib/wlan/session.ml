(** Multicast sessions (streams).

    Each session is a live stream — a TV channel, radio channel, visitor
    information feed — with a fixed data rate in Mbps. Every user subscribes
    to exactly one session (paper §3.1: "each user may request one multicast
    stream", like watching one TV channel at a time). *)

type t = { id : int; rate_mbps : float }

let make ~id ~rate_mbps =
  (* [<= 0.] is false for nan: require finiteness explicitly *)
  if not (Float.is_finite rate_mbps) || rate_mbps <= 0. then
    invalid_arg "Session.make: rate must be positive";
  if id < 0 then invalid_arg "Session.make: id must be non-negative";
  { id; rate_mbps }

let id t = t.id
let rate_mbps t = t.rate_mbps
let equal a b = a.id = b.id && Float.equal a.rate_mbps b.rate_mbps
let pp ppf t = Fmt.pf ppf "s%d(%g Mbps)" t.id t.rate_mbps

(** [uniform ~n ~rate_mbps] is [n] sessions all streaming at [rate_mbps],
    the configuration used throughout the paper's evaluation. *)
let uniform ~n ~rate_mbps =
  Array.init n (fun id -> make ~id ~rate_mbps)
