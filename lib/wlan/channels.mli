(** Radio channel planning and co-channel interference accounting.

    The paper assumes neighboring APs are channel-planned not to interfere
    (§3.1) and notes BLA/MLA implicitly reduce whatever interference
    remains. This module provides the conflict graph, a DSATUR greedy
    coloring onto the available channels, and metrics charging each AP the
    multicast load of its same-channel conflict neighbors. *)

(** 802.11a in US/Canada: 12 non-overlapping channels. *)
val default_n_channels : int

(** APs within [range] meters of each other (carrier-sense range;
    typically ~2x the data range). *)
val conflict_edges : range:float -> Point.t array -> (int * int) list

val adjacency : n_aps:int -> (int * int) list -> int list array

type assignment = {
  channels : int array;  (** AP index -> channel in [0, n_channels) *)
  n_channels : int;
  conflict_edges : (int * int) list;
  residual_conflicts : int;
      (** same-channel conflict edges the coloring could not avoid *)
}

(** DSATUR greedy coloring; when all colors clash at a vertex it takes the
    color least used among its neighbors (graceful degradation).
    @raise Invalid_argument when [n_channels <= 0]. *)
val color : ?n_channels:int -> n_aps:int -> (int * int) list -> assignment

(** Whether the paper's no-interference assumption holds outright. *)
val interference_free : assignment -> bool

(** Per-AP interference: the summed load of co-channel conflicting
    neighbors. *)
val co_channel_interference : assignment -> loads:float array -> float array

val total_interference : assignment -> loads:float array -> float
val max_interference : assignment -> loads:float array -> float
val pp : Format.formatter -> assignment -> unit
