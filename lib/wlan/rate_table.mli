(** 802.11 transmission-rate adaptation tables (the paper's Table 1).

    A link of length [d] runs at the highest rate whose distance threshold
    is at least [d]; beyond the largest threshold the nodes cannot
    communicate. *)

type entry = { rate_mbps : float; threshold_m : float }

type t

(** Entries must have strictly decreasing rates and strictly increasing
    thresholds. @raise Invalid_argument otherwise. *)
val make : entry list -> t

val invariant : t -> bool

(** The paper's Table 1: 802.11a, 6–54 Mbps over 200–35 m. *)
val ieee80211a : t

(** IEEE 802.11b: 1–11 Mbps, longer reach, only 3 non-overlapping
    channels in practice. *)
val ieee80211b : t

(** Alias for {!ieee80211a}. *)
val default : t

val entries : t -> entry list

(** All supported rates, highest first. *)
val rates : t -> float list

(** Radio range: the largest distance threshold. *)
val range : t -> float

(** The basic (lowest) rate — what stock 802.11 broadcast uses. *)
val basic_rate : t -> float

(** [rate_at_distance t d] is the maximum link rate at distance [d], or
    [None] beyond the radio range. *)
val rate_at_distance : t -> float -> float option

(** Restrict to the basic rate only (stock 802.11 multicast, §3.1). *)
val basic_only : t -> t

(** Scale every threshold by a factor > 0 — the adaptive-power-control
    extension (§8). @raise Invalid_argument on non-positive factors. *)
val scale_thresholds : float -> t -> t

val pp_entry : Format.formatter -> entry -> unit
val pp : Format.formatter -> t -> unit
