(** Geometric WLAN deployments.

    A scenario is the physical picture: AP positions, user positions, the
    session each user requests, the session stream rates, the rate-adaptation
    table and the per-AP multicast budget. [to_problem] compiles it into the
    abstract {!Problem} instance the algorithms consume, by running rate
    adaptation on every AP-user link and installing negative distance as the
    signal-strength metric (nearest AP = strongest signal). *)

type t = {
  area_w : float;  (** deployment area width (m) *)
  area_h : float;  (** deployment area height (m) *)
  ap_pos : Point.t array;
  user_pos : Point.t array;
  user_session : int array;  (** user index -> session index *)
  sessions : Session.t array;
  rate_table : Rate_table.t;
  budget : float;
}

let n_aps t = Array.length t.ap_pos
let n_users t = Array.length t.user_pos

let make ~area_w ~area_h ~ap_pos ~user_pos ~user_session ~sessions
    ?(rate_table = Rate_table.default) ~budget () =
  if Array.length user_session <> Array.length user_pos then
    invalid_arg "Scenario.make: user_session/user_pos length mismatch";
  Array.iter
    (fun s ->
      if s < 0 || s >= Array.length sessions then
        invalid_arg "Scenario.make: user requests unknown session")
    user_session;
  { area_w; area_h; ap_pos; user_pos; user_session; sessions; rate_table; budget }

(** Distance matrix, AP-major. *)
let distances t =
  Array.map
    (fun ap -> Array.map (fun u -> Point.dist ap u) t.user_pos)
    t.ap_pos

(** Compile into a dense abstract problem instance by rate adaptation.
    Random placement can legitimately strand a user out of every AP's
    range, so the compiled instance allows uncovered users —
    {!uncovered_users} reports them. *)
let to_problem t =
  let d = distances t in
  let rates =
    Array.map
      (Array.map (fun dist ->
           match Rate_table.rate_at_distance t.rate_table dist with
           | Some r -> r
           | None -> 0.))
      d
  in
  let signal = Array.map (Array.map (fun dist -> -.dist)) d in
  Problem.make ~signal ~allow_uncovered:true
    ~session_rates:(Array.map Session.rate_mbps t.sessions)
    ~user_session:(Array.copy t.user_session)
    ~rates ~budget:t.budget ()

(** Compile into a sparse problem instance without ever allocating the
    dense (AP × user) matrix: a {!Sparse.Grid} bucket grid over the AP
    positions (cell = radio range) yields each user's candidate
    superset, and the {e exact same} rate-adaptation predicate as
    {!to_problem} — [Rate_table.rate_at_distance] on [Point.dist] —
    decides membership, so the two compilations agree bit for bit on
    every link rate and signal value. O(APs + users · candidates). *)
let to_problem_sparse t =
  let range = Rate_table.range t.rate_table in
  let grid = Sparse.Grid.build ~cell:range t.ap_pos in
  let links =
    Array.map
      (fun u ->
        (* probe order is ascending, so the candidate list is sorted *)
        List.filter_map
          (fun a ->
            let dist = Point.dist t.ap_pos.(a) u in
            match Rate_table.rate_at_distance t.rate_table dist with
            | Some r -> Some (a, r, -.dist)
            | None -> None)
          (Sparse.Grid.probe grid u))
      t.user_pos
  in
  Problem.make_sparse ~allow_uncovered:true
    ~sparse:(Sparse.make ~n_aps:(n_aps t) ~links)
    ~session_rates:(Array.map Session.rate_mbps t.sessions)
    ~user_session:(Array.copy t.user_session)
    ~budget:t.budget ()

(** Users with no AP within radio range. *)
let uncovered_users t =
  let range = Rate_table.range t.rate_table in
  let covered u = Array.exists (fun a -> Point.within range a u) t.ap_pos in
  let acc = ref [] in
  for u = Array.length t.user_pos - 1 downto 0 do
    if not (covered t.user_pos.(u)) then acc := u :: !acc
  done;
  !acc

let fully_covered t = uncovered_users t = []

let pp ppf t =
  Fmt.pf ppf "@[<v>scenario: %gx%g m, %d APs, %d users, %d sessions@]"
    t.area_w t.area_h (n_aps t) (n_users t) (Array.length t.sessions)
