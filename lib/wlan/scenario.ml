(** Geometric WLAN deployments.

    A scenario is the physical picture: AP positions, user positions, the
    session each user requests, the session stream rates, the link-rate
    model and the per-AP multicast budget. [to_problem] compiles it into
    the abstract {!Problem} instance the algorithms consume, by running
    the model's rate adaptation on every AP-user link and installing the
    model's signal metric (for the default {!Rate_model.Table} model:
    negative distance, nearest AP = strongest signal). *)

type t = {
  area_w : float;  (** deployment area width (m) *)
  area_h : float;  (** deployment area height (m) *)
  ap_pos : Point.t array;
  user_pos : Point.t array;
  user_session : int array;  (** user index -> session index *)
  sessions : Session.t array;
  rate_table : Rate_table.t;
  model : Rate_model.t;
  budget : float;
}

let n_aps t = Array.length t.ap_pos
let n_users t = Array.length t.user_pos

let make ~area_w ~area_h ~ap_pos ~user_pos ~user_session ~sessions
    ?(rate_table = Rate_table.default) ?model ~budget () =
  if Array.length user_session <> Array.length user_pos then
    invalid_arg "Scenario.make: user_session/user_pos length mismatch";
  Array.iter
    (fun s ->
      if s < 0 || s >= Array.length sessions then
        invalid_arg "Scenario.make: user requests unknown session")
    user_session;
  let model =
    match model with
    | None -> Rate_model.Table rate_table
    | Some m -> Rate_model.validate m
  in
  (* a [Table] model IS the rate table — keep the two fields coherent so
     [rate_table] consumers (the simulator's MAC timing, serialization)
     agree with the compile *)
  let rate_table =
    match model with Rate_model.Table tbl -> tbl | Rate_model.Path_loss _ -> rate_table
  in
  { area_w; area_h; ap_pos; user_pos; user_session; sessions; rate_table;
    model; budget }

(** The model's radio range — the radius beyond which no link exists. *)
let range t = Rate_model.max_range t.model

(** Distance matrix, AP-major. *)
let distances t =
  Array.map
    (fun ap -> Array.map (fun u -> Point.dist ap u) t.user_pos)
    t.ap_pos

(** Compile into a dense abstract problem instance through the model's
    link predicate. Random placement can legitimately strand a user out
    of every AP's range, so the compiled instance allows uncovered
    users — {!uncovered_users} reports them. *)
let to_problem t =
  let d = distances t in
  let n_aps = Array.length t.ap_pos and n_users = Array.length t.user_pos in
  let rates = Array.make_matrix n_aps n_users 0. in
  let signal = Array.make_matrix n_aps n_users 0. in
  for a = 0 to n_aps - 1 do
    for u = 0 to n_users - 1 do
      match Rate_model.link t.model ~ap:a ~user:u ~dist:d.(a).(u) with
      | Some (r, s) ->
          rates.(a).(u) <- r;
          signal.(a).(u) <- s
      | None -> signal.(a).(u) <- Rate_model.dead_signal t.model ~dist:d.(a).(u)
    done
  done;
  Problem.make ~signal ~allow_uncovered:true
    ~session_rates:(Array.map Session.rate_mbps t.sessions)
    ~user_session:(Array.copy t.user_session)
    ~rates ~budget:t.budget ()

(** Compile into a sparse problem instance without ever allocating the
    dense (AP × user) matrix: a {!Sparse.Grid} bucket grid over the AP
    positions (cell = the model's {!Rate_model.max_range}) yields each
    user's candidate superset, and the {e exact same} link predicate as
    {!to_problem} — [Rate_model.link] on [Point.dist] — decides
    membership, so the two compilations agree bit for bit on every link
    rate and signal value. O(APs + users · candidates). *)
let to_problem_sparse t =
  let grid = Sparse.Grid.build ~cell:(range t) t.ap_pos in
  let links =
    Array.mapi
      (fun ui u ->
        (* probe order is ascending, so the candidate list is sorted *)
        List.filter_map
          (fun a ->
            let dist = Point.dist t.ap_pos.(a) u in
            match Rate_model.link t.model ~ap:a ~user:ui ~dist with
            | Some (r, s) -> Some (a, r, s)
            | None -> None)
          (Sparse.Grid.probe grid u))
      t.user_pos
  in
  Problem.make_sparse ~allow_uncovered:true
    ~sparse:(Sparse.make ~n_aps:(n_aps t) ~links)
    ~session_rates:(Array.map Session.rate_mbps t.sessions)
    ~user_session:(Array.copy t.user_session)
    ~budget:t.budget ()

(** Users no AP can serve — decided by the same {!Rate_model.link}
    predicate the compile uses, so this list agrees exactly with the
    compiled problem's empty candidate sets (historically it tested
    [Point.within], whose squared-distance comparison could disagree
    with the compile at the range boundary in floating point). *)
let uncovered_users t =
  let n_aps = Array.length t.ap_pos in
  let covered u =
    let up = t.user_pos.(u) in
    let rec probe a =
      a < n_aps
      && (match
            Rate_model.link t.model ~ap:a ~user:u
              ~dist:(Point.dist t.ap_pos.(a) up)
          with
         | Some _ -> true
         | None -> probe (a + 1))
    in
    probe 0
  in
  let acc = ref [] in
  for u = Array.length t.user_pos - 1 downto 0 do
    if not (covered u) then acc := u :: !acc
  done;
  !acc

let fully_covered t = uncovered_users t = []

let pp ppf t =
  Fmt.pf ppf "@[<v>scenario: %gx%g m, %d APs, %d users, %d sessions, %s model@]"
    t.area_w t.area_h (n_aps t) (n_users t) (Array.length t.sessions)
    (Rate_model.name t.model)
