(** Declarative churn & fault-injection scripts (pure data).

    A script is a time-ordered list of network dynamics — arrivals,
    departures, AP failures/recoveries, rate drift, burst arrivals — that
    the simulator's churn engine compiles into its event queue. Events at
    the same timestamp form one {e step} applied atomically before the
    online layer re-converges; within a step, events apply in script
    order. *)

type event =
  | Join of { user : int }  (** an absent user arrives (no-op if present) *)
  | Leave of { user : int }  (** a present user departs (no-op if absent) *)
  | Ap_fail of { ap : int }
      (** the AP goes dark: members are detached, it answers no queries *)
  | Ap_recover of { ap : int }  (** the AP comes back with no members *)
  | Drift of { user : int; steps : int }
      (** every link of [user] shifts [steps] rate tiers ([> 0] = faster);
          a link pushed below the lowest tier is lost (rate 0) *)
  | Burst of { users : int list }
      (** simultaneous arrivals: one [Join] per user within the step *)

type timed = { time : float; event : event }

(** Events in nondecreasing time order (the constructors guarantee it). *)
type t = { events : timed list }

(** [make events] sorts stably by time (script order is preserved among
    same-time events, which is also their application order).
    @raise Invalid_argument on negative or non-finite times. *)
val make : timed list -> t

(** [validate ~n_aps ~n_users t] checks every index against the topology
    dimensions and returns [t].
    @raise Invalid_argument on out-of-range users or APs. *)
val validate : n_aps:int -> n_users:int -> t -> t

val events : t -> timed list
val length : t -> int

(** Last event time, [0.] for an empty script. *)
val duration : t -> float

(** Events grouped by exactly equal timestamps, chronological, script
    order within a step — the unit the engine applies atomically. *)
val steps : t -> (float * event list) list

(** [drifted_rate ~tiers rate steps] shifts [rate] by [steps] positions
    on the tier ladder ([tiers], sorted descending): [rate] snaps to the
    nearest tier (ties toward the faster one), [steps > 0] moves toward
    faster tiers (clamped at the top), and falling off the bottom loses
    the link (rate [0.]). Zero and negative rates pass through. This is
    the one semantics of a {!Drift} event, shared by the churn engine
    and the serve daemon. *)
val drifted_rate : tiers:float list -> float -> int -> float

val pp_event : event Fmt.t
val pp_timed : timed Fmt.t
val pp : t Fmt.t

(** {1 Random scripts} *)

type gen_config = {
  n_events : int;
  duration : float;  (** events drawn uniformly over [0, duration] *)
  join_weight : int;
  leave_weight : int;
  fail_weight : int;
  recover_weight : int;
  drift_weight : int;
  burst_weight : int;
  max_burst : int;  (** users per burst, >= 1 *)
}

val default_gen : gen_config

(** [random ~rng ~n_aps ~n_users cfg] draws [cfg.n_events] weighted
    events from [rng] (PR-1 split discipline: give each run its own
    state). Generated scripts may contain no-op events — the engine
    treats them as such, so every script is replayable. *)
val random :
  rng:Random.State.t -> n_aps:int -> n_users:int -> gen_config -> t
