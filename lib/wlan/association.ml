(** User-to-AP association state.

    An association maps every user to the AP it receives its multicast
    session from, or to nothing if the user is unserved. Represented densely
    as an int array indexed by user, with [none] (-1) for unserved users. *)

type t = int array

let none = -1

(** Fresh association with every user unserved. *)
let empty ~n_users : t = Array.make n_users none

let copy : t -> t = Array.copy

let ap_of (t : t) u = if t.(u) = none then None else Some t.(u)
let is_served (t : t) u = t.(u) <> none
let serve (t : t) ~user ~ap = t.(user) <- ap
let unserve (t : t) ~user = t.(user) <- none

(** Number of users currently served. *)
let served_count (t : t) =
  Array.fold_left (fun n a -> if a <> none then n + 1 else n) 0 t

let served_users (t : t) =
  let acc = ref [] in
  for u = Array.length t - 1 downto 0 do
    if t.(u) <> none then acc := u :: !acc
  done;
  !acc

let unserved_users (t : t) =
  let acc = ref [] in
  for u = Array.length t - 1 downto 0 do
    if t.(u) = none then acc := u :: !acc
  done;
  !acc

(** Users associated with AP [a]. *)
let users_of (t : t) ~ap =
  let acc = ref [] in
  for u = Array.length t - 1 downto 0 do
    if t.(u) = ap then acc := u :: !acc
  done;
  !acc

let equal (a : t) (b : t) = a = b

(** Every served user must be in range of its AP. *)
let in_range_ok p (t : t) =
  let ok = ref true in
  Array.iteri
    (fun u a -> if a <> none && not (Problem.in_range p ~ap:a ~user:u) then ok := false)
    t;
  !ok

let pp ppf (t : t) =
  let pairs =
    Array.to_list (Array.mapi (fun u a -> (u, a)) t)
    |> List.filter (fun (_, a) -> a <> none)
  in
  Fmt.pf ppf "@[<h>%a@]"
    Fmt.(list ~sep:sp (fun ppf (u, a) -> pf ppf "u%d->a%d" u a))
    pairs
