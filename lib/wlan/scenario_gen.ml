(** Seeded random scenario generation matching the paper's setup (§7):
    APs and users uniformly at random over the deployment area, every user
    picking one of the multicast sessions uniformly at random.

    Two knobs generalize the paper's workload for the extension studies:
    {!placement} clusters users around hotspots (lecture halls, gates) and
    {!popularity} skews session choice Zipf-style (a few TV channels draw
    most viewers) — both default to the paper's uniform behaviour. *)

(** How users are placed in the deployment area. *)
type placement =
  | Uniform
  | Clustered of { hotspots : int; sigma_m : float }
      (** users pick one of [hotspots] uniformly-placed centers and land a
          Gaussian [sigma_m]-meter offset away (clamped to the area) *)

(** How users pick their multicast session. *)
type popularity =
  | Uniform_pop
  | Zipf of float
      (** session [k] (1-based) drawn with weight [1 / k^alpha] *)

type config = {
  area_w : float;
  area_h : float;
  n_aps : int;
  n_users : int;
  n_sessions : int;
  session_rate_mbps : float;
  budget : float;
  rate_table : Rate_table.t;
  rate_model : Rate_model.t option;
      (** link-rate model; [None] means [Rate_model.Table rate_table]
          (the paper's Table 1 compile path) *)
  ensure_coverage : bool;
      (** resample user positions (up to [max_resample] attempts each) until
          every user has at least one AP in range — the paper's BLA/MLA
          experiments require all users to be servable *)
  max_resample : int;
  placement : placement;
  popularity : popularity;
}

(** The paper's large-scale setup: 1.2 km² area, 200 m range, budget 0.9,
    5 sessions. Side length is [sqrt 1.2e6] ≈ 1095 m. *)
let paper_default =
  let side = sqrt 1.2e6 in
  {
    area_w = side;
    area_h = side;
    n_aps = 200;
    n_users = 400;
    n_sessions = 5;
    session_rate_mbps = 1.;
    budget = 0.9;
    rate_table = Rate_table.default;
    rate_model = None;
    ensure_coverage = true;
    max_resample = 10_000;
    placement = Uniform;
    popularity = Uniform_pop;
  }

(** The paper's small-scale optimality setup (Fig. 12): 600 m side area,
    30 APs, budget 0.042 for the MNU comparison. *)
let paper_small =
  {
    paper_default with
    area_w = 600.;
    area_h = 600.;
    n_aps = 30;
    n_users = 50;
    budget = 0.9;
  }

(* standard Box–Muller normal deviate *)
let gaussian ~rng ~sigma =
  let u1 = Float.max 1e-12 (Random.State.float rng 1.) in
  let u2 = Random.State.float rng 1. in
  sigma *. sqrt (-2. *. log u1) *. cos (2. *. Float.pi *. u2)

let clamp lo hi v = Float.max lo (Float.min hi v)

(* Zipf sampler over [0, n): weight of rank k (1-based) is 1/k^alpha *)
let zipf_sampler ~alpha ~n =
  let weights =
    Array.init n (fun i -> 1. /. (float_of_int (i + 1) ** alpha))
  in
  let total = Array.fold_left ( +. ) 0. weights in
  let cumulative = Array.make n 0. in
  let acc = ref 0. in
  Array.iteri
    (fun i w ->
      acc := !acc +. w;
      cumulative.(i) <- !acc /. total)
    weights;
  fun rng ->
    let x = Random.State.float rng 1. in
    let rec find i = if i >= n - 1 || cumulative.(i) >= x then i else find (i + 1) in
    find 0

let generate ~rng (cfg : config) =
  let ap_pos =
    Array.init cfg.n_aps (fun _ ->
        Point.random ~rng ~w:cfg.area_w ~h:cfg.area_h)
  in
  let model =
    match cfg.rate_model with
    | Some m -> m
    | None -> Rate_model.Table cfg.rate_table
  in
  (* the exact predicate the compile applies — coverage resampling must
     agree with the compiled problem's candidate sets *)
  let covered u p =
    let n = Array.length ap_pos in
    let rec probe a =
      a < n
      && (match
            Rate_model.link model ~ap:a ~user:u ~dist:(Point.dist ap_pos.(a) p)
          with
         | Some _ -> true
         | None -> probe (a + 1))
    in
    probe 0
  in
  let raw_user_point =
    match cfg.placement with
    | Uniform -> fun () -> Point.random ~rng ~w:cfg.area_w ~h:cfg.area_h
    | Clustered { hotspots; sigma_m } ->
        let hotspots = Int.max 1 hotspots in
        let centers =
          Array.init hotspots (fun _ ->
              Point.random ~rng ~w:cfg.area_w ~h:cfg.area_h)
        in
        fun () ->
          let c = centers.(Random.State.int rng hotspots) in
          Point.v
            (clamp 0. cfg.area_w (c.Point.x +. gaussian ~rng ~sigma:sigma_m))
            (clamp 0. cfg.area_h (c.Point.y +. gaussian ~rng ~sigma:sigma_m))
  in
  let user_point u =
    let p = ref (raw_user_point ()) in
    if cfg.ensure_coverage && cfg.n_aps > 0 then begin
      let attempts = ref 0 in
      while (not (covered u !p)) && !attempts < cfg.max_resample do
        p := raw_user_point ();
        incr attempts
      done
    end;
    !p
  in
  let user_pos = Array.init cfg.n_users user_point in
  let pick_session =
    match cfg.popularity with
    | Uniform_pop -> fun rng -> Random.State.int rng cfg.n_sessions
    | Zipf alpha -> zipf_sampler ~alpha ~n:cfg.n_sessions
  in
  let user_session = Array.init cfg.n_users (fun _ -> pick_session rng) in
  let sessions =
    Session.uniform ~n:cfg.n_sessions ~rate_mbps:cfg.session_rate_mbps
  in
  Scenario.make ~area_w:cfg.area_w ~area_h:cfg.area_h ~ap_pos ~user_pos
    ~user_session ~sessions ~rate_table:cfg.rate_table ?model:cfg.rate_model
    ~budget:cfg.budget ()

(* Per-scenario seed splitting: scenario [index] of a batch draws from its
   own RNG keyed by (seed, SPLIT_TAG, index), so any scenario can be
   generated without generating the ones before it — the property the
   harness relies on to fan scenarios out across domains while keeping
   every figure bit-identical at any [--jobs] value. The tag keeps the
   split streams disjoint from ad-hoc [Random.State.make [| seed |]]
   states used elsewhere. *)
let split_tag = 0x5ce7a510

let scenario_rng ~seed index = Random.State.make [| seed; split_tag; index |]

let nth_problem ~seed ~index cfg =
  Scenario.to_problem (generate ~rng:(scenario_rng ~seed index) cfg)

(** [problems ~seed ~n cfg] generates [n] independent problem instances from
    one master seed — the paper reports min/avg/max over 40 such scenarios.
    Instance [i] depends only on [(seed, i)], never on the other instances. *)
let problems ~seed ~n cfg =
  List.init n (fun i -> nth_problem ~seed ~index:i cfg)

(** {1 City-scale scenarios}

    A city is a grid of paper-style districts (campuses, malls, venues)
    separated by streets wider than the radio's interaction reach. The
    resulting instances are what the sparse representation and the
    geometric sharding exist for: thousands of APs, tens of thousands of
    users, candidate lists a handful long — and, when [gap_m] exceeds
    twice the rate table's range, a [Mcast_core.Shard] plan with one
    component per occupied district. *)

type city_config = {
  districts_x : int;
  districts_y : int;
  district : config;  (** per-district generation config *)
  gap_m : float;
      (** street width between districts; keep [> 2 ×] the rate table's
          range for district-independent sharding *)
}

(** 2000 APs × 40000 users: 5 × 4 districts of 100 APs and 2000 users
    each (paper AP density, 5 × the paper's user crowding), 450 m
    streets (interaction reach of 802.11a is 2 × 200 m). *)
let city_default =
  {
    districts_x = 5;
    districts_y = 4;
    district =
      {
        paper_default with
        area_w = 775.;
        area_h = 775.;
        n_aps = 100;
        n_users = 2000;
      };
    gap_m = 450.;
  }

(* Split tag for per-district streams, disjoint from [scenario_rng]. *)
let city_split_tag = 0x5ced1517

(** [city ~seed cfg] builds the city scenario deterministically: district
    [i] (row-major) draws from its own split stream keyed by
    [(seed, i)], then every position is offset to the district's corner
    — so the layout is a pure function of [(seed, cfg)] and any district
    could be regenerated independently. APs and users are indexed in
    district order (districts are index-contiguous). *)
let city ~seed (cfg : city_config) =
  let d = cfg.district in
  let nd = cfg.districts_x * cfg.districts_y in
  let area_w =
    (float_of_int cfg.districts_x *. d.area_w)
    +. (float_of_int (cfg.districts_x - 1) *. cfg.gap_m)
  and area_h =
    (float_of_int cfg.districts_y *. d.area_h)
    +. (float_of_int (cfg.districts_y - 1) *. cfg.gap_m)
  in
  let districts =
    List.init nd (fun i ->
        let rng = Random.State.make [| seed; city_split_tag; i |] in
        let sc = generate ~rng d in
        let ox =
          float_of_int (i mod cfg.districts_x) *. (d.area_w +. cfg.gap_m)
        and oy =
          float_of_int (i / cfg.districts_x) *. (d.area_h +. cfg.gap_m)
        in
        let shift (p : Point.t) = Point.v (p.Point.x +. ox) (p.Point.y +. oy) in
        ( Array.map shift sc.Scenario.ap_pos,
          Array.map shift sc.Scenario.user_pos,
          sc.Scenario.user_session ))
  in
  let ap_pos = Array.concat (List.map (fun (a, _, _) -> a) districts) in
  let user_pos = Array.concat (List.map (fun (_, u, _) -> u) districts) in
  let user_session = Array.concat (List.map (fun (_, _, s) -> s) districts) in
  Scenario.make ~area_w ~area_h ~ap_pos ~user_pos ~user_session
    ~sessions:(Session.uniform ~n:d.n_sessions ~rate_mbps:d.session_rate_mbps)
    ~rate_table:d.rate_table ?model:d.rate_model ~budget:d.budget ()
