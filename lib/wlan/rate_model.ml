(** Pluggable PHY link-rate models — see the interface for the contract.

    Design notes:

    - [Table] reproduces the historical compile path {e bit for bit}:
      the same [Rate_table.rate_at_distance] call on the same distance,
      the same [-. dist] signal. The golden digests pin this.
    - [Path_loss] computes received power = tx + gains − PL(d) −
      shadowing, SNR = rx − noise, then walks the SNR ladder. The
      explicit [dist > max_range] guard in {!link} (not just the SNR
      test) is what makes dense ≡ sparse compilation trivially exact:
      the sparse bucket grid probes a superset of the [max_range] disc
      and both compiles apply this one predicate.
    - Shadowing is a pure function of [(seed, ap, user)] via the
      split-RNG discipline, clamped to ±3σ so [max_range] can include
      the +3σ margin and stay a true upper bound. *)

type antenna = Isotropic | Parabolic of { gain_dbi : float }
type snr_tier = { rate_mbps : float; min_snr_db : float }

type radio = {
  tx_power_dbm : float;
  freq_ghz : float;
  noise_dbm : float;
  tx_antenna : antenna;
  rx_antenna : antenna;
  snr_tiers : snr_tier list;
}

type shadowing = { sigma_db : float; seed : int }

type path_loss =
  | Friis
  | Two_ray of { ap_height_m : float; user_height_m : float }
  | Log_distance of { exponent : float; shadowing : shadowing option }

type t =
  | Table of Rate_table.t
  | Path_loss of { loss : path_loss; radio : radio }

(* Typical 802.11a receiver-sensitivity deltas mapped to SNR-over-noise
   thresholds: each OFDM rate needs roughly these dB over the noise
   floor to decode. *)
let ieee80211a_snr_tiers =
  [
    { rate_mbps = 54.; min_snr_db = 25.5 };
    { rate_mbps = 48.; min_snr_db = 23.5 };
    { rate_mbps = 36.; min_snr_db = 19.5 };
    { rate_mbps = 24.; min_snr_db = 15. };
    { rate_mbps = 18.; min_snr_db = 12. };
    { rate_mbps = 12.; min_snr_db = 9.5 };
    { rate_mbps = 6.; min_snr_db = 6. };
  ]

let default_radio =
  {
    tx_power_dbm = 16.;
    freq_ghz = 5.8;
    noise_dbm = -85.;
    tx_antenna = Isotropic;
    rx_antenna = Isotropic;
    snr_tiers = ieee80211a_snr_tiers;
  }

let default = Table Rate_table.default

let friis ?(radio = default_radio) () = Path_loss { loss = Friis; radio }

let two_ray ?(radio = default_radio) ?(ap_height_m = 10.) ?(user_height_m = 1.5)
    () =
  Path_loss { loss = Two_ray { ap_height_m; user_height_m }; radio }

let log_distance ?(radio = default_radio) ?(exponent = 2.2) ?shadowing () =
  Path_loss { loss = Log_distance { exponent; shadowing }; radio }

let antenna_gain_dbi = function
  | Isotropic -> 0.
  | Parabolic { gain_dbi } -> gain_dbi

let validate t =
  let check cond fmt =
    Printf.ksprintf (fun msg -> if not cond then invalid_arg msg) fmt
  in
  let fin v = Float.is_finite v in
  (match t with
  | Table tbl ->
      check (Rate_table.invariant tbl) "Rate_model.validate: bad rate table"
  | Path_loss { loss; radio } ->
      check (fin radio.tx_power_dbm) "Rate_model.validate: tx power not finite";
      check
        (fin radio.freq_ghz && radio.freq_ghz > 0.)
        "Rate_model.validate: frequency must be finite and positive";
      check (fin radio.noise_dbm) "Rate_model.validate: noise floor not finite";
      List.iter
        (fun a ->
          let g = antenna_gain_dbi a in
          check (fin g && g >= 0.)
            "Rate_model.validate: antenna gain must be finite and >= 0")
        [ radio.tx_antenna; radio.rx_antenna ];
      check (radio.snr_tiers <> []) "Rate_model.validate: empty SNR ladder";
      List.iter
        (fun { rate_mbps; min_snr_db } ->
          check
            (fin rate_mbps && rate_mbps > 0.)
            "Rate_model.validate: tier rate must be finite and positive";
          check (fin min_snr_db) "Rate_model.validate: tier SNR not finite")
        radio.snr_tiers;
      List.iter2
        (fun a b ->
          check
            (b.rate_mbps < a.rate_mbps)
            "Rate_model.validate: tier rates must be strictly decreasing";
          check
            (b.min_snr_db < a.min_snr_db)
            "Rate_model.validate: tier SNR thresholds must be strictly \
             decreasing")
        (List.filteri (fun i _ -> i < List.length radio.snr_tiers - 1)
           radio.snr_tiers)
        (List.tl radio.snr_tiers);
      (match loss with
      | Friis -> ()
      | Two_ray { ap_height_m; user_height_m } ->
          check
            (fin ap_height_m && ap_height_m > 0.)
            "Rate_model.validate: AP height must be finite and positive";
          check
            (fin user_height_m && user_height_m > 0.)
            "Rate_model.validate: user height must be finite and positive"
      | Log_distance { exponent; shadowing } -> (
          check
            (fin exponent && exponent > 0.)
            "Rate_model.validate: path-loss exponent must be finite and \
             positive";
          match shadowing with
          | None -> ()
          | Some { sigma_db; seed = _ } ->
              check
                (fin sigma_db && sigma_db >= 0.)
                "Rate_model.validate: shadowing sigma must be finite and >= 0")));
  t

let equal (a : t) (b : t) = Stdlib.( = ) a b

(* ------------------------------------------------------------------ *)
(* Propagation                                                         *)
(* ------------------------------------------------------------------ *)

let light_speed_m_s = 299_792_458.
let wavelength_m radio = light_speed_m_s /. (radio.freq_ghz *. 1e9)

(* Free-space path loss; the 1 m clamp keeps the near field (and d = 0
   self-links) finite. *)
let friis_db radio d =
  let d = Float.max 1. d in
  20. *. Float.log10 (4. *. Float.pi *. d /. wavelength_m radio)

let two_ray_crossover_m radio ~ap_height_m ~user_height_m =
  4. *. Float.pi *. ap_height_m *. user_height_m /. wavelength_m radio

let path_loss_db radio loss dist =
  match loss with
  | Friis -> friis_db radio dist
  | Two_ray { ap_height_m; user_height_m } ->
      let d = Float.max 1. dist in
      let dc = two_ray_crossover_m radio ~ap_height_m ~user_height_m in
      (* continuous at [dc]: both branches equal 20·log₁₀(4π·dc/λ) there *)
      if d <= dc then friis_db radio d
      else
        (40. *. Float.log10 d)
        -. (20. *. Float.log10 (ap_height_m *. user_height_m))
  | Log_distance { exponent; shadowing = _ } ->
      let d = Float.max 1. dist in
      friis_db radio 1. +. (10. *. exponent *. Float.log10 d)

(* Split tag for per-link shadowing streams, disjoint from the scenario
   (0x5ce7a510), city (0x5ced1517) and churn (0x0c817a4) tags. *)
let shadow_split_tag = 0x5fade01

let shadow_db { sigma_db; seed } ~ap ~user =
  if sigma_db <= 0. then 0.
  else
    let rng = Random.State.make [| seed; shadow_split_tag; ap; user |] in
    (* standard Box–Muller deviate, as in Scenario_gen *)
    let u1 = Float.max 1e-12 (Random.State.float rng 1.) in
    let u2 = Random.State.float rng 1. in
    let g = sigma_db *. sqrt (-2. *. log u1) *. cos (2. *. Float.pi *. u2) in
    Float.max (-3. *. sigma_db) (Float.min (3. *. sigma_db) g)

let gains_dbi radio =
  antenna_gain_dbi radio.tx_antenna +. antenna_gain_dbi radio.rx_antenna

let rx_power_dbm ~loss ~radio ~ap ~user ~dist =
  let shadow =
    match loss with
    | Log_distance { shadowing = Some s; _ } -> shadow_db s ~ap ~user
    | Friis | Two_ray _ | Log_distance { shadowing = None; _ } -> 0.
  in
  radio.tx_power_dbm +. gains_dbi radio
  -. path_loss_db radio loss dist
  -. shadow

(* ------------------------------------------------------------------ *)
(* The model contract                                                  *)
(* ------------------------------------------------------------------ *)

let min_tier_snr_db radio =
  List.fold_left (fun acc t -> Float.min acc t.min_snr_db) infinity
    radio.snr_tiers

(* Largest tolerable path loss for the lowest tier, including the +3σ
   shadowing margin (a −3σ draw boosts the link). *)
let loss_budget_db loss radio =
  let margin =
    match loss with
    | Log_distance { shadowing = Some { sigma_db; _ }; _ } -> 3. *. sigma_db
    | Friis | Two_ray _ | Log_distance { shadowing = None; _ } -> 0.
  in
  radio.tx_power_dbm +. gains_dbi radio -. radio.noise_dbm
  -. min_tier_snr_db radio +. margin

let max_range = function
  | Table tbl -> Rate_table.range tbl
  | Path_loss { loss; radio } ->
      let budget = loss_budget_db loss radio in
      let friis_inv l = wavelength_m radio /. (4. *. Float.pi) *. (10. ** (l /. 20.)) in
      let d =
        match loss with
        | Friis -> friis_inv budget
        | Two_ray { ap_height_m; user_height_m } ->
            let df = friis_inv budget in
            let dc = two_ray_crossover_m radio ~ap_height_m ~user_height_m in
            if df <= dc then df
            else
              10.
              ** ((budget +. (20. *. Float.log10 (ap_height_m *. user_height_m)))
                  /. 40.)
        | Log_distance { exponent; shadowing = _ } ->
            10. ** ((budget -. friis_db radio 1.) /. (10. *. exponent))
      in
      (* the near-field clamp makes every loss constant below 1 m *)
      Float.max 1. d

let tier_rates = function
  | Table tbl -> Rate_table.rates tbl
  | Path_loss { radio; _ } -> List.map (fun t -> t.rate_mbps) radio.snr_tiers

let link t ~ap ~user ~dist =
  match t with
  | Table tbl -> (
      match Rate_table.rate_at_distance tbl dist with
      | Some r -> Some (r, -.dist)
      | None -> None)
  | Path_loss { loss; radio } ->
      if dist > max_range t then None
      else
        let rx = rx_power_dbm ~loss ~radio ~ap ~user ~dist in
        let snr = rx -. radio.noise_dbm in
        let rec pick = function
          | [] -> None
          | { rate_mbps; min_snr_db } :: rest ->
              if snr >= min_snr_db then Some (rate_mbps, rx) else pick rest
        in
        pick radio.snr_tiers

let dead_signal t ~dist =
  match t with Table _ -> -.dist | Path_loss _ -> neg_infinity

let name = function
  | Table _ -> "table"
  | Path_loss { loss = Friis; _ } -> "friis"
  | Path_loss { loss = Two_ray _; _ } -> "two-ray"
  | Path_loss { loss = Log_distance _; _ } -> "log-distance"

let pp ppf t =
  match t with
  | Table tbl -> Fmt.pf ppf "@[table %a@]" Rate_table.pp tbl
  | Path_loss { loss; radio } -> (
      (match loss with
      | Friis -> Fmt.pf ppf "friis"
      | Two_ray { ap_height_m; user_height_m } ->
          Fmt.pf ppf "two-ray ht=%g hr=%g" ap_height_m user_height_m
      | Log_distance { exponent; shadowing } -> (
          Fmt.pf ppf "log-distance n=%g" exponent;
          match shadowing with
          | Some { sigma_db; seed } ->
              Fmt.pf ppf " shadow sigma=%g seed=%d" sigma_db seed
          | None -> ()));
      Fmt.pf ppf " (tx %g dBm, %g GHz, noise %g dBm, %d tiers, range %g m)"
        radio.tx_power_dbm radio.freq_ghz radio.noise_dbm
        (List.length radio.snr_tiers)
        (max_range t))
