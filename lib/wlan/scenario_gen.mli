(** Seeded random scenario generation matching the paper's setup (§7),
    with two workload generalizations for the extension studies:
    clustered user placement and Zipf-skewed session popularity (both
    default to the paper's uniform behaviour). *)

(** How users are placed in the deployment area. *)
type placement =
  | Uniform
  | Clustered of { hotspots : int; sigma_m : float }
      (** users pick one of [hotspots] uniformly-placed centers and land a
          Gaussian [sigma_m]-meter offset away (clamped to the area) *)

(** How users pick their multicast session. *)
type popularity =
  | Uniform_pop
  | Zipf of float  (** rank [k] (1-based) drawn with weight [1 / k^alpha] *)

type config = {
  area_w : float;
  area_h : float;
  n_aps : int;
  n_users : int;
  n_sessions : int;
  session_rate_mbps : float;
  budget : float;
  rate_table : Rate_table.t;
  rate_model : Rate_model.t option;
      (** link-rate model; [None] means [Rate_model.Table rate_table]
          (the paper's Table 1 compile path) *)
  ensure_coverage : bool;
      (** resample user positions until every user has an AP in range,
          by the model's link predicate *)
  max_resample : int;
  placement : placement;
  popularity : popularity;
}

(** The paper's large-scale setup: 1.2 km² area, 200 APs, 400 users,
    5 sessions at 1 Mbps, budget 0.9, uniform everything. *)
val paper_default : config

(** The paper's small-scale optimality setup (Fig. 12): 600 m side,
    30 APs. *)
val paper_small : config

(** One random scenario drawn from [rng]. *)
val generate : rng:Random.State.t -> config -> Scenario.t

(** RNG for scenario [index] of the batch keyed by [seed]: a deterministic
    split, so scenario [i] can be generated without (and concurrently
    with) the scenarios before it. *)
val scenario_rng : seed:int -> int -> Random.State.t

(** [nth_problem ~seed ~index cfg] is [List.nth (problems ~seed ~n cfg) index]
    for any [n > index], computed directly from {!scenario_rng}. *)
val nth_problem : seed:int -> index:int -> config -> Problem.t

(** [problems ~seed ~n cfg]: [n] independent problem instances from one
    master seed (the paper averages over 40 such scenarios). Instance [i]
    depends only on [(seed, i)] — see {!scenario_rng}. *)
val problems : seed:int -> n:int -> config -> Problem.t list

(** {1 City-scale scenarios} — a grid of paper-style districts separated
    by streets; the workload the sparse representation and geometric
    sharding exist for. *)

type city_config = {
  districts_x : int;
  districts_y : int;
  district : config;  (** per-district generation config *)
  gap_m : float;
      (** street width between districts; keep [> 2 ×] the rate table's
          range for district-independent sharding *)
}

(** 2000 APs × 40000 users: 5 × 4 districts of 100 APs / 2000 users
    (paper AP density), 450 m streets (> 2 × the 200 m 802.11a range). *)
val city_default : city_config

(** Deterministic city generation: district [i] (row-major) draws from
    its own split stream keyed by [(seed, i)], positions offset to the
    district's corner. APs and users are indexed in district order.
    Compile with [Scenario.to_problem_sparse] — the dense matrix of a
    city does not fit. *)
val city : seed:int -> city_config -> Scenario.t
