(** Seeded random scenario generation matching the paper's setup (§7),
    with two workload generalizations for the extension studies:
    clustered user placement and Zipf-skewed session popularity (both
    default to the paper's uniform behaviour). *)

(** How users are placed in the deployment area. *)
type placement =
  | Uniform
  | Clustered of { hotspots : int; sigma_m : float }
      (** users pick one of [hotspots] uniformly-placed centers and land a
          Gaussian [sigma_m]-meter offset away (clamped to the area) *)

(** How users pick their multicast session. *)
type popularity =
  | Uniform_pop
  | Zipf of float  (** rank [k] (1-based) drawn with weight [1 / k^alpha] *)

type config = {
  area_w : float;
  area_h : float;
  n_aps : int;
  n_users : int;
  n_sessions : int;
  session_rate_mbps : float;
  budget : float;
  rate_table : Rate_table.t;
  ensure_coverage : bool;
      (** resample user positions until every user has an AP in range *)
  max_resample : int;
  placement : placement;
  popularity : popularity;
}

(** The paper's large-scale setup: 1.2 km² area, 200 APs, 400 users,
    5 sessions at 1 Mbps, budget 0.9, uniform everything. *)
val paper_default : config

(** The paper's small-scale optimality setup (Fig. 12): 600 m side,
    30 APs. *)
val paper_small : config

(** One random scenario drawn from [rng]. *)
val generate : rng:Random.State.t -> config -> Scenario.t

(** RNG for scenario [index] of the batch keyed by [seed]: a deterministic
    split, so scenario [i] can be generated without (and concurrently
    with) the scenarios before it. *)
val scenario_rng : seed:int -> int -> Random.State.t

(** [nth_problem ~seed ~index cfg] is [List.nth (problems ~seed ~n cfg) index]
    for any [n > index], computed directly from {!scenario_rng}. *)
val nth_problem : seed:int -> index:int -> config -> Problem.t

(** [problems ~seed ~n cfg]: [n] independent problem instances from one
    master seed (the paper averages over 40 such scenarios). Instance [i]
    depends only on [(seed, i)] — see {!scenario_rng}. *)
val problems : seed:int -> n:int -> config -> Problem.t list
