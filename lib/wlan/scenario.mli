(** Geometric WLAN deployments: AP/user positions, per-user session
    choice, stream rates, the rate-adaptation table and the per-AP
    multicast budget. {!to_problem} compiles a scenario into the abstract
    {!Problem} instance the algorithms consume. *)

type t = {
  area_w : float;  (** deployment area width (m) *)
  area_h : float;  (** deployment area height (m) *)
  ap_pos : Point.t array;
  user_pos : Point.t array;
  user_session : int array;
  sessions : Session.t array;
  rate_table : Rate_table.t;
  budget : float;
}

val n_aps : t -> int
val n_users : t -> int

(** @raise Invalid_argument on user/session arity or index errors. *)
val make :
  area_w:float ->
  area_h:float ->
  ap_pos:Point.t array ->
  user_pos:Point.t array ->
  user_session:int array ->
  sessions:Session.t array ->
  ?rate_table:Rate_table.t ->
  budget:float ->
  unit ->
  t

(** AP-major distance matrix (meters). *)
val distances : t -> float array array

(** Compile into a dense abstract problem by rate adaptation; installs
    [-. distance] as the signal metric (nearest AP = strongest). The
    instance allows uncovered users (random placement can strand one);
    {!uncovered_users} reports them. Allocates the O(APs × users)
    matrix — use {!to_problem_sparse} beyond paper scale. *)
val to_problem : t -> Problem.t

(** Compile into a sparse problem via a spatial bucket grid over the AP
    positions, never allocating the dense matrix. Applies the exact
    same rate-adaptation predicate as {!to_problem}, so both
    compilations agree bit for bit on every link rate and signal value
    (the differential battery in [test/test_sparse.ml] pins this).
    O(APs + users · candidates). *)
val to_problem_sparse : t -> Problem.t

(** Users with no AP within radio range. *)
val uncovered_users : t -> int list

val fully_covered : t -> bool
val pp : Format.formatter -> t -> unit
