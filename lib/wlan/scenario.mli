(** Geometric WLAN deployments: AP/user positions, per-user session
    choice, stream rates, the link-rate model and the per-AP multicast
    budget. {!to_problem} compiles a scenario into the abstract
    {!Problem} instance the algorithms consume. *)

type t = {
  area_w : float;  (** deployment area width (m) *)
  area_h : float;  (** deployment area height (m) *)
  ap_pos : Point.t array;
  user_pos : Point.t array;
  user_session : int array;
  sessions : Session.t array;
  rate_table : Rate_table.t;
      (** the Table 1 ladder; for a {!Rate_model.Table} model this IS
          the model's table ([make] keeps them coherent) *)
  model : Rate_model.t;
  budget : float;
}

val n_aps : t -> int
val n_users : t -> int

(** [model] defaults to [Rate_model.Table rate_table] — the paper's
    compile path. Passing [~model:(Table tbl)] overrides [rate_table]
    with [tbl] so the two fields never diverge; a [Path_loss] model
    leaves [rate_table] as given (the simulator's MAC timing still
    consumes it).
    @raise Invalid_argument on user/session arity or index errors, or an
    ill-formed model. *)
val make :
  area_w:float ->
  area_h:float ->
  ap_pos:Point.t array ->
  user_pos:Point.t array ->
  user_session:int array ->
  sessions:Session.t array ->
  ?rate_table:Rate_table.t ->
  ?model:Rate_model.t ->
  budget:float ->
  unit ->
  t

(** The model's radio range ({!Rate_model.max_range}): the radius beyond
    which no link exists. *)
val range : t -> float

(** AP-major distance matrix (meters). *)
val distances : t -> float array array

(** Compile into a dense abstract problem through the model's
    {!Rate_model.link} predicate; for the default [Table] model this
    installs [-. distance] as the signal metric (nearest AP =
    strongest), for [Path_loss] models the received power in dBm. The
    instance allows uncovered users (random placement can strand one);
    {!uncovered_users} reports them. Allocates the O(APs × users)
    matrix — use {!to_problem_sparse} beyond paper scale. *)
val to_problem : t -> Problem.t

(** Compile into a sparse problem via a spatial bucket grid over the AP
    positions (cell = the model's [max_range]), never allocating the
    dense matrix. Applies the exact same link predicate as
    {!to_problem}, so both compilations agree bit for bit on every link
    rate and signal value (the differential battery in
    [test/test_sparse.ml] pins this for every model family).
    O(APs + users · candidates). *)
val to_problem_sparse : t -> Problem.t

(** Users no AP can serve, by the same link predicate the compile
    uses — so this agrees exactly with the compiled problem's empty
    candidate sets. *)
val uncovered_users : t -> int list

val fully_covered : t -> bool
val pp : Format.formatter -> t -> unit
