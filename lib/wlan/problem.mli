(** An abstract association-control problem instance — the canonical input
    to every algorithm in [Mcast_core].

    Conventions:
    - APs and users are dense integer indices;
    - [rates.(a).(u)] is the maximum link rate (Mbps) from AP [a] to user
      [u], with [0.] meaning out of range;
    - [signal.(a).(u)] ranks signal strength for the SSA baseline (higher
      is stronger; geometric scenarios install [-. distance]);
    - [budget] is the per-AP multicast airtime limit in [0, 1].

    The record is exposed read-only by convention: build instances with
    {!make} (which validates), never mutate the arrays. *)

type t = {
  n_aps : int;
  n_users : int;
  session_rates : float array;  (** session index -> stream rate (Mbps) *)
  user_session : int array;  (** user index -> session index *)
  rates : float array array;
  signal : float array array;
  budget : float;  (** uniform per-AP multicast airtime limit in [0, 1] *)
  ap_budgets : float array option;
      (** optional heterogeneous per-AP budgets overriding [budget] *)
}

val dims : t -> int * int
val n_sessions : t -> int
val session_rate : t -> int -> float
val user_session : t -> int -> int
val link_rate : t -> ap:int -> user:int -> float
val in_range : t -> ap:int -> user:int -> bool
val budget : t -> float

(** The budget of one AP: its [ap_budgets] entry when heterogeneous
    budgets are installed, [budget] otherwise. *)
val ap_budget : t -> int -> float

(** Structural validation; @raise Invalid_argument on malformed
    instances. Returns its argument. *)
val validate : t -> t

(** Build and validate an instance. [signal] defaults to the rate matrix
    (highest rate = strongest signal). *)
val make :
  ?signal:float array array ->
  ?ap_budgets:float array ->
  session_rates:float array ->
  user_session:int array ->
  rates:float array array ->
  budget:float ->
  unit ->
  t

(** APs within range of a user, in ascending index order. *)
val neighbor_aps : t -> int -> int list

(** APs within range, strongest signal first (ties by lower index). *)
val neighbors_by_signal : t -> int -> int list

(** The strongest-signal AP, or [None] if no AP covers the user. *)
val strongest_ap : t -> int -> int option

(** Users covered by at least one AP. *)
val coverable_users : t -> int list

(** Users of [session] reachable from [ap] at link rate at least
    [min_rate]. *)
val receivers : t -> ap:int -> session:int -> min_rate:float -> int list

(** The distinct positive link rates in the instance, highest first — the
    only transmission rates an algorithm ever needs to consider. *)
val distinct_rates : t -> float list

(** Replace every positive link rate by the lowest one — stock 802.11
    broadcast behaviour (multicast always at the basic rate, §3.1). *)
val restrict_to_basic_rate : t -> t

(** Uniform budget override; clears heterogeneous budgets. *)
val with_budget : t -> float -> t

(** Install heterogeneous per-AP budgets.
    @raise Invalid_argument on arity or negative entries. *)
val with_ap_budgets : t -> float array -> t
val pp : Format.formatter -> t -> unit
