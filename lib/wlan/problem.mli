(** An abstract association-control problem instance — the canonical input
    to every algorithm in [Mcast_core].

    The link structure has two interchangeable representations behind the
    {!view} accessor (every other accessor is representation-agnostic and
    answers bit-identically on both forms of the same instance):
    - {e dense}: (AP × user) [rates]/[signal] matrices, [0.] = out of
      range — the paper's 200×400 experiments;
    - {e sparse}: {!Sparse.t} range-limited candidate/member lists — the
      only form that scales to city-size (2000×40000+) instances, where
      the dense matrix is never allocated.

    Conventions:
    - APs and users are dense integer indices;
    - a link rate is the maximum data rate (Mbps) from AP to user, with
      [0.] / absent slot meaning out of range;
    - signal ranks strength for the SSA baseline (higher is stronger;
      geometric scenarios install [-. distance]);
    - [budget] is the per-AP multicast airtime limit in [0, 1].

    The record is exposed read-only by convention: build instances with
    {!make} / {!make_sparse} (which validate), never mutate the arrays
    (churn goes through {!copy_for_mutation} + {!set_link_rate}). *)

type repr =
  | Dense of { rates : float array array; signal : float array array }
  | Sparse of Sparse.t

type t = {
  n_aps : int;
  n_users : int;
  session_rates : float array;  (** session index -> stream rate (Mbps) *)
  user_session : int array;  (** user index -> session index *)
  repr : repr;  (** the link structure — access through {!view} *)
  budget : float;  (** uniform per-AP multicast airtime limit in [0, 1] *)
  ap_budgets : float array option;
      (** optional heterogeneous per-AP budgets overriding [budget] *)
  allow_uncovered : bool;
      (** accept users with an empty candidate list (geometric paths) *)
}

val dims : t -> int * int
val n_sessions : t -> int
val session_rate : t -> int -> float
val user_session : t -> int -> int

(** The link-structure representation. Algorithms that specialize per
    representation (e.g. [Mcast_core.Shard]) match on this; everything
    else should use the agnostic accessors below. *)
val view : t -> repr

val is_sparse : t -> bool
val link_rate : t -> ap:int -> user:int -> float

(** Signal metric of a pair (higher = stronger). Out-of-range pairs of a
    sparse instance answer [neg_infinity] (they can never win a signal
    comparison); dense instances answer whatever the matrix holds. *)
val signal : t -> ap:int -> user:int -> float

val in_range : t -> ap:int -> user:int -> bool
val budget : t -> float

(** The budget of one AP: its [ap_budgets] entry when heterogeneous
    budgets are installed, [budget] otherwise. *)
val ap_budget : t -> int -> float

(** [iter_candidates t u f] calls [f ap rate signal] for every AP in
    range of user [u], ascending AP order. O(candidates) on sparse. *)
val iter_candidates : t -> int -> (int -> float -> float -> unit) -> unit

(** [iter_members t a f] calls [f user rate] for every user in range of
    AP [a], ascending user order. O(members) on sparse. *)
val iter_members : t -> int -> (int -> float -> unit) -> unit

(** A fresh dense rate matrix equal to the link structure (always a
    copy). Allocates O(APs × users) — test/debug helper. *)
val rates_matrix : t -> float array array

(** A fresh dense signal matrix (a copy); out-of-range entries of a
    sparse instance are [neg_infinity]. O(APs × users). *)
val signal_matrix : t -> float array array

(** Structural validation; returns its argument. Rejects — beyond
    arity/finiteness errors — any user with an empty candidate list
    unless the instance allows uncovered users.
    @raise Invalid_argument on malformed instances. *)
val validate : t -> t

(** Build and validate a dense instance. [signal] defaults to the rate
    matrix (highest rate = strongest signal). [allow_uncovered] defaults
    to [false]: a user no AP can reach is rejected. *)
val make :
  ?signal:float array array ->
  ?ap_budgets:float array ->
  ?allow_uncovered:bool ->
  session_rates:float array ->
  user_session:int array ->
  rates:float array array ->
  budget:float ->
  unit ->
  t

(** Build and validate a sparse instance around an existing link
    structure (see {!Sparse.make} and [Scenario.to_problem_sparse]). *)
val make_sparse :
  ?ap_budgets:float array ->
  ?allow_uncovered:bool ->
  session_rates:float array ->
  user_session:int array ->
  sparse:Sparse.t ->
  budget:float ->
  unit ->
  t

(** The same instance in sparse form (identity if already sparse);
    keeps exactly the positive-rate links. *)
val to_sparse : t -> t

(** The same instance in dense form (identity if already dense).
    Allocates the O(APs × users) matrices — test/debug helper. *)
val to_dense : t -> t

(** A copy whose link rates may be mutated through {!set_link_rate}
    without affecting the original (signal and structure are shared). *)
val copy_for_mutation : t -> t

(** In-place link rate update, the churn primitive. Dense: any entry.
    Sparse: the pair must have been in range at build time (absent +
    [0.] is a no-op).
    @raise Invalid_argument when growing an absent sparse link. *)
val set_link_rate : t -> ap:int -> user:int -> float -> unit

(** A copy with dead APs' and absent users' links zeroed — the effective
    instance mid-churn. Not validated (masking legitimately strands
    users). *)
val masked : t -> ap_alive:bool array -> user_present:bool array -> t

(** APs within range of a user, in ascending index order. *)
val neighbor_aps : t -> int -> int list

(** APs within range, strongest signal first (ties by lower index). *)
val neighbors_by_signal : t -> int -> int list

(** The strongest-signal AP, or [None] if no AP covers the user. *)
val strongest_ap : t -> int -> int option

(** Users covered by at least one AP. *)
val coverable_users : t -> int list

(** Users of [session] reachable from [ap] at link rate at least
    [min_rate] (which must be positive), ascending. *)
val receivers : t -> ap:int -> session:int -> min_rate:float -> int list

(** The distinct positive link rates in the instance, highest first — the
    only transmission rates an algorithm ever needs to consider. *)
val distinct_rates : t -> float list

(** Replace every positive link rate by the lowest one — stock 802.11
    broadcast behaviour (multicast always at the basic rate, §3.1). *)
val restrict_to_basic_rate : t -> t

(** Uniform budget override; clears heterogeneous budgets. *)
val with_budget : t -> float -> t

(** Install heterogeneous per-AP budgets.
    @raise Invalid_argument on arity or negative entries. *)
val with_ap_budgets : t -> float array -> t
val pp : Format.formatter -> t -> unit
