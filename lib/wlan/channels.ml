(** Radio channel planning and co-channel interference accounting.

    The paper assumes "the radio channels of the neighboring APs are
    configured such that they do not interfere" (§3.1, citing 802.11a's 12
    non-overlapping channels) and notes that BLA/MLA implicitly reduce the
    interference that remains. This module supplies both halves of that
    story:

    - a conflict graph between APs (within carrier-sense range of each
      other) and a DSATUR greedy coloring onto the available channels, so
      scenarios can be checked against the paper's assumption; and
    - co-channel interference metrics: when the deployment is too dense to
      color perfectly, an AP's multicast airtime leaks onto its same-channel
      conflict neighbors, and the metric charges each AP the multicast load
      of its co-channel conflicting peers. *)

(** 802.11a in US/Canada: 12 non-overlapping channels (§3.1). *)
let default_n_channels = 12

(** APs within [range] meters of each other contend/interfere when
    co-channel. Carrier sense typically reaches farther than data decoding;
    a common engineering rule is twice the data range. *)
let conflict_edges ~range (ap_pos : Point.t array) =
  let n = Array.length ap_pos in
  let edges = ref [] in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if Point.within range ap_pos.(i) ap_pos.(j) then
        edges := (i, j) :: !edges
    done
  done;
  List.rev !edges

let adjacency ~n_aps edges =
  let adj = Array.make n_aps [] in
  List.iter
    (fun (i, j) ->
      adj.(i) <- j :: adj.(i);
      adj.(j) <- i :: adj.(j))
    edges;
  adj

type assignment = {
  channels : int array;  (** AP index -> channel in [0, n_channels) *)
  n_channels : int;
  conflict_edges : (int * int) list;
  residual_conflicts : int;
      (** same-channel conflict edges the coloring could not avoid *)
}

(** DSATUR greedy coloring: repeatedly color the uncolored vertex with the
    highest saturation (distinct neighbor colors), breaking ties by degree.
    When all [n_channels] colors clash, pick the color least used among the
    vertex's neighbors (graceful degradation instead of failure). *)
let color ?(n_channels = default_n_channels) ~n_aps edges =
  if n_channels <= 0 then invalid_arg "Channels.color: n_channels <= 0";
  let adj = adjacency ~n_aps edges in
  let channels = Array.make n_aps (-1) in
  let degree = Array.map List.length adj in
  let saturation v =
    let seen = Array.make n_channels false in
    List.iter (fun u -> if channels.(u) >= 0 then seen.(channels.(u)) <- true) adj.(v);
    Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 seen
  in
  for _ = 1 to n_aps do
    (* next vertex: uncolored, max saturation, then max degree *)
    let best = ref (-1) in
    for v = 0 to n_aps - 1 do
      if channels.(v) < 0 then
        match !best with
        | -1 -> best := v
        | b ->
            let sv = saturation v and sb = saturation b in
            if sv > sb || (sv = sb && degree.(v) > degree.(b)) then best := v
    done;
    let v = !best in
    if v >= 0 then begin
      let used = Array.make n_channels 0 in
      List.iter
        (fun u -> if channels.(u) >= 0 then used.(channels.(u)) <- used.(channels.(u)) + 1)
        adj.(v);
      (* first free color, else least used among neighbors *)
      let free = ref (-1) in
      for c = n_channels - 1 downto 0 do
        if used.(c) = 0 then free := c
      done;
      let c =
        if !free >= 0 then !free
        else begin
          let m = ref 0 in
          for c = 1 to n_channels - 1 do
            if used.(c) < used.(!m) then m := c
          done;
          !m
        end
      in
      channels.(v) <- c
    end
  done;
  let residual_conflicts =
    List.length
      (List.filter (fun (i, j) -> channels.(i) = channels.(j)) edges)
  in
  { channels; n_channels; conflict_edges = edges; residual_conflicts }

(** Whether the paper's no-interference assumption holds outright. *)
let interference_free t = t.residual_conflicts = 0

(** [co_channel_interference t ~loads] charges each AP the summed multicast
    load of the co-channel APs it conflicts with — the airtime its cell
    loses to neighbors it can hear. Returns the per-AP interference array. *)
let co_channel_interference t ~(loads : float array) =
  let n = Array.length loads in
  let interference = Array.make n 0. in
  List.iter
    (fun (i, j) ->
      if t.channels.(i) = t.channels.(j) then begin
        interference.(i) <- interference.(i) +. loads.(j);
        interference.(j) <- interference.(j) +. loads.(i)
      end)
    t.conflict_edges;
  interference

let total_interference t ~loads =
  Array.fold_left ( +. ) 0. (co_channel_interference t ~loads)

let max_interference t ~loads =
  Array.fold_left Float.max 0. (co_channel_interference t ~loads)

let pp ppf t =
  Fmt.pf ppf "channels: %d colors, %d conflict edges, %d residual co-channel"
    t.n_channels
    (List.length t.conflict_edges)
    t.residual_conflicts
