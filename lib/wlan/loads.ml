(** Multicast load accounting (Definition 1 of the paper).

    An AP that serves a set of users for session [s] transmits [s] at the
    lowest maximum link rate among those users, so that every receiver can
    decode. The airtime fraction this costs is
    [session_rate s /. tx_rate], the AP's {e multicast load} for [s]; an
    AP's load is the sum over the sessions it serves, and the network's
    total load is the sum over APs. *)

(** [tx_rates p assoc] gives, for each AP, the transmission rate it must use
    for each session: [tx.(a).(s)] is the minimum link rate among users of
    session [s] associated with [a], or [0.] when [a] does not serve [s]. *)
let tx_rates p (assoc : Association.t) =
  let n_aps, n_users = Problem.dims p in
  let tx = Array.make_matrix n_aps (Problem.n_sessions p) 0. in
  for u = 0 to n_users - 1 do
    let a = assoc.(u) in
    if a <> Association.none then begin
      let s = Problem.user_session p u in
      let r = Problem.link_rate p ~ap:a ~user:u in
      (* 0. is the exact "no member yet" sentinel written two lines up *)
      if (tx.(a).(s) = 0.) [@lint.allow float_eq] || r < tx.(a).(s) then
        tx.(a).(s) <- r
    end
  done;
  tx

(** Load of a single AP given its per-session transmission rates. *)
let load_of_tx p tx_row =
  let load = ref 0. in
  Array.iteri
    (fun s r -> if r > 0. then load := !load +. (Problem.session_rate p s /. r))
    tx_row;
  !load

(** [ap_loads p assoc] is the multicast load of every AP. *)
let ap_loads p assoc =
  Array.map (load_of_tx p) (tx_rates p assoc)

(** Load of one AP. Prefer {!ap_loads} when you need all of them. *)
let ap_load p assoc ~ap =
  let n_users = Problem.dims p |> snd in
  let n_s = Problem.n_sessions p in
  let tx = Array.make n_s 0. in
  for u = 0 to n_users - 1 do
    if assoc.(u) = ap then begin
      let s = Problem.user_session p u in
      let r = Problem.link_rate p ~ap ~user:u in
      if (tx.(s) = 0.) [@lint.allow float_eq] || r < tx.(s) then tx.(s) <- r
    end
  done;
  load_of_tx p tx

(** Total multicast load of the network: the sum of all AP loads. *)
let total_load p assoc =
  Array.fold_left ( +. ) 0. (ap_loads p assoc)

(** Maximum multicast load among all APs (the BLA objective). *)
let max_load p assoc =
  Array.fold_left Float.max 0. (ap_loads p assoc)

(** Sorted (non-increasing) load vector, the order used by the distributed
    BLA rule to compare candidate associations. *)
let sorted_load_vector loads =
  let v = Array.copy loads in
  Array.sort (fun a b -> Float.compare b a) v;
  v

(** Lexicographic comparison of two non-increasing load vectors (footnote 5
    of the paper): the vector whose first differing entry is smaller is the
    smaller vector. *)
let compare_load_vectors (a : float array) (b : float array) =
  let n = Int.min (Array.length a) (Array.length b) in
  let rec go i =
    if i = n then Int.compare (Array.length a) (Array.length b)
    else
      let c = Float.compare a.(i) b.(i) in
      if c <> 0 then c else go (i + 1)
  in
  go 0

(** Like {!compare_load_vectors} but a difference within [eps] at the
    {e first differing entry} makes the vectors compare equal — decision
    rules must use this so that float summation-order noise (different
    agents adding the same loads in different orders) can never flip a
    strict-improvement test.

    Exactly equal entries are skipped; the comparison is decided at the
    first entry where the vectors differ at all: by [eps]-equality if the
    difference is within [eps], by sign otherwise. The strict order this
    induces is transitive — [a < b] means a common exact prefix followed
    by a gap greater than [eps] — unlike the earlier variant that kept
    scanning past sub-[eps] differences, which made ≈ chains intransitive
    (a≈b, b≈c, a≉c) and let the distributed BLA rule judge a move an
    improvement in both directions. *)
let compare_load_vectors_eps ?(eps = 1e-9) (a : float array) (b : float array)
    =
  let n = Int.min (Array.length a) (Array.length b) in
  let rec go i =
    if i = n then Int.compare (Array.length a) (Array.length b)
    else
      let c = Float.compare a.(i) b.(i) in
      if c = 0 then go (i + 1)
      else if Float.abs (a.(i) -. b.(i)) <= eps then 0
      else c
  in
  go 0

(** {!compare_load_vectors_eps} over the length-[len] prefixes of [a] and
    [b]. The flat decision kernel keeps its hypothetical load vectors in
    reused scratch buffers whose capacity exceeds the neighborhood size,
    so the logical length is carried separately; comparing equal-length
    prefixes is exactly what {!compare_load_vectors_eps} computes on
    exact-length arrays. *)
let compare_load_prefixes_eps ?(eps = 1e-9) ~len (a : float array)
    (b : float array) =
  let rec go i =
    if i = len then 0
    else
      let c = Float.compare a.(i) b.(i) in
      if c = 0 then go (i + 1)
      else if Float.abs (a.(i) -. b.(i)) <= eps then 0
      else c
  in
  go 0

(** [respects_budget p assoc] checks every AP's load against the per-AP
    multicast budget, with a small tolerance for float accumulation. *)
let respects_budget ?(eps = 1e-9) p assoc =
  let loads = ap_loads p assoc in
  let ok = ref true in
  Array.iteri
    (fun a l -> if l > Problem.ap_budget p a +. eps then ok := false)
    loads;
  !ok

(** Marginal-change helpers used by the distributed algorithms. They answer
    "what would AP [ap]'s load be if user [user] joined / left", without
    mutating the association. *)

let load_if_joins p assoc ~user ~ap =
  let old = assoc.(user) in
  assoc.(user) <- ap;
  let l = ap_load p assoc ~ap in
  assoc.(user) <- old;
  l

let load_if_leaves p assoc ~user ~ap =
  let old = assoc.(user) in
  assoc.(user) <- Association.none;
  let l = ap_load p assoc ~ap in
  assoc.(user) <- old;
  l

let pp_loads ppf loads =
  Fmt.pf ppf "@[<h>%a@]"
    Fmt.(array ~sep:sp (fun ppf l -> pf ppf "%.4f" l))
    loads

(** Incremental load tracking. A [Tracker.t] mirrors an association and
    keeps, per (AP, session), the multiset of member link rates, so a
    join/leave updates one AP in O(log members + n_sessions) instead of
    rescanning every user, and [ap_load]/[max_load] are O(1) reads.

    Bit-exactness contract: every value a tracker returns is the exact
    float the eager functions above would compute for the same
    association. Min and max of a multiset are order-insensitive, so
    cached [tx] rates and the max-load read are trivially exact; sums are
    order-{e dependent}, so a cached AP load is always {e recomputed} by
    summing the per-session tx row in session index order (identical to
    {!load_of_tx}), and [total_load] re-folds the per-AP loads in AP
    index order (identical to {!total_load}). The only cost conceded to
    exactness is that joins pay O(n_sessions) for the row re-sum and
    [total_load] pays O(n_aps) when dirty — both far below the
    O(n_users) scans they replace.

    Zero-rate members are rejected ([Invalid_argument]): the eager scan's
    [tx = 0.] sentinel makes their effect scan-order-dependent, and no
    caller associates a user to an out-of-range AP. *)
module Tracker = struct
  let eager_load_if_joins = load_if_joins
  let eager_load_if_leaves = load_if_leaves

  (* Deterministic event counters (DESIGN.md §4.9): tracker mutations are
     driven by index-ordered scans, so totals are scheduling-independent. *)
  let c_joins = Wlan_obs.Counters.make "tracker.joins"
  let c_leaves = Wlan_obs.Counters.make "tracker.leaves"
  let c_min_recomputes = Wlan_obs.Counters.make "tracker.min_recomputes"
  let c_hypotheticals = Wlan_obs.Counters.make "tracker.hypotheticals"

  module Fmap = Map.Make (Float)

  let ms_add x m =
    Fmap.update x (function None -> Some 1 | Some k -> Some (k + 1)) m

  let ms_remove x m =
    Fmap.update x (function
      | None -> invalid_arg "Loads.Tracker: multiset underflow"
      | Some 1 -> None
      | Some k -> Some (k - 1))
      m

  type t = {
    p : Problem.t;
    assoc : Association.t;  (** shared with the caller; mutate via {!move} *)
    members : int Fmap.t array array;
        (** [members.(a).(s)]: link-rate multiset of [a]'s session-[s] users *)
    tx : float array array;  (** cached min of [members.(a).(s)], or [0.] *)
    loads : float array;  (** cached per-AP loads, always exact *)
    srates : float array;  (** session rates, copied out of [p] once *)
    mutable load_ms : int Fmap.t;  (** multiset of [loads] values *)
    mutable total : float;
    mutable total_dirty : bool;
  }

  (* Re-derive AP [a]'s cached load from its tx row — the same index-order
     sum as [load_of_tx], hence bit-identical to an eager rescan. *)
  let refresh_ap_load t a =
    let fresh = load_of_tx t.p t.tx.(a) in
    t.load_ms <- ms_add fresh (ms_remove t.loads.(a) t.load_ms);
    t.loads.(a) <- fresh;
    t.total_dirty <- true

  let join_internal t ~user ~ap =
    Wlan_obs.Counters.incr c_joins;
    let r = Problem.link_rate t.p ~ap ~user in
    if not (r > 0.) then
      invalid_arg "Loads.Tracker: join with non-positive link rate";
    let s = Problem.user_session t.p user in
    t.members.(ap).(s) <- ms_add r t.members.(ap).(s);
    (* first-wins scan min over positive rates = multiset min *)
    if (t.tx.(ap).(s) = 0.) [@lint.allow float_eq] || r < t.tx.(ap).(s) then
      t.tx.(ap).(s) <- r;
    refresh_ap_load t ap

  let leave_internal t ~user ~ap =
    Wlan_obs.Counters.incr c_leaves;
    let r = Problem.link_rate t.p ~ap ~user in
    let s = Problem.user_session t.p user in
    let m = ms_remove r t.members.(ap).(s) in
    t.members.(ap).(s) <- m;
    Wlan_obs.Counters.incr c_min_recomputes;
    t.tx.(ap).(s) <-
      (match Fmap.min_binding_opt m with None -> 0. | Some (r', _) -> r');
    refresh_ap_load t ap

  let create p (assoc : Association.t) =
    let n_aps, n_users = Problem.dims p in
    let n_s = Problem.n_sessions p in
    let t =
      {
        p;
        assoc;
        members = Array.init n_aps (fun _ -> Array.make n_s Fmap.empty);
        tx = Array.make_matrix n_aps n_s 0.;
        loads = Array.make n_aps 0.;
        srates = Array.init n_s (Problem.session_rate p);
        load_ms = (if n_aps = 0 then Fmap.empty else Fmap.singleton 0. n_aps);
        total = 0.;
        total_dirty = false;
      }
    in
    for u = 0 to n_users - 1 do
      if assoc.(u) <> Association.none then
        join_internal t ~user:u ~ap:assoc.(u)
    done;
    t

  let move t ~user ~ap =
    let old = t.assoc.(user) in
    if old <> ap then begin
      if old <> Association.none then leave_internal t ~user ~ap:old;
      t.assoc.(user) <- ap;
      if ap <> Association.none then join_internal t ~user ~ap
    end

  let unserve t ~user = move t ~user ~ap:Association.none
  let ap_load t a = t.loads.(a)
  let loads t = t.loads

  let max_load t =
    match Fmap.max_binding_opt t.load_ms with
    | None -> 0.
    | Some (l, _) -> Float.max 0. l

  let total_load t =
    if t.total_dirty then begin
      t.total <- Array.fold_left ( +. ) 0. t.loads;
      t.total_dirty <- false
    end;
    t.total

  (* Hypothetical row sum with session [s]'s tx replaced by [hyp] — the
     same traversal and float expression as [load_of_tx]. A plain loop
     (no closure per query: the flat decision kernel issues millions of
     hypotheticals per run); [srates.(s')] is the same value
     [Problem.session_rate] reads, so the floats are unchanged. *)
  let sum_with t ~ap ~s hyp =
    let tx = t.tx.(ap) and srates = t.srates in
    let load = ref 0. in
    for s' = 0 to Array.length tx - 1 do
      let r' = if s' = s then hyp else tx.(s') in
      if r' > 0. then load := !load +. (srates.(s') /. r')
    done;
    !load

  let load_if_joins t ~user ~ap =
    Wlan_obs.Counters.incr c_hypotheticals;
    if t.assoc.(user) = ap then t.loads.(ap)
    else
      let r = Problem.link_rate t.p ~ap ~user in
      if not (r > 0.) then
        (* out-of-range hypothetical: the eager scan defines the result *)
        eager_load_if_joins t.p t.assoc ~user ~ap
      else
        let s = Problem.user_session t.p user in
        let cur = t.tx.(ap).(s) in
        let hyp =
          if (cur = 0.) [@lint.allow float_eq] || r < cur then r else cur
        in
        sum_with t ~ap ~s hyp

  (* Batched {!load_if_joins} over a neighborhood plane: one session
     lookup for the whole batch, answers written into [into.(0..d-1)].
     [rates] may carry the caller's precomputed link rates for
     [nbr.(0..d-1)] (static topologies only — they must equal what
     {!Problem.link_rate} returns); without it the rate is looked up per
     AP. Each answer is the identical float the per-query function
     computes. *)
  let load_if_joins_into t ~user ?rates ~nbr ~d ~into () =
    Wlan_obs.Counters.add c_hypotheticals d;
    let s = Problem.user_session t.p user in
    let current = t.assoc.(user) in
    for k = 0 to d - 1 do
      let ap = nbr.(k) in
      into.(k) <-
        (if current = ap then t.loads.(ap)
         else
           let r =
             match rates with
             | Some r -> r.(k)
             | None -> Problem.link_rate t.p ~ap ~user
           in
           if not (r > 0.) then eager_load_if_joins t.p t.assoc ~user ~ap
           else
             let cur = t.tx.(ap).(s) in
             let hyp =
               if (cur = 0.) [@lint.allow float_eq] || r < cur then r else cur
             in
             sum_with t ~ap ~s hyp)
    done

  let load_if_leaves t ~user ~ap =
    Wlan_obs.Counters.incr c_hypotheticals;
    if t.assoc.(user) <> ap then t.loads.(ap)
    else
      let r = Problem.link_rate t.p ~ap ~user in
      if not (r > 0.) then eager_load_if_leaves t.p t.assoc ~user ~ap
      else
        let s = Problem.user_session t.p user in
        let m = ms_remove r t.members.(ap).(s) in
        let hyp =
          match Fmap.min_binding_opt m with None -> 0. | Some (r', _) -> r'
        in
        sum_with t ~ap ~s hyp
end
