(** Multicast load accounting (Definition 1 of the paper).

    An AP that serves a set of users for session [s] transmits [s] at the
    lowest maximum link rate among those users, so that every receiver can
    decode. The airtime fraction this costs is
    [session_rate s /. tx_rate], the AP's {e multicast load} for [s]; an
    AP's load is the sum over the sessions it serves, and the network's
    total load is the sum over APs. *)

(** [tx_rates p assoc] gives, for each AP, the transmission rate it must use
    for each session: [tx.(a).(s)] is the minimum link rate among users of
    session [s] associated with [a], or [0.] when [a] does not serve [s]. *)
let tx_rates p (assoc : Association.t) =
  let n_aps, n_users = Problem.dims p in
  let tx = Array.make_matrix n_aps (Problem.n_sessions p) 0. in
  for u = 0 to n_users - 1 do
    let a = assoc.(u) in
    if a <> Association.none then begin
      let s = Problem.user_session p u in
      let r = Problem.link_rate p ~ap:a ~user:u in
      (* 0. is the exact "no member yet" sentinel written two lines up *)
      if (tx.(a).(s) = 0.) [@lint.allow float_eq] || r < tx.(a).(s) then
        tx.(a).(s) <- r
    end
  done;
  tx

(** Load of a single AP given its per-session transmission rates. *)
let load_of_tx p tx_row =
  let load = ref 0. in
  Array.iteri
    (fun s r -> if r > 0. then load := !load +. (Problem.session_rate p s /. r))
    tx_row;
  !load

(** [ap_loads p assoc] is the multicast load of every AP. *)
let ap_loads p assoc =
  Array.map (load_of_tx p) (tx_rates p assoc)

(** Load of one AP. Prefer {!ap_loads} when you need all of them. *)
let ap_load p assoc ~ap =
  let n_users = Problem.dims p |> snd in
  let n_s = Problem.n_sessions p in
  let tx = Array.make n_s 0. in
  for u = 0 to n_users - 1 do
    if assoc.(u) = ap then begin
      let s = Problem.user_session p u in
      let r = Problem.link_rate p ~ap ~user:u in
      if (tx.(s) = 0.) [@lint.allow float_eq] || r < tx.(s) then tx.(s) <- r
    end
  done;
  load_of_tx p tx

(** Total multicast load of the network: the sum of all AP loads. *)
let total_load p assoc =
  Array.fold_left ( +. ) 0. (ap_loads p assoc)

(** Maximum multicast load among all APs (the BLA objective). *)
let max_load p assoc =
  Array.fold_left Float.max 0. (ap_loads p assoc)

(** Sorted (non-increasing) load vector, the order used by the distributed
    BLA rule to compare candidate associations. *)
let sorted_load_vector loads =
  let v = Array.copy loads in
  Array.sort (fun a b -> Float.compare b a) v;
  v

(** Lexicographic comparison of two non-increasing load vectors (footnote 5
    of the paper): the vector whose first differing entry is smaller is the
    smaller vector. *)
let compare_load_vectors (a : float array) (b : float array) =
  let n = Int.min (Array.length a) (Array.length b) in
  let rec go i =
    if i = n then Int.compare (Array.length a) (Array.length b)
    else
      let c = Float.compare a.(i) b.(i) in
      if c <> 0 then c else go (i + 1)
  in
  go 0

(** Like {!compare_load_vectors} but entries within [eps] are considered
    equal — decision rules must use this so that float summation-order noise
    (different agents adding the same loads in different orders) can never
    flip a strict-improvement test. *)
let compare_load_vectors_eps ?(eps = 1e-9) (a : float array) (b : float array)
    =
  let n = Int.min (Array.length a) (Array.length b) in
  let rec go i =
    if i = n then Int.compare (Array.length a) (Array.length b)
    else if Float.abs (a.(i) -. b.(i)) <= eps then go (i + 1)
    else Float.compare a.(i) b.(i)
  in
  go 0

(** [respects_budget p assoc] checks every AP's load against the per-AP
    multicast budget, with a small tolerance for float accumulation. *)
let respects_budget ?(eps = 1e-9) p assoc =
  let loads = ap_loads p assoc in
  let ok = ref true in
  Array.iteri
    (fun a l -> if l > Problem.ap_budget p a +. eps then ok := false)
    loads;
  !ok

(** Marginal-change helpers used by the distributed algorithms. They answer
    "what would AP [ap]'s load be if user [user] joined / left", without
    mutating the association. *)

let load_if_joins p assoc ~user ~ap =
  let old = assoc.(user) in
  assoc.(user) <- ap;
  let l = ap_load p assoc ~ap in
  assoc.(user) <- old;
  l

let load_if_leaves p assoc ~user ~ap =
  let old = assoc.(user) in
  assoc.(user) <- Association.none;
  let l = ap_load p assoc ~ap in
  assoc.(user) <- old;
  l

let pp_loads ppf loads =
  Fmt.pf ppf "@[<h>%a@]"
    Fmt.(array ~sep:sp (fun ppf l -> pf ppf "%.4f" l))
    loads
