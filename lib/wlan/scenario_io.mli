(** Plain-text serialization of scenarios: save a deployment, share it,
    replay it exactly (floats round-trip bit for bit). The line-oriented
    format is documented in the implementation; it is versioned and
    strict — unknown lines raise {!Parse_error}. Scenarios carrying a
    {!Rate_model.Path_loss} model write version 2 (extra [model] /
    [shadow] / [radio] / [snr] lines); [Table] scenarios write the
    historical version-1 bytes. The reader accepts both. *)

exception Parse_error of string

val to_string : Scenario.t -> string

(** @raise Parse_error on malformed input — including construction-time
    validation failures (hostile [rates] lines, unknown session indices,
    ill-formed models), which surface as [Parse_error] rather than raw
    [Invalid_argument]. *)
val of_string : string -> Scenario.t

val to_file : string -> Scenario.t -> unit

(** @raise Parse_error on malformed input; [Sys_error] on IO failure. *)
val of_file : string -> Scenario.t

(** {1 Churn scripts}

    A {!Churn_script.t} serializes to its own versioned line format
    ([wlan-mcast-churn 1]) so dynamic workloads ship next to — not
    inside — the static deployment they run against. Times round-trip
    bit for bit ([%.17g]). *)

val churn_to_string : Churn_script.t -> string

(** @raise Parse_error on malformed input. *)
val churn_of_string : string -> Churn_script.t

val churn_to_file : string -> Churn_script.t -> unit

(** @raise Parse_error on malformed input; [Sys_error] on IO failure. *)
val churn_of_file : string -> Churn_script.t
