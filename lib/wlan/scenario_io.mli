(** Plain-text serialization of scenarios: save a deployment, share it,
    replay it exactly (floats round-trip bit for bit). The line-oriented
    format is documented in the implementation; it is versioned and
    strict — unknown lines raise {!Parse_error}. *)

exception Parse_error of string

val to_string : Scenario.t -> string

(** @raise Parse_error on malformed input. *)
val of_string : string -> Scenario.t

val to_file : string -> Scenario.t -> unit

(** @raise Parse_error on malformed input; [Sys_error] on IO failure. *)
val of_file : string -> Scenario.t
