(** An abstract association-control problem instance.

    This is the canonical input to every algorithm in [Mcast_core]: the link
    rate matrix between APs and users, each user's requested session, the
    session stream rates, and the per-AP multicast load budget. It abstracts
    away geometry — instances come either from a geometric {!Scenario} (via
    rate adaptation) or are written down directly (the paper's worked
    examples and NP-hardness constructions specify link rates explicitly).

    Conventions:
    - APs and users are dense integer indices.
    - [rates.(a).(u)] is the maximum link data rate in Mbps from AP [a] to
      user [u]; [0.] means the user is out of the AP's range.
    - [signal.(a).(u)] ranks signal strength for the SSA baseline (higher is
      stronger); by default it equals the link rate, and geometric scenarios
      install [-. distance] so that "strongest signal" = "nearest AP". *)

type t = {
  n_aps : int;
  n_users : int;
  session_rates : float array;  (** session index -> stream rate (Mbps) *)
  user_session : int array;  (** user index -> session index *)
  rates : float array array;  (** [rates.(a).(u)]: max link rate, 0. = out of range *)
  signal : float array array;  (** [signal.(a).(u)]: higher = stronger *)
  budget : float;  (** default per-AP multicast load limit, in [0, 1] *)
  ap_budgets : float array option;
      (** optional heterogeneous per-AP budgets overriding [budget] *)
}

let dims t = (t.n_aps, t.n_users)
let n_sessions t = Array.length t.session_rates
let session_rate t s = t.session_rates.(s)
let user_session t u = t.user_session.(u)
let link_rate t ~ap ~user = t.rates.(ap).(user)
let in_range t ~ap ~user = t.rates.(ap).(user) > 0.
let budget t = t.budget

(** The multicast budget of one AP: its entry in [ap_budgets] when
    heterogeneous budgets are installed, the uniform [budget] otherwise. *)
let ap_budget t a =
  match t.ap_budgets with Some b -> b.(a) | None -> t.budget

(** Structural validation; raises [Invalid_argument] on malformed instances. *)
let validate t =
  let fail fmt = Fmt.kstr invalid_arg ("Problem.validate: " ^^ fmt) in
  if t.n_aps < 0 || t.n_users < 0 then fail "negative dimensions";
  if Array.length t.user_session <> t.n_users then
    fail "user_session length %d <> n_users %d"
      (Array.length t.user_session) t.n_users;
  Array.iter
    (fun s ->
      if s < 0 || s >= Array.length t.session_rates then
        fail "user references unknown session %d" s)
    t.user_session;
  (* [r <= 0.] and [r < 0.] are false for nan, so the finiteness check
     must be explicit — a nan or infinite rate would reach the load
     division in {!Loads.tx_rates} and poison every comparison *)
  Array.iter
    (fun r ->
      if not (Float.is_finite r) || r <= 0. then
        fail "session rate %g (must be finite and positive)" r)
    t.session_rates;
  if Array.length t.rates <> t.n_aps then fail "rates has wrong AP dimension";
  Array.iter
    (fun row ->
      if Array.length row <> t.n_users then fail "rates row has wrong length";
      Array.iter
        (fun r ->
          if not (Float.is_finite r) || r < 0. then
            fail "link rate %g (must be finite and non-negative)" r)
        row)
    t.rates;
  if Array.length t.signal <> t.n_aps then fail "signal has wrong AP dimension";
  Array.iter
    (fun row ->
      if Array.length row <> t.n_users then fail "signal row has wrong length")
    t.signal;
  if Float.is_nan t.budget || t.budget < 0. then
    fail "negative budget %g" t.budget;
  (match t.ap_budgets with
  | None -> ()
  | Some b ->
      if Array.length b <> t.n_aps then
        fail "ap_budgets length %d <> n_aps %d" (Array.length b) t.n_aps;
      Array.iter
        (fun x ->
          if Float.is_nan x || x < 0. then fail "negative AP budget %g" x)
        b);
  t

(** [make ~session_rates ~user_session ~rates ~budget ()] builds and
    validates an instance. [signal] defaults to the rate matrix (highest
    rate = strongest signal). *)
let make ?signal ?ap_budgets ~session_rates ~user_session ~rates ~budget () =
  let n_aps = Array.length rates in
  let n_users = Array.length user_session in
  let signal =
    match signal with
    | Some s -> s
    | None -> Array.map Array.copy rates
  in
  validate
    {
      n_aps;
      n_users;
      session_rates;
      user_session;
      rates;
      signal;
      budget;
      ap_budgets;
    }

(** APs within range of user [u], unordered. *)
let neighbor_aps t u =
  let acc = ref [] in
  for a = t.n_aps - 1 downto 0 do
    if t.rates.(a).(u) > 0. then acc := a :: !acc
  done;
  !acc

(** APs within range of user [u], strongest signal first (ties by lower AP
    index, making the SSA baseline deterministic). *)
let neighbors_by_signal t u =
  neighbor_aps t u
  |> List.stable_sort (fun a b -> Float.compare t.signal.(b).(u) t.signal.(a).(u))

(** The strongest-signal AP of user [u], or [None] if no AP covers [u]. *)
let strongest_ap t u =
  match neighbors_by_signal t u with [] -> None | a :: _ -> Some a

(** Users covered by at least one AP. *)
let coverable_users t =
  let acc = ref [] in
  for u = t.n_users - 1 downto 0 do
    if neighbor_aps t u <> [] then acc := u :: !acc
  done;
  !acc

(** Users of session [s] reachable from AP [a] at link rate at least [r]. *)
let receivers t ~ap ~session ~min_rate =
  let acc = ref [] in
  for u = t.n_users - 1 downto 0 do
    if t.user_session.(u) = session && t.rates.(ap).(u) >= min_rate then
      acc := u :: !acc
  done;
  !acc

(** The distinct link rates that occur in the instance, highest first. These
    are the only transmission rates an algorithm ever needs to consider. *)
let distinct_rates t =
  let module FS = Set.Make (Float) in
  let s =
    Array.fold_left
      (fun acc row ->
        Array.fold_left (fun acc r -> if r > 0. then FS.add r acc else acc) acc row)
      FS.empty t.rates
  in
  FS.elements s |> List.rev

(** Replace every positive link rate by the lowest one — stock 802.11
    broadcast behaviour where multicast always uses the basic rate. *)
let restrict_to_basic_rate t =
  match distinct_rates t with
  | [] -> t
  | rs ->
      let basic = List.fold_left Float.min infinity rs in
      let rates =
        Array.map (Array.map (fun r -> if r > 0. then basic else 0.)) t.rates
      in
      { t with rates }

(** Uniform budget override; clears any heterogeneous budgets. *)
let with_budget t budget = validate { t with budget; ap_budgets = None }

(** Install heterogeneous per-AP budgets. *)
let with_ap_budgets t ap_budgets =
  validate { t with ap_budgets = Some ap_budgets }

let pp ppf t =
  Fmt.pf ppf "@[<v>problem: %d APs, %d users, %d sessions, budget %g@]"
    t.n_aps t.n_users (n_sessions t) t.budget
