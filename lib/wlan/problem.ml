(** An abstract association-control problem instance.

    This is the canonical input to every algorithm in [Mcast_core]: the link
    structure between APs and users, each user's requested session, the
    session stream rates, and the per-AP multicast load budget. It abstracts
    away geometry — instances come either from a geometric {!Scenario} (via
    rate adaptation) or are written down directly (the paper's worked
    examples and NP-hardness constructions specify link rates explicitly).

    Since PR 6 the link structure has two interchangeable representations
    behind the {!view} accessor:
    - {e dense}: the classic (AP × user) [rates]/[signal] matrices, with
      [0.] meaning out of range — what the paper's 200×400 experiments use;
    - {e sparse}: {!Sparse.t} candidate/member lists exploiting the hard
      radio reach of the 802.11 rate tables, the only form that scales to
      city-size (2000×40000 and beyond) instances, where the dense matrix
      would not even allocate.

    Every accessor below is representation-agnostic and — by construction
    and by the differential battery in [test/test_sparse.ml] — returns
    bit-identical results on both forms of the same instance.

    Conventions:
    - APs and users are dense integer indices.
    - A link rate is the maximum data rate in Mbps from AP to user; [0.]
      (dense) or an absent/lost slot (sparse) means out of range.
    - Signal ranks strength for the SSA baseline (higher is stronger); by
      default it equals the link rate, and geometric scenarios install
      [-. distance] so that "strongest signal" = "nearest AP". *)

type repr =
  | Dense of { rates : float array array; signal : float array array }
  | Sparse of Sparse.t

type t = {
  n_aps : int;
  n_users : int;
  session_rates : float array;  (** session index -> stream rate (Mbps) *)
  user_session : int array;  (** user index -> session index *)
  repr : repr;  (** the link structure — access through {!view} *)
  budget : float;  (** default per-AP multicast load limit, in [0, 1] *)
  ap_budgets : float array option;
      (** optional heterogeneous per-AP budgets overriding [budget] *)
  allow_uncovered : bool;
      (** when false (the default for hand-written instances), {!validate}
          rejects users with an empty candidate list; geometric paths set
          it, since random placement legitimately strands users *)
}

let dims t = (t.n_aps, t.n_users)
let n_sessions t = Array.length t.session_rates
let session_rate t s = t.session_rates.(s)
let user_session t u = t.user_session.(u)
let view t = t.repr
let is_sparse t = match t.repr with Dense _ -> false | Sparse _ -> true

let link_rate t ~ap ~user =
  match t.repr with
  | Dense d -> d.rates.(ap).(user)
  | Sparse s -> Sparse.link_rate s ~ap ~user

let signal t ~ap ~user =
  match t.repr with
  | Dense d -> d.signal.(ap).(user)
  | Sparse s -> Sparse.signal s ~ap ~user

let in_range t ~ap ~user = link_rate t ~ap ~user > 0.
let budget t = t.budget

(** The multicast budget of one AP: its entry in [ap_budgets] when
    heterogeneous budgets are installed, the uniform [budget] otherwise. *)
let ap_budget t a =
  match t.ap_budgets with Some b -> b.(a) | None -> t.budget

(** [iter_candidates t u f] calls [f ap rate signal] for every AP in
    range of user [u], in ascending AP order. *)
let iter_candidates t u f =
  match t.repr with
  | Dense d ->
      for a = 0 to t.n_aps - 1 do
        let r = d.rates.(a).(u) in
        if r > 0. then f a r d.signal.(a).(u)
      done
  | Sparse s -> Sparse.iter_candidates s u f

(** [iter_members t a f] calls [f user rate] for every user in range of
    AP [a], in ascending user order. *)
let iter_members t a f =
  match t.repr with
  | Dense d ->
      for u = 0 to t.n_users - 1 do
        let r = d.rates.(a).(u) in
        if r > 0. then f u r
      done
  | Sparse s -> Sparse.iter_members s a f

(** A fresh dense rate matrix equal to the instance's link structure
    (always a copy — safe to mutate, never aliases the instance).
    Allocates O(APs × users): test/debug helper, not for city scale. *)
let rates_matrix t =
  match t.repr with
  | Dense d -> Array.map Array.copy d.rates
  | Sparse s ->
      let m = Array.make_matrix t.n_aps t.n_users 0. in
      for u = 0 to t.n_users - 1 do
        Sparse.iter_candidates s u (fun a r _ -> m.(a).(u) <- r)
      done;
      m

(** A fresh dense signal matrix (a copy). Sparse instances carry no
    signal for out-of-range pairs: those entries are [neg_infinity]. *)
let signal_matrix t =
  match t.repr with
  | Dense d -> Array.map Array.copy d.signal
  | Sparse s ->
      let m = Array.make_matrix t.n_aps t.n_users neg_infinity in
      for u = 0 to t.n_users - 1 do
        Sparse.iter_candidates s u (fun a _ sg -> m.(a).(u) <- sg)
      done;
      m

(** Structural validation; raises [Invalid_argument] on malformed instances.

    Beyond arity/finiteness, rejects any user whose candidate list is
    empty (no AP in range) unless the instance was built with
    [~allow_uncovered:true] — an uncovered user can never be associated,
    so a hand-written instance containing one is almost always a bug. *)
let validate t =
  let fail fmt = Fmt.kstr invalid_arg ("Problem.validate: " ^^ fmt) in
  if t.n_aps < 0 || t.n_users < 0 then fail "negative dimensions";
  if Array.length t.user_session <> t.n_users then
    fail "user_session length %d <> n_users %d"
      (Array.length t.user_session) t.n_users;
  Array.iter
    (fun s ->
      if s < 0 || s >= Array.length t.session_rates then
        fail "user references unknown session %d" s)
    t.user_session;
  (* [r <= 0.] and [r < 0.] are false for nan, so the finiteness check
     must be explicit — a nan or infinite rate would reach the load
     division in {!Loads.tx_rates} and poison every comparison *)
  Array.iter
    (fun r ->
      if not (Float.is_finite r) || r <= 0. then
        fail "session rate %g (must be finite and positive)" r)
    t.session_rates;
  (match t.repr with
  | Dense d ->
      if Array.length d.rates <> t.n_aps then
        fail "rates has wrong AP dimension";
      Array.iter
        (fun row ->
          if Array.length row <> t.n_users then
            fail "rates row has wrong length";
          Array.iter
            (fun r ->
              if not (Float.is_finite r) || r < 0. then
                fail "link rate %g (must be finite and non-negative)" r)
            row)
        d.rates;
      if Array.length d.signal <> t.n_aps then
        fail "signal has wrong AP dimension";
      Array.iter
        (fun row ->
          if Array.length row <> t.n_users then
            fail "signal row has wrong length")
        d.signal
  | Sparse s ->
      ignore (Sparse.validate s);
      if Sparse.n_aps s <> t.n_aps then
        fail "sparse structure has %d APs, instance %d" (Sparse.n_aps s)
          t.n_aps;
      if Sparse.n_users s <> t.n_users then
        fail "sparse structure has %d users, instance %d" (Sparse.n_users s)
          t.n_users);
  if not t.allow_uncovered then
    for u = 0 to t.n_users - 1 do
      let covered = ref false in
      iter_candidates t u (fun _ _ _ -> covered := true);
      if not !covered then
        fail
          "user %d has an empty candidate list (no AP in range; pass \
           ~allow_uncovered:true if intentional)"
          u
    done;
  if Float.is_nan t.budget || t.budget < 0. then
    fail "negative budget %g" t.budget;
  (match t.ap_budgets with
  | None -> ()
  | Some b ->
      if Array.length b <> t.n_aps then
        fail "ap_budgets length %d <> n_aps %d" (Array.length b) t.n_aps;
      Array.iter
        (fun x ->
          if Float.is_nan x || x < 0. then fail "negative AP budget %g" x)
        b);
  t

(** [make ~session_rates ~user_session ~rates ~budget ()] builds and
    validates a dense instance. [signal] defaults to the rate matrix
    (highest rate = strongest signal). *)
let make ?signal ?ap_budgets ?(allow_uncovered = false) ~session_rates
    ~user_session ~rates ~budget () =
  let n_aps = Array.length rates in
  let n_users = Array.length user_session in
  let signal =
    match signal with
    | Some s -> s
    | None -> Array.map Array.copy rates
  in
  validate
    {
      n_aps;
      n_users;
      session_rates;
      user_session;
      repr = Dense { rates; signal };
      budget;
      ap_budgets;
      allow_uncovered;
    }

(** Build and validate a sparse instance around an existing link
    structure (see {!Sparse.make} and {!Scenario.to_problem_sparse}). *)
let make_sparse ?ap_budgets ?(allow_uncovered = false) ~session_rates
    ~user_session ~sparse ~budget () =
  validate
    {
      n_aps = Sparse.n_aps sparse;
      n_users = Array.length user_session;
      session_rates;
      user_session;
      repr = Sparse sparse;
      budget;
      ap_budgets;
      allow_uncovered;
    }

(** The same instance in sparse form (identity if already sparse). The
    conversion keeps exactly the positive-rate links, so every accessor
    answers bit-identically afterwards. *)
let to_sparse t =
  match t.repr with
  | Sparse _ -> t
  | Dense d ->
      { t with repr = Sparse (Sparse.of_dense ~rates:d.rates ~signal:d.signal) }

(** The same instance in dense form (identity if already dense).
    Allocates the O(APs × users) matrices — test/debug helper. *)
let to_dense t =
  match t.repr with
  | Dense _ -> t
  | Sparse _ ->
      { t with repr = Dense { rates = rates_matrix t; signal = signal_matrix t } }

(** A copy whose link rates may be mutated through {!set_link_rate}
    without affecting the original (signal and structure are shared). *)
let copy_for_mutation t =
  match t.repr with
  | Dense d ->
      { t with repr = Dense { d with rates = Array.map Array.copy d.rates } }
  | Sparse s -> { t with repr = Sparse (Sparse.copy_values s) }

(** In-place link rate update, the churn primitive. On a dense instance
    any entry may be written; on a sparse instance the pair must have
    been in range at build time (setting an absent link to [0.] is a
    no-op, raising it from nothing is [Invalid_argument] — see
    {!Sparse.set_rate}). Only call on a {!copy_for_mutation} copy. *)
let set_link_rate t ~ap ~user r =
  match t.repr with
  | Dense d -> d.rates.(ap).(user) <- r
  | Sparse s -> Sparse.set_rate s ~ap ~user r

(** A copy with dead APs' and absent users' links zeroed — the effective
    instance mid-churn. Not validated (masking legitimately strands
    users). *)
let masked t ~ap_alive ~user_present =
  match t.repr with
  | Dense d ->
      let rates =
        Array.mapi
          (fun a row ->
            if not ap_alive.(a) then Array.make t.n_users 0.
            else
              Array.mapi (fun u r -> if user_present.(u) then r else 0.) row)
          d.rates
      in
      { t with repr = Dense { d with rates }; allow_uncovered = true }
  | Sparse s ->
      {
        t with
        repr = Sparse (Sparse.masked s ~ap_alive ~user_present);
        allow_uncovered = true;
      }

(** APs within range of user [u], ascending index order. *)
let neighbor_aps t u =
  match t.repr with
  | Dense d ->
      let acc = ref [] in
      for a = t.n_aps - 1 downto 0 do
        if d.rates.(a).(u) > 0. then acc := a :: !acc
      done;
      !acc
  | Sparse s -> Sparse.candidate_aps s u

(** APs within range of user [u], strongest signal first (ties by lower AP
    index, making the SSA baseline deterministic). *)
let neighbors_by_signal t u =
  neighbor_aps t u
  |> List.stable_sort (fun a b ->
         Float.compare (signal t ~ap:b ~user:u) (signal t ~ap:a ~user:u))

(** The strongest-signal AP of user [u], or [None] if no AP covers [u]. *)
let strongest_ap t u =
  match neighbors_by_signal t u with [] -> None | a :: _ -> Some a

(** Users covered by at least one AP. *)
let coverable_users t =
  let acc = ref [] in
  for u = t.n_users - 1 downto 0 do
    if neighbor_aps t u <> [] then acc := u :: !acc
  done;
  !acc

(** Users of session [s] reachable from AP [a] at link rate at least [r],
    ascending. [min_rate] must be positive (rates are; out-of-range pairs
    never qualify). *)
let receivers t ~ap ~session ~min_rate =
  match t.repr with
  | Dense d ->
      let acc = ref [] in
      for u = t.n_users - 1 downto 0 do
        if t.user_session.(u) = session && d.rates.(ap).(u) >= min_rate then
          acc := u :: !acc
      done;
      !acc
  | Sparse s ->
      let acc = ref [] in
      Sparse.iter_members s ap (fun u r ->
          if t.user_session.(u) = session && r >= min_rate then
            acc := u :: !acc);
      List.rev !acc

(** The distinct link rates that occur in the instance, highest first. These
    are the only transmission rates an algorithm ever needs to consider. *)
let distinct_rates t =
  let module FS = Set.Make (Float) in
  let s = ref FS.empty in
  for a = 0 to t.n_aps - 1 do
    iter_members t a (fun _ r -> s := FS.add r !s)
  done;
  FS.elements !s |> List.rev

(** Replace every positive link rate by the lowest one — stock 802.11
    broadcast behaviour where multicast always uses the basic rate. *)
let restrict_to_basic_rate t =
  match distinct_rates t with
  | [] -> t
  | rs -> (
      let basic = List.fold_left Float.min infinity rs in
      match t.repr with
      | Dense d ->
          let rates =
            Array.map
              (Array.map (fun r -> if r > 0. then basic else 0.))
              d.rates
          in
          { t with repr = Dense { d with rates } }
      | Sparse s ->
          { t with repr = Sparse (Sparse.map_rates s (fun _ -> basic)) })

(** Uniform budget override; clears any heterogeneous budgets. *)
let with_budget t budget = validate { t with budget; ap_budgets = None }

(** Install heterogeneous per-AP budgets. *)
let with_ap_budgets t ap_budgets =
  validate { t with ap_budgets = Some ap_budgets }

let pp ppf t =
  Fmt.pf ppf "@[<v>problem (%s): %d APs, %d users, %d sessions, budget %g@]"
    (if is_sparse t then "sparse" else "dense")
    t.n_aps t.n_users (n_sessions t) t.budget
