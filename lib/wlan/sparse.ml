(** Range-limited sparse problem representation (DESIGN.md §4.10).

    The paper's association-control algorithms only ever consult a user's
    {e neighborhood} — the APs whose radio range covers it — yet the dense
    {!Problem} representation carries a full (AP × user) matrix, putting an
    O(APs · users) floor under memory and every candidate scan. Because the
    802.11 rate tables give links a hard reach (~200 m for 802.11a), the
    in-range pairs are geometrically sparse: a city-scale deployment has a
    few candidate APs per user regardless of how many thousand APs exist.

    This module is the CSR-style sparse form of the link structure: each
    user's {e candidate list} (the APs in range, ascending AP index, with
    the link rate and signal metric) and, mirrored over the same slots,
    each AP's {e member list} (the users in range, ascending user index).
    Both views share one value array, so a rate mutation (churn drift) is
    seen consistently from either side.

    The slot structure is {b immutable} after {!make}: churn may change a
    slot's rate — including to [0.], "link lost", which every reader skips
    — but can never add a link that was out of range at build time. That
    is exactly the contract of the rate-drift churn tier ladder, and it is
    what keeps the representation allocation-free under replay.

    {!Grid} is the spatial bucket grid used to build candidate lists from
    geometry in O(APs + users · candidates) without ever forming the dense
    matrix: APs are bucketed into square cells whose side is the radio
    range, so every AP within range of a point lies in the 3×3 cell block
    around it — including APs sitting exactly at the reach boundary or on
    a cell edge. *)

(* Deterministic event counters (DESIGN.md §4.9): builds and probes are
   driven by index-ordered scans, so these totals are pure functions of
   the inputs. *)
let c_builds = Wlan_obs.Counters.make "sparse.builds"
let c_candidate_list_len = Wlan_obs.Counters.make "sparse.candidate_list_len"
let c_grid_cells_probed = Wlan_obs.Counters.make "sparse.grid_cells_probed"

type t = {
  n_aps : int;
  n_users : int;
  user_off : int array;  (** per-user slot range: slots of user [u] are
                             [user_off.(u) .. user_off.(u+1) - 1] *)
  cand_ap : int array;  (** slot -> AP index, ascending within a user *)
  cand_rate : float array;
      (** slot -> link rate; [0.] = link lost (skipped by every reader).
          The only mutable plane: {!set_rate} writes it, {!copy_values}
          unshares it. *)
  cand_signal : float array;  (** slot -> signal metric (higher = stronger) *)
  ap_off : int array;  (** per-AP member range over [memb_*] *)
  memb_user : int array;  (** member slot -> user index, ascending per AP *)
  memb_slot : int array;
      (** member slot -> candidate slot of the same link, so both views
          read the one [cand_rate] plane *)
}

let n_aps t = t.n_aps
let n_users t = t.n_users
let n_links t = Array.length t.cand_ap

(** Structural validation; raises [Invalid_argument] on malformed input. *)
let validate t =
  let fail fmt = Fmt.kstr invalid_arg ("Sparse.validate: " ^^ fmt) in
  if t.n_aps < 0 || t.n_users < 0 then fail "negative dimensions";
  if Array.length t.user_off <> t.n_users + 1 then fail "user_off arity";
  if Array.length t.ap_off <> t.n_aps + 1 then fail "ap_off arity";
  let n = Array.length t.cand_ap in
  if Array.length t.cand_rate <> n || Array.length t.cand_signal <> n then
    fail "candidate plane arity mismatch";
  if Array.length t.memb_user <> n || Array.length t.memb_slot <> n then
    fail "member plane arity mismatch";
  if t.user_off.(0) <> 0 || t.user_off.(t.n_users) <> n then
    fail "user_off does not span the slots";
  if t.ap_off.(0) <> 0 || t.ap_off.(t.n_aps) <> n then
    fail "ap_off does not span the slots";
  for u = 0 to t.n_users - 1 do
    if t.user_off.(u) > t.user_off.(u + 1) then fail "user_off not monotone";
    for i = t.user_off.(u) to t.user_off.(u + 1) - 1 do
      let a = t.cand_ap.(i) in
      if a < 0 || a >= t.n_aps then fail "slot references unknown AP %d" a;
      if i > t.user_off.(u) && t.cand_ap.(i - 1) >= a then
        fail "candidate list of user %d not strictly ascending" u;
      let r = t.cand_rate.(i) in
      if not (Float.is_finite r) || r < 0. then
        fail "link rate %g (must be finite and non-negative)" r
    done
  done;
  for a = 0 to t.n_aps - 1 do
    if t.ap_off.(a) > t.ap_off.(a + 1) then fail "ap_off not monotone";
    for i = t.ap_off.(a) to t.ap_off.(a + 1) - 1 do
      let u = t.memb_user.(i) in
      if u < 0 || u >= t.n_users then fail "member references unknown user %d" u;
      if i > t.ap_off.(a) && t.memb_user.(i - 1) >= u then
        fail "member list of AP %d not strictly ascending" a;
      let s = t.memb_slot.(i) in
      if s < 0 || s >= n then fail "member slot out of range";
      if t.cand_ap.(s) <> a then fail "member slot mirrors a different AP"
    done
  done;
  t

(** [make ~n_aps ~links] builds the two mirrored CSR planes from per-user
    candidate lists. [links.(u)] is user [u]'s list of
    [(ap, rate, signal)], strictly ascending by AP index.
    @raise Invalid_argument on unsorted lists or out-of-range indices. *)
let make ~n_aps ~links =
  Wlan_obs.Counters.incr c_builds;
  let n_users = Array.length links in
  let n = Array.fold_left (fun acc l -> acc + List.length l) 0 links in
  Wlan_obs.Counters.add c_candidate_list_len n;
  let user_off = Array.make (n_users + 1) 0 in
  let cand_ap = Array.make n 0 in
  let cand_rate = Array.make n 0. in
  let cand_signal = Array.make n 0. in
  let ap_count = Array.make (Int.max n_aps 0) 0 in
  let k = ref 0 in
  Array.iteri
    (fun u l ->
      user_off.(u) <- !k;
      List.iter
        (fun (a, r, s) ->
          if a < 0 || a >= n_aps then
            Fmt.kstr invalid_arg "Sparse.make: unknown AP %d" a;
          cand_ap.(!k) <- a;
          cand_rate.(!k) <- r;
          cand_signal.(!k) <- s;
          ap_count.(a) <- ap_count.(a) + 1;
          incr k)
        l)
    links;
  user_off.(n_users) <- !k;
  (* member plane: one pass over users in ascending order fills every
     AP's member list in ascending user order *)
  let ap_off = Array.make (n_aps + 1) 0 in
  for a = 0 to n_aps - 1 do
    ap_off.(a + 1) <- ap_off.(a) + ap_count.(a)
  done;
  let fill = Array.copy (Array.sub ap_off 0 (Int.max n_aps 1)) in
  let memb_user = Array.make n 0 in
  let memb_slot = Array.make n 0 in
  for u = 0 to n_users - 1 do
    for i = user_off.(u) to user_off.(u + 1) - 1 do
      let a = cand_ap.(i) in
      memb_user.(fill.(a)) <- u;
      memb_slot.(fill.(a)) <- i;
      fill.(a) <- fill.(a) + 1
    done
  done;
  validate
    {
      n_aps;
      n_users;
      user_off;
      cand_ap;
      cand_rate;
      cand_signal;
      ap_off;
      memb_user;
      memb_slot;
    }

(** Candidate slot of the [(ap, user)] link, if the pair was ever in
    range. Binary search over the user's ascending candidate list. *)
let find_slot t ~ap ~user =
  let lo = ref t.user_off.(user) and hi = ref (t.user_off.(user + 1) - 1) in
  let found = ref (-1) in
  while !found < 0 && !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let a = t.cand_ap.(mid) in
    if a = ap then found := mid
    else if a < ap then lo := mid + 1
    else hi := mid - 1
  done;
  if !found < 0 then None else Some !found

(** Link rate of [(ap, user)]: the slot's value, [0.] when the pair was
    never in range. *)
let link_rate t ~ap ~user =
  match find_slot t ~ap ~user with None -> 0. | Some i -> t.cand_rate.(i)

(** Signal metric of [(ap, user)]; [neg_infinity] when the pair was never
    in range (an out-of-range AP can never win a signal tie-break). *)
let signal t ~ap ~user =
  match find_slot t ~ap ~user with
  | None -> neg_infinity
  | Some i -> t.cand_signal.(i)

(** [iter_candidates t u f] calls [f ap rate signal] for every in-range
    candidate of user [u] (rate [> 0.]), ascending AP index. *)
let iter_candidates t u f =
  for i = t.user_off.(u) to t.user_off.(u + 1) - 1 do
    let r = t.cand_rate.(i) in
    if r > 0. then f t.cand_ap.(i) r t.cand_signal.(i)
  done

(** [iter_members t a f] calls [f user rate] for every in-range member of
    AP [a] (rate [> 0.]), ascending user index. *)
let iter_members t a f =
  for i = t.ap_off.(a) to t.ap_off.(a + 1) - 1 do
    let r = t.cand_rate.(t.memb_slot.(i)) in
    if r > 0. then f t.memb_user.(i) r
  done

(** In-range candidate APs of a user, ascending. *)
let candidate_aps t u =
  let acc = ref [] in
  for i = t.user_off.(u + 1) - 1 downto t.user_off.(u) do
    if t.cand_rate.(i) > 0. then acc := t.cand_ap.(i) :: !acc
  done;
  !acc

(** Number of slots of a user, in-range or lost. *)
let degree t u = t.user_off.(u + 1) - t.user_off.(u)

(** [set_rate t ~ap ~user r] overwrites the slot's rate. [0.] marks the
    link lost; any positive value re-arms it. The slot must exist:
    @raise Invalid_argument when [(ap, user)] was never in range and
    [r > 0.] — the sparse structure cannot grow a link (build the
    instance from geometry that covers it instead). Setting an absent
    link to [0.] is a no-op. *)
let set_rate t ~ap ~user r =
  match find_slot t ~ap ~user with
  | Some i -> t.cand_rate.(i) <- r
  | None ->
      if r > 0. then
        Fmt.kstr invalid_arg
          "Sparse.set_rate: link a%d-u%d was never in range (the sparse \
           structure cannot add links)"
          ap user

(** A copy whose rate plane is private; every other (immutable) plane is
    shared. This is what a churn layer must take before mutating. *)
let copy_values t = { t with cand_rate = Array.copy t.cand_rate }

(** [masked t ~ap_alive ~user_present] is a copy with the rates of dead
    APs' and absent users' slots forced to [0.] — the sparse counterpart
    of zeroing matrix rows and columns. *)
let masked t ~ap_alive ~user_present =
  let c = copy_values t in
  for u = 0 to t.n_users - 1 do
    if not user_present.(u) then
      for i = t.user_off.(u) to t.user_off.(u + 1) - 1 do
        c.cand_rate.(i) <- 0.
      done
  done;
  for a = 0 to t.n_aps - 1 do
    if not ap_alive.(a) then
      for i = t.ap_off.(a) to t.ap_off.(a + 1) - 1 do
        c.cand_rate.(t.memb_slot.(i)) <- 0.
      done
  done;
  c

(** A copy with every in-range rate mapped through [f] (lost links stay
    lost). *)
let map_rates t f =
  let c = copy_values t in
  Array.iteri
    (fun i r -> if r > 0. then c.cand_rate.(i) <- f r)
    t.cand_rate;
  c

(** Build from dense matrices: one slot per positive-rate pair. *)
let of_dense ~rates ~signal =
  let n_aps = Array.length rates in
  let n_users = if n_aps = 0 then 0 else Array.length rates.(0) in
  let links =
    Array.init n_users (fun u ->
        let acc = ref [] in
        for a = n_aps - 1 downto 0 do
          if rates.(a).(u) > 0. then
            acc := (a, rates.(a).(u), signal.(a).(u)) :: !acc
        done;
        !acc)
  in
  make ~n_aps ~links

let pp ppf t =
  Fmt.pf ppf "@[<v>sparse: %d APs, %d users, %d links (%.2f cand/user)@]"
    t.n_aps t.n_users (n_links t)
    (if t.n_users = 0 then 0.
     else float_of_int (n_links t) /. float_of_int t.n_users)

(** {1 Spatial bucket grid}

    Square cells of side [cell] over the plane; a point's candidates are
    gathered from the 3×3 cell block around it. With [cell >= range]
    every AP within [range] of the point lies in that block — including
    APs exactly at distance [range] and points sitting on cell edges —
    so the probe has {e no false negatives}; distance filtering (the
    exact same float comparison as the dense path) happens downstream. *)
module Grid = struct
  type grid = {
    cell : float;
    buckets : (int * int, int list) Hashtbl.t;
        (** cell -> AP indices, ascending; probed by explicit key lookup
            only, never folded, so iteration order cannot leak *)
  }

  let cell_of g (p : Point.t) =
    (int_of_float (Float.floor (p.Point.x /. g)),
     int_of_float (Float.floor (p.Point.y /. g)))

  (** [build ~cell pts] buckets every point index by its cell.
      @raise Invalid_argument if [cell <= 0]. *)
  let build ~cell pts =
    if not (cell > 0.) then invalid_arg "Sparse.Grid.build: cell must be > 0";
    let buckets = Hashtbl.create (Int.max 16 (Array.length pts)) in
    (* descending, so each bucket's prepend-list ends up ascending *)
    for i = Array.length pts - 1 downto 0 do
      let key = cell_of cell pts.(i) in
      let tl = Option.value ~default:[] (Hashtbl.find_opt buckets key) in
      Hashtbl.replace buckets key (i :: tl)
    done;
    { cell; buckets }

  (** All point indices in the 3×3 cell block around [p], ascending.
      A superset of the points within [cell] of [p]; the caller applies
      the exact distance predicate. *)
  let probe t p =
    let cx, cy = cell_of t.cell p in
    let acc = ref [] in
    for dy = 1 downto -1 do
      for dx = 1 downto -1 do
        match Hashtbl.find_opt t.buckets (cx + dx, cy + dy) with
        | None -> ()
        | Some l ->
            Wlan_obs.Counters.incr c_grid_cells_probed;
            acc := l :: !acc
      done
    done;
    (* cells are disjoint and each list ascending; a plain sort merges *)
    List.sort Int.compare (List.concat !acc)
end
