(** Plain-text serialization of scenarios, so deployments can be saved,
    shared and replayed exactly (the reproducibility role the paper's
    published ns-2 scripts served).

    The format is a line-oriented text file:

    {v
    wlan-mcast-scenario 1
    area <w> <h>
    budget <b>
    rates <rate>:<threshold> <rate>:<threshold> ...
    sessions <rate0> <rate1> ...
    ap <x> <y>                 (one line per AP)
    user <x> <y> <session>     (one line per user)
    v}

    Version 2 (emitted only when the scenario carries a
    {!Rate_model.Path_loss} model — a [Table] scenario always writes the
    byte-identical version-1 form above) inserts the model description
    between [rates] and [sessions]:

    {v
    model friis
    model two-ray <ap_height> <user_height>
    model log-distance <exponent>
    shadow <sigma_db> <seed>                  (log-distance only)
    radio <tx_dbm> <freq_ghz> <noise_dbm> <tx_ant> <rx_ant>
    snr <rate>:<min_snr_db> ...
    v}

    where an antenna is [iso] or [par:<gain_dbi>]. The reader accepts
    both versions. Floats are printed with ["%.17g"] so parsing
    reproduces them bit for bit. Unknown lines are an error — the
    format is versioned, not extensible. *)

let version = 2

let antenna_to_string = function
  | Rate_model.Isotropic -> "iso"
  | Rate_model.Parabolic { gain_dbi } -> Printf.sprintf "par:%.17g" gain_dbi

let to_string (sc : Scenario.t) =
  let buf = Buffer.create 4096 in
  let pf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  (match sc.Scenario.model with
  | Rate_model.Table _ -> pf "wlan-mcast-scenario 1\n"
  | Rate_model.Path_loss _ -> pf "wlan-mcast-scenario %d\n" version);
  pf "area %.17g %.17g\n" sc.Scenario.area_w sc.Scenario.area_h;
  pf "budget %.17g\n" sc.Scenario.budget;
  pf "rates";
  List.iter
    (fun (e : Rate_table.entry) ->
      pf " %.17g:%.17g" e.Rate_table.rate_mbps e.Rate_table.threshold_m)
    (Rate_table.entries sc.Scenario.rate_table);
  pf "\n";
  (match sc.Scenario.model with
  | Rate_model.Table _ -> ()
  | Rate_model.Path_loss { loss; radio } ->
      (match loss with
      | Rate_model.Friis -> pf "model friis\n"
      | Rate_model.Two_ray { ap_height_m; user_height_m } ->
          pf "model two-ray %.17g %.17g\n" ap_height_m user_height_m
      | Rate_model.Log_distance { exponent; shadowing } -> (
          pf "model log-distance %.17g\n" exponent;
          match shadowing with
          | Some { Rate_model.sigma_db; seed } ->
              pf "shadow %.17g %d\n" sigma_db seed
          | None -> ()));
      pf "radio %.17g %.17g %.17g %s %s\n" radio.Rate_model.tx_power_dbm
        radio.Rate_model.freq_ghz radio.Rate_model.noise_dbm
        (antenna_to_string radio.Rate_model.tx_antenna)
        (antenna_to_string radio.Rate_model.rx_antenna);
      pf "snr";
      List.iter
        (fun { Rate_model.rate_mbps; min_snr_db } ->
          pf " %.17g:%.17g" rate_mbps min_snr_db)
        radio.Rate_model.snr_tiers;
      pf "\n");
  pf "sessions";
  Array.iter (fun s -> pf " %.17g" (Session.rate_mbps s)) sc.Scenario.sessions;
  pf "\n";
  Array.iter
    (fun (p : Point.t) -> pf "ap %.17g %.17g\n" p.Point.x p.Point.y)
    sc.Scenario.ap_pos;
  Array.iteri
    (fun u (p : Point.t) ->
      pf "user %.17g %.17g %d\n" p.Point.x p.Point.y
        sc.Scenario.user_session.(u))
    sc.Scenario.user_pos;
  Buffer.contents buf

exception Parse_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

let of_string text =
  let lines =
    String.split_on_char '\n' text
    |> List.map String.trim
    |> List.filter (fun l -> l <> "" && not (String.length l > 0 && l.[0] = '#'))
  in
  let float_of s =
    match float_of_string_opt s with
    | Some f -> f
    | None -> fail "bad float %S" s
  in
  let int_of s =
    match int_of_string_opt s with
    | Some i -> i
    | None -> fail "bad int %S" s
  in
  let area = ref None and budget = ref None in
  let rates = ref None and sessions = ref None in
  let aps = ref [] and users = ref [] in
  let loss = ref None and shadow = ref None in
  let radio = ref None and snr = ref None in
  let ver =
    match lines with
    | header :: _ -> (
        match String.split_on_char ' ' header with
        | [ "wlan-mcast-scenario"; v ] when int_of v >= 1 && int_of v <= version
          ->
            int_of v
        | [ "wlan-mcast-scenario"; v ] -> fail "unsupported version %s" v
        | _ -> fail "missing header")
    | [] -> fail "empty scenario file"
  in
  let antenna_of s =
    match String.split_on_char ':' s with
    | [ "iso" ] -> Rate_model.Isotropic
    | [ "par"; g ] -> Rate_model.Parabolic { gain_dbi = float_of g }
    | _ -> fail "bad antenna %S (want iso or par:<gain_dbi>)" s
  in
  List.iteri
    (fun i line ->
      if i > 0 then
        match String.split_on_char ' ' line with
        | [ "area"; w; h ] -> area := Some (float_of w, float_of h)
        | [ "budget"; b ] -> budget := Some (float_of b)
        | [ "model"; "friis" ] when ver >= 2 -> loss := Some Rate_model.Friis
        | [ "model"; "two-ray"; ht; hr ] when ver >= 2 ->
            loss :=
              Some
                (Rate_model.Two_ray
                   { ap_height_m = float_of ht; user_height_m = float_of hr })
        | [ "model"; "log-distance"; n ] when ver >= 2 ->
            loss :=
              Some
                (Rate_model.Log_distance
                   { exponent = float_of n; shadowing = None })
        | [ "shadow"; sigma; seed ] when ver >= 2 ->
            shadow := Some { Rate_model.sigma_db = float_of sigma; seed = int_of seed }
        | [ "radio"; tx; freq; noise; ta; ra ] when ver >= 2 ->
            radio :=
              Some
                (fun snr_tiers ->
                  {
                    Rate_model.tx_power_dbm = float_of tx;
                    freq_ghz = float_of freq;
                    noise_dbm = float_of noise;
                    tx_antenna = antenna_of ta;
                    rx_antenna = antenna_of ra;
                    snr_tiers;
                  })
        | "snr" :: entries when ver >= 2 ->
            snr :=
              Some
                (List.map
                   (fun e ->
                     match String.split_on_char ':' e with
                     | [ r; s ] ->
                         { Rate_model.rate_mbps = float_of r;
                           min_snr_db = float_of s }
                     | _ -> fail "bad snr entry %S" e)
                   entries)
        | "rates" :: entries ->
            rates :=
              Some
                (List.map
                   (fun e ->
                     match String.split_on_char ':' e with
                     | [ r; t ] ->
                         let rate_mbps = float_of r in
                         let threshold_m = float_of t in
                         (* catch bad rates here with a line-level error
                            rather than deep inside Rate_table/Loads *)
                         if not (Float.is_finite rate_mbps) || rate_mbps <= 0.
                         then fail "non-positive rate in rate entry %S" e;
                         if
                           not (Float.is_finite threshold_m)
                           || threshold_m <= 0.
                         then fail "non-positive threshold in rate entry %S" e;
                         { Rate_table.rate_mbps; threshold_m }
                     | _ -> fail "bad rate entry %S" e)
                   entries)
        | "sessions" :: rs ->
            sessions :=
              Some
                (Array.of_list
                   (List.mapi
                      (fun id r ->
                        let rate_mbps = float_of r in
                        if not (Float.is_finite rate_mbps) || rate_mbps <= 0.
                        then fail "non-positive session rate %S" r;
                        Session.make ~id ~rate_mbps)
                      rs))
        | [ "ap"; x; y ] -> aps := Point.v (float_of x) (float_of y) :: !aps
        | [ "user"; x; y; s ] ->
            users := (Point.v (float_of x) (float_of y), int_of s) :: !users
        | _ -> fail "unrecognized line %S" line)
    lines;
  let require what = function Some v -> v | None -> fail "missing %s" what in
  let area_w, area_h = require "area" !area in
  let users = List.rev !users in
  let model =
    match !loss with
    | None ->
        if Option.is_some !shadow then fail "shadow line without a model line";
        if Option.is_some !radio then fail "radio line without a model line";
        if Option.is_some !snr then fail "snr line without a model line";
        None
    | Some loss ->
        let loss =
          match (loss, !shadow) with
          | Rate_model.Log_distance { exponent; shadowing = None }, Some s ->
              Rate_model.Log_distance { exponent; shadowing = Some s }
          | (Rate_model.Friis | Rate_model.Two_ray _), Some _ ->
              fail "shadow line requires a log-distance model"
          | loss, _ -> loss
        in
        let radio = (require "radio" !radio) (require "snr" !snr) in
        Some (Rate_model.Path_loss { loss; radio })
  in
  (* the same discipline as [churn_of_string]: construction-time
     validation (Rate_table.make on a hostile rates line, Scenario.make
     on an unknown session index, Rate_model.validate on a bad model)
     surfaces as Parse_error, never as a raw Invalid_argument *)
  try
    Scenario.make ~area_w ~area_h
      ~ap_pos:(Array.of_list (List.rev !aps))
      ~user_pos:(Array.of_list (List.map fst users))
      ~user_session:(Array.of_list (List.map snd users))
      ~sessions:(require "sessions" !sessions)
      ~rate_table:(Rate_table.make (require "rates" !rates))
      ?model
      ~budget:(require "budget" !budget)
      ()
  with Invalid_argument msg -> fail "%s" msg

(** {1 Churn scripts}

    Same discipline, separate stream: a churn script serializes to its
    own versioned line format so dynamic workloads ship next to — not
    inside — the static deployment they run against:

    {v
    wlan-mcast-churn 1
    at <t> join <user>
    at <t> leave <user>
    at <t> ap-fail <ap>
    at <t> ap-recover <ap>
    at <t> drift <user> <steps>
    at <t> burst <user> <user> ...
    v} *)

let churn_version = 1

let churn_to_string (cs : Churn_script.t) =
  let buf = Buffer.create 1024 in
  let pf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pf "wlan-mcast-churn %d\n" churn_version;
  List.iter
    (fun { Churn_script.time; event } ->
      pf "at %.17g " time;
      (match event with
      | Churn_script.Join { user } -> pf "join %d" user
      | Churn_script.Leave { user } -> pf "leave %d" user
      | Churn_script.Ap_fail { ap } -> pf "ap-fail %d" ap
      | Churn_script.Ap_recover { ap } -> pf "ap-recover %d" ap
      | Churn_script.Drift { user; steps } -> pf "drift %d %d" user steps
      | Churn_script.Burst { users } ->
          pf "burst";
          List.iter (pf " %d") users);
      pf "\n")
    (Churn_script.events cs);
  Buffer.contents buf

let churn_of_string text =
  let lines =
    String.split_on_char '\n' text
    |> List.map String.trim
    |> List.filter (fun l -> l <> "" && not (String.length l > 0 && l.[0] = '#'))
  in
  let float_of s =
    match float_of_string_opt s with
    | Some f -> f
    | None -> fail "bad float %S" s
  in
  let int_of s =
    match int_of_string_opt s with
    | Some i -> i
    | None -> fail "bad int %S" s
  in
  (match lines with
  | header :: _ -> (
      match String.split_on_char ' ' header with
      | [ "wlan-mcast-churn"; v ] when int_of v = churn_version -> ()
      | [ "wlan-mcast-churn"; v ] -> fail "unsupported churn version %s" v
      | _ -> fail "missing churn header")
  | [] -> fail "empty churn script");
  let events = ref [] in
  List.iteri
    (fun i line ->
      if i > 0 then
        let timed time event = { Churn_script.time; event } in
        match String.split_on_char ' ' line with
        | [ "at"; t; "join"; u ] ->
            events :=
              timed (float_of t) (Churn_script.Join { user = int_of u })
              :: !events
        | [ "at"; t; "leave"; u ] ->
            events :=
              timed (float_of t) (Churn_script.Leave { user = int_of u })
              :: !events
        | [ "at"; t; "ap-fail"; a ] ->
            events :=
              timed (float_of t) (Churn_script.Ap_fail { ap = int_of a })
              :: !events
        | [ "at"; t; "ap-recover"; a ] ->
            events :=
              timed (float_of t) (Churn_script.Ap_recover { ap = int_of a })
              :: !events
        | [ "at"; t; "drift"; u; s ] ->
            events :=
              timed (float_of t)
                (Churn_script.Drift { user = int_of u; steps = int_of s })
              :: !events
        | "at" :: t :: "burst" :: us when us <> [] ->
            events :=
              timed (float_of t)
                (Churn_script.Burst { users = List.map int_of us })
              :: !events
        | _ -> fail "unrecognized churn line %S" line)
    lines;
  try Churn_script.make (List.rev !events)
  with Invalid_argument msg -> fail "%s" msg

let churn_to_file path cs =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (churn_to_string cs))

let churn_of_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> churn_of_string (In_channel.input_all ic))

let to_file path sc =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string sc))

let of_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> of_string (In_channel.input_all ic))
