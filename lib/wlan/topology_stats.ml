(** Deployment statistics: the topology-level facts an operator (or a
    reviewer) wants before trusting any association result — coverage,
    overlap (the paper's whole premise is "dense deployments have
    overlapping coverage worth exploiting"), link-rate mix, and
    per-session audience sizes. *)

type t = {
  n_aps : int;
  n_users : int;
  covered_users : int;
  mean_user_degree : float;  (** mean APs in range per covered user *)
  max_user_degree : int;
  multi_covered_users : int;  (** users with >= 2 APs in range *)
  mean_best_rate : float;  (** mean best link rate per covered user (Mbps) *)
  rate_histogram : (float * int) list;
      (** distinct best-link rates -> user counts, highest rate first *)
  session_audience : int array;  (** session index -> subscriber count *)
}

let of_problem p =
  let _, n_users = Problem.dims p in
  let covered = Problem.coverable_users p in
  let degrees = List.map (fun u -> List.length (Problem.neighbor_aps p u)) covered in
  let best_rates =
    List.map
      (fun u ->
        List.fold_left
          (fun acc a -> Float.max acc (Problem.link_rate p ~ap:a ~user:u))
          0. (Problem.neighbor_aps p u))
      covered
  in
  let n_cov = List.length covered in
  let fcov = float_of_int (Int.max 1 n_cov) in
  let histogram =
    let tbl = Hashtbl.create 8 in
    List.iter
      (fun r ->
        Hashtbl.replace tbl r (1 + Option.value ~default:0 (Hashtbl.find_opt tbl r)))
      best_rates;
    Hashtbl.fold (fun r c acc -> (r, c) :: acc) tbl []
    |> List.sort (fun (a, _) (b, _) -> Float.compare b a)
  in
  let session_audience = Array.make (Problem.n_sessions p) 0 in
  for u = 0 to n_users - 1 do
    let s = Problem.user_session p u in
    session_audience.(s) <- session_audience.(s) + 1
  done;
  {
    n_aps = fst (Problem.dims p);
    n_users;
    covered_users = n_cov;
    mean_user_degree =
      float_of_int (List.fold_left ( + ) 0 degrees) /. fcov;
    max_user_degree = List.fold_left Int.max 0 degrees;
    multi_covered_users =
      List.length (List.filter (fun d -> d >= 2) degrees);
    mean_best_rate = List.fold_left ( +. ) 0. best_rates /. fcov;
    rate_histogram = histogram;
    session_audience;
  }

(** Fraction of covered users that could be moved off their strongest AP —
    the overlap the paper's association control exploits. *)
let reassignable_fraction t =
  if t.covered_users = 0 then 0.
  else float_of_int t.multi_covered_users /. float_of_int t.covered_users

let pp ppf t =
  Fmt.pf ppf
    "@[<v>deployment: %d APs, %d users (%d covered, %.1f%%)@,\
     coverage overlap: mean %.1f APs/user, max %d; %d users (%.0f%%) have \
     an alternative AP@,\
     best link rates: mean %.1f Mbps; histogram %a@,\
     session audiences: %a@]"
    t.n_aps t.n_users t.covered_users
    (100. *. float_of_int t.covered_users /. float_of_int (Int.max 1 t.n_users))
    t.mean_user_degree t.max_user_degree t.multi_covered_users
    (100. *. reassignable_fraction t)
    t.mean_best_rate
    Fmt.(hbox (list ~sep:sp (fun ppf (r, c) -> pf ppf "%g:%d" r c)))
    t.rate_histogram
    Fmt.(hbox (array ~sep:sp int))
    t.session_audience
