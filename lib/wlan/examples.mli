(** The paper's worked examples and NP-hardness constructions as problem
    instances — the fixtures the test suite replays step by step. *)

(** {1 Figure 1} — two APs, five users; u1,u3 request s1, u2,u4,u5 request
    s2; budget 1. Link rates: a1 -> 3,6,4,4,4; a2 -> -,-,5,5,3. *)

val fig1_rates : float array array
val fig1_user_session : int array

(** Figure 1 with both session rates set to [session_rate_mbps] (3 for the
    MNU walk-through, 1 for BLA/MLA). *)
val fig1 : session_rate_mbps:float -> Problem.t

(** {1 Figure 4} — the simultaneous-decision oscillation example: four
    users of one 1 Mbps session between two APs. *)

val fig4 : Problem.t

(** Figure 4's initial association: u1,u2 -> a1; u3,u4 -> a2. *)
val fig4_initial : Association.t

(** {1 NP-hardness constructions} (Appendix A–C): the equivalent
    association-control instance of each source problem. *)

(** Appendix A: Subset Sum -> MNU (single AP whose budget is the scaled
    target; number [g_i] becomes a session with [g_i] unit-rate users). *)
val of_subset_sum : numbers:int list -> target:int -> Problem.t

(** Appendix B: Minimum Makespan -> BLA ([machines] APs at one unit rate,
    job [i] a single-user session with scaled load [p_i]). *)
val of_makespan : jobs:float list -> machines:int -> Problem.t

(** Appendix C: cardinality Set Cover -> MLA (AP [j] reaches exactly the
    users in subset [j]; one session of load [cost] over unit links). *)
val of_set_cover :
  n_users:int -> subsets:int list list -> cost:float -> Problem.t
