(** Planar geometry for node placement. Coordinates in meters. *)

type t = { x : float; y : float }

val v : float -> float -> t
val origin : t
val dist2 : t -> t -> float

(** Euclidean distance in meters. *)
val dist : t -> t -> float

(** [within r a b] is true when [a] and [b] are at most [r] meters apart. *)
val within : float -> t -> t -> bool

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

(** Uniform random point in the [w] × [h] rectangle anchored at the
    origin. *)
val random : rng:Random.State.t -> w:float -> h:float -> t
