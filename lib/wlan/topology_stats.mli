(** Deployment statistics: coverage, overlap (the slack association
    control exploits), link-rate mix and session audiences. *)

type t = {
  n_aps : int;
  n_users : int;
  covered_users : int;
  mean_user_degree : float;  (** mean APs in range per covered user *)
  max_user_degree : int;
  multi_covered_users : int;  (** users with >= 2 APs in range *)
  mean_best_rate : float;  (** mean best link rate per covered user (Mbps) *)
  rate_histogram : (float * int) list;
      (** distinct best-link rates -> user counts, highest first *)
  session_audience : int array;  (** session index -> subscriber count *)
}

val of_problem : Problem.t -> t

(** Fraction of covered users with at least one alternative AP. *)
val reassignable_fraction : t -> float

val pp : Format.formatter -> t -> unit
