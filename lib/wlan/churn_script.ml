(** Declarative churn & fault-injection scripts.

    A script is a time-ordered list of network dynamics — users arriving
    and departing, APs failing and recovering, link quality drifting
    between 802.11a rate tiers, and burst arrivals — that the simulator's
    churn engine ([Wlan_sim.Churn]) compiles into its event queue. The
    script itself is pure data: it names {e what} happens and {e when},
    never how the online association layer reacts, so the same script can
    be replayed against every algorithm variant and the outputs diffed.

    Events at the same timestamp form one {e step}: the engine applies
    all their deltas atomically and re-converges once, which is how
    Fig. 4-style simultaneous moves are scripted. Within a step, events
    apply in script order. *)

type event =
  | Join of { user : int }  (** an absent user arrives (no-op if present) *)
  | Leave of { user : int }  (** a present user departs (no-op if absent) *)
  | Ap_fail of { ap : int }
      (** the AP goes dark: members are detached, it answers no queries *)
  | Ap_recover of { ap : int }  (** the AP comes back with no members *)
  | Drift of { user : int; steps : int }
      (** every link of [user] shifts [steps] rate tiers ([> 0] = faster);
          a link pushed below the lowest tier is lost (rate 0) *)
  | Burst of { users : int list }
      (** simultaneous arrivals, equivalent to one [Join] per user within
          the same step *)

type timed = { time : float; event : event }

(** Events in nondecreasing time order (the constructors guarantee it). *)
type t = { events : timed list }

let events t = t.events
let length t = List.length t.events

let pp_event ppf = function
  | Join { user } -> Fmt.pf ppf "join u%d" user
  | Leave { user } -> Fmt.pf ppf "leave u%d" user
  | Ap_fail { ap } -> Fmt.pf ppf "ap-fail a%d" ap
  | Ap_recover { ap } -> Fmt.pf ppf "ap-recover a%d" ap
  | Drift { user; steps } -> Fmt.pf ppf "drift u%d %+d" user steps
  | Burst { users } ->
      Fmt.pf ppf "burst %a" Fmt.(list ~sep:sp (fmt "u%d")) users

let pp_timed ppf { time; event } = Fmt.pf ppf "%.6f %a" time pp_event event

let pp ppf t =
  Fmt.pf ppf "@[<v>%a@]" Fmt.(list ~sep:cut pp_timed) t.events

(** [make events] sorts stably by time (script order is preserved among
    same-time events, which is also their application order).
    @raise Invalid_argument on negative or non-finite times. *)
(* Map a live rate to its position on the tier ladder (descending): the
   nearest tier, ties toward the faster one — scenario-built instances
   sit exactly on a tier, hand-written ones snap to the closest. Shared
   by the churn engine and the serve daemon so a [Drift] event means the
   same thing in both. *)
let drifted_rate ~tiers rate steps =
  let arr = Array.of_list tiers in
  let n = Array.length arr in
  if n = 0 || rate <= 0. then rate
  else begin
    let best = ref 0 in
    for i = 1 to n - 1 do
      if Float.abs (arr.(i) -. rate) < Float.abs (arr.(!best) -. rate) then
        best := i
    done;
    (* steps > 0 = faster = smaller index; clamp at the top tier, fall
       off the bottom to 0 (link lost) *)
    let i = !best - steps in
    if i < 0 then arr.(0) else if i >= n then 0. else arr.(i)
  end

let make events =
  List.iter
    (fun { time; _ } ->
      if not (Float.is_finite time) || time < 0. then
        Fmt.kstr invalid_arg "Churn_script.make: bad event time %g" time)
    events;
  { events = List.stable_sort (fun a b -> Float.compare a.time b.time) events }

(** [validate ~n_aps ~n_users t] checks every index against the topology
    dimensions. @raise Invalid_argument on out-of-range users or APs. *)
let validate ~n_aps ~n_users t =
  let fail fmt = Fmt.kstr invalid_arg ("Churn_script.validate: " ^^ fmt) in
  let user u = if u < 0 || u >= n_users then fail "unknown user %d" u in
  let ap a = if a < 0 || a >= n_aps then fail "unknown AP %d" a in
  List.iter
    (fun { event; _ } ->
      match event with
      | Join { user = u } | Leave { user = u } -> user u
      | Ap_fail { ap = a } | Ap_recover { ap = a } -> ap a
      | Drift { user = u; _ } -> user u
      | Burst { users } -> List.iter user users)
    t.events;
  t

(** Last event time, [0.] for an empty script. *)
let duration t =
  List.fold_left (fun acc { time; _ } -> Float.max acc time) 0. t.events

(** Steps: events grouped by exactly equal timestamps, chronological,
    script order within a step. This is the unit the engine applies
    atomically before re-converging. *)
let steps t =
  let rec group = function
    | [] -> []
    | e :: rest ->
        let same, later =
          List.partition (fun e' -> Float.equal e'.time e.time) rest
        in
        (e.time, List.map (fun e' -> e'.event) (e :: same)) :: group later
  in
  group t.events

(** {1 Random scripts}

    A seeded generator for fuzzing and the churn experiment driver. All
    draws come from the caller's [rng] (the PR-1 split discipline: split a
    per-run state from the master seed before dispatch, never share a
    stream across pool jobs). *)

type gen_config = {
  n_events : int;
  duration : float;  (** events drawn uniformly over [0, duration] *)
  join_weight : int;
  leave_weight : int;
  fail_weight : int;
  recover_weight : int;
  drift_weight : int;
  burst_weight : int;
  max_burst : int;  (** users per burst, >= 1 *)
}

let default_gen =
  {
    n_events = 20;
    duration = 60.;
    join_weight = 4;
    leave_weight = 4;
    fail_weight = 1;
    recover_weight = 1;
    drift_weight = 2;
    burst_weight = 1;
    max_burst = 4;
  }

(** [random ~rng ~n_aps ~n_users cfg] draws [cfg.n_events] events with the
    configured kind weights. Purely random: the script may contain no-op
    events (joining a present user, failing a dead AP) — the engine treats
    those as no-ops, so every generated script is replayable. *)
let random ~rng ~n_aps ~n_users (cfg : gen_config) =
  if n_users <= 0 then make []
  else begin
    let weights =
      [
        (cfg.join_weight, `Join);
        (cfg.leave_weight, `Leave);
        ((if n_aps > 0 then cfg.fail_weight else 0), `Fail);
        ((if n_aps > 0 then cfg.recover_weight else 0), `Recover);
        (cfg.drift_weight, `Drift);
        (cfg.burst_weight, `Burst);
      ]
      |> List.filter (fun (w, _) -> w > 0)
    in
    let total = List.fold_left (fun acc (w, _) -> acc + w) 0 weights in
    let pick_kind () =
      let x = Random.State.int rng (Int.max 1 total) in
      let rec go acc = function
        | [] -> `Join
        | (w, k) :: rest -> if x < acc + w then k else go (acc + w) rest
      in
      go 0 weights
    in
    let user () = Random.State.int rng n_users in
    let event () =
      match pick_kind () with
      | `Join -> Join { user = user () }
      | `Leave -> Leave { user = user () }
      | `Fail -> Ap_fail { ap = Random.State.int rng n_aps }
      | `Recover -> Ap_recover { ap = Random.State.int rng n_aps }
      | `Drift ->
          let steps = Random.State.int rng 5 - 2 in
          Drift { user = user (); steps = (if steps = 0 then -1 else steps) }
      | `Burst ->
          let k = 1 + Random.State.int rng (Int.max 1 cfg.max_burst) in
          Burst { users = List.init k (fun _ -> user ()) }
    in
    make
      (List.init cfg.n_events (fun _ ->
           { time = Random.State.float rng cfg.duration; event = event () }))
  end
