(** Pluggable PHY link-rate models.

    The paper reduces the PHY to Table 1: a distance-threshold ladder
    ({!Rate_table}). That reduction is one {e instance} of a link-rate
    model; this module makes the interface first-class so the solver
    comparisons can be ablated against physically-derived alternatives:

    - {!Table} — the paper's Table 1 ladder, {e bit-identical} to the
      historical compile path (rate via [Rate_table.rate_at_distance],
      signal metric [-. distance]); the pinned default everywhere.
    - {!Path_loss} — received power from a propagation model (Friis
      free-space, two-ray ground, log-distance with deterministic
      seeded per-link shadowing) plus antenna gains, mapped through an
      SNR-threshold ladder to the same 802.11 rate tiers.

    Every model exposes the same three-point contract the compile and
    simulation layers consume: {!link} (the one rate/signal predicate),
    {!max_range} (the radius beyond which [link] is [None] — the sparse
    bucket-grid cell), and {!tier_rates} (the drift ladder churn and the
    serve daemon share). Shadowing draws use the split-RNG discipline
    (a state keyed by [(seed, tag, ap, user)] per link), so compilation
    is a pure function of the scenario at any [--jobs]. *)

(** Antenna gain pattern, applied symmetrically at both link ends. *)
type antenna =
  | Isotropic  (** 0 dBi *)
  | Parabolic of { gain_dbi : float }
      (** boresight gain of a parabolic dish, assumed aligned *)

(** One rung of the SNR ladder: [rate_mbps] needs at least
    [min_snr_db]. *)
type snr_tier = { rate_mbps : float; min_snr_db : float }

type radio = {
  tx_power_dbm : float;
  freq_ghz : float;
  noise_dbm : float;  (** thermal noise + receiver noise figure *)
  tx_antenna : antenna;
  rx_antenna : antenna;
  snr_tiers : snr_tier list;
      (** strictly decreasing rates and strictly decreasing SNR
          thresholds, highest first *)
}

(** Deterministic log-normal shadowing: link [(ap, user)] draws one
    clamped (±3σ) Gaussian dB offset from an RNG keyed by
    [(seed, tag, ap, user)] — reproducible per link, independent across
    links. *)
type shadowing = { sigma_db : float; seed : int }

type path_loss =
  | Friis  (** free space: PL(d) = 20·log₁₀(4πd/λ) *)
  | Two_ray of { ap_height_m : float; user_height_m : float }
      (** Friis up to the crossover 4π·hₜ·hᵣ/λ, d⁴ ground-reflection
          decay beyond (the ns-2 TwoRayGround switch) *)
  | Log_distance of { exponent : float; shadowing : shadowing option }
      (** PL(d) = PL(1 m) + 10·n·log₁₀(d) + X_σ *)

type t =
  | Table of Rate_table.t
  | Path_loss of { loss : path_loss; radio : radio }

(** SNR thresholds for the eight 802.11a tiers (54 → 6 Mbps), from
    typical receiver-sensitivity deltas. *)
val ieee80211a_snr_tiers : snr_tier list

(** 16 dBm transmit, 5.8 GHz, −85 dBm noise floor, isotropic antennas,
    {!ieee80211a_snr_tiers} — calibrated so Friis reaches ≈ 231 m
    (Table 1 reaches 200 m). *)
val default_radio : radio

(** [Table Rate_table.default] — the paper's Table 1. *)
val default : t

val friis : ?radio:radio -> unit -> t

(** Defaults: 10 m AP height, 1.5 m user height. At 5.8 GHz that puts
    the crossover near 3.6 km — inside WLAN range two-ray {e is} Friis;
    lower heights (or frequencies) pull the d⁴ regime into reach. *)
val two_ray : ?radio:radio -> ?ap_height_m:float -> ?user_height_m:float -> unit -> t

(** Defaults: exponent 2.2, no shadowing. *)
val log_distance : ?radio:radio -> ?exponent:float -> ?shadowing:shadowing -> unit -> t

(** Check the model is well-formed (finite parameters, positive
    frequency/heights/exponent, a strictly-decreasing non-empty SNR
    ladder, non-negative gains and σ) and return it.
    @raise Invalid_argument otherwise. *)
val validate : t -> t

(** Structural equality (all parameters are floats/ints; no NaN survives
    {!validate}). *)
val equal : t -> t -> bool

val antenna_gain_dbi : antenna -> float

(** Path loss in dB at [dist] meters (near-field clamped to 1 m),
    excluding shadowing. *)
val path_loss_db : radio -> path_loss -> float -> float

(** The clamped per-link shadowing draw in dB (0 when σ = 0). *)
val shadow_db : shadowing -> ap:int -> user:int -> float

(** Received power in dBm over link [(ap, user)] at [dist] meters,
    including antenna gains and shadowing. *)
val rx_power_dbm : loss:path_loss -> radio:radio -> ap:int -> user:int -> dist:float -> float

(** The radius beyond which {!link} is [None]: the table's largest
    threshold, or the path-loss inversion at the lowest tier's SNR
    (plus the +3σ shadowing margin when shadowed). This is the sparse
    compile's bucket-grid cell size. *)
val max_range : t -> float

(** The drift tier ladder, highest rate first — [Rate_table.rates] for
    {!Table}, the SNR-ladder rates for {!Path_loss}. *)
val tier_rates : t -> float list

(** [link t ~ap ~user ~dist] is [Some (rate_mbps, signal)] when the link
    is usable, [None] beyond {!max_range} or below the lowest SNR tier.
    For {!Table} this is exactly the historical compile:
    [Rate_table.rate_at_distance] and signal [-. dist]. For
    {!Path_loss} the rate is the highest tier whose threshold the link
    SNR meets and the signal is the received power in dBm (higher =
    stronger, like [-. dist]). Guaranteed [None] whenever
    [dist > max_range t], so a bucket grid with cell [max_range] probes
    a superset of every usable link. *)
val link : t -> ap:int -> user:int -> dist:float -> (float * float) option

(** The signal value a dense compile installs for an out-of-range pair:
    [-. dist] for {!Table} (the historical matrix) and [neg_infinity]
    for {!Path_loss} (matching what a sparse instance reconstructs). *)
val dead_signal : t -> dist:float -> float

(** Short stable identifier: ["table"], ["friis"], ["two-ray"],
    ["log-distance"] — used by figure/bench row labels. *)
val name : t -> string

val pp : Format.formatter -> t -> unit
