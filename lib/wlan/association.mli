(** User-to-AP association state: a dense array mapping every user to its
    serving AP, or {!none} for unserved users. The representation is
    exposed (it is the lingua franca between the algorithms, the
    simulator and the tests); treat it as owned by whoever created it. *)

type t = int array

val none : int

(** Fresh association with every user unserved. *)
val empty : n_users:int -> t

val copy : t -> t
val ap_of : t -> int -> int option
val is_served : t -> int -> bool
val serve : t -> user:int -> ap:int -> unit
val unserve : t -> user:int -> unit

(** Number of users currently served. *)
val served_count : t -> int

val served_users : t -> int list
val unserved_users : t -> int list

(** Users associated with a given AP. *)
val users_of : t -> ap:int -> int list

val equal : t -> t -> bool

(** Every served user is in range of its AP. *)
val in_range_ok : Problem.t -> t -> bool

val pp : Format.formatter -> t -> unit
