(** Active scanning: every user broadcasts a probe request; each AP in
    range answers after a processing delay plus deterministic jitter.
    When the last response lands the user knows its neighbor APs, signal
    strengths and link rates. *)

type neighbor = { ap : int; link_rate_mbps : float; signal : float }

type result = neighbor list array  (** per user *)

type config = {
  probe_at : float;  (** when users send probe requests *)
  response_base : float;  (** AP processing delay before responding *)
  response_jitter : float;  (** max extra uniform jitter *)
}

val default_config : config

(** Schedule the scan; [on_complete] fires (as a simulation event) once
    every expected probe response has been received. *)
val start :
  Engine.t ->
  ?config:config ->
  ?trace:Trace.t ->
  Radio.t ->
  on_complete:(result -> unit) ->
  unit

(** Sort each user's neighbors strongest-signal-first (ties by AP
    index). *)
val sort_by_signal : result -> result
