(** A binary min-heap of timestamped events. Ties in time break by
    insertion order, so simultaneous events fire in the order they were
    scheduled — the determinism a discrete-event simulator needs. *)

type 'a t

val create : unit -> 'a t
val size : 'a t -> int
val is_empty : 'a t -> bool

(** [push t ~time payload] schedules at [time].
    @raise Invalid_argument on negative or non-finite times. *)
val push : 'a t -> time:float -> 'a -> unit

val peek_time : 'a t -> float option

(** Pop the earliest event as [(time, payload)]. *)
val pop : 'a t -> (float * 'a) option
