(** The churn engine: replay a declarative {!Wlan_model.Churn_script}
    against a live network ({!Mcast_core.Distributed.Online}) through the
    discrete-event {!Engine}, measuring per-step disruption.

    Each same-timestamp event group fires as one atomic step followed by
    one settle to quiescence. Runs are deterministic: a pure function of
    (problem, script, objective, mode, init) — no randomness, ascending
    index order everywhere. *)

open Wlan_model
open Mcast_core

(** Disruption record of one quiescence: the initial convergence
    ([events = 0]) or one script step. *)
type step = {
  time : float;
  events : int;  (** script events applied in this step *)
  reassociated : int;  (** users whose serving AP changed while settling *)
  interrupted : int;
      (** sessions forcibly cut by this step's deltas: members detached
          by AP failures plus serving links lost to rate drift *)
  rounds : int;  (** decision rounds to quiescence *)
  moves : int;
  converged : bool;
  oscillated : bool;
  total_load : float;  (** network load at quiescence *)
  max_load : float;  (** peak AP load at quiescence *)
  opt_total_load : float;
      (** total load of a fresh sequential solve of the effective static
          instance; [nan] when the baseline is disabled *)
  opt_max_load : float;  (** peak load of the fresh solve; [nan] if off *)
}

(** Overshoot against the fresh static solve — negative when churn
    history beats the greedy static rule; [nan] if the baseline was
    disabled. *)
val total_overshoot : step -> float

val peak_overshoot : step -> float

type outcome = {
  steps : step list;  (** chronological; head is the initial convergence *)
  assoc : Association.t;  (** final association (a copy) *)
  loads : float array;
      (** final per-AP loads as the incremental tracker cached them — the
          quiescence oracle pins these bit-for-bit to a fresh recompute *)
  effective : Problem.t;  (** final effective static instance *)
  trace : Trace.t;
  total_rounds : int;
  total_moves : int;
  total_reassociated : int;
  total_interrupted : int;
  oscillated : bool;  (** any settle oscillated *)
}

(** [run ~objective ~script p] converges the network once (the head
    {!step}), then replays the script step by step.

    - [mode] (default [`Sequential]) is the settle discipline;
      [`Simultaneous] reproduces Fig. 4-style oscillation under
      simultaneous moves.
    - [tiers] is the rate ladder drift moves along (descending; default
      [Problem.distinct_rates p] — the ladder the instance actually
      uses, the same derivation the serve daemon's config defaults to).
      Pass the scenario's full {!Wlan_model.Rate_model.tier_rates}
      ladder when rungs unused by the instance must stay reachable.
    - [baseline] (default true) runs a fresh sequential static solve of
      the effective instance after every step for the overshoot
      metrics; disable to make long replays cheap.
    - [trace] appends to a caller-supplied log instead of a fresh one.

    @raise Invalid_argument if the script references out-of-range
    users or APs. *)
val run :
  ?init:Association.t ->
  ?mode:[ `Sequential | `Simultaneous ] ->
  ?max_rounds:int ->
  ?trace:Trace.t ->
  ?baseline:bool ->
  ?tiers:float list ->
  objective:Distributed.objective ->
  script:Churn_script.t ->
  Problem.t ->
  outcome
