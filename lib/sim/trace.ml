(** Simulation event traces: a bounded log of (time, kind, detail) records
    for assertions in tests and for debugging protocol runs. *)

type kind =
  | Probe_request of { user : int }
  | Probe_response of { ap : int; user : int }
  | Query of { user : int; ap : int }
  | Query_response of { ap : int; user : int }
  | Associate of { user : int; ap : int }
  | Disassociate of { user : int; ap : int }
  | Frame of { ap : int; session : int; airtime : float }
  | Decision of { user : int; moved : bool }
  | Mark of string
  | Arrive of { user : int }  (** churn: a user enters the network *)
  | Depart of { user : int; ap : int }
      (** churn: a user leaves; [ap] is its serving AP, or
          [Wlan_model.Association.none] if it was unserved *)
  | Ap_down of { ap : int; detached : int }
      (** churn: AP failure, [detached] members forcibly unserved *)
  | Ap_up of { ap : int }  (** churn: AP recovery *)
  | Rate_drift of { user : int; steps : int }
      (** churn: every link of [user] shifted [steps] rate tiers *)
  | Settle of {
      rounds : int;
      moves : int;
      reassociated : int;
      oscillated : bool;
    }  (** churn: one re-convergence to quiescence *)

type record = { time : float; kind : kind }

type t = { mutable records : record list; mutable count : int; limit : int }

let create ?(limit = 200_000) () = { records = []; count = 0; limit }

let log t ~time kind =
  if t.count < t.limit then begin
    t.records <- { time; kind } :: t.records;
    t.count <- t.count + 1
  end

(** Records in chronological order. *)
let records t = List.rev t.records

let count t = t.count

let filter t pred = List.filter pred (records t)

let count_kind t pred = List.length (filter t (fun r -> pred r.kind))

let pp_kind ppf = function
  | Probe_request { user } -> Fmt.pf ppf "probe-req u%d" user
  | Probe_response { ap; user } -> Fmt.pf ppf "probe-rsp a%d->u%d" ap user
  | Query { user; ap } -> Fmt.pf ppf "query u%d->a%d" user ap
  | Query_response { ap; user } -> Fmt.pf ppf "query-rsp a%d->u%d" ap user
  | Associate { user; ap } -> Fmt.pf ppf "assoc u%d->a%d" user ap
  | Disassociate { user; ap } -> Fmt.pf ppf "disassoc u%d-/->a%d" user ap
  | Frame { ap; session; airtime } ->
      Fmt.pf ppf "frame a%d s%d %.6fs" ap session airtime
  | Decision { user; moved } ->
      Fmt.pf ppf "decision u%d %s" user (if moved then "moved" else "stayed")
  | Mark s -> Fmt.pf ppf "mark %s" s
  | Arrive { user } -> Fmt.pf ppf "arrive u%d" user
  | Depart { user; ap } ->
      if ap < 0 then Fmt.pf ppf "depart u%d unserved" user
      else Fmt.pf ppf "depart u%d from a%d" user ap
  | Ap_down { ap; detached } ->
      Fmt.pf ppf "ap-down a%d detached %d" ap detached
  | Ap_up { ap } -> Fmt.pf ppf "ap-up a%d" ap
  | Rate_drift { user; steps } -> Fmt.pf ppf "drift u%d %+d" user steps
  | Settle { rounds; moves; reassociated; oscillated } ->
      Fmt.pf ppf "settle rounds %d moves %d reassoc %d%s" rounds moves
        reassociated
        (if oscillated then " oscillated" else "")

let pp_record ppf r = Fmt.pf ppf "%.6f %a" r.time pp_kind r.kind

(** The whole log as text, one record per line, chronological — the byte
    stream the golden-trace regression tests digest. *)
let to_string t =
  let buf = Buffer.create 4096 in
  List.iter
    (fun r -> Buffer.add_string buf (Fmt.str "%a\n" pp_record r))
    (records t);
  Buffer.contents buf
