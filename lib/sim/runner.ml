(** End-to-end simulation runs: scan → associate (under a policy) → stream
    → measure. This is the harness that replaces the paper's ns-2 setup.

    Phases:
    + {b Scanning} — active probe scan (see {!Scanning}); users learn their
      neighbor APs, link rates and signal strengths.
    + {b Association} — per the policy: SSA joins the strongest AP with
      admission control; the distributed policies run the query/response
      protocol of {!Proto} in passes (sequential, one user at a time, or
      simultaneous, everyone deciding on the same snapshot); [Static]
      installs a precomputed association (how the centralized algorithms
      are deployed: computed offline, pushed to users).
    + {b Streaming} — every served (AP, session) pair transmits periodic
      multicast frames ({!Mac}); per-AP airtime over the window gives the
      measured load, which the tests cross-check against Definition 1. *)

open Wlan_model

let src = Logs.Src.create "wlansim.runner" ~doc:"End-to-end simulation runs"

module Log = (val Logs.src_log src : Logs.LOG)

type mode = Sequential | Simultaneous

type policy =
  | Ssa_policy
  | Distributed_policy of {
      objective : Mcast_core.Distributed.objective;
      mode : mode;
      max_passes : int;
    }
  | Static_policy of Association.t

(** Snapshot taken at the end of each association pass — the convergence
    curve of the protocol. *)
type pass_stats = {
  pass : int;
  served : int;
  total_load : float;
  moves_in_pass : int;
}

type report = {
  problem : Problem.t;
  assoc : Association.t;
  solution : Mcast_core.Solution.t;
  analytic_loads : float array;  (** Definition 1 on the final association *)
  measured_loads : float array;  (** airtime counted by the MAC *)
  passes : int;
  pass_history : pass_stats list;  (** chronological, one per pass *)
  converged : bool;
  oscillated : bool;
  events : int;  (** simulation events processed *)
  sim_time : float;
  trace : Trace.t;
}

(* message timing *)
let query_proc = 1e-3
let user_slot = 10e-3 (* sequential decision slot per user *)

(** [run ~policy sc] simulates the whole pipeline on scenario [sc].

    [init], when given, is installed as the starting association right
    after scanning (users already associated from a previous epoch); users
    whose old AP is no longer within range are left unserved and rejoin
    through the protocol.

    [loss_rate] drops each protocol query/response exchange independently
    with that probability (deterministically from [seed]); the distributed
    decision rule degrades gracefully to the neighbors it heard from.

    [unicast_demands], when given (one Mbps figure per user), adds dual
    association's unicast side to the streaming phase: each user pulls its
    demand from its strongest-signal AP, so [measured_loads] then reports
    the {e combined} unicast+multicast airtime per AP.

    [disabled_aps] models failed or administratively-down APs: they never
    answer probes, so no user can discover or associate with them (users
    arriving with a stale [init] association to a dead AP rejoin through
    the protocol). *)
let run ?(seed = 0) ?(mac = Mac.default_config) ?(streaming_window = 1.0)
    ?(trace_limit = 200_000) ?(loss_rate = 0.) ?unicast_demands
    ?(disabled_aps = []) ?init ~policy (sc : Scenario.t) =
  let p = Scenario.to_problem sc in
  let radio = Radio.of_scenario sc in
  let engine = Engine.create ~seed () in
  let trace = Trace.create ~limit:trace_limit () in
  let n_aps = Scenario.n_aps sc and n_users = Scenario.n_users sc in
  let session_rates = Array.map Session.rate_mbps sc.Scenario.sessions in
  let user_session = sc.Scenario.user_session in
  let aps = Array.init n_aps Proto.ap_create in
  let assoc = Association.empty ~n_users in
  (* incremental mirror of [assoc]; all (dis)associations go through it so
     per-pass load snapshots never rescan the user population *)
  let tracker = Loads.Tracker.create p assoc in
  let neighbors : Proto.neighbor_info list array = Array.make n_users [] in
  let passes = ref 0 and converged = ref false and oscillated = ref false in
  let history = ref [] in
  let snapshot_pass moves_in_pass =
    history :=
      {
        pass = !passes;
        served = Association.served_count assoc;
        total_load = Loads.Tracker.total_load tracker;
        moves_in_pass;
      }
      :: !history
  in
  let assoc_done = ref 0. in

  let link_rate u a =
    (List.find (fun (n : Proto.neighbor_info) -> n.ap = a) neighbors.(u))
      .Proto.link_rate
  in
  let apply_move u target =
    (match Association.ap_of assoc u with
    | Some old when old <> target ->
        Proto.ap_leave aps.(old) ~user:u;
        Trace.log trace ~time:(Engine.now engine)
          (Trace.Disassociate { user = u; ap = old })
    | _ -> ());
    if Association.ap_of assoc u <> Some target then begin
      Proto.ap_join aps.(target) ~user:u ~session:user_session.(u)
        ~link_rate:(link_rate u target);
      Loads.Tracker.move tracker ~user:u ~ap:target;
      Trace.log trace ~time:(Engine.now engine)
        (Trace.Associate { user = u; ap = target })
    end
  in

  (* one user's query -> responses -> decision; [commit] receives the
     decision once all responses have arrived *)
  let query_and_decide ~objective u ~commit =
    let resps = ref [] in
    let pending = ref (List.length neighbors.(u)) in
    if !pending = 0 then commit None
    else begin
      let finish () =
        decr pending;
        if !pending = 0 then
          commit
            (Proto.decide ~objective ~session_rates
               ~session:user_session.(u)
               ~current:(Association.ap_of assoc u)
               ~neighbors:neighbors.(u) ~responses:!resps)
      in
      List.iter
        (fun (n : Proto.neighbor_info) ->
          Trace.log trace ~time:(Engine.now engine)
            (Trace.Query { user = u; ap = n.ap });
          let lost =
            loss_rate > 0.
            && Random.State.float (Engine.rng engine) 1. < loss_rate
          in
          if lost then
            (* the user gives this AP up after a response timeout *)
            Engine.after engine ~delay:5e-3 finish
          else begin
            let rtt =
              (2. *. Radio.propagation_delay radio ~ap:n.ap ~user:u)
              +. query_proc
              +. Engine.jitter engine ~max:0.5e-3
            in
            Engine.after engine ~delay:rtt (fun () ->
                Trace.log trace ~time:(Engine.now engine)
                  (Trace.Query_response { ap = n.ap; user = u });
                resps :=
                  Proto.ap_answer aps.(n.ap) ~session_rates
                    ~budget:(Problem.ap_budget p n.ap) ~user:u
                  :: !resps;
                finish ())
          end)
        neighbors.(u)
    end
  in

  (* association phase entry point, invoked after scanning completes *)
  let start_association () =
    (match init with
    | Some a ->
        Array.iteri
          (fun u ap ->
            (* a user may have moved out of its old AP's range since the
               previous epoch; it rejoins through the protocol instead *)
            let still_in_range =
              ap >= 0
              && List.exists
                   (fun (n : Proto.neighbor_info) -> n.Proto.ap = ap)
                   neighbors.(u)
            in
            if still_in_range then apply_move u ap)
          a
    | None -> ());
    let t0 = Engine.now engine in
    match policy with
    | Static_policy a ->
        Array.iteri (fun u ap -> if ap >= 0 then apply_move u ap) a;
        converged := true;
        assoc_done := t0 +. 1e-3;
        passes := 1
    | Ssa_policy ->
        (* users join their strongest AP in index order; the AP admits the
           user only if its budget allows (no fallback to weaker APs) *)
        for u = 0 to n_users - 1 do
          Engine.schedule engine
            ~at:(t0 +. (float_of_int u *. user_slot))
            (fun () ->
              match neighbors.(u) with
              | [] -> ()
              | best :: _ ->
                  let st = aps.(best.Proto.ap) in
                  Proto.ap_join st ~user:u ~session:user_session.(u)
                    ~link_rate:best.Proto.link_rate;
                  if
                    Proto.ap_load st ~session_rates
                    <= Problem.ap_budget p best.Proto.ap +. 1e-12
                  then begin
                    Loads.Tracker.move tracker ~user:u ~ap:best.Proto.ap;
                    Trace.log trace ~time:(Engine.now engine)
                      (Trace.Associate { user = u; ap = best.Proto.ap })
                  end
                  else Proto.ap_leave st ~user:u)
        done;
        converged := true;
        passes := 1;
        assoc_done := t0 +. (float_of_int n_users *. user_slot)
    | Distributed_policy { objective; mode; max_passes } ->
        let seen = Hashtbl.create 64 in
        let rec pass k t_pass =
          passes := k;
          let moves = ref 0 in
          let pending_decisions = ref [] in
          let decided = ref 0 in
          let finish_pass () =
            (match mode with
            | Sequential -> ()
            | Simultaneous ->
                (* apply the snapshot decisions all at once; a state seen
                   before (after a round that did move someone) means the
                   protocol is cycling *)
                List.iter (fun (u, ap) -> apply_move u ap) !pending_decisions;
                moves := List.length !pending_decisions;
                if !moves > 0 then begin
                  let key = Array.to_list assoc in
                  if Hashtbl.mem seen key then oscillated := true
                  else Hashtbl.replace seen key ()
                end);
            snapshot_pass !moves;
            let t_next = Engine.now engine +. user_slot in
            if !moves = 0 then begin
              converged := true;
              assoc_done := t_next
            end
            else if k >= max_passes || !oscillated then assoc_done := t_next
            else pass (k + 1) t_next
          in
          for u = 0 to n_users - 1 do
            let at =
              match mode with
              | Sequential -> t_pass +. (float_of_int u *. user_slot)
              | Simultaneous -> t_pass
            in
            Engine.schedule engine ~at (fun () ->
                query_and_decide ~objective u ~commit:(fun d ->
                    Trace.log trace ~time:(Engine.now engine)
                      (Trace.Decision { user = u; moved = d <> None });
                    (match (d, mode) with
                    | Some ap, Sequential ->
                        apply_move u ap;
                        incr moves
                    | Some ap, Simultaneous ->
                        pending_decisions := (u, ap) :: !pending_decisions
                    | None, _ -> ());
                    incr decided;
                    if !decided = n_users then finish_pass ()))
          done;
          if n_users = 0 then begin
            converged := true;
            assoc_done := t_pass
          end
        in
        pass 1 t0
  in

  (* phase 1: scanning *)
  Scanning.start engine ~trace radio ~on_complete:(fun results ->
      let sorted = Scanning.sort_by_signal results in
      Array.iteri
        (fun u l ->
          neighbors.(u) <-
            List.filter_map
              (fun (n : Scanning.neighbor) ->
                if List.mem n.Scanning.ap disabled_aps then None
                else
                  Some
                    {
                      Proto.ap = n.Scanning.ap;
                      link_rate = n.Scanning.link_rate_mbps;
                      signal = n.Scanning.signal;
                    })
              l)
        sorted;
      start_association ());
  ignore (Engine.run engine);

  (* phase 3: streaming over a fresh window after association settles *)
  let t_stream = !assoc_done +. 10e-3 in
  let plan =
    Mac.plan_of_association p assoc
      ~basic_rate:(Rate_table.basic_rate sc.Scenario.rate_table)
      ~config:mac
  in
  let plan =
    match unicast_demands with
    | None -> plan
    | Some demands ->
        let uni_assoc =
          Array.init n_users (fun u ->
              match neighbors.(u) with
              | [] -> -1
              | best :: _ -> best.Proto.ap)
        in
        plan
        @ Mac.unicast_plan ~assoc:uni_assoc ~demands ~link_rate:(fun a u ->
              Problem.link_rate p ~ap:a ~user:u)
  in
  let acc =
    Mac.start engine ~config:mac ~trace ~n_aps
      ~window:(t_stream, t_stream +. streaming_window)
      plan
  in
  let sim_time = Engine.run engine in
  if !history = [] && !passes > 0 then snapshot_pass 0;
  let solution = Mcast_core.Solution.make ~algorithm:"simulated" p assoc in
  Log.debug (fun m ->
      m
        "run done: %d events, %.3fs virtual, passes %d, converged %b, \
         oscillated %b, served %d"
        (Engine.processed engine) sim_time !passes !converged !oscillated
        solution.Mcast_core.Solution.satisfied);
  {
    problem = p;
    assoc;
    solution;
    analytic_loads = Loads.ap_loads p assoc;
    measured_loads = Mac.measured_loads acc;
    passes = !passes;
    pass_history = List.rev !history;
    converged = !converged;
    oscillated = !oscillated;
    events = Engine.processed engine;
    sim_time;
    trace;
  }
