(** MAC-layer multicast airtime accounting.

    During the streaming phase each AP transmits every session it serves as
    a periodic stream of fixed-size frames: a session at [r] Mbps with
    [frame_bits]-bit frames sends one frame every [frame_bits / r] seconds,
    and each frame occupies the medium for [frame_bits / tx_rate] seconds.
    The per-AP busy-time over the measurement window, divided by the window
    length, is the {e measured} multicast load — which must agree with
    Definition 1's analytic [session_rate / tx_rate] sum (the integration
    tests assert exactly that).

    [multi_rate = false] models stock 802.11 broadcast, where every
    multicast frame goes out at the basic rate regardless of receivers. *)

type config = {
  frame_bits : float;  (** default 12000 bits = 1500-byte frames *)
  multi_rate : bool;  (** false: always transmit at the basic rate *)
}

let default_config = { frame_bits = 12_000.; multi_rate = true }

(** One scheduled transmission: AP [ap] serves [session] (stream rate
    [session_rate_mbps]) at transmission rate [tx_rate_mbps]. Unicast
    background traffic is modeled with the same mechanics, tagged
    [session = unicast_tag] (one stream per user at its link rate). *)
type stream = {
  ap : int;
  session : int;
  session_rate_mbps : float;
  tx_rate_mbps : float;
}

let unicast_tag = -1

(** Unicast background streams for dual-association studies: user [u] with
    demand [d] Mbps pulls frames from AP [ap] over its [link_rate] link,
    costing [d / link_rate] airtime — added on top of the multicast plan. *)
let unicast_plan ~(assoc : int array) ~(demands : float array)
    ~(link_rate : int -> int -> float) =
  let streams = ref [] in
  Array.iteri
    (fun u ap ->
      if ap >= 0 && demands.(u) > 0. then begin
        let r = link_rate ap u in
        if r > 0. then
          streams :=
            {
              ap;
              session = unicast_tag;
              session_rate_mbps = demands.(u);
              tx_rate_mbps = r;
            }
            :: !streams
      end)
    assoc;
  List.rev !streams

type accounting = {
  busy : float array;  (** per-AP seconds of airtime used *)
  frames : int array;  (** per-AP frames transmitted *)
  window : float * float;
}

(** Extract the streaming plan from a problem + association: one stream per
    (AP, session) actually served, at the min-link-rate of its receivers. *)
let plan_of_association p assoc ~basic_rate ~config =
  let tx = Wlan_model.Loads.tx_rates p assoc in
  let streams = ref [] in
  Array.iteri
    (fun ap tx_row ->
      Array.iteri
        (fun session rate ->
          if rate > 0. then
            streams :=
              {
                ap;
                session;
                session_rate_mbps = Wlan_model.Problem.session_rate p session;
                tx_rate_mbps = (if config.multi_rate then rate else basic_rate);
              }
              :: !streams)
        tx_row)
    tx;
  List.rev !streams

(** Schedule the streaming phase on [engine]: every stream's frames over
    [window = (start, finish)]. Returns the accounting record, filled in as
    the engine runs. *)
let start engine ?(config = default_config) ?trace ~n_aps ~window streams =
  let start_t, finish_t = window in
  if finish_t <= start_t then invalid_arg "Mac.start: empty window";
  let acc =
    { busy = Array.make n_aps 0.; frames = Array.make n_aps 0; window }
  in
  List.iter
    (fun s ->
      let interval = s.session_rate_mbps *. 1e6 in
      let interval = config.frame_bits /. interval in
      let airtime =
        Radio.frame_airtime ~bits:config.frame_bits ~rate_mbps:s.tx_rate_mbps
      in
      let rec send_at t =
        if t < finish_t then
          Engine.schedule engine ~at:t (fun () ->
              acc.busy.(s.ap) <- acc.busy.(s.ap) +. airtime;
              acc.frames.(s.ap) <- acc.frames.(s.ap) + 1;
              Option.iter
                (fun tr ->
                  Trace.log tr ~time:t
                    (Trace.Frame { ap = s.ap; session = s.session; airtime }))
                trace;
              send_at (t +. interval))
      in
      send_at start_t)
    streams;
  acc

(** Measured load of each AP once the engine has drained the window. *)
let measured_loads acc =
  let start_t, finish_t = acc.window in
  Array.map (fun b -> b /. (finish_t -. start_t)) acc.busy
