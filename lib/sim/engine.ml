(** The discrete-event simulation engine.

    Events are closures fired at simulated times (seconds). The engine owns
    the clock, a seeded RNG for deterministic jitter, and an event counter.
    Scheduling in the past is rejected — causality is a hard error, not a
    warning. *)

type t = {
  queue : (unit -> unit) Event_queue.t;
  mutable now : float;
  rng : Random.State.t;
  mutable processed : int;
  mutable running : bool;
}

let create ?(seed = 0) () =
  {
    queue = Event_queue.create ();
    now = 0.;
    rng = Random.State.make [| seed |];
    processed = 0;
    running = false;
  }

let now t = t.now
let processed t = t.processed
let rng t = t.rng

(** [schedule t ~at f] fires [f] at absolute time [at] (>= now). *)
let schedule t ~at f =
  if at < t.now -. 1e-12 then
    Fmt.kstr invalid_arg "Engine.schedule: time %g is in the past (now %g)" at
      t.now;
  Event_queue.push t.queue ~time:(Float.max at t.now) f

(** [after t ~delay f] fires [f] [delay] seconds from now. *)
let after t ~delay f = schedule t ~at:(t.now +. delay) f

(** Uniform jitter in [0, max); deterministic for a fixed engine seed. *)
let jitter t ~max = if max <= 0. then 0. else Random.State.float t.rng max

(** Run until the queue drains or the clock passes [until]. Events exactly
    at [until] still fire. Returns the final clock value. *)
let run ?(until = infinity) t =
  if t.running then invalid_arg "Engine.run: re-entrant run";
  t.running <- true;
  Fun.protect
    ~finally:(fun () -> t.running <- false)
    (fun () ->
      let continue = ref true in
      while !continue do
        match Event_queue.peek_time t.queue with
        | None -> continue := false
        | Some time when time > until -> continue := false
        | Some _ -> (
            match Event_queue.pop t.queue with
            | None -> continue := false
            | Some (time, f) ->
                t.now <- time;
                t.processed <- t.processed + 1;
                f ())
      done;
      if Float.is_finite until && until > t.now then t.now <- until;
      t.now)
