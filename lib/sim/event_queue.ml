(** A binary min-heap of timestamped events.

    Ties in time are broken by insertion sequence number, so simultaneous
    events fire in the order they were scheduled — the property every
    deterministic discrete-event simulator needs. *)

type 'a entry = { time : float; seq : int; payload : 'a }

type 'a t = {
  mutable data : 'a entry array;
  mutable size : int;
  mutable next_seq : int;
}

let create () = { data = [||]; size = 0; next_seq = 0 }
let size t = t.size
let is_empty t = t.size = 0

let before a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let swap t i j =
  let tmp = t.data.(i) in
  t.data.(i) <- t.data.(j);
  t.data.(j) <- tmp

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if before t.data.(i) t.data.(parent) then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let m = if l < t.size && before t.data.(l) t.data.(i) then l else i in
  let m = if r < t.size && before t.data.(r) t.data.(m) then r else m in
  if m <> i then begin
    swap t i m;
    sift_down t m
  end

(** [push t ~time payload] schedules [payload] at [time]. Times must be
    non-negative and finite. *)
let push t ~time payload =
  if not (Float.is_finite time) || time < 0. then
    invalid_arg "Event_queue.push: bad time";
  let e = { time; seq = t.next_seq; payload } in
  t.next_seq <- t.next_seq + 1;
  if t.size = Array.length t.data then begin
    let cap = Int.max 16 (2 * Array.length t.data) in
    let data = Array.make cap e in
    Array.blit t.data 0 data 0 t.size;
    t.data <- data
  end;
  t.data.(t.size) <- e;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let peek_time t = if t.size = 0 then None else Some t.data.(0).time

(** Pop the earliest event: [(time, payload)]. *)
let pop t =
  if t.size = 0 then None
  else begin
    let top = t.data.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.data.(0) <- t.data.(t.size);
      sift_down t 0
    end;
    Some (top.time, top.payload)
  end
