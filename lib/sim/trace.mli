(** Simulation event traces: a bounded chronological log of protocol and
    MAC events for assertions and debugging. *)

type kind =
  | Probe_request of { user : int }
  | Probe_response of { ap : int; user : int }
  | Query of { user : int; ap : int }
  | Query_response of { ap : int; user : int }
  | Associate of { user : int; ap : int }
  | Disassociate of { user : int; ap : int }
  | Frame of { ap : int; session : int; airtime : float }
  | Decision of { user : int; moved : bool }
  | Mark of string
  | Arrive of { user : int }  (** churn: a user enters the network *)
  | Depart of { user : int; ap : int }
      (** churn: a user leaves; [ap] is its serving AP, or
          [Wlan_model.Association.none] if it was unserved *)
  | Ap_down of { ap : int; detached : int }
      (** churn: AP failure, [detached] members forcibly unserved *)
  | Ap_up of { ap : int }  (** churn: AP recovery *)
  | Rate_drift of { user : int; steps : int }
      (** churn: every link of [user] shifted [steps] rate tiers *)
  | Settle of {
      rounds : int;
      moves : int;
      reassociated : int;
      oscillated : bool;
    }  (** churn: one re-convergence to quiescence *)

type record = { time : float; kind : kind }

type t

(** [create ~limit ()] — records beyond [limit] (default 200k) are
    dropped. *)
val create : ?limit:int -> unit -> t

val log : t -> time:float -> kind -> unit

(** Records in chronological order. *)
val records : t -> record list

val count : t -> int
val filter : t -> (record -> bool) -> record list
val count_kind : t -> (kind -> bool) -> int
val pp_kind : Format.formatter -> kind -> unit
val pp_record : Format.formatter -> record -> unit

(** The whole log as text, one record per line, chronological — the byte
    stream the golden-trace regression tests digest. *)
val to_string : t -> string
