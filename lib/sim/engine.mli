(** The discrete-event simulation engine: a clock, a queue of closures
    fired at simulated times (seconds), and a seeded RNG for deterministic
    jitter. Scheduling in the past is a hard error. *)

type t

val create : ?seed:int -> unit -> t
val now : t -> float
val processed : t -> int
val rng : t -> Random.State.t

(** Fire [f] at absolute time [at] (clamped up to [now]).
    @raise Invalid_argument when [at] is in the past. *)
val schedule : t -> at:float -> (unit -> unit) -> unit

(** Fire [f] [delay] seconds from now. *)
val after : t -> delay:float -> (unit -> unit) -> unit

(** Uniform jitter in [0, max); deterministic for a fixed seed. *)
val jitter : t -> max:float -> float

(** Run until the queue drains or the clock passes [until] (events exactly
    at [until] still fire). Returns the final clock.
    @raise Invalid_argument on re-entrant calls. *)
val run : ?until:float -> t -> float
