(** Radio propagation for the simulator: positions + the rate-adaptation
    table give link rates, ranges and received-signal ordering. Thin,
    deterministic, and shared by scanning, the MAC and the protocol. *)

open Wlan_model

type t = {
  rate_table : Rate_table.t;
  ap_pos : Point.t array;
  user_pos : Point.t array;
}

let of_scenario (sc : Scenario.t) =
  {
    rate_table = sc.Scenario.rate_table;
    ap_pos = sc.Scenario.ap_pos;
    user_pos = sc.Scenario.user_pos;
  }

let n_aps t = Array.length t.ap_pos
let n_users t = Array.length t.user_pos

let distance t ~ap ~user = Point.dist t.ap_pos.(ap) t.user_pos.(user)

(** Link rate after rate adaptation; [None] out of range. *)
let link_rate t ~ap ~user =
  Rate_table.rate_at_distance t.rate_table (distance t ~ap ~user)

let in_range t ~ap ~user =
  distance t ~ap ~user <= Rate_table.range t.rate_table

(** Signal metric (higher = stronger): negative distance, matching how
    geometric scenarios compile to problems. *)
let signal t ~ap ~user = -.distance t ~ap ~user

(** APs within radio range of [user]. *)
let neighbor_aps t ~user =
  let acc = ref [] in
  for a = n_aps t - 1 downto 0 do
    if in_range t ~ap:a ~user then acc := a :: !acc
  done;
  !acc

(** Propagation delay in seconds (speed of light), for message latencies. *)
let propagation_delay t ~ap ~user = distance t ~ap ~user /. 3.0e8

(** Airtime of one frame of [bits] at [rate_mbps]. *)
let frame_airtime ~bits ~rate_mbps = bits /. (rate_mbps *. 1e6)
