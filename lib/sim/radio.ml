(** Radio propagation for the simulator: positions + the scenario's
    link-rate model give link rates, ranges and received-signal
    ordering. Thin, deterministic, and shared by scanning, the MAC and
    the protocol. Every query goes through the one {!Rate_model.link}
    predicate, so the simulator sees exactly the links the compiled
    problem has — for the default [Table] model this is bit-identical
    to the historical distance-threshold path. *)

open Wlan_model

type t = {
  rate_table : Rate_table.t;
  model : Rate_model.t;
  ap_pos : Point.t array;
  user_pos : Point.t array;
}

let of_scenario (sc : Scenario.t) =
  {
    rate_table = sc.Scenario.rate_table;
    model = sc.Scenario.model;
    ap_pos = sc.Scenario.ap_pos;
    user_pos = sc.Scenario.user_pos;
  }

let n_aps t = Array.length t.ap_pos
let n_users t = Array.length t.user_pos

let distance t ~ap ~user = Point.dist t.ap_pos.(ap) t.user_pos.(user)

let link t ~ap ~user =
  Rate_model.link t.model ~ap ~user ~dist:(distance t ~ap ~user)

(** Link rate after rate adaptation; [None] out of range. *)
let link_rate t ~ap ~user = Option.map fst (link t ~ap ~user)

let in_range t ~ap ~user = Option.is_some (link t ~ap ~user)

(** Signal metric (higher = stronger): the model's — negative distance
    for [Table] models, received dBm for [Path_loss] — matching how
    geometric scenarios compile to problems. *)
let signal t ~ap ~user =
  match link t ~ap ~user with
  | Some (_, s) -> s
  | None -> Rate_model.dead_signal t.model ~dist:(distance t ~ap ~user)

(** APs within radio range of [user]. *)
let neighbor_aps t ~user =
  let acc = ref [] in
  for a = n_aps t - 1 downto 0 do
    if in_range t ~ap:a ~user then acc := a :: !acc
  done;
  !acc

(** Propagation delay in seconds (speed of light), for message latencies. *)
let propagation_delay t ~ap ~user = distance t ~ap ~user /. 3.0e8

(** Airtime of one frame of [bits] at [rate_mbps]. *)
let frame_airtime ~bits ~rate_mbps = bits /. (rate_mbps *. 1e6)
