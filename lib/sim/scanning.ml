(** Active scanning (the paper cites SyncScan-style active scanning for
    neighbor discovery): every user broadcasts a probe request; each AP in
    range answers after a processing delay plus deterministic jitter. When
    the last response lands, the user knows its neighbor APs, their signal
    strengths and its link rate to each. *)

type neighbor = { ap : int; link_rate_mbps : float; signal : float }

type result = neighbor list array  (** per user, strongest first *)

type config = {
  probe_at : float;  (** when users send probe requests *)
  response_base : float;  (** AP processing delay before responding *)
  response_jitter : float;  (** max extra uniform jitter *)
}

let default_config =
  { probe_at = 0.; response_base = 2e-3; response_jitter = 1e-3 }

(** Schedule the scan on [engine]; [on_complete] fires (as a simulation
    event) once every expected probe response has been received. *)
let start engine ?(config = default_config) ?trace radio ~on_complete =
  let n_users = Radio.n_users radio in
  let results : neighbor list array = Array.make n_users [] in
  let expected = ref 0 in
  let received = ref 0 in
  let maybe_done () =
    incr received;
    if !received = !expected then on_complete results
  in
  (* count expected responses first so completion can't fire early *)
  for u = 0 to n_users - 1 do
    expected := !expected + List.length (Radio.neighbor_aps radio ~user:u)
  done;
  if !expected = 0 then
    Engine.schedule engine ~at:config.probe_at (fun () -> on_complete results);
  for u = 0 to n_users - 1 do
    Engine.schedule engine ~at:config.probe_at (fun () ->
        Option.iter
          (fun tr ->
            Trace.log tr ~time:(Engine.now engine)
              (Trace.Probe_request { user = u }))
          trace;
        List.iter
          (fun a ->
            let delay =
              config.response_base
              +. Engine.jitter engine ~max:config.response_jitter
              +. Radio.propagation_delay radio ~ap:a ~user:u
            in
            Engine.after engine ~delay (fun () ->
                Option.iter
                  (fun tr ->
                    Trace.log tr ~time:(Engine.now engine)
                      (Trace.Probe_response { ap = a; user = u }))
                  trace;
                let link_rate_mbps =
                  Option.value ~default:0. (Radio.link_rate radio ~ap:a ~user:u)
                in
                results.(u) <-
                  { ap = a; link_rate_mbps; signal = Radio.signal radio ~ap:a ~user:u }
                  :: results.(u);
                maybe_done ()))
          (Radio.neighbor_aps radio ~user:u))
  done;
  (* sort each user's neighbor list strongest-first on completion is the
     caller's concern; provide the helper *)
  ()

(** Sort a scan result strongest-signal-first (ties by AP index). *)
let sort_by_signal (results : result) =
  Array.map
    (fun l ->
      List.stable_sort
        (fun a b ->
          match Float.compare b.signal a.signal with
          | 0 -> Int.compare a.ap b.ap
          | c -> c)
        l)
    results
