(** The distributed association protocol at message level (§4.2/§5.2).

    Users periodically query their neighbor APs; each AP responds with the
    multicast sessions it currently transmits, the transmission rates, its
    resulting load, and — for its own associated user — the load it would
    have if that user left. From those responses alone (no global state) a
    user computes every neighbor's hypothetical load if it joined, applies
    the objective (minimum total neighborhood load for MNU/MLA, minimum
    sorted load vector for BLA), and re-associates when strictly better.

    APs are tiny state machines keyed by their associated users; user
    decisions are pure functions of the response set, so the protocol's
    outcome can be asserted equal to the abstract [Mcast_core.Distributed]
    fixpoint in the integration tests. *)

open Wlan_model

(** {1 AP agents} *)

type ap_state = {
  ap_id : int;
  mutable members : (int * int * float) list;
      (** (user, session, link rate) of associated users *)
}

let ap_create ap_id = { ap_id; members = [] }

let ap_join st ~user ~session ~link_rate =
  if not (List.exists (fun (u, _, _) -> u = user) st.members) then
    st.members <- (user, session, link_rate) :: st.members

let ap_leave st ~user =
  st.members <- List.filter (fun (u, _, _) -> u <> user) st.members

(** Transmission rate per session: the minimum link rate among members of
    that session ([] if unserved). *)
let ap_tx_table st =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (_, s, r) ->
      match Hashtbl.find_opt tbl s with
      | Some r' when r' <= r -> ()
      | _ -> Hashtbl.replace tbl s r)
    st.members;
  tbl

let load_of_table ~session_rates tbl =
  (* sum in session order, not Hashtbl bucket order: float addition is
     not associative, so the merge order must not depend on the table's
     insertion history *)
  let bindings = Hashtbl.fold (fun s tx acc -> (s, tx) :: acc) tbl [] in
  List.fold_left
    (fun acc (s, tx) -> acc +. (session_rates.(s) /. tx))
    0.
    (List.sort compare bindings)

let ap_load st ~session_rates = load_of_table ~session_rates (ap_tx_table st)

let ap_load_without st ~session_rates ~user =
  let st' = { st with members = List.filter (fun (u, _, _) -> u <> user) st.members } in
  ap_load st' ~session_rates

(** {1 Query responses} *)

type response = {
  from_ap : int;
  sessions : (int * float) list;  (** (session, tx rate) currently served *)
  load : float;
  budget : float;  (** the AP's advertised multicast airtime limit *)
  load_without_you : float option;  (** only for the queried user's own AP *)
}

let ap_answer st ~session_rates ~budget ~user =
  let tbl = ap_tx_table st in
  (* sorted by session id: the advertisement must not leak Hashtbl bucket
     order, or two APs with identical members could answer differently *)
  let sessions =
    Hashtbl.fold (fun s tx acc -> (s, tx) :: acc) tbl []
    |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
  in
  let is_member = List.exists (fun (u, _, _) -> u = user) st.members in
  {
    from_ap = st.ap_id;
    sessions;
    load = load_of_table ~session_rates tbl;
    budget;
    load_without_you =
      (if is_member then Some (ap_load_without st ~session_rates ~user)
       else None);
  }

(** {1 User decisions} *)

(** What a user knows about one neighbor AP: measured during scanning. *)
type neighbor_info = { ap : int; link_rate : float; signal : float }

(** [decide] — the §4.2/§5.2 local rule, computed from responses only.
    Returns [Some ap] to (re)associate with [ap], [None] to stay.

    Robust to partial information: neighbors whose query response was lost
    are simply not candidates this round and do not enter the neighborhood
    objective — the user re-queries them next period. *)
let decide ~objective ~session_rates ~session ~current
    ~(neighbors : neighbor_info list) ~(responses : response list) =
  (* only neighbors we actually heard back from *)
  let neighbors =
    List.filter
      (fun (n : neighbor_info) ->
        List.exists (fun r -> r.from_ap = n.ap) responses)
      neighbors
  in
  let find_resp a = List.find (fun r -> r.from_ap = a) responses in
  let rate_s = session_rates.(session) in
  (* hypothetical load of AP [a] with me joined *)
  let load_if_join (n : neighbor_info) =
    let r = find_resp n.ap in
    if current = Some n.ap then r.load
    else
      match List.assoc_opt session r.sessions with
      | Some tx when tx <= n.link_rate -> r.load (* I decode the existing tx *)
      | Some tx -> r.load -. (rate_s /. tx) +. (rate_s /. n.link_rate)
      | None -> r.load +. (rate_s /. n.link_rate)
  in
  let load_if_leave a =
    let r = find_resp a in
    match r.load_without_you with Some l -> l | None -> r.load
  in
  (* objective value over my neighborhood if I associate with [target] *)
  let value target =
    let loads =
      List.map
        (fun (n : neighbor_info) ->
          if n.ap = target then load_if_join n
          else
            match current with
            | Some a0 when n.ap = a0 -> load_if_leave a0
            | _ -> (find_resp n.ap).load)
        neighbors
    in
    match objective with
    | Mcast_core.Distributed.Min_total_load ->
        [| List.fold_left ( +. ) 0. loads |]
    | Mcast_core.Distributed.Min_load_vector ->
        Loads.sorted_load_vector (Array.of_list loads)
  in
  let heard a = List.exists (fun r -> r.from_ap = a) responses in
  let feasible (n : neighbor_info) =
    current = Some n.ap
    || load_if_join n <= (find_resp n.ap).budget +. 1e-12
  in
  let candidates = List.filter feasible neighbors in
  match candidates with
  | [] -> None
  (* if our own AP's answer was lost we cannot evaluate leaving it:
     stay put and retry next period *)
  | _ when (match current with Some a0 -> not (heard a0) | None -> false) ->
      None
  | first :: rest -> (
      let best =
        List.fold_left
          (fun (bn, bv) (n : neighbor_info) ->
            let v = value n.ap in
            if Loads.compare_load_vectors_eps v bv < 0 then (n, v)
            else if
              Loads.compare_load_vectors_eps v bv = 0
              && n.signal > bn.signal +. 1e-12
            then (n, v)
            else (bn, bv))
          (first, value first.ap) rest
      in
      let best_n, best_v = best in
      match current with
      | None -> Some best_n.ap
      | Some a0 when best_n.ap <> a0 ->
          if Loads.compare_load_vectors_eps best_v (value a0) < 0 then
            Some best_n.ap
          else None
      | Some _ -> None)
