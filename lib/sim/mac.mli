(** MAC-layer airtime accounting for the streaming phase.

    Each served (AP, session) pair transmits periodic fixed-size frames; a
    session at [r] Mbps with [frame_bits]-bit frames sends a frame every
    [frame_bits / r] seconds, each occupying [frame_bits / tx_rate]
    seconds of airtime. Per-AP busy time over the measurement window,
    divided by the window, is the {e measured} multicast load — which must
    agree with Definition 1 (asserted by the integration tests). *)

type config = {
  frame_bits : float;  (** default 12000 bits = 1500-byte frames *)
  multi_rate : bool;  (** false: always transmit at the basic rate *)
}

val default_config : config

(** One scheduled transmission; unicast background traffic uses the same
    mechanics tagged [session = unicast_tag]. *)
type stream = {
  ap : int;
  session : int;
  session_rate_mbps : float;
  tx_rate_mbps : float;
}

val unicast_tag : int

(** Unicast background streams for dual-association studies: user [u]
    (entry of [assoc], [-1] = none) with demand [demands.(u)] pulls frames
    from its AP at [link_rate ap u]. *)
val unicast_plan :
  assoc:int array ->
  demands:float array ->
  link_rate:(int -> int -> float) ->
  stream list

(** The multicast streams a problem + association implies: one per served
    (AP, session) at its min-receiver rate ([basic_rate] when the config
    disables multi-rate multicast). *)
val plan_of_association :
  Wlan_model.Problem.t ->
  Wlan_model.Association.t ->
  basic_rate:float ->
  config:config ->
  stream list

type accounting = {
  busy : float array;  (** per-AP seconds of airtime used *)
  frames : int array;  (** per-AP frames transmitted *)
  window : float * float;
}

(** Schedule every stream's frames over [window]; the returned record
    fills in as the engine runs. @raise Invalid_argument on empty
    windows. *)
val start :
  Engine.t ->
  ?config:config ->
  ?trace:Trace.t ->
  n_aps:int ->
  window:float * float ->
  stream list ->
  accounting

(** Measured per-AP load once the engine has drained the window. *)
val measured_loads : accounting -> float array
