(** The churn engine: replay a declarative {!Wlan_model.Churn_script}
    against a live network and measure the disruption.

    The script's steps (same-timestamp event groups) are compiled into
    the discrete-event {!Engine}; each step fires as one closure that
    applies every delta atomically through {!Mcast_core.Distributed.Online}
    and then settles to quiescence once, recording a {!step} of
    disruption metrics — users re-associated, sessions forcibly
    interrupted, rounds to quiescence, and (optionally) the load
    overshoot against a fresh static solve of the instance the network
    now embodies.

    Determinism: the engine draws no randomness and iterates everything
    in ascending index order, so a run is a pure function of
    (problem, script, objective, mode, init). The event queue breaks
    timestamp ties FIFO, and a script step is a single event, so even
    same-time steps keep script order. *)

open Wlan_model
open Mcast_core

let src = Logs.Src.create "sim.churn" ~doc:"Churn replay"

module Log = (val Logs.src_log src : Logs.LOG)

(* Deterministic event counters (DESIGN.md §4.9): a replay is a pure
   function of (problem, script, objective, mode, init), so so are these. *)
let c_runs = Wlan_obs.Counters.make "churn.runs"
let c_steps = Wlan_obs.Counters.make "churn.steps"
let c_events = Wlan_obs.Counters.make "churn.events"
let c_interrupted = Wlan_obs.Counters.make "churn.interrupted"
let c_baseline_solves = Wlan_obs.Counters.make "churn.baseline_solves"

(** Disruption record of one quiescence: the initial convergence
    ([events = 0]) or one script step. *)
type step = {
  time : float;
  events : int;  (** script events applied in this step *)
  reassociated : int;  (** users whose serving AP changed while settling *)
  interrupted : int;
      (** sessions forcibly cut by this step's deltas: members detached
          by AP failures plus serving links lost to rate drift *)
  rounds : int;  (** decision rounds to quiescence *)
  moves : int;
  converged : bool;
  oscillated : bool;
  total_load : float;  (** network load at quiescence *)
  max_load : float;  (** peak AP load at quiescence *)
  opt_total_load : float;
      (** total load of a fresh sequential solve of the effective static
          instance; [nan] when the baseline is disabled *)
  opt_max_load : float;  (** peak load of the fresh solve; [nan] if off *)
}

(** Overshoot of the online state against the fresh static solve — can
    be negative when churn history happens to find a better point than
    the greedy static rule. [nan] when the baseline was disabled. *)
let total_overshoot s = s.total_load -. s.opt_total_load

let peak_overshoot s = s.max_load -. s.opt_max_load

type outcome = {
  steps : step list;  (** chronological; head is the initial convergence *)
  assoc : Association.t;  (** final association (a copy) *)
  loads : float array;
      (** final per-AP loads as the incremental tracker cached them — the
          quiescence oracle pins these bit-for-bit to a fresh recompute *)
  effective : Problem.t;  (** final effective static instance *)
  trace : Trace.t;
  total_rounds : int;
  total_moves : int;
  total_reassociated : int;
  total_interrupted : int;
  oscillated : bool;  (** any settle oscillated *)
}

(* The tier-ladder semantics of a [Drift] event lives in
   [Churn_script.drifted_rate] (shared with the serve daemon). *)
let drifted_rate = Churn_script.drifted_rate

let run ?init ?(mode = `Sequential) ?(max_rounds = 200) ?trace
    ?(baseline = true) ?tiers ~objective ~script p =
  Wlan_obs.Counters.incr c_runs;
  let n_aps, n_users = Problem.dims p in
  let script = Churn_script.validate ~n_aps ~n_users script in
  let tiers =
    match tiers with
    | Some ts ->
        List.iter
          (fun r ->
            if not (Float.is_finite r) || r <= 0. then
              invalid_arg
                (Fmt.str "Churn.run: rate tier %g (tiers must be finite and \
                          positive)" r))
          ts;
        List.sort (fun a b -> Float.compare b a) ts
    (* default to the ladder the instance actually uses — the same
       derivation the serve daemon's config uses — rather than
       hard-wiring 802.11a, which silently mis-stepped drift on
       802.11b or power-scaled instances *)
    | None -> Problem.distinct_rates p
  in
  let trace = match trace with Some t -> t | None -> Trace.create () in
  let net = Distributed.Online.create ?init ~objective p in
  let eng = Engine.create () in
  let steps_acc = ref [] in
  (* Settle once and record the disruption metrics of this quiescence. *)
  let settle_step ~time ~events ~interrupted =
    Wlan_obs.Counters.incr c_steps;
    Wlan_obs.Counters.add c_events events;
    Wlan_obs.Counters.add c_interrupted interrupted;
    let stats = Distributed.Online.settle ~max_rounds ~mode net in
    Trace.log trace ~time
      (Trace.Settle
         {
           rounds = stats.Distributed.Online.rounds;
           moves = stats.moves;
           reassociated = stats.reassociated;
           oscillated = stats.oscillated;
         });
    let opt_total, opt_max =
      if not baseline then (Float.nan, Float.nan)
      else begin
        Wlan_obs.Counters.incr c_baseline_solves;
        let eff = Distributed.Online.effective_problem net in
        let o =
          Distributed.run ~max_rounds ~scheduler:Distributed.Sequential
            ~objective eff
        in
        (Loads.total_load eff o.Distributed.assoc,
         Loads.max_load eff o.Distributed.assoc)
      end
    in
    steps_acc :=
      {
        time;
        events;
        reassociated = stats.Distributed.Online.reassociated;
        interrupted;
        rounds = stats.rounds;
        moves = stats.moves;
        converged = stats.converged;
        oscillated = stats.oscillated;
        total_load = Distributed.Online.total_load net;
        max_load = Distributed.Online.max_load net;
        opt_total_load = opt_total;
        opt_max_load = opt_max;
      }
      :: !steps_acc
  in
  (* One delta: apply through the online layer, trace what happened,
     return the number of sessions it forcibly interrupted. *)
  let apply_event ~time event =
    let join u =
      if Distributed.Online.arrive net ~user:u then
        Trace.log trace ~time (Trace.Arrive { user = u })
    in
    match event with
    | Churn_script.Join { user } ->
        join user;
        0
    | Churn_script.Burst { users } ->
        List.iter join users;
        0
    | Churn_script.Leave { user } -> (
        match Distributed.Online.depart net ~user with
        | `Absent -> 0
        | `Unserved ->
            Trace.log trace ~time
              (Trace.Depart { user; ap = Association.none });
            0
        | `Served ap ->
            Trace.log trace ~time (Trace.Depart { user; ap });
            0)
    | Churn_script.Ap_fail { ap } -> (
        match Distributed.Online.fail_ap net ~ap with
        | `Dead -> 0
        | `Failed detached ->
            let n = List.length detached in
            Trace.log trace ~time (Trace.Ap_down { ap; detached = n });
            n)
    | Churn_script.Ap_recover { ap } ->
        if Distributed.Online.recover_ap net ~ap then
          Trace.log trace ~time (Trace.Ap_up { ap });
        0
    | Churn_script.Drift { user; steps } ->
        let cut = ref 0 in
        let changed = ref false in
        for a = 0 to n_aps - 1 do
          let r = Distributed.Online.link_rate net ~ap:a ~user in
          if r > 0. then begin
            match
              Distributed.Online.set_rate net ~user ~ap:a
                (drifted_rate ~tiers r steps)
            with
            | `Unchanged -> ()
            | `Changed -> changed := true
            | `Detached ->
                changed := true;
                incr cut
          end
        done;
        if !changed then
          Trace.log trace ~time (Trace.Rate_drift { user; steps });
        !cut
  in
  (* The network converges once before any churn: the static solve. *)
  settle_step ~time:0. ~events:0 ~interrupted:0;
  List.iter
    (fun (time, events) ->
      Engine.schedule eng ~at:time (fun () ->
          let interrupted =
            List.fold_left (fun acc e -> acc + apply_event ~time e) 0 events
          in
          settle_step ~time ~events:(List.length events) ~interrupted))
    (Churn_script.steps script);
  let (_ : float) = Engine.run eng in
  let steps = List.rev !steps_acc in
  let sum f = List.fold_left (fun acc s -> acc + f s) 0 steps in
  let outcome =
    {
      steps;
      assoc = Association.copy (Distributed.Online.assoc net);
      loads = Array.copy (Distributed.Online.loads net);
      effective = Distributed.Online.effective_problem net;
      trace;
      total_rounds = sum (fun s -> s.rounds);
      total_moves = sum (fun s -> s.moves);
      total_reassociated = sum (fun s -> s.reassociated);
      total_interrupted = sum (fun s -> s.interrupted);
      oscillated = List.exists (fun (s : step) -> s.oscillated) steps;
    }
  in
  Log.debug (fun m ->
      m "churn: %d steps, %d rounds, %d moves, %d interrupted, oscillated %b"
        (List.length outcome.steps) outcome.total_rounds outcome.total_moves
        outcome.total_interrupted outcome.oscillated);
  outcome
