(** End-to-end simulation runs (the ns-2 substitute): scan → associate
    (under a policy) → stream → measure. *)

open Wlan_model

type mode = Sequential | Simultaneous

type policy =
  | Ssa_policy
      (** users join their strongest AP in index order, with admission
          control at the multicast budget *)
  | Distributed_policy of {
      objective : Mcast_core.Distributed.objective;
      mode : mode;
      max_passes : int;
    }  (** the query/response protocol of {!Proto}, in passes *)
  | Static_policy of Association.t
      (** install a precomputed association (centralized algorithms:
          computed offline, pushed to users) *)

(** Snapshot at the end of each association pass — the protocol's
    convergence curve. *)
type pass_stats = {
  pass : int;
  served : int;
  total_load : float;
  moves_in_pass : int;
}

type report = {
  problem : Problem.t;
  assoc : Association.t;
  solution : Mcast_core.Solution.t;
  analytic_loads : float array;  (** Definition 1 on the final association *)
  measured_loads : float array;  (** airtime counted by the MAC *)
  passes : int;
  pass_history : pass_stats list;  (** chronological, one per pass *)
  converged : bool;
  oscillated : bool;
  events : int;  (** simulation events processed *)
  sim_time : float;
  trace : Trace.t;
}

(** [run ~policy sc] simulates the whole pipeline on scenario [sc].

    [init] installs a starting association right after scanning (users
    whose old AP fell out of range rejoin through the protocol).

    [loss_rate] drops each protocol query/response exchange independently
    with that probability (deterministically from [seed]); the decision
    rule degrades gracefully to the neighbors that answered.

    [unicast_demands] (one Mbps figure per user) adds dual association's
    unicast side to the streaming phase, so [measured_loads] reports the
    combined unicast+multicast airtime.

    [disabled_aps] never answer probes: no user can discover or associate
    with them (failed or administratively-down APs). *)
val run :
  ?seed:int ->
  ?mac:Mac.config ->
  ?streaming_window:float ->
  ?trace_limit:int ->
  ?loss_rate:float ->
  ?unicast_demands:float array ->
  ?disabled_aps:int list ->
  ?init:Association.t ->
  policy:policy ->
  Scenario.t ->
  report
