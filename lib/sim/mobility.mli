(** Quasi-static user mobility (§3.1's campus-measurement regime): long
    static epochs separated by instants at which a fraction of users
    relocate. Each epoch re-runs the {!Runner} pipeline warm-started with
    the previous association, exposing the re-convergence cost of a
    mobility burst. *)

open Wlan_model

type epoch_report = {
  epoch : int;
  relocated : int;  (** users moved at the start of this epoch *)
  report : Runner.report;
  rejoin_moves : int;
      (** users whose association changed vs the previous epoch *)
}

(** Relocate [ceil (fraction * n_users)] distinct users uniformly;
    returns the new scenario and the relocation count. *)
val relocate :
  rng:Random.State.t -> fraction:float -> Scenario.t -> Scenario.t * int

(** Session zapping: [fraction] of the users switch to a uniformly random
    session (channel change). *)
val zap :
  rng:Random.State.t -> fraction:float -> Scenario.t -> Scenario.t * int

val diff_count : Association.t -> Association.t -> int

(** [run ~epochs ~move_fraction ~policy sc]: one report per epoch, in
    order; no relocation before the first epoch. *)
val run :
  ?seed:int ->
  ?move_fraction:float ->
  ?session_churn:float ->
  ?ap_failure_fraction:float ->
  ?epochs:int ->
  ?loss_rate:float ->
  policy:Runner.policy ->
  Scenario.t ->
  epoch_report list
