(** The distributed association protocol at message level (§4.2/§5.2):
    AP agents answering load queries, and the user decision rule computed
    from responses only (no global state). The integration tests assert
    that the protocol's fixpoint equals the abstract
    [Mcast_core.Distributed] one. *)

(** {1 AP agents} *)

type ap_state = {
  ap_id : int;
  mutable members : (int * int * float) list;
      (** (user, session, link rate) of associated users *)
}

val ap_create : int -> ap_state
val ap_join : ap_state -> user:int -> session:int -> link_rate:float -> unit
val ap_leave : ap_state -> user:int -> unit

(** Transmission rate per served session: min member link rate. *)
val ap_tx_table : ap_state -> (int, float) Hashtbl.t

val ap_load : ap_state -> session_rates:float array -> float
val ap_load_without :
  ap_state -> session_rates:float array -> user:int -> float

(** {1 Query responses} *)

type response = {
  from_ap : int;
  sessions : (int * float) list;  (** (session, tx rate) currently served *)
  load : float;
  budget : float;  (** the AP's advertised multicast airtime limit *)
  load_without_you : float option;  (** only for the queried user's own AP *)
}

val ap_answer :
  ap_state -> session_rates:float array -> budget:float -> user:int -> response

(** {1 User decisions} *)

(** What a user learned about one neighbor AP during scanning. *)
type neighbor_info = { ap : int; link_rate : float; signal : float }

(** The local rule, computed from responses only: [Some ap] to
    (re)associate, [None] to stay. Robust to partial information:
    neighbors whose response was lost are not candidates this round, and
    if the user's own AP did not answer it stays put. *)
val decide :
  objective:Mcast_core.Distributed.objective ->
  session_rates:float array ->
  session:int ->
  current:int option ->
  neighbors:neighbor_info list ->
  responses:response list ->
  int option
