(** Quasi-static user mobility across association epochs.

    The paper assumes users "tend to stay at one place for a relatively
    long time period before changing their location" (§3.1, citing the
    SIGMETRICS'02 / MobiCom'02 campus measurement studies). This driver
    models exactly that regime: long epochs during which the network is
    static and the association protocol runs to convergence, separated by
    instants at which a fraction of users relocate.

    Each epoch re-runs the {!Runner} pipeline seeded with the previous
    epoch's association (users whose old AP fell out of range rejoin from
    scratch), so the per-epoch reports expose the re-convergence cost —
    how many protocol passes and re-associations a mobility burst incurs —
    and the steady-state quality after each burst. *)

open Wlan_model

type epoch_report = {
  epoch : int;
  relocated : int;  (** users moved at the start of this epoch *)
  report : Runner.report;
  rejoin_moves : int;
      (** users whose association changed relative to the previous epoch *)
}

let relocate ~rng ~fraction (sc : Scenario.t) =
  let n = Scenario.n_users sc in
  let k =
    Int.min n (int_of_float (ceil (fraction *. float_of_int n)))
  in
  let user_pos = Array.copy sc.Scenario.user_pos in
  (* pick k distinct users by shuffling indices *)
  let idx = Array.init n Fun.id in
  for i = n - 1 downto 1 do
    let j = Random.State.int rng (i + 1) in
    let t = idx.(i) in
    idx.(i) <- idx.(j);
    idx.(j) <- t
  done;
  let moved = Array.sub idx 0 k in
  Array.iter
    (fun u ->
      user_pos.(u) <-
        Point.random ~rng ~w:sc.Scenario.area_w ~h:sc.Scenario.area_h)
    moved;
  ( Scenario.make ~area_w:sc.Scenario.area_w ~area_h:sc.Scenario.area_h
      ~ap_pos:sc.Scenario.ap_pos ~user_pos
      ~user_session:sc.Scenario.user_session ~sessions:sc.Scenario.sessions
      ~rate_table:sc.Scenario.rate_table ~model:sc.Scenario.model
      ~budget:sc.Scenario.budget (),
    k )

(** Session zapping: [fraction] of the users switch to a uniformly random
    session (TV channel change) — the other quasi-static churn source. *)
let zap ~rng ~fraction (sc : Scenario.t) =
  let n = Scenario.n_users sc in
  let n_sessions = Array.length sc.Scenario.sessions in
  let k = Int.min n (int_of_float (ceil (fraction *. float_of_int n))) in
  if k = 0 || n_sessions = 0 then (sc, 0)
  else begin
    let user_session = Array.copy sc.Scenario.user_session in
    let idx = Array.init n Fun.id in
    for i = n - 1 downto 1 do
      let j = Random.State.int rng (i + 1) in
      let t = idx.(i) in
      idx.(i) <- idx.(j);
      idx.(j) <- t
    done;
    Array.iter
      (fun u -> user_session.(u) <- Random.State.int rng n_sessions)
      (Array.sub idx 0 k);
    ( Scenario.make ~area_w:sc.Scenario.area_w ~area_h:sc.Scenario.area_h
        ~ap_pos:sc.Scenario.ap_pos ~user_pos:sc.Scenario.user_pos
        ~user_session ~sessions:sc.Scenario.sessions
        ~rate_table:sc.Scenario.rate_table ~model:sc.Scenario.model
        ~budget:sc.Scenario.budget (),
      k )
  end

let diff_count (a : Association.t) (b : Association.t) =
  let n = Int.min (Array.length a) (Array.length b) in
  let d = ref 0 in
  for u = 0 to n - 1 do
    if a.(u) <> b.(u) then incr d
  done;
  !d

(** [run ~epochs ~move_fraction ~policy sc] simulates [epochs] association
    epochs; before every epoch after the first, [move_fraction] of the
    users relocate uniformly. Returns one report per epoch, in order. *)
let run ?(seed = 0) ?(move_fraction = 0.1) ?(session_churn = 0.)
    ?(ap_failure_fraction = 0.) ?(epochs = 5) ?loss_rate ~policy
    (sc : Scenario.t) =
  let rng = Random.State.make [| seed; 0x5eed |] in
  let rec go epoch sc prev_assoc acc =
    if epoch > epochs then List.rev acc
    else begin
      let sc, relocated =
        if epoch = 1 then (sc, 0) else relocate ~rng ~fraction:move_fraction sc
      in
      let sc, _zapped =
        if epoch = 1 || session_churn <= 0. then (sc, 0)
        else zap ~rng ~fraction:session_churn sc
      in
      (* transient AP outages: a fresh sample every epoch after the first *)
      let disabled_aps =
        if epoch = 1 || ap_failure_fraction <= 0. then []
        else begin
          let n = Scenario.n_aps sc in
          let k =
            Int.min n
              (int_of_float (ceil (ap_failure_fraction *. float_of_int n)))
          in
          let idx = Array.init n Fun.id in
          for i = n - 1 downto 1 do
            let j = Random.State.int rng (i + 1) in
            let t = idx.(i) in
            idx.(i) <- idx.(j);
            idx.(j) <- t
          done;
          Array.to_list (Array.sub idx 0 k)
        end
      in
      let report =
        Runner.run ~seed:(seed + epoch) ?loss_rate ~disabled_aps
          ?init:prev_assoc ~policy sc
      in
      let rejoin_moves =
        match prev_assoc with
        | None -> 0
        | Some prev -> diff_count prev report.Runner.assoc
      in
      go (epoch + 1) sc
        (Some (Association.copy report.Runner.assoc))
        ({ epoch; relocated; report; rejoin_moves } :: acc)
    end
  in
  go 1 sc None []
