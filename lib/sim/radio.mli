(** Radio propagation for the simulator: positions plus the
    rate-adaptation table give link rates, ranges and signal ordering. *)

open Wlan_model

type t = {
  rate_table : Rate_table.t;
  ap_pos : Point.t array;
  user_pos : Point.t array;
}

val of_scenario : Scenario.t -> t
val n_aps : t -> int
val n_users : t -> int
val distance : t -> ap:int -> user:int -> float

(** Link rate after rate adaptation; [None] out of range. *)
val link_rate : t -> ap:int -> user:int -> float option

val in_range : t -> ap:int -> user:int -> bool

(** Signal metric (higher = stronger): negative distance. *)
val signal : t -> ap:int -> user:int -> float

(** APs within radio range of a user. *)
val neighbor_aps : t -> user:int -> int list

(** Speed-of-light propagation delay in seconds. *)
val propagation_delay : t -> ap:int -> user:int -> float

(** Airtime of one frame of [bits] at [rate_mbps]. *)
val frame_airtime : bits:float -> rate_mbps:float -> float
