(** Radio propagation for the simulator: positions plus the scenario's
    link-rate model give link rates, ranges and signal ordering — the
    same {!Wlan_model.Rate_model.link} predicate the compile uses. *)

open Wlan_model

type t = {
  rate_table : Rate_table.t;
  model : Rate_model.t;
  ap_pos : Point.t array;
  user_pos : Point.t array;
}

val of_scenario : Scenario.t -> t
val n_aps : t -> int
val n_users : t -> int
val distance : t -> ap:int -> user:int -> float

(** The model's link verdict: [Some (rate_mbps, signal)] or [None]. *)
val link : t -> ap:int -> user:int -> (float * float) option

(** Link rate after rate adaptation; [None] out of range. *)
val link_rate : t -> ap:int -> user:int -> float option

val in_range : t -> ap:int -> user:int -> bool

(** Signal metric (higher = stronger): the model's — negative distance
    for [Table] models, received dBm for [Path_loss]. *)
val signal : t -> ap:int -> user:int -> float

(** APs within radio range of a user. *)
val neighbor_aps : t -> user:int -> int list

(** Speed-of-light propagation delay in seconds. *)
val propagation_delay : t -> ap:int -> user:int -> float

(** Airtime of one frame of [bits] at [rate_mbps]. *)
val frame_airtime : bits:float -> rate_mbps:float -> float
