(** Set Cover with Group Budgets (SCG) — the engine of the paper's
    Centralized BLA (Fig. 6).

    For a guessed bound [B*], give every group budget [B*] and run the MCG
    greedy; each round covers at least 1/8 of the remaining elements, so
    iterating [log_{8/7} n + 1] rounds covers everything (when [B*] is
    feasible), with per-group total cost at most [(log_{8/7} n + 1) B*]
    (Theorem 4). The driver tries a grid of [B*] values between the
    smallest possibly-feasible bound and 1 (a tightening of the paper's
    "try several values of B* between c_max and 1" — see {!default_grid})
    and keeps the feasible solution minimizing the realized maximum group
    cost. *)

(* Deterministic event counters (DESIGN.md §4.9). Grid probes may run on
   pool domains, but the probe set is jobs-independent, so totals are too. *)
let c_solves = Wlan_obs.Counters.make "scg.solves"
let c_rounds = Wlan_obs.Counters.make "scg.rounds"
let c_grid_probes = Wlan_obs.Counters.make "scg.grid_probes"

type result = {
  bstar : float;
  rounds : Mcg.result list;  (** one MCG result per iteration *)
  feasible : bool;  (** all elements of the universe covered *)
  group_cost : float array;  (** summed over rounds *)
}

let max_rounds_for n =
  if n <= 1 then 1
  else int_of_float (ceil (log (float_of_int n) /. log (8. /. 7.))) + 1

(** All selections of a result, flattened in selection order. The [newly]
    attributions of different rounds are disjoint by construction. *)
let selections r = List.concat_map (fun (m : Mcg.result) -> m.kept) r.rounds

let max_group_cost r = Array.fold_left Float.max 0. r.group_cost

(** One SCG run for a fixed [B*]. When [universe] is given explicitly it is
    taken literally: elements of it that no set contains make the run
    infeasible (the default universe is everything coverable).
    [engine] is passed through to {!Mcg.greedy} — except [`Lazy], whose
    rounds run through an {!Mcg.session} so set-score bounds persist
    across the shrinking remaining set (identical selections, no
    per-round seed pass). [arena] backs each round's heap and candidate
    planes; it must not be shared across pool domains. *)
let solve_for ?(mode = `Soft) ?engine ?arena inst ~bstar ?universe () =
  Wlan_obs.Counters.incr c_solves;
  let x0 =
    match universe with
    | Some u -> Bitset.copy u
    | None -> Cover_instance.coverable inst
  in
  let n = Bitset.cardinal x0 in
  let n_groups = Cover_instance.n_groups inst in
  let budgets = Array.make n_groups bstar in
  let remaining = Bitset.copy x0 in
  let rounds = ref [] in
  let group_cost = Array.make n_groups 0. in
  let k = max_rounds_for n in
  let round =
    match engine with
    | Some `Lazy ->
        let s = Mcg.session ~mode ?arena inst ~budgets in
        fun () -> Mcg.session_round s ~remaining
    | _ ->
        fun () -> Mcg.greedy ~mode ?engine ?arena inst ~budgets ~universe:remaining ()
  in
  (try
     for _ = 1 to k do
       if Bitset.is_empty remaining then raise Exit;
       Wlan_obs.Counters.incr c_rounds;
       let r = round () in
       if Bitset.is_empty r.covered then raise Exit (* no progress: infeasible *);
       rounds := r :: !rounds;
       Array.iteri (fun g c -> group_cost.(g) <- group_cost.(g) +. c) r.group_cost;
       Bitset.diff_inplace remaining r.covered
     done
   with Exit -> ());
  {
    bstar;
    rounds = List.rev !rounds;
    feasible = Bitset.is_empty remaining;
    group_cost;
  }

(** Default grid of [B*] guesses: [n_guesses] points geometrically spaced
    between the smallest [B*] that can possibly be feasible and 1.

    The paper suggests guessing between [c_max] and 1, but [c_max] over
    {e all} sets is needlessly coarse: a group never has to afford its most
    expensive set, only {e some} set covering each element. The tight lower
    end is [max_e min_{S ∋ e} c(S)] — below it some element of the universe
    cannot be covered at all (MCG refuses sets costing more than the group
    budget). *)
let grid_lo ?universe inst =
  let u =
    match universe with
    | Some u -> u
    | None -> Cover_instance.coverable inst
  in
  let n = Cover_instance.n_elements inst in
  let min_cost = Array.make n infinity in
  for j = 0 to Cover_instance.n_sets inst - 1 do
    let c = Cover_instance.cost inst j in
    Bitset.iter
      (fun e -> if c < min_cost.(e) then min_cost.(e) <- c)
      (Cover_instance.set inst j)
  done;
  let lo =
    Bitset.fold
      (fun e acc ->
        if (min_cost.(e) = infinity) [@lint.allow float_eq] then acc
        else Float.max acc min_cost.(e))
      u 0.
  in
  Float.max (Float.min lo 1.) 1e-6

let grid_points ?(n_guesses = 12) lo =
  if lo >= 1. then [ 1. ]
  else
    List.init n_guesses (fun i ->
        let t = float_of_int i /. float_of_int (n_guesses - 1) in
        lo *. ((1. /. lo) ** t))

let default_grid ?n_guesses ?universe inst =
  grid_points ?n_guesses (grid_lo ?universe inst)

(** Try the [B*] guesses of [grid] and return all feasible runs computed,
    best (smallest realized max group cost) first.

    [fanout] evaluates the per-guess thunks; the default runs them
    sequentially in list order. Injecting a multicore evaluator (e.g.
    [Harness.Pool.run pool], which returns results in submission order)
    parallelizes the grid with a result identical to the sequential one —
    each guess's run is independent and this layer cannot depend on the
    harness, so the pool is passed in rather than created here.

    [strategy] selects grid coverage:
    - [`Exhaustive] (default): evaluate every grid point.
    - [`Bisect]: exploit monotonicity of feasibility in [B*] (a larger
      per-group budget never hurts the MCG rounds) to binary-search the
      ascending grid for the smallest feasible guess — O(log |grid|)
      evaluations. Only the runs actually evaluated are returned (always
      including the smallest feasible guess), so a caller ranking by
      {e realized} cost sees a subset of [`Exhaustive]'s candidates.
      [fanout] is unused: each probe depends on the previous verdict.

    [arena] lets successive probes reuse their scratch planes — pass it
    only with the default sequential [fanout] (or [`Bisect], which is
    always sequential): an arena must never be shared across pool
    domains. *)
let solve_grid ?mode ?engine ?arena ?(strategy = `Exhaustive)
    ?(fanout = List.map (fun f -> f ())) inst ?universe ~grid () =
  let run bstar =
    Wlan_obs.Counters.incr c_grid_probes;
    solve_for ?mode ?engine ?arena inst ~bstar ?universe ()
  in
  let results =
    match strategy with
    | `Exhaustive -> fanout (List.map (fun bstar () -> run bstar) grid)
    | `Bisect ->
        let arr = Array.of_list grid in
        let n = Array.length arr in
        let cache = Hashtbl.create 8 in
        let eval i =
          match Hashtbl.find_opt cache i with
          | Some r -> r
          | None ->
              let r = run arr.(i) in
              Hashtbl.replace cache i r;
              r
        in
        if n = 0 then []
        else begin
          (if (eval (n - 1)).feasible then begin
             let lo = ref 0 and hi = ref (n - 1) in
             while !lo < !hi do
               let mid = (!lo + !hi) / 2 in
               if (eval mid).feasible then hi := mid else lo := mid + 1
             done
           end);
          Hashtbl.fold (fun i r acc -> (i, r) :: acc) cache []
          |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
          |> List.map snd
        end
  in
  List.filter (fun r -> r.feasible) results
  |> List.sort (fun a b -> Float.compare (max_group_cost a) (max_group_cost b))

(** Best feasible solution over the default grid, if any. *)
let solve ?mode ?engine ?arena ?strategy ?fanout ?n_guesses inst ?universe () =
  match
    solve_grid ?mode ?engine ?arena ?strategy ?fanout inst ?universe
      ~grid:(default_grid ?n_guesses ?universe inst)
      ()
  with
  | [] -> None
  | best :: _ -> Some best
