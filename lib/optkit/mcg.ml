(** Maximum Coverage with Group Budgets (MCG), cost version — the engine of
    the paper's Centralized MNU (Fig. 3), after Chekuri–Kumar (APPROX'04).

    Sets are partitioned into groups (one group per AP); each group [G_i]
    has a budget [B_i] (the AP's multicast airtime budget). The greedy loop
    picks, among groups whose spent budget is still strictly below their
    limit, the most cost-effective set ([|S ∩ X'| / c(S)]). A selection may
    overshoot its group's budget; the classic repair partitions the
    selections into [H1] (those that kept their group within budget) and
    [H2] (the at-most-one-per-group overshooting selections) and keeps the
    half covering more elements, yielding the 8-approximation of Theorem 2
    (the greedy H is a 4-approximation, and max(H1, H2) ≥ H/2). *)

(* Deterministic event counters (DESIGN.md §4.9). The greedy loop is
   purely sequential, so these totals are trivially scheduling-free. *)
let c_runs = Wlan_obs.Counters.make "mcg.runs"
let c_rounds = Wlan_obs.Counters.make "mcg.rounds"
let c_selections = Wlan_obs.Counters.make "mcg.selections"
let c_candidate_evals = Wlan_obs.Counters.make "mcg.candidate_evals"
let c_heap_pops = Wlan_obs.Counters.make "mcg.heap_pops"
let c_bound_skips = Wlan_obs.Counters.make "mcg.bound_skips"

type selection = { set : int; newly : Bitset.t }

type result = {
  kept : selection list;  (** the returned solution (H1 or H2), in order *)
  raw_order : int list;  (** H before the split, in selection order *)
  covered : Bitset.t;  (** covered by [kept] *)
  group_cost : float array;  (** per-group cost of [kept]; each <= budget *)
}

let replay inst ~universe sets =
  let x' = Bitset.copy universe in
  let kept =
    List.map
      (fun j ->
        let newly = Bitset.inter (Cover_instance.set inst j) x' in
        Bitset.diff_inplace x' newly;
        { set = j; newly })
      sets
  in
  let covered = Bitset.diff universe x' in
  (kept, covered)

(** [greedy inst ~budgets ?universe ()] runs budgeted greedy + split.
    [budgets.(i)] is group [i]'s budget. Only elements of [universe]
    (default: everything coverable) count as coverage. Sets costing more
    than their group's budget are never picked (the paper assumes
    [c(S) <= B_i]; callers should pre-filter, but we also guard here).

    [element_weights] generalizes coverage from counting to weighted sums
    (revenue-weighted users): the greedy score becomes
    [weight(S ∩ X') / c(S)] and the H1/H2 split keeps the heavier half.
    Weights must be non-negative; omitted weights mean 1 per element.

    [mode] selects the overshoot discipline:
    - [`Soft] (default, the paper's Fig. 3): a group stays eligible while
      its spent budget is strictly below the limit, so the last selection
      may overshoot; the H1/H2 split repairs feasibility. This carries the
      8-approximation guarantee.
    - [`Hard]: a set is only selectable if it fits the group's remaining
      budget exactly; nothing overshoots and no split is needed. No
      coverage guarantee, but never wastes budget — the practical variant
      the BLA driver can also try.

    [engine] selects the candidate-generation strategy:
    - [`Classic] (default): per-group lazy max-heaps, every eligible
      group re-validated each round. Equal scores resolve by the heap's
      internal layout — the historical behavior every recorded experiment
      output is pinned to, which is why it stays the default: any change
      to the order of heap operations resolves score ties differently.
    - [`Lazy]: like [`Classic] but with a total tie order (lower set
      index wins equal scores) and bound-based skipping — each round
      validates the group with the best stored bound first, then skips
      every group whose stored bound (an upper bound on its best fresh
      score) cannot beat the best validated score. Asymptotically the
      groups untouched by recent winners are never re-scored. Same
      greedy quality; selections may differ from [`Classic] only where
      two sets tie exactly on [gain/cost].
    - [`Eager]: rescans every set of every eligible group each round —
      the O(rounds · sets) reference. Produces the same selection
      sequence as [`Lazy] (a qcheck property asserts this). *)
let greedy ?(mode = `Soft) ?(engine = `Classic) ?arena ?element_weights inst
    ~budgets ?universe () =
  if Array.length budgets <> Cover_instance.n_groups inst then
    invalid_arg "Mcg.greedy: budgets length <> number of groups";
  (match element_weights with
  | Some w ->
      if Array.length w <> Cover_instance.n_elements inst then
        invalid_arg "Mcg.greedy: element_weights arity";
      Array.iter
        (fun x -> if x < 0. then invalid_arg "Mcg.greedy: negative weight")
        w
  | None -> ());
  let x0 =
    match universe with
    | Some u -> Bitset.inter u (Cover_instance.coverable inst)
    | None -> Cover_instance.coverable inst
  in
  (* local event accumulators, flushed to the counter plane once at the
     end: plain int refs keep the greedy inner loop free of even the
     gated atomic load, and the flushed totals are identical *)
  let n_rounds = ref 0
  and n_selections = ref 0
  and n_candidate_evals = ref 0
  and n_heap_pops = ref 0
  and n_bound_skips = ref 0 in
  let x' = Bitset.copy x0 in
  (* weighted gain of covering [S ∩ X'] *)
  let gain_of j =
    incr n_candidate_evals;
    let s = Cover_instance.set inst j in
    match element_weights with
    | None -> float_of_int (Bitset.inter_cardinal s x')
    | Some w ->
        let acc = ref 0. in
        Bitset.iter_inter (fun e -> acc := !acc +. w.(e)) s x';
        !acc
  in
  let weight_of set =
    match element_weights with
    | None -> float_of_int (Bitset.cardinal set)
    | Some w -> Bitset.fold (fun e acc -> acc +. w.(e)) set 0.
  in
  let n_groups = Cover_instance.n_groups inst in
  let n_sets = Cover_instance.n_sets inst in
  (* static eligibility: sets over their group's budget can never be
     picked; zero-gain sets stay at zero gain forever (gains only shrink) *)
  let admissible j g = Cover_instance.cost inst j <= budgets.(g) +. 1e-12 in
  (* heap engines' state: a flat per-group max-heap bank (SoA planes,
     DESIGN.md §4.12) running the exact Lazy_heap algorithm — same push
     order, same sift sequence, so equal-score ties resolve identically
     to the boxed heaps every recorded output is pinned to. [`Lazy]
     orders equal scores by lower set index so pops are independent of
     layout history; [`Classic] keeps the historical layout-resolved
     ties. Group capacity = admissible seed count: pops always precede
     re-pushes, so occupancy never exceeds it. *)
  let heaps =
    match engine with
    | `Eager -> None
    | `Classic | `Lazy ->
        let caps = Array.make n_groups 0 in
        for j = 0 to n_sets - 1 do
          let g = Cover_instance.group inst j in
          if admissible j g then caps.(g) <- caps.(g) + 1
        done;
        let fh =
          Flat_heap.make ?arena ~slot:"mcg.heap"
            ~tie:(match engine with `Lazy -> `Lower_index | _ -> `Layout)
            ~capacities:caps ()
        in
        for j = 0 to n_sets - 1 do
          let g = Cover_instance.group inst j in
          if admissible j g then begin
            let gain = gain_of j in
            if gain > 0. then
              Flat_heap.push fh g ~prio:(gain /. Cover_instance.cost inst j) j
          end
        done;
        Some fh
  in
  (* eager engine state: per-group admissible set lists, ascending index *)
  let group_sets =
    match engine with
    | `Classic | `Lazy -> [||]
    | `Eager ->
        let gs = Array.make n_groups [] in
        for j = n_sets - 1 downto 0 do
          let g = Cover_instance.group inst j in
          if admissible j g && gain_of j > 0. then gs.(g) <- j :: gs.(g)
        done;
        gs
  in
  let revalidate j =
    let gain = gain_of j in
    if gain <= 0. then neg_infinity
    else gain /. Cover_instance.cost inst j
  in
  let spent = Array.make n_groups 0. in
  let raw = ref [] in
  (* per selection: did it overshoot its group's budget? *)
  let overshoot = ref [] in
  let fits g j =
    match mode with
    | `Soft -> true
    | `Hard ->
        Cover_instance.cost inst j <= budgets.(g) -. spent.(g) +. 1e-12
  in
  (* pop a group's best candidate; in [`Hard] mode, sets that no longer fit
     the group's remaining budget are dropped for good (remaining budget
     only shrinks) *)
  let rec candidate fh g =
    let j = Flat_heap.pop_max fh g ~revalidate in
    if j < 0 then None
    else begin
      incr n_heap_pops;
      let prio = fh.Flat_heap.last_prio in
      if fits g j then Some (j, prio) else candidate fh g
    end
  in
  (* full rescan of one group: best fresh score, lower index on ties *)
  let candidate_eager g =
    List.fold_left
      (fun acc j ->
        if not (fits g j) then acc
        else
          let gain = gain_of j in
          if gain <= 0. then acc
          else
            let prio = gain /. Cover_instance.cost inst j in
            match acc with Some (_, p) when p >= prio -> acc | _ -> Some (j, prio))
      None group_sets.(g)
  in
  (* A group whose stored bound is below the best validated score by more
     than this margin is skipped without re-scoring: its best fresh score
     (<= the bound) is then too far below the winner to win the round or
     land in the fold's 1e-12 tie window. 1e-9 dominates that window, so
     skipping never changes the selection. *)
  let skip_margin = 1e-9 in
  let eligible g = spent.(g) < budgets.(g) -. 1e-12 in
  (* per-round popped candidates as flat planes (at most one entry per
     group), appended in sweep order. The boxed loop prepended to a list
     and folded head-first — descending sweep order — so every
     plane traversal below walks indices high-to-low to keep the fold
     (and the losers' re-push sequence, which shapes [`Classic] heap
     layout) identical. *)
  let pop_g, pop_j =
    match arena with
    | Some a ->
        (Arena.ints a "mcg.pop_g" n_groups, Arena.ints a "mcg.pop_j" n_groups)
    | None -> (Array.make (Int.max 1 n_groups) 0, Array.make (Int.max 1 n_groups) 0)
  in
  let pop_p =
    match arena with
    | Some a -> Arena.floats a "mcg.pop_p" n_groups
    | None -> Array.make (Int.max 1 n_groups) 0.
  in
  let n_pop = ref 0 in
  let append g j p =
    pop_g.(!n_pop) <- g;
    pop_j.(!n_pop) <- j;
    pop_p.(!n_pop) <- p;
    incr n_pop
  in
  let continue = ref true in
  while !continue && not (Bitset.is_empty x') do
    incr n_rounds;
    (* the paper's inner for-loop: best candidate of each eligible group *)
    n_pop := 0;
    (match engine with
    | `Classic ->
        let fh = Option.get heaps in
        for g = 0 to n_groups - 1 do
          if eligible g then
            match candidate fh g with
            | None -> ()
            | Some (j, prio) -> append g j prio
        done
    | `Eager ->
        for g = 0 to n_groups - 1 do
          if eligible g then
            match candidate_eager g with
            | None -> ()
            | Some (j, prio) -> append g j prio
        done
    | `Lazy ->
        (* validate the best-bound group first so the skip threshold is as
           high as possible before the sweep *)
        let fh = Option.get heaps in
        let gmax = ref (-1) and bmax = ref neg_infinity in
        for g = 0 to n_groups - 1 do
          if eligible g then begin
            let b = Flat_heap.top_bound fh g in
            if b > !bmax then begin
              gmax := g;
              bmax := b
            end
          end
        done;
        let seeded = if !gmax >= 0 then candidate fh !gmax else None in
        let best_prio =
          ref (match seeded with Some (_, p) -> p | None -> neg_infinity)
        in
        for g = 0 to n_groups - 1 do
          if eligible g then
            if g = !gmax then (
              match seeded with
              | Some (j, p) -> append g j p
              | None -> ())
            else if Flat_heap.size fh g = 0 then ()
            else if Flat_heap.top_bound fh g < !best_prio -. skip_margin then
              incr n_bound_skips
            else
              match candidate fh g with
              | None -> ()
              | Some (j, p) ->
                  if p > !best_prio then best_prio := p;
                  append g j p
        done);
    (* near-equal cost-effectiveness breaks toward the least-loaded group,
       which spreads the cover across APs at no loss of greedy quality *)
    let best_j = ref (-1) and best_p = ref neg_infinity and best_g = ref 0 in
    for k = !n_pop - 1 downto 0 do
      let g = pop_g.(k) and j = pop_j.(k) and prio = pop_p.(k) in
      if !best_j < 0 then begin
        best_j := j;
        best_p := prio;
        best_g := g
      end
      else if
        prio > !best_p +. 1e-12
        || (prio >= !best_p -. 1e-12 && spent.(g) < spent.(!best_g) -. 1e-12)
      then begin
        best_j := j;
        best_p := prio;
        best_g := g
      end
    done;
    if !best_j < 0 then continue := false
    else begin
      let j = !best_j in
      (* re-enqueue the losing groups' candidates (heap engines only:
         the eager rescan never removes anything) *)
      (match heaps with
      | None -> ()
      | Some fh ->
          for k = !n_pop - 1 downto 0 do
            if pop_j.(k) <> j then
              Flat_heap.push fh pop_g.(k) ~prio:pop_p.(k) pop_j.(k)
          done);
      incr n_selections;
      let g = Cover_instance.group inst j in
      let c = Cover_instance.cost inst j in
      spent.(g) <- spent.(g) +. c;
      raw := j :: !raw;
      overshoot := (j, spent.(g) > budgets.(g) +. 1e-12) :: !overshoot;
      Bitset.diff_inplace x' (Cover_instance.set inst j)
    end
  done;
  let raw_order = List.rev !raw in
  let tagged = List.rev !overshoot in
  let h1 = List.filter_map (fun (j, over) -> if over then None else Some j) tagged in
  let h2 = List.filter_map (fun (j, over) -> if over then Some j else None) tagged in
  let kept1, cov1 = replay inst ~universe:x0 h1 in
  let kept2, cov2 = replay inst ~universe:x0 h2 in
  let kept, covered =
    if weight_of cov1 >= weight_of cov2 then (kept1, cov1) else (kept2, cov2)
  in
  let group_cost = Array.make n_groups 0. in
  List.iter
    (fun { set = j; _ } ->
      let g = Cover_instance.group inst j in
      group_cost.(g) <- group_cost.(g) +. Cover_instance.cost inst j)
    kept;
  Wlan_obs.Counters.incr c_runs;
  Wlan_obs.Counters.add c_rounds !n_rounds;
  Wlan_obs.Counters.add c_selections !n_selections;
  Wlan_obs.Counters.add c_candidate_evals !n_candidate_evals;
  Wlan_obs.Counters.add c_heap_pops !n_heap_pops;
  Wlan_obs.Counters.add c_bound_skips !n_bound_skips;
  { kept; raw_order; covered; group_cost }

(** {1 SCG sessions: cross-round bound persistence}

    The SCG driver (Fig. 6) re-runs the greedy once per round over a
    monotonically shrinking remaining set, and the boxed version paid a
    full [O(n_sets)] gain-evaluation pass to seed every round's heaps. A
    session exploits the monotonicity for the [`Lazy] engine: a set's
    last {e exactly}-computed score (against some earlier, larger
    remaining set) is an upper bound on its score against any later one,
    so each round's heap bank is seeded straight from the stored bound
    plane with zero gain evaluations — the pop protocol revalidates
    lazily, exactly as it already does for stale within-round bounds.

    Two disciplines keep the bounds sound:
    - Scores computed {e during} a round are measured against the round's
      working universe [x'], which shrinks with every raw selection —
      including the half the H1/H2 split then drops. They can
      under-estimate the next round's gains and are never persisted; at
      the next round's start every set the round popped is re-scored
      exactly against the new remaining.
    - A set with zero gain against the current remaining is dead forever
      (gains never grow back), so it is dropped from all later rounds. *)

type 'a session = {
  s_inst : 'a Cover_instance.t;
  s_mode : [ `Soft | `Hard ];
  s_arena : Arena.t option;
  s_budgets : float array;
  s_ub : float array;  (** stored score bound per set (alive sets only) *)
  s_alive : bool array;
  s_touched : int array;  (** sets the last round popped, to re-score *)
  s_in_touched : bool array;
  mutable s_n_touched : int;
  mutable s_first : bool;
}

let session ?(mode = `Soft) ?arena inst ~budgets =
  if Array.length budgets <> Cover_instance.n_groups inst then
    invalid_arg "Mcg.session: budgets length <> number of groups";
  let n = Int.max 1 (Cover_instance.n_sets inst) in
  {
    s_inst = inst;
    s_mode = mode;
    s_arena = arena;
    s_budgets = budgets;
    s_ub = Array.make n 0.;
    s_alive = Array.make n false;
    s_touched = Array.make n 0;
    s_in_touched = Array.make n false;
    s_n_touched = 0;
    s_first = true;
  }

(** One SCG round against [remaining]. Runs the [`Lazy] round loop of
    {!greedy} (identical selections: stored bounds only delay, never
    prevent, the revalidation every pop performs, and the [`Lower_index]
    total order makes pops independent of heap layout), but seeded from
    the session's bound plane. [remaining] must be a subset of every
    earlier round's — the SCG driver's shrinking uncovered set. *)
let session_round s ~remaining =
  let inst = s.s_inst and budgets = s.s_budgets and mode = s.s_mode in
  let n_groups = Cover_instance.n_groups inst in
  let n_sets = Cover_instance.n_sets inst in
  let x0 = Bitset.inter remaining (Cover_instance.coverable inst) in
  let n_rounds = ref 0
  and n_selections = ref 0
  and n_candidate_evals = ref 0
  and n_heap_pops = ref 0
  and n_bound_skips = ref 0 in
  let x' = Bitset.copy x0 in
  let gain_vs u j =
    incr n_candidate_evals;
    float_of_int (Bitset.inter_cardinal (Cover_instance.set inst j) u)
  in
  let admissible j g = Cover_instance.cost inst j <= budgets.(g) +. 1e-12 in
  (* refresh: the first round scores every admissible set (the seed pass
     greedy would do); later rounds re-score only the sets the previous
     round popped, against the new remaining — everything else's stored
     bound is still valid *)
  if s.s_first then begin
    s.s_first <- false;
    for j = 0 to n_sets - 1 do
      if admissible j (Cover_instance.group inst j) then begin
        let gain = gain_vs x0 j in
        if gain > 0. then begin
          s.s_ub.(j) <- gain /. Cover_instance.cost inst j;
          s.s_alive.(j) <- true
        end
      end
    done
  end
  else
    for k = 0 to s.s_n_touched - 1 do
      let j = s.s_touched.(k) in
      s.s_in_touched.(j) <- false;
      if s.s_alive.(j) then begin
        let gain = gain_vs x0 j in
        if gain > 0. then s.s_ub.(j) <- gain /. Cover_instance.cost inst j
        else s.s_alive.(j) <- false
      end
    done;
  s.s_n_touched <- 0;
  (* seed the heap bank from stored bounds — zero gain evaluations *)
  let caps = Array.make n_groups 0 in
  for j = 0 to n_sets - 1 do
    if s.s_alive.(j) then begin
      let g = Cover_instance.group inst j in
      caps.(g) <- caps.(g) + 1
    end
  done;
  let fh =
    Flat_heap.make ?arena:s.s_arena ~slot:"mcg.heap" ~tie:`Lower_index
      ~capacities:caps ()
  in
  for j = 0 to n_sets - 1 do
    if s.s_alive.(j) then
      Flat_heap.push fh (Cover_instance.group inst j) ~prio:s.s_ub.(j) j
  done;
  let touch j =
    if not s.s_in_touched.(j) then begin
      s.s_in_touched.(j) <- true;
      s.s_touched.(s.s_n_touched) <- j;
      s.s_n_touched <- s.s_n_touched + 1
    end
  in
  let revalidate j =
    touch j;
    let gain = gain_vs x' j in
    if gain <= 0. then neg_infinity
    else gain /. Cover_instance.cost inst j
  in
  let spent = Array.make n_groups 0. in
  let raw = ref [] in
  let overshoot = ref [] in
  let fits g j =
    match mode with
    | `Soft -> true
    | `Hard ->
        Cover_instance.cost inst j <= budgets.(g) -. spent.(g) +. 1e-12
  in
  let rec candidate g =
    let j = Flat_heap.pop_max fh g ~revalidate in
    if j < 0 then None
    else begin
      incr n_heap_pops;
      let prio = fh.Flat_heap.last_prio in
      if fits g j then Some (j, prio) else candidate g
    end
  in
  let skip_margin = 1e-9 in
  let eligible g = spent.(g) < budgets.(g) -. 1e-12 in
  let pop_g, pop_j =
    match s.s_arena with
    | Some a ->
        (Arena.ints a "mcg.pop_g" n_groups, Arena.ints a "mcg.pop_j" n_groups)
    | None ->
        (Array.make (Int.max 1 n_groups) 0, Array.make (Int.max 1 n_groups) 0)
  in
  let pop_p =
    match s.s_arena with
    | Some a -> Arena.floats a "mcg.pop_p" n_groups
    | None -> Array.make (Int.max 1 n_groups) 0.
  in
  let n_pop = ref 0 in
  let append g j p =
    pop_g.(!n_pop) <- g;
    pop_j.(!n_pop) <- j;
    pop_p.(!n_pop) <- p;
    incr n_pop
  in
  let continue = ref true in
  while !continue && not (Bitset.is_empty x') do
    incr n_rounds;
    n_pop := 0;
    let gmax = ref (-1) and bmax = ref neg_infinity in
    for g = 0 to n_groups - 1 do
      if eligible g then begin
        let b = Flat_heap.top_bound fh g in
        if b > !bmax then begin
          gmax := g;
          bmax := b
        end
      end
    done;
    let seeded = if !gmax >= 0 then candidate !gmax else None in
    let best_prio =
      ref (match seeded with Some (_, p) -> p | None -> neg_infinity)
    in
    for g = 0 to n_groups - 1 do
      if eligible g then
        if g = !gmax then (
          match seeded with Some (j, p) -> append g j p | None -> ())
        else if Flat_heap.size fh g = 0 then ()
        else if Flat_heap.top_bound fh g < !best_prio -. skip_margin then
          incr n_bound_skips
        else
          match candidate g with
          | None -> ()
          | Some (j, p) ->
              if p > !best_prio then best_prio := p;
              append g j p
    done;
    let best_j = ref (-1) and best_p = ref neg_infinity and best_g = ref 0 in
    for k = !n_pop - 1 downto 0 do
      let g = pop_g.(k) and j = pop_j.(k) and prio = pop_p.(k) in
      if !best_j < 0 then begin
        best_j := j;
        best_p := prio;
        best_g := g
      end
      else if
        prio > !best_p +. 1e-12
        || (prio >= !best_p -. 1e-12 && spent.(g) < spent.(!best_g) -. 1e-12)
      then begin
        best_j := j;
        best_p := prio;
        best_g := g
      end
    done;
    if !best_j < 0 then continue := false
    else begin
      let j = !best_j in
      for k = !n_pop - 1 downto 0 do
        if pop_j.(k) <> j then
          Flat_heap.push fh pop_g.(k) ~prio:pop_p.(k) pop_j.(k)
      done;
      incr n_selections;
      let g = Cover_instance.group inst j in
      let c = Cover_instance.cost inst j in
      spent.(g) <- spent.(g) +. c;
      raw := j :: !raw;
      overshoot := (j, spent.(g) > budgets.(g) +. 1e-12) :: !overshoot;
      Bitset.diff_inplace x' (Cover_instance.set inst j)
    end
  done;
  let raw_order = List.rev !raw in
  let tagged = List.rev !overshoot in
  let h1 =
    List.filter_map (fun (j, over) -> if over then None else Some j) tagged
  in
  let h2 =
    List.filter_map (fun (j, over) -> if over then Some j else None) tagged
  in
  let kept1, cov1 = replay inst ~universe:x0 h1 in
  let kept2, cov2 = replay inst ~universe:x0 h2 in
  let kept, covered =
    if Bitset.cardinal cov1 >= Bitset.cardinal cov2 then (kept1, cov1)
    else (kept2, cov2)
  in
  let group_cost = Array.make n_groups 0. in
  List.iter
    (fun { set = j; _ } ->
      let g = Cover_instance.group inst j in
      group_cost.(g) <- group_cost.(g) +. Cover_instance.cost inst j)
    kept;
  Wlan_obs.Counters.incr c_runs;
  Wlan_obs.Counters.add c_rounds !n_rounds;
  Wlan_obs.Counters.add c_selections !n_selections;
  Wlan_obs.Counters.add c_candidate_evals !n_candidate_evals;
  Wlan_obs.Counters.add c_heap_pops !n_heap_pops;
  Wlan_obs.Counters.add c_bound_skips !n_bound_skips;
  { kept; raw_order; covered; group_cost }

(** {1 Split recomputation}

    The H1/H2 repair is a {e global} decision: greedy keeps whichever
    half covers more over the whole instance. A sharded driver runs the
    greedy per interaction component and must therefore re-make that
    decision across shards: [resplit] recomputes both halves (and their
    weights) of one shard's raw selection order so the caller can sum
    weights globally and keep the same half everywhere — exactly what
    one unsharded run would have kept, since per-group spent sequences
    (which determine the overshoot tags) never cross shards. *)

type split = {
  h1 : selection list;  (** within-budget selections, replayed *)
  h2 : selection list;  (** overshooting selections, replayed *)
  cov1 : Bitset.t;
  cov2 : Bitset.t;
  w1 : float;  (** weight of [cov1], as {!greedy} would score it *)
  w2 : float;
}

let resplit ?element_weights inst ~budgets ~universe ~raw_order =
  let x0 = Bitset.inter universe (Cover_instance.coverable inst) in
  let weight_of set =
    match element_weights with
    | None -> float_of_int (Bitset.cardinal set)
    | Some w -> Bitset.fold (fun e acc -> acc +. w.(e)) set 0.
  in
  let spent = Array.make (Cover_instance.n_groups inst) 0. in
  let tagged =
    List.map
      (fun j ->
        let g = Cover_instance.group inst j in
        spent.(g) <- spent.(g) +. Cover_instance.cost inst j;
        (j, spent.(g) > budgets.(g) +. 1e-12))
      raw_order
  in
  let h1 =
    List.filter_map (fun (j, over) -> if over then None else Some j) tagged
  in
  let h2 =
    List.filter_map (fun (j, over) -> if over then Some j else None) tagged
  in
  let kept1, cov1 = replay inst ~universe:x0 h1 in
  let kept2, cov2 = replay inst ~universe:x0 h2 in
  {
    h1 = kept1;
    h2 = kept2;
    cov1;
    cov2;
    w1 = weight_of cov1;
    w2 = weight_of cov2;
  }

(** Number of elements the solution covers. *)
let coverage r = Bitset.cardinal r.covered

(** Check the budget constraint of a result. *)
let within_budgets r ~budgets =
  Array.for_all2 (fun c b -> c <= b +. 1e-9) r.group_cost budgets

(** {1 Exact solver} *)

type exact_result = {
  sets : int list;
  exact_covered : Bitset.t;
  coverage_weight : float;
  proved_optimal : bool;
}

(** Exact MCG by branch and bound over include/exclude decisions, with a
    reachability bound (current coverage + everything the remaining sets
    could still cover). Exponential in the number of sets — for the tiny
    instances the tests use to cross-validate the greedy and the ILP
    solvers. *)
let exact ?(node_limit = 1_000_000) ?element_weights inst ~budgets ?universe
    () =
  if Array.length budgets <> Cover_instance.n_groups inst then
    invalid_arg "Mcg.exact: budgets length <> number of groups";
  let x0 =
    match universe with
    | Some u -> Bitset.inter u (Cover_instance.coverable inst)
    | None -> Cover_instance.coverable inst
  in
  let n = Cover_instance.n_elements inst in
  let weight_of set =
    match element_weights with
    | None -> float_of_int (Bitset.cardinal set)
    | Some w -> Bitset.fold (fun e acc -> acc +. w.(e)) set 0.
  in
  let m = Cover_instance.n_sets inst in
  (* order sets by decreasing standalone effectiveness for early incumbents *)
  let order = Array.init m Fun.id in
  Array.sort
    (fun a b ->
      Float.compare
        (weight_of (Bitset.inter (Cover_instance.set inst b) x0)
        /. Cover_instance.cost inst b)
        (weight_of (Bitset.inter (Cover_instance.set inst a) x0)
        /. Cover_instance.cost inst a))
    order;
  (* suffix unions for the reachability bound *)
  let suffix = Array.make (m + 1) (Bitset.create n) in
  for i = m - 1 downto 0 do
    suffix.(i) <-
      Bitset.union suffix.(i + 1)
        (Bitset.inter (Cover_instance.set inst order.(i)) x0)
  done;
  let best_w = ref 0. and best_sets = ref [] in
  let nodes = ref 0 and truncated = ref false in
  let spent = Array.make (Cover_instance.n_groups inst) 0. in
  let rec go i picked covered covered_w =
    incr nodes;
    if !nodes > node_limit then truncated := true
    else if covered_w > !best_w +. 1e-12 then begin
      best_w := covered_w;
      best_sets := picked;
      go_children i picked covered covered_w
    end
    else go_children i picked covered covered_w
  and go_children i picked covered covered_w =
    if i < m && not !truncated then begin
      let reachable =
        covered_w +. weight_of (Bitset.diff suffix.(i) covered)
      in
      if reachable > !best_w +. 1e-12 then begin
        let j = order.(i) in
        let g = Cover_instance.group inst j in
        let c = Cover_instance.cost inst j in
        (* include j if it fits its group's budget *)
        if spent.(g) +. c <= budgets.(g) +. 1e-12 then begin
          spent.(g) <- spent.(g) +. c;
          let newly = Bitset.diff (Bitset.inter (Cover_instance.set inst j) x0) covered in
          let covered' = Bitset.union covered newly in
          go (i + 1) (j :: picked) covered' (covered_w +. weight_of newly);
          spent.(g) <- spent.(g) -. c
        end;
        (* exclude j *)
        go (i + 1) picked covered covered_w
      end
    end
  in
  go 0 [] (Bitset.create n) 0.;
  let covered = Bitset.create n in
  List.iter
    (fun j ->
      Bitset.union_inplace covered (Bitset.inter (Cover_instance.set inst j) x0))
    !best_sets;
  {
    sets = List.rev !best_sets;
    exact_covered = covered;
    coverage_weight = !best_w;
    proved_optimal = not !truncated;
  }
