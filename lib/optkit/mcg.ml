(** Maximum Coverage with Group Budgets (MCG), cost version — the engine of
    the paper's Centralized MNU (Fig. 3), after Chekuri–Kumar (APPROX'04).

    Sets are partitioned into groups (one group per AP); each group [G_i]
    has a budget [B_i] (the AP's multicast airtime budget). The greedy loop
    picks, among groups whose spent budget is still strictly below their
    limit, the most cost-effective set ([|S ∩ X'| / c(S)]). A selection may
    overshoot its group's budget; the classic repair partitions the
    selections into [H1] (those that kept their group within budget) and
    [H2] (the at-most-one-per-group overshooting selections) and keeps the
    half covering more elements, yielding the 8-approximation of Theorem 2
    (the greedy H is a 4-approximation, and max(H1, H2) ≥ H/2). *)

(* Deterministic event counters (DESIGN.md §4.9). The greedy loop is
   purely sequential, so these totals are trivially scheduling-free. *)
let c_runs = Wlan_obs.Counters.make "mcg.runs"
let c_rounds = Wlan_obs.Counters.make "mcg.rounds"
let c_selections = Wlan_obs.Counters.make "mcg.selections"
let c_candidate_evals = Wlan_obs.Counters.make "mcg.candidate_evals"
let c_heap_pops = Wlan_obs.Counters.make "mcg.heap_pops"
let c_bound_skips = Wlan_obs.Counters.make "mcg.bound_skips"

type selection = { set : int; newly : Bitset.t }

type result = {
  kept : selection list;  (** the returned solution (H1 or H2), in order *)
  raw_order : int list;  (** H before the split, in selection order *)
  covered : Bitset.t;  (** covered by [kept] *)
  group_cost : float array;  (** per-group cost of [kept]; each <= budget *)
}

let replay inst ~universe sets =
  let x' = Bitset.copy universe in
  let kept =
    List.map
      (fun j ->
        let newly = Bitset.inter (Cover_instance.set inst j) x' in
        Bitset.diff_inplace x' newly;
        { set = j; newly })
      sets
  in
  let covered = Bitset.diff universe x' in
  (kept, covered)

(** [greedy inst ~budgets ?universe ()] runs budgeted greedy + split.
    [budgets.(i)] is group [i]'s budget. Only elements of [universe]
    (default: everything coverable) count as coverage. Sets costing more
    than their group's budget are never picked (the paper assumes
    [c(S) <= B_i]; callers should pre-filter, but we also guard here).

    [element_weights] generalizes coverage from counting to weighted sums
    (revenue-weighted users): the greedy score becomes
    [weight(S ∩ X') / c(S)] and the H1/H2 split keeps the heavier half.
    Weights must be non-negative; omitted weights mean 1 per element.

    [mode] selects the overshoot discipline:
    - [`Soft] (default, the paper's Fig. 3): a group stays eligible while
      its spent budget is strictly below the limit, so the last selection
      may overshoot; the H1/H2 split repairs feasibility. This carries the
      8-approximation guarantee.
    - [`Hard]: a set is only selectable if it fits the group's remaining
      budget exactly; nothing overshoots and no split is needed. No
      coverage guarantee, but never wastes budget — the practical variant
      the BLA driver can also try.

    [engine] selects the candidate-generation strategy:
    - [`Classic] (default): per-group lazy max-heaps, every eligible
      group re-validated each round. Equal scores resolve by the heap's
      internal layout — the historical behavior every recorded experiment
      output is pinned to, which is why it stays the default: any change
      to the order of heap operations resolves score ties differently.
    - [`Lazy]: like [`Classic] but with a total tie order (lower set
      index wins equal scores) and bound-based skipping — each round
      validates the group with the best stored bound first, then skips
      every group whose stored bound (an upper bound on its best fresh
      score) cannot beat the best validated score. Asymptotically the
      groups untouched by recent winners are never re-scored. Same
      greedy quality; selections may differ from [`Classic] only where
      two sets tie exactly on [gain/cost].
    - [`Eager]: rescans every set of every eligible group each round —
      the O(rounds · sets) reference. Produces the same selection
      sequence as [`Lazy] (a qcheck property asserts this). *)
let greedy ?(mode = `Soft) ?(engine = `Classic) ?element_weights inst ~budgets
    ?universe () =
  if Array.length budgets <> Cover_instance.n_groups inst then
    invalid_arg "Mcg.greedy: budgets length <> number of groups";
  (match element_weights with
  | Some w ->
      if Array.length w <> Cover_instance.n_elements inst then
        invalid_arg "Mcg.greedy: element_weights arity";
      Array.iter
        (fun x -> if x < 0. then invalid_arg "Mcg.greedy: negative weight")
        w
  | None -> ());
  let x0 =
    match universe with
    | Some u -> Bitset.inter u (Cover_instance.coverable inst)
    | None -> Cover_instance.coverable inst
  in
  (* local event accumulators, flushed to the counter plane once at the
     end: plain int refs keep the greedy inner loop free of even the
     gated atomic load, and the flushed totals are identical *)
  let n_rounds = ref 0
  and n_selections = ref 0
  and n_candidate_evals = ref 0
  and n_heap_pops = ref 0
  and n_bound_skips = ref 0 in
  let x' = Bitset.copy x0 in
  (* weighted gain of covering [S ∩ X'] *)
  let gain_of j =
    incr n_candidate_evals;
    let s = Cover_instance.set inst j in
    match element_weights with
    | None -> float_of_int (Bitset.inter_cardinal s x')
    | Some w ->
        let acc = ref 0. in
        Bitset.iter_inter (fun e -> acc := !acc +. w.(e)) s x';
        !acc
  in
  let weight_of set =
    match element_weights with
    | None -> float_of_int (Bitset.cardinal set)
    | Some w -> Bitset.fold (fun e acc -> acc +. w.(e)) set 0.
  in
  let n_groups = Cover_instance.n_groups inst in
  let n_sets = Cover_instance.n_sets inst in
  (* static eligibility: sets over their group's budget can never be
     picked; zero-gain sets stay at zero gain forever (gains only shrink) *)
  let admissible j g = Cover_instance.cost inst j <= budgets.(g) +. 1e-12 in
  (* heap engines' state: per-group lazy max-heaps. [`Lazy] orders equal
     scores by lower set index so pops are independent of layout history;
     [`Classic] keeps the historical layout-resolved ties. *)
  let heaps =
    match engine with
    | `Eager -> [||]
    | `Classic | `Lazy ->
        let tie =
          match engine with
          | `Lazy -> Some (fun j j' -> Int.compare j' j)
          | _ -> None
        in
        let heaps = Array.init n_groups (fun _ -> Lazy_heap.create ?tie ()) in
        for j = 0 to n_sets - 1 do
          let g = Cover_instance.group inst j in
          if admissible j g then begin
            let gain = gain_of j in
            if gain > 0. then
              Lazy_heap.push heaps.(g)
                ~prio:(gain /. Cover_instance.cost inst j)
                j
          end
        done;
        heaps
  in
  (* eager engine state: per-group admissible set lists, ascending index *)
  let group_sets =
    match engine with
    | `Classic | `Lazy -> [||]
    | `Eager ->
        let gs = Array.make n_groups [] in
        for j = n_sets - 1 downto 0 do
          let g = Cover_instance.group inst j in
          if admissible j g && gain_of j > 0. then gs.(g) <- j :: gs.(g)
        done;
        gs
  in
  let revalidate j =
    let gain = gain_of j in
    if gain <= 0. then neg_infinity
    else gain /. Cover_instance.cost inst j
  in
  let spent = Array.make n_groups 0. in
  let raw = ref [] in
  (* per selection: did it overshoot its group's budget? *)
  let overshoot = ref [] in
  let fits g j =
    match mode with
    | `Soft -> true
    | `Hard ->
        Cover_instance.cost inst j <= budgets.(g) -. spent.(g) +. 1e-12
  in
  (* pop a group's best candidate; in [`Hard] mode, sets that no longer fit
     the group's remaining budget are dropped for good (remaining budget
     only shrinks) *)
  let rec candidate g =
    match Lazy_heap.pop_max heaps.(g) ~revalidate with
    | None -> None
    | Some (j, prio) ->
        incr n_heap_pops;
        if fits g j then Some (j, prio) else candidate g
  in
  (* full rescan of one group: best fresh score, lower index on ties *)
  let candidate_eager g =
    List.fold_left
      (fun acc j ->
        if not (fits g j) then acc
        else
          let gain = gain_of j in
          if gain <= 0. then acc
          else
            let prio = gain /. Cover_instance.cost inst j in
            match acc with Some (_, p) when p >= prio -> acc | _ -> Some (j, prio))
      None group_sets.(g)
  in
  (* A group whose stored bound is below the best validated score by more
     than this margin is skipped without re-scoring: its best fresh score
     (<= the bound) is then too far below the winner to win the round or
     land in the fold's 1e-12 tie window. 1e-9 dominates that window, so
     skipping never changes the selection. *)
  let skip_margin = 1e-9 in
  let eligible g = spent.(g) < budgets.(g) -. 1e-12 in
  let continue = ref true in
  while !continue && not (Bitset.is_empty x') do
    incr n_rounds;
    (* the paper's inner for-loop: best candidate of each eligible group *)
    let popped = ref [] in
    (match engine with
    | `Classic ->
        for g = 0 to n_groups - 1 do
          if eligible g then
            match candidate g with
            | None -> ()
            | Some (j, prio) -> popped := (g, j, prio) :: !popped
        done
    | `Eager ->
        for g = 0 to n_groups - 1 do
          if eligible g then
            match candidate_eager g with
            | None -> ()
            | Some (j, prio) -> popped := (g, j, prio) :: !popped
        done
    | `Lazy ->
        (* validate the best-bound group first so the skip threshold is as
           high as possible before the sweep *)
        let gmax = ref (-1) and bmax = ref neg_infinity in
        for g = 0 to n_groups - 1 do
          if eligible g then
            match Lazy_heap.top_bound heaps.(g) with
            | Some b when b > !bmax ->
                gmax := g;
                bmax := b
            | _ -> ()
        done;
        let seeded = if !gmax >= 0 then candidate !gmax else None in
        let best_prio =
          ref (match seeded with Some (_, p) -> p | None -> neg_infinity)
        in
        for g = 0 to n_groups - 1 do
          if eligible g then
            if g = !gmax then (
              match seeded with
              | Some (j, p) -> popped := (g, j, p) :: !popped
              | None -> ())
            else
              match Lazy_heap.top_bound heaps.(g) with
              | None -> ()
              | Some b when b < !best_prio -. skip_margin ->
                  incr n_bound_skips
              | Some _ -> (
                  match candidate g with
                  | None -> ()
                  | Some (j, p) ->
                      if p > !best_prio then best_prio := p;
                      popped := (g, j, p) :: !popped)
        done);
    (* near-equal cost-effectiveness breaks toward the least-loaded group,
       which spreads the cover across APs at no loss of greedy quality *)
    let best =
      List.fold_left
        (fun acc (g, j, prio) ->
          match acc with
          | Some (j', p) ->
              let g' = Cover_instance.group inst j' in
              if
                prio > p +. 1e-12
                || (prio >= p -. 1e-12 && spent.(g) < spent.(g') -. 1e-12)
              then Some (j, prio)
              else acc
          | None -> Some (j, prio))
        None !popped
    in
    match best with
    | None -> continue := false
    | Some (j, _) ->
        (* re-enqueue the losing groups' candidates (lazy engine only:
           the eager rescan never removes anything) *)
        (match engine with
        | `Eager -> ()
        | `Classic | `Lazy ->
            List.iter
              (fun (g, j', prio) ->
                if j' <> j then Lazy_heap.push heaps.(g) ~prio j')
              !popped);
        incr n_selections;
        let g = Cover_instance.group inst j in
        let c = Cover_instance.cost inst j in
        spent.(g) <- spent.(g) +. c;
        raw := j :: !raw;
        overshoot := (j, spent.(g) > budgets.(g) +. 1e-12) :: !overshoot;
        Bitset.diff_inplace x' (Cover_instance.set inst j)
  done;
  let raw_order = List.rev !raw in
  let tagged = List.rev !overshoot in
  let h1 = List.filter_map (fun (j, over) -> if over then None else Some j) tagged in
  let h2 = List.filter_map (fun (j, over) -> if over then Some j else None) tagged in
  let kept1, cov1 = replay inst ~universe:x0 h1 in
  let kept2, cov2 = replay inst ~universe:x0 h2 in
  let kept, covered =
    if weight_of cov1 >= weight_of cov2 then (kept1, cov1) else (kept2, cov2)
  in
  let group_cost = Array.make n_groups 0. in
  List.iter
    (fun { set = j; _ } ->
      let g = Cover_instance.group inst j in
      group_cost.(g) <- group_cost.(g) +. Cover_instance.cost inst j)
    kept;
  Wlan_obs.Counters.incr c_runs;
  Wlan_obs.Counters.add c_rounds !n_rounds;
  Wlan_obs.Counters.add c_selections !n_selections;
  Wlan_obs.Counters.add c_candidate_evals !n_candidate_evals;
  Wlan_obs.Counters.add c_heap_pops !n_heap_pops;
  Wlan_obs.Counters.add c_bound_skips !n_bound_skips;
  { kept; raw_order; covered; group_cost }

(** Number of elements the solution covers. *)
let coverage r = Bitset.cardinal r.covered

(** Check the budget constraint of a result. *)
let within_budgets r ~budgets =
  Array.for_all2 (fun c b -> c <= b +. 1e-9) r.group_cost budgets

(** {1 Exact solver} *)

type exact_result = {
  sets : int list;
  exact_covered : Bitset.t;
  coverage_weight : float;
  proved_optimal : bool;
}

(** Exact MCG by branch and bound over include/exclude decisions, with a
    reachability bound (current coverage + everything the remaining sets
    could still cover). Exponential in the number of sets — for the tiny
    instances the tests use to cross-validate the greedy and the ILP
    solvers. *)
let exact ?(node_limit = 1_000_000) ?element_weights inst ~budgets ?universe
    () =
  if Array.length budgets <> Cover_instance.n_groups inst then
    invalid_arg "Mcg.exact: budgets length <> number of groups";
  let x0 =
    match universe with
    | Some u -> Bitset.inter u (Cover_instance.coverable inst)
    | None -> Cover_instance.coverable inst
  in
  let n = Cover_instance.n_elements inst in
  let weight_of set =
    match element_weights with
    | None -> float_of_int (Bitset.cardinal set)
    | Some w -> Bitset.fold (fun e acc -> acc +. w.(e)) set 0.
  in
  let m = Cover_instance.n_sets inst in
  (* order sets by decreasing standalone effectiveness for early incumbents *)
  let order = Array.init m Fun.id in
  Array.sort
    (fun a b ->
      Float.compare
        (weight_of (Bitset.inter (Cover_instance.set inst b) x0)
        /. Cover_instance.cost inst b)
        (weight_of (Bitset.inter (Cover_instance.set inst a) x0)
        /. Cover_instance.cost inst a))
    order;
  (* suffix unions for the reachability bound *)
  let suffix = Array.make (m + 1) (Bitset.create n) in
  for i = m - 1 downto 0 do
    suffix.(i) <-
      Bitset.union suffix.(i + 1)
        (Bitset.inter (Cover_instance.set inst order.(i)) x0)
  done;
  let best_w = ref 0. and best_sets = ref [] in
  let nodes = ref 0 and truncated = ref false in
  let spent = Array.make (Cover_instance.n_groups inst) 0. in
  let rec go i picked covered covered_w =
    incr nodes;
    if !nodes > node_limit then truncated := true
    else if covered_w > !best_w +. 1e-12 then begin
      best_w := covered_w;
      best_sets := picked;
      go_children i picked covered covered_w
    end
    else go_children i picked covered covered_w
  and go_children i picked covered covered_w =
    if i < m && not !truncated then begin
      let reachable =
        covered_w +. weight_of (Bitset.diff suffix.(i) covered)
      in
      if reachable > !best_w +. 1e-12 then begin
        let j = order.(i) in
        let g = Cover_instance.group inst j in
        let c = Cover_instance.cost inst j in
        (* include j if it fits its group's budget *)
        if spent.(g) +. c <= budgets.(g) +. 1e-12 then begin
          spent.(g) <- spent.(g) +. c;
          let newly = Bitset.diff (Bitset.inter (Cover_instance.set inst j) x0) covered in
          let covered' = Bitset.union covered newly in
          go (i + 1) (j :: picked) covered' (covered_w +. weight_of newly);
          spent.(g) <- spent.(g) -. c
        end;
        (* exclude j *)
        go (i + 1) picked covered covered_w
      end
    end
  in
  go 0 [] (Bitset.create n) 0.;
  let covered = Bitset.create n in
  List.iter
    (fun j ->
      Bitset.union_inplace covered (Bitset.inter (Cover_instance.set inst j) x0))
    !best_sets;
  {
    sets = List.rev !best_sets;
    exact_covered = covered;
    coverage_weight = !best_w;
    proved_optimal = not !truncated;
  }
