(** 0/1 integer programming by LP-based branch and bound.

    Sits on {!Lp}. Variables marked binary are branched to 0/1 by adding
    equality rows; continuous variables (like the BLA makespan variable [z])
    are never branched. Upper bounds [x <= 1] on binaries are added lazily:
    only when the relaxation actually pushes a binary above 1 do we add the
    bound row, keeping tableaus small (coverage-style LPs rarely exceed 1).

    Used for the paper's Fig. 12 optimal-solution baselines (MNU and BLA
    ILPs; exact MLA uses the specialized {!Set_cover.exact}). *)

type t = { base : Lp.problem; binary : bool array }

type solution = {
  x : float array;
  objective_value : float;
  proved_optimal : bool;
  nodes : int;
}

let integral ?(tol = 1e-6) v =
  Float.abs (v -. Float.round v) <= tol

let row_fixing n_vars j v : Lp.constr =
  let coeffs = Array.make n_vars 0. in
  coeffs.(j) <- 1.;
  { coeffs; cmp = Lp.Eq; rhs = v }

let row_upper n_vars j : Lp.constr =
  let coeffs = Array.make n_vars 0. in
  coeffs.(j) <- 1.;
  { coeffs; cmp = Lp.Le; rhs = 1. }

(** [solve t] finds an optimal 0/1 assignment.

    [initial_bound] is a known objective value (e.g. from the greedy
    approximation): nodes that cannot beat it are pruned. If no strictly
    better integral solution exists, the result is [None] — the caller keeps
    its greedy solution, now proved optimal.

    [integral_objective] enables rounding-based pruning when every feasible
    objective value is an integer (e.g. "number of users served").

    [node_limit] bounds the search; when exhausted, [proved_optimal] is
    false on the returned incumbent (or the result is [None]). *)
let solve ?(node_limit = 200_000) ?initial_bound ?(integral_objective = false)
    (t : t) : solution option =
  let n = t.base.n_vars in
  if Array.length t.binary <> n then invalid_arg "Ilp.solve: binary mask arity";
  let maximize = t.base.maximize in
  let better a b = if maximize then a > b +. 1e-9 else a < b -. 1e-9 in
  let best : solution option ref = ref None in
  let bound_cut = ref initial_bound in
  let nodes = ref 0 in
  let truncated = ref false in
  (* lazily-discovered global upper-bound rows for binaries *)
  let lazy_bounds : (int, unit) Hashtbl.t = Hashtbl.create 16 in
  let cannot_beat lp_obj =
    let target =
      match (!best, !bound_cut) with
      | Some b, Some c ->
          if maximize then Float.max b.objective_value c
          else Float.min b.objective_value c
      | Some b, None -> b.objective_value
      | None, Some c -> c
      | None, None -> if maximize then neg_infinity else infinity
    in
    (* lint: allow float-eq — "no bound yet" is the exact infinity sentinel *)
    if target = (if maximize then neg_infinity else infinity) then false
    else if integral_objective then
      if maximize then Float.round (lp_obj -. 0.5 +. 1e-6) <= target +. 1e-9
      else Float.round (lp_obj +. 0.5 -. 1e-6) >= target -. 1e-9
    else if maximize then lp_obj <= target +. 1e-9
    else lp_obj >= target -. 1e-9
  in
  let rec node fixings =
    if !nodes >= node_limit then truncated := true
    else begin
      incr nodes;
      let constraints () =
        Array.concat
          [
            t.base.constraints;
            Array.of_list
              (Hashtbl.fold (fun j () acc -> j :: acc) lazy_bounds []
              |> List.sort Int.compare
              |> List.map (row_upper n));
            Array.of_list (List.map (fun (j, v) -> row_fixing n j v) fixings);
          ]
      in
      (* solve, adding violated binary bounds until clean *)
      let rec relax () =
        match Lp.solve { t.base with constraints = constraints () } with
        | Lp.Infeasible -> None
        | Lp.Unbounded -> None (* bounded by construction in our uses *)
        | Lp.Optimal sol ->
            let violated = ref [] in
            Array.iteri
              (fun j v ->
                if t.binary.(j) && v > 1. +. 1e-6
                   && not (Hashtbl.mem lazy_bounds j) then
                  violated := j :: !violated)
              sol.x;
            if !violated = [] then Some sol
            else begin
              List.iter (fun j -> Hashtbl.replace lazy_bounds j ()) !violated;
              relax ()
            end
      in
      match relax () with
      | None -> ()
      | Some sol ->
          if not (cannot_beat sol.objective_value) then begin
            (* most fractional binary *)
            let frac = ref (-1) and frac_d = ref 0. in
            Array.iteri
              (fun j v ->
                if t.binary.(j) && not (integral v) then begin
                  let d = Float.abs (v -. Float.round v) in
                  if d > !frac_d then begin
                    frac := j;
                    frac_d := d
                  end
                end)
              sol.x;
            if !frac < 0 then begin
              (* integral on binaries: new incumbent *)
              let keep =
                match !best with
                | None -> true
                | Some b -> better sol.objective_value b.objective_value
              in
              if keep then
                best :=
                  Some
                    {
                      x = sol.x;
                      objective_value = sol.objective_value;
                      proved_optimal = false;
                      nodes = !nodes;
                    }
            end
            else begin
              let j = !frac in
              (* explore x_j = 1 first: covers faster, finds incumbents early *)
              node ((j, 1.) :: fixings);
              node ((j, 0.) :: fixings)
            end
          end
    end
  in
  node [];
  match !best with
  | None -> None
  | Some b -> Some { b with proved_optimal = not !truncated; nodes = !nodes }
