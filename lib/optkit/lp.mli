(** Dense two-phase primal simplex for linear programs over [x >= 0].

    Constraints are [a·x {<=,>=,=} b] rows; the objective may minimize or
    maximize. Phase 1 drives artificial variables out; phase 2 optimizes
    with Dantzig pivoting, degrading to Bland's rule after an iteration
    threshold so the algorithm terminates. Intended for the small/medium
    dense programs of the ILP branch-and-bound and the LP-rounding cover
    — not a sparse industrial solver. *)

type cmp = Le | Ge | Eq

type constr = { coeffs : float array; cmp : cmp; rhs : float }

type problem = {
  n_vars : int;
  maximize : bool;
  objective : float array;
  constraints : constr array;
}

type solution = { x : float array; objective_value : float }
type result = Optimal of solution | Infeasible | Unbounded

(** @raise Invalid_argument on arity mismatches between [n_vars],
    [objective] and constraint rows. *)
val solve : problem -> result

val pp_result : Format.formatter -> result -> unit
