(** Scratch-buffer arena for the flat greedy kernels (DESIGN.md §4.12).

    Named, growable, reusable int/float buffers. Acquired contents are
    {e unspecified}: callers initialize the prefix they use. Buffers must
    not escape the {!with_arena} extent (or the owner that holds the
    arena) and an arena must never be shared across [Harness.Pool]
    domains — both are flagged by the [arena-escape] lint rule. An arena
    never changes what is computed, only where scratch lives. *)

type t

val create : unit -> t

(** [with_arena f] runs [f] with a fresh arena; nothing acquired from it
    may outlive the call. *)
val with_arena : (t -> 'a) -> 'a

(** [floats t slot n] is the buffer named [slot], grown to hold at least
    [n] floats. Contents unspecified on every call. *)
val floats : t -> string -> int -> float array

(** [ints t slot n] is the buffer named [slot], grown to hold at least
    [n] ints. Contents unspecified on every call. *)
val ints : t -> string -> int -> int array
