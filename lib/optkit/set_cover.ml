(** Weighted Set Cover: the greedy [CostSC] algorithm (Fig. 8 of the paper,
    after Vazirani) and an exact branch-and-bound solver used to measure
    optimality gaps on small instances. *)

(** One greedy pick: the chosen set index and the elements it newly covered
    (the attribution needed to map covers back to user→AP associations). *)
type selection = { set : int; newly : Bitset.t }

type result = {
  chosen : selection list;  (** in selection order *)
  covered : Bitset.t;
  uncovered : Bitset.t;  (** elements no set contains, or left by budget *)
  total_cost : float;
}

let cost_of_sets inst sets =
  List.fold_left (fun acc j -> acc +. Cover_instance.cost inst j) 0. sets

(** Greedy weighted set cover: repeatedly pick the set maximizing
    [|S ∩ X'| / c(S)] (lazy-greedy heap), until everything coverable is
    covered. [(ln n + 1)]-approximation (Theorem 6).

    The heap is a single-group {!Flat_heap} bank driven by the identical
    push/pop sequence as the boxed {!Lazy_heap} it replaced, so the
    selection order is bit-identical; [arena] reuses its planes across
    solves. *)
let greedy ?arena ?(universe : Bitset.t option) inst =
  let n = Cover_instance.n_elements inst in
  let x' =
    match universe with
    | Some u -> Bitset.inter u (Cover_instance.coverable inst)
    | None -> Cover_instance.coverable inst
  in
  let target = Bitset.copy x' in
  let heap =
    Flat_heap.make ?arena ~slot:"set_cover.heap" ~tie:`Layout
      ~capacities:[| Cover_instance.n_sets inst |] ()
  in
  for j = 0 to Cover_instance.n_sets inst - 1 do
    let gain = Bitset.inter_cardinal (Cover_instance.set inst j) x' in
    if gain > 0 then
      Flat_heap.push heap 0
        ~prio:(float_of_int gain /. Cover_instance.cost inst j)
        j
  done;
  let revalidate j =
    let gain = Bitset.inter_cardinal (Cover_instance.set inst j) x' in
    if gain = 0 then neg_infinity
    else float_of_int gain /. Cover_instance.cost inst j
  in
  let chosen = ref [] in
  let continue = ref true in
  while !continue && not (Bitset.is_empty x') do
    let j = Flat_heap.pop_max heap 0 ~revalidate in
    if j < 0 then continue := false
    else begin
      let newly = Bitset.inter (Cover_instance.set inst j) x' in
      chosen := { set = j; newly } :: !chosen;
      Bitset.diff_inplace x' newly
    end
  done;
  let chosen = List.rev !chosen in
  let covered = Bitset.diff target x' in
  let uncovered =
    match universe with
    | Some u -> Bitset.diff u covered
    | None -> Bitset.diff (Bitset.full n) covered
  in
  {
    chosen;
    covered;
    uncovered;
    total_cost = cost_of_sets inst (List.map (fun s -> s.set) chosen);
  }

(** {1 f-approximations}

    The paper remarks (§6.1) that besides greedy, "the layer algorithm,
    which is bounded by a constant, can also be used if for any user the
    number of APs that it can associate with is bounded by a constant" —
    i.e. the classic frequency-based approximations, where
    [f = max element frequency] (the most APs any one user can hear).
    Both are implemented here and cross-checked against the exact solver
    in the tests. *)

(** Maximum element frequency: how many sets the busiest element is in. *)
let max_frequency ?universe inst =
  let n = Cover_instance.n_elements inst in
  let freq = Array.make n 0 in
  for j = 0 to Cover_instance.n_sets inst - 1 do
    Bitset.iter (fun e -> freq.(e) <- freq.(e) + 1) (Cover_instance.set inst j)
  done;
  match universe with
  | None -> Array.fold_left Int.max 0 freq
  | Some u -> Bitset.fold (fun e acc -> Int.max acc freq.(e)) u 0

(** Layering (Vazirani ch. 2): peel off "degree-weighted" cost layers.
    In each layer, compute every live set's cost-per-live-element, take the
    minimum [t], charge every set [t * |live elements|], and pick the sets
    whose cost is exhausted; repeat on what remains. An f-approximation.
    Only elements of [universe] (default: everything coverable) are
    covered; returns the picked sets with coverage attribution. *)
let layered ?universe inst =
  let x' =
    match universe with
    | Some u -> Bitset.inter u (Cover_instance.coverable inst)
    | None -> Cover_instance.coverable inst
  in
  let target = Bitset.copy x' in
  let m = Cover_instance.n_sets inst in
  let residual = Array.init m (Cover_instance.cost inst) in
  let alive = Array.make m true in
  let chosen = ref [] in
  let continue = ref true in
  while !continue && not (Bitset.is_empty x') do
    (* cheapest residual cost per live element *)
    let t = ref infinity in
    for j = 0 to m - 1 do
      if alive.(j) then begin
        let k = Bitset.inter_cardinal (Cover_instance.set inst j) x' in
        if k > 0 then t := Float.min !t (residual.(j) /. float_of_int k)
      end
    done;
    if (!t = infinity) [@lint.allow float_eq] then continue := false
    else begin
      (* charge the layer; exhausted sets are picked *)
      let picked_this_layer = ref [] in
      for j = 0 to m - 1 do
        if alive.(j) then begin
          let k = Bitset.inter_cardinal (Cover_instance.set inst j) x' in
          if k > 0 then begin
            residual.(j) <- residual.(j) -. (!t *. float_of_int k);
            if residual.(j) <= 1e-12 then begin
              alive.(j) <- false;
              picked_this_layer := j :: !picked_this_layer
            end
          end
        end
      done;
      List.iter
        (fun j ->
          let newly = Bitset.inter (Cover_instance.set inst j) x' in
          if not (Bitset.is_empty newly) then begin
            chosen := { set = j; newly } :: !chosen;
            Bitset.diff_inplace x' newly
          end)
        (List.rev !picked_this_layer)
    end
  done;
  let chosen = List.rev !chosen in
  let covered = Bitset.diff target x' in
  {
    chosen;
    covered;
    uncovered = Bitset.diff target covered;
    total_cost = cost_of_sets inst (List.map (fun s -> s.set) chosen);
  }

(** LP rounding: solve the fractional relaxation and keep every set with
    [x_j >= 1/f]. Also an f-approximation; exercises the {!Lp} stack on a
    problem with a known rounding guarantee. Intended for small instances
    (the LP is dense). *)
let lp_rounding ?universe inst =
  let x0 =
    match universe with
    | Some u -> Bitset.inter u (Cover_instance.coverable inst)
    | None -> Cover_instance.coverable inst
  in
  let m = Cover_instance.n_sets inst in
  let f = Int.max 1 (max_frequency ~universe:x0 inst) in
  let constraints =
    Bitset.fold
      (fun e acc ->
        let c = Array.make m 0. in
        for j = 0 to m - 1 do
          if Bitset.mem (Cover_instance.set inst j) e then c.(j) <- 1.
        done;
        Lp.{ coeffs = c; cmp = Ge; rhs = 1. } :: acc)
      x0 []
  in
  let objective = Array.init m (Cover_instance.cost inst) in
  match
    Lp.solve
      {
        Lp.n_vars = m;
        maximize = false;
        objective;
        constraints = Array.of_list constraints;
      }
  with
  | Lp.Infeasible | Lp.Unbounded -> None
  | Lp.Optimal sol ->
      let threshold = (1. /. float_of_int f) -. 1e-9 in
      let x' = Bitset.copy x0 in
      let chosen = ref [] in
      for j = 0 to m - 1 do
        if sol.Lp.x.(j) >= threshold then begin
          let newly = Bitset.inter (Cover_instance.set inst j) x' in
          if not (Bitset.is_empty newly) then begin
            chosen := { set = j; newly } :: !chosen;
            Bitset.diff_inplace x' newly
          end
        end
      done;
      let chosen = List.rev !chosen in
      let covered = Bitset.diff x0 x' in
      Some
        {
          chosen;
          covered;
          uncovered = Bitset.diff x0 covered;
          total_cost = cost_of_sets inst (List.map (fun s -> s.set) chosen);
        }

(** {1 Exact solver} *)

type exact_result = { sets : int list; cost : float; proved_optimal : bool }

(** Lower bound on the cost of covering [x']: charge every uncovered element
    its cheapest per-element share [min_{S ∋ e} c(S)/|S ∩ X'|]. *)
let lower_bound inst x' =
  let n = Cover_instance.n_elements inst in
  let best = Array.make n infinity in
  for j = 0 to Cover_instance.n_sets inst - 1 do
    let s = Cover_instance.set inst j in
    let k = Bitset.inter_cardinal s x' in
    if k > 0 then begin
      let share = Cover_instance.cost inst j /. float_of_int k in
      Bitset.iter
        (fun e -> if Bitset.mem x' e then best.(e) <- Float.min best.(e) share)
        s
    end
  done;
  Bitset.fold
    (fun e acc ->
      if (best.(e) = infinity) [@lint.allow float_eq] then infinity
      else acc +. best.(e))
    x' 0.

(** Exact weighted set cover by branch and bound. Branches on an uncovered
    element with the fewest candidate sets; prunes with {!lower_bound} and
    the greedy incumbent. Returns [None] when some element of the universe is
    in no set. [node_limit] caps the search; if hit, the incumbent is
    returned with [proved_optimal = false]. *)
let exact ?(node_limit = 2_000_000) ?universe inst =
  let coverable = Cover_instance.coverable inst in
  let x0 =
    match universe with
    | Some u -> Bitset.copy u
    | None -> Bitset.full (Cover_instance.n_elements inst)
  in
  if not (Bitset.subset x0 coverable) then None
  else begin
    let m = Cover_instance.n_sets inst in
    (* candidate sets per element, cheapest first *)
    let cands = Array.make (Cover_instance.n_elements inst) [] in
    for j = m - 1 downto 0 do
      Bitset.iter
        (fun e -> if Bitset.mem x0 e then cands.(e) <- j :: cands.(e))
        (Cover_instance.set inst j)
    done;
    Array.iteri
      (fun e l ->
        cands.(e) <-
          List.sort
            (fun a b ->
              Float.compare (Cover_instance.cost inst a)
                (Cover_instance.cost inst b))
            l)
      cands;
    let g = greedy ?universe inst in
    let best_cost = ref g.total_cost in
    let best_sets = ref (List.map (fun s -> s.set) g.chosen) in
    let nodes = ref 0 in
    let truncated = ref false in
    let rec go x' picked cost =
      incr nodes;
      if !nodes > node_limit then truncated := true
      else if Bitset.is_empty x' then begin
        if cost < !best_cost -. 1e-12 then begin
          best_cost := cost;
          best_sets := picked
        end
      end
      else if cost +. lower_bound inst x' < !best_cost -. 1e-12 then begin
        (* branch on the uncovered element with fewest live candidates *)
        let pick = ref (-1) and pick_n = ref max_int in
        Bitset.iter
          (fun e ->
            let n_live =
              List.length
                (List.filter
                   (fun j ->
                     Bitset.inter_cardinal (Cover_instance.set inst j) x' > 0)
                   cands.(e))
            in
            if n_live < !pick_n then begin
              pick := e;
              pick_n := n_live
            end)
          x';
        let e = !pick in
        List.iter
          (fun j ->
            let s = Cover_instance.set inst j in
            if Bitset.inter_cardinal s x' > 0 then begin
              let x2 = Bitset.diff x' s in
              go x2 (j :: picked) (cost +. Cover_instance.cost inst j)
            end)
          cands.(e)
      end
    in
    go (Bitset.copy x0) [] 0.;
    Some
      { sets = !best_sets; cost = !best_cost; proved_optimal = not !truncated }
  end
