(** Scratch-buffer arena (DESIGN.md §4.12).

    The flat greedy kernels work on preallocated int/float array planes.
    Repeated solves — the [Scg.solve_grid] probe loop, the churn-driven
    [Distributed.Online] settles, every round of a distributed run —
    would re-allocate those planes per probe; an arena lets them be
    fetched once and reused, turning the inner loops allocation-free.

    An arena is a set of named mutable buffers. {!floats}/{!ints} return
    the buffer registered under a slot name, growing it when the
    requested length exceeds the current capacity; the contents are
    {e unspecified} on every acquisition — callers must fully initialize
    the prefix they use. Because buffers are reused, nothing read from an
    arena buffer may outlive the computation that wrote it.

    Lifetime rules (enforced by the [arena-escape] lint rule):
    - a buffer must not escape the dynamic extent of the {!with_arena}
      call (or the owner record) that produced it — copy it out instead;
    - an arena must never be captured by a task submitted to a
      [Harness.Pool]: arenas are single-domain scratch, and two domains
      sharing one would race on the buffers. Give each task its own
      arena (or none).

    Determinism: an arena only changes {e where} scratch lives, never
    what is computed — every kernel result is bit-identical with and
    without one. The [arena.*] counters expose the reuse rate. *)

let c_acquires = Wlan_obs.Counters.make "arena.acquires"
let c_grows = Wlan_obs.Counters.make "arena.grows"
let c_hits = Wlan_obs.Counters.make "arena.hits"

type t = {
  f : (string, float array) Hashtbl.t;
  i : (string, int array) Hashtbl.t;
}

let create () = { f = Hashtbl.create 8; i = Hashtbl.create 8 }

(** [with_arena f] runs [f] with a fresh arena. The arena must not leak
    out of [f] (see the lifetime rules above). *)
let with_arena f = f (create ())

let next_pow2 n =
  let c = ref 16 in
  while !c < n do
    c := !c * 2
  done;
  !c

let acquire tbl ~make ~length slot n =
  Wlan_obs.Counters.incr c_acquires;
  match Hashtbl.find_opt tbl slot with
  | Some a when length a >= n ->
      Wlan_obs.Counters.incr c_hits;
      a
  | Some _ ->
      Wlan_obs.Counters.incr c_grows;
      let a = make (next_pow2 n) in
      Hashtbl.replace tbl slot a;
      a
  | None ->
      let a = make (next_pow2 (Int.max 1 n)) in
      Hashtbl.replace tbl slot a;
      a

(** [floats t slot n] is the float buffer registered under [slot], grown
    to at least [n] entries. Contents unspecified. *)
let floats t slot n =
  acquire t.f ~make:(fun c -> Array.make c 0.) ~length:Array.length slot n

(** [ints t slot n] is the int buffer registered under [slot], grown to
    at least [n] entries. Contents unspecified. *)
let ints t slot n =
  acquire t.i ~make:(fun c -> Array.make c 0) ~length:Array.length slot n
