(** Minimum Makespan Scheduling on identical machines — source problem of
    the paper's BLA NP-hardness proof (Appendix B). *)

type schedule = {
  assignment : int array;  (** job index -> machine index *)
  makespan : float;
}

val makespan_of : machines:int -> jobs:float array -> int array -> float

(** Longest-Processing-Time-first: the classic 4/3-approximation.
    @raise Invalid_argument when [machines <= 0]. *)
val lpt : machines:int -> jobs:float list -> schedule

(** Exact minimum makespan by branch and bound with machine symmetry
    breaking. Exponential; for small instances. *)
val exact : machines:int -> jobs:float list -> schedule
