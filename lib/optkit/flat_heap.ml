(** Structure-of-arrays lazy max-heap bank (DESIGN.md §4.12).

    A bank holds one max-heap per group in two flat planes — a float
    priority plane and an int value plane — laid out CSR-style by a fixed
    per-group capacity. The heap algorithm is {e operation-for-operation}
    the same as {!Lazy_heap} (append + sift-up on push, move-last +
    sift-down on pop, stale tops re-inserted by {!pop_max}), so a bank
    driven by the same push/pop sequence reaches the same internal layout
    and resolves equal-priority comparisons identically: results are
    bit-identical to the boxed heaps, without a [{prio; value}] record
    allocated per entry.

    Capacities are fixed at {!make}: the greedy cores never hold more
    entries per group than they seed (pops precede re-pushes), so the
    seed count is a static bound. Planes can live in an {!Arena} and be
    reused across probes; {!clear} resets every heap to empty without
    touching the planes. *)

type t = {
  prio : float array;  (** priority plane, CSR by [off] *)
  value : int array;  (** value plane, same layout *)
  off : int array;  (** group [g]'s heap occupies [off.(g) .. off.(g+1)-1] *)
  size : int array;  (** live entries per group *)
  n_groups : int;
  tie_lower_index : bool;
      (** equal priorities: lower value wins (the [`Lazy] total order)
          instead of layout order (the [`Classic] behavior) *)
  mutable last_prio : float;  (** fresh priority of the last {!pop_max} *)
}

let make ?arena ?(slot = "flat_heap") ~tie ~capacities () =
  let n_groups = Array.length capacities in
  let total = Array.fold_left ( + ) 0 capacities in
  let off, size, prio, value =
    match arena with
    | None ->
        ( Array.make (n_groups + 1) 0,
          Array.make (Int.max 1 n_groups) 0,
          Array.make (Int.max 1 total) 0.,
          Array.make (Int.max 1 total) 0 )
    | Some a ->
        ( Arena.ints a (slot ^ ".off") (n_groups + 1),
          Arena.ints a (slot ^ ".size") (Int.max 1 n_groups),
          Arena.floats a (slot ^ ".prio") (Int.max 1 total),
          Arena.ints a (slot ^ ".value") (Int.max 1 total) )
  in
  off.(0) <- 0;
  Array.iteri (fun g c -> off.(g + 1) <- off.(g) + c) capacities;
  Array.fill size 0 n_groups 0;
  {
    prio;
    value;
    off;
    size;
    n_groups;
    tie_lower_index = (match tie with `Lower_index -> true | `Layout -> false);
    last_prio = neg_infinity;
  }

let clear t = Array.fill t.size 0 t.n_groups 0
let size t g = t.size.(g)

(* Heap order, identical to [Lazy_heap.beats]: priority first; exactly
   equal priorities fall to the tie order — layout (no swap) or lower
   value. [i]/[j] are plane indices. *)
let beats t i j =
  t.prio.(i) > t.prio.(j)
  || (t.tie_lower_index
     && (t.prio.(i) = t.prio.(j)) [@lint.allow float_eq]
     && t.value.(i) < t.value.(j))

let swap t i j =
  let p = t.prio.(i) and v = t.value.(i) in
  t.prio.(i) <- t.prio.(j);
  t.value.(i) <- t.value.(j);
  t.prio.(j) <- p;
  t.value.(j) <- v

let rec sift_up t ~base i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if beats t (base + i) (base + parent) then begin
      swap t (base + i) (base + parent);
      sift_up t ~base parent
    end
  end

let rec sift_down t ~base ~size i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let m = if l < size && beats t (base + l) (base + i) then l else i in
  let m = if r < size && beats t (base + r) (base + m) then r else m in
  if m <> i then begin
    swap t (base + i) (base + m);
    sift_down t ~base ~size m
  end

let push t g ~prio v =
  let base = t.off.(g) in
  let sz = t.size.(g) in
  if base + sz >= t.off.(g + 1) then
    invalid_arg "Flat_heap.push: group capacity exceeded";
  t.prio.(base + sz) <- prio;
  t.value.(base + sz) <- v;
  t.size.(g) <- sz + 1;
  sift_up t ~base sz

(* Pop the stored top of group [g]; the caller has checked non-emptiness.
   Returns the value, leaving its stored priority in [last_prio]. *)
let pop_top t g =
  let base = t.off.(g) in
  let v = t.value.(base) and p = t.prio.(base) in
  let sz = t.size.(g) - 1 in
  t.size.(g) <- sz;
  if sz > 0 then begin
    t.prio.(base) <- t.prio.(base + sz);
    t.value.(base) <- t.value.(base + sz);
    sift_down t ~base ~size:sz 0
  end;
  t.last_prio <- p;
  v

(** [pop_max t g ~revalidate] pops group [g]'s element with the maximal
    {e fresh} priority — the exact protocol of {!Lazy_heap.pop_max}
    (stale tops re-inserted, [neg_infinity] dropped, accept within
    [1e-12] of the stored bound). Returns [-1] when the heap empties;
    otherwise the value, with its fresh priority in {!last_prio}. *)
let rec pop_max t g ~revalidate =
  if t.size.(g) = 0 then -1
  else begin
    let v = pop_top t g in
    let stored = t.last_prio in
    let fresh = revalidate v in
    if (fresh = neg_infinity) [@lint.allow float_eq] then
      pop_max t g ~revalidate
    else if fresh >= stored -. 1e-12 then begin
      t.last_prio <- fresh;
      v
    end
    else begin
      push t g ~prio:fresh v;
      pop_max t g ~revalidate
    end
  end

(** Stored priority of group [g]'s root — an O(1) upper bound on its best
    fresh priority; [neg_infinity] when empty. *)
let top_bound t g =
  if t.size.(g) = 0 then neg_infinity else t.prio.(t.off.(g))
