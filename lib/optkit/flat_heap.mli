(** Structure-of-arrays lazy max-heap bank: one max-heap per group in two
    flat CSR planes (float priorities, int values), running the exact
    {!Lazy_heap} algorithm — same sift order, same stale-top revalidation
    protocol, same tie resolution — so results are bit-identical to the
    boxed heaps with zero per-entry allocation. Capacities are fixed at
    {!make} (the greedy cores never exceed their seed counts); planes can
    be arena-backed and reused across solves. *)

type t = { (* exposed for the kernels' hot loops *)
  prio : float array;
  value : int array;
  off : int array;
  size : int array;
  n_groups : int;
  tie_lower_index : bool;
  mutable last_prio : float;
}

(** [make ~tie ~capacities ()] builds an empty bank with
    [Array.length capacities] groups. [`Layout] resolves equal priorities
    by heap layout (the [`Classic] behavior); [`Lower_index] by lower
    value (the [`Lazy] total order). With [?arena] the planes are
    acquired from (and reusable through) the arena under [?slot]. *)
val make :
  ?arena:Arena.t ->
  ?slot:string ->
  tie:[ `Layout | `Lower_index ] ->
  capacities:int array ->
  unit ->
  t

(** Empty every heap; planes (and their contents) are untouched. *)
val clear : t -> unit

val size : t -> int -> int

(** [push t g ~prio v] inserts [v] into group [g]'s heap.
    @raise Invalid_argument past the group's capacity. *)
val push : t -> int -> prio:float -> int -> unit

(** [pop_max t g ~revalidate] pops group [g]'s element of maximal fresh
    priority under the {!Lazy_heap.pop_max} protocol (stale tops
    re-inserted, [neg_infinity] dropped). [-1] when the heap empties;
    otherwise the value, its fresh priority left in [last_prio]. *)
val pop_max : t -> int -> revalidate:(int -> float) -> int

(** Stored root priority of group [g] — an upper bound on its best fresh
    priority; [neg_infinity] when empty. *)
val top_bound : t -> int -> float
