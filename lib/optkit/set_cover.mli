(** Weighted Set Cover solvers.

    - {!greedy} — the [CostSC] algorithm (paper Fig. 8, after Vazirani):
      a [(ln n + 1)]-approximation.
    - {!layered} and {!lp_rounding} — the classic f-approximations
      ([f] = maximum element frequency), the alternatives the paper
      mentions in §6.1.
    - {!exact} — branch and bound, for optimality studies on small
      instances.

    Every solver restricts attention to the optional [universe] (default:
    every coverable element) and reports coverage attribution: which
    elements each chosen set newly covered, in selection order — exactly
    what the WLAN reductions need to derive user→AP associations. *)

(** One pick: the chosen set index and the elements it newly covered. *)
type selection = { set : int; newly : Bitset.t }

type result = {
  chosen : selection list;  (** in selection order *)
  covered : Bitset.t;
  uncovered : Bitset.t;  (** universe elements no chosen set contains *)
  total_cost : float;
}

(** Greedy weighted set cover: repeatedly pick the set maximizing
    [|S ∩ X'| / c(S)]. *)
val greedy :
  ?arena:Arena.t -> ?universe:Bitset.t -> 'a Cover_instance.t -> result

(** Maximum element frequency over the (optional) universe: the largest
    number of sets any single element belongs to. *)
val max_frequency : ?universe:Bitset.t -> 'a Cover_instance.t -> int

(** Layering (local-ratio) f-approximation. *)
val layered : ?universe:Bitset.t -> 'a Cover_instance.t -> result

(** LP-relaxation rounding f-approximation (keeps sets with
    [x >= 1/f]); solves a dense LP, intended for small/medium instances.
    [None] only if the LP solver fails. *)
val lp_rounding : ?universe:Bitset.t -> 'a Cover_instance.t -> result option

type exact_result = { sets : int list; cost : float; proved_optimal : bool }

(** Admissible lower bound on the cost of covering [x']: each uncovered
    element is charged its cheapest per-element share. *)
val lower_bound : 'a Cover_instance.t -> Bitset.t -> float

(** Exact weighted set cover by branch and bound (greedy incumbent,
    {!lower_bound} pruning, branching on the most constrained element).
    [None] when some universe element is in no set. If [node_limit] is
    exhausted the incumbent is returned with [proved_optimal = false]. *)
val exact :
  ?node_limit:int ->
  ?universe:Bitset.t ->
  'a Cover_instance.t ->
  exact_result option
