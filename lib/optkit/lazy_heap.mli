(** Max-heap with lazy priority re-validation.

    The classic lazy-greedy structure for submodular maximization /
    covering: priorities may silently {e decrease} between operations; on
    {!pop_max} the stored top priority is recomputed, and if stale the
    element is re-inserted, so each element is re-scored an amortized
    O(log) number of times instead of rescanning every candidate per
    round. *)

type 'a t

(** [create ?tie ()] — [tie] resolves equal-priority comparisons (positive:
    first argument wins). The default ([fun _ _ -> 0]) leaves ties to the
    heap's internal layout, the historical behavior; a total order makes
    the maximum unique, so pop results become independent of layout
    history. *)
val create : ?tie:('a -> 'a -> int) -> unit -> 'a t

val length : 'a t -> int
val is_empty : 'a t -> bool

(** [push t ~prio v] inserts [v] with current priority [prio]. *)
val push : 'a t -> prio:float -> 'a -> unit

(** [pop_max t ~revalidate] pops the element whose {e fresh} priority
    ([revalidate v]) is maximal. Fresh priorities must never exceed stored
    ones. Elements revalidating to [neg_infinity] are dropped. [None] when
    the heap empties. *)
val pop_max : 'a t -> revalidate:('a -> float) -> ('a * float) option

(** Like {!pop_max} but leaves the winner in the heap. *)
val peek_max : 'a t -> revalidate:('a -> float) -> ('a * float) option

(** Stored priority of the root: an O(1) upper bound on the best fresh
    priority in the heap. [None] when empty. *)
val top_bound : 'a t -> float option

val of_list : ?tie:('a -> 'a -> int) -> (float * 'a) list -> 'a t
