(** Subset Sum — source problem of the paper's MNU NP-hardness proof
    (Appendix A), solved exactly by the pseudo-polynomial DP. The tests
    use it to validate the reduction: the single-AP WLAN built from a
    Subset Sum instance serves exactly {!best_at_most}[ numbers target]
    users under the optimal association. *)

(** [solve numbers target] returns the indices (into [numbers]) of a
    subset summing exactly to [target], or [None]. *)
val solve : int list -> int -> int list option

(** Largest achievable subset sum not exceeding [target] (0 when
    [target < 0]). *)
val best_at_most : int list -> int -> int
