(** Fixed-capacity bitsets over dense integer universes [0, capacity).

    The covering algorithms spend almost all their time computing
    [|S ∩ X'|]; representing element sets as bit vectors makes that a
    word-wise AND plus popcount. All operations besides the explicit
    [*_inplace] variants are persistent. *)

type t

(** [create capacity] is the empty set over universe [0, capacity).
    @raise Invalid_argument on negative capacity. *)
val create : int -> t

val capacity : t -> int
val copy : t -> t

(** Mutators; indices outside [0, capacity) raise [Invalid_argument]. *)

val add : t -> int -> unit
val remove : t -> int -> unit

val mem : t -> int -> bool
val cardinal : t -> int
val is_empty : t -> bool

(** Binary operations require equal capacities ([Invalid_argument]
    otherwise). *)

(** [inter_cardinal a b] is [|a ∩ b|], without allocating. *)
val inter_cardinal : t -> t -> int

val inter : t -> t -> t
val union : t -> t -> t
val diff : t -> t -> t

(** [diff_inplace a b] removes the elements of [b] from [a]. *)
val diff_inplace : t -> t -> unit

(** [union_inplace a b] adds the elements of [b] to [a]. *)
val union_inplace : t -> t -> unit

val subset : t -> t -> bool
val equal : t -> t -> bool

(** [full n] contains every element of [0, n). *)
val full : int -> t

val of_list : int -> int list -> t
val iter : (int -> unit) -> t -> unit
val to_list : t -> int list
val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a

(** Smallest element of [a ∩ b], or [None] when disjoint. *)
val first_inter : t -> t -> int option

val pp : Format.formatter -> t -> unit
