(** Fixed-capacity bitsets over dense integer universes [0, capacity).

    The covering algorithms spend almost all their time computing
    [|S ∩ X'|]; representing element sets as bit vectors makes that a
    word-wise AND plus popcount. All operations besides the explicit
    [*_inplace] variants are persistent. *)

type t

(** [create capacity] is the empty set over universe [0, capacity).
    @raise Invalid_argument on negative capacity. *)
val create : int -> t

val capacity : t -> int
val copy : t -> t

(** Mutators; indices outside [0, capacity) raise [Invalid_argument]. *)

val add : t -> int -> unit
val remove : t -> int -> unit

val mem : t -> int -> bool
val cardinal : t -> int
val is_empty : t -> bool

(** Binary operations require equal capacities ([Invalid_argument]
    otherwise). *)

(** [inter_cardinal a b] is [|a ∩ b|], without allocating. *)
val inter_cardinal : t -> t -> int

val inter : t -> t -> t
val union : t -> t -> t
val diff : t -> t -> t

(** [diff_inplace a b] removes the elements of [b] from [a]. *)
val diff_inplace : t -> t -> unit

(** [union_inplace a b] adds the elements of [b] to [a]. *)
val union_inplace : t -> t -> unit

val subset : t -> t -> bool
val equal : t -> t -> bool

(** [full n] contains every element of [0, n). *)
val full : int -> t

val of_list : int -> int list -> t

(** [iter f t] visits members in ascending order, scanning whole words
    and peeling set bits — O(words + members), not O(capacity). *)
val iter : (int -> unit) -> t -> unit

val to_list : t -> int list
val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a

(** [fold_words f acc t] folds [f acc word_index word] over the backing
    62-bit words in index order. The word payload is read-only data; use
    it to fuse set algebra with accumulation (no intermediate set). *)
val fold_words : ('a -> int -> int -> 'a) -> 'a -> t -> 'a

(** [iter_inter f a b] visits the elements of [a ∩ b] in ascending
    order without allocating the intersection. *)
val iter_inter : (int -> unit) -> t -> t -> unit

(** Smallest element of [a ∩ b], or [None] when disjoint. *)
val first_inter : t -> t -> int option

val pp : Format.formatter -> t -> unit
