(** Maximum Coverage with Group Budgets (MCG), cost version — the engine
    of the paper's Centralized MNU (Fig. 3), after Chekuri–Kumar
    (APPROX'04).

    Sets are partitioned into groups (one per AP), each with a budget.
    The greedy loop picks the most cost-effective set among groups whose
    spent budget is below their limit. In [`Soft] mode (the paper's) a
    selection may overshoot its group's budget and the H1/H2 split repairs
    feasibility, giving the 8-approximation of Theorem 2; in [`Hard] mode
    sets that do not fit the remaining budget are simply not selectable
    (no guarantee, empirically tighter). *)

type selection = { set : int; newly : Bitset.t }

type result = {
  kept : selection list;  (** the returned solution, in selection order *)
  raw_order : int list;  (** greedy's H before the split *)
  covered : Bitset.t;  (** covered by [kept] *)
  group_cost : float array;  (** per-group cost of [kept]; <= budgets *)
}

(** [greedy inst ~budgets ?universe ()] — [budgets.(g)] is group [g]'s
    budget ([Invalid_argument] if the length differs from the group
    count). Only elements of [universe] (default: everything coverable)
    count as coverage; [element_weights] (non-negative, default all-1)
    makes coverage a weighted sum — the revenue-weighted MNU
    generalization. Sets costing more than their group's budget are never
    picked.

    [engine] picks the candidate generator. [`Classic] (default)
    re-validates every eligible group's lazy heap each round, resolving
    equal scores by heap layout — the behavior all recorded experiment
    outputs are pinned to. [`Lazy] adds a lower-index tie order and
    bound-based group skipping (each round, groups whose stored score
    bound cannot beat the best validated score are not re-scored) — the
    fast engine for large instances; it may differ from [`Classic] only
    where two sets tie exactly on [gain/cost]. [`Eager] rescans all sets
    each round and produces the same selection sequence as [`Lazy].

    All engines run on flat SoA planes (heap bank and per-round candidate
    planes, DESIGN.md §4.12) that replicate the boxed structures
    operation-for-operation — results are bit-identical to the original
    record-based implementation. [arena] lets repeated solves (the SCG
    grid probes) reuse those planes instead of re-allocating; it never
    changes the result, and must not be shared across pool domains. *)
val greedy :
  ?mode:[ `Soft | `Hard ] ->
  ?engine:[ `Classic | `Lazy | `Eager ] ->
  ?arena:Arena.t ->
  ?element_weights:float array ->
  'a Cover_instance.t ->
  budgets:float array ->
  ?universe:Bitset.t ->
  unit ->
  result

(** {1 SCG sessions} *)

type 'a session

(** [session inst ~budgets] prepares cross-round state for the SCG
    iteration (DESIGN.md §4.12): because SCG's remaining set only
    shrinks, a set's last exactly-computed score upper-bounds its score
    in every later round, so successive {!session_round} calls seed each
    round's heap bank from the stored bound plane with {e zero} gain
    evaluations and re-score only the sets the previous round popped.
    Unweighted coverage only (what SCG uses). [arena] backs the heap and
    candidate planes across rounds; same sharing rules as {!greedy}. *)
val session :
  ?mode:[ `Soft | `Hard ] ->
  ?arena:Arena.t ->
  'a Cover_instance.t ->
  budgets:float array ->
  'a session

(** One round against [remaining] — must be a subset of every earlier
    round's (the SCG driver's shrinking uncovered set). Selections are
    identical to a fresh [greedy ~engine:`Lazy ~universe:remaining]. *)
val session_round : 'a session -> remaining:Bitset.t -> result

(** {1 Split recomputation for sharded drivers} *)

type split = {
  h1 : selection list;  (** within-budget selections, replayed *)
  h2 : selection list;  (** overshooting selections, replayed *)
  cov1 : Bitset.t;
  cov2 : Bitset.t;
  w1 : float;  (** weight of [cov1], as {!greedy} would score it *)
  w2 : float;
}

(** Recompute both halves of the H1/H2 repair from a result's
    [raw_order] (same [budgets]/[universe]/[element_weights] as the run
    that produced it). The H1/H2 keep decision is global — a sharded
    driver sums the halves' weights across shards and keeps the same
    half everywhere, reproducing the unsharded choice. *)
val resplit :
  ?element_weights:float array ->
  'a Cover_instance.t ->
  budgets:float array ->
  universe:Bitset.t ->
  raw_order:int list ->
  split

(** Number of elements the solution covers. *)
val coverage : result -> int

(** Check the budget constraint of a result. *)
val within_budgets : result -> budgets:float array -> bool

(** {1 Exact solver} *)

type exact_result = {
  sets : int list;
  exact_covered : Bitset.t;
  coverage_weight : float;  (** weighted coverage of [sets] *)
  proved_optimal : bool;  (** false when [node_limit] was exhausted *)
}

(** Exact MCG by branch and bound (include/exclude per set, reachability
    bound). Exponential in the set count; tiny instances only. *)
val exact :
  ?node_limit:int ->
  ?element_weights:float array ->
  'a Cover_instance.t ->
  budgets:float array ->
  ?universe:Bitset.t ->
  unit ->
  exact_result
