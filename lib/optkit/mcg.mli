(** Maximum Coverage with Group Budgets (MCG), cost version — the engine
    of the paper's Centralized MNU (Fig. 3), after Chekuri–Kumar
    (APPROX'04).

    Sets are partitioned into groups (one per AP), each with a budget.
    The greedy loop picks the most cost-effective set among groups whose
    spent budget is below their limit. In [`Soft] mode (the paper's) a
    selection may overshoot its group's budget and the H1/H2 split repairs
    feasibility, giving the 8-approximation of Theorem 2; in [`Hard] mode
    sets that do not fit the remaining budget are simply not selectable
    (no guarantee, empirically tighter). *)

type selection = { set : int; newly : Bitset.t }

type result = {
  kept : selection list;  (** the returned solution, in selection order *)
  raw_order : int list;  (** greedy's H before the split *)
  covered : Bitset.t;  (** covered by [kept] *)
  group_cost : float array;  (** per-group cost of [kept]; <= budgets *)
}

(** [greedy inst ~budgets ?universe ()] — [budgets.(g)] is group [g]'s
    budget ([Invalid_argument] if the length differs from the group
    count). Only elements of [universe] (default: everything coverable)
    count as coverage; [element_weights] (non-negative, default all-1)
    makes coverage a weighted sum — the revenue-weighted MNU
    generalization. Sets costing more than their group's budget are never
    picked.

    [engine] picks the candidate generator. [`Classic] (default)
    re-validates every eligible group's lazy heap each round, resolving
    equal scores by heap layout — the behavior all recorded experiment
    outputs are pinned to. [`Lazy] adds a lower-index tie order and
    bound-based group skipping (each round, groups whose stored score
    bound cannot beat the best validated score are not re-scored) — the
    fast engine for large instances; it may differ from [`Classic] only
    where two sets tie exactly on [gain/cost]. [`Eager] rescans all sets
    each round and produces the same selection sequence as [`Lazy]. *)
val greedy :
  ?mode:[ `Soft | `Hard ] ->
  ?engine:[ `Classic | `Lazy | `Eager ] ->
  ?element_weights:float array ->
  'a Cover_instance.t ->
  budgets:float array ->
  ?universe:Bitset.t ->
  unit ->
  result

(** Number of elements the solution covers. *)
val coverage : result -> int

(** Check the budget constraint of a result. *)
val within_budgets : result -> budgets:float array -> bool

(** {1 Exact solver} *)

type exact_result = {
  sets : int list;
  exact_covered : Bitset.t;
  coverage_weight : float;  (** weighted coverage of [sets] *)
  proved_optimal : bool;  (** false when [node_limit] was exhausted *)
}

(** Exact MCG by branch and bound (include/exclude per set, reachability
    bound). Exponential in the set count; tiny instances only. *)
val exact :
  ?node_limit:int ->
  ?element_weights:float array ->
  'a Cover_instance.t ->
  budgets:float array ->
  ?universe:Bitset.t ->
  unit ->
  exact_result
