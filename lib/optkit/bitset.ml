(** Fixed-capacity bitsets over dense integer universes.

    The covering algorithms spend almost all their time computing
    [|S ∩ X'|]; representing element sets as bit vectors makes that a
    word-wise AND plus popcount. Words hold 62 bits so every word stays a
    non-negative OCaml [int]. *)

let bits_per_word = 62

(* Branchless SWAR popcount — no table, no cache pressure. Words carry 62
   bits in a 63-bit OCaml int, so the even-bit mask is truncated to bits
   0..60 (bit 61 is the highest a [w lsr 1] can reach) while the wider
   masks fit max_int as-is; the final byte-fold multiply accumulates the
   total (<= 62) into bits 56.., which a logical shift recovers. *)
let m55 = 0x1555555555555555 (* even bits of a 62-bit word *)
let m33 = 0x3333333333333333
let m0f = 0x0f0f0f0f0f0f0f0f
let m01 = 0x0101010101010101

let popcount_word w =
  let x = w - ((w lsr 1) land m55) in
  let x = (x land m33) + ((x lsr 2) land m33) in
  let x = (x + (x lsr 4)) land m0f in
  (x * m01) lsr 56

type t = { words : int array; capacity : int }

let create capacity =
  if capacity < 0 then invalid_arg "Bitset.create";
  let n_words = (capacity + bits_per_word - 1) / bits_per_word in
  { words = Array.make (Int.max n_words 1) 0; capacity }

let capacity t = t.capacity
let copy t = { t with words = Array.copy t.words }

let check t i =
  if i < 0 || i >= t.capacity then invalid_arg "Bitset: index out of bounds"

let add t i =
  check t i;
  let w = i / bits_per_word and b = i mod bits_per_word in
  t.words.(w) <- t.words.(w) lor (1 lsl b)

let remove t i =
  check t i;
  let w = i / bits_per_word and b = i mod bits_per_word in
  t.words.(w) <- t.words.(w) land lnot (1 lsl b)

let mem t i =
  check t i;
  let w = i / bits_per_word and b = i mod bits_per_word in
  t.words.(w) land (1 lsl b) <> 0

let cardinal t = Array.fold_left (fun acc w -> acc + popcount_word w) 0 t.words
let is_empty t = Array.for_all (fun w -> w = 0) t.words

let same_capacity a b =
  if a.capacity <> b.capacity then invalid_arg "Bitset: capacity mismatch"

(** [inter_cardinal a b] is [|a ∩ b|] without allocating. *)
let inter_cardinal a b =
  same_capacity a b;
  let acc = ref 0 in
  for i = 0 to Array.length a.words - 1 do
    acc := !acc + popcount_word (a.words.(i) land b.words.(i))
  done;
  !acc

let inter a b =
  same_capacity a b;
  { a with words = Array.mapi (fun i w -> w land b.words.(i)) a.words }

let union a b =
  same_capacity a b;
  { a with words = Array.mapi (fun i w -> w lor b.words.(i)) a.words }

let diff a b =
  same_capacity a b;
  { a with words = Array.mapi (fun i w -> w land lnot b.words.(i)) a.words }

(** [diff_inplace a b] removes the elements of [b] from [a]. *)
let diff_inplace a b =
  same_capacity a b;
  for i = 0 to Array.length a.words - 1 do
    a.words.(i) <- a.words.(i) land lnot b.words.(i)
  done

let union_inplace a b =
  same_capacity a b;
  for i = 0 to Array.length a.words - 1 do
    a.words.(i) <- a.words.(i) lor b.words.(i)
  done

let subset a b =
  same_capacity a b;
  let ok = ref true in
  for i = 0 to Array.length a.words - 1 do
    if a.words.(i) land lnot b.words.(i) <> 0 then ok := false
  done;
  !ok

let equal a b = a.capacity = b.capacity && a.words = b.words

let full capacity =
  let t = create capacity in
  for i = 0 to capacity - 1 do
    add t i
  done;
  t

let of_list capacity l =
  let t = create capacity in
  List.iter (add t) l;
  t

(** [fold_words f acc t] folds over the backing words (index, 62-bit
    payload), skipping nothing: callers that fuse word-wise set algebra
    with accumulation avoid materialising intermediate sets. *)
let fold_words f acc t =
  let acc = ref acc in
  for i = 0 to Array.length t.words - 1 do
    acc := f !acc i t.words.(i)
  done;
  !acc

(* Visit the set bits of word [w] (based at [base]) in ascending order:
   peel the lowest set bit with [w land (-w)]; its index is the popcount
   of the ones below it. *)
let iter_word f base w =
  let w = ref w in
  while !w <> 0 do
    let low = !w land - !w in
    f (base + popcount_word (low - 1));
    w := !w land (!w - 1)
  done

let iter f t =
  for i = 0 to Array.length t.words - 1 do
    iter_word f (i * bits_per_word) t.words.(i)
  done

(** [iter_inter f a b] visits the elements of [a ∩ b] in ascending
    order without allocating the intersection. *)
let iter_inter f a b =
  same_capacity a b;
  for i = 0 to Array.length a.words - 1 do
    iter_word f (i * bits_per_word) (a.words.(i) land b.words.(i))
  done

let to_list t =
  let acc = ref [] in
  for i = t.capacity - 1 downto 0 do
    if mem t i then acc := i :: !acc
  done;
  !acc

let fold f t acc =
  let acc = ref acc in
  iter (fun i -> acc := f i !acc) t;
  !acc

(** First element of [a ∩ b], or [None]. *)
let first_inter a b =
  same_capacity a b;
  let res = ref None in
  (try
     for i = 0 to Array.length a.words - 1 do
       let w = a.words.(i) land b.words.(i) in
       if w <> 0 then begin
         let b = ref 0 in
         while w land (1 lsl !b) = 0 do incr b done;
         res := Some ((i * bits_per_word) + !b);
         raise Exit
       end
     done
   with Exit -> ());
  !res

let pp ppf t =
  Fmt.pf ppf "{%a}" Fmt.(list ~sep:comma int) (to_list t)
