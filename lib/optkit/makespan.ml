(** Minimum Makespan Scheduling on identical machines — the source problem
    of the paper's BLA NP-hardness proof (Appendix B). We provide the LPT
    (Longest Processing Time first) 4/3-approximation and an exact
    branch-and-bound, used by the tests to validate the BLA reduction: the
    single-rate WLAN built from a scheduling instance has optimal maximum
    AP load equal to the optimal makespan. *)

type schedule = {
  assignment : int array;  (** job index -> machine index *)
  makespan : float;
}

let makespan_of ~machines ~jobs assignment =
  let loads = Array.make machines 0. in
  Array.iteri (fun j m -> loads.(m) <- loads.(m) +. jobs.(j)) assignment;
  Array.fold_left Float.max 0. loads

(** LPT: sort jobs by decreasing processing time; place each on the
    currently least-loaded machine. *)
let lpt ~machines ~jobs =
  if machines <= 0 then invalid_arg "Makespan.lpt: machines <= 0";
  let jobs = Array.of_list jobs in
  let order = Array.init (Array.length jobs) Fun.id in
  Array.sort (fun a b -> Float.compare jobs.(b) jobs.(a)) order;
  let loads = Array.make machines 0. in
  let assignment = Array.make (Array.length jobs) 0 in
  Array.iter
    (fun j ->
      let m = ref 0 in
      for i = 1 to machines - 1 do
        if loads.(i) < loads.(!m) then m := i
      done;
      assignment.(j) <- !m;
      loads.(!m) <- loads.(!m) +. jobs.(j))
    order;
  { assignment; makespan = makespan_of ~machines ~jobs assignment }

(** Exact minimum makespan by depth-first branch and bound with machine
    symmetry breaking. Exponential; intended for the small instances the
    tests and Fig. 12 use. *)
let exact ~machines ~jobs =
  if machines <= 0 then invalid_arg "Makespan.exact: machines <= 0";
  let jobs_a = Array.of_list jobs in
  let n = Array.length jobs_a in
  let order = Array.init n Fun.id in
  Array.sort (fun a b -> Float.compare jobs_a.(b) jobs_a.(a)) order;
  let incumbent = lpt ~machines ~jobs in
  let best = ref incumbent.makespan in
  let best_assign = ref (Array.copy incumbent.assignment) in
  let loads = Array.make machines 0. in
  let assign = Array.make n 0 in
  let total = Array.fold_left ( +. ) 0. jobs_a in
  let rec go k placed =
    if k = n then begin
      let ms = Array.fold_left Float.max 0. loads in
      if ms < !best -. 1e-12 then begin
        best := ms;
        best_assign := Array.copy assign
      end
    end
    else begin
      let j = order.(k) in
      (* lower bound: remaining work must fit somewhere *)
      let remaining = total -. placed in
      let cur_max = Array.fold_left Float.max 0. loads in
      let avg_bound =
        Float.max cur_max
          ((placed +. remaining) /. float_of_int machines)
      in
      if avg_bound < !best -. 1e-12 then begin
        (* try machines; skip identical (same-load) machines after the first *)
        let seen = ref [] in
        for m = 0 to machines - 1 do
          let dup = List.exists (fun l -> Float.equal l loads.(m)) !seen in
          if (not dup) && loads.(m) +. jobs_a.(j) < !best -. 1e-12 then begin
            seen := loads.(m) :: !seen;
            loads.(m) <- loads.(m) +. jobs_a.(j);
            assign.(j) <- m;
            go (k + 1) (placed +. jobs_a.(j));
            loads.(m) <- loads.(m) -. jobs_a.(j)
          end
          else if not dup then seen := loads.(m) :: !seen
        done
      end
    end
  in
  go 0 0.;
  { assignment = !best_assign; makespan = !best }
