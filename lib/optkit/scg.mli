(** Set Cover with Group Budgets (SCG) — the engine of the paper's
    Centralized BLA (Fig. 6): guess a bound [B*], give every group that
    budget and iterate the MCG greedy [log_{8/7} n + 1] times until every
    element is covered (Theorem 4's [(log_{8/7} n + 1)]-approximation of
    the minimum maximum group cost). *)

type result = {
  bstar : float;
  rounds : Mcg.result list;  (** one MCG result per iteration *)
  feasible : bool;  (** all universe elements covered *)
  group_cost : float array;  (** summed over rounds *)
}

(** The paper's iteration bound: [ceil (log_{8/7} n)] + 1. *)
val max_rounds_for : int -> int

(** All selections, flattened in selection order; the [newly] attributions
    of different rounds are disjoint by construction. *)
val selections : result -> Mcg.selection list

val max_group_cost : result -> float

(** One run at a fixed [B*]. An explicitly-passed [universe] is taken
    literally (uncoverable members make the run infeasible); the default
    universe is everything coverable. [engine] is passed to
    {!Mcg.greedy}, except [`Lazy], whose rounds run through an
    {!Mcg.session} so set-score bounds persist across the shrinking
    remaining set — identical selections, no per-round seed pass.
    [arena] backs each round's heap and candidate planes; never share
    one across pool domains. *)
val solve_for :
  ?mode:[ `Soft | `Hard ] ->
  ?engine:[ `Classic | `Lazy | `Eager ] ->
  ?arena:Arena.t ->
  'a Cover_instance.t ->
  bstar:float ->
  ?universe:Bitset.t ->
  unit ->
  result

(** Geometric grid of [B*] guesses between the smallest feasible bound
    ([max_e min_{S∋e} c(S)] over the universe) and 1. *)
val default_grid :
  ?n_guesses:int -> ?universe:Bitset.t -> 'a Cover_instance.t -> float list

(** The grid's clamped lower end, [max_e min_{S∋e} c(S)] over the
    universe clamped to [[1e-6, 1]]. Decomposes over interaction
    components: the global value is the max of per-shard values
    (elements and the sets containing them never cross shards). *)
val grid_lo : ?universe:Bitset.t -> 'a Cover_instance.t -> float

(** The geometric guesses for a given lower end;
    [default_grid = grid_points (grid_lo ...)]. *)
val grid_points : ?n_guesses:int -> float -> float list

(** Feasible runs over [grid], smallest realized max group cost first.

    [fanout] evaluates the per-guess thunks (default: sequentially, in
    list order). An evaluator that preserves submission order — e.g.
    [Harness.Pool.run pool] — parallelizes the grid with an identical
    result; the pool is injected because this layer sits below the
    harness.

    [strategy]: [`Exhaustive] (default) evaluates every grid point;
    [`Bisect] binary-searches the ascending grid for the smallest
    feasible [B*] (feasibility is monotone in the budget), evaluating
    O(log |grid|) points and returning only those runs ([fanout]
    unused — probes are sequentially dependent).

    [arena] lets successive probes reuse scratch planes — only pass one
    with the default sequential [fanout] (or [`Bisect]): arenas must not
    cross pool domains. *)
val solve_grid :
  ?mode:[ `Soft | `Hard ] ->
  ?engine:[ `Classic | `Lazy | `Eager ] ->
  ?arena:Arena.t ->
  ?strategy:[ `Exhaustive | `Bisect ] ->
  ?fanout:((unit -> result) list -> result list) ->
  'a Cover_instance.t ->
  ?universe:Bitset.t ->
  grid:float list ->
  unit ->
  result list

(** Best feasible run over the default grid, if any. *)
val solve :
  ?mode:[ `Soft | `Hard ] ->
  ?engine:[ `Classic | `Lazy | `Eager ] ->
  ?arena:Arena.t ->
  ?strategy:[ `Exhaustive | `Bisect ] ->
  ?fanout:((unit -> result) list -> result list) ->
  ?n_guesses:int ->
  'a Cover_instance.t ->
  ?universe:Bitset.t ->
  unit ->
  result option
