(** 0/1 integer programming by LP-based branch and bound (on {!Lp}).

    Variables flagged binary are branched to 0/1 via equality rows;
    continuous variables (e.g. a makespan variable) are never branched.
    Upper bounds [x <= 1] on binaries are added lazily, only when the
    relaxation actually exceeds 1, keeping tableaus small. Used for the
    paper's Fig. 12 optimal baselines. *)

type t = {
  base : Lp.problem;  (** the relaxation, without integrality *)
  binary : bool array;  (** per variable: branch to 0/1? *)
}

type solution = {
  x : float array;
  objective_value : float;
  proved_optimal : bool;  (** false when [node_limit] was exhausted *)
  nodes : int;  (** branch-and-bound nodes explored *)
}

(** [solve t] finds an optimal 0/1 assignment.

    [initial_bound] is a known objective value (e.g. from a greedy
    approximation): nodes that cannot {e strictly} beat it are pruned, and
    if nothing better exists the result is [None] — the caller keeps its
    greedy solution, now proved optimal (up to the node limit).

    [integral_objective] enables rounding-based pruning when every feasible
    objective value is an integer.

    @raise Invalid_argument when [binary] has the wrong arity. *)
val solve :
  ?node_limit:int ->
  ?initial_bound:float ->
  ?integral_objective:bool ->
  t ->
  solution option
