(** Max-heap with lazy priority re-validation.

    Greedy covering repeatedly asks for the set maximizing
    [|S ∩ X'| / c(S)]. As elements get covered this score only ever
    decreases, so the classic lazy-greedy trick applies: keep stale scores in
    a max-heap, and on pop recompute the top's score — if it is unchanged the
    top is still globally maximal; otherwise re-insert it with the fresh
    score. Each set is re-scored O(log) amortized times instead of rescanning
    all sets every round. *)

type 'a entry = { prio : float; value : 'a }

type 'a t = {
  mutable data : 'a entry array;
  mutable size : int;
  tie : 'a -> 'a -> int;
}

let create ?(tie = fun _ _ -> 0) () = { data = [||]; size = 0; tie }
let length t = t.size
let is_empty t = t.size = 0

(* Heap order: priority first; equal priorities resolved by [tie] (default
   0: insertion/layout order, the historical behavior). With a total-order
   [tie] the maximum is unique, making pop results independent of the
   heap's internal layout history. *)
let beats t (a : 'a entry) (b : 'a entry) =
  a.prio > b.prio
  || ((a.prio = b.prio) [@lint.allow float_eq]) && t.tie a.value b.value > 0

let swap t i j =
  let tmp = t.data.(i) in
  t.data.(i) <- t.data.(j);
  t.data.(j) <- tmp

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if beats t t.data.(i) t.data.(parent) then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let m = if l < t.size && beats t t.data.(l) t.data.(i) then l else i in
  let m = if r < t.size && beats t t.data.(r) t.data.(m) then r else m in
  if m <> i then begin
    swap t i m;
    sift_down t m
  end

let push t ~prio value =
  if t.size = Array.length t.data then begin
    let cap = Int.max 16 (2 * Array.length t.data) in
    let data = Array.make cap { prio; value } in
    Array.blit t.data 0 data 0 t.size;
    t.data <- data
  end;
  t.data.(t.size) <- { prio; value };
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let pop_top t =
  let top = t.data.(0) in
  t.size <- t.size - 1;
  if t.size > 0 then begin
    t.data.(0) <- t.data.(t.size);
    sift_down t 0
  end;
  top

(** [top_bound t] is the stored priority of the heap's root: an O(1) upper
    bound on the best fresh priority in the heap (stored priorities never
    underestimate). [None] when empty. *)
let top_bound t = if t.size = 0 then None else Some t.data.(0).prio

(** [pop_max t ~revalidate] pops the element with the (fresh) maximum
    priority. [revalidate v] must return the current priority of [v], which
    may only be less than or equal to the stored one; stale tops are
    re-inserted with their fresh priority until a validated top emerges.
    Elements whose fresh priority is [neg_infinity] are dropped. *)
let rec pop_max t ~revalidate =
  if t.size = 0 then None
  else begin
    let top = pop_top t in
    let fresh = revalidate top.value in
    if (fresh = neg_infinity) [@lint.allow float_eq] then pop_max t ~revalidate
    else if fresh >= top.prio -. 1e-12 then Some (top.value, fresh)
    else begin
      push t ~prio:fresh top.value;
      pop_max t ~revalidate
    end
  end

(** Peek variant: returns the validated max without removing it. *)
let peek_max t ~revalidate =
  match pop_max t ~revalidate with
  | None -> None
  | Some (v, prio) ->
      push t ~prio v;
      Some (v, prio)

let of_list ?tie l =
  let t = create ?tie () in
  List.iter (fun (prio, v) -> push t ~prio v) l;
  t
