(** Max-heap with lazy priority re-validation.

    Greedy covering repeatedly asks for the set maximizing
    [|S ∩ X'| / c(S)]. As elements get covered this score only ever
    decreases, so the classic lazy-greedy trick applies: keep stale scores in
    a max-heap, and on pop recompute the top's score — if it is unchanged the
    top is still globally maximal; otherwise re-insert it with the fresh
    score. Each set is re-scored O(log) amortized times instead of rescanning
    all sets every round. *)

type 'a entry = { prio : float; value : 'a }

type 'a t = {
  mutable data : 'a entry array;
  mutable size : int;
}

let create () = { data = [||]; size = 0 }
let length t = t.size
let is_empty t = t.size = 0

let swap t i j =
  let tmp = t.data.(i) in
  t.data.(i) <- t.data.(j);
  t.data.(j) <- tmp

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if t.data.(i).prio > t.data.(parent).prio then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let m = if l < t.size && t.data.(l).prio > t.data.(i).prio then l else i in
  let m = if r < t.size && t.data.(r).prio > t.data.(m).prio then r else m in
  if m <> i then begin
    swap t i m;
    sift_down t m
  end

let push t ~prio value =
  if t.size = Array.length t.data then begin
    let cap = Int.max 16 (2 * Array.length t.data) in
    let data = Array.make cap { prio; value } in
    Array.blit t.data 0 data 0 t.size;
    t.data <- data
  end;
  t.data.(t.size) <- { prio; value };
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let pop_top t =
  let top = t.data.(0) in
  t.size <- t.size - 1;
  if t.size > 0 then begin
    t.data.(0) <- t.data.(t.size);
    sift_down t 0
  end;
  top

(** [pop_max t ~revalidate] pops the element with the (fresh) maximum
    priority. [revalidate v] must return the current priority of [v], which
    may only be less than or equal to the stored one; stale tops are
    re-inserted with their fresh priority until a validated top emerges.
    Elements whose fresh priority is [neg_infinity] are dropped. *)
let rec pop_max t ~revalidate =
  if t.size = 0 then None
  else begin
    let top = pop_top t in
    let fresh = revalidate top.value in
    if (fresh = neg_infinity) [@lint.allow float_eq] then pop_max t ~revalidate
    else if fresh >= top.prio -. 1e-12 then Some (top.value, fresh)
    else begin
      push t ~prio:fresh top.value;
      pop_max t ~revalidate
    end
  end

(** Peek variant: returns the validated max without removing it. *)
let peek_max t ~revalidate =
  match pop_max t ~revalidate with
  | None -> None
  | Some (v, prio) ->
      push t ~prio v;
      Some (v, prio)

let of_list l =
  let t = create () in
  List.iter (fun (prio, v) -> push t ~prio v) l;
  t
