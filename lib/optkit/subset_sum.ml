(** Subset Sum — the source problem of the paper's MNU NP-hardness proof
    (Appendix A). Solved exactly by the classic pseudo-polynomial dynamic
    program; the tests use it to validate the MNU reduction: the single-AP
    WLAN built from a Subset Sum instance can serve exactly
    [best_at_most numbers target] users. *)

(** [solve numbers target] decides whether a subset of [numbers] sums to
    exactly [target], returning the indices of one witness subset. *)
let solve numbers target =
  if target < 0 then None
  else begin
    let nums = Array.of_list numbers in
    let n = Array.length nums in
    (* from.(s) = Some i: sum s reachable, last number used has index i *)
    let from = Array.make (target + 1) None in
    let reached = Array.make (target + 1) false in
    reached.(0) <- true;
    for i = 0 to n - 1 do
      if nums.(i) >= 0 then
        for s = target downto nums.(i) do
          if reached.(s - nums.(i)) && not reached.(s) then begin
            reached.(s) <- true;
            from.(s) <- Some (i, s - nums.(i))
          end
        done
    done;
    if not reached.(target) then None
    else begin
      let rec back s acc =
        match from.(s) with
        | None -> acc
        | Some (i, prev) -> back prev (i :: acc)
      in
      Some (back target [])
    end
  end

(** [best_at_most numbers target] is the largest achievable subset sum that
    does not exceed [target] — exactly the maximum number of users the
    Appendix-A WLAN can serve under multicast budget [target]. *)
let best_at_most numbers target =
  if target < 0 then 0
  else begin
    let reached = Array.make (target + 1) false in
    reached.(0) <- true;
    List.iter
      (fun g ->
        if g >= 0 then
          for s = target downto g do
            if reached.(s - g) then reached.(s) <- true
          done)
      numbers;
    let best = ref 0 in
    for s = 0 to target do
      if reached.(s) then best := s
    done;
    !best
  end
