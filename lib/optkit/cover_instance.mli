(** Instances of covering problems over a dense ground set [0, n).

    One representation serves weighted Set Cover, Maximum Coverage with
    Group Budgets (MCG) and Set Cover with Group Budgets (SCG): a family
    of subsets with positive costs, each belonging to a group (in the
    WLAN reductions, one group per AP). Each set carries an opaque
    payload so callers can map chosen sets back to their domain. *)

type 'a t

(** [make ~n_elements ~sets ~costs ?group_of ?n_groups ~payload ()] builds
    an instance. [sets], [costs] and [payload] must have equal lengths;
    costs must be positive; every set's capacity must be [n_elements].
    [group_of] defaults to all sets in group 0; [n_groups] may widen the
    group count beyond the largest used index (so empty groups exist).
    @raise Invalid_argument on any violation. *)
val make :
  n_elements:int ->
  sets:Bitset.t array ->
  costs:float array ->
  ?group_of:int array ->
  ?n_groups:int ->
  payload:'a array ->
  unit ->
  'a t

val n_sets : 'a t -> int
val n_elements : 'a t -> int
val n_groups : 'a t -> int
val set : 'a t -> int -> Bitset.t
val cost : 'a t -> int -> float
val group : 'a t -> int -> int
val payload : 'a t -> int -> 'a

(** Union of all sets — the coverable portion of the ground set. *)
val coverable : 'a t -> Bitset.t

(** Indices of the sets in each group. *)
val sets_by_group : 'a t -> int list array

(** A copy with the given elements removed from every set (used by SCG's
    iterated rounds). *)
val remove_elements : 'a t -> Bitset.t -> 'a t

val max_cost : 'a t -> float
val pp_stats : Format.formatter -> 'a t -> unit
