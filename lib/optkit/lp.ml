(** Dense two-phase primal simplex for linear programs.

    The paper compares its approximation algorithms against optimal
    solutions computed by ILPs "based on the ILP of set cover" (Fig. 12).
    We cannot link a commercial solver in a sealed environment, so this
    module provides the LP engine (and {!Ilp} the branch-and-bound on top).

    Problems are over variables [x >= 0] with constraints [a·x {<=,>=,=} b]
    and a linear objective. Phase 1 drives artificial variables out to find
    a basic feasible solution; phase 2 optimizes. Entering-variable choice
    is Dantzig's rule, degrading to Bland's rule after an iteration
    threshold so the algorithm provably terminates. *)

type cmp = Le | Ge | Eq

type constr = { coeffs : float array; cmp : cmp; rhs : float }

type problem = {
  n_vars : int;
  maximize : bool;
  objective : float array;
  constraints : constr array;
}

type solution = { x : float array; objective_value : float }
type result = Optimal of solution | Infeasible | Unbounded

let eps = 1e-9

type tableau = {
  m : int;  (** rows *)
  n : int;  (** columns excluding rhs *)
  a : float array array;  (** m x (n+1); last column is rhs *)
  basis : int array;  (** basic variable of each row *)
  obj : float array;  (** n+1; objective row (maximization), reduced costs *)
}

let pivot t ~row ~col =
  let arow = t.a.(row) in
  let p = arow.(col) in
  for j = 0 to t.n do
    arow.(j) <- arow.(j) /. p
  done;
  for i = 0 to t.m - 1 do
    if i <> row then begin
      let f = t.a.(i).(col) in
      if Float.abs f > 0. then begin
        let r = t.a.(i) in
        for j = 0 to t.n do
          r.(j) <- r.(j) -. (f *. arow.(j))
        done
      end
    end
  done;
  let f = t.obj.(col) in
  if Float.abs f > 0. then
    for j = 0 to t.n do
      t.obj.(j) <- t.obj.(j) -. (f *. arow.(j))
    done;
  t.basis.(row) <- col

(* Choose entering column: Dantzig (most positive reduced cost) or Bland
   (lowest index with positive reduced cost). The objective row stores
   reduced costs for maximization: entering needs obj.(j) > eps. *)
let entering t ~bland =
  if bland then begin
    let rec go j = if j >= t.n then None
      else if t.obj.(j) > eps then Some j else go (j + 1)
    in
    go 0
  end
  else begin
    let best = ref (-1) and best_v = ref eps in
    for j = 0 to t.n - 1 do
      if t.obj.(j) > !best_v then begin
        best := j;
        best_v := t.obj.(j)
      end
    done;
    if !best < 0 then None else Some !best
  end

(* Leaving row by minimum ratio; ties broken by smallest basis index
   (anti-cycling with Bland). Returns None when unbounded. *)
let leaving t ~col =
  let best = ref (-1) and best_ratio = ref infinity in
  for i = 0 to t.m - 1 do
    let aij = t.a.(i).(col) in
    if aij > eps then begin
      let ratio = t.a.(i).(t.n) /. aij in
      if
        ratio < !best_ratio -. eps
        || (ratio < !best_ratio +. eps
           && !best >= 0
           && t.basis.(i) < t.basis.(!best))
      then begin
        best := i;
        best_ratio := ratio
      end
    end
  done;
  if !best < 0 then None else Some !best

type phase_outcome = Opt | Unbd

let optimize ?(max_iters = 50_000) t =
  let bland_after = 2_000 in
  let rec go iter =
    if iter > max_iters then Opt (* numerical stall: accept current basis *)
    else
      match entering t ~bland:(iter > bland_after) with
      | None -> Opt
      | Some col -> (
          match leaving t ~col with
          | None -> Unbd
          | Some row ->
              pivot t ~row ~col;
              go (iter + 1))
  in
  go 0

(** Solve an LP. *)
let solve (p : problem) : result =
  let m = Array.length p.constraints in
  Array.iter
    (fun c ->
      if Array.length c.coeffs <> p.n_vars then
        invalid_arg "Lp.solve: constraint arity mismatch")
    p.constraints;
  if Array.length p.objective <> p.n_vars then
    invalid_arg "Lp.solve: objective arity mismatch";
  (* Normalize rows to rhs >= 0. *)
  let rows =
    Array.map
      (fun c ->
        if c.rhs < 0. then
          {
            coeffs = Array.map (fun v -> -.v) c.coeffs;
            rhs = -.c.rhs;
            cmp = (match c.cmp with Le -> Ge | Ge -> Le | Eq -> Eq);
          }
        else c)
      p.constraints
  in
  let n_slack =
    Array.fold_left
      (fun acc c -> match c.cmp with Le | Ge -> acc + 1 | Eq -> acc)
      0 rows
  in
  let n_art =
    Array.fold_left
      (fun acc c -> match c.cmp with Ge | Eq -> acc + 1 | Le -> acc)
      0 rows
  in
  let n = p.n_vars + n_slack + n_art in
  let a = Array.make_matrix m (n + 1) 0. in
  let basis = Array.make m 0 in
  let slack_base = p.n_vars in
  let art_base = p.n_vars + n_slack in
  let si = ref 0 and ai = ref 0 in
  Array.iteri
    (fun i c ->
      Array.blit c.coeffs 0 a.(i) 0 p.n_vars;
      a.(i).(n) <- c.rhs;
      (match c.cmp with
      | Le ->
          a.(i).(slack_base + !si) <- 1.;
          basis.(i) <- slack_base + !si;
          incr si
      | Ge ->
          a.(i).(slack_base + !si) <- -1.;
          incr si;
          a.(i).(art_base + !ai) <- 1.;
          basis.(i) <- art_base + !ai;
          incr ai
      | Eq ->
          a.(i).(art_base + !ai) <- 1.;
          basis.(i) <- art_base + !ai;
          incr ai))
    rows;
  (* Phase 1: maximize -(sum of artificials). Reduced-cost row must be
     expressed in terms of nonbasic variables: start from obj = -sum(art
     rows' columns) and add each artificial-basic row. *)
  let t = { m; n; a; basis; obj = Array.make (n + 1) 0. } in
  if n_art > 0 then begin
    for j = 0 to n do
      let s = ref 0. in
      for i = 0 to m - 1 do
        if basis.(i) >= art_base then s := !s +. a.(i).(j)
      done;
      t.obj.(j) <- !s
    done;
    (* zero out the (basic) artificial columns in the objective row *)
    for j = art_base to art_base + n_art - 1 do
      t.obj.(j) <- 0.
    done;
    (match optimize t with Opt -> () | Unbd -> assert false);
    if t.obj.(n) > 1e-6 then (* residual infeasibility: -obj value is stored
                                with opposite sign in position n *)
      ()
  end;
  let phase1_value =
    (* sum of artificial basic variables at the end of phase 1 *)
    let s = ref 0. in
    for i = 0 to m - 1 do
      if t.basis.(i) >= art_base then s := !s +. t.a.(i).(n)
    done;
    !s
  in
  if n_art > 0 && phase1_value > 1e-6 then Infeasible
  else begin
    (* Drive remaining (degenerate) artificials out of the basis. *)
    for i = 0 to m - 1 do
      if t.basis.(i) >= art_base then begin
        let found = ref (-1) in
        for j = 0 to art_base - 1 do
          if !found < 0 && Float.abs t.a.(i).(j) > 1e-7 then found := j
        done;
        match !found with
        | -1 -> () (* redundant row; leave the zero artificial basic *)
        | j -> pivot t ~row:i ~col:j
      end
    done;
    (* Phase 2: block artificial columns, install the real objective. *)
    let sign = if p.maximize then 1. else -1. in
    let c = Array.make (n + 1) 0. in
    for j = 0 to p.n_vars - 1 do
      c.(j) <- sign *. p.objective.(j)
    done;
    (* reduced costs: c_j - c_B B^-1 A_j; compute by eliminating basics *)
    Array.blit c 0 t.obj 0 (n + 1);
    for i = 0 to m - 1 do
      let cb = if t.basis.(i) < p.n_vars then c.(t.basis.(i)) else 0. in
      if Float.abs cb > 0. then
        for j = 0 to n do
          t.obj.(j) <- t.obj.(j) -. (cb *. t.a.(i).(j))
        done
    done;
    (* forbid artificials from re-entering *)
    for j = art_base to n - 1 do
      t.obj.(j) <- neg_infinity
    done;
    match optimize t with
    | Unbd -> Unbounded
    | Opt ->
        let x = Array.make p.n_vars 0. in
        for i = 0 to m - 1 do
          if t.basis.(i) < p.n_vars then x.(t.basis.(i)) <- t.a.(i).(n)
        done;
        let objective_value =
          let s = ref 0. in
          for j = 0 to p.n_vars - 1 do
            s := !s +. (p.objective.(j) *. x.(j))
          done;
          !s
        in
        Optimal { x; objective_value }
  end

let pp_result ppf = function
  | Infeasible -> Fmt.string ppf "infeasible"
  | Unbounded -> Fmt.string ppf "unbounded"
  | Optimal { objective_value; _ } -> Fmt.pf ppf "optimal(%g)" objective_value
