(** Instances of covering problems over a dense ground set [0, n).

    One representation serves plain weighted Set Cover, Maximum Coverage
    with Group Budgets (MCG) and Set Cover with Group Budgets (SCG): a
    family of subsets with positive costs, each belonging to a group (the
    paper's groups are "all subsets of one AP"). Ungrouped problems put
    every set in group 0. Each set carries an opaque payload so callers can
    map chosen sets back to their domain ((AP, session, rate) triples in the
    reductions). *)

type 'a t = {
  n_elements : int;
  sets : Bitset.t array;
  costs : float array;
  group_of : int array;
  n_groups : int;
  payload : 'a array;
}

let make ~n_elements ~sets ~costs ?group_of ?n_groups ~payload () =
  let m = Array.length sets in
  if Array.length costs <> m || Array.length payload <> m then
    invalid_arg "Cover_instance.make: array length mismatch";
  Array.iter
    (fun c -> if c <= 0. then invalid_arg "Cover_instance.make: cost <= 0")
    costs;
  Array.iter
    (fun s ->
      if Bitset.capacity s <> n_elements then
        invalid_arg "Cover_instance.make: set capacity mismatch")
    sets;
  let group_of =
    match group_of with Some g -> g | None -> Array.make m 0
  in
  if Array.length group_of <> m then
    invalid_arg "Cover_instance.make: group_of length mismatch";
  let min_groups =
    Array.fold_left (fun acc g -> Int.max acc (g + 1)) 0 group_of
  in
  let n_groups =
    match n_groups with
    | None -> min_groups
    | Some n ->
        if n < min_groups then
          invalid_arg "Cover_instance.make: n_groups below max group index";
        n
  in
  Array.iter
    (fun g -> if g < 0 then invalid_arg "Cover_instance.make: negative group")
    group_of;
  { n_elements; sets; costs; group_of; n_groups; payload }

let n_sets t = Array.length t.sets
let n_elements t = t.n_elements
let n_groups t = t.n_groups
let set t j = t.sets.(j)
let cost t j = t.costs.(j)
let group t j = t.group_of.(j)
let payload t j = t.payload.(j)

(** Union of all sets — the coverable portion of the ground set. *)
let coverable t =
  let u = Bitset.create t.n_elements in
  Array.iter (Bitset.union_inplace u) t.sets;
  u

(** Indices of the sets in each group. *)
let sets_by_group t =
  let by = Array.make t.n_groups [] in
  for j = Array.length t.sets - 1 downto 0 do
    by.(t.group_of.(j)) <- j :: by.(t.group_of.(j))
  done;
  by

(** Restrict the ground set: drop (in place of a copy) the given elements
    from every set. Used by SCG's iterated rounds. *)
let remove_elements t covered =
  {
    t with
    sets = Array.map (fun s -> Bitset.diff s covered) t.sets;
  }

let max_cost t = Array.fold_left Float.max 0. t.costs

let pp_stats ppf t =
  Fmt.pf ppf "cover instance: %d elements, %d sets, %d groups" t.n_elements
    (n_sets t) t.n_groups
