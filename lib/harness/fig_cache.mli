(** Memo table for figure drivers, keyed by [(figure id, config)].

    The bench harness reuses figures across experiments in one invocation
    (e.g. [headline] reuses [fig9a]/[fig10a]/[fig11]); keying by the full
    config as well as the id guarantees that the same figure requested
    under a different config — a [--quick] pass followed by a full one,
    or a changed seed — is recomputed instead of silently served stale. *)

type t

val create : unit -> t

(** [get t ~cfg ~id compute] returns the cached figure for [(id, cfg)],
    or runs [compute ()], stores it, and returns it. *)
val get :
  t -> cfg:Experiments.config -> id:string -> (unit -> Series.figure) ->
  Series.figure

(** Batches served from / added to the table, for observability and the
    regression test. *)
val hits : t -> int

val misses : t -> int
