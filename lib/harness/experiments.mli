(** One driver per table/figure of the paper's evaluation (§7), plus the
    design-choice ablations and the extension studies of DESIGN.md.
    Every driver returns a {!Series.figure}; defaults follow the paper
    (min/avg/max over 40 random scenarios per point). *)

type config = {
  scenarios : int;  (** random scenarios per point (paper: 40) *)
  small_scenarios : int;  (** scenarios per point for the ILP-bound Fig. 12 *)
  seed : int;
  ilp_node_limit : int;  (** branch-and-bound budget per exact solve *)
  jobs : int;
      (** domains fanning scenarios out through {!Pool} (1 = sequential).
          Per-scenario RNG seeds are split from [seed] before dispatch, so
          every driver returns bit-identical figures at any [jobs] value. *)
}

(** 40 scenarios, seed 2007, [jobs = 1]. *)
val default_config : config

(** {1 The paper's figures} *)

val fig9a : ?cfg:config -> unit -> Series.figure
val fig9b : ?cfg:config -> unit -> Series.figure
val fig9c : ?cfg:config -> unit -> Series.figure
val fig10a : ?cfg:config -> unit -> Series.figure
val fig10b : ?cfg:config -> unit -> Series.figure
val fig10c : ?cfg:config -> unit -> Series.figure
val fig11 : ?cfg:config -> unit -> Series.figure
val fig12a : ?cfg:config -> unit -> Series.figure
val fig12b : ?cfg:config -> unit -> Series.figure
val fig12c : ?cfg:config -> unit -> Series.figure

(** Table 1 as (rate, distance threshold) pairs. *)
val table1 : unit -> (float * float) list

(** The abstract's claims, recomputed. *)
type headline = {
  mnu_user_gain_pct : float;
  bla_max_load_reduction_pct : float;
  mla_total_load_reduction_pct : float;
}

val headline : ?cfg:config -> unit -> headline

(** {1 Ablations} *)

val ablate_rate : ?cfg:config -> unit -> Series.figure
val ablate_bstar : ?cfg:config -> unit -> Series.figure
val ablate_sched : ?cfg:config -> unit -> Series.figure
val ablate_bla_mode : ?cfg:config -> unit -> Series.figure
val ablate_mla_alg : ?cfg:config -> unit -> Series.figure

(** {1 Extension studies} *)

val ext_popularity : ?cfg:config -> unit -> Series.figure
val ext_interference : ?cfg:config -> unit -> Series.figure
val ext_dual : ?cfg:config -> unit -> Series.figure
val ext_loss : ?cfg:config -> unit -> Series.figure
val ext_mobility : ?cfg:config -> unit -> Series.figure
val ext_power : ?cfg:config -> unit -> Series.figure
val ext_standards : ?cfg:config -> unit -> Series.figure

(** Per-step churn disruption vs script intensity (replays random
    {!Wlan_model.Churn_script}s through {!Wlan_sim.Churn}). *)
val ext_churn : ?cfg:config -> unit -> Series.figure

(** PHY-model ablation: MNU/BLA/MLA/SSA quality and distributed
    convergence rounds under Table 1 vs Friis vs two-ray vs
    log-distance (+ seeded shadowing) link-rate models, same split-RNG
    deployment streams. *)
val ablate_phy : ?cfg:config -> unit -> Series.figure

(** {1 Registry} *)

(** Every figure driver by id ("fig9a" .. "ext-standards"), shared by the
    front ends. *)
val drivers : (string * (?cfg:config -> unit -> Series.figure)) list
