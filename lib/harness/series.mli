(** Structured experiment results: a figure is a list of x-axis points,
    each carrying one {!Stats.summary} per named series (algorithm). *)

type point = { x : float; values : (string * Stats.summary) list }

type figure = {
  id : string;  (** e.g. "fig9a" *)
  title : string;
  x_label : string;
  y_label : string;
  points : point list;
}

(** All series names, in order of first appearance across the points. *)
val series_names : figure -> string list

(** Mean of a series at the largest x. *)
val last_mean : figure -> string -> float option

(** Mean of a series at a given x. *)
val mean_at : figure -> string -> float -> float option
