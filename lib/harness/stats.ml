(** Aggregation over random scenarios. The paper reports the average,
    minimum and maximum over 40 random scenarios for every figure. *)

type summary = { mean : float; min : float; max : float; n : int }

let summarize = function
  | [] -> invalid_arg "Stats.summarize: empty sample"
  | xs ->
      let n = List.length xs in
      {
        mean = List.fold_left ( +. ) 0. xs /. float_of_int n;
        min = List.fold_left Float.min infinity xs;
        max = List.fold_left Float.max neg_infinity xs;
        n;
      }

(** Percentage by which [b] improves on [a] when lower is better:
    [(a - b) / a * 100]. *)
let pct_reduction ~baseline ~improved =
  (* exact zero guards a division, not a tolerance decision *)
  if (baseline = 0.) [@lint.allow float_eq] then 0.
  else (baseline -. improved) /. baseline *. 100.

(** Percentage by which [b] improves on [a] when higher is better:
    [(b - a) / a * 100]. *)
let pct_gain ~baseline ~improved =
  if (baseline = 0.) [@lint.allow float_eq] then 0.
  else (improved -. baseline) /. baseline *. 100.

let pp_summary ppf s = Fmt.pf ppf "%.4f (%.4f..%.4f)" s.mean s.min s.max
