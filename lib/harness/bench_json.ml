(** Rendering and (minimal) parsing of the [BENCH_*.json] performance
    snapshots written by [bench/main.exe --bench-json].

    The schema is deliberately flat so that later PRs can diff two
    snapshots with standard tools: one [entries] array of uniform
    [{name, wall_s, cpu_s}] records. Entry names are namespaced:

    - ["exp:<id>"] — wall/cpu time of one figure/experiment run;
    - ["alg:<algorithm>@<aps>x<users>"] — median single-solve time of one
      algorithm at a given topology scale;
    - ["bechamel:<test>"] — a bechamel per-run estimate, in seconds.

    A snapshot may embed the snapshot it was measured against under
    ["baseline"], and the derived ["speedup"] ratios (baseline wall over
    current wall; > 1 is an improvement). Only the top-level [entries]
    array of a file is ever parsed back, so embedding is not recursive.

    This module renders to and parses from strings only; file IO belongs
    to the binary. The parser is line-oriented and only guaranteed to
    read what {!render} wrote — it is not a general JSON parser. *)

type entry = { name : string; wall_s : float; cpu_s : float option }

type snapshot = {
  label : string;  (** e.g. "PR3" — identifies the measured tree *)
  jobs : int;
  quick : bool;
  seed : int;
  entries : entry list;
}

let schema = "wlan-mcast/bench/1"

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

(* JSON string escaping for the few strings we emit (names are ASCII
   identifiers in practice, but stay correct anyway). *)
let escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* cpu_s is omitted, not zero-filled, when the row has no CPU sample *)
let render_entry b ~indent { name; wall_s; cpu_s } ~last =
  let cpu =
    match cpu_s with
    | Some c -> Printf.sprintf ", \"cpu_s\": %.6f" c
    | None -> ""
  in
  Buffer.add_string b
    (Printf.sprintf "%s{ \"name\": \"%s\", \"wall_s\": %.6f%s }%s\n" indent
       (escape name) wall_s cpu
       (if last then "" else ","))

let render_entries b ~indent entries =
  let n = List.length entries in
  List.iteri
    (fun i e -> render_entry b ~indent e ~last:(i = n - 1))
    entries

(** Speedup rows for entries present in both snapshots:
    [baseline wall / current wall]. *)
let speedups ~baseline ~current =
  List.filter_map
    (fun (c : entry) ->
      match List.find_opt (fun (b : entry) -> b.name = c.name) baseline with
      | Some b when c.wall_s > 0. -> Some (c.name, b.wall_s /. c.wall_s)
      | _ -> None)
    current.entries

(** Slowdown rows past [threshold]: entries of both lists whose current
    wall exceeds [baseline * (1 + threshold)], worst first. Baseline
    rows faster than [min_wall] are below the single-rep timing noise
    floor (a 200 µs row can "double" from one cache miss) and are
    skipped entirely. *)
let regressions ?(min_wall = 0.) ~threshold ~baseline ~current () =
  List.filter_map
    (fun (c : entry) ->
      match List.find_opt (fun (b : entry) -> b.name = c.name) baseline with
      | Some b
        when b.wall_s >= min_wall && b.wall_s > 0.
             && c.wall_s > b.wall_s *. (1. +. threshold) ->
          Some (c.name, c.wall_s /. b.wall_s)
      | _ -> None)
    current
  |> List.sort (fun (_, a) (_, b) -> Float.compare b a)

(** [render snapshot ~baseline] is the full JSON document. When
    [baseline] is given its entries are embedded verbatim under
    ["baseline"] and the ["speedup"] section is derived. *)
let render ?baseline (s : snapshot) =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\n";
  Buffer.add_string b (Printf.sprintf "  \"schema\": \"%s\",\n" (escape schema));
  Buffer.add_string b (Printf.sprintf "  \"label\": \"%s\",\n" (escape s.label));
  Buffer.add_string b (Printf.sprintf "  \"jobs\": %d,\n" s.jobs);
  Buffer.add_string b (Printf.sprintf "  \"quick\": %b,\n" s.quick);
  Buffer.add_string b (Printf.sprintf "  \"seed\": %d,\n" s.seed);
  Buffer.add_string b "  \"entries\": [\n";
  render_entries b ~indent:"    " s.entries;
  Buffer.add_string b "  ]";
  (match baseline with
  | None -> ()
  | Some (base : snapshot) ->
      Buffer.add_string b ",\n  \"baseline\": {\n";
      Buffer.add_string b
        (Printf.sprintf "    \"label\": \"%s\",\n" (escape base.label));
      Buffer.add_string b "    \"entries\": [\n";
      render_entries b ~indent:"      " base.entries;
      Buffer.add_string b "    ]\n  },\n";
      Buffer.add_string b "  \"speedup\": [\n";
      let sp = speedups ~baseline:base.entries ~current:s in
      let n = List.length sp in
      List.iteri
        (fun i (name, ratio) ->
          Buffer.add_string b
            (Printf.sprintf "    { \"name\": \"%s\", \"ratio\": %.2f }%s\n"
               (escape name) ratio
               (if i = n - 1 then "" else ",")))
        sp;
      Buffer.add_string b "  ]");
  Buffer.add_string b "\n}\n";
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Parsing (only what render wrote)                                    *)
(* ------------------------------------------------------------------ *)

let string_field line key =
  let pat = Printf.sprintf "\"%s\": \"" key in
  match Astring.String.find_sub ~sub:pat line with
  | None -> None
  | Some i -> (
      let start = i + String.length pat in
      match String.index_from_opt line start '"' with
      | None -> None
      | Some stop -> Some (String.sub line start (stop - start)))

let float_field line key =
  let pat = Printf.sprintf "\"%s\": " key in
  match Astring.String.find_sub ~sub:pat line with
  | None -> None
  | Some i ->
      let start = i + String.length pat in
      let stop = ref start in
      let len = String.length line in
      while
        !stop < len
        && (match line.[!stop] with
           | '0' .. '9' | '.' | '-' | '+' | 'e' | 'E' -> true
           | _ -> false)
      do
        incr stop
      done;
      float_of_string_opt (String.sub line start (!stop - start))

(** [parse s] recovers the label and the {e top-level} entries of a
    document written by {!render} (an embedded baseline is skipped: its
    entries live under a later ["entries"] but parsing stops at the first
    array's closing bracket). [None] when [s] is not such a document. *)
let parse s =
  let lines = String.split_on_char '\n' s in
  let label = ref None and jobs = ref 1 and quick = ref false and seed = ref 0 in
  let entries = ref [] in
  let in_entries = ref false and done_entries = ref false in
  List.iter
    (fun line ->
      if not !done_entries then
        if !in_entries then begin
          if Astring.String.is_infix ~affix:"]" line then begin
            in_entries := false;
            done_entries := true
          end
          else
            match (string_field line "name", float_field line "wall_s") with
            | Some name, Some wall_s ->
                entries :=
                  { name; wall_s; cpu_s = float_field line "cpu_s" }
                  :: !entries
            | _ -> ()
        end
        else begin
          (match string_field line "label" with
          | Some l when !label = None -> label := Some l
          | _ -> ());
          (match float_field line "jobs" with
          | Some j -> jobs := int_of_float j
          | None -> ());
          (match float_field line "seed" with
          | Some sd -> seed := int_of_float sd
          | None -> ());
          if Astring.String.is_infix ~affix:"\"quick\": true" line then
            quick := true;
          if Astring.String.is_infix ~affix:"\"entries\": [" line then
            in_entries := true
        end)
    lines;
  match !label with
  | None -> None
  | Some label ->
      Some
        {
          label;
          jobs = !jobs;
          quick = !quick;
          seed = !seed;
          entries = List.rev !entries;
        }
