(** Deterministic JSON/CSV rendering of churn disruption metrics.

    One document carries the named runs of a churn replay (typically one
    per algorithm variant). Rendering is a pure function of the runs:
    floats print with [%.17g] (bit-exact round-trip), steps in
    chronological order, runs in caller order — and deliberately {e no}
    wall-clock, hostname or job-count fields, so the same replay renders
    byte-identical bytes at every [--jobs] value. The golden-trace suite
    and the CI churn-smoke diff rely on that.

    Like {!Bench_json}, this module renders strings only; file IO
    belongs to the binary. *)

open Wlan_sim

type run = {
  label : string;  (** e.g. ["mnu"] — names the algorithm variant *)
  objective : string;
  mode : string;  (** ["sequential"] or ["simultaneous"] *)
  outcome : Churn.outcome;
}

let schema = "wlan-mcast/churn-metrics/1"

(* NaN (disabled baseline) and infinities have no JSON literal: render
   them as null. *)
let float_json f =
  if Float.is_finite f then Printf.sprintf "%.17g" f else "null"

let escape = Bench_json.escape

let render_step b ~indent (s : Churn.step) ~last =
  Buffer.add_string b
    (Printf.sprintf
       "%s{ \"time\": %s, \"events\": %d, \"reassociated\": %d, \
        \"interrupted\": %d, \"rounds\": %d, \"moves\": %d, \
        \"converged\": %b, \"oscillated\": %b, \"total_load\": %s, \
        \"max_load\": %s, \"opt_total_load\": %s, \"opt_max_load\": %s, \
        \"total_overshoot\": %s, \"peak_overshoot\": %s }%s\n"
       indent (float_json s.time) s.events s.reassociated s.interrupted
       s.rounds s.moves s.converged s.oscillated
       (float_json s.total_load)
       (float_json s.max_load)
       (float_json s.opt_total_load)
       (float_json s.opt_max_load)
       (float_json (Churn.total_overshoot s))
       (float_json (Churn.peak_overshoot s))
       (if last then "" else ","))

let render_run b (r : run) ~last =
  let o = r.outcome in
  Buffer.add_string b "    {\n";
  Buffer.add_string b
    (Printf.sprintf "      \"label\": \"%s\",\n" (escape r.label));
  Buffer.add_string b
    (Printf.sprintf "      \"objective\": \"%s\",\n" (escape r.objective));
  Buffer.add_string b
    (Printf.sprintf "      \"mode\": \"%s\",\n" (escape r.mode));
  Buffer.add_string b
    (Printf.sprintf "      \"total_rounds\": %d,\n" o.Churn.total_rounds);
  Buffer.add_string b
    (Printf.sprintf "      \"total_moves\": %d,\n" o.total_moves);
  Buffer.add_string b
    (Printf.sprintf "      \"total_reassociated\": %d,\n"
       o.total_reassociated);
  Buffer.add_string b
    (Printf.sprintf "      \"total_interrupted\": %d,\n" o.total_interrupted);
  Buffer.add_string b
    (Printf.sprintf "      \"oscillated\": %b,\n" o.oscillated);
  Buffer.add_string b "      \"steps\": [\n";
  let n = List.length o.steps in
  List.iteri
    (fun i s -> render_step b ~indent:"        " s ~last:(i = n - 1))
    o.steps;
  Buffer.add_string b "      ]\n";
  Buffer.add_string b (Printf.sprintf "    }%s\n" (if last then "" else ","))

(** The full JSON document for [runs], in caller order. *)
let json ~seed runs =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\n";
  Buffer.add_string b
    (Printf.sprintf "  \"schema\": \"%s\",\n" (escape schema));
  Buffer.add_string b (Printf.sprintf "  \"seed\": %d,\n" seed);
  Buffer.add_string b "  \"runs\": [\n";
  let n = List.length runs in
  List.iteri (fun i r -> render_run b r ~last:(i = n - 1)) runs;
  Buffer.add_string b "  ]\n}\n";
  Buffer.contents b

(* RFC-4180 field quoting: a field containing a comma, a double quote or
   a line break is wrapped in double quotes, with embedded quotes
   doubled. The JSON [escape] above is not suitable here — CSV has no
   backslash escapes. *)
let csv_escape s =
  let hostile = function ',' | '"' | '\n' | '\r' -> true | _ -> false in
  if not (String.exists hostile s) then s
  else begin
    let b = Buffer.create (String.length s + 8) in
    Buffer.add_char b '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string b "\"\"" else Buffer.add_char b c)
      s;
    Buffer.add_char b '"';
    Buffer.contents b
  end

(* RFC-4180 parser for the round-trip tests (and any tooling that reads
   our own CSV back): rows of fields, quoted fields may contain commas,
   doubled quotes and line breaks. Accepts both \n and \r\n row ends;
   a trailing newline does not produce an empty row. *)
let csv_parse text =
  let rows = ref [] and row = ref [] and field = Buffer.create 32 in
  let n = String.length text in
  let flush_field () =
    row := Buffer.contents field :: !row;
    Buffer.clear field
  in
  let flush_row () =
    flush_field ();
    rows := List.rev !row :: !rows;
    row := []
  in
  let i = ref 0 in
  (* chars consumed since the last row flush — distinguishes a trailing
     empty quoted field from a trailing newline *)
  let pending = ref false in
  while !i < n do
    (match text.[!i] with
    | '"' ->
        pending := true;
        (* quoted field: consume to the closing quote *)
        incr i;
        let closed = ref false in
        while not !closed do
          if !i >= n then invalid_arg "Metrics.csv_parse: unclosed quote"
          else if text.[!i] = '"' then
            if !i + 1 < n && text.[!i + 1] = '"' then begin
              Buffer.add_char field '"';
              i := !i + 2
            end
            else begin
              closed := true;
              incr i
            end
          else begin
            Buffer.add_char field text.[!i];
            incr i
          end
        done
    | ',' ->
        pending := true;
        flush_field ();
        incr i
    | '\r' when !i + 1 < n && text.[!i + 1] = '\n' ->
        pending := false;
        flush_row ();
        i := !i + 2
    | '\n' ->
        pending := false;
        flush_row ();
        incr i
    | c ->
        pending := true;
        Buffer.add_char field c;
        incr i)
  done;
  if !pending then flush_row ();
  List.rev !rows

let csv_header =
  "label,time,events,reassociated,interrupted,rounds,moves,converged,\
   oscillated,total_load,max_load,opt_total_load,opt_max_load,\
   total_overshoot,peak_overshoot"

(* CSV floats: %.17g prints nan/inf as words, which spreadsheet tools
   treat as opaque cells — acceptable, and still deterministic. *)
let csv_float = Printf.sprintf "%.17g"

(** One row per step per run, runs in caller order. *)
let csv runs =
  let b = Buffer.create 4096 in
  Buffer.add_string b csv_header;
  Buffer.add_char b '\n';
  List.iter
    (fun (r : run) ->
      List.iter
        (fun (s : Churn.step) ->
          Buffer.add_string b
            (Printf.sprintf "%s,%s,%d,%d,%d,%d,%d,%b,%b,%s,%s,%s,%s,%s,%s\n"
               (csv_escape r.label) (csv_float s.time) s.events s.reassociated
               s.interrupted s.rounds s.moves s.converged s.oscillated
               (csv_float s.total_load)
               (csv_float s.max_load)
               (csv_float s.opt_total_load)
               (csv_float s.opt_max_load)
               (csv_float (Churn.total_overshoot s))
               (csv_float (Churn.peak_overshoot s))))
        r.outcome.Churn.steps)
    runs;
  Buffer.contents b
