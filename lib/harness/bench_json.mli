(** The [BENCH_*.json] performance-snapshot format written by
    [bench/main.exe --bench-json]: one flat [entries] array of
    [{name, wall_s, cpu_s}] records, an optional embedded baseline
    snapshot and the derived speedup ratios. Renders to / parses from
    strings; file IO belongs to the binary. The parser only reads what
    {!render} wrote — it is not a general JSON parser. *)

type entry = {
  name : string;
      (** namespaced: ["exp:<id>"], ["alg:<name>@<aps>x<users>"] or
          ["bechamel:<test>"] *)
  wall_s : float;  (** wall-clock seconds (monotonic source) *)
  cpu_s : float option;
      (** process CPU seconds, all domains; [None] when the row has no
          CPU measurement (bechamel OLS estimates time single runs from
          a regression — there is no per-run CPU sample to report, and
          a fabricated [0.] used to be written). The field is omitted
          from the JSON when absent. *)
}

type snapshot = {
  label : string;  (** identifies the measured tree, e.g. "PR3" *)
  jobs : int;
  quick : bool;
  seed : int;
  entries : entry list;
}

val schema : string

(** JSON string escaping (shared with the other JSON sinks). *)
val escape : string -> string

(** [render ?baseline s] is the full JSON document; a [baseline]
    snapshot is embedded verbatim and speedup ratios
    ([baseline wall / current wall], > 1 improved) derived for entries
    present in both. *)
val render : ?baseline:snapshot -> snapshot -> string

(** Speedup rows for entries present in both snapshots. *)
val speedups :
  baseline:entry list -> current:snapshot -> (string * float) list

(** [regressions ~threshold ~baseline ~current ()] — entries present in
    both whose current wall time exceeds the baseline's by more than
    [threshold] (a fraction: [0.5] flags anything slower than 1.5x the
    baseline), as [(name, current/baseline)] slowdown ratios, worst
    first. Entries appearing on only one side are ignored, as are
    baseline rows with non-positive wall times and rows whose baseline
    wall is below [min_wall] (default [0.]) — micro rows under the
    single-rep timing noise floor regress by whole multiples from one
    cache miss and would make the check flap. *)
val regressions :
  ?min_wall:float ->
  threshold:float ->
  baseline:entry list ->
  current:entry list ->
  unit ->
  (string * float) list

(** Recover the label, config and {e top-level} entries of a document
    written by {!render}; [None] if [s] is not one. An embedded
    baseline's entries are not returned. *)
val parse : string -> snapshot option
