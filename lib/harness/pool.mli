(** Fixed-size domain pool for deterministic scenario fan-out.

    A pool spawns its worker domains once at {!create} and reuses them for
    every subsequent batch: {!run} submits a list of [unit -> 'a] jobs,
    idle domains steal the next unclaimed job from the shared batch, and
    results come back in submission order regardless of which domain ran
    what — so a caller that derives any randomness from pre-split seeds
    gets bit-identical output at every pool size.

    With [jobs = 1] the pool spawns no domain at all and {!run} degrades
    to an in-process [List.map], so sequential use pays nothing. *)

type t

(** [create ~jobs] spawns [jobs - 1] worker domains (the caller is the
    remaining worker: it drains the batch alongside them during {!run}).
    @raise Invalid_argument if [jobs < 1]. *)
val create : jobs:int -> t

(** Parallelism of the pool, including the calling domain ([>= 1]). *)
val jobs : t -> int

(** Number of worker domains actually spawned: [jobs t - 1], hence [0]
    for a sequential pool. *)
val domain_count : t -> int

(** [run t fs] executes every job of [fs] and returns their results in
    submission order. Jobs may run on any domain and in any order; if one
    or more jobs raise, the exception of the earliest-submitted failing
    job is re-raised in the caller (with its backtrace) after the batch
    has drained. Not reentrant: a pool runs one batch at a time, and jobs
    must not themselves call [run] on the same pool.
    @raise Invalid_argument if the pool has been shut down. *)
val run : t -> (unit -> 'a) list -> 'a list

(** Terminate and join the worker domains. Idempotent; subsequent {!run}
    calls raise [Invalid_argument]. *)
val shutdown : t -> unit

(** [with_pool ~jobs f] = create, apply [f], always shut down. *)
val with_pool : jobs:int -> (t -> 'a) -> 'a

(** What [--jobs] should default to: [Domain.recommended_domain_count ()]. *)
val default_jobs : unit -> int
