(** One driver per table/figure of the paper's evaluation (§7).

    Common setup (the paper's): APs and users uniform over a 1.2 km² area,
    802.11a rates (Table 1), multicast budget 0.9, 5 sessions at 1 Mbps,
    every user subscribing to one session at random, min/avg/max over
    [scenarios] random seeds. Each experiment returns a {!Series.figure}
    whose rows mirror the paper's plot series. *)

open Wlan_model
open Mcast_core

type config = {
  scenarios : int;  (** random scenarios per point (paper: 40) *)
  small_scenarios : int;  (** scenarios for the ILP-bound Fig. 12 *)
  seed : int;
  ilp_node_limit : int;  (** branch-and-bound budget per exact solve *)
  jobs : int;  (** domains fanning scenarios out; 1 = fully sequential *)
}

let default_config =
  {
    scenarios = 40;
    small_scenarios = 10;
    seed = 2007;
    ilp_node_limit = 60_000;
    jobs = 1;
  }

(** {1 Generic sweep machinery}

    Every scenario loop below goes through a {!Pool}: one job per random
    instance, with the instance's RNG seed split from [cfg.seed] before
    dispatch (see {!Scenario_gen.scenario_rng}), and results re-assembled
    in instance order — so every figure is bit-identical at any [jobs]
    value. *)

(** Evaluate every [(name, f)] of [algorithms] on every problem, one pool
    job per problem; summaries are per algorithm, in instance order. *)
let eval_rows pool ~algorithms problems =
  let rows =
    Pool.run pool
      (List.map
         (fun p () -> List.map (fun (_, f) -> f p) algorithms)
         problems)
  in
  List.mapi
    (fun k (name, _) ->
      (name, Stats.summarize (List.map (fun row -> List.nth row k) rows)))
    algorithms

(** Run [algorithms] (name, problem -> metric) over [scenarios] random
    instances at each x, where [problems_at x] generates them. *)
let sweep ~pool ~algorithms ~problems_at xs =
  List.map
    (fun x -> { Series.x; values = eval_rows pool ~algorithms (problems_at x) })
    xs

(** Generate [n] instances through the pool: instance [i] depends only on
    [(seed, i)], never on the instances before it. *)
let par_problems pool ~seed ~n gen_cfg =
  Pool.run pool
    (List.init n (fun i () -> Scenario_gen.nth_problem ~seed ~index:i gen_cfg))

let gen_problems pool cfg ~ix ~gen_cfg =
  par_problems pool ~seed:(cfg.seed + (1009 * ix)) ~n:cfg.scenarios gen_cfg

(** {1 Metrics} *)

let total_of (s : Solution.t) = s.Solution.total_load
let max_of (s : Solution.t) = s.Solution.max_load
let sat_of (s : Solution.t) = float_of_int s.Solution.satisfied

let mla_algorithms =
  [
    ("MLA-centralized", fun p -> total_of (Mla.run p));
    ("MLA-distributed", fun p -> total_of (fst (Distributed.mla p)));
    ("SSA", fun p -> total_of (Ssa.run p));
  ]

(* BLA-centralized runs the hard-cap variant of the B* cover (never
   overshoot a group's budget) — measurably tighter than the paper's
   overshoot-and-split pseudo-code at identical cost; the ablate-bla-mode
   experiment compares the two. *)
let bla_algorithms =
  [
    ("BLA-centralized", fun p -> max_of (Bla.run_exn ~mode:`Hard p));
    ("BLA-distributed", fun p -> max_of (fst (Distributed.bla p)));
    ("SSA", fun p -> max_of (Ssa.run p));
  ]

let mnu_algorithms =
  [
    ("MNU-centralized", fun p -> sat_of (Mnu.run p));
    ("MNU-distributed", fun p -> sat_of (fst (Distributed.mnu p)));
    ("SSA", fun p -> sat_of (Ssa.run p));
  ]

(** {1 Figure 9 — total AP load (MLA vs SSA)} *)

let user_sweep = [ 50; 100; 150; 200; 250; 300; 350; 400 ]
let ap_sweep = [ 25; 50; 75; 100; 125; 150; 175; 200 ]
let session_sweep = [ 1; 2; 4; 6; 8; 10; 14; 18 ]

let fig9a ?(cfg = default_config) () =
  Pool.with_pool ~jobs:cfg.jobs @@ fun pool ->
  let points =
    sweep ~pool ~algorithms:mla_algorithms
      ~problems_at:(fun users ->
        gen_problems pool cfg ~ix:(int_of_float users)
          ~gen_cfg:
            {
              Scenario_gen.paper_default with
              n_aps = 200;
              n_users = int_of_float users;
            })
      (List.map float_of_int user_sweep)
  in
  {
    Series.id = "fig9a";
    title = "Total AP load vs number of users (200 APs, 5 sessions)";
    x_label = "users";
    y_label = "total multicast load";
    points;
  }

let fig9b ?(cfg = default_config) () =
  Pool.with_pool ~jobs:cfg.jobs @@ fun pool ->
  {
    Series.id = "fig9b";
    title = "Total AP load vs number of APs (100 users, 5 sessions)";
    x_label = "APs";
    y_label = "total multicast load";
    points =
      sweep ~pool ~algorithms:mla_algorithms
        ~problems_at:(fun aps ->
          gen_problems pool cfg ~ix:(int_of_float aps)
            ~gen_cfg:
              {
                Scenario_gen.paper_default with
                n_aps = int_of_float aps;
                n_users = 100;
              })
        (List.map float_of_int ap_sweep);
  }

let fig9c ?(cfg = default_config) () =
  Pool.with_pool ~jobs:cfg.jobs @@ fun pool ->
  {
    Series.id = "fig9c";
    title = "Total AP load vs number of sessions (200 APs, 200 users)";
    x_label = "sessions";
    y_label = "total multicast load";
    points =
      sweep ~pool ~algorithms:mla_algorithms
        ~problems_at:(fun s ->
          gen_problems pool cfg ~ix:(int_of_float s)
            ~gen_cfg:
              {
                Scenario_gen.paper_default with
                n_aps = 200;
                n_users = 200;
                n_sessions = int_of_float s;
              })
        (List.map float_of_int session_sweep);
  }

(** {1 Figure 10 — maximum AP load (BLA vs SSA)} *)

let fig10a ?(cfg = default_config) () =
  Pool.with_pool ~jobs:cfg.jobs @@ fun pool ->
  {
    Series.id = "fig10a";
    title = "Max AP load vs number of users (200 APs, 5 sessions)";
    x_label = "users";
    y_label = "max multicast load";
    points =
      sweep ~pool ~algorithms:bla_algorithms
        ~problems_at:(fun users ->
          gen_problems pool cfg ~ix:(int_of_float users)
            ~gen_cfg:
              {
                Scenario_gen.paper_default with
                n_aps = 200;
                n_users = int_of_float users;
              })
        (List.map float_of_int user_sweep);
  }

let fig10b ?(cfg = default_config) () =
  Pool.with_pool ~jobs:cfg.jobs @@ fun pool ->
  {
    Series.id = "fig10b";
    title = "Max AP load vs number of APs (100 users, 5 sessions)";
    x_label = "APs";
    y_label = "max multicast load";
    points =
      sweep ~pool ~algorithms:bla_algorithms
        ~problems_at:(fun aps ->
          gen_problems pool cfg ~ix:(int_of_float aps)
            ~gen_cfg:
              {
                Scenario_gen.paper_default with
                n_aps = int_of_float aps;
                n_users = 100;
              })
        (List.map float_of_int ap_sweep);
  }

let fig10c ?(cfg = default_config) () =
  Pool.with_pool ~jobs:cfg.jobs @@ fun pool ->
  {
    Series.id = "fig10c";
    title = "Max AP load vs number of sessions (200 APs, 200 users)";
    x_label = "sessions";
    y_label = "max multicast load";
    points =
      sweep ~pool ~algorithms:bla_algorithms
        ~problems_at:(fun s ->
          gen_problems pool cfg ~ix:(int_of_float s)
            ~gen_cfg:
              {
                Scenario_gen.paper_default with
                n_aps = 200;
                n_users = 200;
                n_sessions = int_of_float s;
              })
        (List.map float_of_int session_sweep);
  }

(** {1 Figure 11 — satisfied users vs multicast budget (MNU vs SSA)}

    400 users, 100 APs, 18 sessions; the x-axis is the per-AP multicast
    load limit. The same topologies are re-budgeted across the sweep, as a
    budget is an operator knob, not a property of the deployment. *)

let budget_sweep = [ 0.01; 0.02; 0.03; 0.04; 0.05; 0.06; 0.08; 0.1 ]

let fig11 ?(cfg = default_config) () =
  Pool.with_pool ~jobs:cfg.jobs @@ fun pool ->
  let base_problems =
    gen_problems pool cfg ~ix:11
      ~gen_cfg:
        {
          Scenario_gen.paper_default with
          n_aps = 100;
          n_users = 400;
          n_sessions = 18;
        }
  in
  {
    Series.id = "fig11";
    title =
      "Satisfied users vs multicast load limit (400 users, 100 APs, 18 \
       sessions)";
    x_label = "per-AP load limit";
    y_label = "satisfied users";
    points =
      sweep ~pool ~algorithms:mnu_algorithms
        ~problems_at:(fun b ->
          List.map (fun p -> Problem.with_budget p b) base_problems)
        budget_sweep;
  }

(** {1 Figure 12 — optimality on small networks}

    30 APs and 10..50 users in a 600 m side area; ILP-based exact optima.
    The MNU comparison uses the paper's budget 0.042 and reports
    {e unsatisfied} users. *)

let small_user_sweep = [ 10; 20; 30; 40; 50 ]

let small_gen users =
  { Scenario_gen.paper_small with n_users = users }

let small_problems pool cfg ~ix users =
  par_problems pool ~seed:(cfg.seed + (31 * ix)) ~n:cfg.small_scenarios
    (small_gen users)

let fig12a ?(cfg = default_config) () =
  Pool.with_pool ~jobs:cfg.jobs @@ fun pool ->
  let algorithms =
    mla_algorithms
    @ [
        ( "optimal",
          fun p ->
            match
              Optimal.mla ~node_limit:(Int.max cfg.ilp_node_limit 500_000) p
            with
            | Some v -> v.Optimal.value
            | None -> Float.nan );
      ]
  in
  {
    Series.id = "fig12a";
    title = "Total AP load vs users, 30 APs, 600 m area (with ILP optimum)";
    x_label = "users";
    y_label = "total multicast load";
    points =
      sweep ~pool ~algorithms
        ~problems_at:(fun users ->
          small_problems pool cfg ~ix:(int_of_float users) (int_of_float users))
        (List.map float_of_int small_user_sweep);
  }

let fig12b ?(cfg = default_config) () =
  Pool.with_pool ~jobs:cfg.jobs @@ fun pool ->
  let algorithms =
    bla_algorithms
    @ [
        ( "optimal",
          fun p ->
            let greedy = (Bla.run_exn ~mode:`Hard p).Solution.max_load in
            let dist = (fst (Distributed.bla p)).Solution.max_load in
            let bound = Float.min greedy dist in
            match
              Optimal.bla ~node_limit:cfg.ilp_node_limit
                ~initial_bound:(bound +. 1e-9) p
            with
            | Some v -> Float.min v.Optimal.value bound
            | None -> bound );
      ]
  in
  {
    Series.id = "fig12b";
    title = "Max AP load vs users, 30 APs, 600 m area (with ILP optimum)";
    x_label = "users";
    y_label = "max multicast load";
    points =
      sweep ~pool ~algorithms
        ~problems_at:(fun users ->
          small_problems pool cfg ~ix:(41 * int_of_float users)
            (int_of_float users))
        (List.map float_of_int small_user_sweep);
  }

let fig12c ?(cfg = default_config) () =
  Pool.with_pool ~jobs:cfg.jobs @@ fun pool ->
  (* unsatisfied users under budget 0.042 *)
  let budget = 0.042 in
  let unsat f p =
    let p = Problem.with_budget p budget in
    let _, n_users = Problem.dims p in
    float_of_int n_users -. sat_of (f p)
  in
  let algorithms =
    [
      ("MNU-centralized", unsat (fun p -> Mnu.run p));
      ("MNU-distributed", unsat (fun p -> fst (Distributed.mnu p)));
      ("SSA", unsat Ssa.run);
      ( "optimal",
        unsat (fun p ->
            match Optimal.mnu ~node_limit:cfg.ilp_node_limit p with
            | Some v -> v.Optimal.solution
            | None -> Solution.make ~algorithm:"none" p
                        (Association.empty ~n_users:(snd (Problem.dims p)))) );
    ]
  in
  {
    Series.id = "fig12c";
    title =
      "Unsatisfied users vs users, 30 APs, 600 m area, budget 0.042 (with \
       ILP optimum)";
    x_label = "users";
    y_label = "unsatisfied users";
    points =
      sweep ~pool ~algorithms
        ~problems_at:(fun users ->
          small_problems pool cfg ~ix:(53 * int_of_float users)
            (int_of_float users))
        (List.map float_of_int small_user_sweep);
  }

(** {1 Table 1} — the rate-adaptation table itself (an input the harness
    prints back for completeness, with a round-trip check). *)

let table1 () =
  List.map
    (fun (e : Rate_table.entry) ->
      (e.Rate_table.rate_mbps, e.Rate_table.threshold_m))
    (Rate_table.entries Rate_table.default)

(** {1 Headline numbers} — the abstract's claims, recomputed:
    users +36.9% (MNU, budget 0.04), max load −52.9% (BLA, 400 users),
    total load −31.1% (MLA, 400 users). *)

type headline = {
  mnu_user_gain_pct : float;
  bla_max_load_reduction_pct : float;
  mla_total_load_reduction_pct : float;
}

let headline ?(cfg = default_config) () =
  let f9 = fig9a ~cfg () and f10 = fig10a ~cfg () and f11 = fig11 ~cfg () in
  let at fig name x = Option.get (Series.mean_at fig name x) in
  {
    mla_total_load_reduction_pct =
      Stats.pct_reduction
        ~baseline:(at f9 "SSA" 400.)
        ~improved:(at f9 "MLA-centralized" 400.);
    bla_max_load_reduction_pct =
      Stats.pct_reduction
        ~baseline:(at f10 "SSA" 400.)
        ~improved:(at f10 "BLA-centralized" 400.);
    mnu_user_gain_pct =
      Stats.pct_gain
        ~baseline:(at f11 "SSA" 0.04)
        ~improved:(at f11 "MNU-centralized" 0.04);
  }

(** {1 Ablations} (design choices called out in DESIGN.md) *)

(** Multi-rate vs basic-rate multicast: the paper notes (§3.1) that the
    algorithms still beat SSA when broadcast is pinned to the basic rate. *)
let ablate_rate ?(cfg = default_config) () =
  Pool.with_pool ~jobs:cfg.jobs @@ fun pool ->
  let problems =
    gen_problems pool cfg ~ix:77
      ~gen_cfg:{ Scenario_gen.paper_default with n_aps = 200; n_users = 200 }
  in
  let rows transform =
    eval_rows pool
      ~algorithms:
        (List.map
           (fun (name, f) -> (name, fun p -> f (transform p)))
           mla_algorithms)
      problems
  in
  {
    Series.id = "ablate-rate";
    title = "Total load: multi-rate vs basic-rate multicast (200 APs, 200 users)";
    x_label = "mode (0 = multi-rate, 1 = basic)";
    y_label = "total multicast load";
    points =
      [
        { Series.x = 0.; values = rows Fun.id };
        { Series.x = 1.; values = rows Problem.restrict_to_basic_rate };
      ];
  }

(** BLA's B* grid resolution. *)
let ablate_bstar ?(cfg = default_config) () =
  Pool.with_pool ~jobs:cfg.jobs @@ fun pool ->
  let problems =
    gen_problems pool cfg ~ix:78
      ~gen_cfg:{ Scenario_gen.paper_default with n_aps = 100; n_users = 200 }
  in
  {
    Series.id = "ablate-bstar";
    title = "Centralized BLA: max load vs size of the B* guess grid";
    x_label = "grid size";
    y_label = "max multicast load";
    points =
      List.map
        (fun n_guesses ->
          {
            Series.x = float_of_int n_guesses;
            values =
              eval_rows pool
                ~algorithms:
                  [
                    ( "BLA-centralized",
                      fun p -> (Bla.run_exn ~n_guesses p).Solution.max_load );
                  ]
                problems;
          })
        [ 2; 4; 8; 12; 16; 24 ];
  }

(** BLA inner-loop discipline: the paper's overshoot-and-split MCG
    ([`Soft], carries the 8-approximation guarantee) vs the hard-cap
    variant ([`Hard], never overshoots, no guarantee). *)
let ablate_bla_mode ?(cfg = default_config) () =
  Pool.with_pool ~jobs:cfg.jobs @@ fun pool ->
  let problems =
    gen_problems pool cfg ~ix:80
      ~gen_cfg:{ Scenario_gen.paper_default with n_aps = 200; n_users = 400 }
  in
  let row mode name = (name, fun p -> (Bla.run_exn ~mode p).Solution.max_load) in
  {
    Series.id = "ablate-bla-mode";
    title = "Centralized BLA: overshoot-and-split vs hard budget caps";
    x_label = "(400 users)";
    y_label = "max multicast load";
    points =
      [
        {
          Series.x = 400.;
          values =
            eval_rows pool
              ~algorithms:
                [ row `Soft "soft (paper Fig. 3)"; row `Hard "hard caps" ]
              problems;
        };
      ];
  }

(** MLA solver family on small networks (the paper's §6.1 remark that the
    layer algorithm is an alternative to greedy): greedy vs layering vs LP
    rounding vs the exact optimum. *)
let ablate_mla_alg ?(cfg = default_config) () =
  Pool.with_pool ~jobs:cfg.jobs @@ fun pool ->
  let algorithms =
    [
      ("greedy", fun p -> total_of (Mla.run p));
      ("layered", fun p -> total_of (Mla.run_layered p));
      ( "lp-rounding",
        fun p ->
          match Mla.run_lp_rounding p with
          | Some s -> total_of s
          | None -> Float.nan );
      ( "optimal",
        fun p ->
          match
            Optimal.mla ~node_limit:(Int.max cfg.ilp_node_limit 500_000) p
          with
          | Some v -> v.Optimal.value
          | None -> Float.nan );
    ]
  in
  {
    Series.id = "ablate-mla-alg";
    title = "MLA solver family: greedy vs layering vs LP rounding vs exact";
    x_label = "users";
    y_label = "total multicast load";
    points =
      sweep ~pool ~algorithms
        ~problems_at:(fun users ->
          small_problems pool cfg ~ix:(71 * int_of_float users)
            (int_of_float users))
        (List.map float_of_int [ 10; 20; 30; 40 ]);
  }

(** {1 Extension experiments} — features beyond the paper's evaluation,
    built on its §8 future work and §3.1 framework citations. *)

(** Zipf session popularity: real audiences concentrate on few channels;
    association control's edge over SSA grows with the skew, because
    popular sessions can be consolidated onto fewer transmissions. *)
let ext_popularity ?(cfg = default_config) () =
  Pool.with_pool ~jobs:cfg.jobs @@ fun pool ->
  let problems_at alpha =
    let popularity =
      if alpha <= 1e-9 then Scenario_gen.Uniform_pop else Scenario_gen.Zipf alpha
    in
    par_problems pool ~seed:(cfg.seed + 91) ~n:cfg.scenarios
      {
        Scenario_gen.paper_default with
        n_aps = 200;
        n_users = 400;
        n_sessions = 10;
        popularity;
      }
  in
  {
    Series.id = "ext-popularity";
    title =
      "Total AP load vs Zipf popularity skew (200 APs, 400 users, 10 \
       sessions)";
    x_label = "zipf alpha";
    y_label = "total multicast load";
    points =
      sweep ~pool ~algorithms:mla_algorithms ~problems_at
        [ 0.; 0.5; 1.0; 1.5; 2.0 ];
  }

(** Residual co-channel interference: 3 channels (the 802.11b/g situation
    the paper contrasts with 802.11a), carrier-sense at twice the data
    range. BLA/MLA "implicitly optimize interference" (§3.2 note) — this
    measures by how much. *)
let ext_interference ?(cfg = default_config) () =
  Pool.with_pool ~jobs:cfg.jobs @@ fun pool ->
  let range = 2. *. Rate_table.range Rate_table.default in
  let point aps =
    let samples =
      Pool.run pool
      @@ List.init cfg.scenarios (fun i () ->
          let rng = Random.State.make [| cfg.seed + 17; aps; i |] in
          let sc =
            Scenario_gen.generate ~rng
              { Scenario_gen.paper_default with n_aps = aps; n_users = 200 }
          in
          let p = Scenario.to_problem sc in
          let edges = Channels.conflict_edges ~range sc.Scenario.ap_pos in
          let asg = Channels.color ~n_channels:3 ~n_aps:aps edges in
          let interf assoc =
            Channels.total_interference asg ~loads:(Loads.ap_loads p assoc)
          in
          ( interf (Ssa.run p).Solution.assoc,
            interf (Mla.run p).Solution.assoc,
            interf (Bla.run_exn ~mode:`Hard p).Solution.assoc,
            interf
              (Mla.run_interference_aware ~channels:asg ~lambda:2. p)
                .Solution.assoc ))
    in
    {
      Series.x = float_of_int aps;
      values =
        [
          ("SSA", Stats.summarize (List.map (fun (s, _, _, _) -> s) samples));
          ( "MLA-centralized",
            Stats.summarize (List.map (fun (_, m, _, _) -> m) samples) );
          ( "BLA-centralized",
            Stats.summarize (List.map (fun (_, _, b, _) -> b) samples) );
          ( "MLA-interference-aware",
            Stats.summarize (List.map (fun (_, _, _, i) -> i) samples) );
        ];
    }
  in
  {
    Series.id = "ext-interference";
    title =
      "Total residual co-channel interference, 3 channels, carrier sense \
       2x data range (200 users)";
    x_label = "APs";
    y_label = "sum of co-channel neighbor load";
    points = List.map point [ 50; 100; 150; 200 ];
  }

(** Dual association (§3.1 / WiMesh'05): combined unicast+multicast airtime
    of one shared SSA AP vs SSA-unicast + MLA-multicast, across unicast
    demand levels. *)
let ext_dual ?(cfg = default_config) () =
  Pool.with_pool ~jobs:cfg.jobs @@ fun pool ->
  let problems =
    gen_problems pool cfg ~ix:23
      ~gen_cfg:{ Scenario_gen.paper_default with n_aps = 100; n_users = 200 }
  in
  let point demand =
    let samples =
      Pool.run pool
      @@ List.map
           (fun p () ->
             let demands = Mcast_core.Dual.uniform_demands p ~mbps:demand in
             Mcast_core.Dual.compare_single_vs_dual ~objective:`Mla p ~demands)
           problems
    in
    {
      Series.x = demand;
      values =
        [
          ( "single-assoc total",
            Stats.summarize
              (List.map
                 (fun c -> c.Mcast_core.Dual.single.Mcast_core.Dual.total)
                 samples) );
          ( "dual-assoc total",
            Stats.summarize
              (List.map
                 (fun c -> c.Mcast_core.Dual.dual.Mcast_core.Dual.total)
                 samples) );
          ( "saving %",
            Stats.summarize
              (List.map (fun c -> c.Mcast_core.Dual.total_saving_pct) samples)
          );
        ];
    }
  in
  {
    Series.id = "ext-dual";
    title =
      "Dual vs single association: combined airtime (100 APs, 200 users)";
    x_label = "unicast demand (Mbps/user)";
    y_label = "total airtime";
    points = List.map point [ 0.25; 0.5; 1.0; 2.0 ];
  }

(** Protocol robustness: the DES query/response protocol under message
    loss — served users and passes to convergence. *)
let ext_loss ?(cfg = default_config) () =
  Pool.with_pool ~jobs:cfg.jobs @@ fun pool ->
  let n_scen = Int.min cfg.scenarios 10 in
  let point loss =
    let samples =
      Pool.run pool
      @@ List.init n_scen (fun i () ->
          let rng = Random.State.make [| cfg.seed + 3; i |] in
          let sc =
            Scenario_gen.generate ~rng
              {
                Scenario_gen.paper_default with
                n_aps = 30;
                n_users = 60;
                area_w = 600.;
                area_h = 600.;
              }
          in
          let r =
            Wlan_sim.Runner.run ~seed:i ~loss_rate:loss
              ~policy:
                (Wlan_sim.Runner.Distributed_policy
                   {
                     objective = Mcast_core.Distributed.Min_total_load;
                     mode = Wlan_sim.Runner.Sequential;
                     max_passes = 40;
                   })
              sc
          in
          ( float_of_int r.Wlan_sim.Runner.solution.Mcast_core.Solution.satisfied,
            float_of_int r.Wlan_sim.Runner.passes ))
    in
    {
      Series.x = loss;
      values =
        [
          ("served users", Stats.summarize (List.map fst samples));
          ("passes", Stats.summarize (List.map snd samples));
        ];
    }
  in
  {
    Series.id = "ext-loss";
    title =
      "Distributed protocol under message loss (DES, 30 APs, 60 users)";
    x_label = "loss rate";
    y_label = "served users / passes";
    points = List.map point [ 0.; 0.2; 0.4; 0.6; 0.8 ];
  }

(** Per-AP power control (§8): what coordinate descent buys as the
    interference weight grows. *)
let ext_power ?(cfg = default_config) () =
  Pool.with_pool ~jobs:cfg.jobs @@ fun pool ->
  let n_scen = Int.min cfg.scenarios 10 in
  let point mu =
    let samples =
      Pool.run pool
      @@ List.init n_scen (fun i () ->
          let rng = Random.State.make [| cfg.seed + 5; i |] in
          let sc =
            Scenario_gen.generate ~rng
              {
                Scenario_gen.paper_default with
                n_aps = 40;
                n_users = 80;
                area_w = 500.;
                area_h = 500.;
              }
          in
          let edges =
            Channels.conflict_edges
              ~range:(2. *. Rate_table.range Rate_table.default)
              sc.Scenario.ap_pos
          in
          let channels = Channels.color ~n_channels:3 ~n_aps:40 edges in
          let plan = Mcast_core.Power.optimize ~channels ~mu sc in
          ( float_of_int (Mcast_core.Power.reduced_count plan),
            Stats.pct_reduction
              ~baseline:plan.Mcast_core.Power.full_power_objective
              ~improved:plan.Mcast_core.Power.objective ))
    in
    {
      Series.x = mu;
      values =
        [
          ("APs below full power", Stats.summarize (List.map fst samples));
          ("objective gain %", Stats.summarize (List.map snd samples));
        ];
    }
  in
  {
    Series.id = "ext-power";
    title =
      "Per-AP power control: reductions and joint-objective gain vs \
       interference weight (40 APs, 3 channels)";
    x_label = "mu";
    y_label = "APs reduced / J gain %";
    points = List.map point [ 0.05; 0.1; 0.2; 0.4 ];
  }

(** 802.11a (Table 1, 12 channels) vs 802.11b (longer reach, 3 channels):
    the standards trade coverage against rate and channel diversity. *)
let ext_standards ?(cfg = default_config) () =
  Pool.with_pool ~jobs:cfg.jobs @@ fun pool ->
  let point (label_x, table, n_channels) =
    let samples =
      Pool.run pool
      @@ List.init cfg.scenarios (fun i () ->
          let rng = Random.State.make [| cfg.seed + 6; i |] in
          let sc =
            Scenario_gen.generate ~rng
              {
                Scenario_gen.paper_default with
                n_aps = 100;
                n_users = 200;
                rate_table = table;
              }
          in
          let p = Scenario.to_problem sc in
          let edges =
            Channels.conflict_edges
              ~range:(2. *. Rate_table.range table)
              sc.Scenario.ap_pos
          in
          let asg = Channels.color ~n_channels ~n_aps:100 edges in
          let mla = Mla.run p in
          ( mla.Solution.total_load,
            Channels.total_interference asg ~loads:mla.Solution.ap_loads ))
    in
    {
      Series.x = label_x;
      values =
        [
          ("MLA total load", Stats.summarize (List.map fst samples));
          ("co-channel interference", Stats.summarize (List.map snd samples));
        ];
    }
  in
  {
    Series.id = "ext-standards";
    title =
      "802.11a (x=0: Table 1, 12 channels) vs 802.11b (x=1: longer reach, \
       3 channels), 100 APs / 200 users";
    x_label = "standard";
    y_label = "total load / interference";
    points =
      List.map point
        [ (0., Rate_table.ieee80211a, 12); (1., Rate_table.ieee80211b, 3) ];
  }

(** Mobility churn: users relocating between epochs; warm-started
    re-convergence cost. *)
let ext_mobility ?(cfg = default_config) () =
  Pool.with_pool ~jobs:cfg.jobs @@ fun pool ->
  let n_scen = Int.min cfg.scenarios 8 in
  let point fraction =
    let samples =
      Pool.run pool
      @@ List.init n_scen (fun i () ->
          let rng = Random.State.make [| cfg.seed + 4; i |] in
          let sc =
            Scenario_gen.generate ~rng
              {
                Scenario_gen.paper_default with
                n_aps = 30;
                n_users = 60;
                area_w = 600.;
                area_h = 600.;
              }
          in
          let reports =
            Wlan_sim.Mobility.run ~seed:i ~move_fraction:fraction ~epochs:4
              ~policy:
                (Wlan_sim.Runner.Distributed_policy
                   {
                     objective = Mcast_core.Distributed.Min_total_load;
                     mode = Wlan_sim.Runner.Sequential;
                     max_passes = 40;
                   })
              sc
          in
          (* mean over the warm epochs (2..) *)
          let warm = List.filteri (fun i _ -> i > 0) reports in
          let mean f =
            List.fold_left (fun a e -> a +. f e) 0. warm
            /. float_of_int (List.length warm)
          in
          ( mean (fun (e : Wlan_sim.Mobility.epoch_report) ->
                float_of_int e.Wlan_sim.Mobility.rejoin_moves),
            mean (fun (e : Wlan_sim.Mobility.epoch_report) ->
                float_of_int e.Wlan_sim.Mobility.report.Wlan_sim.Runner.passes)
          ))
    in
    {
      Series.x = fraction;
      values =
        [
          ("re-associations", Stats.summarize (List.map fst samples));
          ("passes", Stats.summarize (List.map snd samples));
        ];
    }
  in
  {
    Series.id = "ext-mobility";
    title = "Re-convergence cost vs mobility burst size (DES, 30 APs, 60 users)";
    x_label = "fraction moved";
    y_label = "re-associations / passes";
    points = List.map point [ 0.05; 0.1; 0.2; 0.4 ];
  }

(** Churn replay: per-event disruption vs churn intensity. One pool job
    per random instance; the instance and its script derive only from
    [(seed, n_events, i)], so the figure is bit-identical at any [jobs]
    value. *)
let ext_churn ?(cfg = default_config) () =
  Pool.with_pool ~jobs:cfg.jobs @@ fun pool ->
  let n_scen = Int.min cfg.scenarios 8 in
  let point n_events =
    let samples =
      Pool.run pool
      @@ List.init n_scen (fun i () ->
             let p =
               Scenario_gen.nth_problem ~seed:(cfg.seed + 8) ~index:i
                 {
                   Scenario_gen.paper_default with
                   n_aps = 30;
                   n_users = 60;
                   area_w = 600.;
                   area_h = 600.;
                 }
             in
             let n_aps, n_users = Problem.dims p in
             let rng = Random.State.make [| cfg.seed + 8; n_events; i |] in
             let script =
               Churn_script.random ~rng ~n_aps ~n_users
                 { Churn_script.default_gen with n_events }
             in
             let o =
               Wlan_sim.Churn.run ~baseline:false
                 ~objective:Distributed.Min_total_load ~script p
             in
             (* the head step is the initial static convergence, not churn *)
             let churn_steps =
               List.filteri (fun k _ -> k > 0) o.Wlan_sim.Churn.steps
             in
             let mean f =
               match churn_steps with
               | [] -> 0.
               | _ ->
                   List.fold_left (fun a s -> a +. f s) 0. churn_steps
                   /. float_of_int (List.length churn_steps)
             in
             ( mean (fun (s : Wlan_sim.Churn.step) ->
                   float_of_int s.Wlan_sim.Churn.reassociated),
               mean (fun (s : Wlan_sim.Churn.step) ->
                   float_of_int s.Wlan_sim.Churn.rounds) ))
    in
    {
      Series.x = float_of_int n_events;
      values =
        [
          ("reassociated", Stats.summarize (List.map fst samples));
          ("rounds", Stats.summarize (List.map snd samples));
        ];
    }
  in
  {
    Series.id = "ext-churn";
    title = "Per-step disruption vs churn intensity (30 APs, 60 users)";
    x_label = "script events";
    y_label = "mean re-associations / rounds per step";
    points = List.map point [ 10; 20; 40; 80 ];
  }

(** Distributed scheduler comparison: solution quality and rounds. *)
let ablate_sched ?(cfg = default_config) () =
  Pool.with_pool ~jobs:cfg.jobs @@ fun pool ->
  let problems =
    gen_problems pool cfg ~ix:79
      ~gen_cfg:{ Scenario_gen.paper_default with n_aps = 100; n_users = 200 }
  in
  let run sched p =
    Distributed.run ~scheduler:sched ~objective:Distributed.Min_total_load p
  in
  let quality sched p = Loads.total_load p (run sched p).Distributed.assoc in
  let rounds sched p = float_of_int (run sched p).Distributed.rounds in
  let point x sched =
    {
      Series.x;
      values =
        eval_rows pool
          ~algorithms:
            [ ("total-load", quality sched); ("rounds", rounds sched) ]
          problems;
    }
  in
  {
    Series.id = "ablate-sched";
    title = "Distributed MLA: sequential vs simultaneous vs locked";
    x_label = "scheduler (0=seq, 1=simul, 2=locked)";
    y_label = "total load / rounds";
    points =
      [
        point 0. Distributed.Sequential;
        point 1. Distributed.Simultaneous;
        point 2. Distributed.Locked;
      ];
  }

(** {1 PHY-model ablation} — how sensitive are solution quality and
    distributed convergence to the propagation model behind the
    link-rate matrix? Same deployments (same split-RNG position
    streams), four {!Rate_model} instances: the paper's Table 1 ladder,
    Friis free space, two-ray ground and log-distance with seeded
    shadowing. Coverage resampling runs under each model's own link
    predicate, exactly as the compile does. *)

let phy_models =
  [
    (0., "table1", None);
    (1., "friis", Some (Rate_model.friis ()));
    (2., "two-ray", Some (Rate_model.two_ray ()));
    ( 3.,
      "log-distance",
      Some
        (Rate_model.log_distance
           ~shadowing:{ Rate_model.sigma_db = 4.; seed = 7 }
           ()) );
  ]

let ablate_phy ?(cfg = default_config) () =
  Pool.with_pool ~jobs:cfg.jobs @@ fun pool ->
  let n_scen = Int.min cfg.scenarios 10 in
  let point (x, _label, rate_model) =
    let problems =
      Pool.run pool
      @@ List.init n_scen (fun i () ->
          Scenario_gen.nth_problem ~seed:(cfg.seed + 23) ~index:i
            {
              Scenario_gen.paper_default with
              n_aps = 100;
              n_users = 200;
              rate_model;
            })
    in
    {
      Series.x;
      values =
        eval_rows pool
          ~algorithms:
            [
              ("MLA total load", fun p -> total_of (Mla.run p));
              ("BLA max load", fun p -> max_of (Bla.run_exn ~mode:`Hard p));
              ( "MNU users",
                fun p -> sat_of (Mnu.run (Problem.with_budget p 0.05)) );
              ("SSA total load", fun p -> total_of (Ssa.run p));
              ( "MLA-dist rounds",
                fun p ->
                  float_of_int
                    (Distributed.run ~scheduler:Distributed.Sequential
                       ~objective:Distributed.Min_total_load p)
                      .Distributed.rounds );
            ]
          problems;
    }
  in
  {
    Series.id = "ablate-phy";
    title =
      "PHY ablation: Table 1 (x=0) vs Friis (x=1) vs two-ray (x=2) vs \
       log-distance + shadowing (x=3), 100 APs / 200 users";
    x_label = "link-rate model";
    y_label = "load / users / rounds";
    points = List.map point phy_models;
  }

(** {1 Driver registry} — every figure driver by id, shared by the bench
    harness and the [wlan-mcast figures] subcommand so the two front ends
    cannot drift apart. *)

let drivers : (string * (?cfg:config -> unit -> Series.figure)) list =
  [
    ("fig9a", fig9a);
    ("fig9b", fig9b);
    ("fig9c", fig9c);
    ("fig10a", fig10a);
    ("fig10b", fig10b);
    ("fig10c", fig10c);
    ("fig11", fig11);
    ("fig12a", fig12a);
    ("fig12b", fig12b);
    ("fig12c", fig12c);
    ("ablate-rate", ablate_rate);
    ("ablate-bstar", ablate_bstar);
    ("ablate-sched", ablate_sched);
    ("ablate-bla-mode", ablate_bla_mode);
    ("ablate-mla-alg", ablate_mla_alg);
    ("ext-popularity", ext_popularity);
    ("ext-interference", ext_interference);
    ("ext-dual", ext_dual);
    ("ext-loss", ext_loss);
    ("ext-mobility", ext_mobility);
    ("ext-power", ext_power);
    ("ext-standards", ext_standards);
    ("ext-churn", ext_churn);
    ("ablate-phy", ablate_phy);
  ]
