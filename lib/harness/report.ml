(** Text rendering of experiment figures: one table per figure, a column
    per series, mean with (min..max) range per cell — the same rows/series
    the paper plots. *)

let hr ppf n = Fmt.pf ppf "%s@." (String.make n '-')

let pp_figure ppf (fig : Series.figure) =
  Fmt.pf ppf "@.== %s: %s@." fig.Series.id fig.Series.title;
  let names = Series.series_names fig in
  let xw = Int.max 12 (String.length fig.Series.x_label + 2) in
  let width = 26 in
  let total = xw + (width * List.length names) in
  hr ppf total;
  Fmt.pf ppf "%-*s" xw fig.Series.x_label;
  List.iter (fun n -> Fmt.pf ppf "%-*s" width n) names;
  Fmt.pf ppf "@.";
  hr ppf total;
  List.iter
    (fun (p : Series.point) ->
      Fmt.pf ppf "%-*g" xw p.Series.x;
      List.iter
        (fun n ->
          match List.assoc_opt n p.Series.values with
          | Some s ->
              Fmt.pf ppf "%-*s" width
                (Fmt.str "%.4g (%.4g..%.4g)" s.Stats.mean s.Stats.min
                   s.Stats.max)
          | None -> Fmt.pf ppf "%-*s" width "-")
        names;
      Fmt.pf ppf "@.")
    fig.Series.points;
  hr ppf total

let pp_table1 ppf entries =
  Fmt.pf ppf "@.== table1: 802.11a transmission rate vs distance threshold@.";
  Fmt.pf ppf "%-14s" "Rate (Mbps)";
  List.iter (fun (r, _) -> Fmt.pf ppf "%-6g" r) entries;
  Fmt.pf ppf "@.%-14s" "Distance (m)";
  List.iter (fun (_, d) -> Fmt.pf ppf "%-6g" d) entries;
  Fmt.pf ppf "@."

let pp_headline ppf (h : Experiments.headline) =
  Fmt.pf ppf
    "@.== headline: paper's abstract claims, recomputed@.\
     satisfied users, MNU vs SSA at budget 0.04:  +%.1f%%  (paper: +36.9%%)@.\
     max AP load, BLA vs SSA at 400 users:        -%.1f%%  (paper: -52.9%%)@.\
     total AP load, MLA vs SSA at 400 users:      -%.1f%%  (paper: -31.1%%)@."
    h.Experiments.mnu_user_gain_pct h.Experiments.bla_max_load_reduction_pct
    h.Experiments.mla_total_load_reduction_pct

(** CSV rendering of a figure: header [x,<s> mean,<s> min,<s> max,...],
    one row per point, empty cells for missing series. *)
let to_csv (fig : Series.figure) =
  let names = Series.series_names fig in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf fig.Series.x_label;
  List.iter
    (fun n ->
      Buffer.add_string buf
        (Fmt.str ",%s mean,%s min,%s max" n n n))
    names;
  Buffer.add_char buf '\n';
  List.iter
    (fun (p : Series.point) ->
      Buffer.add_string buf (Fmt.str "%g" p.Series.x);
      List.iter
        (fun n ->
          match List.assoc_opt n p.Series.values with
          | Some s ->
              Buffer.add_string buf
                (Fmt.str ",%g,%g,%g" s.Stats.mean s.Stats.min s.Stats.max)
          | None -> Buffer.add_string buf ",,,")
        names;
      Buffer.add_char buf '\n')
    fig.Series.points;
  Buffer.contents buf
