(* Fixed-size domain pool. Workers are spawned once and park on a
   condition variable between batches; a batch is an array of erased
   [unit -> unit] tasks drained through one shared atomic cursor, so an
   idle domain "steals" the next unclaimed task no matter who submitted
   it. The caller participates in the drain, which is why [jobs] counts
   the calling domain and a [jobs = 1] pool spawns nothing. *)

type batch = {
  gen : int;  (* batch sequence number, so parked workers can tell a
                 fresh batch from the one they just finished *)
  tasks : (unit -> unit) array;
  next : int Atomic.t;  (* shared cursor: index of the next unclaimed task *)
  completed : int Atomic.t;
}

type t = {
  jobs : int;
  mutable workers : unit Domain.t list;
  m : Mutex.t;
  work_ready : Condition.t;  (* new batch posted, or shutdown *)
  batch_done : Condition.t;  (* last task of the current batch finished *)
  mutable current : batch option;
  mutable next_gen : int;
  mutable stopped : bool;
}

let jobs t = t.jobs
let domain_count t = List.length t.workers
let default_jobs () = Domain.recommended_domain_count ()

(* Tasks never raise (run wraps them), so a drain cannot abandon the
   cursor mid-batch. *)
let drain t b =
  let n = Array.length b.tasks in
  let rec loop () =
    let i = Atomic.fetch_and_add b.next 1 in
    if i < n then begin
      b.tasks.(i) ();
      if Atomic.fetch_and_add b.completed 1 = n - 1 then begin
        Mutex.lock t.m;
        Condition.broadcast t.batch_done;
        Mutex.unlock t.m
      end;
      loop ()
    end
  in
  loop ()

let worker t =
  let seen = ref 0 in
  let rec park () =
    Mutex.lock t.m;
    while
      (not t.stopped)
      && (match t.current with Some b -> b.gen = !seen | None -> true)
    do
      Condition.wait t.work_ready t.m
    done;
    if t.stopped then Mutex.unlock t.m
    else begin
      let b = Option.get t.current in
      seen := b.gen;
      Mutex.unlock t.m;
      drain t b;
      park ()
    end
  in
  park ()

let create ~jobs =
  if jobs < 1 then invalid_arg "Pool.create: jobs must be >= 1";
  let t =
    {
      jobs;
      workers = [];
      m = Mutex.create ();
      work_ready = Condition.create ();
      batch_done = Condition.create ();
      current = None;
      next_gen = 0;
      stopped = false;
    }
  in
  (* The pool's own control plane: workers must share [t] by design,
     and every mutable field of it is only ever touched under [t.m] (or
     is the batch's atomic cursor). *)
  (* lint: allow shared-mutable-escape *)
  t.workers <- List.init (jobs - 1) (fun _ -> Domain.spawn (fun () -> worker t));
  t

let shutdown t =
  Mutex.lock t.m;
  let ws = t.workers in
  t.stopped <- true;
  t.workers <- [];
  Condition.broadcast t.work_ready;
  Mutex.unlock t.m;
  List.iter Domain.join ws

let with_pool ~jobs f =
  let t = create ~jobs in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

type 'a outcome = Ok of 'a | Exn of exn * Printexc.raw_backtrace

(* Deterministic event counters (DESIGN.md §4.9), recorded on the
   submission side: which domain executes a task is scheduling noise, but
   what gets submitted is a pure function of the caller's inputs. *)
let c_batches = Wlan_obs.Counters.make "pool.batches"
let c_tasks = Wlan_obs.Counters.make "pool.tasks"

let run t fs =
  if t.stopped then invalid_arg "Pool.run: pool is shut down";
  Wlan_obs.Counters.incr c_batches;
  Wlan_obs.Counters.add c_tasks (List.length fs);
  match fs with
  | [] -> []
  | fs when t.jobs = 1 || List.length fs = 1 ->
      (* in-process: an exception from job i propagates before job i+1
         starts, which is exactly "first failing job in submission
         order" *)
      List.map (fun f -> f ()) fs
  | fs ->
      let fs = Array.of_list fs in
      let n = Array.length fs in
      let results = Array.make n None in
      let tasks =
        Array.mapi
          (fun i f () ->
            let r =
              match f () with
              | v -> Ok v
              | exception e -> Exn (e, Printexc.get_raw_backtrace ())
            in
            results.(i) <- Some r)
          fs
      in
      Mutex.lock t.m;
      t.next_gen <- t.next_gen + 1;
      let b =
        {
          gen = t.next_gen;
          tasks;
          next = Atomic.make 0;
          completed = Atomic.make 0;
        }
      in
      t.current <- Some b;
      Condition.broadcast t.work_ready;
      Mutex.unlock t.m;
      drain t b;
      Mutex.lock t.m;
      while Atomic.get b.completed < n do
        Condition.wait t.batch_done t.m
      done;
      t.current <- None;
      Mutex.unlock t.m;
      Array.iter
        (function
          | Some (Exn (e, bt)) -> Printexc.raise_with_backtrace e bt
          | _ -> ())
        results;
      Array.to_list results
      |> List.map (function
           | Some (Ok v) -> v
           | _ -> assert false (* every task completed without Exn *))
