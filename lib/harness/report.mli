(** Text rendering of experiment figures: one table per figure, one column
    per series, mean (min..max) per cell — the same rows/series the paper
    plots. *)

val pp_figure : Format.formatter -> Series.figure -> unit
val pp_table1 : Format.formatter -> (float * float) list -> unit
val pp_headline : Format.formatter -> Experiments.headline -> unit

(** CSV rendering: header [x,<series> mean,<series> min,<series> max,...],
    one row per point. *)
val to_csv : Series.figure -> string
