(** Structured experiment results: a figure is a list of x-axis points,
    each carrying one {!Stats.summary} per named series (algorithm). *)

type point = { x : float; values : (string * Stats.summary) list }

type figure = {
  id : string;  (** e.g. "fig9a" *)
  title : string;
  x_label : string;
  y_label : string;
  points : point list;
}

(** All series names, in order of first appearance across the points
    (points need not carry identical series — e.g. per-mode ablations). *)
let series_names fig =
  List.fold_left
    (fun acc p ->
      List.fold_left
        (fun acc (name, _) -> if List.mem name acc then acc else acc @ [ name ])
        acc p.values)
    [] fig.points

(** Mean of series [name] at the largest x (the usual headline point). *)
let last_mean fig name =
  match List.rev fig.points with
  | [] -> None
  | p :: _ ->
      Option.map (fun (s : Stats.summary) -> s.Stats.mean)
        (List.assoc_opt name p.values)

(** Mean of series [name] at a given x. *)
let mean_at fig name x =
  List.find_opt (fun p -> Float.abs (p.x -. x) < 1e-9) fig.points
  |> Fun.flip Option.bind (fun p ->
         Option.map (fun (s : Stats.summary) -> s.Stats.mean)
           (List.assoc_opt name p.values))
