(** Deterministic JSON/CSV rendering of churn disruption metrics.

    Pure functions of the runs: floats print with [%.17g], steps
    chronological, runs in caller order, and no wall-clock or job-count
    fields — the same replay renders byte-identical output at every
    [--jobs] value (the CI churn-smoke diff relies on this). Renders
    strings only; file IO belongs to the binary. *)

open Wlan_sim

type run = {
  label : string;  (** e.g. ["mnu"] — names the algorithm variant *)
  objective : string;
  mode : string;  (** ["sequential"] or ["simultaneous"] *)
  outcome : Churn.outcome;
}

val schema : string

(** The full JSON document for the runs. Non-finite floats (the
    disabled-baseline [nan]s) render as [null]. *)
val json : seed:int -> run list -> string

val csv_header : string

(** One row per step per run. Fields are RFC-4180 quoted: a label
    containing a comma, quote or line break is wrapped in double quotes
    with embedded quotes doubled, so hostile labels cannot corrupt the
    column layout. *)
val csv : run list -> string

(** RFC-4180 field quoting of one value (identity on tame strings). *)
val csv_escape : string -> string

(** Parse RFC-4180 CSV text into rows of fields (inverse of {!csv}'s
    framing). Raises [Invalid_argument] on an unterminated quoted
    field. *)
val csv_parse : string -> string list list
