(** Aggregation over random scenarios: the paper reports min/avg/max over
    40 scenarios for every figure point. *)

type summary = { mean : float; min : float; max : float; n : int }

(** @raise Invalid_argument on the empty sample. *)
val summarize : float list -> summary

(** Percent improvement when lower is better: [(a - b) / a * 100]. *)
val pct_reduction : baseline:float -> improved:float -> float

(** Percent improvement when higher is better: [(b - a) / a * 100]. *)
val pct_gain : baseline:float -> improved:float -> float

val pp_summary : Format.formatter -> summary -> unit
