type key = string * Experiments.config

type t = {
  tbl : (key, Series.figure) Hashtbl.t;
  mutable hits : int;
  mutable misses : int;
}

let create () = { tbl = Hashtbl.create 16; hits = 0; misses = 0 }

let get t ~cfg ~id compute =
  let key = (id, cfg) in
  match Hashtbl.find_opt t.tbl key with
  | Some f ->
      t.hits <- t.hits + 1;
      f
  | None ->
      t.misses <- t.misses + 1;
      let f = compute () in
      Hashtbl.replace t.tbl key f;
      f

let hits t = t.hits
let misses t = t.misses
