(** Churn-script → serve-event expansion (see the interface). *)

open Wlan_model

type error = Non_monotone of { index : int; prev : float; time : float }

let error_message = function
  | Non_monotone { index; prev; time } ->
      Printf.sprintf
        "event %d at t=%.17g precedes t=%.17g: serve events must be \
         nondecreasing in time (Churn_script.make sorts; raw event lists \
         are taken as-is and refused when out of order)"
        index time prev

let expand_event time = function
  | Churn_script.Join { user } ->
      [ Protocol.Event { time; event = Arrive { user } } ]
  | Churn_script.Leave { user } ->
      [ Protocol.Event { time; event = Depart { user } } ]
  | Churn_script.Ap_fail { ap } ->
      [ Protocol.Event { time; event = Ap_fail { ap } } ]
  | Churn_script.Ap_recover { ap } ->
      [ Protocol.Event { time; event = Ap_recover { ap } } ]
  | Churn_script.Drift { user; steps } ->
      [ Protocol.Event { time; event = Drift { user; steps } } ]
  | Churn_script.Burst { users } ->
      List.map
        (fun user -> Protocol.Event { time; event = Protocol.Arrive { user } })
        users

let inputs_of_events timed =
  let rec go acc index prev = function
    | [] -> Ok (List.concat (List.rev acc))
    | { Churn_script.time; event } :: rest ->
        if time < prev then Error (Non_monotone { index; prev; time })
        else go (expand_event time event :: acc) (index + 1) time rest
  in
  go [] 0 0. timed

let inputs_of_script script =
  inputs_of_events (Churn_script.events script)

let frames_of_script ?(trailer = true) script =
  match inputs_of_script script with
  | Error e -> Error e
  | Ok inputs ->
      let buf = Buffer.create 4096 in
      let add i = Protocol.frame_into buf (Protocol.render_input i) in
      add (Protocol.Hello { version = Protocol.version });
      List.iter add inputs;
      if trailer then begin
        add Protocol.Flush;
        add Protocol.Snapshot;
        add Protocol.Bye
      end;
      Ok (Buffer.contents buf)
