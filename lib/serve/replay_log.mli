(** The [wlan-mcast-evlog 1] deterministic replay log: an event-sourced
    write-ahead record of one serve session.

    A log is the header (everything needed to re-create the server —
    objective, settle mode, round cap, queue limit, drift tier ladder
    and the scenario digest) followed by one line per accepted input
    ([ev <canonical payload>]) and one line per emitted decision
    ([out <payload>]). [ev] lines {e drive} state on replay; [out]
    lines are derived output, regenerated and compared. Because the
    server is a pure function of (scenario, header, event sequence),
    feeding the [ev] lines of any line-boundary prefix reproduces the
    exact state the live server had at that point — the crash-recovery
    story — and replaying a complete log regenerates it byte-for-byte.

    Rejected inputs (frame garbage, out-of-range indices, non-monotone
    times) change nothing and are deliberately {e not} logged. *)

val version : int
val magic : string

type header = {
  objective : Mcast_core.Distributed.objective;
  obj_label : string;  (** ["mnu"], ["bla"] or ["mla"] *)
  mode : [ `Sequential | `Simultaneous ];
  max_rounds : int;
  queue_limit : int;  (** pending events that force a settle *)
  tiers : float list;  (** drift rate ladder, descending *)
  scenario_digest : string option;
      (** hex digest of the scenario text the session served *)
}

(** [mnu]/[mla] ↦ [Min_total_load], [bla] ↦ [Min_load_vector].
    @raise Invalid_argument on any other label. *)
val objective_of_label : string -> Mcast_core.Distributed.objective

val render_header : header -> string

type entry = Ev of string | Out of string

(** Raised by {!parse} on malformed logs (bad magic/version, unknown
    directives, malformed header fields). *)
exception Parse_error of string

(** Parse a log, possibly truncated mid-write: an unterminated final
    line is dropped (that is the crash case), terminated lines must
    parse. *)
val parse : string -> header * entry list

(** The [ev] payloads in order — what {!Server.replay} feeds. *)
val events : entry list -> string list
