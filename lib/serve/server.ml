(** The serve daemon's core state machine (see the interface for the
    batching and determinism contracts). Channel-agnostic: callers feed
    {!Protocol.input}s (or raw frame payloads) and frame the returned
    outputs to the peer; the replay log accumulates in memory. *)

open Wlan_model
open Mcast_core

let src = Logs.Src.create "serve" ~doc:"Association-control daemon"

module Log = (val Logs.src_log src : Logs.LOG)

(* Deterministic serving counters (DESIGN.md §4.9): a session is a pure
   function of (problem, header, input sequence), so so are these. *)
let c_events = Wlan_obs.Counters.make "serve.events"
let c_batches = Wlan_obs.Counters.make "serve.batches"
let c_deltas = Wlan_obs.Counters.make "serve.deltas"
let c_queue_peak = Wlan_obs.Counters.make "serve.queue_peak"
let c_errors = Wlan_obs.Counters.make "serve.errors"
let c_forced = Wlan_obs.Counters.make "serve.forced_settles"
let c_snapshots = Wlan_obs.Counters.make "serve.snapshots"

type fanout = (unit -> float * float) list -> (float * float) list

let sequential_fanout tasks = List.map (fun task -> task ()) tasks

type stats = {
  events : int;
  batches : int;
  emitted_deltas : int;
  errors : int;
  queue_peak : int;
  forced_settles : int;
}

type t = {
  cfg : Replay_log.header;
  p : Problem.t;  (** the instance served (read-only reference) *)
  net : Distributed.Online.t;
  fanout : fanout;
  log : Buffer.t;
  mutable stage : [ `Await_hello | `Open | `Closed ];
  mutable has_batch : bool;
  mutable batch_time : float;
  mutable pending : int;  (** events applied but not yet settled *)
  mutable pending_interrupted : int;
  mutable last_time : float;  (** time of the last settled batch *)
  mutable st : stats;
}

let validate_config (h : Replay_log.header) =
  if h.max_rounds < 1 then invalid_arg "Server.create: max_rounds < 1";
  if h.queue_limit < 1 then invalid_arg "Server.create: queue_limit < 1";
  if Replay_log.objective_of_label h.obj_label <> h.objective then
    invalid_arg "Server.create: objective does not match obj_label";
  let rec check = function
    | [] | [ _ ] -> ()
    | a :: (b :: _ as rest) ->
        if not (a >= b) then
          invalid_arg "Server.create: tiers must be sorted descending";
        check rest
  in
  List.iter
    (fun r ->
      if not (Float.is_finite r) || r <= 0. then
        invalid_arg "Server.create: tiers must be finite and positive")
    h.tiers;
  check h.tiers

let create ?(fanout = sequential_fanout) ~config p =
  validate_config config;
  let _, n_users = Problem.dims p in
  (* a daemon's network starts empty: users exist only once they arrive *)
  let net =
    Distributed.Online.create ~present:(Array.make n_users false)
      ~objective:config.Replay_log.objective p
  in
  let log = Buffer.create 4096 in
  Buffer.add_string log (Replay_log.render_header config);
  {
    cfg = config;
    p;
    net;
    fanout;
    log;
    stage = `Await_hello;
    has_batch = false;
    batch_time = 0.;
    pending = 0;
    pending_interrupted = 0;
    last_time = 0.;
    st =
      {
        events = 0;
        batches = 0;
        emitted_deltas = 0;
        errors = 0;
        queue_peak = 0;
        forced_settles = 0;
      };
  }

let config t = t.cfg
let closed t = t.stage = `Closed
let log_contents t = Buffer.contents t.log
let stats t = t.st

let log_ev t payload =
  Buffer.add_string t.log "ev ";
  Buffer.add_string t.log payload;
  Buffer.add_char t.log '\n'

let log_outs t outs =
  List.iter
    (fun o ->
      Buffer.add_string t.log "out ";
      Buffer.add_string t.log (Protocol.render_output o);
      Buffer.add_char t.log '\n')
    outs

let refuse t code detail =
  Wlan_obs.Counters.incr c_errors;
  t.st <- { t.st with errors = t.st.errors + 1 };
  Log.debug (fun m -> m "refused: %s %s" (Protocol.error_code_name code) detail);
  [ Protocol.Error { code; detail } ]

(* Settle the pending batch: one atomic [Online.settle], the batch's
   association deltas (ascending user) and one summary line. *)
let settle_now t ~forced =
  if t.pending = 0 then begin
    t.has_batch <- false;
    []
  end
  else begin
    Wlan_obs.Counters.incr c_batches;
    if forced then Wlan_obs.Counters.incr c_forced;
    let stats =
      Distributed.Online.settle ~max_rounds:t.cfg.max_rounds
        ~mode:t.cfg.mode t.net
    in
    let time = t.batch_time in
    let deltas =
      List.map
        (fun (user, from_ap, to_ap) ->
          Protocol.Delta { time; user; from_ap; to_ap })
        stats.Distributed.Online.changed
    in
    let n_deltas = List.length deltas in
    Wlan_obs.Counters.add c_deltas n_deltas;
    let summary =
      Protocol.Settled
        {
          time;
          events = t.pending;
          interrupted = t.pending_interrupted;
          rounds = stats.rounds;
          moves = stats.moves;
          reassociated = stats.reassociated;
          deltas = n_deltas;
          forced;
          converged = stats.converged;
          oscillated = stats.oscillated;
          total_load = Distributed.Online.total_load t.net;
          max_load = Distributed.Online.max_load t.net;
        }
    in
    let outs = deltas @ [ summary ] in
    log_outs t outs;
    t.st <-
      {
        t.st with
        batches = t.st.batches + 1;
        emitted_deltas = t.st.emitted_deltas + n_deltas;
        forced_settles = (t.st.forced_settles + if forced then 1 else 0);
      };
    t.last_time <- time;
    t.pending <- 0;
    t.pending_interrupted <- 0;
    t.has_batch <- false;
    outs
  end

let state_digest t =
  let net = t.net in
  let n_aps, n_users = Problem.dims t.p in
  let buf = Buffer.create 1024 in
  let assoc = Distributed.Online.assoc net in
  for u = 0 to n_users - 1 do
    Buffer.add_string buf (string_of_int assoc.(u));
    Buffer.add_char buf ';'
  done;
  for u = 0 to n_users - 1 do
    Buffer.add_char buf
      (if Distributed.Online.is_present net u then 'p' else '.')
  done;
  for a = 0 to n_aps - 1 do
    Buffer.add_char buf (if Distributed.Online.ap_alive net a then 'a' else '.')
  done;
  Array.iter
    (fun l -> Buffer.add_string buf (Printf.sprintf "%.17g;" l))
    (Distributed.Online.loads net);
  (* drifted link rates: the working copy [set_rate] mutates *)
  for a = 0 to n_aps - 1 do
    for u = 0 to n_users - 1 do
      Buffer.add_string buf
        (Printf.sprintf "%.17g;" (Distributed.Online.link_rate net ~ap:a ~user:u))
    done
  done;
  Buffer.add_string buf
    (Printf.sprintf "|batch:%b@%.17g+%d/%d|dirty:%d" t.has_batch t.batch_time
       t.pending t.pending_interrupted
       (Distributed.Online.dirty_count net));
  Digest.to_hex (Digest.string (Buffer.contents buf))

(* Snapshot baselines: a fresh sequential solve of the effective static
   instance and the strongest-signal association, as independent fanout
   tasks — results merge in submission order, so the reply is
   byte-identical at any pool size. *)
let snapshot_state t =
  Wlan_obs.Counters.incr c_snapshots;
  let eff = Distributed.Online.effective_problem t.net in
  let objective = t.cfg.objective in
  let fresh () =
    let o =
      Distributed.run ~scheduler:Distributed.Sequential ~objective eff
    in
    (Loads.total_load eff o.Distributed.assoc, Loads.max_load eff o.assoc)
  in
  let ssa () =
    let s = Ssa.run eff in
    (Loads.total_load eff s.Solution.assoc, Loads.max_load eff s.assoc)
  in
  match t.fanout [ fresh; ssa ] with
  | [ (fresh_total, fresh_max); (ssa_total, ssa_max) ] ->
      let _, n_users = Problem.dims t.p in
      let present = ref 0 in
      for u = 0 to n_users - 1 do
        if Distributed.Online.is_present t.net u then incr present
      done;
      Protocol.State
        {
          time = t.last_time;
          present = !present;
          served = Association.served_count (Distributed.Online.assoc t.net);
          total_load = Distributed.Online.total_load t.net;
          max_load = Distributed.Online.max_load t.net;
          fresh_total;
          fresh_max;
          ssa_total;
          ssa_max;
          digest = state_digest t;
        }
  | _ -> assert false (* fanout returns results in submission order *)

let chk_user t u k =
  let _, n_users = Problem.dims t.p in
  if u < 0 || u >= n_users then
    refuse t Protocol.Out_of_range
      (Printf.sprintf "user %d outside 0..%d" u (n_users - 1))
  else k ()

let chk_ap t a k =
  let n_aps, _ = Problem.dims t.p in
  if a < 0 || a >= n_aps then
    refuse t Protocol.Out_of_range
      (Printf.sprintf "ap %d outside 0..%d" a (n_aps - 1))
  else k ()

(* [Sparse.set_rate] cannot grow a link that was never in range at
   build time; refuse such growth up front (the signal plane is
   structural: out-of-slot pairs answer [neg_infinity]) so acceptance
   is decided before anything is logged or applied. *)
let chk_growable t ~user ~ap rate k =
  if
    rate > 0. && Problem.is_sparse t.p
    && not (Float.is_finite (Problem.signal t.p ~ap ~user))
  then
    refuse t Protocol.Out_of_range
      (Printf.sprintf "link a%d-u%d never in range of the sparse instance"
         ap user)
  else k ()

let validate_event t event k =
  match event with
  | Protocol.Arrive { user } | Protocol.Depart { user } ->
      chk_user t user k
  | Protocol.Ap_fail { ap } | Protocol.Ap_recover { ap } -> chk_ap t ap k
  | Protocol.Set_rate { user; ap; rate } ->
      chk_user t user @@ fun () ->
      chk_ap t ap @@ fun () -> chk_growable t ~user ~ap rate k
  | Protocol.Drift { user; steps = _ } -> chk_user t user k

(* Apply one accepted event through [Online]'s deltas; returns the
   sessions forcibly interrupted (detached members, serving links lost
   to drift) — the disruption the batch summary reports. *)
let apply_event t event =
  match event with
  | Protocol.Arrive { user } ->
      ignore (Distributed.Online.arrive t.net ~user);
      0
  | Protocol.Depart { user } ->
      ignore (Distributed.Online.depart t.net ~user);
      0
  | Protocol.Ap_fail { ap } -> (
      match Distributed.Online.fail_ap t.net ~ap with
      | `Dead -> 0
      | `Failed detached -> List.length detached)
  | Protocol.Ap_recover { ap } ->
      ignore (Distributed.Online.recover_ap t.net ~ap);
      0
  | Protocol.Set_rate { user; ap; rate } -> (
      match Distributed.Online.set_rate t.net ~user ~ap rate with
      | `Detached -> 1
      | `Changed | `Unchanged -> 0)
  | Protocol.Drift { user; steps } ->
      let n_aps, _ = Problem.dims t.p in
      let interrupted = ref 0 in
      for ap = 0 to n_aps - 1 do
        let old = Distributed.Online.link_rate t.net ~ap ~user in
        if old > 0. then begin
          let r = Churn_script.drifted_rate ~tiers:t.cfg.tiers old steps in
          match Distributed.Online.set_rate t.net ~user ~ap r with
          | `Detached -> incr interrupted
          | `Changed | `Unchanged -> ()
        end
      done;
      !interrupted

let handle_event t ~time event =
  validate_event t event @@ fun () ->
  let floor = if t.has_batch then t.batch_time else t.last_time in
  if time < floor then
    refuse t Protocol.Non_monotone
      (Printf.sprintf "t=%.17g before t=%.17g" time floor)
  else begin
    (* accepted: close the previous batch if the clock advanced, log,
       apply, and settle under backpressure *)
    let pre =
      if t.has_batch && time > t.batch_time then settle_now t ~forced:false
      else []
    in
    if not t.has_batch then begin
      t.has_batch <- true;
      t.batch_time <- time
    end;
    log_ev t (Protocol.render_input (Protocol.Event { time; event }));
    Wlan_obs.Counters.incr c_events;
    let interrupted = apply_event t event in
    t.pending <- t.pending + 1;
    t.pending_interrupted <- t.pending_interrupted + interrupted;
    if t.pending > t.st.queue_peak then begin
      t.st <- { t.st with queue_peak = t.pending };
      Wlan_obs.Counters.record_max c_queue_peak t.pending
    end;
    t.st <- { t.st with events = t.st.events + 1 };
    let post =
      if t.pending >= t.cfg.queue_limit then settle_now t ~forced:true
      else []
    in
    pre @ post
  end

let handle_input t input =
  match (t.stage, input) with
  | `Closed, _ -> refuse t Protocol.Closed "session ended by bye"
  | `Await_hello, Protocol.Hello { version } ->
      if version <> Protocol.version then
        refuse t Protocol.Bad_hello
          (Printf.sprintf "version %d unsupported (this is %s %d)" version
             Protocol.magic Protocol.version)
      else begin
        t.stage <- `Open;
        [ Protocol.Ok_hello { version } ]
      end
  | `Await_hello, _ ->
      refuse t Protocol.Expected_hello "first frame must be the handshake"
  | `Open, Protocol.Hello _ -> refuse t Protocol.Bad_hello "duplicate hello"
  | `Open, Protocol.Event { time; event } -> handle_event t ~time event
  | `Open, Protocol.Flush ->
      log_ev t (Protocol.render_input Protocol.Flush);
      settle_now t ~forced:false
  | `Open, Protocol.Snapshot ->
      log_ev t (Protocol.render_input Protocol.Snapshot);
      let outs = settle_now t ~forced:false in
      let state = snapshot_state t in
      log_outs t [ state ];
      outs @ [ state ]
  | `Open, Protocol.Bye ->
      log_ev t (Protocol.render_input Protocol.Bye);
      let outs = settle_now t ~forced:false in
      t.stage <- `Closed;
      outs

let handle_frame t payload =
  match Protocol.parse_input payload with
  | Ok input -> handle_input t input
  | Error (code, detail) -> refuse t code detail

(* End of stream without [bye]: behave like a trailing [flush] so the
   log replays to the same quiescent state, then stop accepting. *)
let finish t =
  match t.stage with
  | `Closed -> []
  | `Await_hello ->
      t.stage <- `Closed;
      []
  | `Open ->
      let outs = handle_input t Protocol.Flush in
      t.stage <- `Closed;
      outs

let replay ?fanout ~config ~events p =
  let t = create ?fanout ~config p in
  let feed payload =
    match Protocol.parse_input payload with
    | Error (code, detail) ->
        invalid_arg
          (Printf.sprintf "Server.replay: corrupt log event %S (%s %s)"
             payload
             (Protocol.error_code_name code)
             detail)
    | Ok input -> (
        let outs = handle_input t input in
        match
          List.find_opt
            (function Protocol.Error _ -> true | _ -> false)
            outs
        with
        | Some (Protocol.Error { code; detail }) ->
            invalid_arg
              (Printf.sprintf "Server.replay: log event %S refused (%s %s)"
                 payload
                 (Protocol.error_code_name code)
                 detail)
        | _ -> ())
  in
  feed (Protocol.render_input (Protocol.Hello { version = Protocol.version }));
  List.iter feed events;
  t
