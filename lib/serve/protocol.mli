(** The [wlan-mcast-ev 1] wire protocol of the serve daemon: versioned,
    length-prefixed line frames carrying network events in and
    association decisions out.

    {2 Framing}

    Every message travels as one frame:
    [<len> <payload>\n] — the payload's byte length in decimal, one
    space, the payload (which must not contain a newline), a newline.
    The terminating newline is {e not} counted in [len]. The redundancy
    (explicit length {e and} line terminator) is what lets the decoder
    detect truncation and resynchronize after garbage: a frame whose
    declared length does not land on a newline is corrupt, and recovery
    skips to the next newline.

    {2 Payloads}

    In ({!input}): [hello wlan-mcast-ev 1] (required first frame), then
    timestamped events [at <t> arrive <u>], [at <t> depart <u>],
    [at <t> ap-fail <a>], [at <t> ap-recover <a>],
    [at <t> set-rate <u> <a> <r>], [at <t> drift <u> <steps>], and the
    control messages [flush], [snapshot], [bye].

    Out ({!output}): [ok wlan-mcast-ev 1], per-user association deltas
    [delta <t> <user> <from> <to>] ([-1] = unserved), per-batch
    quiescence summaries [settled <t> events <n> ...], snapshot replies
    [state <t> ...] and structured [error <code> <detail>] replies.

    Floats print as [%.17g] (the {!Wlan_model.Scenario_io} convention),
    so every timestamp and rate round-trips bit-exactly. *)

val version : int
val magic : string

(** {1 Messages} *)

type event =
  | Arrive of { user : int }
  | Depart of { user : int }
  | Ap_fail of { ap : int }
  | Ap_recover of { ap : int }
  | Set_rate of { user : int; ap : int; rate : float }
  | Drift of { user : int; steps : int }

type input =
  | Hello of { version : int }
  | Event of { time : float; event : event }
  | Flush  (** settle the pending batch now *)
  | Snapshot  (** settle, then report network state + fresh baselines *)
  | Bye  (** settle and close the session *)

type error_code =
  | Bad_frame  (** malformed length prefix or missing terminator *)
  | Oversize  (** declared length beyond the decoder's limit *)
  | Truncated  (** the stream ended inside a frame *)
  | Bad_input  (** well-framed but unparseable payload *)
  | Bad_hello  (** wrong magic or protocol version in the handshake *)
  | Expected_hello  (** an event before the handshake *)
  | Out_of_range  (** user/AP index beyond the scenario's topology *)
  | Non_monotone  (** timestamp earlier than the current batch *)
  | Closed  (** input after [bye] *)

(** Kebab-case wire name, e.g. [non-monotone]. *)
val error_code_name : error_code -> string

type output =
  | Ok_hello of { version : int }
  | Delta of { time : float; user : int; from_ap : int; to_ap : int }
      (** one user's serving AP changed while settling; [-1] = none *)
  | Settled of {
      time : float;
      events : int;  (** script events applied in this batch *)
      interrupted : int;  (** sessions forcibly cut by the deltas *)
      rounds : int;
      moves : int;
      reassociated : int;
      deltas : int;  (** [Delta] frames emitted just before this *)
      forced : bool;  (** settled by backpressure, not time/flush *)
      converged : bool;
      oscillated : bool;
      total_load : float;
      max_load : float;
    }
  | State of {
      time : float;
      present : int;
      served : int;
      total_load : float;
      max_load : float;
      fresh_total : float;  (** fresh sequential solve of the instance *)
      fresh_max : float;
      ssa_total : float;  (** strongest-signal baseline *)
      ssa_max : float;
      digest : string;  (** {!Server.state_digest} of the live state *)
    }
  | Error of { code : error_code; detail : string }

(** {1 Rendering and parsing} *)

(** Canonical payload line (no frame, no newline). *)
val render_input : input -> string

(** Parse one payload line. Total: never raises; unparseable payloads
    come back as [Error (Bad_input | Bad_hello, detail)]. Validates that
    times are finite and non-negative and rates finite and
    non-negative. *)
val parse_input : string -> (input, error_code * string) result

val render_output : output -> string

(** Strip newlines and control bytes from echoed wire garbage so error
    details stay single-line and printable. *)
val sanitize : string -> string

(** [frame payload] = ["<len> <payload>\n"].
    @raise Invalid_argument if [payload] contains a newline. *)
val frame : string -> string

val frame_into : Buffer.t -> string -> unit

(** {1 Incremental decoder}

    Feed arbitrary byte chunks, pull frames. Total: no input sequence
    raises. After a corrupt frame the decoder skips to the next newline
    and resumes, so one bad frame costs at most one message. *)
module Decoder : sig
  type t

  type item =
    | Frame of string  (** a well-framed payload (not yet parsed) *)
    | Corrupt of error_code * string
        (** bad framing ([Bad_frame] or [Oversize]); the decoder has
            already resynchronized *)

  (** [max_frame] caps the declared payload length (default 65536):
      larger declarations are rejected as [Oversize] {e without}
      buffering the body. *)
  val create : ?max_frame:int -> unit -> t

  val feed : t -> string -> unit

  (** Next decoded item, [None] = need more input. *)
  val next : t -> item option

  (** Bytes buffered but not yet decoded. *)
  val pending : t -> int

  (** [true] iff all fed input has been consumed as complete frames —
      at end of stream, [false] means the final frame was truncated. *)
  val at_boundary : t -> bool
end
