(** Parsing and rendering of the [wlan-mcast-evlog 1] format (see the
    interface for the semantics). *)

open Mcast_core

let version = 1
let magic = "wlan-mcast-evlog"

type header = {
  objective : Distributed.objective;
  obj_label : string;
  mode : [ `Sequential | `Simultaneous ];
  max_rounds : int;
  queue_limit : int;
  tiers : float list;
  scenario_digest : string option;
}

let objective_of_label = function
  | "mnu" | "mla" -> Distributed.Min_total_load
  | "bla" -> Distributed.Min_load_vector
  | l -> invalid_arg (Printf.sprintf "Replay_log: unknown objective %S" l)

let mode_name = function
  | `Sequential -> "sequential"
  | `Simultaneous -> "simultaneous"

let render_header h =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "%s %d\n" magic version);
  Buffer.add_string buf (Printf.sprintf "objective %s\n" h.obj_label);
  Buffer.add_string buf (Printf.sprintf "mode %s\n" (mode_name h.mode));
  Buffer.add_string buf (Printf.sprintf "max-rounds %d\n" h.max_rounds);
  Buffer.add_string buf (Printf.sprintf "queue-limit %d\n" h.queue_limit);
  Buffer.add_string buf
    (Printf.sprintf "tiers %s\n"
       (String.concat " " (List.map (Printf.sprintf "%.17g") h.tiers)));
  (match h.scenario_digest with
  | Some d -> Buffer.add_string buf (Printf.sprintf "scenario %s\n" d)
  | None -> ());
  Buffer.contents buf

type entry = Ev of string | Out of string

exception Parse_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

(* Complete (newline-terminated) lines only: a trailing partial line is
   a torn write from a crash and is dropped, not parsed. *)
let complete_lines s =
  let rec go acc start =
    match String.index_from_opt s start '\n' with
    | None -> List.rev acc
    | Some i -> go (String.sub s start (i - start) :: acc) (i + 1)
  in
  go [] 0

let parse_int what s =
  match int_of_string_opt s with
  | Some v when v > 0 -> v
  | _ -> fail "bad %s %S" what s

let parse s =
  match complete_lines s with
  | [] -> fail "empty log"
  | first :: rest ->
      (match String.split_on_char ' ' first with
      | [ m; v ] when m = magic ->
          if int_of_string_opt v <> Some version then
            fail "unsupported %s version %S" magic v
      | _ -> fail "not a %s log: %S" magic first);
      let obj_label = ref "" in
      let mode = ref `Sequential in
      let max_rounds = ref 0 in
      let queue_limit = ref 0 in
      let tiers = ref [] in
      let scenario_digest = ref None in
      let entries = ref [] in
      let in_header = ref true in
      List.iter
        (fun line ->
          match String.index_opt line ' ' with
          | None -> fail "malformed line %S" line
          | Some i -> (
              let key = String.sub line 0 i in
              let rest =
                String.sub line (i + 1) (String.length line - i - 1)
              in
              match key with
              | "ev" ->
                  in_header := false;
                  entries := Ev rest :: !entries
              | "out" ->
                  in_header := false;
                  entries := Out rest :: !entries
              | _ when not !in_header ->
                  fail "header directive %S after entries" key
              | "objective" ->
                  ignore (objective_of_label rest);
                  obj_label := rest
              | "mode" -> (
                  match rest with
                  | "sequential" -> mode := `Sequential
                  | "simultaneous" -> mode := `Simultaneous
                  | m -> fail "bad mode %S" m)
              | "max-rounds" -> max_rounds := parse_int "max-rounds" rest
              | "queue-limit" -> queue_limit := parse_int "queue-limit" rest
              | "tiers" ->
                  tiers :=
                    List.map
                      (fun tok ->
                        match float_of_string_opt tok with
                        | Some r when Float.is_finite r && r > 0. -> r
                        | _ -> fail "bad tier %S" tok)
                      (String.split_on_char ' ' rest)
              | "scenario" -> scenario_digest := Some rest
              | _ -> fail "unknown directive %S" key))
        rest;
      if !obj_label = "" then fail "missing objective";
      if !max_rounds = 0 then fail "missing max-rounds";
      if !queue_limit = 0 then fail "missing queue-limit";
      ( {
          objective = objective_of_label !obj_label;
          obj_label = !obj_label;
          mode = !mode;
          max_rounds = !max_rounds;
          queue_limit = !queue_limit;
          tiers = !tiers;
          scenario_digest = !scenario_digest;
        },
        List.rev !entries )

let events entries =
  List.filter_map (function Ev e -> Some e | Out _ -> None) entries
