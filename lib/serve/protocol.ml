(** The [wlan-mcast-ev 1] wire codec: length-prefixed line frames, a
    total (never-raising) parser for the payload grammar, and an
    incremental decoder that survives garbage by resynchronizing on
    newlines. All floats print as [%.17g] so timestamps and rates
    round-trip bit-exactly (the {!Wlan_model.Scenario_io} convention). *)

let version = 1
let magic = "wlan-mcast-ev"

type event =
  | Arrive of { user : int }
  | Depart of { user : int }
  | Ap_fail of { ap : int }
  | Ap_recover of { ap : int }
  | Set_rate of { user : int; ap : int; rate : float }
  | Drift of { user : int; steps : int }

type input =
  | Hello of { version : int }
  | Event of { time : float; event : event }
  | Flush
  | Snapshot
  | Bye

type error_code =
  | Bad_frame
  | Oversize
  | Truncated
  | Bad_input
  | Bad_hello
  | Expected_hello
  | Out_of_range
  | Non_monotone
  | Closed

let error_code_name = function
  | Bad_frame -> "bad-frame"
  | Oversize -> "oversize"
  | Truncated -> "truncated"
  | Bad_input -> "bad-input"
  | Bad_hello -> "bad-hello"
  | Expected_hello -> "expected-hello"
  | Out_of_range -> "out-of-range"
  | Non_monotone -> "non-monotone"
  | Closed -> "closed"

type output =
  | Ok_hello of { version : int }
  | Delta of { time : float; user : int; from_ap : int; to_ap : int }
  | Settled of {
      time : float;
      events : int;
      interrupted : int;
      rounds : int;
      moves : int;
      reassociated : int;
      deltas : int;
      forced : bool;
      converged : bool;
      oscillated : bool;
      total_load : float;
      max_load : float;
    }
  | State of {
      time : float;
      present : int;
      served : int;
      total_load : float;
      max_load : float;
      fresh_total : float;
      fresh_max : float;
      ssa_total : float;
      ssa_max : float;
      digest : string;
    }
  | Error of { code : error_code; detail : string }

(* [%.17g]: enough digits that [float_of_string] recovers the exact
   bits — the same convention as the scenario/churn text formats. *)
let fl = Printf.sprintf "%.17g"

let render_event = function
  | Arrive { user } -> Printf.sprintf "arrive %d" user
  | Depart { user } -> Printf.sprintf "depart %d" user
  | Ap_fail { ap } -> Printf.sprintf "ap-fail %d" ap
  | Ap_recover { ap } -> Printf.sprintf "ap-recover %d" ap
  | Set_rate { user; ap; rate } ->
      Printf.sprintf "set-rate %d %d %s" user ap (fl rate)
  | Drift { user; steps } -> Printf.sprintf "drift %d %d" user steps

let render_input = function
  | Hello { version } -> Printf.sprintf "hello %s %d" magic version
  | Event { time; event } ->
      Printf.sprintf "at %s %s" (fl time) (render_event event)
  | Flush -> "flush"
  | Snapshot -> "snapshot"
  | Bye -> "bye"

let bool01 b = if b then "1" else "0"

let render_output = function
  | Ok_hello { version } -> Printf.sprintf "ok %s %d" magic version
  | Delta { time; user; from_ap; to_ap } ->
      Printf.sprintf "delta %s %d %d %d" (fl time) user from_ap to_ap
  | Settled
      {
        time;
        events;
        interrupted;
        rounds;
        moves;
        reassociated;
        deltas;
        forced;
        converged;
        oscillated;
        total_load;
        max_load;
      } ->
      Printf.sprintf
        "settled %s events %d interrupted %d rounds %d moves %d \
         reassociated %d deltas %d forced %s converged %s oscillated %s \
         total %s max %s"
        (fl time) events interrupted rounds moves reassociated deltas
        (bool01 forced) (bool01 converged) (bool01 oscillated)
        (fl total_load) (fl max_load)
  | State
      {
        time;
        present;
        served;
        total_load;
        max_load;
        fresh_total;
        fresh_max;
        ssa_total;
        ssa_max;
        digest;
      } ->
      Printf.sprintf
        "state %s present %d served %d total %s max %s fresh %s %s ssa %s \
         %s digest %s"
        (fl time) present served (fl total_load) (fl max_load)
        (fl fresh_total) (fl fresh_max) (fl ssa_total) (fl ssa_max) digest
  | Error { code; detail } ->
      if detail = "" then Printf.sprintf "error %s" (error_code_name code)
      else Printf.sprintf "error %s %s" (error_code_name code) detail

let sanitize s =
  String.map (fun c -> if c < ' ' || c > '~' then '?' else c) s

let clip s = if String.length s <= 40 then s else String.sub s 0 40 ^ "..."

(* {2 Payload parsing} — total; [Error (code, detail)] on anything the
   grammar does not cover. *)

let int_tok what s k =
  match int_of_string_opt s with
  | Some v -> k v
  | None -> Result.error (Bad_input, Printf.sprintf "bad %s %S" what s)

let float_tok what s k =
  match float_of_string_opt s with
  | Some v -> k v
  | None -> Result.error (Bad_input, Printf.sprintf "bad %s %S" what s)

let time_tok s k =
  float_tok "time" s @@ fun t ->
  if Float.is_finite t && t >= 0. then k t
  else Result.error (Bad_input, Printf.sprintf "bad time %S" s)

let rate_tok s k =
  float_tok "rate" s @@ fun r ->
  if Float.is_finite r && r >= 0. then k r
  else Result.error (Bad_input, Printf.sprintf "bad rate %S" s)

let parse_event time = function
  | [ "arrive"; u ] -> int_tok "user" u @@ fun user ->
      Ok (Event { time; event = Arrive { user } })
  | [ "depart"; u ] -> int_tok "user" u @@ fun user ->
      Ok (Event { time; event = Depart { user } })
  | [ "ap-fail"; a ] -> int_tok "ap" a @@ fun ap ->
      Ok (Event { time; event = Ap_fail { ap } })
  | [ "ap-recover"; a ] -> int_tok "ap" a @@ fun ap ->
      Ok (Event { time; event = Ap_recover { ap } })
  | [ "set-rate"; u; a; r ] ->
      int_tok "user" u @@ fun user ->
      int_tok "ap" a @@ fun ap ->
      rate_tok r @@ fun rate ->
      Ok (Event { time; event = Set_rate { user; ap; rate } })
  | [ "drift"; u; s ] ->
      int_tok "user" u @@ fun user ->
      int_tok "steps" s @@ fun steps ->
      Ok (Event { time; event = Drift { user; steps } })
  | toks ->
      Result.error
        ( Bad_input,
          Printf.sprintf "unknown event %s"
            (clip (sanitize (String.concat " " toks))) )

let parse_input line =
  match String.split_on_char ' ' line with
  | [ "hello"; m; v ] ->
      if m <> magic then
        Result.error (Bad_hello, Printf.sprintf "unknown magic %S" (clip (sanitize m)))
      else begin
        match int_of_string_opt v with
        | Some version -> Ok (Hello { version })
        | None ->
            Result.error (Bad_hello, Printf.sprintf "bad version %S" (clip (sanitize v)))
      end
  | "at" :: t :: rest -> time_tok t @@ fun time -> parse_event time rest
  | [ "flush" ] -> Ok Flush
  | [ "snapshot" ] -> Ok Snapshot
  | [ "bye" ] -> Ok Bye
  | _ ->
      Result.error
        (Bad_input, Printf.sprintf "unparseable %s" (clip (sanitize line)))

(* {2 Framing} *)

let frame_into buf payload =
  if String.contains payload '\n' then
    invalid_arg "Protocol.frame: payload contains a newline";
  Buffer.add_string buf (string_of_int (String.length payload));
  Buffer.add_char buf ' ';
  Buffer.add_string buf payload;
  Buffer.add_char buf '\n'

let frame payload =
  let buf = Buffer.create (String.length payload + 8) in
  frame_into buf payload;
  Buffer.contents buf

module Decoder = struct
  type item = Frame of string | Corrupt of error_code * string

  type t = {
    max_frame : int;
    mutable data : string;  (** unconsumed suffix is [pos ..] *)
    mutable pos : int;
    mutable skipping : bool;  (** discarding up to the next newline *)
  }

  let create ?(max_frame = 65536) () =
    { max_frame; data = ""; pos = 0; skipping = false }

  let pending t = String.length t.data - t.pos

  let feed t chunk =
    if pending t = 0 then begin
      t.data <- chunk;
      t.pos <- 0
    end
    else begin
      (* compact: keep only the unconsumed suffix *)
      t.data <- String.sub t.data t.pos (pending t) ^ chunk;
      t.pos <- 0
    end

  let at_boundary t = pending t = 0 && not t.skipping

  let is_digit c = c >= '0' && c <= '9'

  (* Abandon the current frame: consume through the next newline (now or
     in later chunks) and report [code]. *)
  let corrupt t code detail =
    (match String.index_from_opt t.data t.pos '\n' with
    | Some i ->
        t.pos <- i + 1;
        t.skipping <- false
    | None ->
        t.pos <- String.length t.data;
        t.skipping <- true);
    Some (Corrupt (code, detail))

  let rec next t =
    let len = String.length t.data in
    if t.skipping then
      match String.index_from_opt t.data t.pos '\n' with
      | None ->
          t.pos <- len;
          None
      | Some i ->
          t.pos <- i + 1;
          t.skipping <- false;
          next t
    else if t.pos >= len then None
    else begin
      let i = t.pos in
      let j = ref i in
      while !j < len && is_digit t.data.[!j] do incr j done;
      if !j = i then
        corrupt t Bad_frame
          (Printf.sprintf "length prefix expected, got %s"
             (clip (sanitize (String.sub t.data i (min 8 (len - i))))))
      else if !j - i > 8 then corrupt t Bad_frame "length prefix too long"
      else if !j = len then None (* digits may continue in the next chunk *)
      else if t.data.[!j] <> ' ' then
        corrupt t Bad_frame "no space after length prefix"
      else begin
        let n = int_of_string (String.sub t.data i (!j - i)) in
        if n > t.max_frame then
          corrupt t Oversize
            (Printf.sprintf "declared %d bytes, limit %d" n t.max_frame)
        else begin
          let body = !j + 1 in
          if len - body < n + 1 then None (* wait for body + newline *)
          else if t.data.[body + n] <> '\n' then
            corrupt t Bad_frame "frame not newline-terminated at length"
          else begin
            let payload = String.sub t.data body n in
            t.pos <- body + n + 1;
            Some (Frame payload)
          end
        end
      end
    end
end
