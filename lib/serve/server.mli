(** The serve daemon's channel-agnostic core: a resident
    {!Mcast_core.Distributed.Online} network that ingests
    {!Protocol.input} messages, batches same-timestamp events into
    atomic settle steps, applies bounded-queue backpressure, and
    appends every accepted event and emitted decision to an in-memory
    {!Replay_log}.

    {2 Batching}

    Events carry timestamps; all events at the current batch timestamp
    apply immediately (through [Online]'s deltas) but the network
    settles only when the batch {e closes}: the timestamp advances, a
    [flush]/[snapshot]/[bye] arrives, or the pending count reaches the
    header's [queue_limit] (backpressure — the settle is flagged
    [forced]). One settle emits the batch's [delta] lines (ascending
    user) and one [settled] summary. Timestamps must never go backwards;
    a regression is refused with a [non-monotone] error and the session
    survives. A new batch at the {e same} timestamp as the last settled
    one is allowed (it is what a forced settle leaves behind).

    {2 Determinism}

    A session is a pure function of (problem, header, input sequence):
    no randomness, ascending-index iteration everywhere, [%.17g]
    floats. The optional [fanout] (a {!Harness.Pool.run}-shaped hook)
    parallelizes only the snapshot baselines — fresh solves whose
    results merge in submission order — so the log and every reply are
    byte-identical at any [--jobs]. *)

open Wlan_model

(** Runs independent thunks and returns their results in submission
    order — pass [Harness.Pool.run pool] for a parallel snapshot
    baseline, or omit for in-process evaluation. *)
type fanout = (unit -> float * float) list -> (float * float) list

type t

(** Session statistics (also exported as [serve.*] counters). *)
type stats = {
  events : int;  (** accepted event messages *)
  batches : int;  (** settles executed *)
  emitted_deltas : int;
  errors : int;  (** refused inputs *)
  queue_peak : int;  (** largest pending batch *)
  forced_settles : int;  (** settles triggered by [queue_limit] *)
}

(** [create ~config p] starts an {e empty} network over [p]'s topology —
    every AP alive, every user absent until an [arrive] — awaiting the
    protocol handshake. The header's [tiers] must be finite, positive
    and sorted descending.
    @raise Invalid_argument on a bad header. *)
val create : ?fanout:fanout -> config:Replay_log.header -> Problem.t -> t

val config : t -> Replay_log.header

(** Handle one message; returned outputs must be framed to the peer in
    order. Refusals come back as [Error] outputs (never logged, state
    unchanged); everything else is appended to the replay log. *)
val handle_input : t -> Protocol.input -> Protocol.output list

(** Decode-and-handle one frame payload. *)
val handle_frame : t -> string -> Protocol.output list

(** End of stream without [bye]: settle the pending batch (logged), as
    [flush] would. Idempotent. *)
val finish : t -> Protocol.output list

(** [bye] seen (or {!finish} called): no further input is accepted. *)
val closed : t -> bool

(** The replay log so far: header + [ev]/[out] lines. *)
val log_contents : t -> string

(** Hex digest of the complete live state — present/alive flags, the
    association, tracker loads, drifted link rates and the pending
    batch. Two sessions with equal digests are indistinguishable to
    every future input. *)
val state_digest : t -> string

val stats : t -> stats

(** {1 Replay}

    [replay ~config ~events p] re-ingests a log's [ev] payloads through
    a fresh session: the result's {!log_contents} regenerates the live
    log — byte-identical for a complete log. For a truncated log both
    the input's complete-line portion and the regenerated log are
    prefixes of the uninterrupted log (so one is a prefix of the other):
    the regenerated log falls short exactly when the crash tore the log
    inside a settle's out-block whose triggering event was never
    written — the batch is left pending, and those lines re-derive once
    the missing trigger arrives. The state — per {!state_digest} — is
    exactly the live server's at that point.
    @raise Invalid_argument if an [ev] payload does not parse or is
    refused (a corrupt log, impossible for logs this module wrote). *)
val replay :
  ?fanout:fanout ->
  config:Replay_log.header ->
  events:string list ->
  Problem.t ->
  t
