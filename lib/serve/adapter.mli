(** [Churn_script] → serve-event adapter: expand a declarative churn
    script into the [wlan-mcast-ev 1] inputs a client would send.

    [Join]/[Leave] map to [arrive]/[depart], [Ap_fail]/[Ap_recover] and
    [Drift] map one-to-one ([drift] carries the tier-step count — the
    server applies the same {!Wlan_model.Churn_script.drifted_rate}
    ladder as the simulator), and [Burst {users}] expands to one
    [arrive] per user at the same timestamp, so the whole burst lands in
    one atomic settle batch.

    {!Wlan_model.Churn_script.t} exposes its event list concretely, so a
    caller can hand the adapter a list that bypassed
    [Churn_script.make]'s sorting. The adapter {e refuses} such input:
    timestamps must be nondecreasing, and a violation is reported as a
    typed {!error} — never silently reordered, because the serve
    protocol's batch semantics (and the replay log's byte identity)
    depend on event order being the order on the wire. *)

type error =
  | Non_monotone of { index : int; prev : float; time : float }
      (** event [index] (0-based) has [time < prev] *)

val error_message : error -> string

(** Expand a raw timed-event list, preserving order. *)
val inputs_of_events :
  Wlan_model.Churn_script.timed list ->
  (Protocol.input list, error) result

val inputs_of_script :
  Wlan_model.Churn_script.t -> (Protocol.input list, error) result

(** The full framed session a client would send: [hello], the script's
    events, then (unless [trailer:false]) [flush], [snapshot], [bye]. *)
val frames_of_script :
  ?trailer:bool -> Wlan_model.Churn_script.t -> (string, error) result
