(* Stadium pay-per-view: the MNU objective under scarce airtime.

   A dense hotspot (a stadium concourse): 40 APs in a 400 m × 400 m area,
   300 users all trying to watch one of 12 pay-per-view channels. The
   operator caps multicast at 5% of each AP's airtime so that unicast
   service stays usable — exactly the regime where the 802.11 default
   leaves money on the table and MNU's association control shines (the
   paper's pay-per-view revenue model, §3.2).

   The example also shows the free-rider extension: once the MNU cover is
   chosen, users in range of an already-scheduled transmission are tuned
   in at zero extra airtime.

   Run with: dune exec examples/stadium_tv.exe *)

open Wlan_model
open Mcast_core

let () =
  let cfg =
    {
      Scenario_gen.paper_default with
      area_w = 400.;
      area_h = 400.;
      n_aps = 40;
      n_users = 300;
      n_sessions = 12;
      budget = 0.05;
    }
  in
  let rng = Random.State.make [| 7 |] in
  let scenario = Scenario_gen.generate ~rng cfg in
  let p = Scenario.to_problem scenario in
  Fmt.pr "=== Stadium: %a, multicast capped at %.0f%% airtime ===@.@."
    Scenario.pp scenario (100. *. Problem.budget p);

  let ssa = Ssa.run p in
  let mnu = Mnu.run p in
  let mnu_fr = Mnu.run_with_free_riders p in
  let dmnu, o = Distributed.mnu p in

  Fmt.pr "%a@.%a@.%a@.%a  (converged in %d rounds)@.@." Solution.pp ssa
    Solution.pp mnu Solution.pp mnu_fr Solution.pp dmnu
    o.Distributed.rounds;

  let pct a b =
    float_of_int (a - b) /. float_of_int (Int.max b 1) *. 100.
  in
  Fmt.pr "paying viewers vs 802.11 default: centralized %+.1f%%, \
          +free-riders %+.1f%%, distributed %+.1f%%@.@."
    (pct mnu.Solution.satisfied ssa.Solution.satisfied)
    (pct mnu_fr.Solution.satisfied ssa.Solution.satisfied)
    (pct dmnu.Solution.satisfied ssa.Solution.satisfied);

  (* per-channel breakdown under the MNU cover *)
  let tx = Loads.tx_rates p mnu.Solution.assoc in
  Fmt.pr "--- channel line-up under centralized MNU ---@.";
  for s = 0 to Problem.n_sessions p - 1 do
    let aps = ref 0 and viewers = ref 0 in
    Array.iteri (fun _a row -> if row.(s) > 0. then incr aps) tx;
    Array.iteri
      (fun u ap ->
        if ap <> Association.none && Problem.user_session p u = s then
          incr viewers)
      mnu.Solution.assoc;
    Fmt.pr "channel %2d: %3d viewers via %2d APs@." s !viewers !aps
  done;
  Fmt.pr "@.max AP multicast load: %.4f (cap %.2f) — unicast keeps %.0f%% \
          of the worst AP's airtime@."
    mnu.Solution.max_load (Problem.budget p)
    (100. *. (1. -. mnu.Solution.max_load));

  (* premium tier: every 5th viewer pays 5x; maximize revenue, not heads *)
  Fmt.pr "@.--- premium tier: every 5th viewer is worth 5x ---@.";
  let weights =
    Array.init (snd (Problem.dims p)) (fun u -> if u mod 5 = 0 then 5. else 1.)
  in
  let plain_revenue sol =
    Array.to_list (Array.mapi (fun u a -> (u, a)) sol.Solution.assoc)
    |> List.fold_left
         (fun acc (u, a) ->
           if a <> Association.none then acc +. weights.(u) else acc)
         0.
  in
  let weighted, revenue = Mnu.run_weighted ~weights p in
  Fmt.pr
    "count-greedy:   %3d viewers, revenue %.0f@.\
     revenue-greedy: %3d viewers, revenue %.0f (%+.1f%%)@."
    mnu.Solution.satisfied (plain_revenue mnu) weighted.Solution.satisfied
    revenue
    ((revenue -. plain_revenue mnu) /. plain_revenue mnu *. 100.)
