(* Quickstart: the paper's running example (Figure 1), solved with every
   algorithm in the library.

   Run with: dune exec examples/quickstart.exe *)

open Wlan_model
open Mcast_core

let () =
  Fmt.pr "=== The paper's Figure 1 WLAN ===@.";
  Fmt.pr
    "Two APs, five users. u1,u3 watch session s1; u2,u4,u5 watch s2.@.@.";

  (* -------------------------------------------------------------- *)
  (* Scenario 1: 3 Mbps streams — too heavy to serve everyone (MNU)  *)
  (* -------------------------------------------------------------- *)
  let heavy = Examples.fig1 ~session_rate_mbps:3. in
  Fmt.pr "--- 3 Mbps streams: not everyone fits (the MNU regime) ---@.";

  let ssa = Ssa.run heavy in
  Fmt.pr "%a@.  association: %a@.@." Solution.pp ssa Association.pp
    ssa.Solution.assoc;

  let mnu = Mnu.run heavy in
  Fmt.pr "%a@.  association: %a@.@." Solution.pp mnu Association.pp
    mnu.Solution.assoc;

  let dmnu, outcome = Distributed.mnu heavy in
  Fmt.pr "%a  (converged in %d rounds)@.  association: %a@.@." Solution.pp
    dmnu outcome.Distributed.rounds Association.pp dmnu.Solution.assoc;

  (match Optimal.mnu heavy with
  | Some v ->
      Fmt.pr "optimal (ILP): %d users served%s@.@." v.Optimal.value
        (if v.Optimal.proved_optimal then " (proved)" else "")
  | None -> Fmt.pr "optimal (ILP): nothing servable@.@.");

  (* -------------------------------------------------------------- *)
  (* Scenario 2: 1 Mbps streams — everyone fits; balance or minimize *)
  (* -------------------------------------------------------------- *)
  let light = Examples.fig1 ~session_rate_mbps:1. in
  Fmt.pr "--- 1 Mbps streams: serve everyone, balance or minimize load ---@.";

  let mla = Mla.run light in
  Fmt.pr "%a  <- CostSC greedy, total 7/12 is the optimum here@.@."
    Solution.pp mla;

  let bla = Bla.run_exn light in
  Fmt.pr "%a  <- iterated-MCG cover@.@." Solution.pp bla;

  let dbla, _ = Distributed.bla light in
  Fmt.pr "%a  <- distributed BLA finds the optimal max load 1/2@.@."
    Solution.pp dbla;

  (match Optimal.bla light with
  | Some v -> Fmt.pr "optimal max load (ILP): %.4f@." v.Optimal.value
  | None -> ());
  match Optimal.mla light with
  | Some v -> Fmt.pr "optimal total load (exact cover): %.4f@." v.Optimal.value
  | None -> ()
