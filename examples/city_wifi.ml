(* City-scale WiFi: the paper's motivating deployments (Chaska, MN and
   Taipei — §1) in one end-to-end scenario that exercises every extension
   together:

   - a large municipal network (300 APs over 2 km x 2 km),
   - users clustered around downtown hotspots,
   - Zipf-skewed TV-channel popularity (everyone watches the news),
   - channel planning on 12 non-overlapping 802.11a channels plus
     residual co-channel interference accounting,
   - dual association (SSA unicast + MLA multicast),
   - and a day-in-the-life mobility run: bursts of users relocating
     between association epochs, with warm-started re-convergence.

   Run with: dune exec examples/city_wifi.exe *)

open Wlan_model
open Mcast_core

let () =
  (* ---- the city ---- *)
  let cfg =
    {
      Scenario_gen.paper_default with
      area_w = 2000.;
      area_h = 2000.;
      n_aps = 300;
      n_users = 600;
      n_sessions = 8;
      placement = Scenario_gen.Clustered { hotspots = 6; sigma_m = 120. };
      popularity = Scenario_gen.Zipf 1.2;
    }
  in
  let rng = Random.State.make [| 1789 |] in
  let scenario = Scenario_gen.generate ~rng cfg in
  let p = Scenario.to_problem scenario in
  Fmt.pr "=== City WiFi: %a ===@." Scenario.pp scenario;

  (* session popularity snapshot *)
  let counts = Array.make cfg.Scenario_gen.n_sessions 0 in
  Array.iter
    (fun s -> counts.(s) <- counts.(s) + 1)
    scenario.Scenario.user_session;
  Fmt.pr "channel audiences (Zipf 1.2): %a@.@."
    Fmt.(array ~sep:sp int)
    counts;

  (* ---- channel plan ---- *)
  let cs_range = 2. *. Rate_table.range Rate_table.default in
  let edges = Channels.conflict_edges ~range:cs_range scenario.Scenario.ap_pos in
  let plan = Channels.color ~n_channels:12 ~n_aps:cfg.Scenario_gen.n_aps edges in
  Fmt.pr "channel plan: %a@." Channels.pp plan;

  (* ---- association policies ---- *)
  let ssa = Ssa.run p in
  let mla = Mla.run p in
  let dmla, _ = Distributed.mla p in
  List.iter (fun (s : Solution.t) -> Fmt.pr "%a@." Solution.pp s)
    [ ssa; mla; dmla ];
  let interference assoc =
    Channels.total_interference plan ~loads:(Loads.ap_loads p assoc)
  in
  Fmt.pr
    "residual co-channel interference: SSA %.3f -> MLA %.3f (%.1f%% less)@.@."
    (interference ssa.Solution.assoc)
    (interference mla.Solution.assoc)
    ((interference ssa.Solution.assoc -. interference mla.Solution.assoc)
    /. Float.max 1e-9 (interference ssa.Solution.assoc)
    *. 100.);

  (* ---- dual association economics ---- *)
  let demands = Dual.uniform_demands p ~mbps:0.5 in
  let cmp = Dual.compare_single_vs_dual ~objective:`Mla p ~demands in
  Fmt.pr
    "combined airtime at 0.5 Mbps unicast/user: single-assoc %.2f, dual \
     %.2f (-%.1f%%), worst AP %.3f -> %.3f@.@."
    cmp.Dual.single.Dual.total cmp.Dual.dual.Dual.total
    cmp.Dual.total_saving_pct cmp.Dual.single.Dual.max cmp.Dual.dual.Dual.max;

  (* ---- a day in the life: mobility bursts over the air ---- *)
  Fmt.pr
    "--- mobility: 6 epochs, 15%% of users relocate, 5%% of APs down per \
     epoch ---@.";
  let reports =
    Wlan_sim.Mobility.run ~seed:11 ~move_fraction:0.15
      ~ap_failure_fraction:0.05 ~epochs:6 ~loss_rate:0.1
      ~policy:
        (Wlan_sim.Runner.Distributed_policy
           {
             objective = Distributed.Min_total_load;
             mode = Wlan_sim.Runner.Sequential;
             max_passes = 30;
           })
      scenario
  in
  Fmt.pr "%-7s %-10s %-8s %-8s %-10s %-12s@." "epoch" "relocated" "rejoin"
    "passes" "served" "total load";
  List.iter
    (fun (e : Wlan_sim.Mobility.epoch_report) ->
      Fmt.pr "%-7d %-10d %-8d %-8d %-10d %-12.3f@." e.Wlan_sim.Mobility.epoch
        e.Wlan_sim.Mobility.relocated e.Wlan_sim.Mobility.rejoin_moves
        e.Wlan_sim.Mobility.report.Wlan_sim.Runner.passes
        e.Wlan_sim.Mobility.report.Wlan_sim.Runner.solution.Solution.satisfied
        e.Wlan_sim.Mobility.report.Wlan_sim.Runner.solution.Solution.total_load)
    reports;
  (* note: relocated users land uniformly, so the population gradually
     disperses from the hotspots and the absolute load drifts up; judge the
     protocol against the centralized algorithm on the *same* final
     topology *)
  let last = List.nth reports (List.length reports - 1) in
  let final_p = last.Wlan_sim.Mobility.report.Wlan_sim.Runner.problem in
  let final_mla = Mla.run final_p in
  Fmt.pr
    "@.steady state: %d/%d users streaming at %.1f%% of the airtime the \
     centralized algorithm needs on the same (dispersed) topology, with \
     10%% management-frame loss throughout.@."
    last.Wlan_sim.Mobility.report.Wlan_sim.Runner.solution.Solution.satisfied
    cfg.Scenario_gen.n_users
    (100.
    *. last.Wlan_sim.Mobility.report.Wlan_sim.Runner.solution.Solution
         .total_load
    /. final_mla.Solution.total_load)
