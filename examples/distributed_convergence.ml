(* Distributed convergence, oscillation, and the lock-based fix.

   Replays the paper's Figure 4 counter-example: four users of one stream
   between two APs. When u2 and u3 re-decide simultaneously they swap
   associations forever; deciding one at a time (Lemma 1) converges, and
   so does the paper's §8 future-work idea — implemented here — of taking
   locks on the neighborhood APs before committing a move.

   The same comparison is then run on a 100-AP network, at both the
   abstract level and inside the discrete-event simulator (real messages,
   real latencies).

   Run with: dune exec examples/distributed_convergence.exe *)

open Wlan_model
open Mcast_core

let describe name (o : Distributed.outcome) p =
  Fmt.pr "%-14s rounds %3d  moves %3d  converged %-5b oscillated %-5b \
          total load %.4f@."
    name o.Distributed.rounds o.Distributed.moves o.Distributed.converged
    o.Distributed.oscillated
    (Loads.total_load p o.Distributed.assoc)

let () =
  Fmt.pr "=== Figure 4: two users deciding simultaneously ===@.";
  let p = Examples.fig4 in
  let init = Examples.fig4_initial in
  Fmt.pr "initial loads: %a@.@." Loads.pp_loads (Loads.ap_loads p init);
  List.iter
    (fun (name, sched) ->
      describe name
        (Distributed.run ~init ~scheduler:sched
           ~objective:Distributed.Min_total_load p)
        p)
    [
      ("sequential", Distributed.Sequential);
      ("simultaneous", Distributed.Simultaneous);
      ("locked", Distributed.Locked);
    ];

  Fmt.pr "@.=== Same comparison on a 100-AP / 200-user campus ===@.";
  let cfg = { Scenario_gen.paper_default with n_aps = 100; n_users = 200 } in
  let p =
    List.hd (Scenario_gen.problems ~seed:5 ~n:1 cfg)
  in
  List.iter
    (fun (name, sched) ->
      describe name
        (Distributed.run ~scheduler:sched
           ~objective:Distributed.Min_total_load p)
        p)
    [
      ("sequential", Distributed.Sequential);
      ("simultaneous", Distributed.Simultaneous);
      ("locked", Distributed.Locked);
    ];

  Fmt.pr "@.=== And over the air (message-level protocol, DES) ===@.";
  let rng = Random.State.make [| 5 |] in
  let scenario = Scenario_gen.generate ~rng { cfg with n_users = 60; n_aps = 30 } in
  List.iter
    (fun (name, mode) ->
      let r =
        Wlan_sim.Runner.run
          ~policy:
            (Wlan_sim.Runner.Distributed_policy
               {
                 objective = Distributed.Min_total_load;
                 mode;
                 max_passes = 40;
               })
          scenario
      in
      Fmt.pr "%-14s passes %3d  converged %-5b oscillated %-5b events %6d  \
              total load %.4f@."
        name r.Wlan_sim.Runner.passes r.Wlan_sim.Runner.converged
        r.Wlan_sim.Runner.oscillated r.Wlan_sim.Runner.events
        r.Wlan_sim.Runner.solution.Solution.total_load)
    [
      ("sequential", Wlan_sim.Runner.Sequential);
      ("simultaneous", Wlan_sim.Runner.Simultaneous);
    ]
