(* Campus streaming: the paper's motivating scenario at full scale.

   A 1.2 km² campus WLAN with 200 APs serves 400 users who each watch one
   of 5 live streams (local news, TV channels, visitor information). We
   compare the 802.11 default (strongest-signal association) against the
   paper's MLA and BLA association control, then validate the winner
   end-to-end in the discrete-event simulator: actual scanning, the
   query/response protocol, and measured airtime.

   Run with: dune exec examples/campus_streaming.exe *)

open Wlan_model
open Mcast_core

let () =
  let cfg = { Scenario_gen.paper_default with n_aps = 200; n_users = 400 } in
  let rng = Random.State.make [| 42 |] in
  let scenario = Scenario_gen.generate ~rng cfg in
  let p = Scenario.to_problem scenario in
  Fmt.pr "=== Campus: %a ===@.@." Scenario.pp scenario;

  (* ---- planning: compare association policies analytically ---- *)
  let ssa = Ssa.run p in
  let mla = Mla.run p in
  let bla = Bla.run_exn ~mode:`Hard p in
  let dmla, _ = Distributed.mla p in
  let dbla, _ = Distributed.bla p in
  List.iter
    (fun (s : Solution.t) -> Fmt.pr "%a@." Solution.pp s)
    [ ssa; mla; dmla; bla; dbla ];
  Fmt.pr "@.total-load reduction vs SSA: centralized %.1f%%, distributed %.1f%%@."
    ((ssa.Solution.total_load -. mla.Solution.total_load)
    /. ssa.Solution.total_load *. 100.)
    ((ssa.Solution.total_load -. dmla.Solution.total_load)
    /. ssa.Solution.total_load *. 100.);
  Fmt.pr "max-load reduction vs SSA:   centralized %.1f%%, distributed %.1f%%@.@."
    ((ssa.Solution.max_load -. bla.Solution.max_load)
    /. ssa.Solution.max_load *. 100.)
    ((ssa.Solution.max_load -. dbla.Solution.max_load)
    /. ssa.Solution.max_load *. 100.);

  (* ---- deployment: push the centralized MLA association into the
          simulator and measure real airtime ---- *)
  Fmt.pr "--- deploying centralized MLA in the simulator ---@.";
  let report =
    Wlan_sim.Runner.run ~streaming_window:1.0
      ~policy:(Wlan_sim.Runner.Static_policy mla.Solution.assoc)
      scenario
  in
  let worst_gap =
    Array.map2
      (fun m a -> Float.abs (m -. a))
      report.Wlan_sim.Runner.measured_loads report.Wlan_sim.Runner.analytic_loads
    |> Array.fold_left Float.max 0.
  in
  Fmt.pr
    "simulated %d events over %.2fs of virtual time@.\
     measured total load %.3f (analytic %.3f), worst per-AP gap %.4f@.@."
    report.Wlan_sim.Runner.events report.Wlan_sim.Runner.sim_time
    (Array.fold_left ( +. ) 0. report.Wlan_sim.Runner.measured_loads)
    mla.Solution.total_load worst_gap;

  (* ---- and let the distributed protocol find its own association ---- *)
  Fmt.pr "--- running the distributed MLA protocol over the air ---@.";
  let report =
    Wlan_sim.Runner.run
      ~policy:
        (Wlan_sim.Runner.Distributed_policy
           {
             objective = Distributed.Min_total_load;
             mode = Wlan_sim.Runner.Sequential;
             max_passes = 30;
           })
      scenario
  in
  Fmt.pr
    "protocol converged: %b after %d passes, %d simulation events@.\
     satisfied %d/400 users, total load %.3f (centralized got %.3f)@."
    report.Wlan_sim.Runner.converged report.Wlan_sim.Runner.passes
    report.Wlan_sim.Runner.events
    report.Wlan_sim.Runner.solution.Solution.satisfied
    report.Wlan_sim.Runner.solution.Solution.total_load
    mla.Solution.total_load
