(* Adaptive power control — the paper's §8 future-work extension.

   Lowering an AP's transmit power shrinks every rate region of Table 1
   proportionally. Every link gets slower, so the multicast load rises --
   but the coverage overlap (how many APs can hear each user, a direct
   proxy for co-channel interference and for the cell density a channel
   plan must accommodate) falls much faster. The operator's question is
   how much power can be shed before multicast load or coverage breaks.

   This example sweeps a uniform power scaling factor over a dense
   deployment, re-running rate adaptation and centralized MLA/BLA at each
   level, and reports both sides of the trade. (Per-AP power search is a
   straightforward extension: rebuild the scenario with a per-AP rate
   table.)

   Run with: dune exec examples/power_control.exe *)

open Wlan_model
open Mcast_core

let () =
  let cfg =
    {
      Scenario_gen.paper_default with
      area_w = 600.;
      area_h = 600.;
      n_aps = 60;
      n_users = 150;
      n_sessions = 5;
    }
  in
  let rng = Random.State.make [| 21 |] in
  let base = Scenario_gen.generate ~rng cfg in
  Fmt.pr "=== Power control sweep on a dense %d-AP deployment ===@.@."
    (Scenario.n_aps base);
  Fmt.pr "%-8s %-10s %-10s %-12s %-12s %-12s %-10s@." "power" "coverage"
    "overlap" "SSA total" "MLA total" "BLA max" "mean rate";
  List.iter
    (fun factor ->
      let scenario =
        Scenario.make ~area_w:base.Scenario.area_w ~area_h:base.Scenario.area_h
          ~ap_pos:base.Scenario.ap_pos ~user_pos:base.Scenario.user_pos
          ~user_session:base.Scenario.user_session
          ~sessions:base.Scenario.sessions
          ~rate_table:(Rate_table.scale_thresholds factor Rate_table.default)
          ~budget:base.Scenario.budget ()
      in
      let p = Scenario.to_problem scenario in
      let covered = List.length (Problem.coverable_users p) in
      let n_users = snd (Problem.dims p) in
      (* mean number of APs in range of each covered user: the overlap a
         channel plan has to absorb *)
      let overlap =
        let cov = Problem.coverable_users p in
        List.fold_left
          (fun acc u ->
            acc + List.length (Problem.neighbor_aps p u))
          0 cov
        |> fun t -> float_of_int t /. float_of_int (Int.max 1 (List.length cov))
      in
      if covered = 0 then
        Fmt.pr "%-8.2f (no user covered)@." factor
      else begin
        let ssa = Ssa.run p in
        let mla = Mla.run p in
        let bla = Bla.run_exn ~mode:`Hard p in
        (* mean link rate of the links MLA actually uses *)
        let rates = ref [] in
        Array.iteri
          (fun u a ->
            if a <> Association.none then
              rates := Problem.link_rate p ~ap:a ~user:u :: !rates)
          mla.Solution.assoc;
        let mean_rate =
          match !rates with
          | [] -> 0.
          | l ->
              List.fold_left ( +. ) 0. l /. float_of_int (List.length l)
        in
        Fmt.pr "%-8.2f %3d/%-6d %-10.1f %-12.4f %-12.4f %-12.4f %-10.1f@."
          factor covered n_users overlap ssa.Solution.total_load
          mla.Solution.total_load bla.Solution.max_load mean_rate
      end)
    [ 1.0; 0.9; 0.8; 0.7; 0.6; 0.5; 0.4; 0.3 ];
  Fmt.pr
    "@.Reading the table: shedding power cuts the coverage overlap (an\n\
     interference proxy) far faster than it raises the multicast load --\n\
     association control (MLA vs SSA) buys back a third of the airtime at\n\
     every power level, so the operator can run the network at noticeably\n\
     lower power before either load or coverage becomes the binding\n\
     constraint.@.";

  (* ---- per-AP power optimization (the real 8 proposal) ---- *)
  Fmt.pr
    "@.=== Per-AP discrete power levels (coordinate descent, mu = 0.3) ===@.";
  let edges =
    Channels.conflict_edges
      ~range:(2. *. Rate_table.range Rate_table.default)
      base.Scenario.ap_pos
  in
  let channels =
    Channels.color ~n_channels:3 ~n_aps:(Scenario.n_aps base) edges
  in
  let plan = Power.optimize ~channels ~mu:0.3 base in
  let full_p = Scenario.to_problem base in
  let full_mla = Mla.run full_p in
  let interference_of p (sol : Solution.t) =
    ignore p;
    Channels.total_interference channels ~loads:sol.Solution.ap_loads
  in
  Fmt.pr
    "APs below full power: %d/%d (levels histogram: %a)@.\
     total load:        %.3f -> %.3f@.\
     interference:      %.3f -> %.3f@.\
     joint objective J: %.3f -> %.3f@."
    (Power.reduced_count plan) (Scenario.n_aps base)
    Fmt.(array ~sep:sp int)
    (let h = Array.make (Array.length plan.Power.factors) 0 in
     Array.iter (fun l -> h.(l) <- h.(l) + 1) plan.Power.levels;
     h)
    full_mla.Solution.total_load plan.Power.solution.Solution.total_load
    (interference_of full_p full_mla)
    (interference_of plan.Power.problem plan.Power.solution)
    plan.Power.full_power_objective plan.Power.objective
