(* Tests for the evaluation harness: statistics, series utilities, report
   rendering, and — most importantly — the qualitative shape of the paper's
   figures on reduced scenario counts (who wins, and how curves move with
   users / APs / sessions / budget). *)

open Harness

let feq ?(eps = 1e-9) a b = Float.abs (a -. b) <= eps

(* a small config so the whole suite stays fast *)
let cfg =
  {
    Experiments.scenarios = 3;
    small_scenarios = 1;
    seed = 424242;
    ilp_node_limit = 200;
    jobs = 1;
  }

(* ------------------------------------------------------------------ *)
(* Stats                                                              *)
(* ------------------------------------------------------------------ *)

let test_summarize () =
  let s = Stats.summarize [ 1.; 2.; 6. ] in
  Alcotest.(check (float 1e-9)) "mean" 3. s.Stats.mean;
  Alcotest.(check (float 1e-9)) "min" 1. s.Stats.min;
  Alcotest.(check (float 1e-9)) "max" 6. s.Stats.max;
  Alcotest.(check int) "n" 3 s.Stats.n;
  Alcotest.check_raises "empty" (Invalid_argument "Stats.summarize: empty sample")
    (fun () -> ignore (Stats.summarize []))

let test_pct () =
  Alcotest.(check (float 1e-9)) "reduction" 25.
    (Stats.pct_reduction ~baseline:4. ~improved:3.);
  Alcotest.(check (float 1e-9)) "gain" 50.
    (Stats.pct_gain ~baseline:4. ~improved:6.);
  Alcotest.(check (float 1e-9)) "zero baseline" 0.
    (Stats.pct_reduction ~baseline:0. ~improved:3.)

(* ------------------------------------------------------------------ *)
(* Series                                                             *)
(* ------------------------------------------------------------------ *)

let fig_fixture =
  {
    Series.id = "t";
    title = "t";
    x_label = "x";
    y_label = "y";
    points =
      [
        { Series.x = 1.; values = [ ("a", Stats.summarize [ 1. ]) ] };
        { Series.x = 2.; values = [ ("a", Stats.summarize [ 5. ]) ] };
      ];
  }

let test_series_lookup () =
  Alcotest.(check (list string)) "names" [ "a" ] (Series.series_names fig_fixture);
  Alcotest.(check (option (float 1e-9))) "mean_at" (Some 5.)
    (Series.mean_at fig_fixture "a" 2.);
  Alcotest.(check (option (float 1e-9))) "last_mean" (Some 5.)
    (Series.last_mean fig_fixture "a");
  Alcotest.(check (option (float 1e-9))) "missing series" None
    (Series.mean_at fig_fixture "b" 2.);
  Alcotest.(check (option (float 1e-9))) "missing x" None
    (Series.mean_at fig_fixture "a" 3.)

(* ------------------------------------------------------------------ *)
(* Report rendering                                                   *)
(* ------------------------------------------------------------------ *)

let test_report_renders () =
  let s = Fmt.str "%a" Report.pp_figure fig_fixture in
  Alcotest.(check bool) "has series name" true
    (String.length s > 0
    && Astring.String.is_infix ~affix:"a" s
    && Astring.String.is_infix ~affix:"== t" s)

let test_csv_export () =
  let csv = Report.to_csv fig_fixture in
  let lines = String.split_on_char '\n' csv in
  Alcotest.(check string) "header" "x,a mean,a min,a max" (List.nth lines 0);
  Alcotest.(check string) "row 1" "1,1,1,1" (List.nth lines 1);
  Alcotest.(check string) "row 2" "2,5,5,5" (List.nth lines 2)

let test_csv_missing_series_cells () =
  let fig =
    {
      fig_fixture with
      Series.points =
        fig_fixture.Series.points
        @ [ { Series.x = 3.; values = [ ("b", Stats.summarize [ 9. ]) ] } ];
    }
  in
  let csv = Report.to_csv fig in
  let lines = String.split_on_char '\n' csv in
  Alcotest.(check string) "union header" "x,a mean,a min,a max,b mean,b min,b max"
    (List.nth lines 0);
  Alcotest.(check string) "missing cells empty" "3,,,,9,9,9" (List.nth lines 3)

let test_table1_renders () =
  let s = Fmt.str "%a" Report.pp_table1 (Experiments.table1 ()) in
  List.iter
    (fun needle ->
      Alcotest.(check bool) needle true (Astring.String.is_infix ~affix:needle s))
    [ "54"; "200"; "Rate" ]

(* ------------------------------------------------------------------ *)
(* Figure shapes (the paper's qualitative claims)                      *)
(* ------------------------------------------------------------------ *)

let mean_exn fig name x = Option.get (Series.mean_at fig name x)

let every_point fig pred =
  List.for_all
    (fun (p : Series.point) -> pred p.Series.x p.Series.values)
    fig.Series.points

let test_table1_roundtrip () =
  Alcotest.(check int) "7 rates" 7 (List.length (Experiments.table1 ()))

(* fig9a: MLA (both) beat SSA at every user count; total load grows with
   users for every algorithm *)
let fig9a = lazy (Experiments.fig9a ~cfg ())

let test_fig9a_mla_beats_ssa () =
  let fig = Lazy.force fig9a in
  Alcotest.(check bool) "MLA <= SSA everywhere" true
    (every_point fig (fun _ values ->
         let m = (List.assoc "MLA-centralized" values).Stats.mean in
         let d = (List.assoc "MLA-distributed" values).Stats.mean in
         let s = (List.assoc "SSA" values).Stats.mean in
         m <= s +. 1e-9 && d <= s +. 1e-9))

let test_fig9a_total_load_grows_with_users () =
  let fig = Lazy.force fig9a in
  let series = [ "MLA-centralized"; "SSA" ] in
  List.iter
    (fun name ->
      let means =
        List.map
          (fun (p : Series.point) ->
            (List.assoc name p.Series.values).Stats.mean)
          fig.Series.points
      in
      let rec mono = function
        | a :: (b :: _ as rest) -> a <= b +. 0.05 && mono rest
        | _ -> true
      in
      Alcotest.(check bool) (name ^ " nondecreasing") true (mono means))
    series

(* fig9b: total load decreases as APs increase (density raises rates) *)
let test_fig9b_load_falls_with_aps () =
  let fig = Experiments.fig9b ~cfg () in
  let first = mean_exn fig "MLA-centralized" 25. in
  let last = mean_exn fig "MLA-centralized" 200. in
  Alcotest.(check bool) "fewer APs, higher load" true (first > last)

(* fig10a: BLA (both) at or below SSA's max load at every point *)
let test_fig10a_bla_beats_ssa () =
  let fig = Experiments.fig10a ~cfg () in
  Alcotest.(check bool) "BLA <= SSA everywhere" true
    (every_point fig (fun _ values ->
         let c = (List.assoc "BLA-centralized" values).Stats.mean in
         let d = (List.assoc "BLA-distributed" values).Stats.mean in
         let s = (List.assoc "SSA" values).Stats.mean in
         c <= s +. 1e-9 && d <= s +. 1e-9))

(* fig11: satisfied users grow with the budget; MNU >= SSA at every point *)
let test_fig11_shape () =
  let fig = Experiments.fig11 ~cfg () in
  Alcotest.(check bool) "MNU >= SSA everywhere" true
    (every_point fig (fun _ values ->
         let m = (List.assoc "MNU-centralized" values).Stats.mean in
         let s = (List.assoc "SSA" values).Stats.mean in
         m >= s -. 1e-9));
  let means =
    List.map
      (fun (p : Series.point) ->
        (List.assoc "MNU-centralized" p.Series.values).Stats.mean)
      fig.Series.points
  in
  let rec mono = function
    | a :: (b :: _ as rest) -> a <= b +. 1e-9 && mono rest
    | _ -> true
  in
  Alcotest.(check bool) "satisfied grows with budget" true (mono means)

(* ablations *)
let test_ablate_rate_basic_worse () =
  let fig = Experiments.ablate_rate ~cfg () in
  let multi = mean_exn fig "MLA-centralized" 0. in
  let basic = mean_exn fig "MLA-centralized" 1. in
  Alcotest.(check bool) "basic rate costs more airtime" true (basic >= multi);
  (* and association control still beats SSA at the basic rate (§3.1) *)
  let ssa_basic = mean_exn fig "SSA" 1. in
  Alcotest.(check bool) "MLA beats SSA at basic rate too" true
    (basic <= ssa_basic +. 1e-9)

let test_ablate_bla_mode () =
  let fig = Experiments.ablate_bla_mode ~cfg () in
  let soft = mean_exn fig "soft (paper Fig. 3)" 400. in
  let hard = mean_exn fig "hard caps" 400. in
  Alcotest.(check bool) "both positive" true (soft > 0. && hard > 0.);
  Alcotest.(check bool) "hard caps no worse on average" true
    (hard <= soft +. 1e-9)

let test_ablate_sched_locked_converges_same_ballpark () =
  let fig = Experiments.ablate_sched ~cfg () in
  let seq = mean_exn fig "total-load" 0. in
  let locked = mean_exn fig "total-load" 2. in
  Alcotest.(check bool) "locked within 10% of sequential" true
    (Float.abs (locked -. seq) <= 0.1 *. seq)

(* fig12 on a truly tiny config: optimal <= greedy *)
let test_fig12a_optimal_lower_bound () =
  let tiny =
    { cfg with small_scenarios = 1; ilp_node_limit = 50_000 }
  in
  let fig = Experiments.fig12a ~cfg:tiny () in
  Alcotest.(check bool) "optimal <= both greedy algorithms" true
    (every_point fig (fun _ values ->
         let o = (List.assoc "optimal" values).Stats.mean in
         let c = (List.assoc "MLA-centralized" values).Stats.mean in
         let d = (List.assoc "MLA-distributed" values).Stats.mean in
         (not (Float.is_nan o)) && o <= c +. 1e-6 && o <= d +. 1e-6))

(* ------------------------------------------------------------------ *)
(* Figure cache: keyed by (id, cfg), never serves stale data           *)
(* ------------------------------------------------------------------ *)

let test_fig_cache_keyed_by_cfg () =
  let cache = Fig_cache.create () in
  let calls = ref 0 in
  let get c id =
    Fig_cache.get cache ~cfg:c ~id (fun () ->
        incr calls;
        fig_fixture)
  in
  let quick = { cfg with Experiments.scenarios = 1 } in
  ignore (get cfg "fig9a");
  ignore (get cfg "fig9a");
  Alcotest.(check int) "same (id, cfg) served from cache" 1 !calls;
  (* the bug this guards against: a --quick figure followed by the same
     figure under the full config must recompute, not reuse stale data *)
  ignore (get quick "fig9a");
  Alcotest.(check int) "same id, different cfg recomputes" 2 !calls;
  ignore (get cfg "fig10a");
  Alcotest.(check int) "different id recomputes" 3 !calls;
  Alcotest.(check int) "hits counted" 1 (Fig_cache.hits cache);
  Alcotest.(check int) "misses counted" 3 (Fig_cache.misses cache)

(* ------------------------------------------------------------------ *)
(* Reproducibility: per-scenario seed splitting makes every figure     *)
(* bit-identical at any jobs value                                     *)
(* ------------------------------------------------------------------ *)

let repro_cfg seed =
  {
    Experiments.scenarios = 2;
    small_scenarios = 1;
    seed;
    ilp_node_limit = 200;
    jobs = 1;
  }

(* structural equality catches the numbers; CSV equality is the
   "byte-identical output" acceptance criterion *)
let same_figure a b = a = b && String.equal (Report.to_csv a) (Report.to_csv b)

let qcheck_repro name (driver : ?cfg:Experiments.config -> unit -> _) =
  QCheck.Test.make ~name ~count:2
    QCheck.(int_bound 100_000)
    (fun seed ->
      let fig jobs = driver ~cfg:{ (repro_cfg seed) with jobs } () in
      let f1 = fig 1 in
      same_figure f1 (fig 2) && same_figure f1 (fig 4) && same_figure f1 (fig 1))

let qcheck_repro_fig9a =
  qcheck_repro "fig9a bit-identical under jobs 1/2/4 and reruns"
    Experiments.fig9a

let qcheck_repro_fig11 =
  qcheck_repro "fig11 bit-identical under jobs 1/2/4 and reruns"
    Experiments.fig11

let qcheck_stats =
  QCheck.Test.make ~name:"summarize bounds: min <= mean <= max" ~count:200
    QCheck.(list_of_size Gen.(int_range 1 30) (float_range (-100.) 100.))
    (fun xs ->
      let s = Stats.summarize xs in
      s.Stats.min <= s.Stats.mean +. 1e-9
      && s.Stats.mean <= s.Stats.max +. 1e-9
      && s.Stats.n = List.length xs
      && feq ~eps:1e-6
           (s.Stats.mean *. float_of_int s.Stats.n)
           (List.fold_left ( +. ) 0. xs))

(* ------------------------------------------------------------------ *)
(* Bench_json round-trip; pool-fanout B* grid                          *)
(* ------------------------------------------------------------------ *)

let test_bench_json_roundtrip () =
  let snap =
    {
      Bench_json.label = "PR3";
      jobs = 4;
      quick = false;
      seed = 4242;
      entries =
        [
          { Bench_json.name = "exp:fig9"; wall_s = 12.5; cpu_s = Some 40.25 };
          {
            (* a bechamel-style row: no CPU sample, field omitted *)
            Bench_json.name = "bechamel:algorithms/ssa";
            wall_s = 0.118;
            cpu_s = None;
          };
        ];
    }
  in
  let baseline =
    {
      snap with
      Bench_json.label = "pre";
      entries =
        [ { Bench_json.name = "exp:fig9"; wall_s = 25.0; cpu_s = Some 80.0 } ];
    }
  in
  let doc = Bench_json.render ~baseline snap in
  (* a row without a CPU sample must not serialize a fabricated 0. *)
  Alcotest.(check bool) "no zero-filled cpu_s" false
    (Astring.String.is_infix ~affix:"\"cpu_s\": 0.000000" doc);
  (match Bench_json.parse doc with
  | None -> Alcotest.fail "render output did not parse"
  | Some s ->
      Alcotest.(check string) "label" "PR3" s.Bench_json.label;
      Alcotest.(check int) "jobs" 4 s.Bench_json.jobs;
      Alcotest.(check bool) "quick" false s.Bench_json.quick;
      Alcotest.(check int) "seed" 4242 s.Bench_json.seed;
      Alcotest.(check int) "entries" 2 (List.length s.Bench_json.entries);
      (match s.Bench_json.entries with
      | [ e; b ] ->
          Alcotest.(check string) "name" "exp:fig9" e.Bench_json.name;
          Alcotest.(check (float 1e-9)) "wall_s" 12.5 e.Bench_json.wall_s;
          Alcotest.(check (option (float 1e-9))) "cpu_s" (Some 40.25)
            e.Bench_json.cpu_s;
          Alcotest.(check (option (float 1e-9))) "absent cpu_s" None
            b.Bench_json.cpu_s
      | _ -> Alcotest.fail "expected 2 entries"));
  match
    Bench_json.speedups ~baseline:baseline.Bench_json.entries ~current:snap
  with
  | [ (name, ratio) ] ->
      Alcotest.(check string) "speedup row" "exp:fig9" name;
      Alcotest.(check (float 1e-9)) "ratio" 2.0 ratio
  | rows ->
      Alcotest.fail (Fmt.str "expected 1 speedup row, got %d" (List.length rows))

let test_bench_json_regressions () =
  let e name wall = { Bench_json.name; wall_s = wall; cpu_s = None } in
  let baseline = [ e "a" 1.0; e "b" 2.0; e "dead" 0.; e "gone" 1.0 ] in
  let current = [ e "a" 1.4; e "b" 3.2; e "dead" 9.0; e "new" 9.0 ] in
  (* "a" is within 1.5x; "b" is 1.6x over; zero-wall baselines and
     one-sided entries never fire *)
  (match Bench_json.regressions ~threshold:0.5 ~baseline ~current () with
  | [ ("b", r) ] -> Alcotest.(check (float 1e-9)) "ratio" 1.6 r
  | rows ->
      Alcotest.fail (Fmt.str "expected only b, got %d rows" (List.length rows)));
  (* tighter threshold flags both, worst first *)
  (match Bench_json.regressions ~threshold:0.2 ~baseline ~current () with
  | [ ("b", _); ("a", _) ] -> ()
  | rows ->
      Alcotest.fail
        (Fmt.str "expected b then a, got %d rows" (List.length rows)));
  (* a noise floor skips micro rows entirely: only "b" (baseline 2.0)
     clears a 1.5 s floor *)
  match Bench_json.regressions ~min_wall:1.5 ~threshold:0.2 ~baseline ~current ()
  with
  | [ ("b", _) ] -> ()
  | rows ->
      Alcotest.fail
        (Fmt.str "expected only b above the floor, got %d rows"
           (List.length rows))

(* the acceptance criterion for tentpole (c): fanning the B* grid over a
   real pool changes nothing about the solution, at any pool size *)
let test_bla_pool_fanout_identical () =
  let cfg =
    { Wlan_model.Scenario_gen.paper_default with n_aps = 15; n_users = 30 }
  in
  let ps = Wlan_model.Scenario_gen.problems ~seed:909 ~n:2 cfg in
  Pool.with_pool ~jobs:4 @@ fun pool ->
  List.iter
    (fun p ->
      let seq = Mcast_core.Bla.run_exn p in
      let par = Mcast_core.Bla.run_exn ~fanout:(Pool.run pool) p in
      Alcotest.(check bool) "pool fanout = sequential" true (seq = par))
    ps

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  let slow name f = Alcotest.test_case name `Slow f in
  Alcotest.run "harness"
    [
      ( "stats",
        [
          tc "summarize" test_summarize;
          tc "percentages" test_pct;
          QCheck_alcotest.to_alcotest qcheck_stats;
        ] );
      ("series", [ tc "lookup" test_series_lookup ]);
      ( "report",
        [
          tc "figure renders" test_report_renders;
          tc "csv export" test_csv_export;
          tc "csv missing cells" test_csv_missing_series_cells;
          tc "table1 renders" test_table1_renders;
        ] );
      ("fig cache", [ tc "keyed by (id, cfg)" test_fig_cache_keyed_by_cfg ]);
      ( "bench",
        [
          tc "bench_json roundtrip" test_bench_json_roundtrip;
          tc "bench_json regressions" test_bench_json_regressions;
          tc "BLA pool fanout identical" test_bla_pool_fanout_identical;
        ] );
      ( "reproducibility",
        [
          QCheck_alcotest.to_alcotest qcheck_repro_fig9a;
          QCheck_alcotest.to_alcotest qcheck_repro_fig11;
        ] );
      ( "figure shapes",
        [
          tc "table1 roundtrip" test_table1_roundtrip;
          slow "fig9a: MLA beats SSA" test_fig9a_mla_beats_ssa;
          slow "fig9a: load grows with users" test_fig9a_total_load_grows_with_users;
          slow "fig9b: load falls with APs" test_fig9b_load_falls_with_aps;
          slow "fig10a: BLA beats SSA" test_fig10a_bla_beats_ssa;
          slow "fig11: budget shape" test_fig11_shape;
          slow "fig12a: optimal is a lower bound" test_fig12a_optimal_lower_bound;
          slow "ablation: basic rate" test_ablate_rate_basic_worse;
          slow "ablation: bla mode" test_ablate_bla_mode;
          slow "ablation: schedulers" test_ablate_sched_locked_converges_same_ballpark;
        ] );
    ]
