(* Tests for the core association-control algorithms: the reductions of
   Theorems 1/3/5 (checked against the paper's Figure 2/5/7 instances) and
   the centralized MNU / BLA / MLA walk-throughs of §4.1, §5.1 and §6.1,
   plus SSA and invariants on random instances. *)

open Wlan_model
open Mcast_core

let feq ?(eps = 1e-9) a b = Float.abs (a -. b) <= eps

let check_float ?eps msg expected actual =
  if not (feq ?eps expected actual) then
    Alcotest.failf "%s: expected %.12g, got %.12g" msg expected actual

let fig1_mnu = Examples.fig1 ~session_rate_mbps:3.
let fig1_1m = Examples.fig1 ~session_rate_mbps:1.

(* ------------------------------------------------------------------ *)
(* Reduction (Figures 2, 5, 7)                                        *)
(* ------------------------------------------------------------------ *)

(* The Figure 2/5 reduction of the Figure 1 WLAN has 7 subsets:
   a1: (s1@3)={u1,u3}, (s1@4)={u3}, (s2@6)={u2}, (s2@4)={u2,u4,u5};
   a2: (s1@5)={u3}, (s2@5)={u4}, (s2@3)={u4,u5}. *)
let expected_subsets =
  [
    (0, 0, 3., [ 0; 2 ]);
    (0, 0, 4., [ 2 ]);
    (0, 1, 4., [ 1; 3; 4 ]);
    (0, 1, 6., [ 1 ]);
    (1, 0, 5., [ 2 ]);
    (1, 1, 3., [ 3; 4 ]);
    (1, 1, 5., [ 3 ]);
  ]

let find_subset inst (ap, session, rate) =
  let found = ref None in
  for j = 0 to Optkit.Cover_instance.n_sets inst - 1 do
    let tx = Optkit.Cover_instance.payload inst j in
    if
      tx.Reduction.ap = ap
      && tx.Reduction.session = session
      && feq tx.Reduction.tx_rate rate
    then found := Some j
  done;
  !found

let test_reduction_fig2_subsets () =
  let inst = Reduction.cover_instance fig1_mnu in
  Alcotest.(check int) "7 subsets" 7 (Optkit.Cover_instance.n_sets inst);
  Alcotest.(check int) "2 groups" 2 (Optkit.Cover_instance.n_groups inst);
  List.iter
    (fun (ap, s, rate, members) ->
      match find_subset inst (ap, s, rate) with
      | None -> Alcotest.failf "missing subset a%d s%d @%g" ap s rate
      | Some j ->
          Alcotest.(check (list int))
            (Fmt.str "members of a%d s%d @%g" ap s rate)
            members
            (Optkit.Bitset.to_list (Optkit.Cover_instance.set inst j));
          check_float "cost = session rate / tx rate" (3. /. rate)
            (Optkit.Cover_instance.cost inst j);
          Alcotest.(check int) "group is the AP" ap
            (Optkit.Cover_instance.group inst j))
    expected_subsets

let test_reduction_fig5_costs () =
  (* same subsets at 1 Mbps: costs scale to 1/rate *)
  let inst = Reduction.cover_instance fig1_1m in
  Alcotest.(check int) "7 subsets" 7 (Optkit.Cover_instance.n_sets inst);
  List.iter
    (fun (ap, s, rate, _) ->
      let j = Option.get (find_subset inst (ap, s, rate)) in
      check_float "1 Mbps cost" (1. /. rate) (Optkit.Cover_instance.cost inst j))
    expected_subsets

let test_reduction_budget_filter () =
  (* with budget 0.2 and 3 Mbps sessions, every subset costs >= 3/6 = 0.5
     and is filtered out *)
  let p = Problem.with_budget fig1_mnu 0.2 in
  let inst = Reduction.cover_instance ~filter_over_budget:true p in
  Alcotest.(check int) "all filtered" 0 (Optkit.Cover_instance.n_sets inst);
  (* without the filter everything stays *)
  let inst = Reduction.cover_instance p in
  Alcotest.(check int) "kept without filter" 7
    (Optkit.Cover_instance.n_sets inst)

let test_reduction_association_mapping () =
  let inst = Reduction.cover_instance fig1_mnu in
  let j = Option.get (find_subset inst (0, 1, 4.)) in
  let newly = Optkit.Bitset.of_list 5 [ 1; 3 ] in
  let assoc = Reduction.association_of_selections fig1_mnu inst [ (j, newly) ] in
  Alcotest.(check (option int)) "u2 -> a1" (Some 0) (Association.ap_of assoc 1);
  Alcotest.(check (option int)) "u4 -> a1" (Some 0) (Association.ap_of assoc 3);
  Alcotest.(check (option int)) "u5 unassigned" None (Association.ap_of assoc 4)

(* ------------------------------------------------------------------ *)
(* SSA baseline                                                       *)
(* ------------------------------------------------------------------ *)

let test_ssa_fig1_mnu () =
  (* §4.1: strongest-signal association serves only 2 users at 3 Mbps *)
  let sol = Ssa.run fig1_mnu in
  Alcotest.(check int) "2 users" 2 sol.Solution.satisfied;
  Alcotest.(check (option int)) "u1 -> a1" (Some 0)
    (Association.ap_of sol.assoc 0);
  Alcotest.(check (option int)) "u3 -> a2" (Some 1)
    (Association.ap_of sol.assoc 2);
  Alcotest.(check bool) "budget ok" true (Solution.respects_budget fig1_mnu sol)

let test_solution_unsatisfied () =
  let sol = Ssa.run fig1_mnu in
  Alcotest.(check int) "unsatisfied = 5 - served"
    (5 - sol.Solution.satisfied)
    (Solution.unsatisfied fig1_mnu sol)

let test_ssa_serves_all_when_feasible () =
  (* at 1 Mbps everyone fits their strongest AP *)
  let sol = Ssa.run fig1_1m in
  Alcotest.(check int) "5 users" 5 sol.Solution.satisfied;
  (* strongest by rate: u3 -> a2 (5>4), u4 -> a2 (5>4), u5 -> a1 (4>3) *)
  Alcotest.(check (option int)) "u4 -> a2" (Some 1)
    (Association.ap_of sol.assoc 3);
  Alcotest.(check (option int)) "u5 -> a1" (Some 0)
    (Association.ap_of sol.assoc 4)

(* ------------------------------------------------------------------ *)
(* Centralized MNU (§4.1 walk-through)                                *)
(* ------------------------------------------------------------------ *)

let test_mnu_fig1_walkthrough () =
  (* greedy picks S4 (u2,u4,u5 at a1), then S2 violates a1's budget; the
     split keeps H1 = {S4}: 3 users served *)
  let sol = Mnu.run fig1_mnu in
  Alcotest.(check int) "3 users" 3 sol.Solution.satisfied;
  Alcotest.(check (option int)) "u2 -> a1" (Some 0)
    (Association.ap_of sol.assoc 1);
  Alcotest.(check (option int)) "u4 -> a1" (Some 0)
    (Association.ap_of sol.assoc 3);
  Alcotest.(check (option int)) "u5 -> a1" (Some 0)
    (Association.ap_of sol.assoc 4);
  Alcotest.(check (option int)) "u1 unserved" None
    (Association.ap_of sol.assoc 0);
  check_float "a1 load 3/4" 0.75 sol.ap_loads.(0);
  Alcotest.(check bool) "budget ok" true
    (Solution.respects_budget fig1_mnu sol)

let test_mnu_beats_ssa_on_fig1 () =
  let mnu = Mnu.run fig1_mnu and ssa = Ssa.run fig1_mnu in
  Alcotest.(check bool) "MNU >= SSA" true
    (mnu.Solution.satisfied >= ssa.Solution.satisfied);
  Alcotest.(check int) "exactly 3 vs 2" 1
    (mnu.Solution.satisfied - ssa.Solution.satisfied)

let test_mnu_serves_everyone_when_easy () =
  let sol = Mnu.run fig1_1m in
  Alcotest.(check int) "all 5" 5 sol.Solution.satisfied;
  Alcotest.(check bool) "budget ok" true (Solution.respects_budget fig1_1m sol)

let test_mnu_single_session_all_served () =
  (* one session: every AP can simply transmit at the basic rate (the paper
     notes MNU is trivially in P then); greedy must also serve everyone *)
  let p =
    Problem.make ~session_rates:[| 1. |] ~user_session:[| 0; 0; 0 |]
      ~rates:[| [| 6.; 6.; 0. |]; [| 0.; 6.; 6. |] |]
      ~budget:0.9 ()
  in
  let sol = Mnu.run p in
  Alcotest.(check int) "all served" 3 sol.Solution.satisfied

let test_mnu_free_riders () =
  let sol = Mnu.run_with_free_riders fig1_mnu in
  (* the extension may only add users, never break the budget *)
  Alcotest.(check bool) "at least as many" true (sol.Solution.satisfied >= 3);
  Alcotest.(check bool) "budget ok" true
    (Solution.respects_budget fig1_mnu sol)

(* ------------------------------------------------------------------ *)
(* Centralized BLA (§5.1 walk-through)                                *)
(* ------------------------------------------------------------------ *)

let test_bla_fig1_walkthrough () =
  (* the paper's Centralized BLA example sends every user to a1
     (max load 7/12); the optimum is 1/2, within the approximation bound *)
  let sol = Bla.run_exn fig1_1m in
  Alcotest.(check int) "serves all" 5 sol.Solution.satisfied;
  check_float "max load 7/12" (7. /. 12.) sol.max_load;
  Array.iteri
    (fun u a -> if a <> 0 then Alcotest.failf "user %d not on a1" u)
    sol.assoc

let test_bla_covers_all_coverable () =
  let sol = Bla.run_exn fig1_mnu in
  Alcotest.(check int) "all covered (3 Mbps)" 5 sol.Solution.satisfied

let test_bla_improves_on_ssa_shape () =
  (* on a crowded hotspot instance BLA must spread sessions across APs *)
  let p =
    Problem.make ~session_rates:[| 1.; 1. |]
      ~user_session:[| 0; 0; 1; 1 |]
      ~rates:[| [| 6.; 6.; 6.; 6. |]; [| 6.; 6.; 6.; 6. |] |]
      ~budget:0.9 ()
  in
  let bla = Bla.run_exn p and ssa = Ssa.run p in
  Alcotest.(check bool) "BLA max <= SSA max" true
    (bla.Solution.max_load <= ssa.Solution.max_load +. 1e-9);
  (* SSA piles both sessions on a1 (signal ties break to lower index) *)
  check_float "ssa max" (2. /. 6.) ssa.Solution.max_load;
  check_float "bla max" (1. /. 6.) bla.Solution.max_load

(* ------------------------------------------------------------------ *)
(* Centralized MLA (§6.1 walk-through)                                *)
(* ------------------------------------------------------------------ *)

let test_mla_fig1_walkthrough () =
  (* CostSC picks S4 then S2: all users on a1, total load 7/12 = optimal *)
  let sol = Mla.run fig1_1m in
  Alcotest.(check int) "serves all" 5 sol.Solution.satisfied;
  check_float "total 7/12" (7. /. 12.) sol.total_load;
  Array.iteri
    (fun u a -> if a <> 0 then Alcotest.failf "user %d not on a1" u)
    sol.assoc

let test_mla_layered_fig1 () =
  (* the layering alternative (§6.1) also serves everyone on Figure 1 *)
  let sol = Mla.run_layered fig1_1m in
  Alcotest.(check int) "serves all" 5 sol.Solution.satisfied;
  Alcotest.(check bool) "budgetless objective sane" true
    (sol.Solution.total_load >= 7. /. 12. -. 1e-9)

let test_mla_lp_rounding_fig1 () =
  match Mla.run_lp_rounding fig1_1m with
  | None -> Alcotest.fail "LP failed"
  | Some sol ->
      Alcotest.(check int) "serves all" 5 sol.Solution.satisfied;
      Alcotest.(check bool) "within f of optimum" true
        (sol.Solution.total_load <= 7. (* trivially loose; tight below *))

let prop_mla_variants_cover_everyone =
  QCheck.Test.make
    ~name:"layered and LP-rounding MLA serve every coverable user" ~count:40
    (QCheck.make
       QCheck.Gen.(
         let* seed = int_range 0 1_000_000 in
         return
           (List.hd
              (Scenario_gen.problems ~seed ~n:1
                 {
                   Scenario_gen.paper_default with
                   n_aps = 8;
                   n_users = 15;
                   area_w = 500.;
                   area_h = 500.;
                 }))))
    (fun p ->
      let coverable = List.length (Problem.coverable_users p) in
      let layered = Mla.run_layered p in
      let lp = Option.get (Mla.run_lp_rounding p) in
      layered.Solution.satisfied = coverable
      && lp.Solution.satisfied = coverable
      && Solution.in_range_ok p layered
      && Solution.in_range_ok p lp)

let test_mla_uncoverable_users_stay_unserved () =
  let p =
    Problem.make ~allow_uncovered:true ~session_rates:[| 1. |]
      ~user_session:[| 0; 0 |] ~rates:[| [| 6.; 0. |] |] ~budget:0.9 ()
  in
  let sol = Mla.run p in
  Alcotest.(check int) "one served" 1 sol.Solution.satisfied;
  Alcotest.(check (option int)) "isolated unserved" None
    (Association.ap_of sol.assoc 1)

(* ------------------------------------------------------------------ *)
(* Weighted MNU (revenue maximization)                                *)
(* ------------------------------------------------------------------ *)

let test_weighted_mnu_prefers_valuable_user () =
  (* Figure 1 at 3 Mbps: unweighted greedy serves {u2,u4,u5}. Make u1 and
     u3 premium subscribers (weight 10 each vs 1): the greedy must now
     prefer the s1 side. *)
  let p = fig1_mnu in
  let weights = [| 10.; 1.; 10.; 1.; 1. |] in
  let sol, revenue = Mnu.run_weighted ~weights p in
  Alcotest.(check bool) "budget ok" true (Solution.respects_budget p sol);
  Alcotest.(check bool) "premium users served" true
    (Association.is_served sol.Solution.assoc 0
    || Association.is_served sol.Solution.assoc 2);
  Alcotest.(check bool) "revenue beats the unweighted pick" true
    (revenue >= 10.);
  (* unweighted solution {u2,u4,u5} would only be worth 3 *)
  Alcotest.(check bool) "beats count-greedy revenue" true (revenue > 3.)

let test_weighted_mnu_all_ones_matches_unweighted () =
  let p = fig1_mnu in
  let sol, revenue =
    Mnu.run_weighted ~weights:(Array.make 5 1.) p
  in
  let plain = Mnu.run p in
  Alcotest.(check int) "same satisfied count" plain.Solution.satisfied
    sol.Solution.satisfied;
  check_float "revenue = count" (float_of_int sol.Solution.satisfied) revenue

let prop_weighted_mnu_budget =
  QCheck.Test.make ~name:"weighted MNU respects budgets" ~count:40
    (QCheck.make
       QCheck.Gen.(
         let* seed = int_range 0 1_000_000 in
         let* budget = float_range 0.05 0.5 in
         let p =
           List.hd
             (Scenario_gen.problems ~seed ~n:1
                {
                  Scenario_gen.paper_default with
                  n_aps = 8;
                  n_users = 16;
                  area_w = 500.;
                  area_h = 500.;
                })
         in
         return (Problem.with_budget p budget, seed)))
    (fun (p, seed) ->
      let rng = Random.State.make [| seed; 77 |] in
      let weights =
        Array.init (snd (Problem.dims p)) (fun _ ->
            Random.State.float rng 5.)
      in
      let sol, revenue = Mnu.run_weighted ~weights p in
      Solution.respects_budget p sol && revenue >= 0.)

(* ------------------------------------------------------------------ *)
(* Heterogeneous per-AP budgets                                        *)
(* ------------------------------------------------------------------ *)

let test_heterogeneous_budgets_mnu () =
  (* Figure 1 at 3 Mbps, but a1 is a constrained AP (budget 0.6) while a2
     is generous (1.0): a1 can no longer carry S4 (s2@4 costs 0.75), so
     the greedy must route through a2 *)
  let p = Examples.fig1 ~session_rate_mbps:3. in
  let p = Problem.with_ap_budgets p [| 0.6; 1.0 |] in
  Alcotest.(check (float 1e-12)) "a1 budget" 0.6 (Problem.ap_budget p 0);
  Alcotest.(check (float 1e-12)) "a2 budget" 1.0 (Problem.ap_budget p 1);
  let sol = Mnu.run p in
  Alcotest.(check bool) "per-AP budgets respected" true
    (Solution.respects_budget p sol);
  (* a1's load must respect its own, tighter cap *)
  Alcotest.(check bool) "a1 within 0.6" true (sol.Solution.ap_loads.(0) <= 0.6 +. 1e-9);
  (* serving u4+u5 via a2 at rate 3 costs exactly 1.0 <= a2's budget *)
  Alcotest.(check bool) "still serves at least 2" true
    (sol.Solution.satisfied >= 2)

let test_heterogeneous_budgets_ssa_and_distributed () =
  let p = Examples.fig1 ~session_rate_mbps:3. in
  let p = Problem.with_ap_budgets p [| 0.6; 1.0 |] in
  let ssa = Ssa.run p in
  Alcotest.(check bool) "ssa respects per-AP budgets" true
    (Solution.respects_budget p ssa);
  let dist, o = Distributed.mnu p in
  Alcotest.(check bool) "distributed respects per-AP budgets" true
    (Solution.respects_budget p dist);
  Alcotest.(check bool) "distributed converges" true o.Distributed.converged

let test_heterogeneous_budgets_optimal () =
  let p = Examples.fig1 ~session_rate_mbps:3. in
  let p = Problem.with_ap_budgets p [| 0.6; 1.0 |] in
  match Optimal.mnu p with
  | None -> Alcotest.fail "expected a solution"
  | Some v ->
      Alcotest.(check bool) "ILP respects per-AP budgets" true
        (Solution.respects_budget p v.Optimal.solution);
      (* brute force agrees *)
      let b = Option.get (Optimal.brute_force ~objective:Max_served p) in
      Alcotest.(check int) "matches brute force" b.Solution.satisfied
        v.Optimal.value

let test_with_budget_clears_heterogeneous () =
  let p = Examples.fig1 ~session_rate_mbps:3. in
  let p = Problem.with_ap_budgets p [| 0.6; 1.0 |] in
  let p = Problem.with_budget p 0.8 in
  Alcotest.(check (float 1e-12)) "uniform again (a1)" 0.8 (Problem.ap_budget p 0);
  Alcotest.(check (float 1e-12)) "uniform again (a2)" 0.8 (Problem.ap_budget p 1)

let test_ap_budgets_validation () =
  let p = Examples.fig1 ~session_rate_mbps:3. in
  (try
     ignore (Problem.with_ap_budgets p [| 0.5 |]);
     Alcotest.fail "expected arity failure"
   with Invalid_argument _ -> ());
  try
    ignore (Problem.with_ap_budgets p [| 0.5; -0.1 |]);
    Alcotest.fail "expected negativity failure"
  with Invalid_argument _ -> ()

(* ------------------------------------------------------------------ *)
(* Degenerate networks: no users, no APs, nothing at all              *)
(* ------------------------------------------------------------------ *)

let degenerate_problems =
  [
    ( "empty",
      Problem.make ~session_rates:[| 1. |] ~user_session:[||] ~rates:[||]
        ~budget:0.9 () );
    ( "no users",
      Problem.make ~session_rates:[| 1. |] ~user_session:[||]
        ~rates:[| [||] |] ~budget:0.9 () );
    ( "no APs",
      Problem.make ~allow_uncovered:true ~session_rates:[| 1. |]
        ~user_session:[| 0; 0 |] ~rates:[||] ~budget:0.9 () );
  ]

let test_degenerate_networks () =
  List.iter
    (fun (name, p) ->
      let check_sol algo (sol : Solution.t) =
        Alcotest.(check int) (name ^ "/" ^ algo ^ " none served") 0
          sol.Solution.satisfied;
        Alcotest.(check (float 1e-12)) (name ^ "/" ^ algo ^ " zero load") 0.
          sol.Solution.total_load
      in
      check_sol "ssa" (Ssa.run p);
      check_sol "mla" (Mla.run p);
      check_sol "mla-layered" (Mla.run_layered p);
      check_sol "mnu" (Mnu.run p);
      (match Bla.run p with
      | Some sol -> check_sol "bla" sol
      | None -> Alcotest.failf "%s: BLA found no feasible B*" name);
      check_sol "distributed" (fst (Distributed.mla p));
      (* exact solvers terminate and agree *)
      (match Optimal.mla p with
      | Some v ->
          Alcotest.(check (float 1e-12)) (name ^ " optimal MLA") 0.
            v.Optimal.value
      | None -> Alcotest.failf "%s: exact MLA failed" name);
      match Optimal.mnu p with
      | Some v -> Alcotest.(check int) (name ^ " optimal MNU") 0 v.Optimal.value
      | None -> () (* nothing servable is a legal answer *))
    degenerate_problems

let test_single_user_single_ap () =
  let p =
    Problem.make ~session_rates:[| 2. |] ~user_session:[| 0 |]
      ~rates:[| [| 12. |] |] ~budget:0.9 ()
  in
  List.iter
    (fun (algo, sol) ->
      Alcotest.(check int) (algo ^ " serves the user") 1
        sol.Solution.satisfied;
      check_float (algo ^ " load 2/12") (2. /. 12.) sol.Solution.total_load)
    [
      ("ssa", Ssa.run p);
      ("mla", Mla.run p);
      ("mnu", Mnu.run p);
      ("bla", Bla.run_exn p);
      ("dist", fst (Distributed.mla p));
    ]

(* ------------------------------------------------------------------ *)
(* Cross-algorithm invariants on random instances                     *)
(* ------------------------------------------------------------------ *)

let gen_problem =
  QCheck.Gen.(
    let* n_aps = int_range 2 10 in
    let* n_users = int_range 2 16 in
    let* n_sessions = int_range 1 4 in
    let* seed = int_range 0 1_000_000 in
    return
      (List.hd
         (Scenario_gen.problems ~seed ~n:1
            {
              Scenario_gen.paper_default with
              area_w = 500.;
              area_h = 500.;
              n_aps;
              n_users;
              n_sessions;
              ensure_coverage = true;
            })))

let arb_problem = QCheck.make gen_problem

let prop_mnu_budget =
  QCheck.Test.make ~name:"MNU respects every AP budget" ~count:80 arb_problem
    (fun p ->
      let sol = Mnu.run p in
      Solution.respects_budget p sol && Solution.in_range_ok p sol)

let prop_mla_covers_all =
  QCheck.Test.make ~name:"MLA serves every coverable user" ~count:80
    arb_problem (fun p ->
      let sol = Mla.run p in
      sol.Solution.satisfied = List.length (Problem.coverable_users p)
      && Solution.in_range_ok p sol)

let prop_bla_covers_all =
  QCheck.Test.make ~name:"BLA serves every coverable user" ~count:60
    arb_problem (fun p ->
      match Bla.run p with
      | None -> false
      | Some sol ->
          sol.Solution.satisfied = List.length (Problem.coverable_users p)
          && Solution.in_range_ok p sol)

let prop_mla_within_ln_bound_of_ssa =
  QCheck.Test.make
    ~name:"MLA total within (ln n + 1) of SSA total when both serve all"
    ~count:80 arb_problem (fun p ->
      let ssa = Ssa.run p and mla = Mla.run p in
      QCheck.assume
        (ssa.Solution.satisfied = List.length (Problem.coverable_users p));
      mla.Solution.total_load
      <= (ssa.Solution.total_load *. (log (float_of_int 16) +. 1.)) +. 1e-9)

let prop_ssa_in_range =
  QCheck.Test.make ~name:"SSA users always served in range" ~count:80
    arb_problem (fun p ->
      let sol = Ssa.run p in
      Solution.in_range_ok p sol && Solution.respects_budget p sol)

let prop_solution_metrics_consistent =
  QCheck.Test.make ~name:"solution metrics agree with Loads" ~count:80
    arb_problem (fun p ->
      let sol = Mla.run p in
      feq sol.Solution.total_load (Loads.total_load p sol.assoc)
      && feq sol.Solution.max_load (Loads.max_load p sol.assoc)
      && sol.Solution.satisfied = Association.served_count sol.assoc)

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_mnu_budget;
      prop_weighted_mnu_budget;
      prop_mla_covers_all;
      prop_mla_variants_cover_everyone;
      prop_bla_covers_all;
      prop_mla_within_ln_bound_of_ssa;
      prop_ssa_in_range;
      prop_solution_metrics_consistent;
    ]

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "mcast_core"
    [
      ( "reduction",
        [
          tc "fig2 subsets" test_reduction_fig2_subsets;
          tc "fig5 costs" test_reduction_fig5_costs;
          tc "budget filter" test_reduction_budget_filter;
          tc "association mapping" test_reduction_association_mapping;
        ] );
      ( "ssa",
        [
          tc "fig1 walk-through (2 users)" test_ssa_fig1_mnu;
          tc "unsatisfied count" test_solution_unsatisfied;
          tc "serves all when feasible" test_ssa_serves_all_when_feasible;
        ] );
      ( "mnu",
        [
          tc "fig1 walk-through (3 users)" test_mnu_fig1_walkthrough;
          tc "beats SSA on fig1" test_mnu_beats_ssa_on_fig1;
          tc "easy instance serves all" test_mnu_serves_everyone_when_easy;
          tc "single session all served" test_mnu_single_session_all_served;
          tc "free-rider extension" test_mnu_free_riders;
        ] );
      ( "bla",
        [
          tc "fig1 walk-through (7/12)" test_bla_fig1_walkthrough;
          tc "covers all coverable" test_bla_covers_all_coverable;
          tc "balances a hotspot" test_bla_improves_on_ssa_shape;
        ] );
      ( "mla",
        [
          tc "fig1 walk-through (7/12)" test_mla_fig1_walkthrough;
          tc "layered variant" test_mla_layered_fig1;
          tc "lp-rounding variant" test_mla_lp_rounding_fig1;
          tc "uncoverable stay unserved" test_mla_uncoverable_users_stay_unserved;
        ] );
      ( "weighted mnu",
        [
          tc "prefers valuable users" test_weighted_mnu_prefers_valuable_user;
          tc "all-ones = unweighted" test_weighted_mnu_all_ones_matches_unweighted;
        ] );
      ( "per-AP budgets",
        [
          tc "MNU with tight a1" test_heterogeneous_budgets_mnu;
          tc "SSA & distributed" test_heterogeneous_budgets_ssa_and_distributed;
          tc "optimal & brute force" test_heterogeneous_budgets_optimal;
          tc "with_budget clears" test_with_budget_clears_heterogeneous;
          tc "validation" test_ap_budgets_validation;
        ] );
      ( "degenerate",
        [
          tc "empty networks" test_degenerate_networks;
          tc "single user, single AP" test_single_user_single_ap;
        ] );
      ("properties", qcheck_cases);
    ]
