(* The sparse/shard differential battery (PR 6): the range-limited
   sparse representation and the geometric sharding are proven
   bit-identical to the dense paths.

   - Representation equality (qcheck): a scenario compiled dense
     (Scenario.to_problem) and sparse (Scenario.to_problem_sparse, via
     the bucket grid) agree on every accessor: rate matrices, in-range
     signals, neighbor lists, receivers, distinct rates.
   - Solver differential (qcheck): every solver — SSA, MNU, MLA, BLA,
     Distributed Sequential and Simultaneous, Online settle — produces
     byte-identical associations and load vectors on the dense and
     sparse views of the same instance.
   - Churn replays: a random script replayed through Sim.Churn on both
     views yields identical step metrics, final association and loads.
   - Grid properties: no false negatives at the exact reach boundary or
     on cell edges, index-sorted probes, position-permutation
     invariance.
   - Shard/halo: sharded solves equal the unsharded sequential solve on
     random instances and on a fig9a-size scenario at --jobs 1/2/4;
     one 2000x40000 city instance is pinned by a golden j1==j4 digest —
     an instance whose dense matrix (2000*40000 floats) is never
     allocated anywhere in the battery.
   - validate: empty candidate lists are rejected on both construction
     paths unless explicitly allowed. *)

open Wlan_model
open Mcast_core

let digest s = Digest.to_hex (Digest.string s)

let read_golden path =
  let ic = open_in path in
  let line = input_line ic in
  close_in ic;
  String.trim line

let check_float_arrays what a b =
  Alcotest.(check int) (what ^ " length") (Array.length a) (Array.length b);
  Array.iteri
    (fun i x ->
      if not (Float.equal x b.(i)) then
        Alcotest.failf "%s: index %d differs: %.17g vs %.17g" what i x b.(i))
    a

let fail_if what cond = if cond then Alcotest.failf "%s" what

(* Seed-indexed random geometric case, compiled both ways. Coverage is
   deliberately not ensured (uncovered users must behave identically),
   and placement/popularity/budget vary. [rate_model] swaps the
   link-rate model (default: the Table 1 ladder). *)
let case ?rate_model ~seed () =
  let rng = Random.State.make [| seed; 0x59a25e |] in
  let n_aps = 1 + Random.State.int rng 14 in
  let n_users = 1 + Random.State.int rng 30 in
  let n_sessions = 1 + Random.State.int rng 3 in
  let budget = [| 0.3; 0.9; 2.0 |].(Random.State.int rng 3) in
  let placement =
    if Random.State.bool rng then Scenario_gen.Uniform
    else Scenario_gen.Clustered { hotspots = 2; sigma_m = 80. }
  in
  let cfg =
    {
      Scenario_gen.paper_default with
      area_w = 500.;
      area_h = 500.;
      n_aps;
      n_users;
      n_sessions;
      budget;
      placement;
      rate_model;
      ensure_coverage = false;
    }
  in
  let sc = Scenario_gen.generate ~rng:(Scenario_gen.scenario_rng ~seed 0) cfg in
  (sc, Scenario.to_problem sc, Scenario.to_problem_sparse sc)

(* ------------------------------------------------------------------ *)
(* Representation equality                                             *)
(* ------------------------------------------------------------------ *)

let reprs_agree ?rate_model seed =
  let _, pd, ps = case ?rate_model ~seed () in
  fail_if "dense view flagged sparse" (Problem.is_sparse pd);
  fail_if "sparse view flagged dense" (not (Problem.is_sparse ps));
  fail_if "rate matrices differ"
    (Problem.rates_matrix pd <> Problem.rates_matrix ps);
  (* to_sparse of the dense compile = the grid-built sparse compile *)
  fail_if "to_sparse(dense) rate matrix differs"
    (Problem.rates_matrix (Problem.to_sparse pd) <> Problem.rates_matrix ps);
  let n_aps, n_users = Problem.dims pd in
  fail_if "dims differ" (Problem.dims ps <> (n_aps, n_users));
  for u = 0 to n_users - 1 do
    fail_if "neighbor lists differ"
      (Problem.neighbor_aps pd u <> Problem.neighbor_aps ps u);
    fail_if "signal-ordered neighbors differ"
      (Problem.neighbors_by_signal pd u <> Problem.neighbors_by_signal ps u);
    fail_if "strongest AP differs"
      (Problem.strongest_ap pd u <> Problem.strongest_ap ps u);
    (* signal must agree on every in-range pair (out-of-range pairs are
       never consulted by any algorithm; the sparse form answers
       neg_infinity there) *)
    List.iter
      (fun a ->
        if
          not
            (Float.equal
               (Problem.signal pd ~ap:a ~user:u)
               (Problem.signal ps ~ap:a ~user:u))
        then Alcotest.failf "signal differs at a%d-u%d" a u)
      (Problem.neighbor_aps pd u)
  done;
  fail_if "coverable users differ"
    (Problem.coverable_users pd <> Problem.coverable_users ps);
  fail_if "distinct rates differ"
    (Problem.distinct_rates pd <> Problem.distinct_rates ps);
  for a = 0 to n_aps - 1 do
    for s = 0 to Problem.n_sessions pd - 1 do
      List.iter
        (fun r ->
          fail_if "receivers differ"
            (Problem.receivers pd ~ap:a ~session:s ~min_rate:r
            <> Problem.receivers ps ~ap:a ~session:s ~min_rate:r))
        (Problem.distinct_rates pd)
    done
  done;
  fail_if "basic-rate restrictions differ"
    (Problem.rates_matrix (Problem.restrict_to_basic_rate pd)
    <> Problem.rates_matrix (Problem.restrict_to_basic_rate ps));
  true

let qcheck_reprs_agree =
  QCheck.Test.make ~name:"dense and sparse compilations agree everywhere"
    ~count:60
    QCheck.(int_range 0 10_000)
    reprs_agree

(* ------------------------------------------------------------------ *)
(* Solver differential                                                 *)
(* ------------------------------------------------------------------ *)

let check_solutions label (a : Solution.t) (b : Solution.t) =
  if not (Association.equal a.Solution.assoc b.Solution.assoc) then
    Alcotest.failf "%s: associations differ" label;
  Alcotest.(check int) (label ^ " satisfied") a.Solution.satisfied
    b.Solution.satisfied;
  check_float_arrays (label ^ " ap_loads") a.Solution.ap_loads
    b.Solution.ap_loads;
  if not (Float.equal a.Solution.total_load b.Solution.total_load) then
    Alcotest.failf "%s: total loads differ" label;
  if not (Float.equal a.Solution.max_load b.Solution.max_load) then
    Alcotest.failf "%s: max loads differ" label

let solver_differential ?rate_model ~label run seed =
  let _, pd, ps = case ?rate_model ~seed () in
  check_solutions label (run pd) (run ps);
  true

let qcheck_solver ~label run =
  QCheck.Test.make
    ~name:(label ^ ": dense = sparse, associations and loads")
    ~count:40
    QCheck.(int_range 0 10_000)
    (solver_differential ~label run)

let qcheck_ssa = qcheck_solver ~label:"SSA" Ssa.run
let qcheck_mnu = qcheck_solver ~label:"MNU" (fun p -> Mnu.run p)
let qcheck_mnu_lazy = qcheck_solver ~label:"MNU-lazy" (Mnu.run ~engine:`Lazy)
let qcheck_mla = qcheck_solver ~label:"MLA" Mla.run
let qcheck_mla_layered = qcheck_solver ~label:"MLA-layered" Mla.run_layered

let qcheck_bla =
  QCheck.Test.make ~name:"BLA: dense = sparse, associations and loads"
    ~count:40
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let _, pd, ps = case ~seed () in
      (match (Bla.run pd, Bla.run ps) with
      | None, None -> ()
      | Some a, Some b -> check_solutions "BLA" a b
      | Some _, None -> Alcotest.fail "BLA: dense feasible, sparse not"
      | None, Some _ -> Alcotest.fail "BLA: sparse feasible, dense not");
      true)

let distributed_differential ?rate_model ~scheduler ~objective seed =
  let _, pd, ps = case ?rate_model ~seed () in
  let a = Distributed.run ~max_rounds:300 ~scheduler ~objective pd in
  let b = Distributed.run ~max_rounds:300 ~scheduler ~objective ps in
  if not (Association.equal a.Distributed.assoc b.Distributed.assoc) then
    Alcotest.fail "associations differ";
  Alcotest.(check int) "rounds" a.Distributed.rounds b.Distributed.rounds;
  Alcotest.(check int) "moves" a.Distributed.moves b.Distributed.moves;
  Alcotest.(check bool) "converged" a.Distributed.converged
    b.Distributed.converged;
  Alcotest.(check bool) "oscillated" a.Distributed.oscillated
    b.Distributed.oscillated;
  check_float_arrays "loads"
    (Loads.ap_loads pd a.Distributed.assoc)
    (Loads.ap_loads ps b.Distributed.assoc);
  true

let qcheck_distributed ~label ~scheduler ~objective =
  QCheck.Test.make
    ~name:(label ^ ": dense = sparse, full outcome")
    ~count:40
    QCheck.(int_range 0 10_000)
    (distributed_differential ~scheduler ~objective)

let qcheck_dist_seq_total =
  qcheck_distributed ~label:"Distributed Sequential (total-load)"
    ~scheduler:Distributed.Sequential ~objective:Distributed.Min_total_load

let qcheck_dist_seq_vector =
  qcheck_distributed ~label:"Distributed Sequential (load-vector)"
    ~scheduler:Distributed.Sequential ~objective:Distributed.Min_load_vector

let qcheck_dist_sim =
  qcheck_distributed ~label:"Distributed Simultaneous"
    ~scheduler:Distributed.Simultaneous ~objective:Distributed.Min_total_load

let qcheck_online =
  QCheck.Test.make ~name:"Online settle: dense = sparse" ~count:40
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let _, pd, ps = case ~seed () in
      let run p =
        let net =
          Distributed.Online.create ~objective:Distributed.Min_load_vector p
        in
        let stats = Distributed.Online.settle ~max_rounds:300 net in
        (net, stats)
      in
      let na, sa = run pd and nb, sb = run ps in
      if
        not
          (Association.equal
             (Distributed.Online.assoc na)
             (Distributed.Online.assoc nb))
      then Alcotest.fail "associations differ";
      Alcotest.(check int) "moves" sa.Distributed.Online.moves
        sb.Distributed.Online.moves;
      Alcotest.(check int) "rounds" sa.Distributed.Online.rounds
        sb.Distributed.Online.rounds;
      check_float_arrays "loads"
        (Array.copy (Distributed.Online.loads na))
        (Array.copy (Distributed.Online.loads nb));
      true)

(* ------------------------------------------------------------------ *)
(* Path-loss models: dense = sparse under every model family           *)
(* ------------------------------------------------------------------ *)

(* Each Rate_model family, including a low-antenna two-ray whose d⁴
   crossover (≈ 486 m at 5.8 GHz) falls inside the 500 m test area, so
   the ground-reflection branch is actually exercised, and log-distance
   with seeded shadowing (per-link split-RNG draws). The sparse compile
   sizes its bucket grid from the model's max_range, so these pin the
   grid against every range the models produce. *)
let phy_models =
  [
    ("friis", Rate_model.friis ());
    ("two-ray", Rate_model.two_ray ());
    ("two-ray-low", Rate_model.two_ray ~ap_height_m:2. ~user_height_m:1. ());
    ("log-distance", Rate_model.log_distance ());
    ( "log-shadow",
      Rate_model.log_distance
        ~shadowing:{ Rate_model.sigma_db = 4.; seed = 7 }
        () );
  ]

let qcheck_model_reprs =
  List.map
    (fun (name, m) ->
      QCheck.Test.make
        ~name:("dense and sparse compilations agree under " ^ name)
        ~count:25
        QCheck.(int_range 0 10_000)
        (reprs_agree ~rate_model:m))
    phy_models

let qcheck_model_solvers =
  List.concat_map
    (fun (name, m) ->
      [
        QCheck.Test.make
          ~name:("MLA: dense = sparse under " ^ name)
          ~count:15
          QCheck.(int_range 0 10_000)
          (solver_differential ~rate_model:m ~label:("MLA/" ^ name) Mla.run);
        QCheck.Test.make
          ~name:("MNU: dense = sparse under " ^ name)
          ~count:15
          QCheck.(int_range 0 10_000)
          (solver_differential ~rate_model:m ~label:("MNU/" ^ name) (fun p ->
               Mnu.run p));
        QCheck.Test.make
          ~name:("Distributed: dense = sparse under " ^ name)
          ~count:15
          QCheck.(int_range 0 10_000)
          (distributed_differential ~rate_model:m
             ~scheduler:Distributed.Sequential
             ~objective:Distributed.Min_load_vector);
      ])
    phy_models

(* ------------------------------------------------------------------ *)
(* Churn-script replays                                                *)
(* ------------------------------------------------------------------ *)

let check_steps (a : Wlan_sim.Churn.step list) (b : Wlan_sim.Churn.step list) =
  Alcotest.(check int) "step count" (List.length a) (List.length b);
  List.iter2
    (fun (x : Wlan_sim.Churn.step) (y : Wlan_sim.Churn.step) ->
      let same =
        Float.equal x.time y.time
        && x.events = y.events
        && x.reassociated = y.reassociated
        && x.interrupted = y.interrupted
        && x.rounds = y.rounds && x.moves = y.moves
        && x.converged = y.converged
        && x.oscillated = y.oscillated
        && Float.equal x.total_load y.total_load
        && Float.equal x.max_load y.max_load
        && Float.equal x.opt_total_load y.opt_total_load
        && Float.equal x.opt_max_load y.opt_max_load
      in
      if not same then Alcotest.failf "step at t=%g differs" x.time)
    a b

let churn_differential ~objective seed =
  let _, pd, ps = case ~seed () in
  let n_aps, n_users = Problem.dims pd in
  let rng = Random.State.make [| seed; 0x5c21b7 |] in
  let script =
    Churn_script.random ~rng ~n_aps ~n_users
      { Churn_script.default_gen with n_events = 5 + Random.State.int rng 25 }
  in
  let run p = Wlan_sim.Churn.run ~baseline:true ~objective ~script p in
  let a = run pd and b = run ps in
  if not (Association.equal a.Wlan_sim.Churn.assoc b.Wlan_sim.Churn.assoc)
  then Alcotest.fail "final associations differ";
  check_float_arrays "final loads" a.Wlan_sim.Churn.loads
    b.Wlan_sim.Churn.loads;
  check_steps a.Wlan_sim.Churn.steps b.Wlan_sim.Churn.steps;
  Alcotest.(check int) "total rounds" a.Wlan_sim.Churn.total_rounds
    b.Wlan_sim.Churn.total_rounds;
  Alcotest.(check int) "total moves" a.Wlan_sim.Churn.total_moves
    b.Wlan_sim.Churn.total_moves;
  (* the final effective instances answer identically too *)
  let ea = a.Wlan_sim.Churn.effective and eb = b.Wlan_sim.Churn.effective in
  fail_if "effective rate matrices differ"
    (Problem.rates_matrix ea <> Problem.rates_matrix eb);
  true

let qcheck_churn_mla =
  QCheck.Test.make ~name:"churn replay: dense = sparse (MLA rule)" ~count:30
    QCheck.(int_range 0 10_000)
    (churn_differential ~objective:Distributed.Min_total_load)

let qcheck_churn_bla =
  QCheck.Test.make ~name:"churn replay: dense = sparse (BLA rule)" ~count:30
    QCheck.(int_range 0 10_000)
    (churn_differential ~objective:Distributed.Min_load_vector)

(* ------------------------------------------------------------------ *)
(* Spatial-grid properties                                             *)
(* ------------------------------------------------------------------ *)

(* The hard cases by construction: users exactly at the 802.11a reach
   boundary (200 m), exactly at interior tier thresholds, and exactly
   on grid cell edges (the grid cell is the range, so 200-multiples are
   both). *)
let test_grid_exact_boundaries () =
  let range = Rate_table.range Rate_table.default in
  Alcotest.(check (float 0.)) "802.11a range" 200. range;
  let ap_pos = [| Point.v 0. 0.; Point.v 400. 0.; Point.v 200. 200. |] in
  (* user on a cell corner, exactly [range] from APs 0 and 1, and
     exactly 200 from AP 2 *)
  let user = Point.v 200. 0. in
  let sc =
    Scenario.make ~area_w:400. ~area_h:400. ~ap_pos ~user_pos:[| user |]
      ~user_session:[| 0 |]
      ~sessions:(Session.uniform ~n:1 ~rate_mbps:1.)
      ~budget:0.9 ()
  in
  let ps = Scenario.to_problem_sparse sc in
  Alcotest.(check (list int)) "all three boundary APs found" [ 0; 1; 2 ]
    (Problem.neighbor_aps ps 0);
  (* the boundary rate is the lowest tier *)
  Alcotest.(check (float 0.)) "boundary rate" 6.
    (Problem.link_rate ps ~ap:0 ~user:0);
  (* one millimeter past the reach: gone, exactly like the dense path *)
  let sc' =
    Scenario.make ~area_w:400. ~area_h:400. ~ap_pos
      ~user_pos:[| Point.v 200.001 0. |] ~user_session:[| 0 |]
      ~sessions:(Session.uniform ~n:1 ~rate_mbps:1.)
      ~budget:0.9 ()
  in
  let pd' = Scenario.to_problem sc' and ps' = Scenario.to_problem_sparse sc' in
  Alcotest.(check (list int)) "past-reach agrees with dense"
    (Problem.neighbor_aps pd' 0)
    (Problem.neighbor_aps ps' 0)

let arb_points =
  QCheck.make
    QCheck.Gen.(
      let* n = int_range 1 40 in
      let* seed = int_range 0 1_000_000 in
      return
        (let rng = Random.State.make [| seed; 0x9a1d |] in
         Array.init n (fun _ ->
             (* cluster near cell edges: multiples of the 200 m cell are
                overrepresented to stress boundary handling *)
             let coord () =
               if Random.State.bool rng then
                 200. *. float_of_int (Random.State.int rng 5)
               else Random.State.float rng 1000.
             in
             Point.v (coord ()) (coord ()))))

let qcheck_grid_no_false_negatives =
  QCheck.Test.make ~name:"grid probe: every in-range point is returned"
    ~count:200 arb_points (fun pts ->
      let cell = 200. in
      let grid = Sparse.Grid.build ~cell pts in
      Array.for_all
        (fun q ->
          let found = Sparse.Grid.probe grid q in
          Array.for_all
            (fun i ->
              Point.dist pts.(i) q > cell || List.mem i found)
            (Array.init (Array.length pts) Fun.id))
        pts)

let qcheck_grid_sorted =
  QCheck.Test.make ~name:"grid probe: strictly ascending indices" ~count:200
    arb_points (fun pts ->
      let grid = Sparse.Grid.build ~cell:200. pts in
      Array.for_all
        (fun q ->
          let rec ascending = function
            | a :: (b :: _ as rest) -> a < b && ascending rest
            | _ -> true
          in
          ascending (Sparse.Grid.probe grid q))
        pts)

let qcheck_grid_permutation_invariant =
  QCheck.Test.make
    ~name:"grid build: position-permutation invariant candidate sets"
    ~count:200 arb_points (fun pts ->
      let n = Array.length pts in
      (* deterministic pseudo-shuffle of the indices *)
      let perm = Array.init n Fun.id in
      let rng = Random.State.make [| n; 0x7e21 |] in
      for i = n - 1 downto 1 do
        let j = Random.State.int rng (i + 1) in
        let t = perm.(i) in
        perm.(i) <- perm.(j);
        perm.(j) <- t
      done;
      let shuffled = Array.map (fun i -> pts.(i)) perm in
      let g1 = Sparse.Grid.build ~cell:200. pts in
      let g2 = Sparse.Grid.build ~cell:200. shuffled in
      Array.for_all
        (fun q ->
          let original = Sparse.Grid.probe g1 q in
          (* map shuffled indices back to original ones *)
          let mapped =
            List.sort Int.compare
              (List.map (fun i -> perm.(i)) (Sparse.Grid.probe g2 q))
          in
          original = mapped)
        pts)

(* ------------------------------------------------------------------ *)
(* Shard/halo reconciliation                                           *)
(* ------------------------------------------------------------------ *)

let shard_matches_unsharded ~objective seed =
  let sc, pd, ps = case ~seed () in
  let unsharded =
    Distributed.run ~scheduler:Distributed.Sequential ~objective ps
  in
  let check label (r : Shard.result) =
    if not (Association.equal r.Shard.assoc unsharded.Distributed.assoc) then
      Alcotest.failf "%s: association differs from unsharded" label;
    Alcotest.(check int) (label ^ " moves") unsharded.Distributed.moves
      r.Shard.moves;
    check_float_arrays (label ^ " loads")
      (Loads.ap_loads ps unsharded.Distributed.assoc)
      (Loads.ap_loads ps r.Shard.assoc)
  in
  check "candidate plan (sparse)" (Shard.solve ~objective ps);
  check "candidate plan (dense)" (Shard.solve ~objective pd);
  let radius = 2. *. Rate_table.range sc.Scenario.rate_table in
  let gplan =
    Shard.plan_geometric ~ap_pos:sc.Scenario.ap_pos
      ~interaction_radius:radius ps
  in
  check "geometric plan" (Shard.solve ~plan:gplan ~objective ps);
  true

let qcheck_shard_total =
  QCheck.Test.make ~name:"sharded solve = unsharded (total-load)" ~count:40
    QCheck.(int_range 0 10_000)
    (shard_matches_unsharded ~objective:Distributed.Min_total_load)

let qcheck_shard_vector =
  QCheck.Test.make ~name:"sharded solve = unsharded (load-vector)" ~count:40
    QCheck.(int_range 0 10_000)
    (shard_matches_unsharded ~objective:Distributed.Min_load_vector)

(* fig9a-size: the paper's 200x400 scale, sharded across pool domains. *)
let test_shard_fig9a_jobs () =
  let sc =
    Scenario_gen.generate
      ~rng:(Scenario_gen.scenario_rng ~seed:2007 0)
      Scenario_gen.paper_default
  in
  let ps = Scenario.to_problem_sparse sc in
  let objective = Distributed.Min_load_vector in
  let unsharded =
    Distributed.run ~scheduler:Distributed.Sequential ~objective ps
  in
  List.iter
    (fun jobs ->
      let r =
        Harness.Pool.with_pool ~jobs (fun pool ->
            Shard.solve ~fanout:(Harness.Pool.run pool) ~objective ps)
      in
      if not (Association.equal r.Shard.assoc unsharded.Distributed.assoc)
      then Alcotest.failf "jobs=%d: association differs from unsharded" jobs;
      check_float_arrays
        (Fmt.str "jobs=%d loads" jobs)
        (Loads.ap_loads ps unsharded.Distributed.assoc)
        (Loads.ap_loads ps r.Shard.assoc))
    [ 1; 2; 4 ]

(* Same fan-out discipline under a shadowed path-loss model: the
   geometric plan's interaction radius comes from the model's
   max_range (via Scenario.range), and the merged solve is identical
   to the unsharded one at jobs 1, 2 and 4. *)
let test_shard_phy_jobs () =
  let model =
    Rate_model.log_distance
      ~shadowing:{ Rate_model.sigma_db = 4.; seed = 11 }
      ()
  in
  let sc =
    Scenario_gen.generate
      ~rng:(Scenario_gen.scenario_rng ~seed:2008 0)
      {
        Scenario_gen.paper_default with
        n_aps = 60;
        n_users = 200;
        rate_model = Some model;
        ensure_coverage = false;
      }
  in
  let ps = Scenario.to_problem_sparse sc in
  let objective = Distributed.Min_load_vector in
  let unsharded =
    Distributed.run ~scheduler:Distributed.Sequential ~objective ps
  in
  let pl =
    Shard.plan_geometric ~ap_pos:sc.Scenario.ap_pos
      ~interaction_radius:(2. *. Scenario.range sc)
      ps
  in
  List.iter
    (fun jobs ->
      let r =
        Harness.Pool.with_pool ~jobs (fun pool ->
            Shard.solve ~plan:pl ~fanout:(Harness.Pool.run pool) ~objective ps)
      in
      if not (Association.equal r.Shard.assoc unsharded.Distributed.assoc)
      then Alcotest.failf "jobs=%d: association differs from unsharded" jobs;
      check_float_arrays
        (Fmt.str "jobs=%d loads" jobs)
        (Loads.ap_loads ps unsharded.Distributed.assoc)
        (Loads.ap_loads ps r.Shard.assoc))
    [ 1; 2; 4 ]

(* The city golden: 2000 APs x 40000 users, never dense anywhere. The
   digest covers the merged association and the shard structure; equal
   at jobs 1 and 4 and pinned to the committed golden. *)
let city_digest ~jobs ps pl =
  let r =
    Harness.Pool.with_pool ~jobs (fun pool ->
        Shard.solve ~plan:pl ~fanout:(Harness.Pool.run pool) ~max_rounds:8
          ~objective:Distributed.Min_load_vector ps)
  in
  let buf = Buffer.create (1 lsl 18) in
  Buffer.add_string buf
    (Fmt.str "city 2000x40000 shards=%d rounds=%d moves=%d@." r.Shard.n_shards
       r.Shard.rounds r.Shard.moves);
  List.iter
    (fun (sh : Shard.shard) ->
      Buffer.add_string buf
        (Fmt.str "shard %d: %d aps %d users@." sh.Shard.id
           (Array.length sh.Shard.aps)
           (Array.length sh.Shard.users)))
    pl.Shard.shards;
  Array.iter (fun a -> Buffer.add_string buf (Fmt.str "%d," a)) r.Shard.assoc;
  digest (Buffer.contents buf)

let test_city_golden () =
  let sc = Scenario_gen.city ~seed:2007 Scenario_gen.city_default in
  let ps = Scenario.to_problem_sparse sc in
  let pl =
    Shard.plan_geometric ~ap_pos:sc.Scenario.ap_pos
      ~interaction_radius:(2. *. Rate_table.range sc.Scenario.rate_table)
      ps
  in
  let d1 = city_digest ~jobs:1 ps pl in
  let d4 = city_digest ~jobs:4 ps pl in
  Alcotest.(check string) "j1 = j4" d1 d4;
  Alcotest.(check string) "matches committed golden"
    (read_golden "golden/city_shard.digest")
    d1

(* ------------------------------------------------------------------ *)
(* validate: empty candidate lists                                     *)
(* ------------------------------------------------------------------ *)

let test_validate_rejects_uncovered () =
  let expect_reject what f =
    try
      ignore (f ());
      Alcotest.failf "%s: expected Invalid_argument" what
    with Invalid_argument msg ->
      if not (Astring.String.is_infix ~affix:"empty candidate list" msg) then
        Alcotest.failf "%s: unexpected message %S" what msg
  in
  (* dense path *)
  expect_reject "dense" (fun () ->
      Problem.make ~session_rates:[| 1. |] ~user_session:[| 0; 0 |]
        ~rates:[| [| 6.; 0. |] |] ~budget:0.9 ());
  (* sparse path: a slot-less user and a user whose only slot is a lost
     link are both uncovered *)
  expect_reject "sparse, no slots" (fun () ->
      Problem.make_sparse ~session_rates:[| 1. |] ~user_session:[| 0; 0 |]
        ~sparse:(Sparse.make ~n_aps:1 ~links:[| [ (0, 6., 6.) ]; [] |])
        ~budget:0.9 ());
  expect_reject "sparse, lost link" (fun () ->
      Problem.make_sparse ~session_rates:[| 1. |] ~user_session:[| 0; 0 |]
        ~sparse:
          (Sparse.make ~n_aps:1 ~links:[| [ (0, 6., 6.) ]; [ (0, 0., 6.) ] |])
        ~budget:0.9 ());
  (* the geometric escape hatch accepts both *)
  let pd =
    Problem.make ~allow_uncovered:true ~session_rates:[| 1. |]
      ~user_session:[| 0; 0 |] ~rates:[| [| 6.; 0. |] |] ~budget:0.9 ()
  in
  let ps =
    Problem.make_sparse ~allow_uncovered:true ~session_rates:[| 1. |]
      ~user_session:[| 0; 0 |]
      ~sparse:(Sparse.make ~n_aps:1 ~links:[| [ (0, 6., 6.) ]; [] |])
      ~budget:0.9 ()
  in
  Alcotest.(check (list int)) "dense coverable" [ 0 ]
    (Problem.coverable_users pd);
  Alcotest.(check (list int)) "sparse coverable" [ 0 ]
    (Problem.coverable_users ps)

let test_sparse_cannot_grow () =
  let s = Sparse.make ~n_aps:2 ~links:[| [ (0, 6., 6.) ] |] in
  (* re-arming a lost slot and zeroing an absent link are fine *)
  Sparse.set_rate s ~ap:0 ~user:0 0.;
  Sparse.set_rate s ~ap:0 ~user:0 9.;
  Sparse.set_rate s ~ap:1 ~user:0 0.;
  Alcotest.(check (float 0.)) "re-armed" 9. (Sparse.link_rate s ~ap:0 ~user:0);
  (* growing an absent link is not *)
  try
    Sparse.set_rate s ~ap:1 ~user:0 6.;
    Alcotest.fail "expected Invalid_argument"
  with Invalid_argument _ -> ()

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [
      qcheck_reprs_agree;
      qcheck_ssa;
      qcheck_mnu;
      qcheck_mnu_lazy;
      qcheck_mla;
      qcheck_mla_layered;
      qcheck_bla;
      qcheck_dist_seq_total;
      qcheck_dist_seq_vector;
      qcheck_dist_sim;
      qcheck_online;
      qcheck_churn_mla;
      qcheck_churn_bla;
      qcheck_grid_no_false_negatives;
      qcheck_grid_sorted;
      qcheck_grid_permutation_invariant;
      qcheck_shard_total;
      qcheck_shard_vector;
    ]

let qcheck_model_cases =
  List.map QCheck_alcotest.to_alcotest
    (qcheck_model_reprs @ qcheck_model_solvers)

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "sparse"
    [
      ("differential", qcheck_cases);
      ("phy_models", qcheck_model_cases);
      ( "grid",
        [ tc "exact reach and cell boundaries" test_grid_exact_boundaries ] );
      ( "shard",
        [
          tc "fig9a scale, jobs 1/2/4" test_shard_fig9a_jobs;
          tc "city 2000x40000 golden, j1 = j4" test_city_golden;
          tc "path-loss model, jobs 1/2/4" test_shard_phy_jobs;
        ] );
      ( "validate",
        [
          tc "empty candidate lists rejected" test_validate_rejects_uncovered;
          tc "sparse slots cannot grow" test_sparse_cannot_grow;
        ] );
    ]
