(* Tests for the wlan_model library: geometry, rate adaptation (Table 1),
   problem instances, associations and multicast-load accounting. *)

open Wlan_model

let feq ?(eps = 1e-9) a b = Float.abs (a -. b) <= eps

let check_float ?eps msg expected actual =
  if not (feq ?eps expected actual) then
    Alcotest.failf "%s: expected %.12g, got %.12g" msg expected actual

(* ------------------------------------------------------------------ *)
(* Point                                                              *)
(* ------------------------------------------------------------------ *)

let test_point_dist () =
  check_float "3-4-5 triangle" 5. (Point.dist (Point.v 0. 0.) (Point.v 3. 4.));
  check_float "self distance" 0. (Point.dist (Point.v 1. 2.) (Point.v 1. 2.));
  Alcotest.(check bool) "within true" true
    (Point.within 5. (Point.v 0. 0.) (Point.v 3. 4.));
  Alcotest.(check bool) "within false" false
    (Point.within 4.99 (Point.v 0. 0.) (Point.v 3. 4.))

let test_point_dist_symmetric () =
  let a = Point.v 10. 20. and b = Point.v 33. 7. in
  check_float "symmetry" (Point.dist a b) (Point.dist b a)

let test_point_random_in_bounds () =
  let rng = Random.State.make [| 42 |] in
  for _ = 1 to 100 do
    let p = Point.random ~rng ~w:100. ~h:50. in
    if p.Point.x < 0. || p.Point.x > 100. || p.Point.y < 0. || p.Point.y > 50.
    then Alcotest.fail "random point out of bounds"
  done

(* ------------------------------------------------------------------ *)
(* Rate_table                                                         *)
(* ------------------------------------------------------------------ *)

let test_table1_thresholds () =
  (* the paper's Table 1, one check per column *)
  let expect d rate =
    match Rate_table.rate_at_distance Rate_table.default d with
    | Some r -> check_float (Fmt.str "rate at %gm" d) rate r
    | None -> Alcotest.failf "no rate at %gm" d
  in
  expect 35. 54.;
  expect 40. 48.;
  expect 60. 36.;
  expect 85. 24.;
  expect 105. 18.;
  expect 145. 12.;
  expect 200. 6.;
  (* strictly between thresholds *)
  expect 36. 48.;
  expect 100. 18.;
  expect 150. 6.;
  expect 0. 54.

let test_table1_out_of_range () =
  Alcotest.(check (option (float 0.))) "beyond 200m" None
    (Rate_table.rate_at_distance Rate_table.default 200.1)

let test_rate_monotone_in_distance () =
  (* rate never increases with distance *)
  let prev = ref infinity in
  let d = ref 0. in
  while !d <= 210. do
    (match Rate_table.rate_at_distance Rate_table.default !d with
    | Some r ->
        if r > !prev then Alcotest.fail "rate increased with distance";
        prev := r
    | None -> prev := 0.);
    d := !d +. 0.5
  done

let test_basic_rate_and_range () =
  check_float "basic rate" 6. (Rate_table.basic_rate Rate_table.default);
  check_float "range" 200. (Rate_table.range Rate_table.default)

let test_basic_only () =
  let t = Rate_table.basic_only Rate_table.default in
  Alcotest.(check int) "one entry" 1 (List.length (Rate_table.entries t));
  check_float "basic rate at close range"
    6.
    (Option.get (Rate_table.rate_at_distance t 10.));
  check_float "same range" 200. (Rate_table.range t)

let test_scale_thresholds () =
  let t = Rate_table.scale_thresholds 0.5 Rate_table.default in
  check_float "halved range" 100. (Rate_table.range t);
  (* 54 Mbps region shrinks from 35m to 17.5m *)
  Alcotest.(check (option (float 1e-9))) "54 at 17.5" (Some 54.)
    (Rate_table.rate_at_distance t 17.5);
  Alcotest.(check (option (float 1e-9))) "48 at 18" (Some 48.)
    (Rate_table.rate_at_distance t 18.)

let test_make_rejects_unsorted () =
  Alcotest.check_raises "unsorted rates"
    (Invalid_argument "Rate_table.make: rates must be strictly decreasing")
    (fun () ->
      ignore
        (Rate_table.make
           [
             { Rate_table.rate_mbps = 6.; threshold_m = 200. };
             { Rate_table.rate_mbps = 12.; threshold_m = 145. };
           ]))

(* ------------------------------------------------------------------ *)
(* Session                                                            *)
(* ------------------------------------------------------------------ *)

let test_session_make () =
  let s = Session.make ~id:3 ~rate_mbps:1.5 in
  Alcotest.(check int) "id" 3 (Session.id s);
  check_float "rate" 1.5 (Session.rate_mbps s);
  Alcotest.check_raises "zero rate"
    (Invalid_argument "Session.make: rate must be positive") (fun () ->
      ignore (Session.make ~id:0 ~rate_mbps:0.))

let test_session_uniform () =
  let ss = Session.uniform ~n:5 ~rate_mbps:2. in
  Alcotest.(check int) "count" 5 (Array.length ss);
  Array.iteri
    (fun i s ->
      Alcotest.(check int) "ids are indices" i (Session.id s);
      check_float "uniform rate" 2. (Session.rate_mbps s))
    ss

(* ------------------------------------------------------------------ *)
(* Problem                                                            *)
(* ------------------------------------------------------------------ *)

let fig1 = Examples.fig1 ~session_rate_mbps:3.

let test_problem_dims () =
  let n_aps, n_users = Problem.dims fig1 in
  Alcotest.(check int) "aps" 2 n_aps;
  Alcotest.(check int) "users" 5 n_users;
  Alcotest.(check int) "sessions" 2 (Problem.n_sessions fig1)

let test_problem_neighbors () =
  Alcotest.(check (list int)) "u1 neighbors" [ 0 ] (Problem.neighbor_aps fig1 0);
  Alcotest.(check (list int)) "u3 neighbors" [ 0; 1 ]
    (Problem.neighbor_aps fig1 2);
  Alcotest.(check (list int)) "all coverable" [ 0; 1; 2; 3; 4 ]
    (Problem.coverable_users fig1)

let test_problem_strongest_ap () =
  (* default signal = link rate: u3 has rate 5 from a2 vs 4 from a1 *)
  Alcotest.(check (option int)) "u3 strongest" (Some 1)
    (Problem.strongest_ap fig1 2);
  (* u5: 4 from a1 vs 3 from a2 *)
  Alcotest.(check (option int)) "u5 strongest" (Some 0)
    (Problem.strongest_ap fig1 4);
  Alcotest.(check (option int)) "u1 strongest" (Some 0)
    (Problem.strongest_ap fig1 0)

let test_problem_no_neighbor () =
  let p =
    Problem.make ~allow_uncovered:true ~session_rates:[| 1. |]
      ~user_session:[| 0; 0 |] ~rates:[| [| 1.; 0. |] |] ~budget:1. ()
  in
  Alcotest.(check (option int)) "isolated user" None (Problem.strongest_ap p 1);
  Alcotest.(check (list int)) "coverable" [ 0 ] (Problem.coverable_users p)

let test_problem_receivers () =
  (* users of s2 reachable from a1 at >= 4 Mbps: u2 (6), u4 (4), u5 (4) *)
  Alcotest.(check (list int)) "receivers a1 s2 @4" [ 1; 3; 4 ]
    (Problem.receivers fig1 ~ap:0 ~session:1 ~min_rate:4.);
  Alcotest.(check (list int)) "receivers a1 s2 @6" [ 1 ]
    (Problem.receivers fig1 ~ap:0 ~session:1 ~min_rate:6.)

let test_problem_distinct_rates () =
  Alcotest.(check (list (float 1e-9))) "distinct rates, desc"
    [ 6.; 5.; 4.; 3. ]
    (Problem.distinct_rates fig1)

let test_problem_basic_rate_restriction () =
  let p = Problem.restrict_to_basic_rate fig1 in
  Alcotest.(check (list (float 1e-9))) "one rate" [ 3. ]
    (Problem.distinct_rates p);
  (* reachability unchanged *)
  Alcotest.(check (list int)) "u3 still reaches both" [ 0; 1 ]
    (Problem.neighbor_aps p 2)

let test_problem_validate_rejects () =
  let bad () =
    ignore
      (Problem.make ~session_rates:[| 1. |] ~user_session:[| 1 |]
         ~rates:[| [| 1. |] |] ~budget:1. ())
  in
  (try
     bad ();
     Alcotest.fail "expected Invalid_argument"
   with Invalid_argument _ -> ());
  let bad_rate () =
    ignore
      (Problem.make ~session_rates:[| -1. |] ~user_session:[| 0 |]
         ~rates:[| [| 1. |] |] ~budget:1. ())
  in
  (try
     bad_rate ();
     Alcotest.fail "expected Invalid_argument"
   with Invalid_argument _ -> ());
  (* nan slips past [r <= 0.]/[r < 0.] comparisons (both are false), and
     inf survives the division in Loads.tx_rates — both must be rejected
     at construction so they can never poison a load comparison *)
  let rejects what mk =
    try
      ignore (mk ());
      Alcotest.failf "accepted %s" what
    with Invalid_argument _ -> ()
  in
  rejects "nan session rate" (fun () ->
      Problem.make ~session_rates:[| Float.nan |] ~user_session:[| 0 |]
        ~rates:[| [| 1. |] |] ~budget:1. ());
  rejects "infinite session rate" (fun () ->
      Problem.make
        ~session_rates:[| Float.infinity |]
        ~user_session:[| 0 |] ~rates:[| [| 1. |] |] ~budget:1. ());
  rejects "zero session rate" (fun () ->
      Problem.make ~session_rates:[| 0. |] ~user_session:[| 0 |]
        ~rates:[| [| 1. |] |] ~budget:1. ());
  rejects "nan link rate" (fun () ->
      Problem.make ~session_rates:[| 1. |] ~user_session:[| 0 |]
        ~rates:[| [| Float.nan |] |]
        ~budget:1. ());
  rejects "infinite link rate" (fun () ->
      Problem.make ~session_rates:[| 1. |] ~user_session:[| 0 |]
        ~rates:[| [| Float.infinity |] |]
        ~budget:1. ());
  rejects "nan budget" (fun () ->
      Problem.make ~session_rates:[| 1. |] ~user_session:[| 0 |]
        ~rates:[| [| 1. |] |] ~budget:Float.nan ());
  rejects "nan session rate via Session.make" (fun () ->
      Session.make ~id:0 ~rate_mbps:Float.nan)

(* ------------------------------------------------------------------ *)
(* Association & Loads                                                *)
(* ------------------------------------------------------------------ *)

let test_association_basic () =
  let a = Association.empty ~n_users:3 in
  Alcotest.(check int) "served 0" 0 (Association.served_count a);
  Association.serve a ~user:1 ~ap:7;
  Alcotest.(check int) "served 1" 1 (Association.served_count a);
  Alcotest.(check (option int)) "ap_of" (Some 7) (Association.ap_of a 1);
  Alcotest.(check (option int)) "unserved" None (Association.ap_of a 0);
  Alcotest.(check (list int)) "unserved users" [ 0; 2 ]
    (Association.unserved_users a);
  Association.unserve a ~user:1;
  Alcotest.(check int) "served 0 again" 0 (Association.served_count a)

let test_association_users_of () =
  let a : Association.t = [| 0; 1; 0; -1; 0 |] in
  Alcotest.(check (list int)) "users of 0" [ 0; 2; 4 ]
    (Association.users_of a ~ap:0);
  Alcotest.(check (list int)) "users of 1" [ 1 ] (Association.users_of a ~ap:1)

(* Loads on the Figure 1 example with 3 Mbps sessions: the paper's MNU
   walk-through numbers. *)
let test_loads_fig1_mnu_example () =
  (* u2, u4, u5 -> a1 ; u3 -> a2: a1 load 3/4, a2 load 3/5 *)
  let assoc : Association.t = [| -1; 0; 1; 0; 0 |] in
  let loads = Loads.ap_loads fig1 assoc in
  check_float "a1 load" (3. /. 4.) loads.(0);
  check_float "a2 load" (3. /. 5.) loads.(1);
  check_float "total" ((3. /. 4.) +. (3. /. 5.)) (Loads.total_load fig1 assoc);
  check_float "max" (3. /. 4.) (Loads.max_load fig1 assoc)

let test_loads_infeasible_pair () =
  (* the paper: u1 and u2 both on a1 gives 3/3 + 3/6 = 1.5 > 1 *)
  let assoc : Association.t = [| 0; 0; -1; -1; -1 |] in
  check_float "overload" 1.5 (Loads.ap_load fig1 assoc ~ap:0);
  Alcotest.(check bool) "violates budget" false
    (Loads.respects_budget fig1 assoc)

let fig1_bla = Examples.fig1 ~session_rate_mbps:1.

let test_loads_fig1_bla_example () =
  (* u1,u2,u3 -> a1; u4,u5 -> a2: loads 1/2 and 1/3 (paper §3.2) *)
  let assoc : Association.t = [| 0; 0; 0; 1; 1 |] in
  let loads = Loads.ap_loads fig1_bla assoc in
  check_float "a1" 0.5 loads.(0);
  check_float "a2" (1. /. 3.) loads.(1);
  check_float "max" 0.5 (Loads.max_load fig1_bla assoc)

let test_loads_fig1_mla_example () =
  (* all users -> a1: total 1/3 + 1/4 = 7/12 (paper §3.2) *)
  let assoc : Association.t = [| 0; 0; 0; 0; 0 |] in
  check_float "total" (7. /. 12.) (Loads.total_load fig1_bla assoc)

let test_loads_min_rate_rule () =
  (* adding a slower receiver re-rates the whole transmission *)
  let assoc : Association.t = [| -1; 0; -1; -1; -1 |] in
  check_float "u2 alone at 6" (1. /. 6.) (Loads.ap_load fig1_bla assoc ~ap:0);
  let assoc : Association.t = [| -1; 0; -1; 0; -1 |] in
  check_float "u2+u4 at 4" (1. /. 4.) (Loads.ap_load fig1_bla assoc ~ap:0)

let test_loads_if_joins_leaves () =
  let assoc : Association.t = [| -1; 0; -1; -1; -1 |] in
  check_float "if u4 joins a1" 0.25
    (Loads.load_if_joins fig1_bla assoc ~user:3 ~ap:0);
  (* probing must not mutate *)
  Alcotest.(check (option int)) "u4 untouched" None (Association.ap_of assoc 3);
  check_float "if u2 leaves a1" 0.
    (Loads.load_if_leaves fig1_bla assoc ~user:1 ~ap:0);
  Alcotest.(check (option int)) "u2 untouched" (Some 0)
    (Association.ap_of assoc 1)

let test_load_vector_compare () =
  let c = Loads.compare_load_vectors in
  Alcotest.(check bool) "(1/2,0) < (1/2,1/5)" true
    (c [| 0.5; 0. |] [| 0.5; 0.2 |] < 0);
  Alcotest.(check bool) "equal" true (c [| 0.5; 0.2 |] [| 0.5; 0.2 |] = 0);
  Alcotest.(check bool) "(7/12,0) > (1/2,1/5)" true
    (c [| 7. /. 12.; 0. |] [| 0.5; 0.2 |] > 0);
  let v = Loads.sorted_load_vector [| 0.1; 0.7; 0.3 |] in
  Alcotest.(check (array (float 1e-12))) "sorted desc" [| 0.7; 0.3; 0.1 |] v

(* ------------------------------------------------------------------ *)
(* Scenario and generation                                            *)
(* ------------------------------------------------------------------ *)

let test_scenario_to_problem_rates () =
  (* one AP at origin, users at canonical distances *)
  let sc =
    Scenario.make ~area_w:300. ~area_h:300.
      ~ap_pos:[| Point.v 0. 0. |]
      ~user_pos:[| Point.v 30. 0.; Point.v 0. 100.; Point.v 250. 0. |]
      ~user_session:[| 0; 0; 0 |]
      ~sessions:(Session.uniform ~n:1 ~rate_mbps:1.)
      ~budget:0.9 ()
  in
  let p = Scenario.to_problem sc in
  check_float "30m -> 54" 54. (Problem.link_rate p ~ap:0 ~user:0);
  check_float "100m -> 18" 18. (Problem.link_rate p ~ap:0 ~user:1);
  check_float "250m -> unreachable" 0. (Problem.link_rate p ~ap:0 ~user:2);
  Alcotest.(check (list int)) "uncovered" [ 2 ] (Scenario.uncovered_users sc);
  Alcotest.(check bool) "not fully covered" false (Scenario.fully_covered sc)

let test_scenario_signal_is_distance () =
  (* two APs; the closer one must be "strongest" even if rates tie *)
  let sc =
    Scenario.make ~area_w:300. ~area_h:300.
      ~ap_pos:[| Point.v 0. 0.; Point.v 50. 0. |]
      ~user_pos:[| Point.v 32. 0. |] (* 32m from a0 (54M), 18m from a1 (54M) *)
      ~user_session:[| 0 |]
      ~sessions:(Session.uniform ~n:1 ~rate_mbps:1.)
      ~budget:0.9 ()
  in
  let p = Scenario.to_problem sc in
  Alcotest.(check (option int)) "nearest wins" (Some 1)
    (Problem.strongest_ap p 0)

let test_generator_determinism () =
  let cfg = { Scenario_gen.paper_default with n_aps = 20; n_users = 30 } in
  let a = Scenario_gen.problems ~seed:7 ~n:3 cfg in
  let b = Scenario_gen.problems ~seed:7 ~n:3 cfg in
  List.iter2
    (fun (pa : Problem.t) (pb : Problem.t) ->
      Alcotest.(check bool) "same rates" true
        (Problem.rates_matrix pa = Problem.rates_matrix pb);
      Alcotest.(check bool) "same sessions" true
        Problem.(pa.user_session = pb.user_session))
    a b;
  let c = Scenario_gen.problems ~seed:8 ~n:1 cfg in
  Alcotest.(check bool) "different seed differs" false
    (Problem.rates_matrix (List.hd a) = Problem.rates_matrix (List.hd c))

let test_generator_coverage () =
  let cfg =
    { Scenario_gen.paper_default with n_aps = 50; n_users = 80 }
  in
  let rng = Random.State.make [| 11 |] in
  for _ = 1 to 5 do
    let sc = Scenario_gen.generate ~rng cfg in
    Alcotest.(check (list int)) "ensured coverage" []
      (Scenario.uncovered_users sc)
  done

let test_generator_dims_and_sessions () =
  let cfg =
    { Scenario_gen.paper_default with n_aps = 13; n_users = 17; n_sessions = 4 }
  in
  let p = List.hd (Scenario_gen.problems ~seed:3 ~n:1 cfg) in
  let n_aps, n_users = Problem.dims p in
  Alcotest.(check int) "aps" 13 n_aps;
  Alcotest.(check int) "users" 17 n_users;
  Alcotest.(check int) "sessions" 4 (Problem.n_sessions p);
  Array.iter
    (fun s ->
      if s < 0 || s >= 4 then Alcotest.fail "session index out of range")
    Problem.(p.user_session)

(* ------------------------------------------------------------------ *)
(* Topology statistics                                                *)
(* ------------------------------------------------------------------ *)

let test_topology_stats_fig1 () =
  let t = Topology_stats.of_problem fig1 in
  Alcotest.(check int) "aps" 2 t.Topology_stats.n_aps;
  Alcotest.(check int) "covered" 5 t.Topology_stats.covered_users;
  (* u1,u2 hear one AP; u3,u4,u5 hear two: mean 8/5, max 2, multi 3 *)
  check_float "mean degree" (8. /. 5.) t.Topology_stats.mean_user_degree;
  Alcotest.(check int) "max degree" 2 t.Topology_stats.max_user_degree;
  Alcotest.(check int) "multi-covered" 3 t.Topology_stats.multi_covered_users;
  check_float "reassignable" 0.6 (Topology_stats.reassignable_fraction t);
  (* best rates: 3, 6, 5, 5, 4 -> mean 23/5 *)
  check_float "mean best rate" (23. /. 5.) t.Topology_stats.mean_best_rate;
  Alcotest.(check (array int)) "audiences" [| 2; 3 |]
    t.Topology_stats.session_audience

let test_topology_stats_uncovered () =
  let p =
    Problem.make ~allow_uncovered:true ~session_rates:[| 1. |]
      ~user_session:[| 0; 0 |] ~rates:[| [| 6.; 0. |] |] ~budget:0.9 ()
  in
  let t = Topology_stats.of_problem p in
  Alcotest.(check int) "one covered" 1 t.Topology_stats.covered_users;
  Alcotest.(check int) "no alternatives" 0 t.Topology_stats.multi_covered_users;
  check_float "reassignable zero" 0. (Topology_stats.reassignable_fraction t)

let test_topology_stats_histogram_sums () =
  let rng = Random.State.make [| 44 |] in
  let sc =
    Scenario_gen.generate ~rng
      { Scenario_gen.paper_default with n_aps = 20; n_users = 50 }
  in
  let t = Topology_stats.of_problem (Scenario.to_problem sc) in
  let hist_total =
    List.fold_left (fun acc (_, c) -> acc + c) 0 t.Topology_stats.rate_histogram
  in
  Alcotest.(check int) "histogram covers everyone"
    t.Topology_stats.covered_users hist_total;
  Alcotest.(check int) "audiences cover everyone" 50
    (Array.fold_left ( + ) 0 t.Topology_stats.session_audience)

(* ------------------------------------------------------------------ *)
(* Scenario serialization                                             *)
(* ------------------------------------------------------------------ *)

let test_scenario_io_roundtrip () =
  let rng = Random.State.make [| 33 |] in
  let sc =
    Scenario_gen.generate ~rng
      { Scenario_gen.paper_default with n_aps = 12; n_users = 25 }
  in
  let sc' = Scenario_io.of_string (Scenario_io.to_string sc) in
  Alcotest.(check bool) "ap positions" true
    (sc'.Scenario.ap_pos = sc.Scenario.ap_pos);
  Alcotest.(check bool) "user positions" true
    (sc'.Scenario.user_pos = sc.Scenario.user_pos);
  Alcotest.(check bool) "sessions" true
    (sc'.Scenario.user_session = sc.Scenario.user_session);
  (* the compiled problems are identical bit for bit *)
  let p = Scenario.to_problem sc and p' = Scenario.to_problem sc' in
  Alcotest.(check bool) "identical rates" true
    (Problem.rates_matrix p = Problem.rates_matrix p');
  Alcotest.(check bool) "identical budget" true
    (Problem.budget p = Problem.budget p')

let test_scenario_io_bit_exact_floats () =
  (* a position with no short decimal representation round-trips exactly *)
  let x = 1. /. 3. and y = Float.pi in
  let sc =
    Scenario.make ~area_w:10. ~area_h:10.
      ~ap_pos:[| Point.v x y |]
      ~user_pos:[| Point.v (x *. 2.) (y /. 7.) |]
      ~user_session:[| 0 |]
      ~sessions:(Session.uniform ~n:1 ~rate_mbps:(1. /. 7.))
      ~budget:(2. /. 3.) ()
  in
  let sc' = Scenario_io.of_string (Scenario_io.to_string sc) in
  Alcotest.(check bool) "ap bit-exact" true
    (sc'.Scenario.ap_pos.(0) = sc.Scenario.ap_pos.(0));
  Alcotest.(check bool) "user bit-exact" true
    (sc'.Scenario.user_pos.(0) = sc.Scenario.user_pos.(0));
  Alcotest.(check bool) "budget bit-exact" true
    (sc'.Scenario.budget = sc.Scenario.budget);
  Alcotest.(check bool) "session rate bit-exact" true
    (Session.rate_mbps sc'.Scenario.sessions.(0)
    = Session.rate_mbps sc.Scenario.sessions.(0))

let test_scenario_io_rejects_garbage () =
  let bad s =
    try
      ignore (Scenario_io.of_string s);
      Alcotest.failf "accepted %S" s
    with Scenario_io.Parse_error _ -> ()
  in
  bad "";
  bad "not-a-scenario 1\n";
  bad "wlan-mcast-scenario 99\n";
  bad "wlan-mcast-scenario 1\nmystery line\n";
  (* missing sections *)
  bad "wlan-mcast-scenario 1\narea 10 10\n";
  (* non-positive / non-finite rates must fail at parse time with a
     line-level error, before they can reach the load division *)
  let preamble = "wlan-mcast-scenario 1\narea 10 10\nbudget 0.9\n" in
  bad (preamble ^ "rates 54:35 0:60\nsessions 1\nap 1 1\nuser 2 2 0\n");
  bad (preamble ^ "rates 54:35 -6:60\nsessions 1\nap 1 1\nuser 2 2 0\n");
  bad (preamble ^ "rates nan:35\nsessions 1\nap 1 1\nuser 2 2 0\n");
  bad (preamble ^ "rates 54:0\nsessions 1\nap 1 1\nuser 2 2 0\n");
  bad (preamble ^ "rates 54:35\nsessions 0\nap 1 1\nuser 2 2 0\n");
  bad (preamble ^ "rates 54:35\nsessions -1\nap 1 1\nuser 2 2 0\n");
  bad (preamble ^ "rates 54:35\nsessions nan\nap 1 1\nuser 2 2 0\n");
  bad (preamble ^ "rates 54:35\nsessions inf\nap 1 1\nuser 2 2 0\n")

let test_scenario_io_file () =
  let rng = Random.State.make [| 34 |] in
  let sc =
    Scenario_gen.generate ~rng
      { Scenario_gen.paper_default with n_aps = 5; n_users = 8 }
  in
  let path = Filename.temp_file "wlan_scenario" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Scenario_io.to_file path sc;
      let sc' = Scenario_io.of_file path in
      Alcotest.(check bool) "file roundtrip" true
        (Scenario.to_problem sc' = Scenario.to_problem sc))

let prop_scenario_io_roundtrip =
  QCheck.Test.make ~name:"scenario serialization round-trips" ~count:50
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let sc =
        Scenario_gen.generate ~rng
          {
            Scenario_gen.paper_default with
            n_aps = 6;
            n_users = 10;
            n_sessions = 3;
            ensure_coverage = false;
          }
      in
      let sc' = Scenario_io.of_string (Scenario_io.to_string sc) in
      Scenario.to_problem sc' = Scenario.to_problem sc)

(* Construction-time validation (Rate_table.make, Scenario.make,
   Rate_model.validate) must surface as Parse_error, never as a raw
   Invalid_argument escaping [of_string]. *)
let test_scenario_io_parse_error_discipline () =
  let bad s =
    match Scenario_io.of_string s with
    | _ -> Alcotest.failf "accepted %S" s
    | exception Scenario_io.Parse_error _ -> ()
    | exception Invalid_argument m ->
        Alcotest.failf "leaked Invalid_argument %S on %S" m s
  in
  let preamble = "wlan-mcast-scenario 1\narea 10 10\nbudget 0.9\n" in
  (* rates out of order: positive entries pass the line-level checks but
     violate the Rate_table invariant *)
  bad (preamble ^ "rates 6:200 54:35\nsessions 1\nap 1 1\nuser 2 2 0\n");
  bad (preamble ^ "rates 54:35 48:30\nsessions 1\nap 1 1\nuser 2 2 0\n");
  (* empty rates line *)
  bad (preamble ^ "rates\nsessions 1\nap 1 1\nuser 2 2 0\n");
  (* session index out of range: fails inside Scenario.make *)
  bad (preamble ^ "rates 54:35\nsessions 1\nap 1 1\nuser 2 2 9\n");
  (* bad model parameters: fail inside Rate_model.validate *)
  let v2 = "wlan-mcast-scenario 2\narea 10 10\nbudget 0.9\nrates 54:35\n" in
  let tail = "sessions 1\nap 1 1\nuser 2 2 0\n" in
  let radio_snr = "radio 16 5.8 -85 iso iso\nsnr 54:25.5 6:6\n" in
  bad (v2 ^ "model log-distance 0\n" ^ radio_snr ^ tail);
  bad (v2 ^ "model two-ray 0 1.5\n" ^ radio_snr ^ tail);
  bad (v2 ^ "model friis\nradio 16 5.8 -85 iso iso\nsnr 6:6 54:25.5\n" ^ tail)

let test_scenario_io_rejects_v2_garbage () =
  let bad s =
    try
      ignore (Scenario_io.of_string s);
      Alcotest.failf "accepted %S" s
    with Scenario_io.Parse_error _ -> ()
  in
  let v2 = "wlan-mcast-scenario 2\narea 10 10\nbudget 0.9\nrates 54:35\n" in
  let tail = "sessions 1\nap 1 1\nuser 2 2 0\n" in
  let radio_snr = "radio 16 5.8 -85 iso iso\nsnr 54:25.5 6:6\n" in
  (* model sections need a model line *)
  bad (v2 ^ "shadow 4 7\n" ^ tail);
  bad (v2 ^ "radio 16 5.8 -85 iso iso\n" ^ tail);
  bad (v2 ^ "snr 54:25.5 6:6\n" ^ tail);
  (* a model line needs both radio and snr *)
  bad (v2 ^ "model friis\n" ^ tail);
  bad (v2 ^ "model friis\nradio 16 5.8 -85 iso iso\n" ^ tail);
  bad (v2 ^ "model friis\nsnr 54:25.5 6:6\n" ^ tail);
  (* shadowing is a log-distance concept only *)
  bad (v2 ^ "model friis\nshadow 4 7\n" ^ radio_snr ^ tail);
  bad (v2 ^ "model two-ray 10 1.5\nshadow 4 7\n" ^ radio_snr ^ tail);
  (* malformed model / antenna lines *)
  bad (v2 ^ "model warp-drive\n" ^ radio_snr ^ tail);
  bad (v2 ^ "model friis\nradio 16 5.8 -85 par iso\nsnr 54:25.5 6:6\n" ^ tail);
  (* model lines are a version-2 feature: under a v1 header they are
     unrecognized lines, not silently ignored *)
  let v1 = "wlan-mcast-scenario 1\narea 10 10\nbudget 0.9\nrates 54:35\n" in
  bad (v1 ^ "model friis\n" ^ radio_snr ^ tail);
  bad (v1 ^ "shadow 4 7\n" ^ tail)

(* A [Table] scenario always writes the historical byte format: version-1
   header and no model section, whatever [version] says. *)
let test_scenario_io_v1_byte_compat () =
  let rng = Random.State.make [| 35 |] in
  let sc =
    Scenario_gen.generate ~rng
      { Scenario_gen.paper_default with n_aps = 4; n_users = 6 }
  in
  let s = Scenario_io.to_string sc in
  Alcotest.(check bool) "v1 header" true
    (String.length s >= 22 && String.sub s 0 22 = "wlan-mcast-scenario 1\n");
  List.iter
    (fun l ->
      match String.split_on_char ' ' l with
      | ("model" | "shadow" | "radio" | "snr") :: _ ->
          Alcotest.failf "v1 text contains model line %S" l
      | _ -> ())
    (String.split_on_char '\n' s)

(* Non-default tables survive the trip: 802.11b and a power-scaled
   table produce the same serialized text and the same compile. *)
let test_scenario_io_roundtrip_tables () =
  List.iter
    (fun table ->
      let rng = Random.State.make [| 36 |] in
      let sc =
        Scenario_gen.generate ~rng
          {
            Scenario_gen.paper_default with
            n_aps = 5;
            n_users = 9;
            rate_table = table;
            ensure_coverage = false;
          }
      in
      let s = Scenario_io.to_string sc in
      let sc' = Scenario_io.of_string s in
      Alcotest.(check string) "text fixed point" s (Scenario_io.to_string sc');
      Alcotest.(check bool) "same table" true
        (Rate_table.entries sc'.Scenario.rate_table
        = Rate_table.entries sc.Scenario.rate_table);
      Alcotest.(check bool) "same compile" true
        (Scenario.to_problem sc' = Scenario.to_problem sc))
    [
      Rate_table.ieee80211b;
      Rate_table.scale_thresholds 0.5 Rate_table.default;
      Rate_table.basic_only Rate_table.default;
    ]

(* Version-2 round-trips: a random Path_loss model (family, antennas,
   shadowing) serializes to a fixed point and reads back structurally
   equal, and the compiled problems match bit for bit. *)
let random_rate_model rng =
  let antenna st =
    if Random.State.bool st then Rate_model.Isotropic
    else
      Rate_model.Parabolic
        { gain_dbi = 0.5 +. Random.State.float st 11. }
  in
  let radio =
    {
      Rate_model.default_radio with
      tx_antenna = antenna rng;
      rx_antenna = antenna rng;
    }
  in
  match Random.State.int rng 4 with
  | 0 -> Rate_model.friis ~radio ()
  | 1 ->
      Rate_model.two_ray ~radio
        ~ap_height_m:(2. +. Random.State.float rng 10.)
        ~user_height_m:(1. +. Random.State.float rng 2.)
        ()
  | 2 ->
      Rate_model.log_distance ~radio
        ~exponent:(2. +. Random.State.float rng 1.5)
        ()
  | _ ->
      Rate_model.log_distance ~radio
        ~exponent:(2. +. Random.State.float rng 1.5)
        ~shadowing:
          {
            Rate_model.sigma_db = Random.State.float rng 6.;
            seed = Random.State.int rng 10_000;
          }
        ()

let prop_scenario_io_roundtrip_v2 =
  QCheck.Test.make ~name:"v2 model serialization round-trips" ~count:50
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let model = random_rate_model rng in
      let sc =
        Scenario_gen.generate ~rng
          {
            Scenario_gen.paper_default with
            n_aps = 6;
            n_users = 10;
            n_sessions = 2;
            rate_model = Some model;
            ensure_coverage = false;
          }
      in
      let s = Scenario_io.to_string sc in
      let sc' = Scenario_io.of_string s in
      s = Scenario_io.to_string sc'
      && Rate_model.equal sc'.Scenario.model sc.Scenario.model
      && Scenario.to_problem sc' = Scenario.to_problem sc)

(* ------------------------------------------------------------------ *)
(* Coverage boundary agreement                                        *)
(* ------------------------------------------------------------------ *)

(* Regression for the boundary predicate mismatch: [Point.within]
   compares dist² ≤ r² while the compile compares sqrt dist² ≤ r, and
   the two disagree on boundary links where the squaring rounds the
   other way. Witness found by exhaustive search: at range 160 the
   point below has dist² > 160² but sqrt dist² ≤ 160 — the compile
   covers it, so [uncovered_users] must agree and report nothing. *)
let test_uncovered_users_boundary_witness () =
  let table = Rate_table.make [ { rate_mbps = 6.; threshold_m = 160. } ] in
  let ap = Point.v 0. 0. in
  let u = Point.v 159.99999680000002 0.03199999978666667 in
  Alcotest.(check bool) "witness: within disagrees with sqrt" false
    (Point.within 160. ap u);
  Alcotest.(check bool) "witness: sqrt side is in range" true
    (Point.dist ap u <= 160.);
  let sc =
    Scenario.make ~area_w:200. ~area_h:200. ~ap_pos:[| ap |] ~user_pos:[| u |]
      ~user_session:[| 0 |]
      ~sessions:(Session.uniform ~n:1 ~rate_mbps:1.)
      ~rate_table:table ~budget:0.9 ()
  in
  let p = Scenario.to_problem sc in
  Alcotest.(check bool) "compile covers the witness" true
    (Problem.neighbor_aps p 0 <> []);
  Alcotest.(check (list int)) "uncovered_users agrees with the compile" []
    (Scenario.uncovered_users sc)

(* The general invariant the witness pins: a user is uncovered exactly
   when its compiled candidate set is empty, under dense and sparse
   compiles alike, for table and path-loss models. *)
let prop_uncovered_users_matches_compile =
  QCheck.Test.make ~name:"uncovered_users = empty candidate sets" ~count:50
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let model =
        if Random.State.bool rng then None else Some (random_rate_model rng)
      in
      let sc =
        Scenario_gen.generate ~rng
          {
            Scenario_gen.paper_default with
            n_aps = 4;
            n_users = 12;
            rate_model = model;
            ensure_coverage = false;
          }
      in
      let uncovered = Scenario.uncovered_users sc in
      let agrees p =
        List.init (Scenario.n_users sc) Fun.id
        |> List.for_all (fun u ->
               List.mem u uncovered = (Problem.neighbor_aps p u = []))
      in
      agrees (Scenario.to_problem sc) && agrees (Scenario.to_problem_sparse sc))

(* ------------------------------------------------------------------ *)
(* QCheck properties                                                  *)
(* ------------------------------------------------------------------ *)

let small_problem_gen =
  (* random geometric problems: 1-8 APs, 1-12 users, 1-3 sessions *)
  QCheck.Gen.(
    let* n_aps = int_range 1 8 in
    let* n_users = int_range 1 12 in
    let* n_sessions = int_range 1 3 in
    let* seed = int_range 0 1_000_000 in
    return
      (List.hd
         (Scenario_gen.problems ~seed ~n:1
            {
              Scenario_gen.paper_default with
              area_w = 400.;
              area_h = 400.;
              n_aps;
              n_users;
              n_sessions;
              ensure_coverage = false;
            })))

let arb_problem = QCheck.make small_problem_gen

let random_assoc rng p =
  let _, n_users = Problem.dims p in
  Array.init n_users (fun u ->
      let ns = Problem.neighbor_aps p u in
      match ns with
      | [] -> Association.none
      | _ ->
          if Random.State.bool rng then Association.none
          else List.nth ns (Random.State.int rng (List.length ns)))

let prop_total_is_sum =
  QCheck.Test.make ~name:"total load = sum of AP loads" ~count:100 arb_problem
    (fun p ->
      let rng = Random.State.make [| 5 |] in
      let assoc = random_assoc rng p in
      let loads = Loads.ap_loads p assoc in
      feq ~eps:1e-9
        (Array.fold_left ( +. ) 0. loads)
        (Loads.total_load p assoc))

let prop_ap_load_consistent =
  QCheck.Test.make ~name:"ap_load agrees with ap_loads" ~count:100 arb_problem
    (fun p ->
      let rng = Random.State.make [| 6 |] in
      let assoc = random_assoc rng p in
      let loads = Loads.ap_loads p assoc in
      Array.for_all Fun.id
        (Array.mapi (fun a l -> feq l (Loads.ap_load p assoc ~ap:a)) loads))

let prop_load_monotone_in_users =
  QCheck.Test.make ~name:"adding a user never decreases an AP's load"
    ~count:100 arb_problem (fun p ->
      let rng = Random.State.make [| 7 |] in
      let assoc = random_assoc rng p in
      let ok = ref true in
      Array.iteri
        (fun u a ->
          if a = Association.none then
            List.iter
              (fun ap ->
                let before = Loads.ap_load p assoc ~ap in
                let after = Loads.load_if_joins p assoc ~user:u ~ap in
                if after < before -. 1e-12 then ok := false)
              (Problem.neighbor_aps p u))
        assoc;
      !ok)

let prop_leaving_never_increases =
  QCheck.Test.make ~name:"removing a user never increases an AP's load"
    ~count:100 arb_problem (fun p ->
      let rng = Random.State.make [| 8 |] in
      let assoc = random_assoc rng p in
      let ok = ref true in
      Array.iteri
        (fun u a ->
          if a <> Association.none then begin
            let before = Loads.ap_load p assoc ~ap:a in
            let after = Loads.load_if_leaves p assoc ~user:u ~ap:a in
            if after > before +. 1e-12 then ok := false
          end)
        assoc;
      !ok)

let prop_tracker_matches_eager =
  (* every value the incremental tracker serves must be bit-identical
     (Float.equal, no epsilon) to the eager from-scratch computation *)
  QCheck.Test.make ~name:"Tracker matches from-scratch loads under churn"
    ~count:60 arb_problem (fun p ->
      let rng = Random.State.make [| 42 |] in
      let _, n_users = Problem.dims p in
      let assoc = random_assoc rng p in
      let tr = Loads.Tracker.create p assoc in
      let ok = ref true in
      let check () =
        let eager = Loads.ap_loads p assoc in
        Array.iteri
          (fun a l ->
            if not (Float.equal l (Loads.Tracker.ap_load tr a)) then
              ok := false)
          eager;
        if
          not
            (Float.equal (Loads.total_load p assoc)
               (Loads.Tracker.total_load tr))
        then ok := false;
        if
          not
            (Float.equal (Loads.max_load p assoc) (Loads.Tracker.max_load tr))
        then ok := false;
        (* hypothetical probes: a random user against all its neighbors *)
        let u = Random.State.int rng n_users in
        List.iter
          (fun ap ->
            if
              not
                (Float.equal
                   (Loads.load_if_joins p assoc ~user:u ~ap)
                   (Loads.Tracker.load_if_joins tr ~user:u ~ap))
            then ok := false;
            if
              not
                (Float.equal
                   (Loads.load_if_leaves p assoc ~user:u ~ap)
                   (Loads.Tracker.load_if_leaves tr ~user:u ~ap))
            then ok := false)
          (Problem.neighbor_aps p u)
      in
      check ();
      for _ = 1 to 40 do
        let u = Random.State.int rng n_users in
        let ns = Problem.neighbor_aps p u in
        let target =
          match ns with
          | [] -> Association.none
          | _ ->
              if Random.State.int rng 4 = 0 then Association.none
              else List.nth ns (Random.State.int rng (List.length ns))
        in
        Loads.Tracker.move tr ~user:u ~ap:target;
        check ()
      done;
      !ok)

let prop_tracker_churn_sequences =
  (* churn-shaped op mix — interleaved joins, leaves and AP failures —
     with the edge cases the move-based fuzz above rarely hits: APs
     drained to empty member sets (an AP failure detaches everyone, in
     ascending user order, exactly as Online.fail_ap does) and the
     last receiver of a session leaving one user at a time. The tracker
     must stay bit-identical to the eager scan after every single op. *)
  QCheck.Test.make ~name:"Tracker survives interleaved join/leave/fail"
    ~count:60 arb_problem (fun p ->
      let rng = Random.State.make [| 43 |] in
      let n_aps, n_users = Problem.dims p in
      let assoc = Association.empty ~n_users in
      let tr = Loads.Tracker.create p assoc in
      let ok = ref true in
      let check () =
        let eager = Loads.ap_loads p assoc in
        Array.iteri
          (fun a l ->
            if not (Float.equal l (Loads.Tracker.ap_load tr a)) then
              ok := false)
          eager;
        if
          not
            (Float.equal (Loads.total_load p assoc)
               (Loads.Tracker.total_load tr))
          || not
               (Float.equal (Loads.max_load p assoc)
                  (Loads.Tracker.max_load tr))
        then ok := false
      in
      let join () =
        let u = Random.State.int rng n_users in
        match Problem.neighbor_aps p u with
        | [] -> ()
        | ns ->
            Loads.Tracker.move tr ~user:u
              ~ap:(List.nth ns (Random.State.int rng (List.length ns)));
            check ()
      in
      let leave () =
        match Association.served_users assoc with
        | [] -> ()
        | us ->
            Loads.Tracker.unserve tr
              ~user:(List.nth us (Random.State.int rng (List.length us)));
            check ()
      in
      let fail_ap a =
        (* detach every member, ascending — check after each unserve so
           the "last receiver leaves" transition of every session on the
           AP is exercised, down to the empty member set *)
        List.iter
          (fun u ->
            Loads.Tracker.unserve tr ~user:u;
            check ())
          (Association.users_of assoc ~ap:a);
        if not (Float.equal 0. (Loads.Tracker.ap_load tr a)) then ok := false
      in
      check ();
      for _ = 1 to 60 do
        match Random.State.int rng 5 with
        | 0 | 1 -> join ()
        | 2 -> leave ()
        | _ when n_aps > 0 -> fail_ap (Random.State.int rng n_aps)
        | _ -> ()
      done;
      (* drain everything: the whole network down to zero load *)
      List.iter
        (fun u ->
          Loads.Tracker.unserve tr ~user:u;
          check ())
        (Association.served_users assoc);
      if not (Float.equal 0. (Loads.Tracker.total_load tr)) then ok := false;
      !ok)

let prop_rate_adaptation_in_table =
  QCheck.Test.make ~name:"every generated link rate is a Table-1 rate"
    ~count:50 arb_problem (fun p ->
      let table = Rate_table.rates Rate_table.default in
      Array.for_all
        (Array.for_all (fun r ->
             r = 0. || List.exists (fun t -> feq t r) table))
        (Problem.rates_matrix p))

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_total_is_sum;
      prop_ap_load_consistent;
      prop_load_monotone_in_users;
      prop_leaving_never_increases;
      prop_rate_adaptation_in_table;
      prop_tracker_matches_eager;
      prop_tracker_churn_sequences;
      prop_scenario_io_roundtrip;
      prop_scenario_io_roundtrip_v2;
      prop_uncovered_users_matches_compile;
    ]

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "wlan_model"
    [
      ( "point",
        [
          tc "distance" test_point_dist;
          tc "symmetry" test_point_dist_symmetric;
          tc "random in bounds" test_point_random_in_bounds;
        ] );
      ( "rate_table",
        [
          tc "table 1 thresholds" test_table1_thresholds;
          tc "out of range" test_table1_out_of_range;
          tc "monotone in distance" test_rate_monotone_in_distance;
          tc "basic rate and range" test_basic_rate_and_range;
          tc "basic-only table" test_basic_only;
          tc "power scaling" test_scale_thresholds;
          tc "rejects unsorted" test_make_rejects_unsorted;
        ] );
      ( "session",
        [ tc "make" test_session_make; tc "uniform" test_session_uniform ] );
      ( "problem",
        [
          tc "dims" test_problem_dims;
          tc "neighbors" test_problem_neighbors;
          tc "strongest ap" test_problem_strongest_ap;
          tc "isolated user" test_problem_no_neighbor;
          tc "receivers" test_problem_receivers;
          tc "distinct rates" test_problem_distinct_rates;
          tc "basic-rate restriction" test_problem_basic_rate_restriction;
          tc "validation" test_problem_validate_rejects;
        ] );
      ( "association",
        [
          tc "serve/unserve" test_association_basic;
          tc "users_of" test_association_users_of;
        ] );
      ( "loads",
        [
          tc "fig1 MNU walk-through" test_loads_fig1_mnu_example;
          tc "fig1 infeasible pair" test_loads_infeasible_pair;
          tc "fig1 BLA walk-through" test_loads_fig1_bla_example;
          tc "fig1 MLA walk-through" test_loads_fig1_mla_example;
          tc "min-rate rule" test_loads_min_rate_rule;
          tc "join/leave probes" test_loads_if_joins_leaves;
          tc "load vector compare" test_load_vector_compare;
        ] );
      ( "scenario",
        [
          tc "rate adaptation" test_scenario_to_problem_rates;
          tc "signal = -distance" test_scenario_signal_is_distance;
          tc "generator determinism" test_generator_determinism;
          tc "generator coverage" test_generator_coverage;
          tc "generator dims" test_generator_dims_and_sessions;
        ] );
      ( "topology_stats",
        [
          tc "fig1" test_topology_stats_fig1;
          tc "uncovered user" test_topology_stats_uncovered;
          tc "histogram sums" test_topology_stats_histogram_sums;
        ] );
      ( "scenario_io",
        [
          tc "roundtrip" test_scenario_io_roundtrip;
          tc "bit-exact floats" test_scenario_io_bit_exact_floats;
          tc "rejects garbage" test_scenario_io_rejects_garbage;
          tc "parse-error discipline" test_scenario_io_parse_error_discipline;
          tc "rejects v2 garbage" test_scenario_io_rejects_v2_garbage;
          tc "v1 byte compat" test_scenario_io_v1_byte_compat;
          tc "non-default tables" test_scenario_io_roundtrip_tables;
          tc "file roundtrip" test_scenario_io_file;
        ] );
      ( "coverage_boundary",
        [ tc "fp witness" test_uncovered_users_boundary_witness ] );
      ("properties", qcheck_cases);
    ]
