(* The serve battery: protocol fuzz, crash/replay differential, golden
   demo stream.

   - Codec fuzz (qcheck): arbitrary byte soup fed in arbitrary chunks
     never crashes the decoder or a live session; every byte-prefix of a
     valid stream decodes to a frame-prefix (truncation is loss, never
     corruption); declared-oversize frames are refused without buffering
     and the decoder resynchronizes; render/frame/decode/parse
     round-trips every input exactly.
   - Batch semantics: same-timestamp arrivals commute (any permutation
     lands on the same state and the same replies); backpressure forces
     a settle at queue_limit and flags it.
   - Session discipline: hello-first, version check, monotone time,
     range checks, closed-after-bye — every refusal is a structured
     error, changes nothing, and the session survives.
   - Live vs replay: for random instances and scripts the replay log
     regenerates byte-identically and lands on the same state digest, at
     fanout jobs 1 and 4.
   - Crash/recovery: every line-boundary (and torn mid-line) prefix of a
     live log restarts, replays, and — continued with the remaining
     events — reconverges to the uninterrupted run's exact log bytes and
     state digest.
   - Golden: the committed demo event stream replays to committed log
     and state digests, byte-identical at jobs 1 and 4.
   - Online edge cases the daemon exposes: losing a user's only
     candidate AP, departing the last receiver mid-batch, AP fail +
     recover in one atomic step, and the new [settle_stats.changed]
     delta list checked against a manual association diff. *)

open Wlan_model
open Mcast_core
open Mcast_serve
module Online = Distributed.Online

let small_cfg ~n_aps ~n_users =
  { Scenario_gen.paper_default with n_aps; n_users; area_w = 500.; area_h = 500. }

(* Deterministic (seed)-indexed random instance + script, the churn
   battery's convention. *)
let case ~seed =
  let rng = Random.State.make [| seed; 0x5e71e |] in
  let n_aps = 3 + Random.State.int rng 6 in
  let n_users = 6 + Random.State.int rng 16 in
  let p = Scenario_gen.nth_problem ~seed ~index:0 (small_cfg ~n_aps ~n_users) in
  let n_aps, n_users = Problem.dims p in
  let script =
    Churn_script.random ~rng ~n_aps ~n_users
      { Churn_script.default_gen with n_events = 5 + Random.State.int rng 25 }
  in
  (p, script)

let config ?(queue_limit = 256) ?(obj_label = "mnu") p =
  {
    Replay_log.objective = Replay_log.objective_of_label obj_label;
    obj_label;
    mode = `Sequential;
    max_rounds = 200;
    queue_limit;
    tiers = Problem.distinct_rates p;
    scenario_digest = None;
  }

let hello = Protocol.Hello { version = Protocol.version }

let payloads_of_script script =
  match Adapter.inputs_of_script script with
  | Error e -> Alcotest.fail (Adapter.error_message e)
  | Ok inputs ->
      List.map Protocol.render_input
        ((hello :: inputs) @ [ Protocol.Flush; Protocol.Snapshot; Protocol.Bye ])

let render_outputs outs =
  String.concat "\n" (List.map Protocol.render_output outs)

let assert_clean outs =
  List.iter
    (function
      | Protocol.Error { code; detail } ->
          Alcotest.failf "unexpected %s error: %s"
            (Protocol.error_code_name code)
            detail
      | _ -> ())
    outs

(* Run a full session (hello .. bye) over [payloads] at [jobs]. *)
let run_session ~jobs ~config p payloads =
  Harness.Pool.with_pool ~jobs @@ fun pool ->
  let t = Server.create ~fanout:(Harness.Pool.run pool) ~config p in
  let outs = List.concat_map (Server.handle_frame t) payloads in
  let (_ : Protocol.output list) = Server.finish t in
  (t, outs)

let digest s = Digest.to_hex (Digest.string s)

let read_golden path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      match In_channel.input_all ic |> String.trim |> String.split_on_char '\n'
      with
      | [ a; b ] -> (String.trim a, String.trim b)
      | _ -> Alcotest.failf "malformed golden file %s" path)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> In_channel.input_all ic)

let drain_items dec =
  let rec go acc =
    match Protocol.Decoder.next dec with
    | None -> List.rev acc
    | Some it -> go (it :: acc)
  in
  go []

(* ------------------------------------------------------------------ *)
(* Codec fuzz                                                          *)
(* ------------------------------------------------------------------ *)

(* Byte soup biased toward framing-relevant characters. *)
let wire_string =
  QCheck.string_gen_of_size
    QCheck.Gen.(int_bound 300)
    QCheck.Gen.(
      frequency
        [
          (4, map Char.chr (int_range 32 126));
          (2, map Char.chr (int_bound 255));
          (2, return '\n');
          (2, oneofl [ '0'; '1'; '9'; ' ' ]);
        ])

let fuzz_instance = lazy (case ~seed:7)

let qcheck_garbage_total =
  QCheck.Test.make ~name:"fuzz: garbage never crashes decoder or session"
    ~count:250
    QCheck.(pair (int_range 1 7) wire_string)
    (fun (chunk, soup) ->
      let p, _ = Lazy.force fuzz_instance in
      let t = Server.create ~config:(config p) p in
      let dec = Protocol.Decoder.create () in
      let n = String.length soup in
      let i = ref 0 in
      while !i < n do
        let len = min chunk (n - !i) in
        Protocol.Decoder.feed dec (String.sub soup !i len);
        i := !i + len;
        List.iter
          (function
            | Protocol.Decoder.Frame payload ->
                (* every reply to a decoded frame must itself render *)
                List.iter
                  (fun o -> ignore (Protocol.render_output o))
                  (Server.handle_frame t payload)
            | Protocol.Decoder.Corrupt (code, detail) ->
                ignore (Protocol.error_code_name code);
                (* sanitized details stay single-line *)
                if String.contains detail '\n' then
                  Alcotest.fail "corrupt detail contains a newline")
          (drain_items dec)
      done;
      let (_ : Protocol.output list) = Server.finish t in
      true)

let qcheck_truncation_prefix =
  QCheck.Test.make
    ~name:"fuzz: every byte prefix of a valid stream decodes a frame prefix"
    ~count:15
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let _, script = case ~seed in
      let stream =
        match Adapter.frames_of_script script with
        | Ok s -> s
        | Error e -> Alcotest.fail (Adapter.error_message e)
      in
      let full =
        let dec = Protocol.Decoder.create () in
        Protocol.Decoder.feed dec stream;
        List.map
          (function
            | Protocol.Decoder.Frame payload -> payload
            | Protocol.Decoder.Corrupt (_, d) ->
                Alcotest.failf "valid stream decoded as corrupt: %s" d)
          (drain_items dec)
      in
      (* frame boundaries: cumulative offsets where a cut is clean *)
      let boundaries = Hashtbl.create 64 in
      let off = ref 0 in
      Hashtbl.replace boundaries 0 ();
      List.iter
        (fun payload ->
          off := !off + String.length (Protocol.frame payload);
          Hashtbl.replace boundaries !off ())
        full;
      for cut = 0 to String.length stream do
        let dec = Protocol.Decoder.create () in
        Protocol.Decoder.feed dec (String.sub stream 0 cut);
        let got =
          List.map
            (function
              | Protocol.Decoder.Frame payload -> payload
              | Protocol.Decoder.Corrupt (_, d) ->
                  Alcotest.failf "cut %d decoded corruption: %s" cut d)
            (drain_items dec)
        in
        let rec is_prefix xs ys =
          match (xs, ys) with
          | [], _ -> true
          | x :: xs', y :: ys' -> String.equal x y && is_prefix xs' ys'
          | _ :: _, [] -> false
        in
        if not (is_prefix got full) then
          Alcotest.failf "cut %d is not a frame prefix" cut;
        let clean = Hashtbl.mem boundaries cut in
        if Protocol.Decoder.at_boundary dec <> clean then
          Alcotest.failf "cut %d: at_boundary should be %b" cut clean
      done;
      true)

let input_gen =
  let open QCheck.Gen in
  let fix f = if Float.is_finite f && f >= 0. then f else 1. in
  let event =
    frequency
      [
        (3, map (fun u -> Protocol.Arrive { user = u }) (int_bound 50));
        (3, map (fun u -> Protocol.Depart { user = u }) (int_bound 50));
        (1, map (fun a -> Protocol.Ap_fail { ap = a }) (int_bound 20));
        (1, map (fun a -> Protocol.Ap_recover { ap = a }) (int_bound 20));
        ( 2,
          map3
            (fun u a r -> Protocol.Set_rate { user = u; ap = a; rate = fix r })
            (int_bound 50) (int_bound 20) pfloat );
        ( 1,
          map2
            (fun u s -> Protocol.Drift { user = u; steps = s })
            (int_bound 50) (int_range (-5) 5) );
      ]
  in
  frequency
    [
      ( 8,
        map2
          (fun t e -> Protocol.Event { time = fix t; event = e })
          pfloat event );
      (1, return Protocol.Flush);
      (1, return Protocol.Snapshot);
      (1, return Protocol.Bye);
      (1, return hello);
    ]

let qcheck_roundtrip =
  QCheck.Test.make ~name:"codec: render/frame/decode/parse round-trips exactly"
    ~count:200
    (QCheck.make
       ~print:(fun (_, is) ->
         String.concat " | " (List.map Protocol.render_input is))
       QCheck.Gen.(pair (int_range 1 9) (list_size (1 -- 20) input_gen)))
    (fun (chunk, inputs) ->
      (* payload-level identity *)
      List.iter
        (fun i ->
          match Protocol.parse_input (Protocol.render_input i) with
          | Ok i' when i = i' -> ()
          | Ok _ -> Alcotest.failf "reparse differs: %s" (Protocol.render_input i)
          | Error (_, d) ->
              Alcotest.failf "reparse failed on %s: %s" (Protocol.render_input i)
                d)
        inputs;
      (* stream-level identity under arbitrary chunking *)
      let stream =
        String.concat ""
          (List.map (fun i -> Protocol.frame (Protocol.render_input i)) inputs)
      in
      let dec = Protocol.Decoder.create () in
      let got = ref [] in
      let n = String.length stream in
      let i = ref 0 in
      while !i < n do
        let len = min chunk (n - !i) in
        Protocol.Decoder.feed dec (String.sub stream !i len);
        i := !i + len;
        List.iter
          (function
            | Protocol.Decoder.Frame payload -> got := payload :: !got
            | Protocol.Decoder.Corrupt (_, d) ->
                Alcotest.failf "valid stream corrupt: %s" d)
          (drain_items dec)
      done;
      if not (Protocol.Decoder.at_boundary dec) then
        Alcotest.fail "valid stream left the decoder mid-frame";
      List.rev !got = List.map Protocol.render_input inputs)

let test_oversize_recovery () =
  let dec = Protocol.Decoder.create () in
  (* declared length beyond max_frame, body never buffered; then a bad
     length prefix; then a healthy frame — the decoder recovers each time *)
  Protocol.Decoder.feed dec "9999999 x\n";
  Protocol.Decoder.feed dec "123456789 y\n";
  Protocol.Decoder.feed dec "12x hello\n";
  Protocol.Decoder.feed dec (Protocol.frame "flush");
  (match drain_items dec with
  | [
   Protocol.Decoder.Corrupt (Protocol.Oversize, _);
   Protocol.Decoder.Corrupt (Protocol.Bad_frame, _);
   Protocol.Decoder.Corrupt (Protocol.Bad_frame, _);
   Protocol.Decoder.Frame "flush";
  ] ->
      ()
  | items ->
      Alcotest.failf "unexpected decode: %d items" (List.length items));
  Alcotest.(check bool) "boundary after recovery" true
    (Protocol.Decoder.at_boundary dec);
  (* a frame whose declared length does not land on the newline *)
  let dec = Protocol.Decoder.create () in
  Protocol.Decoder.feed dec "3 flush\n";
  (match drain_items dec with
  | [ Protocol.Decoder.Corrupt (Protocol.Bad_frame, _) ] -> ()
  | _ -> Alcotest.fail "length/terminator mismatch must be corrupt");
  (* unparseable-but-well-framed payloads are Bad_input at parse level *)
  List.iter
    (fun (payload, expect) ->
      match Protocol.parse_input payload with
      | Error (code, _) when code = expect -> ()
      | Ok _ -> Alcotest.failf "parsed %S" payload
      | Error (code, _) ->
          Alcotest.failf "%S: expected %s, got %s" payload
            (Protocol.error_code_name expect)
            (Protocol.error_code_name code))
    [
      ("at nan arrive 1", Protocol.Bad_input);
      ("at -1 arrive 1", Protocol.Bad_input);
      ("at 1 arrive x", Protocol.Bad_input);
      ("at 1 set-rate 0 0 nan", Protocol.Bad_input);
      ("at 1 teleport 3", Protocol.Bad_input);
      ("hello wlan-mcast-xx 1", Protocol.Bad_hello);
      ("", Protocol.Bad_input);
    ]

(* ------------------------------------------------------------------ *)
(* Batch semantics                                                     *)
(* ------------------------------------------------------------------ *)

let shuffle rng l =
  let a = Array.of_list l in
  for i = Array.length a - 1 downto 1 do
    let j = Random.State.int rng (i + 1) in
    let t = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- t
  done;
  Array.to_list a

let qcheck_batch_commutes =
  QCheck.Test.make
    ~name:"same-timestamp arrivals commute (any order, same batch)" ~count:40
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let p, _ = case ~seed in
      let _, n_users = Problem.dims p in
      let rng = Random.State.make [| seed; 0xba7c4 |] in
      let users =
        List.filter
          (fun _ -> Random.State.bool rng)
          (List.init n_users Fun.id)
      in
      let session order =
        let t = Server.create ~config:(config p) p in
        let outs = ref (Server.handle_input t hello) in
        List.iter
          (fun u ->
            outs :=
              !outs
              @ Server.handle_input t
                  (Protocol.Event { time = 1.; event = Protocol.Arrive { user = u } }))
          order;
        outs := !outs @ Server.handle_input t Protocol.Flush;
        assert_clean !outs;
        (Server.state_digest t, render_outputs !outs)
      in
      session users = session (shuffle rng users))

let test_forced_settle () =
  let p, _ = case ~seed:3 in
  let t = Server.create ~config:(config ~queue_limit:3 p) p in
  assert_clean (Server.handle_input t hello);
  let arrive u =
    Server.handle_input t
      (Protocol.Event { time = 1.; event = Protocol.Arrive { user = u } })
  in
  assert_clean (arrive 0);
  assert_clean (arrive 1);
  let third = arrive 2 in
  assert_clean third;
  (match
     List.filter_map
       (function
         | Protocol.Settled { forced; events; _ } -> Some (forced, events)
         | _ -> None)
       third
   with
  | [ (true, 3) ] -> ()
  | _ -> Alcotest.fail "third pending event must force a flagged settle");
  assert_clean (arrive 3);
  let flushed = Server.handle_input t Protocol.Flush in
  assert_clean flushed;
  (match
     List.filter_map
       (function
         | Protocol.Settled { forced; events; _ } -> Some (forced, events)
         | _ -> None)
       flushed
   with
  | [ (false, 1) ] -> ()
  | _ -> Alcotest.fail "flush settles the leftover event unforced");
  let s = Server.stats t in
  Alcotest.(check int) "forced settles" 1 s.Server.forced_settles;
  Alcotest.(check int) "batches" 2 s.Server.batches;
  Alcotest.(check int) "no refusals" 0 s.Server.errors

(* ------------------------------------------------------------------ *)
(* Session discipline                                                  *)
(* ------------------------------------------------------------------ *)

let expect_error code outs =
  match outs with
  | [ Protocol.Error { code = c; _ } ] when c = code -> ()
  | _ ->
      Alcotest.failf "expected %s error, got: %s"
        (Protocol.error_code_name code)
        (render_outputs outs)

let test_session_discipline () =
  let p, _ = case ~seed:1 in
  let n_aps, n_users = Problem.dims p in
  let t = Server.create ~config:(config p) p in
  let ev time event = Protocol.Event { time; event } in
  (* hello-first *)
  expect_error Protocol.Expected_hello
    (Server.handle_input t (ev 0. (Protocol.Arrive { user = 0 })));
  expect_error Protocol.Bad_hello
    (Server.handle_input t (Protocol.Hello { version = 99 }));
  (match Server.handle_input t hello with
  | [ Protocol.Ok_hello { version } ] ->
      Alcotest.(check int) "negotiated version" Protocol.version version
  | outs -> Alcotest.failf "handshake failed: %s" (render_outputs outs));
  expect_error Protocol.Bad_hello (Server.handle_input t hello);
  (* range checks change nothing *)
  let log_before = Server.log_contents t in
  expect_error Protocol.Out_of_range
    (Server.handle_input t (ev 1. (Protocol.Arrive { user = n_users })));
  expect_error Protocol.Out_of_range
    (Server.handle_input t (ev 1. (Protocol.Ap_fail { ap = n_aps })));
  expect_error Protocol.Out_of_range
    (Server.handle_input t
       (ev 1. (Protocol.Set_rate { user = 0; ap = -1; rate = 1. })));
  Alcotest.(check string) "refusals are not logged" log_before
    (Server.log_contents t);
  (* monotone time, batch granularity *)
  assert_clean (Server.handle_input t (ev 5. (Protocol.Arrive { user = 0 })));
  expect_error Protocol.Non_monotone
    (Server.handle_input t (ev 3. (Protocol.Arrive { user = 1 })));
  assert_clean (Server.handle_input t (ev 5. (Protocol.Arrive { user = 1 })));
  let advanced = Server.handle_input t (ev 6. (Protocol.Depart { user = 0 })) in
  assert_clean advanced;
  if
    not
      (List.exists
         (function Protocol.Settled _ -> true | _ -> false)
         advanced)
  then Alcotest.fail "advancing time must settle the open batch";
  (* bye closes for good *)
  assert_clean (Server.handle_input t Protocol.Flush);
  assert_clean (Server.handle_input t Protocol.Bye);
  Alcotest.(check bool) "closed" true (Server.closed t);
  expect_error Protocol.Closed (Server.handle_input t Protocol.Flush);
  expect_error Protocol.Closed
    (Server.handle_input t (ev 7. (Protocol.Arrive { user = 0 })));
  let final = Server.log_contents t in
  Alcotest.(check int) "refusal tally" 9 (Server.stats t).Server.errors;
  (* finish after bye is a no-op *)
  (match Server.finish t with
  | [] -> ()
  | outs -> Alcotest.failf "finish after bye: %s" (render_outputs outs));
  Alcotest.(check string) "log stable after close" final (Server.log_contents t)

(* ------------------------------------------------------------------ *)
(* Live vs replay, jobs 1 vs jobs 4                                    *)
(* ------------------------------------------------------------------ *)

let qcheck_live_replay =
  QCheck.Test.make
    ~name:"live session = replay, byte-identical at jobs 1 and 4" ~count:20
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let p, script = case ~seed in
      let cfg = config p in
      let payloads = payloads_of_script script in
      let t1, o1 = run_session ~jobs:1 ~config:cfg p payloads in
      let t4, o4 = run_session ~jobs:4 ~config:cfg p payloads in
      assert_clean o1;
      let log = Server.log_contents t1 in
      if not (String.equal log (Server.log_contents t4)) then
        Alcotest.fail "replay log differs between jobs 1 and 4";
      if not (String.equal (render_outputs o1) (render_outputs o4)) then
        Alcotest.fail "replies differ between jobs 1 and 4";
      if not (String.equal (Server.state_digest t1) (Server.state_digest t4))
      then Alcotest.fail "state digest differs between jobs 1 and 4";
      let header, entries = Replay_log.parse log in
      let r =
        Server.replay ~config:header ~events:(Replay_log.events entries) p
      in
      String.equal (Server.log_contents r) log
      && String.equal (Server.state_digest r) (Server.state_digest t1))

(* ------------------------------------------------------------------ *)
(* Crash/recovery differential                                         *)
(* ------------------------------------------------------------------ *)

let rec drop n l = if n <= 0 then l else match l with [] -> [] | _ :: tl -> drop (n - 1) tl

let crash_recovery_case seed =
  let p, script = case ~seed in
  let cfg = config p in
  let live, live_outs = run_session ~jobs:1 ~config:cfg p (payloads_of_script script) in
  assert_clean live_outs;
  let full_log = Server.log_contents live in
  let final_digest = Server.state_digest live in
  let full_events =
    let _, entries = Replay_log.parse full_log in
    Replay_log.events entries
  in
  let hdr_len = String.length (Replay_log.render_header cfg) in
  (* cut at every line boundary, and torn mid-line three bytes in *)
  let cuts = ref [ 0; String.length full_log ] in
  String.iteri
    (fun i c ->
      if c = '\n' then begin
        cuts := (i + 1) :: !cuts;
        if i + 4 <= String.length full_log then cuts := (i + 4) :: !cuts
      end)
    full_log;
  List.iter
    (fun cut ->
      let prefix = String.sub full_log 0 cut in
      if cut < hdr_len then (
        (* an incomplete header is unrecoverable, never misparsed *)
        match Replay_log.parse prefix with
        | exception Replay_log.Parse_error _ -> ()
        | header, _ ->
            if header = cfg then
              Alcotest.failf "cut %d: truncated header parsed as complete" cut)
      else begin
        let header, entries =
          try Replay_log.parse prefix
          with Replay_log.Parse_error msg ->
            Alcotest.failf "cut %d: unparseable prefix: %s" cut msg
        in
        let done_events = Replay_log.events entries in
        let r = Server.replay ~config:header ~events:done_events p in
        (* the complete-line portion and the regenerated log are both
           prefixes of the uninterrupted log — regen falls short only
           when the crash tore the out-block of a settle whose trigger
           was never written (the pending batch re-derives it) *)
        let complete =
          match String.rindex_opt prefix '\n' with
          | None -> ""
          | Some i -> String.sub prefix 0 (i + 1)
        in
        let regen = Server.log_contents r in
        let n = min (String.length regen) (String.length complete) in
        if not (String.equal (String.sub regen 0 n) (String.sub complete 0 n))
        then Alcotest.failf "cut %d: regenerated log diverges from the prefix" cut;
        if
          not
            (String.length regen <= String.length full_log
            && String.equal
                 (String.sub full_log 0 (String.length regen))
                 regen)
        then
          Alcotest.failf "cut %d: regenerated log is not a prefix of the live log"
            cut;
        (* resume: feed everything the truncated log had not captured *)
        List.iter
          (fun payload -> assert_clean (Server.handle_frame r payload))
          (drop (List.length done_events) full_events);
        if not (String.equal (Server.log_contents r) full_log) then
          Alcotest.failf "cut %d: resumed log differs from uninterrupted run" cut;
        if not (String.equal (Server.state_digest r) final_digest) then
          Alcotest.failf "cut %d: resumed state differs from uninterrupted run"
            cut
      end)
    !cuts;
  true

let qcheck_crash_recovery =
  QCheck.Test.make
    ~name:"crash at any prefix: restart + replay + resume = uninterrupted run"
    ~count:6
    QCheck.(int_range 0 10_000)
    crash_recovery_case

(* ------------------------------------------------------------------ *)
(* Golden: the committed demo event stream                             *)
(* ------------------------------------------------------------------ *)

let demo_scenario () = Scenario_io.of_file "../scenarios/churn_demo.scn"

let demo_config sc =
  {
    Replay_log.objective = Replay_log.objective_of_label "mnu";
    obj_label = "mnu";
    mode = `Sequential;
    max_rounds = 200;
    queue_limit = 256;
    tiers =
      List.sort (fun a b -> Float.compare b a)
        (Rate_table.rates sc.Scenario.rate_table);
    scenario_digest =
      Some (Digest.to_hex (Digest.string (Scenario_io.to_string sc)));
  }

let demo_session ~jobs =
  let sc = demo_scenario () in
  let p = Scenario.to_problem sc in
  let stream = read_file "../scenarios/serve_demo.ev" in
  Harness.Pool.with_pool ~jobs @@ fun pool ->
  let t =
    Server.create ~fanout:(Harness.Pool.run pool) ~config:(demo_config sc) p
  in
  let dec = Protocol.Decoder.create () in
  Protocol.Decoder.feed dec stream;
  let outs =
    List.concat_map
      (function
        | Protocol.Decoder.Frame payload -> Server.handle_frame t payload
        | Protocol.Decoder.Corrupt (code, detail) ->
            Alcotest.failf "demo stream corrupt: %s %s"
              (Protocol.error_code_name code)
              detail)
      (drain_items dec)
  in
  if not (Protocol.Decoder.at_boundary dec) then
    Alcotest.fail "demo stream ends mid-frame";
  let (_ : Protocol.output list) = Server.finish t in
  assert_clean outs;
  (Server.log_contents t, Server.state_digest t, render_outputs outs)

let test_golden_serve_demo () =
  let l1, d1, o1 = demo_session ~jobs:1 in
  let l4, d4, o4 = demo_session ~jobs:4 in
  Alcotest.(check string) "log j1 = j4" l1 l4;
  Alcotest.(check string) "state j1 = j4" d1 d4;
  Alcotest.(check string) "replies j1 = j4" o1 o4;
  let gl, gs = read_golden "golden/serve_demo.digest" in
  Alcotest.(check string) "log digest" gl (digest l1);
  Alcotest.(check string) "state digest" gs d1;
  (* and the log the demo produced replays to itself *)
  let header, entries = Replay_log.parse l1 in
  let p = Scenario.to_problem (demo_scenario ()) in
  let r = Server.replay ~config:header ~events:(Replay_log.events entries) p in
  Alcotest.(check string) "replayed log" l1 (Server.log_contents r);
  Alcotest.(check string) "replayed state" d1 (Server.state_digest r)

(* ------------------------------------------------------------------ *)
(* Online edge cases the daemon exposes                                *)
(* ------------------------------------------------------------------ *)

let assoc_ints net n_users =
  Array.init n_users (fun u ->
      match Association.ap_of (Online.assoc net) u with
      | Some a -> a
      | None -> Association.none)

let nash_check what net =
  let eff = Online.effective_problem net in
  let assoc = Online.assoc net in
  let loads = Loads.ap_loads eff assoc in
  let _, n_users = Problem.dims eff in
  for u = 0 to n_users - 1 do
    match
      Distributed.decide eff assoc ~loads ~objective:Distributed.Min_total_load
        u
    with
    | None -> ()
    | Some ap -> Alcotest.failf "%s: user %d still wants AP %d" what u ap
  done

let test_only_candidate_lost () =
  let p, _ = case ~seed:5 in
  let n_aps, n_users = Problem.dims p in
  let net = Online.create ~objective:Distributed.Min_total_load p in
  let (_ : Online.settle_stats) = Online.settle net in
  (* find a served user and strip every alternative link *)
  let u, a =
    let rec pick u =
      if u >= n_users then Alcotest.fail "no served user in seed 5"
      else
        match Association.ap_of (Online.assoc net) u with
        | Some a -> (u, a)
        | None -> pick (u + 1)
    in
    pick 0
  in
  for ap = 0 to n_aps - 1 do
    if ap <> a then
      match Online.set_rate net ~user:u ~ap 0. with
      | `Changed | `Unchanged -> ()
      | `Detached -> Alcotest.fail "zeroing a non-serving link cannot detach"
  done;
  let (_ : Online.settle_stats) = Online.settle net in
  Alcotest.(check bool) "still on the only candidate" true
    (Association.ap_of (Online.assoc net) u = Some a);
  (* now the only candidate goes out of range mid-service *)
  (match Online.set_rate net ~user:u ~ap:a 0. with
  | `Detached -> ()
  | `Changed | `Unchanged ->
      Alcotest.fail "losing the serving link must report Detached");
  let st = Online.settle net in
  Alcotest.(check bool) "converged" true st.Online.converged;
  Alcotest.(check bool) "user is unserved" true
    (Association.ap_of (Online.assoc net) u = None);
  nash_check "only-candidate" net

let test_depart_last_receiver_in_batch () =
  let p, _ = case ~seed:8 in
  let t = Server.create ~config:(config p) p in
  assert_clean (Server.handle_input t hello);
  let ev time event = Protocol.Event { time; event } in
  assert_clean (Server.handle_input t (ev 1. (Protocol.Arrive { user = 0 })));
  assert_clean (Server.handle_input t Protocol.Flush);
  (* one in-flight batch: a new arrival, then every receiver departs *)
  assert_clean (Server.handle_input t (ev 2. (Protocol.Arrive { user = 1 })));
  assert_clean (Server.handle_input t (ev 2. (Protocol.Depart { user = 1 })));
  assert_clean (Server.handle_input t (ev 2. (Protocol.Depart { user = 0 })));
  let outs = Server.handle_input t Protocol.Snapshot in
  assert_clean outs;
  (match
     List.filter_map
       (function
         | Protocol.Settled { events; total_load; converged; _ } ->
             Some (events, total_load, converged)
         | _ -> None)
       outs
   with
  | [ (3, total, true) ] ->
      Alcotest.(check bool) "empty network has zero load" true
        (Float.equal total 0.)
  | _ -> Alcotest.fail "expected one settled batch of 3 events");
  match
    List.filter_map
      (function
        | Protocol.State { present; served; _ } -> Some (present, served)
        | _ -> None)
      outs
  with
  | [ (0, 0) ] -> ()
  | _ -> Alcotest.fail "snapshot must report an empty network"

let test_fail_recover_atomic () =
  let p, _ = case ~seed:11 in
  let n_aps, n_users = Problem.dims p in
  let net = Online.create ~objective:Distributed.Min_total_load p in
  let (_ : Online.settle_stats) = Online.settle net in
  let a =
    let rec pick ap =
      if ap >= n_aps then Alcotest.fail "no loaded AP in seed 11"
      else if Association.users_of (Online.assoc net) ~ap <> [] then ap
      else pick (ap + 1)
    in
    pick 0
  in
  let members = Association.users_of (Online.assoc net) ~ap:a in
  (* fail + recover back-to-back, one atomic step before the settle *)
  (match Online.fail_ap net ~ap:a with
  | `Failed detached ->
      Alcotest.(check (list int)) "detached = members" members detached
  | `Dead -> Alcotest.fail "AP should be alive");
  Alcotest.(check bool) "recover flips it back" true
    (Online.recover_ap net ~ap:a);
  Alcotest.(check bool) "alive again" true (Online.ap_alive net a);
  let before = assoc_ints net n_users in
  let st = Online.settle net in
  let after = assoc_ints net n_users in
  Alcotest.(check bool) "converged" true st.Online.converged;
  (* the new [changed] field is exactly the association diff *)
  let diff =
    List.filter_map
      (fun u ->
        if before.(u) <> after.(u) then Some (u, before.(u), after.(u))
        else None)
      (List.init n_users Fun.id)
  in
  Alcotest.(check bool) "changed = manual diff" true (st.Online.changed = diff);
  Alcotest.(check int) "reassociated = |changed|"
    (List.length st.Online.changed)
    st.Online.reassociated;
  (* the detached members found a serving AP again *)
  List.iter
    (fun u ->
      if Association.ap_of (Online.assoc net) u = None then
        Alcotest.failf "user %d left stranded after recover" u)
    members;
  nash_check "fail+recover" net

let qcheck_changed_diff =
  QCheck.Test.make
    ~name:"settle_stats.changed = association diff across random deltas"
    ~count:40
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let p, _ = case ~seed in
      let n_aps, n_users = Problem.dims p in
      let net = Online.create ~objective:Distributed.Min_total_load p in
      let (_ : Online.settle_stats) = Online.settle net in
      let rng = Random.State.make [| seed; 0xd1ff |] in
      for _ = 1 to 6 do
        match Random.State.int rng 4 with
        | 0 -> ignore (Online.arrive net ~user:(Random.State.int rng n_users))
        | 1 ->
            ignore
              (Online.depart net ~user:(Random.State.int rng n_users)
                : [ `Absent | `Served of int | `Unserved ])
        | 2 ->
            ignore
              (Online.fail_ap net ~ap:(Random.State.int rng n_aps)
                : [ `Dead | `Failed of int list ])
        | _ -> ignore (Online.recover_ap net ~ap:(Random.State.int rng n_aps))
      done;
      let before = assoc_ints net n_users in
      let st = Online.settle net in
      let after = assoc_ints net n_users in
      let diff =
        List.filter_map
          (fun u ->
            if before.(u) <> after.(u) then Some (u, before.(u), after.(u))
            else None)
          (List.init n_users Fun.id)
      in
      st.Online.changed = diff
      && st.Online.reassociated = List.length diff)

let test_serve_reports_interruptions () =
  let p, _ = case ~seed:5 in
  let _, n_users = Problem.dims p in
  let t = Server.create ~config:(config p) p in
  assert_clean (Server.handle_input t hello);
  let ev time event = Protocol.Event { time; event } in
  let outs = ref [] in
  for u = 0 to n_users - 1 do
    outs := !outs @ Server.handle_input t (ev 1. (Protocol.Arrive { user = u }))
  done;
  outs := !outs @ Server.handle_input t Protocol.Flush;
  assert_clean !outs;
  (* read the association off the wire deltas *)
  let tbl = Hashtbl.create 16 in
  List.iter
    (function
      | Protocol.Delta { user; to_ap; _ } -> Hashtbl.replace tbl user to_ap
      | _ -> ())
    !outs;
  let u, a =
    let rec pick u =
      if u >= n_users then Alcotest.fail "no served user on the wire"
      else
        match Hashtbl.find_opt tbl u with
        | Some a when a >= 0 -> (u, a)
        | _ -> pick (u + 1)
    in
    pick 0
  in
  (* cutting the serving link is a forced session interruption *)
  let cut =
    Server.handle_input t
      (ev 2. (Protocol.Set_rate { user = u; ap = a; rate = 0. }))
  in
  assert_clean cut;
  let outs = Server.handle_input t Protocol.Flush in
  assert_clean outs;
  (match
     List.filter_map
       (function
         | Protocol.Settled { interrupted; _ } -> Some interrupted
         | _ -> None)
       outs
   with
  | [ 1 ] -> ()
  | _ -> Alcotest.fail "the cut session must be counted as interrupted");
  (* the detach is applied at event time, before the settle snapshots
     the association: any delta for the cut user re-homes from unserved,
     and never back onto the dead link *)
  List.iter
    (function
      | Protocol.Delta { user; from_ap; to_ap; _ } when user = u ->
          Alcotest.(check int) "delta starts from unserved" Association.none
            from_ap;
          if to_ap = a then
            Alcotest.failf "user %d re-homed onto the zero-rate AP %d" u a
      | _ -> ())
    outs

(* ------------------------------------------------------------------ *)
(* Adapter                                                             *)
(* ------------------------------------------------------------------ *)

let test_adapter () =
  (* order-preserving expansion, bursts flattened into the same step *)
  (match
     Adapter.inputs_of_events
       [
         { Churn_script.time = 1.; event = Burst { users = [ 3; 1 ] } };
         { time = 2.; event = Leave { user = 3 } };
       ]
   with
  | Ok
      [
        Protocol.Event { time = t1; event = Protocol.Arrive { user = 3 } };
        Protocol.Event { time = t2; event = Protocol.Arrive { user = 1 } };
        Protocol.Event { time = t3; event = Protocol.Depart { user = 3 } };
      ] ->
      Alcotest.(check bool) "times" true
        (Float.equal t1 1. && Float.equal t2 1. && Float.equal t3 2.)
  | Ok _ -> Alcotest.fail "wrong expansion"
  | Error e -> Alcotest.fail (Adapter.error_message e));
  (* a list that bypassed Churn_script.make's sort is refused, typed *)
  match
    Adapter.inputs_of_events
      [
        { Churn_script.time = 2.; event = Join { user = 0 } };
        { time = 1.; event = Leave { user = 1 } };
      ]
  with
  | Error (Adapter.Non_monotone { index; prev; time }) ->
      Alcotest.(check int) "index" 1 index;
      Alcotest.(check bool) "times" true
        (Float.equal prev 2. && Float.equal time 1.);
      ignore
        (Adapter.error_message (Adapter.Non_monotone { index; prev; time })
          : string)
  | Ok _ -> Alcotest.fail "non-monotone events must be refused"

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "serve"
    [
      ( "codec",
        [
          QCheck_alcotest.to_alcotest qcheck_garbage_total;
          QCheck_alcotest.to_alcotest qcheck_truncation_prefix;
          QCheck_alcotest.to_alcotest qcheck_roundtrip;
          Alcotest.test_case "oversize and corruption recovery" `Quick
            test_oversize_recovery;
        ] );
      ( "batch",
        [
          QCheck_alcotest.to_alcotest qcheck_batch_commutes;
          Alcotest.test_case "queue-limit backpressure forces a settle" `Quick
            test_forced_settle;
        ] );
      ( "session",
        [
          Alcotest.test_case "handshake, ranges, monotone time, bye" `Quick
            test_session_discipline;
        ] );
      ( "replay",
        [
          QCheck_alcotest.to_alcotest qcheck_live_replay;
          QCheck_alcotest.to_alcotest qcheck_crash_recovery;
        ] );
      ( "golden",
        [
          Alcotest.test_case "demo stream, j1 = j4 = digest" `Quick
            test_golden_serve_demo;
        ] );
      ( "online-edges",
        [
          Alcotest.test_case "only candidate AP lost mid-service" `Quick
            test_only_candidate_lost;
          Alcotest.test_case "last receiver departs inside a batch" `Quick
            test_depart_last_receiver_in_batch;
          Alcotest.test_case "AP fail + recover in one atomic step" `Quick
            test_fail_recover_atomic;
          QCheck_alcotest.to_alcotest qcheck_changed_diff;
          Alcotest.test_case "interruptions reported on the wire" `Quick
            test_serve_reports_interruptions;
        ] );
      ( "adapter",
        [ Alcotest.test_case "expansion and typed rejection" `Quick test_adapter ]
      );
    ]
