(* Tests for the combinatorial substrate: bitsets, the lazy-greedy heap,
   weighted set cover (greedy + exact), MCG, SCG, subset sum and makespan
   scheduling, including approximation-bound properties against the exact
   solvers on random small instances. *)

open Optkit

let feq ?(eps = 1e-9) a b = Float.abs (a -. b) <= eps

(* ------------------------------------------------------------------ *)
(* Bitset                                                             *)
(* ------------------------------------------------------------------ *)

let test_bitset_basic () =
  let s = Bitset.create 100 in
  Alcotest.(check bool) "empty" true (Bitset.is_empty s);
  Bitset.add s 0;
  Bitset.add s 63;
  Bitset.add s 99;
  Alcotest.(check int) "cardinal" 3 (Bitset.cardinal s);
  Alcotest.(check bool) "mem 63" true (Bitset.mem s 63);
  Alcotest.(check bool) "not mem 64" false (Bitset.mem s 64);
  Bitset.remove s 63;
  Alcotest.(check (list int)) "to_list" [ 0; 99 ] (Bitset.to_list s)

let test_bitset_word_boundaries () =
  (* bits around the 62-bit word boundary *)
  let s = Bitset.create 200 in
  List.iter (Bitset.add s) [ 61; 62; 63; 123; 124; 125 ];
  Alcotest.(check int) "cardinal" 6 (Bitset.cardinal s);
  Alcotest.(check (list int)) "to_list" [ 61; 62; 63; 123; 124; 125 ]
    (Bitset.to_list s)

let test_bitset_set_ops () =
  let a = Bitset.of_list 50 [ 1; 2; 3; 10 ] in
  let b = Bitset.of_list 50 [ 2; 3; 4 ] in
  Alcotest.(check (list int)) "inter" [ 2; 3 ] Bitset.(to_list (inter a b));
  Alcotest.(check (list int)) "union" [ 1; 2; 3; 4; 10 ]
    Bitset.(to_list (union a b));
  Alcotest.(check (list int)) "diff" [ 1; 10 ] Bitset.(to_list (diff a b));
  Alcotest.(check int) "inter_cardinal" 2 (Bitset.inter_cardinal a b);
  Alcotest.(check bool) "subset no" false (Bitset.subset a b);
  Alcotest.(check bool) "subset yes" true
    (Bitset.subset (Bitset.of_list 50 [ 2; 3 ]) b)

let test_bitset_inplace () =
  let a = Bitset.of_list 50 [ 1; 2; 3 ] in
  Bitset.diff_inplace a (Bitset.of_list 50 [ 2 ]);
  Alcotest.(check (list int)) "diff_inplace" [ 1; 3 ] (Bitset.to_list a);
  Bitset.union_inplace a (Bitset.of_list 50 [ 7 ]);
  Alcotest.(check (list int)) "union_inplace" [ 1; 3; 7 ] (Bitset.to_list a)

let test_bitset_bounds () =
  let s = Bitset.create 10 in
  Alcotest.check_raises "out of bounds"
    (Invalid_argument "Bitset: index out of bounds") (fun () ->
      Bitset.add s 10);
  let t = Bitset.create 20 in
  Alcotest.check_raises "capacity mismatch"
    (Invalid_argument "Bitset: capacity mismatch") (fun () ->
      ignore (Bitset.inter_cardinal s t))

let test_bitset_first_inter () =
  let a = Bitset.of_list 200 [ 150; 199 ] in
  let b = Bitset.of_list 200 [ 10; 150 ] in
  Alcotest.(check (option int)) "first" (Some 150) (Bitset.first_inter a b);
  Alcotest.(check (option int)) "none" None
    (Bitset.first_inter a (Bitset.of_list 200 [ 10 ]))

let test_bitset_zero_capacity () =
  let s = Bitset.create 0 in
  Alcotest.(check int) "cardinal" 0 (Bitset.cardinal s);
  Alcotest.(check bool) "empty" true (Bitset.is_empty s);
  Alcotest.(check (list int)) "to_list" [] (Bitset.to_list s);
  Alcotest.(check bool) "full of nothing" true
    (Bitset.equal (Bitset.full 0) s)

let test_bitset_fold_order () =
  let s = Bitset.of_list 10 [ 7; 2; 5 ] in
  Alcotest.(check (list int)) "ascending fold" [ 7; 5; 2 ]
    (Bitset.fold (fun e acc -> e :: acc) s [])

let prop_bitset_cardinal_matches_list =
  QCheck.Test.make ~name:"bitset cardinal = list length" ~count:200
    QCheck.(list_of_size Gen.(int_range 0 60) (int_range 0 199))
    (fun l ->
      let s = Bitset.of_list 200 l in
      Bitset.cardinal s = List.length (List.sort_uniq compare l))

let prop_bitset_inter_cardinal =
  QCheck.Test.make ~name:"inter_cardinal = |inter as lists|" ~count:200
    QCheck.(
      pair
        (list_of_size Gen.(int_range 0 40) (int_range 0 150))
        (list_of_size Gen.(int_range 0 40) (int_range 0 150)))
    (fun (la, lb) ->
      let a = Bitset.of_list 151 la and b = Bitset.of_list 151 lb in
      let inter =
        List.filter (fun x -> List.mem x lb) (List.sort_uniq compare la)
      in
      Bitset.inter_cardinal a b = List.length inter)

(* ------------------------------------------------------------------ *)
(* Lazy_heap                                                          *)
(* ------------------------------------------------------------------ *)

let test_heap_pop_order () =
  let h = Lazy_heap.of_list [ (1., "a"); (3., "c"); (2., "b") ] in
  let revalidate _ = assert false in
  (* fresh priorities: revalidate returns the stored priority *)
  let reval v = match v with "a" -> 1. | "b" -> 2. | "c" -> 3. | _ -> 0. in
  ignore revalidate;
  Alcotest.(check (option (pair string (float 0.)))) "max c"
    (Some ("c", 3.))
    (Lazy_heap.pop_max h ~revalidate:reval);
  Alcotest.(check (option (pair string (float 0.)))) "then b"
    (Some ("b", 2.))
    (Lazy_heap.pop_max h ~revalidate:reval);
  Alcotest.(check (option (pair string (float 0.)))) "then a"
    (Some ("a", 1.))
    (Lazy_heap.pop_max h ~revalidate:reval);
  Alcotest.(check bool) "empty" true
    (Lazy_heap.pop_max h ~revalidate:reval = None)

let test_heap_lazy_revalidation () =
  (* stored priorities are stale; revalidation reorders correctly *)
  let h = Lazy_heap.of_list [ (10., "x"); (9., "y") ] in
  let fresh = function "x" -> 1. | "y" -> 8. | _ -> 0. in
  Alcotest.(check (option (pair string (float 0.)))) "y wins after decay"
    (Some ("y", 8.))
    (Lazy_heap.pop_max h ~revalidate:fresh)

let test_heap_drops_dead_entries () =
  let h = Lazy_heap.of_list [ (5., "dead"); (1., "alive") ] in
  let fresh = function "dead" -> neg_infinity | _ -> 1. in
  Alcotest.(check (option (pair string (float 0.)))) "alive survives"
    (Some ("alive", 1.))
    (Lazy_heap.pop_max h ~revalidate:fresh);
  Alcotest.(check bool) "dead dropped" true
    (Lazy_heap.pop_max h ~revalidate:fresh = None)

let test_heap_peek_keeps () =
  let h = Lazy_heap.of_list [ (2., "a") ] in
  let fresh _ = 2. in
  ignore (Lazy_heap.peek_max h ~revalidate:fresh);
  Alcotest.(check int) "still there" 1 (Lazy_heap.length h)

let prop_heap_sorts =
  QCheck.Test.make ~name:"heap with fresh priorities sorts descending"
    ~count:100
    QCheck.(list_of_size Gen.(int_range 1 50) (float_range 0. 100.))
    (fun floats ->
      let h = Lazy_heap.create () in
      List.iteri (fun i x -> Lazy_heap.push h ~prio:x i) floats;
      let arr = Array.of_list floats in
      let out = ref [] in
      let rec drain () =
        match Lazy_heap.pop_max h ~revalidate:(fun i -> arr.(i)) with
        | None -> ()
        | Some (_, p) ->
            out := p :: !out;
            drain ()
      in
      drain ();
      let sorted = List.sort compare floats in
      List.for_all2 (fun a b -> feq a b) sorted !out)

(* ------------------------------------------------------------------ *)
(* Set cover                                                          *)
(* ------------------------------------------------------------------ *)

let mk_cover ~n sets_costs =
  let sets = Array.of_list (List.map (fun (s, _) -> Bitset.of_list n s) sets_costs) in
  let costs = Array.of_list (List.map snd sets_costs) in
  let payload = Array.init (Array.length sets) Fun.id in
  Cover_instance.make ~n_elements:n ~sets ~costs ~payload ()

let test_greedy_cover_simple () =
  (* classic: one big cheap set beats many small ones *)
  let inst =
    mk_cover ~n:4
      [ ([ 0; 1; 2; 3 ], 2.); ([ 0 ], 1.); ([ 1 ], 1.); ([ 2; 3 ], 1.) ]
  in
  let r = Set_cover.greedy inst in
  Alcotest.(check int) "one set" 1 (List.length r.Set_cover.chosen);
  Alcotest.(check bool) "covered all" true (Bitset.is_empty r.uncovered);
  Alcotest.(check (float 1e-9)) "cost" 2. r.total_cost

let test_greedy_cover_partial () =
  let inst = mk_cover ~n:3 [ ([ 0 ], 1.) ] in
  let r = Set_cover.greedy inst in
  Alcotest.(check (list int)) "uncoverable left" [ 1; 2 ]
    (Bitset.to_list r.Set_cover.uncovered)

let test_greedy_cover_universe () =
  (* restricting the universe ignores other elements *)
  let inst = mk_cover ~n:4 [ ([ 0; 1 ], 1.); ([ 2 ], 5.) ] in
  let universe = Bitset.of_list 4 [ 0; 1 ] in
  let r = Set_cover.greedy ~universe inst in
  Alcotest.(check bool) "covered" true (Bitset.is_empty r.Set_cover.uncovered);
  Alcotest.(check (float 1e-9)) "only cheap set" 1. r.total_cost

let test_exact_cover_beats_greedy_trap () =
  (* a greedy trap: the best ratio ({0,1} at 2.0) leads greedy to a total
     of 1.9, but the whole-universe set costs only 1.6 *)
  let inst =
    mk_cover ~n:3
      [
        ([ 0; 1 ], 1.0);
        ([ 1; 2 ], 1.0);
        ([ 0; 1; 2 ], 1.6);
        ([ 2 ], 0.9);
        ([ 0 ], 0.9);
      ]
  in
  let g = Set_cover.greedy inst in
  let e = Option.get (Set_cover.exact inst) in
  Alcotest.(check (float 1e-9)) "exact 1.6" 1.6 e.Set_cover.cost;
  Alcotest.(check (float 1e-9)) "greedy 1.9" 1.9 g.total_cost;
  Alcotest.(check bool) "proved" true e.proved_optimal

let test_exact_cover_truncation () =
  (* node_limit 1 on the greedy-trap instance: the search must be cut off
     before it can prove anything, keeping the greedy incumbent *)
  let inst =
    mk_cover ~n:3
      [ ([ 0; 1 ], 1.0); ([ 1; 2 ], 1.0); ([ 0; 1; 2 ], 1.6); ([ 2 ], 0.9);
        ([ 0 ], 0.9) ]
  in
  match Set_cover.exact ~node_limit:1 inst with
  | None -> Alcotest.fail "coverable instance"
  | Some r ->
      Alcotest.(check bool) "not proved" false r.Set_cover.proved_optimal;
      (* the incumbent is still a valid cover (the greedy one, cost 1.9) *)
      let covered = Bitset.create 3 in
      List.iter
        (fun j -> Bitset.union_inplace covered (Cover_instance.set inst j))
        r.Set_cover.sets;
      Alcotest.(check int) "covers" 3 (Bitset.cardinal covered)

let test_exact_cover_infeasible () =
  let inst = mk_cover ~n:3 [ ([ 0 ], 1.) ] in
  Alcotest.(check bool) "no cover" true (Set_cover.exact inst = None)

let gen_cover_instance =
  QCheck.Gen.(
    let* n = int_range 1 10 in
    let* m = int_range 1 8 in
    let* sets =
      list_repeat m
        (let* members = list_size (int_range 1 n) (int_range 0 (n - 1)) in
         let* cost = float_range 0.1 5. in
         return (members, cost))
    in
    (* guarantee coverability with one universal set *)
    let universal = (List.init n Fun.id, 6.) in
    return (n, universal :: sets))

let arb_cover =
  QCheck.make
    ~print:(fun (n, sets) ->
      Fmt.str "n=%d sets=%a" n
        Fmt.(list ~sep:semi (pair (Dump.list int) float))
        sets)
    gen_cover_instance

let prop_greedy_within_ln_bound =
  QCheck.Test.make ~name:"greedy cover within (ln n + 1) of exact" ~count:150
    arb_cover (fun (n, sets) ->
      let inst = mk_cover ~n sets in
      let g = Set_cover.greedy inst in
      let e = Option.get (Set_cover.exact inst) in
      g.Set_cover.total_cost
      <= (e.Set_cover.cost *. (log (float_of_int n) +. 1.)) +. 1e-9)

let prop_exact_never_worse =
  QCheck.Test.make ~name:"exact cover <= greedy cover" ~count:150 arb_cover
    (fun (n, sets) ->
      let inst = mk_cover ~n sets in
      let g = Set_cover.greedy inst in
      let e = Option.get (Set_cover.exact inst) in
      e.Set_cover.cost <= g.Set_cover.total_cost +. 1e-9)

let test_layered_simple () =
  (* disjoint sets: layering must take them all, at exactly their cost *)
  let inst = mk_cover ~n:4 [ ([ 0; 1 ], 1.); ([ 2; 3 ], 2.) ] in
  let r = Set_cover.layered inst in
  Alcotest.(check bool) "covers" true (Bitset.is_empty r.Set_cover.uncovered);
  Alcotest.(check (float 1e-9)) "cost" 3. r.Set_cover.total_cost

let test_max_frequency () =
  let inst = mk_cover ~n:3 [ ([ 0; 1 ], 1.); ([ 1; 2 ], 1.); ([ 1 ], 1.) ] in
  Alcotest.(check int) "element 1 in 3 sets" 3 (Set_cover.max_frequency inst)

let test_lp_rounding_simple () =
  let inst =
    mk_cover ~n:4 [ ([ 0; 1 ], 1.); ([ 2; 3 ], 2.); ([ 0; 1; 2; 3 ], 10.) ]
  in
  match Set_cover.lp_rounding inst with
  | None -> Alcotest.fail "LP failed"
  | Some r ->
      Alcotest.(check bool) "covers" true (Bitset.is_empty r.Set_cover.uncovered);
      Alcotest.(check bool) "avoids the overpriced set" true
        (r.Set_cover.total_cost <= 3. +. 1e-6)

let prop_layered_is_f_approx =
  QCheck.Test.make ~name:"layering within f of exact and covers everything"
    ~count:150 arb_cover (fun (n, sets) ->
      let inst = mk_cover ~n sets in
      let f = Set_cover.max_frequency inst in
      let l = Set_cover.layered inst in
      let e = Option.get (Set_cover.exact inst) in
      Bitset.is_empty l.Set_cover.uncovered
      && l.Set_cover.total_cost
         <= (float_of_int f *. e.Set_cover.cost) +. 1e-6)

let prop_lp_rounding_is_f_approx =
  QCheck.Test.make ~name:"LP rounding within f of exact and covers everything"
    ~count:100 arb_cover (fun (n, sets) ->
      let inst = mk_cover ~n sets in
      let f = Set_cover.max_frequency inst in
      match Set_cover.lp_rounding inst with
      | None -> false
      | Some r ->
          let e = Option.get (Set_cover.exact inst) in
          Bitset.is_empty r.Set_cover.uncovered
          && r.Set_cover.total_cost
             <= (float_of_int f *. e.Set_cover.cost) +. 1e-6)

let prop_exact_is_cover =
  QCheck.Test.make ~name:"exact result covers the universe" ~count:150
    arb_cover (fun (n, sets) ->
      let inst = mk_cover ~n sets in
      let e = Option.get (Set_cover.exact inst) in
      let covered = Bitset.create n in
      List.iter
        (fun j -> Bitset.union_inplace covered (Cover_instance.set inst j))
        e.Set_cover.sets;
      Bitset.cardinal covered = n)

(* ------------------------------------------------------------------ *)
(* MCG                                                                *)
(* ------------------------------------------------------------------ *)

let mk_grouped ~n sets_costs_groups =
  let sets =
    Array.of_list (List.map (fun (s, _, _) -> Bitset.of_list n s) sets_costs_groups)
  in
  let costs = Array.of_list (List.map (fun (_, c, _) -> c) sets_costs_groups) in
  let group_of =
    Array.of_list (List.map (fun (_, _, g) -> g) sets_costs_groups)
  in
  let payload = Array.init (Array.length sets) Fun.id in
  Cover_instance.make ~n_elements:n ~sets ~costs ~group_of ~payload ()

let test_mcg_respects_budgets () =
  let inst =
    mk_grouped ~n:4
      [ ([ 0; 1 ], 0.6, 0); ([ 2 ], 0.6, 0); ([ 3 ], 0.5, 1) ]
  in
  let r = Mcg.greedy inst ~budgets:[| 1.0; 1.0 |] () in
  Alcotest.(check bool) "within budgets" true
    (Mcg.within_budgets r ~budgets:[| 1.0; 1.0 |]);
  (* group 0 can afford only one of its sets after the split *)
  Alcotest.(check bool) "coverage at least 2" true (Mcg.coverage r >= 2)

let test_mcg_filters_oversized_sets () =
  (* a set costing more than its group budget is never chosen *)
  let inst = mk_grouped ~n:2 [ ([ 0; 1 ], 2.0, 0); ([ 0 ], 0.5, 0) ] in
  let r = Mcg.greedy inst ~budgets:[| 1.0 |] () in
  List.iter
    (fun (s : Mcg.selection) ->
      if s.set = 0 then Alcotest.fail "oversized set chosen")
    r.Mcg.kept;
  Alcotest.(check int) "covers 1" 1 (Mcg.coverage r)

let test_mcg_split_keeps_larger_half () =
  (* reproduce the paper's Fig. 2 trace at the MCG level: S4 kept, S2 (the
     budget violator) dropped *)
  let inst =
    mk_grouped ~n:5
      [
        ([ 0; 2 ], 1.0, 0) (* S2: a1 s1 @3 *);
        ([ 2 ], 0.75, 0) (* S3 *);
        ([ 1; 3; 4 ], 0.75, 0) (* S4 *);
        ([ 1 ], 0.5, 0) (* S1: a1 s2 @6 *);
        ([ 2 ], 0.6, 1) (* S5 *);
        ([ 3 ], 0.6, 1) (* S6 *);
        ([ 3; 4 ], 1.0, 1) (* S7 *);
      ]
  in
  let r = Mcg.greedy inst ~budgets:[| 1.0; 1.0 |] () in
  Alcotest.(check int) "covers 3" 3 (Mcg.coverage r);
  Alcotest.(check (list int)) "covered = {1,3,4}" [ 1; 3; 4 ]
    (Bitset.to_list r.Mcg.covered)

let gen_grouped_instance =
  QCheck.Gen.(
    let* n = int_range 1 10 in
    let* n_groups = int_range 1 4 in
    let* m = int_range 1 10 in
    let* sets =
      list_repeat m
        (let* members = list_size (int_range 1 n) (int_range 0 (n - 1)) in
         let* cost = float_range 0.1 1.0 in
         let* g = int_range 0 (n_groups - 1) in
         return (members, cost, g))
    in
    let* budget = float_range 0.5 2.0 in
    return (n, n_groups, sets, budget))

let arb_grouped = QCheck.make gen_grouped_instance

let prop_mcg_budgets_hold =
  QCheck.Test.make ~name:"MCG split solution within every group budget"
    ~count:150 arb_grouped (fun (n, n_groups, sets, budget) ->
      QCheck.assume (sets <> []);
      let inst = mk_grouped ~n sets in
      let budgets = Array.make (Cover_instance.n_groups inst) budget in
      ignore n_groups;
      let r = Mcg.greedy inst ~budgets () in
      Mcg.within_budgets r ~budgets)

let prop_mcg_attribution_disjoint =
  QCheck.Test.make ~name:"MCG attributions are disjoint and match coverage"
    ~count:150 arb_grouped (fun (n, _, sets, budget) ->
      QCheck.assume (sets <> []);
      let inst = mk_grouped ~n sets in
      let budgets = Array.make (Cover_instance.n_groups inst) budget in
      let r = Mcg.greedy inst ~budgets () in
      let seen = Bitset.create n in
      let disjoint = ref true in
      List.iter
        (fun (s : Mcg.selection) ->
          if Bitset.inter_cardinal seen s.newly > 0 then disjoint := false;
          Bitset.union_inplace seen s.newly)
        r.Mcg.kept;
      !disjoint && Bitset.equal seen r.Mcg.covered)

(* MCG greedy (before split) is a 4-approximation; after split, 8. Verify
   the 8 bound against brute force on tiny instances. *)
let prop_mcg_8_approx =
  QCheck.Test.make ~name:"MCG within 8x of brute-force optimum" ~count:80
    (QCheck.make
       QCheck.Gen.(
         let* n = int_range 1 6 in
         let* m = int_range 1 6 in
         let* sets =
           list_repeat m
             (let* members = list_size (int_range 1 n) (int_range 0 (n - 1)) in
              let* cost = float_range 0.1 1.0 in
              let* g = int_range 0 1 in
              return (members, cost, g))
         in
         return (n, sets)))
    (fun (n, sets) ->
      QCheck.assume (sets <> []);
      let inst = mk_grouped ~n sets in
      let n_groups = Cover_instance.n_groups inst in
      let budgets = Array.make n_groups 1.0 in
      let r = Mcg.greedy inst ~budgets () in
      (* brute force over all subsets of sets *)
      let m = Cover_instance.n_sets inst in
      let best = ref 0 in
      for mask = 0 to (1 lsl m) - 1 do
        let cost_per_group = Array.make n_groups 0. in
        let covered = Bitset.create n in
        for j = 0 to m - 1 do
          if mask land (1 lsl j) <> 0 then begin
            let g = Cover_instance.group inst j in
            cost_per_group.(g) <- cost_per_group.(g) +. Cover_instance.cost inst j;
            Bitset.union_inplace covered (Cover_instance.set inst j)
          end
        done;
        if Array.for_all2 (fun c b -> c <= b +. 1e-9) cost_per_group budgets
        then best := max !best (Bitset.cardinal covered)
      done;
      8 * Mcg.coverage r >= !best)

(* weighted coverage: same 8x bound against the weighted brute force *)
let prop_mcg_weighted_8_approx =
  QCheck.Test.make ~name:"weighted MCG within 8x of brute-force optimum"
    ~count:60
    (QCheck.make
       QCheck.Gen.(
         let* n = int_range 1 6 in
         let* m = int_range 1 6 in
         let* sets =
           list_repeat m
             (let* members = list_size (int_range 1 n) (int_range 0 (n - 1)) in
              let* cost = float_range 0.1 1.0 in
              let* g = int_range 0 1 in
              return (members, cost, g))
         in
         let* weights = array_repeat n (float_range 0. 3.) in
         return (n, sets, weights)))
    (fun (n, sets, weights) ->
      QCheck.assume (sets <> []);
      let inst = mk_grouped ~n sets in
      let n_groups = Cover_instance.n_groups inst in
      let budgets = Array.make n_groups 1.0 in
      let r = Mcg.greedy ~element_weights:weights inst ~budgets () in
      let weight_of set = Bitset.fold (fun e acc -> acc +. weights.(e)) set 0. in
      let m = Cover_instance.n_sets inst in
      let best = ref 0. in
      for mask = 0 to (1 lsl m) - 1 do
        let cost_per_group = Array.make n_groups 0. in
        let covered = Bitset.create n in
        for j = 0 to m - 1 do
          if mask land (1 lsl j) <> 0 then begin
            let g = Cover_instance.group inst j in
            cost_per_group.(g) <-
              cost_per_group.(g) +. Cover_instance.cost inst j;
            Bitset.union_inplace covered (Cover_instance.set inst j)
          end
        done;
        if Array.for_all2 (fun c b -> c <= b +. 1e-9) cost_per_group budgets
        then best := Float.max !best (weight_of covered)
      done;
      (8. *. weight_of r.Mcg.covered) +. 1e-9 >= !best)

let prop_mcg_exact_matches_brute_force =
  QCheck.Test.make ~name:"exact MCG = brute force on tiny instances" ~count:60
    (QCheck.make
       QCheck.Gen.(
         let* n = int_range 1 6 in
         let* m = int_range 1 7 in
         let* sets =
           list_repeat m
             (let* members = list_size (int_range 1 n) (int_range 0 (n - 1)) in
              let* cost = float_range 0.1 1.0 in
              let* g = int_range 0 1 in
              return (members, cost, g))
         in
         let* budget = float_range 0.3 1.5 in
         return (n, sets, budget)))
    (fun (n, sets, budget) ->
      QCheck.assume (sets <> []);
      let inst = mk_grouped ~n sets in
      let n_groups = Cover_instance.n_groups inst in
      let budgets = Array.make n_groups budget in
      let e = Mcg.exact inst ~budgets () in
      (* brute force *)
      let m = Cover_instance.n_sets inst in
      let best = ref 0 in
      for mask = 0 to (1 lsl m) - 1 do
        let cost_per_group = Array.make n_groups 0. in
        let covered = Bitset.create n in
        for j = 0 to m - 1 do
          if mask land (1 lsl j) <> 0 then begin
            let g = Cover_instance.group inst j in
            cost_per_group.(g) <-
              cost_per_group.(g) +. Cover_instance.cost inst j;
            Bitset.union_inplace covered (Cover_instance.set inst j)
          end
        done;
        if Array.for_all2 (fun c b -> c <= b +. 1e-9) cost_per_group budgets
        then best := max !best (Bitset.cardinal covered)
      done;
      e.Mcg.proved_optimal
      && int_of_float (e.Mcg.coverage_weight +. 0.5) = !best)

let prop_greedy_mcg_within_8_of_exact =
  QCheck.Test.make ~name:"greedy MCG within 8x of exact MCG" ~count:100
    arb_grouped (fun (n, _, sets, budget) ->
      QCheck.assume (sets <> []);
      QCheck.assume (List.length sets <= 10);
      let inst = mk_grouped ~n sets in
      let budgets = Array.make (Cover_instance.n_groups inst) budget in
      let g = Mcg.greedy inst ~budgets () in
      let e = Mcg.exact inst ~budgets () in
      float_of_int (8 * Mcg.coverage g) +. 1e-9 >= e.Mcg.coverage_weight)

let test_mcg_weighted_validation () =
  let inst = mk_grouped ~n:2 [ ([ 0; 1 ], 0.5, 0) ] in
  (try
     ignore
       (Mcg.greedy ~element_weights:[| 1. |] inst ~budgets:[| 1. |] ());
     Alcotest.fail "expected arity failure"
   with Invalid_argument _ -> ());
  try
    ignore
      (Mcg.greedy ~element_weights:[| 1.; -1. |] inst ~budgets:[| 1. |] ());
    Alcotest.fail "expected negativity failure"
  with Invalid_argument _ -> ()

(* ------------------------------------------------------------------ *)
(* SCG                                                                *)
(* ------------------------------------------------------------------ *)

let test_scg_feasible_run () =
  let inst =
    mk_grouped ~n:4
      [ ([ 0; 1 ], 0.4, 0); ([ 2 ], 0.3, 0); ([ 3 ], 0.3, 1) ]
  in
  match Scg.solve inst () with
  | None -> Alcotest.fail "expected feasible"
  | Some r ->
      Alcotest.(check bool) "feasible" true r.Scg.feasible;
      let covered = Bitset.create 4 in
      List.iter
        (fun (s : Mcg.selection) -> Bitset.union_inplace covered s.newly)
        (Scg.selections r);
      Alcotest.(check int) "all covered" 4 (Bitset.cardinal covered)

let test_scg_infeasible () =
  (* element 1 in no set: infeasible when the universe demands it,
     feasible when the universe defaults to the coverable elements *)
  let inst = mk_grouped ~n:2 [ ([ 0 ], 0.4, 0) ] in
  let r = Scg.solve_for inst ~bstar:1.0 ~universe:(Bitset.full 2) () in
  Alcotest.(check bool) "explicit universe infeasible" false r.Scg.feasible;
  let r = Scg.solve_for inst ~bstar:1.0 () in
  Alcotest.(check bool) "default universe feasible" true r.Scg.feasible

let test_scg_max_rounds_bound () =
  Alcotest.(check int) "log_{8/7} 100 + 1" 36 (Scg.max_rounds_for 100);
  Alcotest.(check int) "n=1" 1 (Scg.max_rounds_for 1)

let prop_scg_selections_disjoint_and_cover =
  QCheck.Test.make ~name:"SCG rounds attribute disjointly" ~count:100
    arb_grouped (fun (n, _, sets, _) ->
      QCheck.assume (sets <> []);
      (* add a universal set so the instance is coverable *)
      let sets = (List.init n Fun.id, 1.0, 0) :: sets in
      let inst = mk_grouped ~n sets in
      match Scg.solve inst () with
      | None -> QCheck.assume_fail ()
      | Some r ->
          let seen = Bitset.create n in
          let disjoint = ref true in
          List.iter
            (fun (s : Mcg.selection) ->
              if Bitset.inter_cardinal seen s.newly > 0 then disjoint := false;
              Bitset.union_inplace seen s.newly)
            (Scg.selections r);
          !disjoint && (not r.Scg.feasible) || Bitset.cardinal seen = n)

(* The lazy (bound-skipping) engine must reproduce the eager rescan
   engine exactly — same selection sequence, same split, same coverage.
   Both resolve score ties toward the lower set index, so they share a
   total order that the layout-dependent Classic engine does not. *)
let prop_mcg_lazy_eq_eager =
  QCheck.Test.make ~name:"lazy MCG engine = eager engine" ~count:200
    (QCheck.pair arb_grouped QCheck.bool)
    (fun ((n, _, sets, budget), hard) ->
      QCheck.assume (sets <> []);
      let inst = mk_grouped ~n sets in
      let budgets = Array.make (Cover_instance.n_groups inst) budget in
      let mode = if hard then `Hard else `Soft in
      let weights = Array.init n (fun e -> float_of_int ((e * 7 mod 5) + 1)) in
      let same (a : Mcg.result) (b : Mcg.result) =
        a.Mcg.raw_order = b.Mcg.raw_order
        && List.length a.Mcg.kept = List.length b.Mcg.kept
        && List.for_all2
             (fun (s : Mcg.selection) (s' : Mcg.selection) ->
               s.set = s'.set && Bitset.equal s.newly s'.newly)
             a.Mcg.kept b.Mcg.kept
        && Bitset.equal a.Mcg.covered b.Mcg.covered
      in
      let run engine element_weights =
        Mcg.greedy ~mode ~engine ?element_weights inst ~budgets ()
      in
      same (run `Lazy None) (run `Eager None)
      && same (run `Lazy (Some weights)) (run `Eager (Some weights)))

let same_scg_result (a : Scg.result) (b : Scg.result) =
  Float.equal a.Scg.bstar b.Scg.bstar
  && a.Scg.feasible = b.Scg.feasible
  && Array.for_all2 Float.equal a.Scg.group_cost b.Scg.group_cost
  && List.length (Scg.selections a) = List.length (Scg.selections b)
  && List.for_all2
       (fun (s : Mcg.selection) (s' : Mcg.selection) ->
         s.set = s'.set && Bitset.equal s.newly s'.newly)
       (Scg.selections a) (Scg.selections b)

(* the [fanout] contract: any evaluator that returns results in
   submission order — here one that forces the thunks in reverse — is
   indistinguishable from the sequential default *)
let prop_scg_fanout_order_independent =
  QCheck.Test.make ~name:"SCG grid fanout: reverse evaluation = sequential"
    ~count:100 arb_grouped (fun (n, _, sets, _) ->
      QCheck.assume (sets <> []);
      let sets = (List.init n Fun.id, 1.0, 0) :: sets in
      let inst = mk_grouped ~n sets in
      let grid = Scg.default_grid ~n_guesses:6 inst in
      let reverse_fanout thunks =
        List.rev_map (fun f -> f ()) thunks |> List.rev
      in
      let seq = Scg.solve_grid inst ~grid () in
      let rev = Scg.solve_grid ~fanout:reverse_fanout inst ~grid () in
      List.length seq = List.length rev
      && List.for_all2 same_scg_result seq rev)

(* `Bisect exploits feasibility monotonicity in B*: it must land on the
   same smallest feasible grid point as the exhaustive sweep, and every
   run it returns must be identical to the exhaustive run at that B*. *)
let prop_scg_bisect_agrees_with_exhaustive =
  QCheck.Test.make ~name:"SCG bisect finds the exhaustive minimum B*"
    ~count:100 arb_grouped (fun (n, _, sets, _) ->
      QCheck.assume (sets <> []);
      let sets = (List.init n Fun.id, 1.0, 0) :: sets in
      let inst = mk_grouped ~n sets in
      let grid = Scg.default_grid ~n_guesses:6 inst in
      let exh = Scg.solve_grid ~strategy:`Exhaustive inst ~grid () in
      let bis = Scg.solve_grid ~strategy:`Bisect inst ~grid () in
      let min_bstar rs =
        List.fold_left
          (fun acc (r : Scg.result) ->
            match acc with
            | None -> Some r.Scg.bstar
            | Some b -> Some (Float.min b r.Scg.bstar))
          None rs
      in
      min_bstar exh = min_bstar bis
      && List.for_all
           (fun (b : Scg.result) ->
             List.exists (fun e -> same_scg_result b e) exh)
           bis)

let same_scg_rounds (a : Scg.result) (b : Scg.result) =
  List.length a.Scg.rounds = List.length b.Scg.rounds
  && List.for_all2
       (fun (ra : Mcg.result) (rb : Mcg.result) ->
         ra.Mcg.raw_order = rb.Mcg.raw_order
         && Bitset.equal ra.Mcg.covered rb.Mcg.covered)
       a.Scg.rounds b.Scg.rounds

(* The SCG session (cross-round bound persistence, DESIGN.md §4.12) must
   reproduce the per-round rescanning engine exactly — raw orders
   included — whether or not an arena backs its planes. *)
let prop_scg_session_eq_eager =
  QCheck.Test.make ~name:"SCG lazy session rounds = eager rounds" ~count:100
    (QCheck.pair arb_grouped QCheck.bool)
    (fun ((n, _, sets, _), hard) ->
      QCheck.assume (sets <> []);
      let sets = (List.init n Fun.id, 1.0, 0) :: sets in
      let inst = mk_grouped ~n sets in
      let mode = if hard then `Hard else `Soft in
      let arena = Arena.create () in
      let grid = Scg.default_grid ~n_guesses:4 inst in
      List.for_all
        (fun bstar ->
          let eg = Scg.solve_for ~mode ~engine:`Eager inst ~bstar () in
          let lz = Scg.solve_for ~mode ~engine:`Lazy ~arena inst ~bstar () in
          let lz' = Scg.solve_for ~mode ~engine:`Lazy inst ~bstar () in
          same_scg_result lz eg && same_scg_rounds lz eg
          && same_scg_result lz' eg && same_scg_rounds lz' eg)
        grid)

(* An arena is pure scratch reuse: running every engine/mode with a
   shared (repeatedly reused) arena must be bit-identical to running
   without one. *)
let prop_arena_never_changes_results =
  QCheck.Test.make ~name:"arena-backed solves = fresh-allocation solves"
    ~count:100 arb_grouped
    (fun (n, _, sets, budget) ->
      QCheck.assume (sets <> []);
      let inst = mk_grouped ~n sets in
      let budgets = Array.make (Cover_instance.n_groups inst) budget in
      let arena = Arena.create () in
      let same (a : Mcg.result) (b : Mcg.result) =
        a.Mcg.raw_order = b.Mcg.raw_order
        && List.length a.Mcg.kept = List.length b.Mcg.kept
        && List.for_all2
             (fun (s : Mcg.selection) (s' : Mcg.selection) ->
               s.set = s'.set && Bitset.equal s.newly s'.newly)
             a.Mcg.kept b.Mcg.kept
        && Bitset.equal a.Mcg.covered b.Mcg.covered
        && Array.for_all2 Float.equal a.Mcg.group_cost b.Mcg.group_cost
      in
      List.for_all
        (fun engine ->
          List.for_all
            (fun mode ->
              same
                (Mcg.greedy ~mode ~engine ~arena inst ~budgets ())
                (Mcg.greedy ~mode ~engine inst ~budgets ()))
            [ `Soft; `Hard ])
        [ `Classic; `Lazy; `Eager ]
      &&
      let a = Set_cover.greedy ~arena inst in
      let b = Set_cover.greedy inst in
      List.length a.Set_cover.chosen = List.length b.Set_cover.chosen
      && List.for_all2
           (fun (s : Set_cover.selection) (s' : Set_cover.selection) ->
             s.set = s'.set && Bitset.equal s.newly s'.newly)
           a.Set_cover.chosen b.Set_cover.chosen
      && Bitset.equal a.Set_cover.covered b.Set_cover.covered
      && Float.equal a.Set_cover.total_cost b.Set_cover.total_cost)

(* ------------------------------------------------------------------ *)
(* Subset sum / makespan                                              *)
(* ------------------------------------------------------------------ *)

let test_subset_sum_hit () =
  match Subset_sum.solve [ 3; 34; 4; 12; 5; 2 ] 9 with
  | None -> Alcotest.fail "expected solution"
  | Some idxs ->
      let nums = [| 3; 34; 4; 12; 5; 2 |] in
      let total = List.fold_left (fun acc i -> acc + nums.(i)) 0 idxs in
      Alcotest.(check int) "sums to target" 9 total

let test_subset_sum_miss () =
  Alcotest.(check bool) "no subset" true
    (Subset_sum.solve [ 2; 4; 6 ] 5 = None);
  Alcotest.(check bool) "negative target" true (Subset_sum.solve [ 1 ] (-1) = None)

let test_subset_sum_best_at_most () =
  Alcotest.(check int) "best <= 11" 11
    (Subset_sum.best_at_most [ 3; 34; 4; 12; 5; 2 ] 11);
  Alcotest.(check int) "best <= 1" 0 (Subset_sum.best_at_most [ 2; 4 ] 1);
  Alcotest.(check int) "empty" 0 (Subset_sum.best_at_most [] 10)

let prop_subset_sum_dp_sound =
  QCheck.Test.make ~name:"subset-sum witness sums to target" ~count:200
    QCheck.(
      pair (list_of_size Gen.(int_range 0 10) (int_range 0 20)) (int_range 0 60))
    (fun (nums, target) ->
      match Subset_sum.solve nums target with
      | None -> true
      | Some idxs ->
          let arr = Array.of_list nums in
          List.fold_left (fun acc i -> acc + arr.(i)) 0 idxs = target)

let test_makespan_lpt () =
  (* {3,3,2,2,2} on 2 machines: LPT lands on 7, the optimum is 6 *)
  let s = Makespan.lpt ~machines:2 ~jobs:[ 3.; 3.; 2.; 2.; 2. ] in
  Alcotest.(check (float 1e-9)) "lpt makespan" 7. s.Makespan.makespan

let test_makespan_exact_simple () =
  (* {3,3,2,2,2} on 2 machines: optimal 6 = {3,3} vs {2,2,2} *)
  let s = Makespan.exact ~machines:2 ~jobs:[ 3.; 3.; 2.; 2.; 2. ] in
  Alcotest.(check (float 1e-9)) "optimal" 6. s.Makespan.makespan

let test_makespan_exact_beats_lpt () =
  (* classic LPT-suboptimal instance: jobs {5,5,4,4,3,3,3} on 3 machines
     LPT gives 10? optimal is 9 *)
  let jobs = [ 5.; 5.; 4.; 4.; 3.; 3.; 3. ] in
  let e = Makespan.exact ~machines:3 ~jobs in
  Alcotest.(check (float 1e-9)) "optimal 9" 9. e.Makespan.makespan

let prop_makespan_exact_le_lpt =
  QCheck.Test.make ~name:"exact makespan <= LPT makespan" ~count:100
    QCheck.(
      pair
        (list_of_size Gen.(int_range 1 8) (float_range 0.5 10.))
        (int_range 1 4))
    (fun (jobs, machines) ->
      let l = Makespan.lpt ~machines ~jobs in
      let e = Makespan.exact ~machines ~jobs in
      e.Makespan.makespan <= l.Makespan.makespan +. 1e-9)

let prop_lpt_within_4_3 =
  QCheck.Test.make ~name:"LPT within 4/3 of optimal" ~count:100
    QCheck.(
      pair
        (list_of_size Gen.(int_range 1 8) (float_range 0.5 10.))
        (int_range 1 4))
    (fun (jobs, machines) ->
      let l = Makespan.lpt ~machines ~jobs in
      let e = Makespan.exact ~machines ~jobs in
      l.Makespan.makespan
      <= (e.Makespan.makespan *. ((4. /. 3.) +. 1e-9)) +. 1e-9)

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_bitset_cardinal_matches_list;
      prop_bitset_inter_cardinal;
      prop_heap_sorts;
      prop_greedy_within_ln_bound;
      prop_exact_never_worse;
      prop_exact_is_cover;
      prop_layered_is_f_approx;
      prop_lp_rounding_is_f_approx;
      prop_mcg_budgets_hold;
      prop_mcg_attribution_disjoint;
      prop_mcg_8_approx;
      prop_mcg_weighted_8_approx;
      prop_mcg_exact_matches_brute_force;
      prop_greedy_mcg_within_8_of_exact;
      prop_scg_selections_disjoint_and_cover;
      prop_mcg_lazy_eq_eager;
      prop_scg_fanout_order_independent;
      prop_scg_bisect_agrees_with_exhaustive;
      prop_scg_session_eq_eager;
      prop_arena_never_changes_results;
      prop_subset_sum_dp_sound;
      prop_makespan_exact_le_lpt;
      prop_lpt_within_4_3;
    ]

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "optkit"
    [
      ( "bitset",
        [
          tc "basic" test_bitset_basic;
          tc "zero capacity" test_bitset_zero_capacity;
          tc "fold order" test_bitset_fold_order;
          tc "word boundaries" test_bitset_word_boundaries;
          tc "set ops" test_bitset_set_ops;
          tc "in-place ops" test_bitset_inplace;
          tc "bounds checks" test_bitset_bounds;
          tc "first_inter" test_bitset_first_inter;
        ] );
      ( "lazy_heap",
        [
          tc "pop order" test_heap_pop_order;
          tc "lazy revalidation" test_heap_lazy_revalidation;
          tc "drops dead entries" test_heap_drops_dead_entries;
          tc "peek keeps" test_heap_peek_keeps;
        ] );
      ( "set_cover",
        [
          tc "greedy simple" test_greedy_cover_simple;
          tc "greedy partial" test_greedy_cover_partial;
          tc "greedy universe" test_greedy_cover_universe;
          tc "exact beats greedy trap" test_exact_cover_beats_greedy_trap;
          tc "exact infeasible" test_exact_cover_infeasible;
          tc "exact truncation" test_exact_cover_truncation;
          tc "layered simple" test_layered_simple;
          tc "max frequency" test_max_frequency;
          tc "lp rounding simple" test_lp_rounding_simple;
        ] );
      ( "mcg",
        [
          tc "respects budgets" test_mcg_respects_budgets;
          tc "filters oversized sets" test_mcg_filters_oversized_sets;
          tc "split keeps larger half" test_mcg_split_keeps_larger_half;
          tc "weighted validation" test_mcg_weighted_validation;
        ] );
      ( "scg",
        [
          tc "feasible run" test_scg_feasible_run;
          tc "infeasible" test_scg_infeasible;
          tc "round bound" test_scg_max_rounds_bound;
        ] );
      ( "subset_sum",
        [
          tc "hit" test_subset_sum_hit;
          tc "miss" test_subset_sum_miss;
          tc "best at most" test_subset_sum_best_at_most;
        ] );
      ( "makespan",
        [
          tc "lpt" test_makespan_lpt;
          tc "exact simple" test_makespan_exact_simple;
          tc "exact beats lpt" test_makespan_exact_beats_lpt;
        ] );
      ("properties", qcheck_cases);
    ]
