(* The observability layer's own contract tests (DESIGN.md §4.9).

   - Counter plane: the gate is off by default and gated operations are
     no-ops; [make] is idempotent; snapshots are name-sorted; and — the
     headline property — running the same workload at jobs 1 and jobs 4
     yields identical counter snapshots, because every instrumentation
     site records submission-determined event totals, never
     scheduling-dependent quantities.
   - Span plane: a no-op without a clock; with an injected deterministic
     clock it aggregates same-named siblings, nests children under the
     innermost open span, survives exceptions, and never leaks into the
     counter snapshot.
   - Report: the JSON rendering is a pure function of the deterministic
     fields, with the exact bytes pinned for a tiny report. *)

open Wlan_model
open Mcast_core

(* ------------------------------------------------------------------ *)
(* Counter plane                                                       *)
(* ------------------------------------------------------------------ *)

(* Each test zeroes the registry and leaves the gate off, so tests are
   order-independent even though the registry is process-global. *)
let scrub () =
  Wlan_obs.Counters.set_enabled false;
  Wlan_obs.Counters.reset ();
  Wlan_obs.Span.set_clock None;
  Wlan_obs.Span.reset ()

let test_gate () =
  scrub ();
  let c = Wlan_obs.Counters.make "test.gate" in
  Alcotest.(check bool) "off by default" false (Wlan_obs.Counters.enabled ());
  Wlan_obs.Counters.incr c;
  Wlan_obs.Counters.add c 7;
  Wlan_obs.Counters.record_max c 9;
  Alcotest.(check int) "gated ops are no-ops" 0 (Wlan_obs.Counters.value c);
  Wlan_obs.Counters.set_enabled true;
  Wlan_obs.Counters.incr c;
  Wlan_obs.Counters.add c 7;
  Alcotest.(check int) "sum" 8 (Wlan_obs.Counters.value c);
  Wlan_obs.Counters.record_max c 3;
  Alcotest.(check int) "max below is a no-op" 8 (Wlan_obs.Counters.value c);
  Wlan_obs.Counters.record_max c 11;
  Alcotest.(check int) "max above raises" 11 (Wlan_obs.Counters.value c);
  scrub ()

let test_registry () =
  scrub ();
  let a = Wlan_obs.Counters.make "test.same" in
  let b = Wlan_obs.Counters.make "test.same" in
  Wlan_obs.Counters.set_enabled true;
  Wlan_obs.Counters.incr a;
  Alcotest.(check int) "make is idempotent: one cell" 1
    (Wlan_obs.Counters.value b);
  Alcotest.(check string) "name" "test.same" (Wlan_obs.Counters.name a);
  Wlan_obs.Counters.reset ();
  Alcotest.(check int) "reset zeroes" 0 (Wlan_obs.Counters.value a);
  let snap = Wlan_obs.Counters.snapshot () in
  Alcotest.(check bool) "snapshot sorted by name" true
    (List.sort (fun (x, _) (y, _) -> String.compare x y) snap = snap);
  Alcotest.(check bool) "snapshot covers the registry" true
    (List.mem_assoc "test.same" snap);
  scrub ()

(* The j1-vs-j4 property on a real workload: churn replays of the three
   algorithm variants fanned out over a pool, exactly the profile
   subcommand's churn mode. *)
let snapshot_of_workload ~jobs =
  scrub ();
  Wlan_obs.Counters.set_enabled true;
  let cfg =
    {
      Scenario_gen.paper_default with
      n_aps = 6;
      n_users = 18;
      area_w = 500.;
      area_h = 500.;
    }
  in
  let problems =
    List.map (fun seed -> Scenario_gen.nth_problem ~seed ~index:0 cfg) [ 1; 2 ]
  in
  let tasks =
    List.concat_map
      (fun p ->
        let n_aps, n_users = Problem.dims p in
        let rng = Random.State.make [| 7; n_aps; n_users |] in
        let script =
          Churn_script.random ~rng ~n_aps ~n_users
            { Churn_script.default_gen with n_events = 12 }
        in
        List.map
          (fun objective () ->
            ignore
              (Wlan_sim.Churn.run ~baseline:false ~objective ~script p))
          [ Distributed.Min_total_load; Distributed.Min_load_vector ])
      problems
  in
  let () =
    Harness.Pool.with_pool ~jobs @@ fun pool ->
    ignore (Harness.Pool.run pool tasks)
  in
  Wlan_obs.Counters.set_enabled false;
  let snap = Wlan_obs.Counters.snapshot () in
  scrub ();
  snap

let test_jobs_invariance () =
  let s1 = snapshot_of_workload ~jobs:1 in
  let s4 = snapshot_of_workload ~jobs:4 in
  Alcotest.(check (list (pair string int))) "snapshot at j1 = snapshot at j4"
    s1 s4;
  (* and the workload actually moved the counters — the property is not
     vacuously about all-zero snapshots *)
  Alcotest.(check bool) "workload counted events" true
    (List.exists (fun (_, v) -> v > 0) s1)

(* ------------------------------------------------------------------ *)
(* Span plane                                                          *)
(* ------------------------------------------------------------------ *)

(* A deterministic fake clock: each reading advances by 1 ms, so span
   totals are exact multiples of 0.001 and assertions can be exact. *)
let fake_clock () =
  let t = ref 0. in
  fun () ->
    t := !t +. 0.001;
    !t

let find name nodes =
  match List.find_opt (fun n -> n.Wlan_obs.Span.name = name) nodes with
  | Some n -> n
  | None -> Alcotest.failf "span %S missing" name

let test_span_noop_without_clock () =
  scrub ();
  Alcotest.(check bool) "inactive" false (Wlan_obs.Span.active ());
  let r = Wlan_obs.Span.with_span "nope" (fun () -> 41 + 1) in
  Alcotest.(check int) "thunk still runs" 42 r;
  Alcotest.(check int) "nothing recorded" 0
    (List.length (Wlan_obs.Span.tree ()))

let test_span_tree () =
  scrub ();
  Wlan_obs.Span.set_clock (Some (fake_clock ()));
  Alcotest.(check bool) "active" true (Wlan_obs.Span.active ());
  Wlan_obs.Span.with_span "outer" (fun () ->
      Wlan_obs.Span.with_span "inner" (fun () -> ());
      Wlan_obs.Span.with_span "inner" (fun () -> ()));
  (try
     Wlan_obs.Span.with_span "outer" (fun () -> failwith "boom")
   with Failure _ -> ());
  let tree = Wlan_obs.Span.tree () in
  let outer = find "outer" tree in
  Alcotest.(check int) "siblings aggregate" 2 outer.Wlan_obs.Span.count;
  let inner = find "inner" outer.Wlan_obs.Span.children in
  Alcotest.(check int) "children nest" 2 inner.Wlan_obs.Span.count;
  (* each activation brackets its children, so outer wall time strictly
     contains inner wall time under the fake clock *)
  Alcotest.(check bool) "outer >= inner" true
    (outer.Wlan_obs.Span.total_s >= inner.Wlan_obs.Span.total_s);
  (* the exception-closed second activation was recorded *)
  Alcotest.(check bool) "span closes on exception" true
    (outer.Wlan_obs.Span.count = 2);
  (* spans never appear in the counter plane *)
  Alcotest.(check bool) "no leakage into counters" true
    (not
       (List.exists
          (fun (n, _) -> n = "outer" || n = "inner")
          (Wlan_obs.Counters.snapshot ())));
  let rendered = Fmt.str "%a" Wlan_obs.Span.pp_tree tree in
  Alcotest.(check bool) "pp_tree mentions both spans" true
    (Astring.String.is_infix ~affix:"outer" rendered
    && Astring.String.is_infix ~affix:"inner" rendered);
  scrub ()

(* ------------------------------------------------------------------ *)
(* Report                                                              *)
(* ------------------------------------------------------------------ *)

let test_report_json () =
  scrub ();
  let c = Wlan_obs.Counters.make "test.report" in
  Wlan_obs.Counters.set_enabled true;
  Wlan_obs.Counters.add c 5;
  Wlan_obs.Counters.set_enabled false;
  let r =
    Wlan_obs.Report.make ~label:{|demo "x"|} ~seed:7 ~scenarios:2
      ~targets:[ "a"; "b" ]
  in
  let json = Wlan_obs.Report.json r in
  Alcotest.(check bool) "schema present" true
    (Astring.String.is_infix
       ~affix:(Printf.sprintf "%S" Wlan_obs.Report.schema)
       json);
  Alcotest.(check bool) "label escaped" true
    (Astring.String.is_infix ~affix:{|"demo \"x\""|} json);
  Alcotest.(check bool) "counter present" true
    (Astring.String.is_infix ~affix:{|"test.report": 5|} json);
  Alcotest.(check bool) "trailing newline" true
    (String.length json > 0 && json.[String.length json - 1] = '\n');
  (* deterministic: rendering twice gives the same bytes *)
  Alcotest.(check string) "pure function" json (Wlan_obs.Report.json r);
  scrub ()

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "obs"
    [
      ( "counters",
        [
          Alcotest.test_case "gate semantics" `Quick test_gate;
          Alcotest.test_case "registry and snapshot" `Quick test_registry;
          Alcotest.test_case "snapshot at j1 = snapshot at j4" `Quick
            test_jobs_invariance;
        ] );
      ( "spans",
        [
          Alcotest.test_case "no-op without a clock" `Quick
            test_span_noop_without_clock;
          Alcotest.test_case "tree aggregation and nesting" `Quick
            test_span_tree;
        ] );
      ( "report",
        [ Alcotest.test_case "json rendering" `Quick test_report_json ] );
    ]
