(* Tests for Harness.Pool: results come back in submission order no matter
   which domain ran what, the earliest-submitted failure is re-raised in
   the caller, jobs=1 spawns no domain, and a pool survives many batches
   with far more jobs than domains. *)

open Harness

let apply_seq fs = List.map (fun f -> f ()) fs

(* uneven per-job work so completion order differs from submission order
   whenever more than one domain drains the batch *)
let busy_then i =
  let acc = ref 0 in
  for k = 1 to (100 - (i mod 100)) * 500 do
    acc := !acc + k
  done;
  ignore !acc;
  i

let test_order jobs () =
  Pool.with_pool ~jobs @@ fun pool ->
  let fs = List.init 100 (fun i () -> busy_then i) in
  Alcotest.(check (list int))
    "submission order" (List.init 100 Fun.id) (Pool.run pool fs)

exception Boom of int

let test_first_exception jobs () =
  Pool.with_pool ~jobs @@ fun pool ->
  let fs =
    List.init 20 (fun i () -> if i = 3 || i = 7 then raise (Boom i) else i)
  in
  Alcotest.check_raises "earliest submitted failure wins" (Boom 3) (fun () ->
      ignore (Pool.run pool fs));
  (* a failed batch must not poison the pool *)
  Alcotest.(check (list int))
    "usable after a failed batch" [ 10; 11 ]
    (Pool.run pool [ (fun () -> 10); (fun () -> 11) ])

let test_sequential_spawns_no_domain () =
  let pool = Pool.create ~jobs:1 in
  Alcotest.(check int) "no worker domains" 0 (Pool.domain_count pool);
  Alcotest.(check int) "jobs" 1 (Pool.jobs pool);
  Alcotest.(check (list int))
    "still runs jobs" [ 1; 2; 3 ]
    (Pool.run pool [ (fun () -> 1); (fun () -> 2); (fun () -> 3) ]);
  Pool.shutdown pool

let test_domain_count () =
  Pool.with_pool ~jobs:4 @@ fun pool ->
  Alcotest.(check int) "jobs" 4 (Pool.jobs pool);
  Alcotest.(check int) "jobs - 1 workers (caller participates)" 3
    (Pool.domain_count pool)

let test_more_jobs_than_domains () =
  Pool.with_pool ~jobs:2 @@ fun pool ->
  let fs = List.init 500 (fun i () -> (i * i) - i) in
  Alcotest.(check (list int)) "all 500 jobs" (apply_seq fs) (Pool.run pool fs)

let test_empty_and_reuse () =
  Pool.with_pool ~jobs:3 @@ fun pool ->
  Alcotest.(check (list int)) "empty batch" [] (Pool.run pool []);
  for i = 1 to 5 do
    let fs = List.init (i * 13) (fun k () -> k + i) in
    Alcotest.(check (list int))
      (Fmt.str "batch %d" i)
      (apply_seq fs) (Pool.run pool fs)
  done

let test_shutdown () =
  let pool = Pool.create ~jobs:2 in
  Pool.shutdown pool;
  Pool.shutdown pool;
  (* idempotent *)
  Alcotest.check_raises "run after shutdown"
    (Invalid_argument "Pool.run: pool is shut down") (fun () ->
      ignore (Pool.run pool [ (fun () -> ()) ]))

(* ---------------- failure paths ----------------
   A failing batch must not lose in-flight work, wedge the pool, or leak
   worker domains. The runtime caps live domains (~128), so the leak
   tests simply cycle enough 4-job pools that a single unjoined worker
   per cycle would exhaust the cap and make Domain.spawn raise. *)

let test_failed_batch_runs_every_task () =
  Pool.with_pool ~jobs:4 @@ fun pool ->
  let ran = Atomic.make 0 in
  let fs =
    List.init 40 (fun i () ->
        Atomic.incr ran;
        if i mod 13 = 3 then raise (Boom i) else i)
  in
  (* parallel path: exceptions are captured per task, so the failures at
     3, 16, 29 don't abandon the cursor — every task still executes *)
  Alcotest.check_raises "earliest failure re-raised" (Boom 3) (fun () ->
      ignore (Pool.run pool fs));
  Alcotest.(check int) "no in-flight task lost" 40 (Atomic.get ran)

let test_sequential_stops_at_first_failure () =
  Pool.with_pool ~jobs:1 @@ fun pool ->
  let ran = Atomic.make 0 in
  let fs =
    List.init 20 (fun i () ->
        Atomic.incr ran;
        if i = 5 then raise (Boom 5) else i)
  in
  (* jobs=1 is plain List.map: the exception propagates before job 6
     starts — the documented sequential contract *)
  Alcotest.check_raises "failure propagates" (Boom 5) (fun () ->
      ignore (Pool.run pool fs));
  Alcotest.(check int) "tasks after the failure never started" 6
    (Atomic.get ran)

let test_failed_batches_leak_no_domains () =
  (* 80 cycles x 3 workers = 240 spawns, far past the domain cap: this
     only passes if shutdown joins every worker even after the batch
     failed *)
  for i = 1 to 80 do
    try
      Pool.with_pool ~jobs:4 @@ fun pool ->
      ignore
        (Pool.run pool
           (List.init 8 (fun k () -> if k = 2 then raise (Boom i) else k)))
    with Boom _ -> ()
  done

let test_with_pool_reraises_and_joins () =
  Alcotest.check_raises "callback exception propagates" (Boom 99) (fun () ->
      Pool.with_pool ~jobs:4 (fun _ -> raise (Boom 99)));
  (* the finally-shutdown joined the workers: 60 more failing cycles
     (180 spawns) stay under the domain cap only if it did *)
  for _ = 1 to 60 do
    try Pool.with_pool ~jobs:4 (fun _ -> raise (Boom 0)) with Boom _ -> ()
  done

let test_invalid_jobs () =
  Alcotest.check_raises "jobs must be positive"
    (Invalid_argument "Pool.create: jobs must be >= 1") (fun () ->
      ignore (Pool.create ~jobs:0))

let test_default_jobs () =
  Alcotest.(check bool) "recommended >= 1" true (Pool.default_jobs () >= 1)

(* the pool is semantically List.map for pure jobs, at every pool size *)
let qcheck_pool_is_map =
  QCheck.Test.make ~name:"Pool.run = List.map" ~count:50
    QCheck.(pair (int_range 1 6) (small_list small_int))
    (fun (jobs, xs) ->
      Pool.with_pool ~jobs (fun pool ->
          Pool.run pool (List.map (fun x () -> (2 * x) + 1) xs)
          = List.map (fun x -> (2 * x) + 1) xs))

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "pool"
    [
      ( "ordering",
        [
          tc "jobs=1" (test_order 1);
          tc "jobs=2" (test_order 2);
          tc "jobs=4" (test_order 4);
        ] );
      ( "exceptions",
        [
          tc "jobs=1" (test_first_exception 1);
          tc "jobs=4" (test_first_exception 4);
        ] );
      ( "failure paths",
        [
          tc "failed batch runs every task" test_failed_batch_runs_every_task;
          tc "jobs=1 stops at first failure"
            test_sequential_stops_at_first_failure;
          tc "failed batches leak no domains"
            test_failed_batches_leak_no_domains;
          tc "with_pool re-raises and joins" test_with_pool_reraises_and_joins;
        ] );
      ( "lifecycle",
        [
          tc "jobs=1 spawns no domain" test_sequential_spawns_no_domain;
          tc "domain count" test_domain_count;
          tc "more jobs than domains" test_more_jobs_than_domains;
          tc "empty batch and reuse" test_empty_and_reuse;
          tc "shutdown" test_shutdown;
          tc "invalid jobs" test_invalid_jobs;
          tc "default jobs" test_default_jobs;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest qcheck_pool_is_map ]);
    ]
