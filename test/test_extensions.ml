(* Tests for the extension features around the paper's core: channel
   planning + co-channel interference (§8), dual association (§3.1 /
   WiMesh'05), workload generalizations (Zipf popularity, clustered
   placement), protocol robustness to message loss, and quasi-static
   mobility across epochs. *)

open Wlan_model
open Mcast_core

let feq ?(eps = 1e-9) a b = Float.abs (a -. b) <= eps

let check_float ?eps msg expected actual =
  if not (feq ?eps expected actual) then
    Alcotest.failf "%s: expected %.9g, got %.9g" msg expected actual

(* ------------------------------------------------------------------ *)
(* Channels                                                           *)
(* ------------------------------------------------------------------ *)

let line_aps = [| Point.v 0. 0.; Point.v 100. 0.; Point.v 200. 0.; Point.v 300. 0. |]

let test_conflict_edges_line () =
  (* 150 m conflict range on a 100 m-spaced line: only adjacent APs *)
  let edges = Channels.conflict_edges ~range:150. line_aps in
  Alcotest.(check (list (pair int int))) "adjacent pairs"
    [ (0, 1); (1, 2); (2, 3) ]
    (List.sort compare edges)

let test_coloring_path_two_channels () =
  let edges = Channels.conflict_edges ~range:150. line_aps in
  let a = Channels.color ~n_channels:2 ~n_aps:4 edges in
  Alcotest.(check int) "proper coloring" 0 a.Channels.residual_conflicts;
  Alcotest.(check bool) "interference free" true (Channels.interference_free a);
  List.iter
    (fun (i, j) ->
      if a.Channels.channels.(i) = a.Channels.channels.(j) then
        Alcotest.fail "adjacent APs share a channel")
    edges

let test_coloring_triangle_short () =
  (* a triangle needs 3 colors; with 2 channels one edge must clash *)
  let aps = [| Point.v 0. 0.; Point.v 10. 0.; Point.v 5. 8. |] in
  let edges = Channels.conflict_edges ~range:50. aps in
  Alcotest.(check int) "3 edges" 3 (List.length edges);
  let a2 = Channels.color ~n_channels:2 ~n_aps:3 edges in
  Alcotest.(check int) "one residual" 1 a2.Channels.residual_conflicts;
  let a3 = Channels.color ~n_channels:3 ~n_aps:3 edges in
  Alcotest.(check int) "clean with 3" 0 a3.Channels.residual_conflicts

let test_co_channel_interference_accounting () =
  let aps = [| Point.v 0. 0.; Point.v 10. 0.; Point.v 500. 0. |] in
  let edges = Channels.conflict_edges ~range:50. aps in
  (* force both close APs onto channel 0 *)
  let a =
    {
      Channels.channels = [| 0; 0; 0 |];
      n_channels = 1;
      conflict_edges = edges;
      residual_conflicts = List.length edges;
    }
  in
  let loads = [| 0.2; 0.3; 0.4 |] in
  let i = Channels.co_channel_interference a ~loads in
  check_float "ap0 hears ap1" 0.3 i.(0);
  check_float "ap1 hears ap0" 0.2 i.(1);
  check_float "ap2 isolated" 0. i.(2);
  check_float "total" 0.5 (Channels.total_interference a ~loads);
  check_float "max" 0.3 (Channels.max_interference a ~loads)

let prop_coloring_proper_with_enough_channels =
  QCheck.Test.make ~name:"coloring is proper given >= n_aps channels"
    ~count:100
    QCheck.(pair (int_range 1 20) (int_range 0 1_000_000))
    (fun (n_aps, seed) ->
      let rng = Random.State.make [| seed |] in
      let aps =
        Array.init n_aps (fun _ -> Point.random ~rng ~w:500. ~h:500.)
      in
      let edges = Channels.conflict_edges ~range:200. aps in
      let a = Channels.color ~n_channels:n_aps ~n_aps edges in
      a.Channels.residual_conflicts = 0)

let prop_residual_count_consistent =
  QCheck.Test.make ~name:"residual conflict count matches the assignment"
    ~count:100
    QCheck.(pair (int_range 2 15) (int_range 0 1_000_000))
    (fun (n_aps, seed) ->
      let rng = Random.State.make [| seed |] in
      let aps =
        Array.init n_aps (fun _ -> Point.random ~rng ~w:300. ~h:300.)
      in
      let edges = Channels.conflict_edges ~range:250. aps in
      let a = Channels.color ~n_channels:3 ~n_aps edges in
      let recount =
        List.length
          (List.filter
             (fun (i, j) -> a.Channels.channels.(i) = a.Channels.channels.(j))
             edges)
      in
      recount = a.Channels.residual_conflicts)

(* the paper's implicit claim: MLA reduces residual interference vs SSA *)
let test_mla_reduces_interference () =
  let p, sc =
    let rng = Random.State.make [| 12 |] in
    let sc =
      Scenario_gen.generate ~rng
        {
          Scenario_gen.paper_default with
          n_aps = 60;
          n_users = 150;
          area_w = 600.;
          area_h = 600.;
        }
    in
    (Scenario.to_problem sc, sc)
  in
  let edges = Channels.conflict_edges ~range:400. sc.Scenario.ap_pos in
  let a = Channels.color ~n_channels:3 ~n_aps:60 edges in
  QCheck.assume (a.Channels.residual_conflicts > 0);
  let interference assoc =
    Channels.total_interference a ~loads:(Loads.ap_loads p assoc)
  in
  let ssa = interference (Ssa.run p).Solution.assoc in
  let mla = interference (Mla.run p).Solution.assoc in
  Alcotest.(check bool) "MLA interferes less" true (mla <= ssa +. 1e-9)

(* ------------------------------------------------------------------ *)
(* Dual association                                                   *)
(* ------------------------------------------------------------------ *)

let fig1_1m = Examples.fig1 ~session_rate_mbps:1.

let test_unicast_loads () =
  (* u1 (rate 3) and u2 (rate 6) on a1 with 1 Mbps demand each:
     1/3 + 1/6 = 1/2 airtime *)
  let assoc : Association.t = [| 0; 0; -1; -1; -1 |] in
  let demands = Dual.uniform_demands fig1_1m ~mbps:1. in
  let loads = Dual.unicast_loads fig1_1m ~demands assoc in
  check_float "a1 unicast airtime" 0.5 loads.(0);
  check_float "a2 idle" 0. loads.(1)

let test_combined_adds_both () =
  let t =
    {
      Dual.unicast = [| 0; 0; -1; -1; -1 |];
      multicast = [| -1; -1; 1; 1; 1 |];
    }
  in
  let demands = Dual.uniform_demands fig1_1m ~mbps:1. in
  let c = Dual.combined fig1_1m ~demands t in
  (* a1: unicast 1/2; a2: multicast s1@5 + s2@3 = 1/5 + 1/3 *)
  check_float "a1" 0.5 c.Dual.per_ap.(0);
  check_float "a2" ((1. /. 5.) +. (1. /. 3.)) c.Dual.per_ap.(1);
  check_float "total" (0.5 +. (1. /. 5.) +. (1. /. 3.)) c.Dual.total;
  Alcotest.(check int) "none overloaded" 0 c.Dual.overloaded

let test_single_association_shares_ap () =
  let t = Dual.single_association fig1_1m in
  Alcotest.(check bool) "same AP for both roles" true
    (t.Dual.unicast = t.Dual.multicast)

let test_dual_saves_airtime_on_campus () =
  let p =
    List.hd
      (Scenario_gen.problems ~seed:9 ~n:1
         { Scenario_gen.paper_default with n_aps = 100; n_users = 200 })
  in
  let demands = Dual.uniform_demands p ~mbps:0.5 in
  let c = Dual.compare_single_vs_dual ~objective:`Mla p ~demands in
  Alcotest.(check bool) "dual total <= single total" true
    (c.Dual.dual.Dual.total <= c.Dual.single.Dual.total +. 1e-9);
  Alcotest.(check bool) "saving percentage consistent" true
    (feq ~eps:1e-6
       (c.Dual.single.Dual.total *. (1. -. (c.Dual.total_saving_pct /. 100.)))
       c.Dual.dual.Dual.total)

let test_dual_max_saving_consistent () =
  let p =
    List.hd
      (Scenario_gen.problems ~seed:19 ~n:1
         { Scenario_gen.paper_default with n_aps = 40; n_users = 80 })
  in
  let demands = Dual.uniform_demands p ~mbps:1. in
  let c = Dual.compare_single_vs_dual p ~demands in
  check_float ~eps:1e-6 "max saving percentage consistent"
    (c.Dual.single.Dual.max *. (1. -. (c.Dual.max_saving_pct /. 100.)))
    c.Dual.dual.Dual.max

let test_dual_measured_in_simulator () =
  (* push a dual plan into the DES with unicast background traffic and
     check the measured combined airtime against the analytic model *)
  let rng = Random.State.make [| 14 |] in
  let sc =
    Scenario_gen.generate ~rng
      {
        Scenario_gen.paper_default with
        n_aps = 15;
        n_users = 30;
        area_w = 500.;
        area_h = 500.;
      }
  in
  let p = Scenario.to_problem sc in
  let demands = Dual.uniform_demands p ~mbps:0.5 in
  let plan = Dual.plan ~objective:`Mla p in
  let r =
    Wlan_sim.Runner.run ~streaming_window:2.0 ~unicast_demands:demands
      ~policy:(Wlan_sim.Runner.Static_policy plan.Dual.multicast)
      sc
  in
  let analytic = Dual.combined p ~demands plan in
  Array.iteri
    (fun a m ->
      let expect = analytic.Dual.per_ap.(a) in
      if Float.abs (m -. expect) > (0.05 *. Float.max expect 0.02) +. 1e-6 then
        Alcotest.failf "ap %d: measured %.4f vs analytic %.4f" a m expect)
    r.Wlan_sim.Runner.measured_loads

let prop_dual_unicast_side_is_ssa =
  QCheck.Test.make ~name:"dual unicast side = strongest signal for everyone"
    ~count:50
    (QCheck.make
       QCheck.Gen.(
         let* seed = int_range 0 100_000 in
         return
           (List.hd
              (Scenario_gen.problems ~seed ~n:1
                 {
                   Scenario_gen.paper_default with
                   n_aps = 10;
                   n_users = 20;
                   area_w = 500.;
                   area_h = 500.;
                 }))))
    (fun p ->
      let t = Dual.plan ~objective:`Mla p in
      let _, n_users = Problem.dims p in
      let ok = ref true in
      for u = 0 to n_users - 1 do
        if Association.ap_of t.Dual.unicast u <> Problem.strongest_ap p u then
          ok := false
      done;
      !ok)

(* ------------------------------------------------------------------ *)
(* Workload generalizations                                           *)
(* ------------------------------------------------------------------ *)

let test_zipf_skews_sessions () =
  let cfg =
    {
      Scenario_gen.paper_default with
      n_aps = 10;
      n_users = 2000;
      n_sessions = 10;
      popularity = Scenario_gen.Zipf 1.5;
      ensure_coverage = false;
    }
  in
  let rng = Random.State.make [| 8 |] in
  let sc = Scenario_gen.generate ~rng cfg in
  let counts = Array.make 10 0 in
  Array.iter (fun s -> counts.(s) <- counts.(s) + 1) sc.Scenario.user_session;
  Alcotest.(check bool) "session 0 dominates" true
    (counts.(0) > 3 * counts.(9));
  Alcotest.(check bool) "monotone-ish head" true (counts.(0) > counts.(4))

let test_clustered_placement_concentrates () =
  let base =
    {
      Scenario_gen.paper_default with
      n_aps = 5;
      n_users = 300;
      ensure_coverage = false;
    }
  in
  let spread cfg seed =
    let rng = Random.State.make [| seed |] in
    let sc = Scenario_gen.generate ~rng cfg in
    (* mean distance to the users' centroid *)
    let n = float_of_int (Array.length sc.Scenario.user_pos) in
    let cx =
      Array.fold_left (fun a p -> a +. p.Point.x) 0. sc.Scenario.user_pos /. n
    in
    let cy =
      Array.fold_left (fun a p -> a +. p.Point.y) 0. sc.Scenario.user_pos /. n
    in
    Array.fold_left
      (fun a p -> a +. Point.dist p (Point.v cx cy))
      0. sc.Scenario.user_pos
    /. n
  in
  let uniform = spread base 3 in
  let clustered =
    spread
      {
        base with
        placement = Scenario_gen.Clustered { hotspots = 2; sigma_m = 40. };
      }
      3
  in
  Alcotest.(check bool) "clustered users concentrate" true
    (clustered < uniform)

let test_clustered_stays_in_area () =
  let cfg =
    {
      Scenario_gen.paper_default with
      n_users = 500;
      area_w = 300.;
      area_h = 300.;
      placement = Scenario_gen.Clustered { hotspots = 3; sigma_m = 200. };
      ensure_coverage = false;
    }
  in
  let rng = Random.State.make [| 4 |] in
  let sc = Scenario_gen.generate ~rng cfg in
  Array.iter
    (fun p ->
      if p.Point.x < 0. || p.Point.x > 300. || p.Point.y < 0. || p.Point.y > 300.
      then Alcotest.fail "user escaped the deployment area")
    sc.Scenario.user_pos

let prop_generator_deterministic_with_extensions =
  QCheck.Test.make ~name:"extended generator is seed-deterministic" ~count:30
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let cfg =
        {
          Scenario_gen.paper_default with
          n_aps = 10;
          n_users = 30;
          placement = Scenario_gen.Clustered { hotspots = 2; sigma_m = 50. };
          popularity = Scenario_gen.Zipf 1.2;
        }
      in
      let a = Scenario_gen.problems ~seed ~n:1 cfg in
      let b = Scenario_gen.problems ~seed ~n:1 cfg in
      Problem.rates_matrix (List.hd a) = Problem.rates_matrix (List.hd b)
      && Problem.((List.hd a).user_session = (List.hd b).user_session))

(* ------------------------------------------------------------------ *)
(* Message loss robustness                                            *)
(* ------------------------------------------------------------------ *)

let small_scenario seed =
  let rng = Random.State.make [| seed |] in
  Scenario_gen.generate ~rng
    {
      Scenario_gen.paper_default with
      n_aps = 20;
      n_users = 40;
      area_w = 600.;
      area_h = 600.;
    }

let dist_policy =
  Wlan_sim.Runner.Distributed_policy
    {
      objective = Distributed.Min_total_load;
      mode = Wlan_sim.Runner.Sequential;
      max_passes = 40;
    }

let test_loss_free_equals_lossy_zero () =
  let sc = small_scenario 5 in
  let a = Wlan_sim.Runner.run ~policy:dist_policy sc in
  let b = Wlan_sim.Runner.run ~loss_rate:0. ~policy:dist_policy sc in
  Alcotest.(check bool) "identical" true
    (a.Wlan_sim.Runner.assoc = b.Wlan_sim.Runner.assoc)

let test_moderate_loss_still_serves_everyone () =
  let sc = small_scenario 6 in
  let r = Wlan_sim.Runner.run ~loss_rate:0.4 ~policy:dist_policy sc in
  let coverable =
    List.length (Problem.coverable_users (Scenario.to_problem sc))
  in
  Alcotest.(check bool) "converged" true r.Wlan_sim.Runner.converged;
  Alcotest.(check int) "everyone served despite 40% loss" coverable
    r.Wlan_sim.Runner.solution.Solution.satisfied

let test_total_loss_serves_nobody () =
  let sc = small_scenario 7 in
  let r = Wlan_sim.Runner.run ~loss_rate:1.0 ~policy:dist_policy sc in
  Alcotest.(check int) "nobody served" 0
    r.Wlan_sim.Runner.solution.Solution.satisfied;
  Alcotest.(check bool) "still terminates" true r.Wlan_sim.Runner.converged

let test_loss_costs_extra_passes () =
  let sc = small_scenario 8 in
  let clean = Wlan_sim.Runner.run ~policy:dist_policy sc in
  let lossy = Wlan_sim.Runner.run ~loss_rate:0.6 ~policy:dist_policy sc in
  Alcotest.(check bool) "lossy needs at least as many passes" true
    (lossy.Wlan_sim.Runner.passes >= clean.Wlan_sim.Runner.passes)

(* ------------------------------------------------------------------ *)
(* Mobility                                                           *)
(* ------------------------------------------------------------------ *)

let test_mobility_epochs () =
  let sc = small_scenario 9 in
  let reports =
    Wlan_sim.Mobility.run ~seed:1 ~move_fraction:0.25 ~epochs:4
      ~policy:dist_policy sc
  in
  Alcotest.(check int) "4 epochs" 4 (List.length reports);
  let first = List.hd reports in
  Alcotest.(check int) "no relocation in epoch 1" 0
    first.Wlan_sim.Mobility.relocated;
  List.iteri
    (fun i (e : Wlan_sim.Mobility.epoch_report) ->
      if i > 0 then
        Alcotest.(check int)
          (Fmt.str "epoch %d relocations" e.Wlan_sim.Mobility.epoch)
          10 e.Wlan_sim.Mobility.relocated;
      Alcotest.(check bool) "converged" true
        e.Wlan_sim.Mobility.report.Wlan_sim.Runner.converged;
      Alcotest.(check bool) "in range" true
        (Mcast_core.Solution.in_range_ok
           e.Wlan_sim.Mobility.report.Wlan_sim.Runner.problem
           e.Wlan_sim.Mobility.report.Wlan_sim.Runner.solution))
    reports

let test_mobility_warm_start_cheaper_than_cold () =
  (* rejoin churn after a 10% move burst should stay well below n_users *)
  let sc = small_scenario 10 in
  let reports =
    Wlan_sim.Mobility.run ~seed:2 ~move_fraction:0.1 ~epochs:3
      ~policy:dist_policy sc
  in
  List.iteri
    (fun i (e : Wlan_sim.Mobility.epoch_report) ->
      if i > 0 then
        Alcotest.(check bool)
          (Fmt.str "epoch %d churn bounded" e.Wlan_sim.Mobility.epoch)
          true
          (e.Wlan_sim.Mobility.rejoin_moves <= 20))
    reports

let test_mobility_with_zapping () =
  (* channel changes alone (no movement) also force re-association work *)
  let sc = small_scenario 12 in
  let reports =
    Wlan_sim.Mobility.run ~seed:5 ~move_fraction:0. ~session_churn:0.3
      ~epochs:3 ~policy:dist_policy sc
  in
  let coverable =
    List.length (Problem.coverable_users (Scenario.to_problem sc))
  in
  List.iter
    (fun (e : Wlan_sim.Mobility.epoch_report) ->
      Alcotest.(check bool) "converged" true
        e.Wlan_sim.Mobility.report.Wlan_sim.Runner.converged;
      Alcotest.(check int) "everyone still served" coverable
        e.Wlan_sim.Mobility.report.Wlan_sim.Runner.solution.Solution.satisfied)
    reports;
  (* sessions actually changed between epochs *)
  let sessions_of (e : Wlan_sim.Mobility.epoch_report) =
    Array.copy
      Problem.(e.Wlan_sim.Mobility.report.Wlan_sim.Runner.problem.user_session)
  in
  let first = sessions_of (List.hd reports) in
  let last = sessions_of (List.nth reports 2) in
  Alcotest.(check bool) "some user zapped" true (first <> last)

let test_zap_function () =
  let sc = small_scenario 13 in
  let rng = Random.State.make [| 6 |] in
  let sc', k = Wlan_sim.Mobility.zap ~rng ~fraction:0.5 sc in
  Alcotest.(check int) "half the users" 20 k;
  Alcotest.(check bool) "positions untouched" true
    (sc'.Scenario.user_pos == sc.Scenario.user_pos
    || sc'.Scenario.user_pos = sc.Scenario.user_pos)

let test_disabled_aps_never_serve () =
  let sc = small_scenario 14 in
  let disabled = [ 0; 3; 7 ] in
  let r = Wlan_sim.Runner.run ~disabled_aps:disabled ~policy:dist_policy sc in
  Array.iteri
    (fun u a ->
      if List.mem a disabled then
        Alcotest.failf "user %d associated with dead AP %d" u a)
    r.Wlan_sim.Runner.assoc;
  Alcotest.(check bool) "converged" true r.Wlan_sim.Runner.converged

let test_ap_failures_across_epochs () =
  (* users ride out transient AP outages: every epoch converges and the
     survivors' budgets still hold *)
  let sc = small_scenario 15 in
  let reports =
    Wlan_sim.Mobility.run ~seed:7 ~move_fraction:0. ~ap_failure_fraction:0.2
      ~epochs:4 ~policy:dist_policy sc
  in
  List.iter
    (fun (e : Wlan_sim.Mobility.epoch_report) ->
      Alcotest.(check bool) "converged" true
        e.Wlan_sim.Mobility.report.Wlan_sim.Runner.converged;
      Alcotest.(check bool) "in range" true
        (Mcast_core.Solution.in_range_ok
           e.Wlan_sim.Mobility.report.Wlan_sim.Runner.problem
           e.Wlan_sim.Mobility.report.Wlan_sim.Runner.solution))
    reports

let test_interference_aware_mla () =
  (* with a 3-channel plan, lambda > 0 must not increase interference and
     lambda = 0 must match plain MLA *)
  let rng = Random.State.make [| 16 |] in
  let sc =
    Scenario_gen.generate ~rng
      {
        Scenario_gen.paper_default with
        n_aps = 50;
        n_users = 120;
        area_w = 600.;
        area_h = 600.;
      }
  in
  let p = Scenario.to_problem sc in
  let edges =
    Channels.conflict_edges
      ~range:(2. *. Rate_table.range Rate_table.default)
      sc.Scenario.ap_pos
  in
  let plan = Channels.color ~n_channels:3 ~n_aps:50 edges in
  let interference (sol : Solution.t) =
    Channels.total_interference plan ~loads:sol.Solution.ap_loads
  in
  let plain = Mla.run p in
  let zero = Mla.run_interference_aware ~channels:plan ~lambda:0. p in
  let aware = Mla.run_interference_aware ~channels:plan ~lambda:2. p in
  check_float "lambda=0 equals plain MLA" plain.Solution.total_load
    zero.Solution.total_load;
  Alcotest.(check int) "still serves everyone"
    plain.Solution.satisfied aware.Solution.satisfied;
  Alcotest.(check bool) "less interference-weighted airtime" true
    (interference aware <= interference plain +. 1e-9)

(* ------------------------------------------------------------------ *)
(* Per-AP power control (§8)                                          *)
(* ------------------------------------------------------------------ *)

let power_scenario () =
  let rng = Random.State.make [| 23 |] in
  Scenario_gen.generate ~rng
    {
      Scenario_gen.paper_default with
      n_aps = 40;
      n_users = 80;
      area_w = 500.;
      area_h = 500.;
    }

let test_power_problem_with_powers () =
  let sc = power_scenario () in
  let n = Scenario.n_aps sc in
  (* full power reproduces the plain compilation *)
  let full =
    Power.problem_with_powers sc ~factors:Power.default_factors
      ~levels:(Array.make n 0)
  in
  let plain = Scenario.to_problem sc in
  Alcotest.(check bool) "full power = plain" true
    (Problem.rates_matrix full = Problem.rates_matrix plain);
  (* dropping one AP to the lowest level only shrinks that AP's links *)
  let levels = Array.make n 0 in
  levels.(0) <- Array.length Power.default_factors - 1;
  let mixed =
    Power.problem_with_powers sc ~factors:Power.default_factors ~levels
  in
  for u = 0 to Scenario.n_users sc - 1 do
    if Problem.link_rate mixed ~ap:0 ~user:u
       > Problem.link_rate plain ~ap:0 ~user:u +. 1e-9
    then Alcotest.fail "lower power raised a rate";
    for a = 1 to n - 1 do
      if
        Problem.link_rate mixed ~ap:a ~user:u
        <> Problem.link_rate plain ~ap:a ~user:u
      then Alcotest.fail "other APs must be untouched"
    done
  done

let test_power_optimize () =
  let sc = power_scenario () in
  let edges =
    Channels.conflict_edges
      ~range:(2. *. Rate_table.range Rate_table.default)
      sc.Scenario.ap_pos
  in
  let channels = Channels.color ~n_channels:3 ~n_aps:(Scenario.n_aps sc) edges in
  let plan = Power.optimize ~channels ~mu:0.3 sc in
  Alcotest.(check bool) "objective never worse than full power" true
    (plan.Power.objective <= plan.Power.full_power_objective +. 1e-9);
  Alcotest.(check bool) "levels in range" true
    (Array.for_all
       (fun l -> l >= 0 && l < Array.length plan.Power.factors)
       plan.Power.levels);
  (* coverage is preserved *)
  let plain = Scenario.to_problem sc in
  Alcotest.(check int) "no user lost"
    (List.length (Problem.coverable_users plain))
    (List.length (Problem.coverable_users plan.Power.problem));
  Alcotest.(check int) "still serves everyone"
    (List.length (Problem.coverable_users plain))
    plan.Power.solution.Solution.satisfied;
  (* with a strong interference weight on a dense network, someone
     actually sheds power *)
  Alcotest.(check bool) "some AP reduced power" true
    (Power.reduced_count plan > 0)

let test_power_mu_zero_objective_is_pure_load () =
  (* with mu = 0 the objective is exactly the MLA total load. Note that
     power reductions can still happen: pruning an AP's rate options can
     steer the *greedy* cover out of a trap (only optimal MLA is monotone
     in power), and coordinate descent is free to exploit that. *)
  let sc = power_scenario () in
  let edges = Channels.conflict_edges ~range:400. sc.Scenario.ap_pos in
  let channels = Channels.color ~n_channels:3 ~n_aps:(Scenario.n_aps sc) edges in
  let plan = Power.optimize ~channels ~mu:0. sc in
  check_float ~eps:1e-9 "objective = total load"
    plan.Power.solution.Solution.total_load plan.Power.objective;
  let full_power_total = (Mla.run (Scenario.to_problem sc)).Solution.total_load in
  Alcotest.(check bool) "never worse than full-power MLA" true
    (plan.Power.solution.Solution.total_load <= full_power_total +. 1e-9)

let test_mobility_deterministic () =
  let sc = small_scenario 11 in
  let run () =
    List.map
      (fun (e : Wlan_sim.Mobility.epoch_report) ->
        (e.Wlan_sim.Mobility.rejoin_moves, Array.copy e.report.Wlan_sim.Runner.assoc))
      (Wlan_sim.Mobility.run ~seed:3 ~move_fraction:0.2 ~epochs:3
         ~policy:dist_policy sc)
  in
  Alcotest.(check bool) "same seed, same epochs" true (run () = run ())

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_coloring_proper_with_enough_channels;
      prop_residual_count_consistent;
      prop_dual_unicast_side_is_ssa;
      prop_generator_deterministic_with_extensions;
    ]

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "extensions"
    [
      ( "channels",
        [
          tc "conflict edges" test_conflict_edges_line;
          tc "path 2-coloring" test_coloring_path_two_channels;
          tc "triangle needs 3" test_coloring_triangle_short;
          tc "interference accounting" test_co_channel_interference_accounting;
          tc "MLA reduces interference" test_mla_reduces_interference;
        ] );
      ( "dual association",
        [
          tc "unicast loads" test_unicast_loads;
          tc "combined adds both" test_combined_adds_both;
          tc "single shares AP" test_single_association_shares_ap;
          tc "dual saves airtime" test_dual_saves_airtime_on_campus;
          tc "max saving consistent" test_dual_max_saving_consistent;
          tc "dual measured in DES" test_dual_measured_in_simulator;
        ] );
      ( "workloads",
        [
          tc "zipf skew" test_zipf_skews_sessions;
          tc "clustered concentrates" test_clustered_placement_concentrates;
          tc "clustered clamped" test_clustered_stays_in_area;
        ] );
      ( "message loss",
        [
          tc "zero loss is identical" test_loss_free_equals_lossy_zero;
          tc "moderate loss tolerated" test_moderate_loss_still_serves_everyone;
          tc "total loss" test_total_loss_serves_nobody;
          tc "loss costs passes" test_loss_costs_extra_passes;
        ] );
      ( "power control",
        [
          tc "per-AP compilation" test_power_problem_with_powers;
          tc "optimize trades interference" test_power_optimize;
          tc "mu=0 is pure load descent" test_power_mu_zero_objective_is_pure_load;
        ] );
      ( "mobility",
        [
          tc "epoch structure" test_mobility_epochs;
          tc "warm start churn" test_mobility_warm_start_cheaper_than_cold;
          tc "session zapping" test_mobility_with_zapping;
          tc "zap function" test_zap_function;
          tc "disabled APs never serve" test_disabled_aps_never_serve;
          tc "AP failures across epochs" test_ap_failures_across_epochs;
          tc "interference-aware MLA" test_interference_aware_mla;
          tc "deterministic" test_mobility_deterministic;
        ] );
      ("properties", qcheck_cases);
    ]
