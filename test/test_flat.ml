(* The flat-kernel differential battery (PR 8): the structure-of-arrays
   greedy cores and the shard-aware centralized reductions are proven
   bit-identical to their reference implementations.

   - Distributed kernels (qcheck): [`Flat] (preallocated scratch planes,
     hypothetical-load caching) = [`Boxed] (the original list-and-array
     rule) on the dense and sparse views, both objectives, Sequential
     and Simultaneous — full outcome including float loads.
   - Online kernels (qcheck): a seeded delta script (arrive / depart /
     set_rate / fail_ap / recover_ap, settling after each burst) driven
     through a [`Flat] and a [`Boxed] network stays in lockstep:
     identical associations, loads and settle stats after every burst.
   - Sharded centralized MNU/BLA (qcheck): [Shard.solve_mnu] /
     [Shard.solve_bla] = the unsharded [Mnu.run ~engine:`Lazy] /
     [Bla.run ~engine:`Lazy] on dense and sparse views, including
     wide-area instances whose plans have several shards.
   - Pool fanout: fig9a-size sharded centralized solves at --jobs 1/2/4
     equal the unsharded runs.
   - City scale: the sharded centralized MNU association on the
     2000x40000 instance is pinned by a golden j1==j4 digest (the dense
     matrix is never allocated).

   The optkit-level halves of the battery — SCG session rounds = eager
   rounds, arena-backed solves = fresh-allocation solves — live in
   test_optkit.ml next to the instance generators. *)

open Wlan_model
open Mcast_core

let digest s = Digest.to_hex (Digest.string s)

let read_golden path =
  let ic = open_in path in
  let line = input_line ic in
  close_in ic;
  String.trim line

let check_float_arrays what a b =
  Alcotest.(check int) (what ^ " length") (Array.length a) (Array.length b);
  Array.iteri
    (fun i x ->
      if not (Float.equal x b.(i)) then
        Alcotest.failf "%s: index %d differs: %.17g vs %.17g" what i x b.(i))
    a

(* Same seed-indexed geometric case family as test_sparse.ml; [wide]
   spreads the same population over a 2 km square so the plan splits
   into several interaction components. *)
let case ?(wide = false) ~seed () =
  let rng = Random.State.make [| seed; 0x59a25e |] in
  let n_aps = 1 + Random.State.int rng 14 in
  let n_users = 1 + Random.State.int rng 30 in
  let n_sessions = 1 + Random.State.int rng 3 in
  let budget = [| 0.3; 0.9; 2.0 |].(Random.State.int rng 3) in
  let placement =
    if Random.State.bool rng then Scenario_gen.Uniform
    else Scenario_gen.Clustered { hotspots = 2; sigma_m = 80. }
  in
  let side = if wide then 2000. else 500. in
  let cfg =
    {
      Scenario_gen.paper_default with
      area_w = side;
      area_h = side;
      n_aps;
      n_users;
      n_sessions;
      budget;
      placement;
      ensure_coverage = false;
    }
  in
  let sc = Scenario_gen.generate ~rng:(Scenario_gen.scenario_rng ~seed 0) cfg in
  (sc, Scenario.to_problem sc, Scenario.to_problem_sparse sc)

(* ------------------------------------------------------------------ *)
(* Distributed: flat kernel = boxed kernel                             *)
(* ------------------------------------------------------------------ *)

let kernels_agree ~scheduler ~objective seed =
  let _, pd, ps = case ~seed () in
  List.iter
    (fun p ->
      let a = Distributed.run ~max_rounds:300 ~kernel:`Flat ~scheduler ~objective p in
      let b =
        Distributed.run ~max_rounds:300 ~kernel:`Boxed ~scheduler ~objective p
      in
      if not (Association.equal a.Distributed.assoc b.Distributed.assoc) then
        Alcotest.fail "associations differ";
      Alcotest.(check int) "rounds" a.Distributed.rounds b.Distributed.rounds;
      Alcotest.(check int) "moves" a.Distributed.moves b.Distributed.moves;
      Alcotest.(check bool) "converged" a.Distributed.converged
        b.Distributed.converged;
      Alcotest.(check bool) "oscillated" a.Distributed.oscillated
        b.Distributed.oscillated;
      check_float_arrays "loads"
        (Loads.ap_loads p a.Distributed.assoc)
        (Loads.ap_loads p b.Distributed.assoc))
    [ pd; ps ];
  true

let qcheck_kernels ~label ~scheduler ~objective =
  QCheck.Test.make
    ~name:(label ^ ": flat kernel = boxed kernel, full outcome")
    ~count:30
    QCheck.(int_range 0 10_000)
    (kernels_agree ~scheduler ~objective)

let qcheck_kernel_seq_total =
  qcheck_kernels ~label:"Distributed Sequential (total-load)"
    ~scheduler:Distributed.Sequential ~objective:Distributed.Min_total_load

let qcheck_kernel_seq_vector =
  qcheck_kernels ~label:"Distributed Sequential (load-vector)"
    ~scheduler:Distributed.Sequential ~objective:Distributed.Min_load_vector

let qcheck_kernel_sim =
  qcheck_kernels ~label:"Distributed Simultaneous"
    ~scheduler:Distributed.Simultaneous ~objective:Distributed.Min_total_load

(* ------------------------------------------------------------------ *)
(* Online: flat kernel = boxed kernel under churn deltas               *)
(* ------------------------------------------------------------------ *)

(* Drive two Online networks (one per kernel) through the same random
   delta script and check they stay in lockstep after every settle. *)
let online_kernels_agree ~mode seed =
  let _, _, ps = case ~seed () in
  let n_aps, n_users = Problem.dims ps in
  let mk kernel =
    Distributed.Online.create ~kernel ~objective:Distributed.Min_load_vector ps
  in
  let na = mk `Flat and nb = mk `Boxed in
  let rng = Random.State.make [| seed; 0x1f7a3d |] in
  let present = Array.make n_users true in
  let alive = Array.make n_aps true in
  let rates = [| 0.; 6.; 12.; 24.; 54. |] in
  let event () =
    match Random.State.int rng 4 with
    | 0 ->
        let u = Random.State.int rng n_users in
        if present.(u) then (
          ignore (Distributed.Online.depart na ~user:u);
          ignore (Distributed.Online.depart nb ~user:u);
          present.(u) <- false)
        else (
          ignore (Distributed.Online.arrive na ~user:u);
          ignore (Distributed.Online.arrive nb ~user:u);
          present.(u) <- true)
    | 1 ->
        let a = Random.State.int rng n_aps in
        if alive.(a) then (
          ignore (Distributed.Online.fail_ap na ~ap:a);
          ignore (Distributed.Online.fail_ap nb ~ap:a);
          alive.(a) <- false)
        else (
          ignore (Distributed.Online.recover_ap na ~ap:a);
          ignore (Distributed.Online.recover_ap nb ~ap:a);
          alive.(a) <- true)
    | _ -> (
        (* perturb an existing link (sparse slots cannot grow) *)
        let u = Random.State.int rng n_users in
        match Problem.neighbor_aps ps u with
        | [] -> ()
        | aps ->
            let a = List.nth aps (Random.State.int rng (List.length aps)) in
            let r = rates.(Random.State.int rng (Array.length rates)) in
            ignore (Distributed.Online.set_rate na ~user:u ~ap:a r);
            ignore (Distributed.Online.set_rate nb ~user:u ~ap:a r))
  in
  for burst = 1 to 3 do
    for _ = 1 to 8 do
      event ()
    done;
    let sa = Distributed.Online.settle ~max_rounds:300 ~mode na in
    let sb = Distributed.Online.settle ~max_rounds:300 ~mode nb in
    if
      not
        (Association.equal
           (Distributed.Online.assoc na)
           (Distributed.Online.assoc nb))
    then Alcotest.failf "burst %d: associations differ" burst;
    Alcotest.(check int)
      (Fmt.str "burst %d moves" burst)
      sa.Distributed.Online.moves sb.Distributed.Online.moves;
    Alcotest.(check int)
      (Fmt.str "burst %d rounds" burst)
      sa.Distributed.Online.rounds sb.Distributed.Online.rounds;
    check_float_arrays
      (Fmt.str "burst %d loads" burst)
      (Array.copy (Distributed.Online.loads na))
      (Array.copy (Distributed.Online.loads nb))
  done;
  true

let qcheck_online_kernels_seq =
  QCheck.Test.make
    ~name:"Online deltas: flat kernel = boxed kernel (sequential settles)"
    ~count:30
    QCheck.(int_range 0 10_000)
    (online_kernels_agree ~mode:`Sequential)

let qcheck_online_kernels_sim =
  QCheck.Test.make
    ~name:"Online deltas: flat kernel = boxed kernel (simultaneous settles)"
    ~count:30
    QCheck.(int_range 0 10_000)
    (online_kernels_agree ~mode:`Simultaneous)

(* ------------------------------------------------------------------ *)
(* Sharded centralized reductions                                      *)
(* ------------------------------------------------------------------ *)

let check_solutions label (a : Solution.t) (b : Solution.t) =
  if not (Association.equal a.Solution.assoc b.Solution.assoc) then
    Alcotest.failf "%s: associations differ" label;
  Alcotest.(check int) (label ^ " satisfied") a.Solution.satisfied
    b.Solution.satisfied;
  check_float_arrays (label ^ " ap_loads") a.Solution.ap_loads
    b.Solution.ap_loads;
  if not (Float.equal a.Solution.max_load b.Solution.max_load) then
    Alcotest.failf "%s: max loads differ" label

let sharded_mnu_matches ~wide seed =
  let _, pd, ps = case ~wide ~seed () in
  List.iter
    (fun p ->
      check_solutions "sharded MNU" (Shard.solve_mnu p) (Mnu.run ~engine:`Lazy p))
    [ pd; ps ];
  true

let sharded_bla_matches ~wide seed =
  let _, pd, ps = case ~wide ~seed () in
  List.iter
    (fun p ->
      match (Shard.solve_bla p, Bla.run ~engine:`Lazy p) with
      | None, None -> ()
      | Some a, Some b -> check_solutions "sharded BLA" a b
      | Some _, None -> Alcotest.fail "sharded feasible, unsharded not"
      | None, Some _ -> Alcotest.fail "unsharded feasible, sharded not")
    [ pd; ps ];
  true

let qcheck_sharded_mnu =
  QCheck.Test.make ~name:"sharded centralized MNU = unsharded lazy MNU"
    ~count:40
    QCheck.(int_range 0 10_000)
    (sharded_mnu_matches ~wide:false)

let qcheck_sharded_mnu_wide =
  QCheck.Test.make
    ~name:"sharded centralized MNU = unsharded lazy MNU (multi-shard)"
    ~count:40
    QCheck.(int_range 0 10_000)
    (sharded_mnu_matches ~wide:true)

let qcheck_sharded_bla =
  QCheck.Test.make ~name:"sharded centralized BLA = unsharded lazy BLA"
    ~count:25
    QCheck.(int_range 0 10_000)
    (sharded_bla_matches ~wide:false)

let qcheck_sharded_bla_wide =
  QCheck.Test.make
    ~name:"sharded centralized BLA = unsharded lazy BLA (multi-shard)"
    ~count:25
    QCheck.(int_range 0 10_000)
    (sharded_bla_matches ~wide:true)

(* fig9a-size sharded centralized solves across pool domains. *)
let test_sharded_centralized_fig9a_jobs () =
  let sc =
    Scenario_gen.generate
      ~rng:(Scenario_gen.scenario_rng ~seed:2007 0)
      Scenario_gen.paper_default
  in
  let ps = Scenario.to_problem_sparse sc in
  let mnu = Mnu.run ~engine:`Lazy ps in
  let bla = Bla.run ~engine:`Lazy ps in
  List.iter
    (fun jobs ->
      Harness.Pool.with_pool ~jobs (fun pool ->
          let fanout thunks = Harness.Pool.run pool thunks in
          check_solutions
            (Fmt.str "MNU jobs=%d" jobs)
            (Shard.solve_mnu ~fanout ps)
            mnu;
          match (Shard.solve_bla ~fanout ps, bla) with
          | Some a, Some b -> check_solutions (Fmt.str "BLA jobs=%d" jobs) a b
          | None, None -> ()
          | _ -> Alcotest.failf "BLA jobs=%d: feasibility differs" jobs))
    [ 1; 2; 4 ]

(* The city golden: sharded centralized MNU on 2000 APs x 40000 users,
   equal at jobs 1 and 4 and pinned to the committed digest. *)
let city_mnu_digest ~jobs ps pl =
  let s =
    Harness.Pool.with_pool ~jobs (fun pool ->
        Shard.solve_mnu ~plan:pl ~fanout:(Harness.Pool.run pool) ps)
  in
  let buf = Buffer.create (1 lsl 18) in
  Buffer.add_string buf
    (Fmt.str "city mnu 2000x40000 shards=%d satisfied=%d max=%.17g@."
       (List.length pl.Shard.shards)
       s.Solution.satisfied s.Solution.max_load);
  Array.iter (fun a -> Buffer.add_string buf (Fmt.str "%d," a)) s.Solution.assoc;
  digest (Buffer.contents buf)

let test_city_mnu_golden () =
  let sc = Scenario_gen.city ~seed:2007 Scenario_gen.city_default in
  let ps = Scenario.to_problem_sparse sc in
  let pl =
    Shard.plan_geometric ~ap_pos:sc.Scenario.ap_pos
      ~interaction_radius:(2. *. Rate_table.range sc.Scenario.rate_table)
      ps
  in
  let d1 = city_mnu_digest ~jobs:1 ps pl in
  let d4 = city_mnu_digest ~jobs:4 ps pl in
  Alcotest.(check string) "j1 = j4" d1 d4;
  match read_golden "golden/city_mnu_shard.digest" with
  | golden -> Alcotest.(check string) "matches committed golden" golden d1
  | exception Sys_error _ ->
      Alcotest.failf "golden/city_mnu_shard.digest missing; computed %s" d1

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [
      qcheck_kernel_seq_total;
      qcheck_kernel_seq_vector;
      qcheck_kernel_sim;
      qcheck_online_kernels_seq;
      qcheck_online_kernels_sim;
      qcheck_sharded_mnu;
      qcheck_sharded_mnu_wide;
      qcheck_sharded_bla;
      qcheck_sharded_bla_wide;
    ]

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "flat"
    [
      ("differential", qcheck_cases);
      ( "sharded-centralized",
        [
          tc "fig9a scale, jobs 1/2/4" test_sharded_centralized_fig9a_jobs;
          tc "city MNU golden, j1 = j4" test_city_mnu_golden;
        ] );
    ]
