(* Tests for the discrete-event simulator: event ordering, engine clock
   discipline, scanning discovery, MAC airtime accounting against the
   analytic loads of Definition 1, protocol agents, and end-to-end
   equivalence between the simulated protocols and the abstract
   algorithms. *)

open Wlan_model
open Wlan_sim

let feq ?(eps = 1e-9) a b = Float.abs (a -. b) <= eps

let check_float ?eps msg expected actual =
  if not (feq ?eps expected actual) then
    Alcotest.failf "%s: expected %.9g, got %.9g" msg expected actual

(* ------------------------------------------------------------------ *)
(* Event queue                                                        *)
(* ------------------------------------------------------------------ *)

let test_queue_time_order () =
  let q = Event_queue.create () in
  Event_queue.push q ~time:3. "c";
  Event_queue.push q ~time:1. "a";
  Event_queue.push q ~time:2. "b";
  let pop () = Option.get (Event_queue.pop q) in
  Alcotest.(check string) "first" "a" (snd (pop ()));
  Alcotest.(check string) "second" "b" (snd (pop ()));
  Alcotest.(check string) "third" "c" (snd (pop ()));
  Alcotest.(check bool) "drained" true (Event_queue.pop q = None)

let test_queue_fifo_on_ties () =
  let q = Event_queue.create () in
  for i = 0 to 9 do
    Event_queue.push q ~time:1. i
  done;
  for i = 0 to 9 do
    Alcotest.(check int) "insertion order" i (snd (Option.get (Event_queue.pop q)))
  done

let test_queue_growth () =
  (* push through several capacity doublings and drain in order *)
  let q = Event_queue.create () in
  for i = 999 downto 0 do
    Event_queue.push q ~time:(float_of_int i) i
  done;
  Alcotest.(check int) "size" 1000 (Event_queue.size q);
  for i = 0 to 999 do
    let t, v = Option.get (Event_queue.pop q) in
    if v <> i || t <> float_of_int i then Alcotest.fail "order broken"
  done

let test_queue_rejects_bad_time () =
  let q = Event_queue.create () in
  Alcotest.check_raises "negative" (Invalid_argument "Event_queue.push: bad time")
    (fun () -> Event_queue.push q ~time:(-1.) ());
  Alcotest.check_raises "nan" (Invalid_argument "Event_queue.push: bad time")
    (fun () -> Event_queue.push q ~time:Float.nan ())

let prop_queue_sorts =
  QCheck.Test.make ~name:"event queue pops in nondecreasing time order"
    ~count:200
    QCheck.(list_of_size Gen.(int_range 1 100) (float_range 0. 100.))
    (fun times ->
      let q = Event_queue.create () in
      List.iter (fun t -> Event_queue.push q ~time:t ()) times;
      let prev = ref neg_infinity in
      let ok = ref true in
      let rec drain () =
        match Event_queue.pop q with
        | None -> ()
        | Some (t, ()) ->
            if t < !prev then ok := false;
            prev := t;
            drain ()
      in
      drain ();
      !ok)

(* ------------------------------------------------------------------ *)
(* Engine                                                             *)
(* ------------------------------------------------------------------ *)

let test_engine_clock_advances () =
  let e = Engine.create () in
  let log = ref [] in
  Engine.schedule e ~at:2. (fun () -> log := (2., Engine.now e) :: !log);
  Engine.schedule e ~at:1. (fun () -> log := (1., Engine.now e) :: !log);
  ignore (Engine.run e);
  List.iter (fun (want, got) -> check_float "clock = event time" want got) !log;
  Alcotest.(check int) "both fired" 2 (Engine.processed e)

let test_engine_nested_scheduling () =
  let e = Engine.create () in
  let hits = ref [] in
  Engine.schedule e ~at:1. (fun () ->
      hits := 1 :: !hits;
      Engine.after e ~delay:0.5 (fun () -> hits := 2 :: !hits));
  ignore (Engine.run e);
  Alcotest.(check (list int)) "chain fired in order" [ 1; 2 ] (List.rev !hits);
  check_float "final time" 1.5 (Engine.now e)

let test_engine_rejects_past () =
  let e = Engine.create () in
  Engine.schedule e ~at:5. (fun () ->
      try
        Engine.schedule e ~at:1. (fun () -> ());
        Alcotest.fail "expected rejection"
      with Invalid_argument _ -> ());
  ignore (Engine.run e)

let test_engine_until () =
  let e = Engine.create () in
  let fired = ref 0 in
  Engine.schedule e ~at:1. (fun () -> incr fired);
  Engine.schedule e ~at:10. (fun () -> incr fired);
  ignore (Engine.run ~until:5. e);
  Alcotest.(check int) "only early event" 1 !fired;
  check_float "clock parked at until" 5. (Engine.now e)

let test_engine_rejects_reentrant_run () =
  let e = Engine.create () in
  Engine.schedule e ~at:1. (fun () ->
      try
        ignore (Engine.run e);
        Alcotest.fail "expected re-entrant rejection"
      with Invalid_argument _ -> ());
  ignore (Engine.run e);
  (* and the engine is still usable afterwards *)
  let fired = ref false in
  Engine.schedule e ~at:2. (fun () -> fired := true);
  ignore (Engine.run e);
  Alcotest.(check bool) "recovered" true !fired

let test_mac_rejects_empty_window () =
  let e = Engine.create () in
  Alcotest.check_raises "empty window"
    (Invalid_argument "Mac.start: empty window") (fun () ->
      ignore (Mac.start e ~n_aps:1 ~window:(1., 1.) []))

let test_scanning_empty_network () =
  (* zero users: completion still fires *)
  let radio =
    {
      Radio.rate_table = Rate_table.default;
      model = Rate_model.default;
      ap_pos = [||];
      user_pos = [||];
    }
  in
  let e = Engine.create () in
  let done_ = ref false in
  Scanning.start e radio ~on_complete:(fun _ -> done_ := true);
  ignore (Engine.run e);
  Alcotest.(check bool) "completed" true !done_

let test_engine_determinism () =
  let run_once () =
    let e = Engine.create ~seed:42 () in
    let v = ref [] in
    for _ = 1 to 5 do
      v := Engine.jitter e ~max:1. :: !v
    done;
    !v
  in
  Alcotest.(check bool) "same seed, same jitter" true (run_once () = run_once ())

(* ------------------------------------------------------------------ *)
(* A small deterministic scenario for the remaining tests              *)
(* ------------------------------------------------------------------ *)

(* Two APs 300 m apart; u0 near a0 only, u1 between both, u2 near a1 only.
   Rates: u0: a0@54; u1: a0@6 (190m), a1@12 (110m -> 12); u2: a1@54. *)
let sc2 =
  Scenario.make ~area_w:500. ~area_h:100.
    ~ap_pos:[| Point.v 0. 0.; Point.v 300. 0. |]
    ~user_pos:[| Point.v 10. 0.; Point.v 190. 0.; Point.v 310. 0. |]
    ~user_session:[| 0; 0; 1 |]
    ~sessions:(Session.uniform ~n:2 ~rate_mbps:1.)
    ~budget:0.9 ()

let test_radio_rates () =
  let r = Radio.of_scenario sc2 in
  Alcotest.(check (option (float 1e-9))) "u0-a0" (Some 54.)
    (Radio.link_rate r ~ap:0 ~user:0);
  Alcotest.(check (option (float 1e-9))) "u1-a0 at 190m" (Some 6.)
    (Radio.link_rate r ~ap:0 ~user:1);
  Alcotest.(check (option (float 1e-9))) "u1-a1 at 110m" (Some 12.)
    (Radio.link_rate r ~ap:1 ~user:1);
  Alcotest.(check (option (float 1e-9))) "u0-a1 out of range" None
    (Radio.link_rate r ~ap:1 ~user:0);
  Alcotest.(check (list int)) "u1 neighbors" [ 0; 1 ]
    (Radio.neighbor_aps r ~user:1)

(* ------------------------------------------------------------------ *)
(* Scanning                                                           *)
(* ------------------------------------------------------------------ *)

let test_scanning_discovers_neighbors () =
  let radio = Radio.of_scenario sc2 in
  let engine = Engine.create () in
  let out = ref None in
  Scanning.start engine radio ~on_complete:(fun r -> out := Some r);
  ignore (Engine.run engine);
  match !out with
  | None -> Alcotest.fail "scan never completed"
  | Some results ->
      let sorted = Scanning.sort_by_signal results in
      let aps_of u = List.map (fun (n : Scanning.neighbor) -> n.Scanning.ap) sorted.(u) in
      Alcotest.(check (list int)) "u0 sees a0" [ 0 ] (aps_of 0);
      Alcotest.(check (list int)) "u1 sees a1 first (closer)" [ 1; 0 ] (aps_of 1);
      Alcotest.(check (list int)) "u2 sees a1" [ 1 ] (aps_of 2);
      List.iter
        (fun (n : Scanning.neighbor) ->
          if n.Scanning.ap = 0 then
            check_float "u1-a0 measured rate" 6. n.Scanning.link_rate_mbps)
        sorted.(1)

let test_scanning_trace () =
  let radio = Radio.of_scenario sc2 in
  let engine = Engine.create () in
  let trace = Trace.create () in
  Scanning.start engine ~trace radio ~on_complete:(fun _ -> ());
  ignore (Engine.run engine);
  let probes =
    Trace.count_kind trace (function Trace.Probe_request _ -> true | _ -> false)
  in
  let responses =
    Trace.count_kind trace (function Trace.Probe_response _ -> true | _ -> false)
  in
  Alcotest.(check int) "3 probes" 3 probes;
  Alcotest.(check int) "4 responses (1+2+1)" 4 responses

(* ------------------------------------------------------------------ *)
(* MAC accounting                                                     *)
(* ------------------------------------------------------------------ *)

let test_mac_measured_equals_analytic () =
  let p = Scenario.to_problem sc2 in
  (* u0,u1 -> a0 (s0 at min(54,6)=6); u2 -> a1 (s1 at 54) *)
  let assoc : Association.t = [| 0; 0; 1 |] in
  let engine = Engine.create () in
  let plan =
    Mac.plan_of_association p assoc ~basic_rate:6. ~config:Mac.default_config
  in
  let acc = Mac.start engine ~n_aps:2 ~window:(0., 2.) plan in
  ignore (Engine.run engine);
  let measured = Mac.measured_loads acc in
  let analytic = Loads.ap_loads p assoc in
  Array.iteri
    (fun a m ->
      check_float ~eps:0.02 (Fmt.str "ap %d measured ~ analytic" a)
        analytic.(a) m)
    measured;
  check_float ~eps:1e-12 "a0 analytic 1/6" (1. /. 6.) analytic.(0)

let test_mac_basic_rate_mode () =
  let p = Scenario.to_problem sc2 in
  let assoc : Association.t = [| 0; -1; 1 |] in
  (* multi-rate: a0 serves u0 at 54 -> load 1/54; basic: at 6 -> 1/6 *)
  let config = { Mac.default_config with multi_rate = false } in
  let engine = Engine.create () in
  let plan = Mac.plan_of_association p assoc ~basic_rate:6. ~config in
  let acc = Mac.start engine ~config ~n_aps:2 ~window:(0., 2.) plan in
  ignore (Engine.run engine);
  let measured = Mac.measured_loads acc in
  check_float ~eps:0.02 "a0 at basic rate" (1. /. 6.) measured.(0)

let test_mac_empty_plan () =
  let engine = Engine.create () in
  let acc = Mac.start engine ~n_aps:3 ~window:(0., 1.) [] in
  ignore (Engine.run engine);
  Alcotest.(check (array (float 1e-12))) "all zero" [| 0.; 0.; 0. |]
    (Mac.measured_loads acc)

(* ------------------------------------------------------------------ *)
(* Trace                                                              *)
(* ------------------------------------------------------------------ *)

let test_trace_limit_and_order () =
  let t = Trace.create ~limit:3 () in
  for i = 0 to 9 do
    Trace.log t ~time:(float_of_int i) (Trace.Mark (string_of_int i))
  done;
  Alcotest.(check int) "bounded" 3 (Trace.count t);
  match Trace.records t with
  | [ a; b; c ] ->
      (* chronological order, earliest records kept *)
      Alcotest.(check (float 1e-12)) "first" 0. a.Trace.time;
      Alcotest.(check (float 1e-12)) "second" 1. b.Trace.time;
      Alcotest.(check (float 1e-12)) "third" 2. c.Trace.time
  | _ -> Alcotest.fail "wrong record count"

let test_trace_pp () =
  let s =
    Fmt.str "%a" Trace.pp_record
      { Trace.time = 1.5; kind = Trace.Associate { user = 3; ap = 7 } }
  in
  Alcotest.(check bool) "mentions user and ap" true
    (Astring.String.is_infix ~affix:"u3" s
    && Astring.String.is_infix ~affix:"a7" s)

(* ------------------------------------------------------------------ *)
(* Protocol agents                                                    *)
(* ------------------------------------------------------------------ *)

let test_ap_agent_tx_table () =
  let st = Proto.ap_create 0 in
  Proto.ap_join st ~user:0 ~session:0 ~link_rate:54.;
  Proto.ap_join st ~user:1 ~session:0 ~link_rate:6.;
  Proto.ap_join st ~user:2 ~session:1 ~link_rate:12.;
  let rates = [| 1.; 1. |] in
  check_float "load 1/6 + 1/12" ((1. /. 6.) +. (1. /. 12.))
    (Proto.ap_load st ~session_rates:rates);
  check_float "without slow user" ((1. /. 54.) +. (1. /. 12.))
    (Proto.ap_load_without st ~session_rates:rates ~user:1);
  Proto.ap_leave st ~user:2;
  check_float "after leave" (1. /. 6.) (Proto.ap_load st ~session_rates:rates)

let test_ap_answer_fields () =
  let st = Proto.ap_create 3 in
  Proto.ap_join st ~user:7 ~session:0 ~link_rate:12.;
  let r = Proto.ap_answer st ~session_rates:[| 1. |] ~budget:0.9 ~user:7 in
  Alcotest.(check int) "from" 3 r.Proto.from_ap;
  Alcotest.(check (float 1e-9)) "advertised budget" 0.9 r.Proto.budget;
  Alcotest.(check (list (pair int (float 1e-9)))) "sessions" [ (0, 12.) ]
    r.Proto.sessions;
  check_float "load" (1. /. 12.) r.Proto.load;
  Alcotest.(check (option (float 1e-9))) "without me" (Some 0.)
    r.Proto.load_without_you;
  let r' = Proto.ap_answer st ~session_rates:[| 1. |] ~budget:0.9 ~user:9 in
  Alcotest.(check (option (float 1e-9))) "stranger" None
    r'.Proto.load_without_you

(* The advertised session list must depend only on the member *set*, never
   on the order users joined (it is built through a Hashtbl, whose bucket
   order is unspecified): a user that queries two APs with identical
   members must see identical advertisements. *)
let prop_proto_answer_order_independent =
  let n_sessions = 24 in
  let gen_members =
    QCheck.Gen.(
      list_size (int_range 2 40)
        (triple (int_range 0 100)
           (int_range 0 (n_sessions - 1))
           (oneofl [ 6.; 12.; 24.; 54. ])))
  in
  QCheck.Test.make
    ~name:"AP session advertisement is insertion-order independent" ~count:200
    (QCheck.make gen_members)
    (fun members ->
      (* one entry per user: ap_join ignores re-joins of a known user *)
      let members =
        List.fold_left
          (fun acc ((u, _, _) as m) ->
            if List.exists (fun (u', _, _) -> u' = u) acc then acc
            else m :: acc)
          [] members
      in
      let rates = Array.make n_sessions 1. in
      let answer ms =
        let st = Proto.ap_create 0 in
        List.iter
          (fun (u, s, r) -> Proto.ap_join st ~user:u ~session:s ~link_rate:r)
          ms;
        Proto.ap_answer st ~session_rates:rates ~budget:0.9 ~user:(-1)
      in
      let sorted_by_session l =
        List.sort (fun (a, _) (b, _) -> Int.compare a b) l
      in
      let a = answer members and b = answer (List.rev members) in
      (* identical member sets => identical advertisements, and the
         advertisement is in canonical (session-sorted) order *)
      a.Proto.sessions = b.Proto.sessions
      && a.Proto.sessions = sorted_by_session a.Proto.sessions
      && feq a.Proto.load b.Proto.load)

(* ------------------------------------------------------------------ *)
(* End-to-end runs                                                    *)
(* ------------------------------------------------------------------ *)

let gen_scenario =
  QCheck.Gen.(
    let* n_aps = int_range 2 8 in
    let* n_users = int_range 2 15 in
    let* n_sessions = int_range 1 3 in
    let* seed = int_range 0 100_000 in
    let rng = Random.State.make [| seed |] in
    return
      (Scenario_gen.generate ~rng
         {
           Scenario_gen.paper_default with
           area_w = 500.;
           area_h = 500.;
           n_aps;
           n_users;
           n_sessions;
         }))

let arb_scenario = QCheck.make gen_scenario

let prop_sim_ssa_matches_abstract =
  QCheck.Test.make ~name:"simulated SSA = abstract Ssa.run" ~count:40
    arb_scenario (fun sc ->
      let r = Runner.run ~policy:Runner.Ssa_policy sc in
      let abstract = Mcast_core.Ssa.run (Scenario.to_problem sc) in
      r.Runner.assoc = abstract.Mcast_core.Solution.assoc)

let prop_sim_distributed_matches_abstract =
  QCheck.Test.make
    ~name:"simulated sequential protocol = abstract Distributed.run" ~count:30
    arb_scenario (fun sc ->
      let p = Scenario.to_problem sc in
      let r =
        Runner.run
          ~policy:
            (Runner.Distributed_policy
               {
                 objective = Mcast_core.Distributed.Min_total_load;
                 mode = Runner.Sequential;
                 max_passes = 50;
               })
          sc
      in
      let o =
        Mcast_core.Distributed.run ~scheduler:Mcast_core.Distributed.Sequential
          ~objective:Mcast_core.Distributed.Min_total_load p
      in
      r.Runner.converged
      && r.Runner.assoc = o.Mcast_core.Distributed.assoc)

let prop_sim_distributed_bla_matches_abstract =
  QCheck.Test.make
    ~name:"simulated sequential BLA protocol = abstract Distributed.run"
    ~count:30 arb_scenario (fun sc ->
      let p = Scenario.to_problem sc in
      let r =
        Runner.run
          ~policy:
            (Runner.Distributed_policy
               {
                 objective = Mcast_core.Distributed.Min_load_vector;
                 mode = Runner.Sequential;
                 max_passes = 50;
               })
          sc
      in
      let o =
        Mcast_core.Distributed.run ~scheduler:Mcast_core.Distributed.Sequential
          ~objective:Mcast_core.Distributed.Min_load_vector p
      in
      r.Runner.converged
      && r.Runner.assoc = o.Mcast_core.Distributed.assoc)

let prop_sim_measured_close_to_analytic =
  QCheck.Test.make ~name:"measured loads within 5% of Definition 1" ~count:30
    arb_scenario (fun sc ->
      let r = Runner.run ~streaming_window:2.0 ~policy:Runner.Ssa_policy sc in
      Array.for_all2
        (fun m a -> Float.abs (m -. a) <= (0.05 *. Float.max a 0.02) +. 1e-6)
        r.Runner.measured_loads r.Runner.analytic_loads)

let prop_sim_static_installs =
  QCheck.Test.make ~name:"static policy installs the given association"
    ~count:30 arb_scenario (fun sc ->
      let p = Scenario.to_problem sc in
      let mla = Mcast_core.Mla.run p in
      let r =
        Runner.run
          ~policy:(Runner.Static_policy mla.Mcast_core.Solution.assoc)
          sc
      in
      r.Runner.assoc = mla.Mcast_core.Solution.assoc)

let prop_sim_deterministic =
  QCheck.Test.make ~name:"same seed gives identical runs" ~count:15
    arb_scenario (fun sc ->
      let run () =
        let r =
          Runner.run ~seed:9
            ~policy:
              (Runner.Distributed_policy
                 {
                   objective = Mcast_core.Distributed.Min_total_load;
                   mode = Runner.Sequential;
                   max_passes = 50;
                 })
            sc
        in
        (Array.copy r.Runner.assoc, r.Runner.events, Array.copy r.Runner.measured_loads)
      in
      run () = run ())

let test_pass_history () =
  let rng = Random.State.make [| 21 |] in
  let sc =
    Scenario_gen.generate ~rng
      {
        Scenario_gen.paper_default with
        n_aps = 15;
        n_users = 40;
        area_w = 600.;
        area_h = 600.;
      }
  in
  let r =
    Runner.run
      ~policy:
        (Runner.Distributed_policy
           {
             objective = Mcast_core.Distributed.Min_total_load;
             mode = Runner.Sequential;
             max_passes = 40;
           })
      sc
  in
  let h = r.Runner.pass_history in
  Alcotest.(check int) "one snapshot per pass" r.Runner.passes (List.length h);
  (* served counts never decrease across passes *)
  let rec mono = function
    | (a : Runner.pass_stats) :: (b :: _ as rest) ->
        a.Runner.served <= b.Runner.served && mono rest
    | _ -> true
  in
  Alcotest.(check bool) "served non-decreasing" true (mono h);
  (* a converged run ends with a zero-move pass *)
  (match List.rev h with
  | last :: _ ->
      Alcotest.(check int) "final pass makes no moves" 0
        last.Runner.moves_in_pass;
      Alcotest.(check int) "final snapshot matches solution"
        r.Runner.solution.Mcast_core.Solution.satisfied last.Runner.served
  | [] -> Alcotest.fail "no history");
  Alcotest.(check bool) "converged" true r.Runner.converged

let test_sim_report_consistency () =
  let r = Runner.run ~policy:Runner.Ssa_policy sc2 in
  Alcotest.(check int) "all three served" 3
    r.Runner.solution.Mcast_core.Solution.satisfied;
  Alcotest.(check bool) "events processed" true (r.Runner.events > 0);
  Alcotest.(check bool) "sim time advanced" true (r.Runner.sim_time > 0.)

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_queue_sorts;
      prop_sim_ssa_matches_abstract;
      prop_sim_distributed_matches_abstract;
      prop_sim_distributed_bla_matches_abstract;
      prop_sim_measured_close_to_analytic;
      prop_sim_static_installs;
      prop_sim_deterministic;
      prop_proto_answer_order_independent;
    ]

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "wlan_sim"
    [
      ( "event_queue",
        [
          tc "time order" test_queue_time_order;
          tc "fifo on ties" test_queue_fifo_on_ties;
          tc "growth" test_queue_growth;
          tc "rejects bad time" test_queue_rejects_bad_time;
        ] );
      ( "engine",
        [
          tc "clock advances" test_engine_clock_advances;
          tc "nested scheduling" test_engine_nested_scheduling;
          tc "rejects past" test_engine_rejects_past;
          tc "until" test_engine_until;
          tc "re-entrant run" test_engine_rejects_reentrant_run;
          tc "determinism" test_engine_determinism;
        ] );
      ("radio", [ tc "rates" test_radio_rates ]);
      ( "scanning",
        [
          tc "discovers neighbors" test_scanning_discovers_neighbors;
          tc "trace counts" test_scanning_trace;
          tc "empty network" test_scanning_empty_network;
        ] );
      ( "mac",
        [
          tc "measured = analytic" test_mac_measured_equals_analytic;
          tc "basic-rate mode" test_mac_basic_rate_mode;
          tc "empty plan" test_mac_empty_plan;
          tc "rejects empty window" test_mac_rejects_empty_window;
        ] );
      ( "trace",
        [
          tc "limit and order" test_trace_limit_and_order;
          tc "pretty printing" test_trace_pp;
        ] );
      ( "proto",
        [
          tc "ap tx table" test_ap_agent_tx_table;
          tc "ap answer" test_ap_answer_fields;
        ] );
      ( "end-to-end",
        [
          tc "report consistency" test_sim_report_consistency;
          tc "pass history" test_pass_history;
        ] );
      ("properties", qcheck_cases);
    ]
