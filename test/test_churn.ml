(* The churn differential battery: dynamic runs pinned to the static
   solvers.

   - Quiescence oracle (qcheck): after an arbitrary churn script drains,
     the association is a Nash point of the local rule on the final
     static topology, and the tracker's cached per-AP loads equal a
     from-scratch eager recompute bit for bit — for the MNU (tight
     budget), BLA and MLA variants.
   - Differential settle: an all-dirty Online settle executes the same
     moves and lands on the same association and floats as
     Distributed.run ~scheduler:Sequential on the same instance.
   - Golden traces: the committed demo scenario replays to the committed
     trace/metrics digests, byte-identical at jobs 1 and jobs 4.
   - Fig. 4: simultaneous decisions from the crossed start oscillate;
     sequential decisions converge. *)

open Wlan_model
open Mcast_core

let small_cfg ~n_aps ~n_users =
  { Scenario_gen.paper_default with n_aps; n_users; area_w = 500.; area_h = 500. }

(* Deterministic (seed)-indexed random instance + script. *)
let case ~seed =
  let rng = Random.State.make [| seed; 0x0c4a51 |] in
  let n_aps = 3 + Random.State.int rng 6 in
  let n_users = 6 + Random.State.int rng 16 in
  let p = Scenario_gen.nth_problem ~seed ~index:0 (small_cfg ~n_aps ~n_users) in
  let n_aps, n_users = Problem.dims p in
  let script =
    Churn_script.random ~rng ~n_aps ~n_users
      { Churn_script.default_gen with n_events = 5 + Random.State.int rng 25 }
  in
  (p, script)

let check_float_arrays what a b =
  Alcotest.(check int) (what ^ " length") (Array.length a) (Array.length b);
  Array.iteri
    (fun i x ->
      if not (Float.equal x b.(i)) then
        Alcotest.failf "%s: index %d differs: %.17g vs %.17g" what i x b.(i))
    a

(* ------------------------------------------------------------------ *)
(* Quiescence oracle                                                   *)
(* ------------------------------------------------------------------ *)

let quiescent_after_churn ~label ~objective ~tweak seed =
  let p, script = case ~seed in
  let p = tweak p in
  let o =
    Wlan_sim.Churn.run ~baseline:false
      ~tiers:(Problem.distinct_rates p)
      ~objective ~script p
  in
  (* every settle converged (Sequential always does) *)
  List.iter
    (fun (s : Wlan_sim.Churn.step) ->
      if not s.converged then Alcotest.failf "%s: step did not converge" label)
    o.Wlan_sim.Churn.steps;
  let eff = o.Wlan_sim.Churn.effective in
  let assoc = o.Wlan_sim.Churn.assoc in
  (* per-AP loads: tracker cache = eager recompute, bit for bit *)
  let eager = Loads.ap_loads eff assoc in
  check_float_arrays (label ^ " loads") eager o.Wlan_sim.Churn.loads;
  (* Nash: no user's local rule wants to move on the final topology *)
  let _, n_users = Problem.dims eff in
  for u = 0 to n_users - 1 do
    match Distributed.decide eff assoc ~loads:eager ~objective u with
    | None -> ()
    | Some ap -> Alcotest.failf "%s: user %d still wants AP %d" label u ap
  done;
  true

let qcheck_oracle ~label ~objective ~tweak =
  QCheck.Test.make ~name:("quiescence oracle: " ^ label) ~count:40
    QCheck.(int_range 0 10_000)
    (quiescent_after_churn ~label ~objective ~tweak)

let oracle_mla =
  qcheck_oracle ~label:"MLA" ~objective:Distributed.Min_total_load
    ~tweak:Fun.id

let oracle_bla =
  qcheck_oracle ~label:"BLA" ~objective:Distributed.Min_load_vector
    ~tweak:Fun.id

(* MNU regime: a tight budget makes feasibility bite. *)
let oracle_mnu =
  qcheck_oracle ~label:"MNU" ~objective:Distributed.Min_total_load
    ~tweak:(fun p -> Problem.with_budget p 0.3)

(* ------------------------------------------------------------------ *)
(* Differential: Online all-dirty settle = static sequential run        *)
(* ------------------------------------------------------------------ *)

let differential_settle ~objective seed =
  let p, _ = case ~seed in
  let st = Distributed.run ~max_rounds:500 ~scheduler:Sequential ~objective p in
  let net = Distributed.Online.create ~objective p in
  let stats = Distributed.Online.settle ~max_rounds:500 net in
  if not (Association.equal st.Distributed.assoc (Distributed.Online.assoc net))
  then Alcotest.fail "association differs from static sequential run";
  Alcotest.(check int) "same moves" st.Distributed.moves
    stats.Distributed.Online.moves;
  Alcotest.(check bool) "converged" true stats.Distributed.Online.converged;
  check_float_arrays "loads"
    (Loads.ap_loads p st.Distributed.assoc)
    (Array.copy (Distributed.Online.loads net));
  (* settling again is a no-op in O(1) *)
  let again = Distributed.Online.settle net in
  Alcotest.(check int) "idempotent rounds" 0 again.Distributed.Online.rounds;
  Alcotest.(check int) "idempotent moves" 0 again.Distributed.Online.moves;
  true

let qcheck_differential_mla =
  QCheck.Test.make ~name:"Online settle = Distributed.run (MLA rule)"
    ~count:60
    QCheck.(int_range 0 10_000)
    (differential_settle ~objective:Distributed.Min_total_load)

let qcheck_differential_bla =
  QCheck.Test.make ~name:"Online settle = Distributed.run (BLA rule)"
    ~count:60
    QCheck.(int_range 0 10_000)
    (differential_settle ~objective:Distributed.Min_load_vector)

(* ------------------------------------------------------------------ *)
(* Online delta bookkeeping                                            *)
(* ------------------------------------------------------------------ *)

let test_online_deltas () =
  let p, _ = case ~seed:42 in
  let net = Distributed.Online.create ~objective:Distributed.Min_total_load p in
  let (_ : Distributed.Online.settle_stats) = Distributed.Online.settle net in
  (* no-op deltas change nothing *)
  Alcotest.(check bool) "arrive present" false
    (Distributed.Online.arrive net ~user:0);
  Alcotest.(check bool) "recover alive" false
    (Distributed.Online.recover_ap net ~ap:0);
  Alcotest.(check int) "still quiescent" 0 (Distributed.Online.dirty_count net);
  (* depart + arrive round-trips to a quiescent equivalent state *)
  (match Distributed.Online.depart net ~user:0 with
  | `Absent -> Alcotest.fail "user 0 should be present"
  | `Served _ | `Unserved -> ());
  Alcotest.(check bool) "absent now" false (Distributed.Online.is_present net 0);
  (match Distributed.Online.depart net ~user:0 with
  | `Absent -> ()
  | _ -> Alcotest.fail "double depart must be a no-op");
  let (_ : Distributed.Online.settle_stats) = Distributed.Online.settle net in
  Alcotest.(check bool) "arrive absent" true
    (Distributed.Online.arrive net ~user:0);
  let (_ : Distributed.Online.settle_stats) = Distributed.Online.settle net in
  (* failing an AP detaches exactly its members and empties it *)
  let assoc = Distributed.Online.assoc net in
  let members = Association.users_of assoc ~ap:0 in
  (match Distributed.Online.fail_ap net ~ap:0 with
  | `Dead -> Alcotest.fail "AP 0 should be alive"
  | `Failed detached ->
      Alcotest.(check (list int)) "detached = members" members detached);
  Alcotest.(check bool) "dead now" false (Distributed.Online.ap_alive net 0);
  (match Distributed.Online.fail_ap net ~ap:0 with
  | `Dead -> ()
  | `Failed _ -> Alcotest.fail "double fail must be a no-op");
  let (_ : Distributed.Online.settle_stats) = Distributed.Online.settle net in
  (* nobody is served by a dead AP, and its load is zero *)
  let assoc = Distributed.Online.assoc net in
  Alcotest.(check (list int)) "dead AP empty" []
    (Association.users_of assoc ~ap:0);
  Alcotest.(check bool) "dead AP load 0" true
    (Float.equal 0. (Distributed.Online.loads net).(0));
  (* the quiescent state is Nash on the effective instance *)
  let eff = Distributed.Online.effective_problem net in
  let loads = Loads.ap_loads eff assoc in
  let _, n_users = Problem.dims eff in
  for u = 0 to n_users - 1 do
    match
      Distributed.decide eff assoc ~loads
        ~objective:Distributed.Min_total_load u
    with
    | None -> ()
    | Some ap -> Alcotest.failf "user %d wants AP %d after failure" u ap
  done

(* ------------------------------------------------------------------ *)
(* Fig. 4                                                              *)
(* ------------------------------------------------------------------ *)

let test_fig4_oscillates () =
  let p = Examples.fig4 in
  let o =
    Wlan_sim.Churn.run ~init:Examples.fig4_initial ~mode:`Simultaneous
      ~baseline:false
      ~tiers:(Problem.distinct_rates p)
      ~objective:Distributed.Min_total_load
      ~script:(Churn_script.make []) p
  in
  Alcotest.(check bool) "oscillated" true o.Wlan_sim.Churn.oscillated

let test_fig4_sequential_converges () =
  let p = Examples.fig4 in
  let o =
    Wlan_sim.Churn.run ~init:Examples.fig4_initial ~mode:`Sequential
      ~baseline:false
      ~tiers:(Problem.distinct_rates p)
      ~objective:Distributed.Min_total_load
      ~script:(Churn_script.make []) p
  in
  Alcotest.(check bool) "no oscillation" false o.Wlan_sim.Churn.oscillated;
  List.iter
    (fun (s : Wlan_sim.Churn.step) ->
      Alcotest.(check bool) "converged" true s.converged)
    o.Wlan_sim.Churn.steps

(* ------------------------------------------------------------------ *)
(* Golden traces: demo scenario, jobs 1 vs jobs 4 vs committed digest  *)
(* ------------------------------------------------------------------ *)

(* Mirror of the CLI replay: three variants fanned out over a pool,
   results in submission order. *)
let demo_replay ~jobs =
  let sc = Scenario_io.of_file "../scenarios/churn_demo.scn" in
  let script = Scenario_io.churn_of_file "../scenarios/churn_demo.churn" in
  let p = Scenario.to_problem sc in
  let variants =
    [
      ("mnu", Distributed.Min_total_load);
      ("bla", Distributed.Min_load_vector);
      ("mla", Distributed.Min_total_load);
    ]
  in
  Harness.Pool.with_pool ~jobs @@ fun pool ->
  Harness.Pool.run pool
    (List.map
       (fun (label, objective) () ->
         let o = Wlan_sim.Churn.run ~objective ~script p in
         {
           Harness.Metrics.label;
           objective =
             (match objective with
             | Distributed.Min_total_load -> "min-total-load"
             | Distributed.Min_load_vector -> "min-load-vector");
           mode = "sequential";
           outcome = o;
         })
       variants)

let render_traces runs =
  String.concat ""
    (List.map
       (fun (r : Harness.Metrics.run) ->
         Printf.sprintf "== %s ==\n%s" r.Harness.Metrics.label
           (Wlan_sim.Trace.to_string
              r.Harness.Metrics.outcome.Wlan_sim.Churn.trace))
       runs)

let digest s = Digest.to_hex (Digest.string s)

let read_golden path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      match In_channel.input_all ic |> String.trim |> String.split_on_char '\n'
      with
      | [ trace; metrics ] -> (String.trim trace, String.trim metrics)
      | _ -> Alcotest.failf "malformed golden file %s" path)

let test_golden_demo () =
  let runs1 = demo_replay ~jobs:1 in
  let runs4 = demo_replay ~jobs:4 in
  let t1 = render_traces runs1 and t4 = render_traces runs4 in
  let m1 = Harness.Metrics.json ~seed:11 runs1
  and m4 = Harness.Metrics.json ~seed:11 runs4 in
  Alcotest.(check string) "traces j1 = j4" t1 t4;
  Alcotest.(check string) "metrics j1 = j4" m1 m4;
  let gt, gm = read_golden "golden/churn_demo.digest" in
  Alcotest.(check string) "trace digest" gt (digest t1);
  Alcotest.(check string) "metrics digest" gm (digest m1)

let test_golden_fig4 () =
  let p = Examples.fig4 in
  let run () =
    Wlan_sim.Churn.run ~init:Examples.fig4_initial ~mode:`Simultaneous
      ~tiers:(Problem.distinct_rates p)
      ~objective:Distributed.Min_total_load
      ~script:(Churn_script.make []) p
  in
  let render o = Wlan_sim.Trace.to_string o.Wlan_sim.Churn.trace in
  let t1, t4 =
    ( render (run ()),
      Harness.Pool.with_pool ~jobs:4 @@ fun pool ->
      match Harness.Pool.run pool [ (fun () -> render (run ())) ] with
      | [ t ] -> t
      | _ -> Alcotest.fail "pool lost the job" )
  in
  Alcotest.(check string) "fig4 trace j1 = j4" t1 t4;
  let gt, gm = read_golden "golden/churn_fig4.digest" in
  let o = run () in
  Alcotest.(check string) "fig4 trace digest" gt (digest t1);
  Alcotest.(check string) "fig4 metrics digest" gm
    (digest
       (Harness.Metrics.json ~seed:0
          [
            {
              Harness.Metrics.label = "fig4";
              objective = "min-total-load";
              mode = "simultaneous";
              outcome = o;
            };
          ]))

(* ------------------------------------------------------------------ *)
(* Metrics CSV: RFC-4180 quoting round-trips hostile labels            *)
(* ------------------------------------------------------------------ *)

let test_metrics_csv_hostile_labels () =
  let p = Examples.fig4 in
  let o =
    Wlan_sim.Churn.run ~init:Examples.fig4_initial ~mode:`Sequential
      ~baseline:false
      ~tiers:(Problem.distinct_rates p)
      ~objective:Distributed.Min_total_load
      ~script:(Churn_script.make []) p
  in
  let labels =
    [
      "plain";
      "with,comma";
      "with \"quotes\"";
      "multi\nline";
      "crlf\r\nlabel";
      ",\",\"";
    ]
  in
  let runs =
    List.map
      (fun label ->
        {
          Harness.Metrics.label;
          objective = "min-total-load";
          mode = "sequential";
          outcome = o;
        })
      labels
  in
  let text = Harness.Metrics.csv runs in
  let rows = Harness.Metrics.csv_parse text in
  let header, body =
    match rows with
    | h :: b -> (h, b)
    | [] -> Alcotest.fail "empty CSV"
  in
  let n_cols = List.length header in
  Alcotest.(check int) "header column count" 15 n_cols;
  let steps = List.length o.Wlan_sim.Churn.steps in
  Alcotest.(check int) "row count"
    (List.length labels * steps)
    (List.length body);
  List.iter
    (fun row ->
      Alcotest.(check int) "every row keeps the column layout" n_cols
        (List.length row))
    body;
  (* labels come back verbatim, in run order, [steps] rows each *)
  let expected =
    List.concat_map (fun l -> List.init steps (fun _ -> l)) labels
  in
  Alcotest.(check (list string)) "labels round-trip" expected
    (List.map List.hd body);
  (* quoting is the identity on tame fields and minimal on hostile ones *)
  Alcotest.(check string) "tame identity" "plain"
    (Harness.Metrics.csv_escape "plain");
  Alcotest.(check string) "comma quoted" "\"with,comma\""
    (Harness.Metrics.csv_escape "with,comma");
  Alcotest.(check string) "quote doubled" "\"say \"\"hi\"\"\""
    (Harness.Metrics.csv_escape "say \"hi\"")

(* ------------------------------------------------------------------ *)
(* Script model and serialization                                      *)
(* ------------------------------------------------------------------ *)

let script_gen =
  QCheck.make ~print:(fun seed -> Printf.sprintf "seed %d" seed)
    QCheck.Gen.(0 -- 10_000)

let qcheck_script_roundtrip =
  QCheck.Test.make ~name:"churn script (de)serialization round-trips"
    ~count:100 script_gen (fun seed ->
      let rng = Random.State.make [| seed; 0x5e71a1 |] in
      let script =
        Churn_script.random ~rng ~n_aps:(1 + Random.State.int rng 9)
          ~n_users:(1 + Random.State.int rng 30)
          {
            Churn_script.default_gen with
            n_events = Random.State.int rng 40;
          }
      in
      let text = Scenario_io.churn_to_string script in
      let back = Scenario_io.churn_of_string text in
      back = script
      && (* and the text itself is a fixpoint *)
      String.equal text (Scenario_io.churn_to_string back))

let test_script_rejects () =
  let bad header =
    Alcotest.check_raises "rejected"
      (Scenario_io.Parse_error
         (match header with
         | `Version -> "unsupported churn version 99"
         | `Header -> "missing churn header"
         | `Line -> "unrecognized churn line \"at 1 teleport 3\""))
      (fun () ->
        ignore
          (Scenario_io.churn_of_string
             (match header with
             | `Version -> "wlan-mcast-churn 99\n"
             | `Header -> "not-a-churn-file\n"
             | `Line -> "wlan-mcast-churn 1\nat 1 teleport 3\n")))
  in
  bad `Version;
  bad `Header;
  bad `Line;
  Alcotest.check_raises "negative time"
    (Invalid_argument "Churn_script.make: bad event time -1")
    (fun () ->
      ignore
        (Churn_script.make
           [ { Churn_script.time = -1.; event = Join { user = 0 } } ]))

(* The dynamic path must reject broken rates just like the static one:
   a nan rate installed via set_rate, or a non-positive/non-finite rate
   tier handed to Churn.run, would silently corrupt every subsequent
   load comparison. *)
let test_rates_rejected () =
  let p = Examples.fig4 in
  let net = Distributed.Online.create ~objective:Distributed.Min_total_load p in
  Alcotest.check_raises "nan set_rate"
    (Invalid_argument "Online.set_rate: rate must not be nan") (fun () ->
      ignore (Distributed.Online.set_rate net ~user:0 ~ap:0 Float.nan));
  let run tiers () =
    ignore
      (Wlan_sim.Churn.run ~init:Examples.fig4_initial ~mode:`Sequential
         ~baseline:false ~tiers ~objective:Distributed.Min_total_load
         ~script:(Churn_script.make []) p)
  in
  let rejects what tiers =
    try
      run tiers ();
      Alcotest.failf "accepted %s tier" what
    with Invalid_argument msg ->
      Alcotest.(check bool)
        (what ^ " error names the tier")
        true
        (String.length msg >= 9 && String.sub msg 0 9 = "Churn.run")
  in
  rejects "zero" [ 0. ];
  rejects "negative" [ 54.; -6. ];
  rejects "nan" [ Float.nan ];
  rejects "infinite" [ Float.infinity ]

let test_script_steps () =
  let s =
    Churn_script.make
      [
        { Churn_script.time = 2.; event = Churn_script.Leave { user = 1 } };
        { time = 1.; event = Join { user = 0 } };
        { time = 2.; event = Ap_fail { ap = 0 } };
      ]
  in
  match Churn_script.steps s with
  | [ (t1, [ Churn_script.Join _ ]); (t2, [ Leave _; Ap_fail _ ]) ] ->
      Alcotest.(check bool) "times" true
        (Float.equal t1 1. && Float.equal t2 2.)
  | _ -> Alcotest.fail "wrong step grouping"

(* The serve adapter consumes the same script type the (de)serializer
   round-trips above — but over the wire event order is binding, so a
   list that bypassed [Churn_script.make]'s sort must be refused with a
   typed error, never silently reordered. *)
let test_adapter_rejects_unsorted () =
  (match
     Mcast_serve.Adapter.inputs_of_events
       [
         { Churn_script.time = 2.; event = Join { user = 0 } };
         { time = 1.; event = Leave { user = 1 } };
       ]
   with
  | Error (Mcast_serve.Adapter.Non_monotone { index; prev; time }) ->
      Alcotest.(check int) "offending index" 1 index;
      Alcotest.(check bool) "prev/time" true
        (Float.equal prev 2. && Float.equal time 1.)
  | Ok _ -> Alcotest.fail "unsorted events must be refused");
  (* the sorted form of the same events is accepted *)
  match
    Mcast_serve.Adapter.inputs_of_script
      (Churn_script.make
         [
           { Churn_script.time = 2.; event = Join { user = 0 } };
           { time = 1.; event = Leave { user = 1 } };
         ])
  with
  | Ok [ _; _ ] -> ()
  | Ok _ -> Alcotest.fail "wrong expansion arity"
  | Error e -> Alcotest.fail (Mcast_serve.Adapter.error_message e)

(* ------------------------------------------------------------------ *)
(* Drift tier-ladder default (regression)                              *)
(* ------------------------------------------------------------------ *)

(* Churn.run's default ladder is [Problem.distinct_rates] — the ladder
   the instance actually uses and the same derivation the serve daemon
   shares — not hard-wired 802.11a. On an 802.11b deployment the old
   default snapped 11 Mbps to the alien 12-tier and drifted -1 onto 6;
   the real ladder lands on 5.5. *)
let test_drift_ladder_80211b () =
  let b_tiers = Rate_table.rates Rate_table.ieee80211b in
  Alcotest.(check (float 0.)) "11 -1 -> 5.5" 5.5
    (Churn_script.drifted_rate ~tiers:b_tiers 11. (-1));
  Alcotest.(check (float 0.)) "5.5 -2 -> 0 (link lost)" 0.
    (Churn_script.drifted_rate ~tiers:b_tiers 5.5 (-3));
  Alcotest.(check (float 0.)) "11 +1 clamps at top" 11.
    (Churn_script.drifted_rate ~tiers:b_tiers 11. 1);
  (* the 802.11a ladder mis-steps the same event — the bug this pins *)
  let a_tiers = Rate_table.rates Rate_table.ieee80211a in
  Alcotest.(check (float 0.)) "802.11a ladder would give 6" 6.
    (Churn_script.drifted_rate ~tiers:a_tiers 11. (-1))

let test_default_tiers_match_problem () =
  let p =
    Scenario_gen.nth_problem ~seed:41 ~index:0
      {
        (small_cfg ~n_aps:5 ~n_users:12) with
        rate_table = Rate_table.ieee80211b;
      }
  in
  let n_aps, n_users = Problem.dims p in
  let rng = Random.State.make [| 41; 0xd21f7 |] in
  let script =
    Churn_script.random ~rng ~n_aps ~n_users
      { Churn_script.default_gen with n_events = 30 }
  in
  let run tiers =
    Wlan_sim.Churn.run ~baseline:false ?tiers
      ~objective:Distributed.Min_total_load ~script p
  in
  let o = run None in
  let o' = run (Some (Problem.distinct_rates p)) in
  Alcotest.(check bool) "same association" true
    (o.Wlan_sim.Churn.assoc = o'.Wlan_sim.Churn.assoc);
  check_float_arrays "loads" o'.Wlan_sim.Churn.loads o.Wlan_sim.Churn.loads;
  Alcotest.(check bool) "same effective topology" true
    (Problem.rates_matrix o.Wlan_sim.Churn.effective
    = Problem.rates_matrix o'.Wlan_sim.Churn.effective);
  Alcotest.(check int) "same step count"
    (List.length o'.Wlan_sim.Churn.steps)
    (List.length o.Wlan_sim.Churn.steps)

(* The churn CLI and the serve daemon both derive their ladder from
   [Rate_model.tier_rates sc.model]; for a table model that is exactly
   [Rate_table.rates], so the two front ends can never diverge again. *)
let test_tier_derivation_unified () =
  List.iter
    (fun tbl ->
      Alcotest.(check (list (float 0.)))
        "tier_rates (Table t) = Rate_table.rates t" (Rate_table.rates tbl)
        (Rate_model.tier_rates (Rate_model.Table tbl)))
    [
      Rate_table.ieee80211a;
      Rate_table.ieee80211b;
      Rate_table.scale_thresholds 0.5 Rate_table.default;
    ];
  let rec descending = function
    | a :: (b :: _ as rest) -> a > b && descending rest
    | _ -> true
  in
  List.iter
    (fun m ->
      Alcotest.(check bool) "path-loss ladder is descending" true
        (descending (Rate_model.tier_rates m)))
    [
      Rate_model.friis ();
      Rate_model.two_ray ();
      Rate_model.log_distance ();
    ]

let test_script_validate () =
  let s =
    Churn_script.make
      [ { Churn_script.time = 0.; event = Join { user = 7 } } ]
  in
  Alcotest.check_raises "unknown user"
    (Invalid_argument "Churn_script.validate: unknown user 7") (fun () ->
      ignore (Churn_script.validate ~n_aps:2 ~n_users:3 s))

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "churn"
    [
      ( "oracle",
        List.map QCheck_alcotest.to_alcotest
          [ oracle_mla; oracle_bla; oracle_mnu ] );
      ( "differential",
        List.map QCheck_alcotest.to_alcotest
          [ qcheck_differential_mla; qcheck_differential_bla ] );
      ( "online",
        [ Alcotest.test_case "delta bookkeeping" `Quick test_online_deltas ] );
      ( "fig4",
        [
          Alcotest.test_case "simultaneous oscillates" `Quick
            test_fig4_oscillates;
          Alcotest.test_case "sequential converges" `Quick
            test_fig4_sequential_converges;
        ] );
      ( "golden",
        [
          Alcotest.test_case "demo scenario, j1 = j4 = digest" `Quick
            test_golden_demo;
          Alcotest.test_case "fig4 trace digest" `Quick test_golden_fig4;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "CSV quotes hostile labels" `Quick
            test_metrics_csv_hostile_labels;
        ] );
      ( "validation",
        [
          Alcotest.test_case "bad rates rejected on dynamic path" `Quick
            test_rates_rejected;
        ] );
      ( "tiers",
        [
          Alcotest.test_case "802.11b drift ladder" `Quick
            test_drift_ladder_80211b;
          Alcotest.test_case "default = Problem.distinct_rates" `Quick
            test_default_tiers_match_problem;
          Alcotest.test_case "churn/serve derivation unified" `Quick
            test_tier_derivation_unified;
        ] );
      ( "script",
        [
          QCheck_alcotest.to_alcotest qcheck_script_roundtrip;
          Alcotest.test_case "malformed inputs rejected" `Quick
            test_script_rejects;
          Alcotest.test_case "step grouping" `Quick test_script_steps;
          Alcotest.test_case "serve adapter refuses unsorted events" `Quick
            test_adapter_rejects_unsorted;
          Alcotest.test_case "validate ranges" `Quick test_script_validate;
        ] );
    ]
